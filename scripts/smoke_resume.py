#!/usr/bin/env python3
"""Crash-resume smoke test for tsc3d_batch (the real-signal variant of
tests/test_service.cpp's in-process crash test).

Scenario:
  1. run a job uninterrupted in a reference queue,
  2. enqueue the identical job in a fresh queue, start a worker
     subprocess, SIGKILL it as soon as the first checkpoint file lands,
  3. run a second worker (lease 0, so the dead worker's claim is
     instantly stale) to resume and finish,
  4. compare the two result files BYTE for byte,
  5. re-enqueue and re-drain: the rerun must be served from the result
     cache with zero SA moves.

Usage:
  smoke_resume.py /path/to/tsc3d_batch [--workdir DIR]

Exit code 0 on success; non-zero with a diagnostic otherwise.
"""
import argparse
import os
import shutil
import signal
import subprocess
import sys
import time

CONFIG = """\
[floorplanning]
sa_moves = 9000
sa_stages = 30
fast_grid = 16
verify_grid = 24
sampling_grid = 16
"""

BENCH = "n100"
SEED = 5


def run(binary, *args, check=True):
    proc = subprocess.run([binary, *args], capture_output=True, text=True)
    if check and proc.returncode != 0:
        sys.exit(f"FAIL: {' '.join(args)} -> rc {proc.returncode}\n"
                 f"{proc.stdout}{proc.stderr}")
    return proc


def single_result_file(queue):
    results = os.path.join(queue, "results")
    files = [f for f in os.listdir(results) if f.endswith(".res")]
    if len(files) != 1:
        sys.exit(f"FAIL: expected exactly one result in {results}, "
                 f"got {files}")
    return os.path.join(results, files[0])


def read_bytes(path):
    with open(path, "rb") as fh:
        return fh.read()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to tsc3d_batch")
    parser.add_argument("--workdir", default="smoke_resume_work")
    args = parser.parse_args()

    work = os.path.abspath(args.workdir)
    shutil.rmtree(work, ignore_errors=True)
    os.makedirs(work)
    conf = os.path.join(work, "sweep.conf")
    with open(conf, "w") as fh:
        fh.write(CONFIG)

    common = [f"--config={conf}", f"--benchmark={BENCH}",
              f"--seeds={SEED}"]

    # 1. Uninterrupted reference run.
    ref_queue = os.path.join(work, "ref-queue")
    run(args.binary, "enqueue", f"--queue={ref_queue}", *common)
    run(args.binary, "work", f"--queue={ref_queue}")
    ref_result = single_result_file(ref_queue)

    # 2. Fresh queue; start a worker and SIGKILL it mid-anneal.  The
    #    reference cache must not leak in (separate queue dirs), so the
    #    resumed run genuinely anneals.
    queue = os.path.join(work, "queue")
    run(args.binary, "enqueue", f"--queue={queue}", *common)
    ckp_dir = os.path.join(queue, "checkpoints")
    worker = subprocess.Popen(
        [args.binary, "work", f"--queue={queue}"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.time() + 120
    while time.time() < deadline:
        if worker.poll() is not None:
            sys.exit("FAIL: worker finished before it could be killed; "
                     "raise sa_moves in the smoke config")
        if any(f.endswith(".ckp") for f in os.listdir(ckp_dir)):
            break
        time.sleep(0.02)
    else:
        sys.exit("FAIL: no checkpoint appeared within 120 s")
    worker.send_signal(signal.SIGKILL)
    worker.wait()

    status = run(args.binary, "status", f"--queue={queue}").stdout
    if "pending         : 1" not in status:
        sys.exit(f"FAIL: killed job is not pending again:\n{status}")

    # 3. Resume with a zero lease so the dead worker's claim is stale.
    out = run(args.binary, "work", f"--queue={queue}", "--lease=0").stdout
    if "done (resumed)" not in out:
        sys.exit(f"FAIL: second worker did not resume from the "
                 f"checkpoint:\n{out}")

    # 4. The crash must be invisible in the bytes.
    resumed_result = single_result_file(queue)
    if read_bytes(ref_result) != read_bytes(resumed_result):
        sys.exit("FAIL: resumed result differs from the uninterrupted "
                 f"reference ({ref_result} vs {resumed_result})")

    # 5. Cache leg: re-run the finished job (the documented operator
    #    recipe: move its file from done/ back to jobs/) -- it must be
    #    served from the cache.
    done_dir = os.path.join(queue, "done")
    for name in os.listdir(done_dir):
        if name.endswith(".job"):
            shutil.move(os.path.join(done_dir, name),
                        os.path.join(queue, "jobs", name))
    out = run(args.binary, "work", f"--queue={queue}").stdout
    if "cache hit" not in out:
        sys.exit(f"FAIL: rerun of a finished job was not served from "
                 f"the cache:\n{out}")

    print("smoke_resume: SIGKILL resume bitwise-identical, cache hit OK")
    shutil.rmtree(work, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
