#!/usr/bin/env python3
"""Relative-link check for the repo's markdown documentation.

Scans the given markdown files for inline links/images and verifies
that every relative target exists on disk (resolved against the file
containing the link, `#fragment` suffixes stripped).  External schemes
(http/https/mailto) and pure in-page anchors are ignored -- the check
needs no network and stays cheap enough for a CI step.

Usage:
  check_links.py README.md docs/*.md
"""
import argparse
import os
import re
import sys

# Inline markdown links/images: [text](target) / ![alt](target).
# Reference-style links are not used in this repo's docs.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = re.compile(r"^[a-z][a-z0-9+.-]*:")  # http:, https:, mailto:, ...


def check_file(path):
    broken = []
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    base = os.path.dirname(os.path.abspath(path))
    for match in LINK.finditer(text):
        target = match.group(1)
        if EXTERNAL.match(target) or target.startswith("#"):
            continue
        resolved = os.path.normpath(
            os.path.join(base, target.split("#", 1)[0]))
        if not os.path.exists(resolved):
            line = text.count("\n", 0, match.start()) + 1
            broken.append((line, target, resolved))
    return broken


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="markdown files to check")
    args = parser.parse_args()

    failures = 0
    checked = 0
    for path in args.files:
        if not os.path.exists(path):
            print(f"{path}: file not found")
            failures += 1
            continue
        broken = check_file(path)
        checked += 1
        for line, target, resolved in broken:
            print(f"{path}:{line}: broken link '{target}' "
                  f"(resolved to {resolved})")
        failures += len(broken)

    if failures:
        print(f"\nLINK CHECK FAILED: {failures} broken link(s)")
        return 1
    print(f"link check passed ({checked} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
