#!/usr/bin/env python3
"""Perf gates for CI over a google-benchmark JSON report.

Eight checks, in order:

1. Warm-start gate (hard): the warm-started steady solve must be at
   least --min-warm-speedup (default 2.0) times faster than the cold
   solve at the 64x64 grid -- the ThermalEngine contract since PR 2.
2. Sweep-scaling gate (hard): the sharded fixed-work solve at 4 threads
   must be at least --min-scaling (default 1.8) times faster than at 1
   thread on the 128x128 grid -- the sweep-pool contract.  Skipped with
   a notice when the report has no sharded entries (machines without
   the benchmark) unless --require-scaling is given.
3. Batched-eval gate (hard): scoring 4 candidates in one
   solve_steady_batch call on 4 threads must be at least
   --min-batch-speedup (default 1.5) times faster than the 4 sequential
   solve_steady calls of the unbatched annealing loop (batch:1/threads:1)
   at the 64x64 grid -- the field-pool contract since PR 4.  The
   sharded-sequential comparison (batch:1/threads:4) is printed for
   context but not gated (sweep sharding at 64x64 sits between serial
   and candidate-parallel).  Skipped like the scaling gate when the
   entries are missing, unless --require-scaling is given.
4. Multigrid gate (hard): the V-cycle backend must solve the 128x128
   cold steady state at least --min-mg-speedup (default 2.0) times
   faster than the SOR backend (BM_SolveSteadyCold/128 vs
   BM_SolveSteadyMultigrid/128) -- the solver-policy contract since
   PR 5.  Cold solves are where SOR's smooth-error tail is worst; the
   warm 64x64 gate (check 1) and the drift check keep the warm path
   honest at the same time.  Skipped like the scaling gate when the
   entries are missing, unless --require-scaling is given.
5. Cheap-eval gate (hard): the incremental cheap evaluation at n800
   (BM_CheapEval/incremental:1 -- per-net HPWL/delay caches plus
   dirty-die bounds, isolated from move proposal and repacking) must be
   at least --min-cheap-eval-speedup (default 5.0) times faster than
   the full-rescan path (incremental:0) -- the incremental-evaluation
   contract since PR 6.  Skipped like the scaling gate when the entries
   are missing, unless --require-scaling is given.
6. Moves/sec gate (hard): the end-to-end annealing step loop at n800
   with the incremental pipeline on (BM_AnnealStepCheap/incremental:1,
   routed through MoveTransaction since PR 7) must sustain at least
   --min-moves-per-sec moves per second (default 5500).  The PR 7
   pipeline measures ~6200 on the 1-CPU reference VM, 1.23x the PR 6
   loop's recorded 5040 (the pack-time id->slot maps plus the
   journaled-rollback reject path); the gate sits between the two so a
   regression to the PR 6 shape fails while runner variance does not.
   The step-level speedup over incremental:0 is printed for context.
   Skipped like the scaling gate when the entries are missing, unless
   --require-scaling is given.
7. Reject-path gate (hard): the forced-reject move stream at n800
   through MoveTransaction (BM_AnnealStepReject/transactional:1 --
   stage, evaluate, roll the journaled caches back) must be at least
   --min-reject-speedup (default 1.05) times faster than the classic
   revert-and-repack pattern (transactional:0, which re-packs the
   reverted die on the NEXT move's apply_to) -- the transactional-moves
   contract since PR 7.  The margin is structurally modest: the PR 6
   die stamps already confine the classic double pack to the one dirty
   die and evaluation dirt dominates both paths, so the rollback saves
   one ~12us repack plus the second die of eval dirt per rejection
   (measured 1.09-1.29x across runs; the floor asserts the reject path
   never pays MORE than classic).  Skipped like the scaling gate when
   the entries are missing, unless --require-scaling is given.
8. Baseline drift (soft by default): benchmarks present in both the
   report and --baseline are compared; regressions beyond
   --max-regression (default 2.5x) fail the check.  The generous
   default tolerates CI-runner variance while still catching
   catastrophic slowdowns against the committed BENCH_pr7.json.

Usage:
  check_perf.py RESULT.json [--baseline BENCH_pr7.json] [options]
"""
import argparse
import json
import sys

# Median aggregates are gated (robust to a noisy repetition); the mean is
# reported alongside for context.
AGG = "_median"


def load_times(path, agg=AGG):
    """Map benchmark name (aggregate suffix stripped) -> real_time."""
    return {name: t for name, (t, _) in load_report(path, agg).items()}


def load_report(path, agg=AGG):
    """Map name (aggregate stripped) -> (real_time, items_per_second).

    items_per_second is None for benchmarks without SetItemsProcessed.
    Unaggregated reports (no repetitions) fall back to the plain entries.
    """
    with open(path) as fh:
        data = json.load(fh)
    report = {}
    plain = {}
    for bench in data.get("benchmarks", []):
        name = bench["name"]
        if "real_time" not in bench:
            continue  # complexity-fit entries (_BigO/_RMS) have no time
        ips = bench.get("items_per_second")
        row = (float(bench["real_time"]),
               float(ips) if ips is not None else None)
        if name.endswith(agg):
            report[name[: -len(agg)]] = row
        elif bench.get("run_type", "iteration") == "iteration":
            plain[name] = row
    return report or plain


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", help="google-benchmark JSON report")
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--min-warm-speedup", type=float, default=2.0)
    parser.add_argument("--min-scaling", type=float, default=1.8)
    parser.add_argument("--scaling-threads", type=int, default=4)
    parser.add_argument("--min-batch-speedup", type=float, default=1.5)
    parser.add_argument("--min-mg-speedup", type=float, default=2.0)
    parser.add_argument("--min-cheap-eval-speedup", type=float, default=5.0)
    parser.add_argument("--min-moves-per-sec", type=float, default=5500.0)
    parser.add_argument("--min-reject-speedup", type=float, default=1.05)
    parser.add_argument("--max-regression", type=float, default=2.5)
    parser.add_argument(
        "--require-scaling", action="store_true",
        help="fail (instead of skip) when the sharded-sweep or "
             "batched-eval entries are missing")
    args = parser.parse_args()

    report = load_report(args.result)
    times = {name: t for name, (t, _) in report.items()}
    failures = []

    # --- 1. warm-start speedup -------------------------------------------
    cold = times.get("BM_SolveSteadyCold/64")
    warm = times.get("BM_SolveSteadyWarm/64")
    if cold is None or warm is None:
        failures.append("warm-start benchmarks missing from the report")
    else:
        speedup = cold / warm
        print(f"warm-start: cold {cold:.2f} vs warm {warm:.2f} "
              f"({speedup:.2f}x, gate >= {args.min_warm_speedup:.1f}x)")
        if speedup < args.min_warm_speedup:
            failures.append(
                f"warm-start speedup {speedup:.2f}x below the "
                f"{args.min_warm_speedup:.1f}x gate")

    # --- 2. sharded-sweep scaling ----------------------------------------
    base = times.get("BM_SolveSteadySharded/threads:1/real_time")
    wide = times.get(
        f"BM_SolveSteadySharded/threads:{args.scaling_threads}/real_time")
    if base is None or wide is None:
        msg = "sharded-sweep benchmarks missing from the report"
        if args.require_scaling:
            failures.append(msg)
        else:
            print(f"scaling: SKIPPED ({msg})")
    else:
        scaling = base / wide
        print(f"scaling: 1 thread {base:.2f} vs {args.scaling_threads} "
              f"threads {wide:.2f} ({scaling:.2f}x, gate >= "
              f"{args.min_scaling:.1f}x)")
        if scaling < args.min_scaling:
            failures.append(
                f"sharded-sweep scaling {scaling:.2f}x at "
                f"{args.scaling_threads} threads below the "
                f"{args.min_scaling:.1f}x gate")

    # --- 3. batched candidate evaluation ---------------------------------
    seq = times.get("BM_BatchedEval/batch:1/threads:1/real_time")
    sharded_seq = times.get("BM_BatchedEval/batch:1/threads:4/real_time")
    batched = times.get("BM_BatchedEval/batch:4/threads:4/real_time")
    if seq is None or batched is None:
        msg = "batched-eval benchmarks missing from the report"
        if args.require_scaling:
            failures.append(msg)
        else:
            print(f"batched-eval: SKIPPED ({msg})")
    else:
        speedup = seq / batched
        print(f"batched-eval: sequential {seq:.2f} vs batch-of-4 "
              f"{batched:.2f} ({speedup:.2f}x, gate >= "
              f"{args.min_batch_speedup:.1f}x)")
        if sharded_seq is not None:
            print(f"batched-eval: vs sharded-sequential {sharded_seq:.2f} "
                  f"({sharded_seq / batched:.2f}x, informational)")
        if speedup < args.min_batch_speedup:
            failures.append(
                f"batched-eval speedup {speedup:.2f}x below the "
                f"{args.min_batch_speedup:.1f}x gate")

    # --- 4. multigrid vs SOR on cold 128x128 solves ----------------------
    sor_cold = times.get("BM_SolveSteadyCold/128")
    mg_cold = times.get("BM_SolveSteadyMultigrid/128")
    if sor_cold is None or mg_cold is None:
        msg = "multigrid benchmarks missing from the report"
        if args.require_scaling:
            failures.append(msg)
        else:
            print(f"multigrid: SKIPPED ({msg})")
    else:
        speedup = sor_cold / mg_cold
        print(f"multigrid: SOR cold {sor_cold:.2f} vs V-cycle cold "
              f"{mg_cold:.2f} ({speedup:.2f}x, gate >= "
              f"{args.min_mg_speedup:.1f}x)")
        if speedup < args.min_mg_speedup:
            failures.append(
                f"multigrid speedup {speedup:.2f}x below the "
                f"{args.min_mg_speedup:.1f}x gate")

    # --- 5. incremental cheap-eval speedup at n800 -----------------------
    full_eval = times.get("BM_CheapEval/incremental:0")
    inc_eval = times.get("BM_CheapEval/incremental:1")
    if full_eval is None or inc_eval is None:
        msg = "cheap-eval benchmarks missing from the report"
        if args.require_scaling:
            failures.append(msg)
        else:
            print(f"cheap-eval: SKIPPED ({msg})")
    else:
        speedup = full_eval / inc_eval
        print(f"cheap-eval: full rescan {full_eval:.2f} vs incremental "
              f"{inc_eval:.2f} ({speedup:.2f}x, gate >= "
              f"{args.min_cheap_eval_speedup:.1f}x)")
        if speedup < args.min_cheap_eval_speedup:
            failures.append(
                f"cheap-eval speedup {speedup:.2f}x below the "
                f"{args.min_cheap_eval_speedup:.1f}x gate")

    # --- 6. absolute annealing throughput at n800 ------------------------
    step_name = "BM_AnnealStepCheap/incremental:1/real_time"
    step_seed = "BM_AnnealStepCheap/incremental:0/real_time"
    moves_per_sec = report.get(step_name, (None, None))[1]
    if moves_per_sec is None:
        msg = "annealing-step benchmarks missing from the report"
        if args.require_scaling:
            failures.append(msg)
        else:
            print(f"moves/sec: SKIPPED ({msg})")
    else:
        print(f"moves/sec: {moves_per_sec:.0f} at n800 incremental "
              f"(gate >= {args.min_moves_per_sec:.0f})")
        if step_name in times and step_seed in times:
            print(f"moves/sec: step-level speedup over the seed path "
                  f"{times[step_seed] / times[step_name]:.2f}x "
                  f"(informational)")
        if moves_per_sec < args.min_moves_per_sec:
            failures.append(
                f"annealing throughput {moves_per_sec:.0f} moves/sec "
                f"below the {args.min_moves_per_sec:.0f} gate")

    # --- 7. reject-path speedup through MoveTransaction at n800 ----------
    classic = times.get("BM_AnnealStepReject/transactional:0/real_time")
    txn = times.get("BM_AnnealStepReject/transactional:1/real_time")
    if classic is None or txn is None:
        msg = "reject-path benchmarks missing from the report"
        if args.require_scaling:
            failures.append(msg)
        else:
            print(f"reject-path: SKIPPED ({msg})")
    else:
        speedup = classic / txn
        print(f"reject-path: classic revert {classic:.2f} vs transaction "
              f"rollback {txn:.2f} ({speedup:.2f}x, gate >= "
              f"{args.min_reject_speedup:.2f}x)")
        if speedup < args.min_reject_speedup:
            failures.append(
                f"reject-path speedup {speedup:.2f}x below the "
                f"{args.min_reject_speedup:.2f}x gate")

    # --- 8. drift against the committed baseline -------------------------
    if args.baseline:
        baseline = load_times(args.baseline)
        shared = sorted(set(times) & set(baseline))
        if not shared:
            print("baseline: no overlapping benchmarks, nothing to compare")
        for name in shared:
            ratio = times[name] / baseline[name]
            marker = ""
            if ratio > args.max_regression:
                failures.append(
                    f"{name}: {ratio:.2f}x slower than the baseline "
                    f"(limit {args.max_regression:.1f}x)")
                marker = "  <-- REGRESSION"
            print(f"baseline: {name}: {ratio:5.2f}x of recorded "
                  f"time{marker}")

    if failures:
        print("\nPERF CHECK FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
