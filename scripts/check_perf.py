#!/usr/bin/env python3
"""Perf gates for CI over a google-benchmark JSON report.

Eleven checks, in order:

1. Warm-start gate (hard): the warm-started steady solve must be at
   least --min-warm-speedup (default 2.0) times faster than the cold
   solve at the 64x64 grid -- the ThermalEngine contract since PR 2.
2. Sweep-scaling gate (hard): the sharded fixed-work solve at 4 threads
   must be at least --min-scaling (default 1.8) times faster than at 1
   thread on the 128x128 grid -- the sweep-pool contract.  Skipped with
   a notice when the report has no sharded entries (machines without
   the benchmark) unless --require-scaling is given.
3. Batched-eval gate (hard): scoring 4 candidates in one
   solve_steady_batch call on 4 threads must be at least
   --min-batch-speedup (default 1.5) times faster than the 4 sequential
   solve_steady calls of the unbatched annealing loop (batch:1/threads:1)
   at the 64x64 grid -- the field-pool contract since PR 4.  The
   sharded-sequential comparison (batch:1/threads:4) is printed for
   context but not gated (sweep sharding at 64x64 sits between serial
   and candidate-parallel).  Skipped like the scaling gate when the
   entries are missing, unless --require-scaling is given.
4. Multigrid gate (hard): the V-cycle backend must solve the 128x128
   field-cold steady state at least --min-mg-speedup (default 2.0)
   times faster than the SOR backend (BM_SolveSteadyCold/128 vs
   BM_SolveSteadyMultigrid/128) -- the solver-policy contract since
   PR 5.  Cold solves are where SOR's smooth-error tail is worst; the
   warm 64x64 gate (check 1) and the drift check keep the warm path
   honest at the same time.  Skipped like the scaling gate when the
   entries are missing, unless --require-scaling is given.
5. FMG gate (hard): the FMG-seeded cold solve at 192x192 must be at
   least --min-fmg-speedup (default 2.0) times faster than the plain
   V-cycle cold path it replaced as the default
   (BM_SolveSteadyMultigrid/192 vs BM_SolveSteadyFmg/192) -- the
   full-multigrid contract since PR 10.  The FMG descent/ascent leaves
   a seed at ~truncation error, so the fine V-cycle loop stops after ~2
   cycles instead of 6-9; the edge widens with the grid because the
   seed is truncation-limited while the stopping tolerance is fixed
   (1.6x at 128, >= 2.1x at 192 and 256 on the reference VM).  Skipped
   like the scaling gate when the entries are missing, unless
   --require-scaling is given.
6. Transient-multigrid gate (hard): stiff implicit-Euler stepping
   through the multigrid preconditioner (BM_TransientStiff/mg:1, a
   V-cycle on G + C/dt per step) must be at least
   --min-transient-mg-speedup (default 2.0) times faster than the
   per-step SOR loop (mg:0) -- the transient-preconditioner contract
   since PR 10.  Large steps relative to the thermal RC make each
   implicit solve as hard as a steady solve, which is where per-step
   SOR drowns in sweeps (>= 20x on the reference VM; the gate is set
   well below to absorb runner variance).  Skipped like the scaling
   gate when the entries are missing, unless --require-scaling is
   given.
7. SIMD sweep gate (hard): the AVX2 red-black sweep kernel on a fixed
   sweep budget at the L2-resident 64x64 grid (BM_SweepKernel/simd:1)
   must be at least --min-simd-speedup (default 1.05) times faster
   than the scalar kernel (simd:0) -- the vectorized-smoother contract
   since PR 10.  The margin is structurally modest: the stride-2
   red-black access forces a deinterleave (2 loads + unpack + permute
   per operand vector) and the bitwise contract forbids FMA, so the
   4-wide ALU win is mostly spent on shuffles (measured ~1.15x
   in-cache; at DRAM-bound sizes the kernels tie, which is why the
   gate pins the cache-resident grid).  Skipped when the simd:1 entry
   is missing (hosts without AVX2 skip that benchmark), unless
   --require-scaling is given.
8. Cheap-eval gate (hard): the incremental cheap evaluation at n800
   (BM_CheapEval/incremental:1 -- per-net HPWL/delay caches plus
   dirty-die bounds, isolated from move proposal and repacking) must be
   at least --min-cheap-eval-speedup (default 5.0) times faster than
   the full-rescan path (incremental:0) -- the incremental-evaluation
   contract since PR 6.  Skipped like the scaling gate when the entries
   are missing, unless --require-scaling is given.
9. Moves/sec gate (hard): the end-to-end annealing step loop at n800
   with the incremental pipeline on (BM_AnnealStepCheap/incremental:1,
   routed through MoveTransaction since PR 7) must sustain at least
   --min-moves-per-sec moves per second (default 5500).  The PR 7
   pipeline measures ~6200 on the 1-CPU reference VM, 1.23x the PR 6
   loop's recorded 5040 (the pack-time id->slot maps plus the
   journaled-rollback reject path); the gate sits between the two so a
   regression to the PR 6 shape fails while runner variance does not.
   The step-level speedup over incremental:0 is printed for context.
   Skipped like the scaling gate when the entries are missing, unless
   --require-scaling is given.
10. Reject-path gate (hard): the forced-reject move stream at n800
    through MoveTransaction (BM_AnnealStepReject/transactional:1 --
    stage, evaluate, roll the journaled caches back) must be at least
    --min-reject-speedup (default 1.05) times faster than the classic
    revert-and-repack pattern (transactional:0, which re-packs the
    reverted die on the NEXT move's apply_to) -- the transactional-moves
    contract since PR 7.  The margin is structurally modest: the PR 6
    die stamps already confine the classic double pack to the one dirty
    die and evaluation dirt dominates both paths, so the rollback saves
    one ~12us repack plus the second die of eval dirt per rejection
    (measured 1.09-1.29x across runs; the floor asserts the reject path
    never pays MORE than classic).  Skipped like the scaling gate when
    the entries are missing, unless --require-scaling is given.
11. Baseline drift (soft by default): benchmarks present in both the
    report and --baseline are compared; regressions beyond
    --max-regression (default 2.5x) fail the check.  The generous
    default tolerates CI-runner variance while still catching
    catastrophic slowdowns against the committed BENCH_pr10.json.

The run ends with a gate-summary table (measured vs threshold with the
margin in percent); --json-out writes the same data machine-readably.

Usage:
  check_perf.py RESULT.json [--baseline BENCH_pr10.json] [options]
"""
import argparse
import json
import sys

# Median aggregates are gated (robust to a noisy repetition); the mean is
# reported alongside for context.
AGG = "_median"


def load_times(path, agg=AGG):
    """Map benchmark name (aggregate suffix stripped) -> real_time."""
    return {name: t for name, (t, _) in load_report(path, agg).items()}


def load_report(path, agg=AGG):
    """Map name (aggregate stripped) -> (real_time, items_per_second).

    items_per_second is None for benchmarks without SetItemsProcessed.
    Unaggregated reports (no repetitions) fall back to the plain entries.
    """
    with open(path) as fh:
        data = json.load(fh)
    report = {}
    plain = {}
    for bench in data.get("benchmarks", []):
        name = bench["name"]
        if "real_time" not in bench:
            continue  # complexity-fit entries (_BigO/_RMS) have no time
        ips = bench.get("items_per_second")
        row = (float(bench["real_time"]),
               float(ips) if ips is not None else None)
        if name.endswith(agg):
            report[name[: -len(agg)]] = row
        elif bench.get("run_type", "iteration") == "iteration":
            plain[name] = row
    return report or plain


class GateLog:
    """Collects per-gate outcomes for the summary table and --json-out."""

    def __init__(self):
        self.rows = []
        self.failures = []

    def record(self, gate, measured, threshold, detail=""):
        """A measured hard gate: fails when measured < threshold."""
        passed = measured >= threshold
        self.rows.append({"gate": gate, "measured": measured,
                          "threshold": threshold, "passed": passed,
                          "skipped": False})
        if not passed:
            self.failures.append(
                f"{gate}: {detail or f'{measured:.2f}'} below the "
                f"{threshold:g} gate")
        return passed

    def skip(self, gate, reason, hard):
        self.rows.append({"gate": gate, "measured": None, "threshold": None,
                          "passed": not hard, "skipped": True})
        if hard:
            self.failures.append(f"{gate}: {reason}")
        else:
            print(f"{gate}: SKIPPED ({reason})")

    def summary(self):
        print("\n--- gate summary " + "-" * 49)
        header = f"{'gate':<16} {'measured':>10} {'threshold':>10} " \
                 f"{'margin':>8}  status"
        print(header)
        for row in self.rows:
            if row["skipped"]:
                print(f"{row['gate']:<16} {'-':>10} {'-':>10} {'-':>8}  SKIP")
                continue
            margin = (row["measured"] / row["threshold"] - 1.0) * 100.0
            status = "PASS" if row["passed"] else "FAIL"
            print(f"{row['gate']:<16} {row['measured']:>10.2f} "
                  f"{row['threshold']:>10.2f} {margin:>+7.0f}%  {status}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", help="google-benchmark JSON report")
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--min-warm-speedup", type=float, default=2.0)
    parser.add_argument("--min-scaling", type=float, default=1.8)
    parser.add_argument("--scaling-threads", type=int, default=4)
    parser.add_argument("--min-batch-speedup", type=float, default=1.5)
    parser.add_argument("--min-mg-speedup", type=float, default=2.0)
    parser.add_argument("--min-fmg-speedup", type=float, default=2.0)
    parser.add_argument("--min-transient-mg-speedup", type=float, default=2.0)
    parser.add_argument("--min-simd-speedup", type=float, default=1.05)
    parser.add_argument("--min-cheap-eval-speedup", type=float, default=5.0)
    parser.add_argument("--min-moves-per-sec", type=float, default=5500.0)
    parser.add_argument("--min-reject-speedup", type=float, default=1.05)
    parser.add_argument("--max-regression", type=float, default=2.5)
    parser.add_argument(
        "--require-scaling", action="store_true",
        help="fail (instead of skip) when gated benchmark entries are "
             "missing from the report")
    parser.add_argument(
        "--json-out", metavar="PATH",
        help="write the gate summary and drift table as JSON")
    args = parser.parse_args()

    report = load_report(args.result)
    times = {name: t for name, (t, _) in report.items()}
    log = GateLog()

    # --- 1. warm-start speedup -------------------------------------------
    cold = times.get("BM_SolveSteadyCold/64")
    warm = times.get("BM_SolveSteadyWarm/64")
    if cold is None or warm is None:
        log.skip("warm-start", "warm-start benchmarks missing from the "
                 "report", hard=True)
    else:
        speedup = cold / warm
        print(f"warm-start: cold {cold:.2f} vs warm {warm:.2f} "
              f"({speedup:.2f}x, gate >= {args.min_warm_speedup:.1f}x)")
        log.record("warm-start", speedup, args.min_warm_speedup,
                   f"warm-start speedup {speedup:.2f}x")

    # --- 2. sharded-sweep scaling ----------------------------------------
    base = times.get("BM_SolveSteadySharded/threads:1/real_time")
    wide = times.get(
        f"BM_SolveSteadySharded/threads:{args.scaling_threads}/real_time")
    if base is None or wide is None:
        log.skip("scaling", "sharded-sweep benchmarks missing from the "
                 "report", hard=args.require_scaling)
    else:
        scaling = base / wide
        print(f"scaling: 1 thread {base:.2f} vs {args.scaling_threads} "
              f"threads {wide:.2f} ({scaling:.2f}x, gate >= "
              f"{args.min_scaling:.1f}x)")
        log.record("scaling", scaling, args.min_scaling,
                   f"sharded-sweep scaling {scaling:.2f}x at "
                   f"{args.scaling_threads} threads")

    # --- 3. batched candidate evaluation ---------------------------------
    seq = times.get("BM_BatchedEval/batch:1/threads:1/real_time")
    sharded_seq = times.get("BM_BatchedEval/batch:1/threads:4/real_time")
    batched = times.get("BM_BatchedEval/batch:4/threads:4/real_time")
    if seq is None or batched is None:
        log.skip("batched-eval", "batched-eval benchmarks missing from the "
                 "report", hard=args.require_scaling)
    else:
        speedup = seq / batched
        print(f"batched-eval: sequential {seq:.2f} vs batch-of-4 "
              f"{batched:.2f} ({speedup:.2f}x, gate >= "
              f"{args.min_batch_speedup:.1f}x)")
        if sharded_seq is not None:
            print(f"batched-eval: vs sharded-sequential {sharded_seq:.2f} "
                  f"({sharded_seq / batched:.2f}x, informational)")
        log.record("batched-eval", speedup, args.min_batch_speedup,
                   f"batched-eval speedup {speedup:.2f}x")

    # --- 4. multigrid vs SOR on field-cold 128x128 solves ----------------
    sor_cold = times.get("BM_SolveSteadyCold/128")
    mg_cold = times.get("BM_SolveSteadyMultigrid/128")
    if sor_cold is None or mg_cold is None:
        log.skip("multigrid", "multigrid benchmarks missing from the "
                 "report", hard=args.require_scaling)
    else:
        speedup = sor_cold / mg_cold
        print(f"multigrid: SOR cold {sor_cold:.2f} vs V-cycle cold "
              f"{mg_cold:.2f} ({speedup:.2f}x, gate >= "
              f"{args.min_mg_speedup:.1f}x)")
        log.record("multigrid", speedup, args.min_mg_speedup,
                   f"multigrid speedup {speedup:.2f}x")

    # --- 5. FMG vs plain V-cycle cold starts at 192x192 ------------------
    plain_v = times.get("BM_SolveSteadyMultigrid/192")
    fmg = times.get("BM_SolveSteadyFmg/192")
    if plain_v is None or fmg is None:
        log.skip("fmg", "FMG benchmarks missing from the report",
                 hard=args.require_scaling)
    else:
        speedup = plain_v / fmg
        print(f"fmg: plain V-cycle cold {plain_v:.2f} vs FMG-seeded "
              f"{fmg:.2f} ({speedup:.2f}x, gate >= "
              f"{args.min_fmg_speedup:.1f}x)")
        log.record("fmg", speedup, args.min_fmg_speedup,
                   f"FMG speedup {speedup:.2f}x")

    # --- 6. multigrid-preconditioned stiff transients --------------------
    t_sor = times.get("BM_TransientStiff/mg:0")
    t_mg = times.get("BM_TransientStiff/mg:1")
    if t_sor is None or t_mg is None:
        log.skip("transient-mg", "stiff-transient benchmarks missing from "
                 "the report", hard=args.require_scaling)
    else:
        speedup = t_sor / t_mg
        print(f"transient-mg: per-step SOR {t_sor:.2f} vs V-cycle "
              f"preconditioner {t_mg:.2f} ({speedup:.2f}x, gate >= "
              f"{args.min_transient_mg_speedup:.1f}x)")
        log.record("transient-mg", speedup, args.min_transient_mg_speedup,
                   f"transient multigrid speedup {speedup:.2f}x")

    # --- 7. SIMD vs scalar sweep kernel ----------------------------------
    scalar = times.get("BM_SweepKernel/simd:0")
    simd = times.get("BM_SweepKernel/simd:1")
    if scalar is None or simd is None:
        log.skip("simd-sweep", "SIMD sweep benchmarks missing from the "
                 "report (host without AVX2?)", hard=args.require_scaling)
    else:
        speedup = scalar / simd
        print(f"simd-sweep: scalar {scalar:.2f} vs AVX2 {simd:.2f} "
              f"({speedup:.2f}x, gate >= {args.min_simd_speedup:.2f}x)")
        log.record("simd-sweep", speedup, args.min_simd_speedup,
                   f"SIMD sweep speedup {speedup:.2f}x")

    # --- 8. incremental cheap-eval speedup at n800 -----------------------
    full_eval = times.get("BM_CheapEval/incremental:0")
    inc_eval = times.get("BM_CheapEval/incremental:1")
    if full_eval is None or inc_eval is None:
        log.skip("cheap-eval", "cheap-eval benchmarks missing from the "
                 "report", hard=args.require_scaling)
    else:
        speedup = full_eval / inc_eval
        print(f"cheap-eval: full rescan {full_eval:.2f} vs incremental "
              f"{inc_eval:.2f} ({speedup:.2f}x, gate >= "
              f"{args.min_cheap_eval_speedup:.1f}x)")
        log.record("cheap-eval", speedup, args.min_cheap_eval_speedup,
                   f"cheap-eval speedup {speedup:.2f}x")

    # --- 9. absolute annealing throughput at n800 ------------------------
    step_name = "BM_AnnealStepCheap/incremental:1/real_time"
    step_seed = "BM_AnnealStepCheap/incremental:0/real_time"
    moves_per_sec = report.get(step_name, (None, None))[1]
    if moves_per_sec is None:
        log.skip("moves/sec", "annealing-step benchmarks missing from the "
                 "report", hard=args.require_scaling)
    else:
        print(f"moves/sec: {moves_per_sec:.0f} at n800 incremental "
              f"(gate >= {args.min_moves_per_sec:.0f})")
        if step_name in times and step_seed in times:
            print(f"moves/sec: step-level speedup over the seed path "
                  f"{times[step_seed] / times[step_name]:.2f}x "
                  f"(informational)")
        log.record("moves/sec", moves_per_sec, args.min_moves_per_sec,
                   f"annealing throughput {moves_per_sec:.0f} moves/sec")

    # --- 10. reject-path speedup through MoveTransaction at n800 ---------
    classic = times.get("BM_AnnealStepReject/transactional:0/real_time")
    txn = times.get("BM_AnnealStepReject/transactional:1/real_time")
    if classic is None or txn is None:
        log.skip("reject-path", "reject-path benchmarks missing from the "
                 "report", hard=args.require_scaling)
    else:
        speedup = classic / txn
        print(f"reject-path: classic revert {classic:.2f} vs transaction "
              f"rollback {txn:.2f} ({speedup:.2f}x, gate >= "
              f"{args.min_reject_speedup:.2f}x)")
        log.record("reject-path", speedup, args.min_reject_speedup,
                   f"reject-path speedup {speedup:.2f}x")

    # --- 11. drift against the committed baseline ------------------------
    drift = []
    if args.baseline:
        baseline = load_times(args.baseline)
        shared = sorted(set(times) & set(baseline))
        if not shared:
            print("baseline: no overlapping benchmarks, nothing to compare")
        for name in shared:
            ratio = times[name] / baseline[name]
            regressed = ratio > args.max_regression
            drift.append({"benchmark": name, "ratio": ratio,
                          "regressed": regressed})
            marker = ""
            if regressed:
                log.failures.append(
                    f"{name}: {ratio:.2f}x slower than the baseline "
                    f"(limit {args.max_regression:.1f}x)")
                marker = "  <-- REGRESSION"
            print(f"baseline: {name}: {ratio:5.2f}x of recorded "
                  f"time{marker}")

    log.summary()

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump({"gates": log.rows, "drift": drift,
                       "failures": log.failures,
                       "passed": not log.failures}, fh, indent=2)
            fh.write("\n")
        print(f"\njson summary written to {args.json_out}")

    if log.failures:
        print("\nPERF CHECK FAILED:")
        for failure in log.failures:
            print(f"  - {failure}")
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
