// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Command-line driver for the full Fig. 3 flow, in the spirit of the
// Corblivar binary the paper released its techniques in.  Usage:
//
//   tsc3d [--config=FILE] [--benchmark=n100 | --blocks=F [--nets=F]
//         [--pl=F] [--power=F]] [--mode=power|tsc] [--seed=N]
//         [--moves=N] [--batch=K] [--threads=N] [--chains=K] [--out=DIR]
//         [--quiet]
//
// The design comes either from a named Table 1 benchmark (synthetic,
// deterministic per seed) or from GSRC bookshelf files.  The flow
// floorplans it, prints the Table 2 metric row, and optionally writes
// the power/thermal maps (CSV + PGM) and the placed GSRC bundle to
// --out.  Exit code 0 on a legal floorplan, 2 on an illegal one, 1 on
// usage/config errors.
#include <filesystem>
#include <iostream>
#include <string>

#include "benchgen/generator.hpp"
#include "benchgen/gsrc_io.hpp"
#include "config/apply.hpp"
#include "config/config_file.hpp"
#include "core/map_io.hpp"
#include "floorplan/floorplanner.hpp"
#include "thermal/thermal_engine.hpp"

namespace {

struct CliArgs {
  std::string config;
  std::string benchmark = "n100";
  std::string blocks, nets, pl, power;
  std::string mode;  // empty = from config / default
  std::string solver;  // empty = from config / default
  std::string incremental;  // empty = from config / default
  std::string out;
  std::uint64_t seed = 1;
  std::size_t moves = 0;
  std::size_t batch = 0;    // 0 = from config / default
  std::size_t threads = 0;  // 0 = from config / default
  std::size_t chains = 0;   // 0 = from config / default
  // SIZE_MAX = from config / default (0 is meaningful: checks off).
  std::size_t cross_check = static_cast<std::size_t>(-1);
  bool quiet = false;
  bool help = false;
};

void print_usage() {
  std::cout <<
      "tsc3d: thermal side-channel-aware 3D floorplanner (DAC'17)\n"
      "\n"
      "usage: tsc3d [options]\n"
      "  --config=FILE     Corblivar-style config file\n"
      "  --benchmark=NAME  Table 1 benchmark (n100 n200 n300 ibm01 ibm03\n"
      "                    ibm07); ignored when --blocks is given\n"
      "  --blocks=FILE     GSRC .blocks input\n"
      "  --nets=FILE       GSRC .nets input\n"
      "  --pl=FILE         GSRC .pl input (initial placement)\n"
      "  --power=FILE      per-module power sidecar\n"
      "  --mode=power|tsc  flow preset (overrides config)\n"
      "  --solver=NAME     steady-state thermal backend: auto (default;\n"
      "                    picks per engine role), sor, or multigrid\n"
      "                    (V-cycles + FMG; wins on cold/large solves)\n"
      "  --incremental=on|off\n"
      "                    incremental move evaluation (dirty-die repack +\n"
      "                    cached wirelength/delay/outline; default on,\n"
      "                    bitwise-identical results either way)\n"
      "  --cross-check=N   every Nth incremental cheap evaluation, verify\n"
      "                    the cached terms against a full rescan and abort\n"
      "                    on any bitwise mismatch (0 = off; defaults to\n"
      "                    256 in debug builds, 0 in release)\n"
      "  --seed=N          RNG seed (default 1)\n"
      "  --moves=N         SA moves (0 = auto)\n"
      "  --batch=K         candidate moves scored per annealing step\n"
      "                    (default 1; batches fan out across --threads)\n"
      "  --threads=N       worker threads per thermal engine (default 1;\n"
      "                    threaded solves are bitwise-identical to serial)\n"
      "  --chains=K        parallel-tempering annealing chains (default 1)\n"
      "  --out=DIR         write maps + placed GSRC bundle here\n"
      "  --quiet           suppress the per-metric report\n"
      "  --help            this text\n"
      "\n"
      "Config-file keys are documented in docs/CONFIG.md; the\n"
      "architecture overview lives in docs/ARCHITECTURE.md.  Batch\n"
      "sweeps with checkpoint/resume and result caching run through the\n"
      "tsc3d_batch companion binary, documented in docs/JOBS.md.\n";
}

CliArgs parse_args(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") args.help = true;
    else if (arg == "--quiet") args.quiet = true;
    else if (arg.rfind("--config=", 0) == 0) args.config = value("--config=");
    else if (arg.rfind("--benchmark=", 0) == 0)
      args.benchmark = value("--benchmark=");
    else if (arg.rfind("--blocks=", 0) == 0) args.blocks = value("--blocks=");
    else if (arg.rfind("--nets=", 0) == 0) args.nets = value("--nets=");
    else if (arg.rfind("--pl=", 0) == 0) args.pl = value("--pl=");
    else if (arg.rfind("--power=", 0) == 0) args.power = value("--power=");
    else if (arg.rfind("--mode=", 0) == 0) args.mode = value("--mode=");
    else if (arg.rfind("--solver=", 0) == 0) args.solver = value("--solver=");
    else if (arg.rfind("--incremental=", 0) == 0)
      args.incremental = value("--incremental=");
    else if (arg.rfind("--cross-check=", 0) == 0)
      args.cross_check = std::stoul(value("--cross-check="));
    else if (arg.rfind("--seed=", 0) == 0)
      args.seed = std::stoull(value("--seed="));
    else if (arg.rfind("--moves=", 0) == 0)
      args.moves = std::stoul(value("--moves="));
    else if (arg.rfind("--batch=", 0) == 0)
      args.batch = std::stoul(value("--batch="));
    else if (arg.rfind("--threads=", 0) == 0)
      args.threads = std::stoul(value("--threads="));
    else if (arg.rfind("--chains=", 0) == 0)
      args.chains = std::stoul(value("--chains="));
    else if (arg.rfind("--out=", 0) == 0) args.out = value("--out=");
    else
      throw std::runtime_error("unknown argument: " + arg +
                               " (try --help)");
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsc3d;
  try {
    const CliArgs args = parse_args(argc, argv);
    if (args.help) {
      print_usage();
      return 0;
    }

    config::ConfigFile cfg;
    if (!args.config.empty()) cfg = config::ConfigFile::load(args.config);

    floorplan::FloorplannerOptions opt =
        config::make_floorplanner_options(cfg);
    if (args.mode == "tsc")
      opt = floorplan::Floorplanner::tsc_aware_setup();
    else if (args.mode == "power")
      opt = floorplan::Floorplanner::power_aware_setup();
    else if (!args.mode.empty())
      throw std::runtime_error("--mode must be 'power' or 'tsc'");
    if (!args.mode.empty() && !args.config.empty())
      config::apply_thermal(cfg, opt.thermal);  // keep thermal overrides
    if (args.moves > 0) opt.anneal.total_moves = args.moves;
    if (args.batch > 0) opt.anneal.batch_candidates = args.batch;
    if (args.threads > 0) opt.parallel.threads = args.threads;
    if (args.chains > 0) opt.chains.chains = args.chains;
    if (args.solver == "sor")
      opt.thermal.solver = SolverBackend::sor;
    else if (args.solver == "multigrid")
      opt.thermal.solver = SolverBackend::multigrid;
    else if (args.solver == "auto")
      opt.thermal.solver = SolverBackend::auto_select;
    else if (!args.solver.empty())
      throw std::runtime_error(
          "--solver must be 'auto', 'sor' or 'multigrid'");
    if (args.incremental == "on")
      opt.incremental_eval = true;
    else if (args.incremental == "off")
      opt.incremental_eval = false;
    else if (!args.incremental.empty())
      throw std::runtime_error("--incremental must be 'on' or 'off'");
    if (args.cross_check != static_cast<std::size_t>(-1))
      opt.cross_check_interval = args.cross_check;

    TechnologyConfig tech;
    config::apply_technology(cfg, tech);

    // Reject config typos loudly rather than run with silent defaults.
    const auto unused = cfg.unused_keys();
    if (!unused.empty()) {
      std::cerr << "error: unrecognized config keys:\n";
      for (const auto& key : unused) std::cerr << "  " << key << "\n";
      return 1;
    }

    Floorplan3D fp = args.blocks.empty()
                         ? benchgen::generate(args.benchmark, args.seed)
                         : benchgen::read_bundle(tech, args.blocks,
                                                 args.nets, args.pl,
                                                 args.power);
    if (!args.blocks.empty() && !args.config.empty())
      fp.tech() = tech;  // config technology governs file-based designs

    Rng rng(args.seed);
    const floorplan::Floorplanner planner(opt);
    const floorplan::FloorplanMetrics metrics = planner.run(fp, rng);

    if (!args.quiet) {
      std::cout << "design          : "
                << (args.blocks.empty() ? args.benchmark : args.blocks)
                << " (" << fp.modules().size() << " modules, "
                << fp.nets().size() << " nets)\n"
                << "mode            : "
                << (opt.mode == floorplan::FlowMode::tsc_aware ? "tsc"
                                                               : "power")
                << "\nlegal           : " << (metrics.legal ? "yes" : "NO")
                << "\ncorrelation r1  : " << metrics.correlation[0]
                << "\ncorrelation r2  : " << metrics.correlation[1]
                << "\nspatial entropy : " << metrics.entropy[0] << " / "
                << metrics.entropy[1]
                << "\npower [W]       : " << metrics.power_w
                << "\ncritical delay  : " << metrics.critical_delay_ns
                << " ns\nwirelength [m]  : " << metrics.wirelength_m
                << "\npeak temp [K]   : " << metrics.peak_k
                << "\nsignal TSVs     : " << metrics.signal_tsvs
                << "\ndummy TSVs      : " << metrics.dummy_tsvs
                << "\nvoltage volumes : " << metrics.voltage_volumes
                << "\nruntime [s]     : " << metrics.runtime_s << "\n";
      if (metrics.chains.chains.size() > 1)
        std::cout << "tempering       : " << metrics.chains.chains.size()
                  << " chains, winner " << metrics.chains.winner << ", "
                  << metrics.chains.exchange.accepts << "/"
                  << metrics.chains.exchange.attempts
                  << " exchanges accepted\n";
    }

    if (!args.out.empty()) {
      const std::filesystem::path dir(args.out);
      std::filesystem::create_directories(dir);
      benchgen::write_bundle(fp, dir / "floorplan");

      thermal::ThermalEngine engine(fp.tech(), opt.thermal, {},
                                    thermal::EngineRole::verify);
      const std::size_t nx = opt.thermal.grid_nx, ny = opt.thermal.grid_ny;
      std::vector<GridD> power;
      for (std::size_t d = 0; d < fp.tech().num_dies; ++d)
        power.push_back(fp.power_map(d, nx, ny));
      const auto thermal_res =
          engine.solve_steady(power, fp.tsv_density_map(nx, ny));
      if (!args.quiet) {
        std::cout << "thermal solve   : " << thermal_res.iterations
                  << " sweeps";
        if (thermal_res.vcycles > 0)
          std::cout << " (" << thermal_res.vcycles << " V-cycles)";
        std::cout << ", "
                  << (thermal_res.converged ? "converged" : "NOT CONVERGED")
                  << " (residual " << thermal_res.residual_k << " K)\n";
      }
      for (std::size_t d = 0; d < fp.tech().num_dies; ++d) {
        const std::string stem = "die" + std::to_string(d);
        write_csv(power[d], dir / (stem + "_power.csv"));
        write_pgm(power[d], dir / (stem + "_power.pgm"));
        write_csv(thermal_res.die_temperature[d],
                  dir / (stem + "_thermal.csv"));
        write_pgm(thermal_res.die_temperature[d],
                  dir / (stem + "_thermal.pgm"));
      }
      if (!args.quiet)
        std::cout << "outputs written : " << dir.string() << "\n";
    }

    return metrics.legal ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
