// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Batch design-space-exploration driver: a durable job queue of
// (design, config, seed) explorations drained by worker processes, with
// crash-safe annealing checkpoints and a content-addressed result
// cache.  Operator guide: docs/JOBS.md.
//
//   tsc3d_batch enqueue --queue=DIR [--config=FILE]
//                       (--benchmark=NAME | --blocks=F [--nets=F]
//                        [--pl=F] [--power=F]) --seeds=A[-B]
//   tsc3d_batch work    --queue=DIR [--config=FILE] [--max-jobs=N]
//   tsc3d_batch status  --queue=DIR [--config=FILE]
//
// Exit codes: 0 on success (work: all attempted jobs succeeded, even if
// some floorplans came out illegal -- illegality is a RESULT, not an
// error), 1 on usage/config/queue errors or any failed job.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "config/apply.hpp"
#include "config/config_file.hpp"
#include "service/job_queue.hpp"
#include "service/worker.hpp"

namespace {

struct BatchArgs {
  std::string command;
  std::string config;
  std::string queue;
  std::string benchmark;
  std::string blocks, nets, pl, power;
  std::string seeds = "1";
  std::size_t max_jobs = 0;  // 0 = drain until empty
  std::size_t checkpoint_interval = 0;  // 0 = from config / default
  double lease = -1.0;  // <0 = from config / default
  bool no_cache = false;
  bool help = false;
};

void print_usage() {
  std::cout <<
      "tsc3d_batch: durable batch exploration for tsc3d (see docs/JOBS.md)\n"
      "\n"
      "usage: tsc3d_batch <enqueue|work|status> [options]\n"
      "  enqueue   add one job per seed to the queue (idempotent)\n"
      "  work      claim + run jobs until the queue is empty\n"
      "  status    print queue occupancy\n"
      "\n"
      "options:\n"
      "  --queue=DIR       queue directory (default tsc3d-queue; also\n"
      "                    service.queue_dir in the config)\n"
      "  --config=FILE     Corblivar-style config; its text is embedded\n"
      "                    verbatim in enqueued jobs and hashed into the\n"
      "                    cache key\n"
      "  --benchmark=NAME  Table 1 benchmark to enqueue\n"
      "  --blocks=FILE     GSRC .blocks input (with --nets/--pl/--power)\n"
      "  --nets=FILE --pl=FILE --power=FILE\n"
      "  --seeds=A[-B]     seed or inclusive seed range (default 1)\n"
      "  --max-jobs=N      work: stop after N jobs (default: drain)\n"
      "  --checkpoint-interval=N\n"
      "                    checkpoint every N annealing stages\n"
      "  --lease=SECONDS   claim lease before a job is presumed orphaned\n"
      "  --no-cache        bypass the result cache\n"
      "  --help            this text\n"
      "\n"
      "Queue layout, checkpoint/resume semantics and cache-key rules are\n"
      "documented in docs/JOBS.md; config keys in docs/CONFIG.md.\n";
}

BatchArgs parse_args(int argc, char** argv) {
  BatchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") args.help = true;
    else if (arg == "--no-cache") args.no_cache = true;
    else if (arg.rfind("--queue=", 0) == 0) args.queue = value("--queue=");
    else if (arg.rfind("--config=", 0) == 0) args.config = value("--config=");
    else if (arg.rfind("--benchmark=", 0) == 0)
      args.benchmark = value("--benchmark=");
    else if (arg.rfind("--blocks=", 0) == 0) args.blocks = value("--blocks=");
    else if (arg.rfind("--nets=", 0) == 0) args.nets = value("--nets=");
    else if (arg.rfind("--pl=", 0) == 0) args.pl = value("--pl=");
    else if (arg.rfind("--power=", 0) == 0) args.power = value("--power=");
    else if (arg.rfind("--seeds=", 0) == 0) args.seeds = value("--seeds=");
    else if (arg.rfind("--max-jobs=", 0) == 0)
      args.max_jobs = std::stoul(value("--max-jobs="));
    else if (arg.rfind("--checkpoint-interval=", 0) == 0)
      args.checkpoint_interval =
          std::stoul(value("--checkpoint-interval="));
    else if (arg.rfind("--lease=", 0) == 0)
      args.lease = std::stod(value("--lease="));
    else if (arg.rfind("--", 0) == 0)
      throw std::runtime_error("unknown argument: " + arg + " (try --help)");
    else if (args.command.empty())
      args.command = arg;
    else
      throw std::runtime_error("unexpected argument: " + arg);
  }
  return args;
}

std::pair<std::uint64_t, std::uint64_t> parse_seed_range(
    const std::string& spec) {
  const auto dash = spec.find('-');
  const std::uint64_t lo = std::stoull(spec.substr(0, dash));
  const std::uint64_t hi =
      dash == std::string::npos ? lo : std::stoull(spec.substr(dash + 1));
  if (hi < lo)
    throw std::runtime_error("--seeds range must be ascending: " + spec);
  return {lo, hi};
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsc3d;
  try {
    const BatchArgs args = parse_args(argc, argv);
    if (args.help || args.command.empty()) {
      print_usage();
      return args.help ? 0 : 1;
    }

    const std::string config_text =
        args.config.empty() ? std::string() : read_file(args.config);
    const config::ConfigFile cfg =
        config::ConfigFile::parse(config_text, args.config);
    service::ServiceOptions opt = config::make_service_options(cfg);
    if (!args.queue.empty()) opt.queue_dir = args.queue;
    if (args.checkpoint_interval > 0)
      opt.checkpoint_interval = args.checkpoint_interval;
    if (args.lease >= 0.0) opt.claim_lease_s = args.lease;
    if (args.no_cache) opt.cache = false;

    service::JobQueue queue(opt);

    if (args.command == "enqueue") {
      if (args.benchmark.empty() && args.blocks.empty())
        throw std::runtime_error("enqueue needs --benchmark or --blocks");
      const auto [lo, hi] = parse_seed_range(args.seeds);
      service::JobSpec job;
      job.benchmark = args.blocks.empty() ? args.benchmark : std::string();
      job.blocks = args.blocks;
      job.nets = args.nets;
      job.pl = args.pl;
      job.power = args.power;
      job.config_text = config_text;
      for (std::uint64_t seed = lo; seed <= hi; ++seed) {
        job.seed = seed;
        std::cout << "enqueued " << queue.enqueue(job) << " (seed " << seed
                  << ")\n";
      }
      return 0;
    }

    if (args.command == "work") {
      std::size_t attempted = 0, failed = 0;
      while (args.max_jobs == 0 || attempted < args.max_jobs) {
        const auto report = service::work_one(queue);
        if (!report) break;  // queue drained
        ++attempted;
        std::cout << "job " << report->id << ": "
                  << (report->ok
                          ? (report->cache_hit ? "cache hit"
                             : report->resumed ? "done (resumed)"
                                               : "done")
                          : "FAILED")
                  << (report->ok
                          ? (report->legal ? ", legal" : ", NOT legal")
                          : "")
                  << (report->ok && !report->cache_hit
                          ? ", " + std::to_string(report->sa_moves) +
                                " SA moves"
                          : "")
                  << (report->ok ? "" : ": " + report->error) << "\n";
        if (!report->ok) ++failed;
      }
      std::cout << attempted << " job(s) attempted, " << failed
                << " failed\n";
      return failed == 0 ? 0 : 1;
    }

    if (args.command == "status") {
      const service::QueueStatus s = queue.status();
      std::cout << "queue           : " << queue.root().string() << "\n"
                << "pending         : " << s.pending << "\n"
                << "claimed         : " << s.claimed << "\n"
                << "checkpoints     : " << s.checkpoints << "\n"
                << "done            : " << s.done << "\n"
                << "failed          : " << s.failed << "\n"
                << "cached results  : " << s.cached << "\n";
      return 0;
    }

    throw std::runtime_error("unknown command '" + args.command +
                             "' (try --help)");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
