// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Adversarial campaign driver: expands the [campaign] matrix (attacker
// model x mitigation x floorplan flavor x Monte-Carlo seed) into
// scenario jobs on the durable batch queue, drains them with N worker
// threads, and aggregates the per-attack leakage-vs-overhead Pareto
// fronts into a byte-stable report.  Operator guide: docs/CAMPAIGNS.md.
//
//   tsc3d_campaign run     --config=FILE [--queue=DIR] [--out=DIR]
//                          [--workers=N]
//   tsc3d_campaign enqueue --config=FILE [--queue=DIR]
//   tsc3d_campaign work    --queue=DIR [--config=FILE] [--workers=N]
//                          [--max-jobs=N]
//   tsc3d_campaign report  --config=FILE [--queue=DIR] [--out=DIR]
//   tsc3d_campaign status  --queue=DIR [--config=FILE]
//
// Exit codes: 0 on success, 1 on usage/config/queue errors or any
// failed scenario.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "config/apply.hpp"
#include "config/config_file.hpp"
#include "service/job_queue.hpp"

namespace {

struct CampaignArgs {
  std::string command;
  std::string config;
  std::string queue;
  std::string cache_dir;
  std::string out;
  std::size_t workers = 1;
  std::size_t max_jobs = 0;  // 0 = drain until empty
  bool no_cache = false;
  bool help = false;
};

void print_usage() {
  std::cout <<
      "tsc3d_campaign: adversarial campaign matrix runner for tsc3d\n"
      "(see docs/CAMPAIGNS.md)\n"
      "\n"
      "usage: tsc3d_campaign <run|enqueue|work|report|status> [options]\n"
      "  run       enqueue the [campaign] matrix, drain it, write the report\n"
      "  enqueue   add the matrix's scenario jobs to the queue (idempotent)\n"
      "  work      claim + run jobs (scenario or plain) until empty\n"
      "  report    aggregate cached scenario results into the report\n"
      "  status    print queue occupancy\n"
      "\n"
      "options:\n"
      "  --config=FILE   config with a [campaign] section (matrix axes,\n"
      "                  seeds, evaluation knobs; docs/CONFIG.md)\n"
      "  --queue=DIR     queue directory (default tsc3d-queue; also\n"
      "                  service.queue_dir in the config)\n"
      "  --cache-dir=DIR result/scenario cache directory (default\n"
      "                  <queue>/cache; share it across queues to reuse\n"
      "                  finished work)\n"
      "  --out=DIR       report directory (default campaign.report_dir,\n"
      "                  else tsc3d-campaign-report)\n"
      "  --workers=N     worker threads for run/work (default 1)\n"
      "  --max-jobs=N    work: stop after N jobs (default: drain)\n"
      "  --no-cache      bypass the exploration result cache\n"
      "  --help          this text\n"
      "\n"
      "Reports are byte-stable: the same config and seeds reproduce\n"
      "scenarios.csv, pareto.csv and SUMMARY.txt byte-for-byte at any\n"
      "worker count, fresh or from cache (docs/CAMPAIGNS.md).\n";
}

CampaignArgs parse_args(int argc, char** argv) {
  CampaignArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") args.help = true;
    else if (arg == "--no-cache") args.no_cache = true;
    else if (arg.rfind("--queue=", 0) == 0) args.queue = value("--queue=");
    else if (arg.rfind("--cache-dir=", 0) == 0)
      args.cache_dir = value("--cache-dir=");
    else if (arg.rfind("--config=", 0) == 0) args.config = value("--config=");
    else if (arg.rfind("--out=", 0) == 0) args.out = value("--out=");
    else if (arg.rfind("--workers=", 0) == 0)
      args.workers = std::stoul(value("--workers="));
    else if (arg.rfind("--max-jobs=", 0) == 0)
      args.max_jobs = std::stoul(value("--max-jobs="));
    else if (arg.rfind("--", 0) == 0)
      throw std::runtime_error("unknown argument: " + arg + " (try --help)");
    else if (args.command.empty())
      args.command = arg;
    else
      throw std::runtime_error("unexpected argument: " + arg);
  }
  return args;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t print_reports(
    const std::vector<tsc3d::campaign::ScenarioWorkReport>& reports) {
  std::size_t failed = 0;
  for (const auto& r : reports) {
    std::cout << "job " << r.id << ": "
              << (r.ok ? (r.cache_hit ? "cache hit" : "done") : "FAILED")
              << (r.scenario ? " [scenario]" : " [exploration]")
              << (r.ok ? "" : ": " + r.error) << "\n";
    if (!r.ok) ++failed;
  }
  std::cout << reports.size() << " job(s) attempted, " << failed
            << " failed\n";
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsc3d;
  try {
    const CampaignArgs args = parse_args(argc, argv);
    if (args.help || args.command.empty()) {
      print_usage();
      return args.help ? 0 : 1;
    }

    const std::string config_text =
        args.config.empty() ? std::string() : read_file(args.config);
    const config::ConfigFile cfg =
        config::ConfigFile::parse(config_text, args.config);
    service::ServiceOptions opt = config::make_service_options(cfg);
    if (!args.queue.empty()) opt.queue_dir = args.queue;
    if (!args.cache_dir.empty()) opt.cache_dir = args.cache_dir;
    if (args.no_cache) opt.cache = false;

    service::JobQueue queue(opt);

    if (args.command == "status") {
      const service::QueueStatus s = queue.status();
      std::cout << "queue           : " << queue.root().string() << "\n"
                << "pending         : " << s.pending << "\n"
                << "claimed         : " << s.claimed << "\n"
                << "checkpoints     : " << s.checkpoints << "\n"
                << "done            : " << s.done << "\n"
                << "failed          : " << s.failed << "\n"
                << "cached results  : " << s.cached << "\n";
      return 0;
    }

    if (args.command == "work") {
      const campaign::CampaignOptions copt =
          config::make_campaign_options(cfg);
      const auto reports =
          campaign::drain(queue, copt, args.workers, args.max_jobs);
      return print_reports(reports) == 0 ? 0 : 1;
    }

    // run / enqueue / report all need the expanded matrix.
    if (args.config.empty())
      throw std::runtime_error(args.command +
                               " needs --config with a [campaign] section");
    const campaign::CampaignPlan plan = campaign::plan_campaign(cfg);
    std::cout << "campaign: " << plan.jobs.size() << " scenario(s)\n";

    if (args.command == "enqueue" || args.command == "run") {
      const auto ids = campaign::enqueue_campaign(queue, plan);
      std::cout << "enqueued " << ids.size() << " scenario job(s)\n";
      if (args.command == "enqueue") return 0;
    }

    if (args.command == "run") {
      const auto reports =
          campaign::drain(queue, plan.options, args.workers, 0);
      if (print_reports(reports) != 0) return 1;
    }

    if (args.command == "run" || args.command == "report") {
      const std::string report_dir =
          !args.out.empty() ? args.out
          : !plan.options.report_dir.empty() ? plan.options.report_dir
                                             : "tsc3d-campaign-report";
      const auto results = campaign::collect_results(queue, plan);
      campaign::write_report(report_dir, plan.options, plan.jobs, results);
      std::cout << "report written to " << report_dir
                << " (scenarios.csv, pareto.csv, SUMMARY.txt)\n";
      return 0;
    }

    throw std::runtime_error("unknown command '" + args.command +
                             "' (try --help)");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
