# End-to-end smoke for tsc3d_batch: enqueue two seeds of a small
# benchmark, drain the queue, re-drain (idempotent, cache satisfied),
# and check the status report.  Driven by CTest with -DBATCH=<binary>
# and -DQUEUE=<scratch dir>.
file(REMOVE_RECURSE "${QUEUE}")
file(WRITE "${QUEUE}.conf" "[floorplanning]\nsa_moves = 2000\n")

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(step_output "${out}" PARENT_SCOPE)
endfunction()

run_step("${BATCH}" enqueue "--queue=${QUEUE}" "--config=${QUEUE}.conf"
         --benchmark=n100 --seeds=1-2)
run_step("${BATCH}" work "--queue=${QUEUE}")
if(NOT step_output MATCHES "2 job\\(s\\) attempted, 0 failed")
  message(FATAL_ERROR "first drain did not finish both jobs:\n${step_output}")
endif()

# Re-enqueueing finished jobs is a no-op; the queue stays drained.
run_step("${BATCH}" enqueue "--queue=${QUEUE}" "--config=${QUEUE}.conf"
         --benchmark=n100 --seeds=1-2)
run_step("${BATCH}" work "--queue=${QUEUE}")
if(NOT step_output MATCHES "0 job\\(s\\) attempted, 0 failed")
  message(FATAL_ERROR "re-enqueue was not idempotent:\n${step_output}")
endif()

run_step("${BATCH}" status "--queue=${QUEUE}")
if(NOT step_output MATCHES "done            : 2")
  message(FATAL_ERROR "status does not show 2 done jobs:\n${step_output}")
endif()
