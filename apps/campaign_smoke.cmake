# End-to-end smoke for tsc3d_campaign: run a tiny campaign matrix
# (2 attacks x 2 mitigations x 2 flavors x 2 seeds) twice -- the second
# time on a FRESH queue sharing the first run's cache, at a different
# worker count -- and require the report artifacts to byte-compare
# equal.  Driven by CTest with -DCAMPAIGN=<binary> and -DWORK=<scratch>.
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")
file(WRITE "${WORK}/campaign.conf"
  "[floorplanning]\n"
  "sa_moves = 2000\n"
  "[campaign]\n"
  "attacks = localization, characterization\n"
  "mitigations = none, noise_injection\n"
  "flavors = power_aware, monolithic\n"
  "seeds = 1-2\n"
  "attack_grid = 8\n"
  "monitoring_trials = 2\n"
  "covert_bits = 4\n"
  "leakage_phases = 3\n")

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(step_output "${out}" PARENT_SCOPE)
endfunction()

# First run: fresh everything, one worker.
run_step("${CAMPAIGN}" run "--config=${WORK}/campaign.conf"
         "--queue=${WORK}/q1" "--out=${WORK}/report1" --workers=1)
if(NOT step_output MATCHES "16 job\\(s\\) attempted, 0 failed")
  message(FATAL_ERROR "first run did not finish 16 scenarios:\n${step_output}")
endif()

# Second run: fresh queue, shared cache, four workers.  Every scenario
# must be served from the cache and the report must be byte-identical.
run_step("${CAMPAIGN}" run "--config=${WORK}/campaign.conf"
         "--queue=${WORK}/q2" "--cache-dir=${WORK}/q1/cache"
         "--out=${WORK}/report2" --workers=4)
if(NOT step_output MATCHES "0 failed")
  message(FATAL_ERROR "second run had failures:\n${step_output}")
endif()

foreach(artifact scenarios.csv pareto.csv SUMMARY.txt)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  "${WORK}/report1/${artifact}" "${WORK}/report2/${artifact}"
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "report artifact ${artifact} differs between the fresh run and the "
      "cached rerun at a different worker count")
  endif()
endforeach()
