// Section 5 attacks, evaluated end to end: how well do the thermal
// characterization, localization, and monitoring attacks work against a
// power-aware floorplan versus a TSC-aware floorplan of the same design?
//
// The paper argues that lowering the power-temperature correlation makes
// an attacker "on average ~30% less likely to succeed" (Sec. 7.1); this
// harness measures attacker success directly.
#include <iostream>

#include "attack/attacks.hpp"
#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/floorplanner.hpp"

using namespace tsc3d;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{5}));
  const std::size_t moves = flags.get("moves", std::size_t{0});
  const std::size_t probes = flags.get("probes", std::size_t{16});

  std::cout << "=== Sec. 5 attacks: PA vs TSC floorplans of n100 ===\n\n";

  attack::AttackOptions aopt;
  aopt.max_modules = probes;
  aopt.activity_boost = 1.0;
  aopt.sensors.noise_sigma_k = 0.05;
  aopt.test_patterns = 8;

  bench::Table table({"setup", "corr r1", "localization", "die hit",
                      "mean err [um]", "charact. R2", "monitor acc"});

  double loc_rate[2] = {0.0, 0.0};
  int idx = 0;
  for (const bool tsc : {false, true}) {
    floorplan::FloorplannerOptions opt =
        tsc ? floorplan::Floorplanner::tsc_aware_setup()
            : floorplan::Floorplanner::power_aware_setup();
    opt.anneal.total_moves = moves;
    opt.anneal.stages = 25;
    opt.anneal.full_eval_interval = 200;
    opt.dummy.samples_per_iteration = 10;
    opt.dummy.max_iterations = 6;

    Floorplan3D fp = benchgen::generate("n100", seed);
    Rng rng(seed);
    const floorplan::Floorplanner planner(opt);
    const floorplan::FloorplanMetrics fm = planner.run(fp, rng);

    ThermalConfig cfg = opt.thermal;
    cfg.grid_nx = cfg.grid_ny = 32;
    const thermal::GridSolver solver(fp.tech(), cfg);

    Rng attack_rng(seed + 99);  // same attacker randomness for both setups
    const attack::LocalizationResult loc =
        run_localization_attack(fp, solver, attack_rng, aopt);
    Rng attack_rng2(seed + 100);
    const attack::CharacterizationResult chr =
        run_characterization_attack(fp, solver, attack_rng2, aopt);
    Rng attack_rng3(seed + 101);
    // Monitoring: distinguish the two largest modules.
    const attack::MonitoringResult mon = run_monitoring_attack(
        fp, solver, 0, 1, 12, attack_rng3, aopt);

    table.add(tsc ? "TSC" : "PA", fm.correlation[0],
              bench::fmt(100.0 * loc.success_rate(), 1) + " %",
              std::to_string(loc.die_correct) + "/" +
                  std::to_string(loc.modules_tested),
              loc.mean_error_um, chr.r2,
              bench::fmt(100.0 * mon.accuracy(), 1) + " %");
    loc_rate[idx++] = loc.success_rate();
  }
  table.print();

  std::cout << "\nlocalization success PA -> TSC: "
            << bench::fmt(100.0 * loc_rate[0], 1) << " % -> "
            << bench::fmt(100.0 * loc_rate[1], 1) << " %\n";
  const bool mitigated = loc_rate[1] <= loc_rate[0] + 1e-9;
  std::cout << "TSC-aware floorplanning does not improve the attacker's "
               "position: "
            << (mitigated ? "YES" : "NO") << "\n";
  return mitigated ? 0 : 1;
}
