// Figure 4 / Section 7.1: destabilizing the leakage correlation on n100.
// A TSC-aware floorplan is generated; the Gaussian activity sampling
// locates the most stable correlation regions; dummy thermal TSVs are
// inserted there until the sweet-spot stop criterion fires.
//
// The paper's example drops the correlation coefficient from 0.461 to
// 0.324 (~30% less likely for an attacker to succeed).  This harness
// reports the same before/after numbers, the insertion history, and the
// relative reduction.
#include <filesystem>
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "core/map_io.hpp"
#include "floorplan/floorplanner.hpp"

using namespace tsc3d;

namespace {

/// Solve at verification resolution and dump the Fig. 4 panels.
GridD thermal_panel(const Floorplan3D& fp, std::size_t g) {
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = g;
  const thermal::GridSolver solver(fp.tech(), cfg);
  const std::vector<GridD> power{fp.power_map(0, g, g),
                                 fp.power_map(1, g, g)};
  return solver.solve_steady(power, fp.tsv_density_map(g, g))
      .die_temperature[0];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{3}));
  const std::size_t moves = flags.get("moves", std::size_t{0});
  const std::size_t samples = flags.get("samples", std::size_t{12});

  Floorplan3D fp = benchgen::generate("n100", seed);

  floorplan::FloorplannerOptions opt =
      floorplan::Floorplanner::tsc_aware_setup();
  opt.anneal.total_moves = moves;
  opt.anneal.stages = 30;
  opt.anneal.full_eval_interval = 200;
  opt.dummy.samples_per_iteration = samples;
  opt.dummy.max_iterations = 10;
  opt.dummy.islands_per_iteration = 2;
  opt.dummy.tsvs_per_island = 16;
  // Dummy insertion is exercised separately below; disable it inside the
  // flow so we can report the clean before/after split.
  opt.dummy_insertion = false;

  const floorplan::Floorplanner planner(opt);
  Rng rng(seed);
  std::cout << "=== Figure 4 / Sec. 7.1: dummy-TSV post-processing on n100 "
               "===\n";
  std::cout << "floorplanning (TSC-aware, " << moves << " moves)...\n";
  const floorplan::FloorplanMetrics fm = planner.run(fp, rng);
  std::cout << "floorplan legal: " << (fm.legal ? "yes" : "no")
            << ", r1 = " << bench::fmt(fm.correlation[0])
            << ", r2 = " << bench::fmt(fm.correlation[1]) << "\n\n";

  // Panels (b) and (c): the power map and the pre-insertion thermal map.
  const std::filesystem::path panel_dir =
      flags.get("out", std::string("fig4_maps"));
  std::filesystem::create_directories(panel_dir);
  const std::size_t g = 64;
  write_csv(fp.power_density_map(0, g, g), panel_dir / "power_die0.csv");
  write_pgm(fp.power_density_map(0, g, g), panel_dir / "power_die0.pgm");
  const GridD before_map = thermal_panel(fp, g);
  write_csv(before_map, panel_dir / "thermal_before.csv");
  write_pgm(before_map, panel_dir / "thermal_before.pgm");

  // Post-processing: activity sampling + correlation-driven insertion.
  ThermalConfig sampling_cfg = opt.thermal;
  sampling_cfg.grid_nx = sampling_cfg.grid_ny = opt.sampling_grid;
  const thermal::GridSolver solver(fp.tech(), sampling_cfg);
  const tsv::DummyInsertResult res =
      tsv::insert_dummy_tsvs(fp, solver, rng, opt.dummy);

  // Panel (d): the thermal map after insertion.
  const GridD after_map = thermal_panel(fp, g);
  write_csv(after_map, panel_dir / "thermal_after.csv");
  write_pgm(after_map, panel_dir / "thermal_after.pgm");
  std::cout << "map panels written to " << panel_dir.string()
            << "/ (CSV + PGM)\n\n";

  bench::Table table({"iteration", "avg correlation"});
  for (std::size_t i = 0; i < res.correlation_history.size(); ++i)
    table.add(i, res.correlation_history[i]);
  table.print();

  const double drop =
      res.correlation_before > 0.0
          ? (res.correlation_before - res.correlation_after) /
                res.correlation_before
          : 0.0;
  std::cout << "\ncorrelation before insertion : "
            << bench::fmt(res.correlation_before) << "\n";
  std::cout << "correlation after insertion  : "
            << bench::fmt(res.correlation_after) << "\n";
  std::cout << "relative reduction           : " << bench::fmt(100.0 * drop, 1)
            << " %  (paper example: 0.461 -> 0.324, ~30 %)\n";
  std::cout << "dummy TSVs inserted          : " << res.tsvs_inserted << " in "
            << res.islands_inserted << " islands over " << res.iterations
            << " iterations\n";
  std::cout << "stability before/after       : "
            << bench::fmt(res.stability_before) << " / "
            << bench::fmt(res.stability_after) << "\n";

  // Shape check: insertion must not increase the correlation.
  const bool ok = res.correlation_after <= res.correlation_before + 1e-9;
  std::cout << "\nstop criterion respected (corr never increased): "
            << (ok ? "YES" : "NO") << "\n";
  return ok ? 0 : 1;
}
