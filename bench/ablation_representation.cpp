// Representation ablation (DESIGN.md "key design choices"): our annealer
// uses one sequence pair per die; Corblivar -- the paper's host tool --
// uses a corner-block-list-style structure, and B*-trees are the third
// classic complete representation.  This harness packs the same random
// hard-module instances with the sequence pair and with the B*-tree
// under an equal move budget and compares dead space and runtime, so the
// SP choice in DESIGN.md is backed by data rather than taste.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "floorplan/btree.hpp"
#include "floorplan/sequence_pair.hpp"

using namespace tsc3d;
using Clock = std::chrono::steady_clock;

namespace {

struct Outcome {
  double dead_space = 0.0;
  double seconds = 0.0;
};

Outcome run_sp(std::size_t n, const std::vector<double>& w,
               const std::vector<double>& h, std::size_t moves, Rng& rng) {
  std::vector<std::size_t> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = i;
  floorplan::SequencePair sp(members);
  sp.shuffle(rng);
  double module_area = 0.0;
  for (std::size_t i = 0; i < n; ++i) module_area += w[i] * h[i];

  const auto area_of = [&](const floorplan::SequencePair& s) {
    const auto packed = s.pack([&](std::size_t id) { return w[id]; },
                               [&](std::size_t id) { return h[id]; });
    return packed.width * packed.height;
  };
  const auto random_move = [&](floorplan::SequencePair& s) {
    const std::size_t i = rng.index(n), j = rng.index(n);
    switch (rng.index(3)) {
      case 0: s.swap_positive(i, j); break;
      case 1: s.swap_negative(i, j); break;
      default: s.swap_both(s.positive()[i], s.positive()[j]); break;
    }
  };

  const auto t0 = Clock::now();
  double current = area_of(sp);
  double best = current;
  floorplan::SequencePair best_sp = sp;
  double temperature = 0.2 * best;
  const double cooling =
      std::pow(1e-3, 1.0 / std::max<double>(1.0, moves));
  for (std::size_t mv = 0; mv < moves; ++mv) {
    floorplan::SequencePair candidate = sp;
    random_move(candidate);
    const double area = area_of(candidate);
    const double delta = area - current;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9))) {
      sp = std::move(candidate);
      current = area;
      if (area < best) {
        best = area;
        best_sp = sp;
      }
    }
    temperature *= cooling;
  }
  Outcome out;
  out.dead_space = 1.0 - module_area / best;
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

Outcome run_bt(std::size_t n, const std::vector<double>& w,
               const std::vector<double>& h, std::size_t moves, Rng& rng) {
  floorplan::BTree tree(n, rng);
  const auto t0 = Clock::now();
  const auto quality = floorplan::optimize_btree(tree, w, h, moves, rng);
  Outcome out;
  out.dead_space = quality.dead_space();
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::size_t{3}));
  const std::size_t moves = flags.get("moves", std::size_t{4000});

  std::cout << "=== representation ablation: sequence pair vs B*-tree ===\n"
            << "equal move budget (" << moves << "), packing-area objective\n\n";

  bench::Table table({"modules", "SP dead space [%]", "BT dead space [%]",
                      "SP time [ms]", "BT time [ms]"});

  for (const std::size_t n : {20, 50, 100, 200}) {
    Rng rng(seed + n);
    std::vector<double> w(n), h(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = rng.uniform(10.0, 100.0);
      h[i] = rng.uniform(10.0, 100.0);
    }
    Rng rng_sp(seed), rng_bt(seed);
    const Outcome sp = run_sp(n, w, h, moves, rng_sp);
    const Outcome bt = run_bt(n, w, h, moves, rng_bt);
    table.add(n, 100.0 * sp.dead_space, 100.0 * bt.dead_space,
              1e3 * sp.seconds, 1e3 * bt.seconds);
  }
  table.print();

  std::cout << "\nBoth are complete representations; comparable dead space "
               "under an equal\nbudget backs DESIGN.md's choice of the "
               "sequence pair (simpler evaluation,\nwell-tested longest-path "
               "packing) for the annealer.\n";
  return 0;
}
