// Figure 1: "The different time scales of activity/power and temperature
// in ICs."  A module's activity switches as a square wave (fast); the
// transient solver shows the temperature responding on the thermal time
// constant (slow), i.e. the thermal side channel is a low-pass filter of
// the power trace.
//
// Output: one row per sampling instant with the instantaneous power and
// the per-die peak temperatures, plus a summary of the extracted thermal
// time constant.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/config.hpp"
#include "thermal/grid_solver.hpp"

using namespace tsc3d;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const double period_s = flags.get("period", 0.4);      // activity period
  const double t_end_s = flags.get("t_end", 1.2);
  const double dt_s = flags.get("dt", 0.001);

  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;

  const thermal::GridSolver solver(tech, cfg);

  // A hotspot module on die 0 toggles between idle and active power.
  auto power_at = [&](double t) {
    std::vector<GridD> p(2, GridD(16, 16, 0.0));
    const bool active = std::fmod(t, period_s) < period_s / 2.0;
    const double watts = active ? 6.0 : 0.5;
    for (std::size_t iy = 6; iy < 10; ++iy)
      for (std::size_t ix = 6; ix < 10; ++ix)
        p[0].at(ix, iy) = watts / 16.0;
    return p;
  };

  const thermal::TransientResult res = solver.solve_transient(
      power_at, GridD(16, 16, 0.0), t_end_s, dt_s, 4);

  std::cout << "=== Figure 1: activity/power vs temperature time scales ===\n";
  std::cout << "square-wave activity, period " << period_s << " s, dt " << dt_s
            << " s\n\n";
  bench::Table table({"t [s]", "power [W]", "die0 peak [K]", "die1 peak [K]"});
  for (const thermal::TransientSample& s : res.trace)
    table.add(bench::fmt(s.time_s, 3), bench::fmt(s.die_power_w[0], 2),
              bench::fmt(s.die_peak_k[0], 3), bench::fmt(s.die_peak_k[1], 3));
  table.print();

  // Extract a coarse thermal time constant: time from the power step (at
  // t = 0, ambient temperature) to 63% of the first-half-period swing.
  double t63 = 0.0;
  const double t0 = cfg.ambient_k;
  double t_half = t0;
  for (const auto& s : res.trace)
    if (s.time_s <= period_s / 2.0) t_half = s.die_peak_k[0];
  double t95 = 0.0;
  const double target63 = t0 + 0.63 * (t_half - t0);
  const double target95 = t0 + 0.95 * (t_half - t0);
  for (const auto& s : res.trace) {
    if (t63 == 0.0 && s.die_peak_k[0] >= target63) t63 = s.time_s;
    if (s.die_peak_k[0] >= target95) {
      t95 = s.time_s;
      break;
    }
  }
  std::cout << "\npower switches instantaneously (activity time scale ~ns);"
            << "\nthermal 63% response ~" << bench::fmt(t63, 3)
            << " s, 95% response ~" << bench::fmt(t95, 3)
            << " s -- many orders of magnitude slower, as in Fig. 1.\n";
  // The power edge is instantaneous (one step); the thermal response must
  // unfold over many steps to demonstrate the low-pass behaviour.
  const bool lags = t95 > 10.0 * dt_s;
  std::cout << "temperature lags power: " << (lags ? "YES" : "NO") << "\n";
  return lags ? 0 : 1;
}
