// Section 4.2 ablation: "the lower the spatial entropy, the lower the
// power-temperature correlation" (observed for the bottom die, even for
// different TSV patterns).  We sweep random floorplans of a benchmark,
// compute (S1, r1) pairs under several TSV patterns, and report the rank
// correlation of the trend -- for both orientations of the Eq. 3 distance
// ratio (Claramunt vs the literal print).
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "leakage/pearson.hpp"
#include "leakage/spatial_entropy.hpp"
#include "thermal/grid_solver.hpp"
#include "tsv/planner.hpp"

using namespace tsc3d;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t samples = flags.get("samples", std::size_t{24});
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{2}));

  Floorplan3D fp = benchgen::generate("n100", seed);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;
  const thermal::GridSolver solver(fp.tech(), cfg);

  std::cout << "=== Sec. 4.2 ablation: spatial entropy vs correlation ===\n";
  std::cout << samples << " random legal-ish floorplans, 3 TSV patterns\n\n";

  std::vector<double> entropy_claramunt, entropy_literal, corr;
  Rng rng(seed);
  for (std::size_t s = 0; s < samples; ++s) {
    // A fresh random layout each time: shuffled sequence pairs.
    floorplan::LayoutState state =
        floorplan::LayoutState::initial(fp, rng, s % 2 == 0);
    for (auto& sp : state.die_sp) sp.shuffle(rng);
    state.apply_to(fp);
    tsv::clear_tsvs(fp, TsvKind::signal);
    switch (s % 3) {
      case 0: tsv::place_signal_tsvs(fp); break;
      case 1: tsv::add_regular_grid(fp, 8, 8); break;
      default: {
        Rng r2(seed + s);
        tsv::add_islands(fp, 5, 16, r2);
        break;
      }
    }
    const GridD power = fp.power_map(0, 32, 32);
    const thermal::ThermalResult res = solver.solve_steady(
        {power, fp.power_map(1, 32, 32)}, fp.tsv_density_map(32, 32));
    corr.push_back(
        std::abs(leakage::pearson(power, res.die_temperature[0])));
    leakage::SpatialEntropyOptions claramunt;
    claramunt.ratio = leakage::EntropyRatio::claramunt;
    entropy_claramunt.push_back(leakage::spatial_entropy(power, claramunt));
    leakage::SpatialEntropyOptions literal;
    literal.ratio = leakage::EntropyRatio::paper_literal;
    entropy_literal.push_back(leakage::spatial_entropy(power, literal));
  }

  bench::Table table({"#", "S1 (Claramunt)", "S1 (literal)", "|r1|"});
  for (std::size_t i = 0; i < corr.size(); ++i)
    table.add(i, entropy_claramunt[i], entropy_literal[i], corr[i]);
  table.print();

  const double trend_claramunt = leakage::pearson(entropy_claramunt, corr);
  const double trend_literal = leakage::pearson(entropy_literal, corr);
  std::cout << "\ncorrelation of S1 with |r1| (Claramunt ratio): "
            << bench::fmt(trend_claramunt) << "\n";
  std::cout << "correlation of S1 with |r1| (literal Eq. 3)  : "
            << bench::fmt(trend_literal) << "\n";
  std::cout << "\npositive trend = lower entropy predicts lower leakage, as "
               "in Sec. 4.2.\n";
  return 0;
}
