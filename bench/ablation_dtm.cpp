// Refs [13], [14] substrate: runtime thermal management over the noisy
// on-chip sensors the attacker also reads.  Two experiments on a hot
// floorplan:
//
//  1. Sensor tracking (open loop): RMSE of the peak-temperature estimate
//     from raw reads vs the Kalman predictor of [14].
//  2. Throttling (closed loop): no DTM vs reactive raw-read throttling
//     [13] vs proactive Kalman throttling [14]; peak temperature, time
//     above trigger, performance loss, and controller toggles.
//
// Expected shape (as in [14]): the predictor filters read noise in open
// loop, and proactive throttling cuts the time spent above the trigger
// for a comparable performance loss.
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "mitigation/dtm.hpp"
#include "tsv/planner.hpp"

using namespace tsc3d;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::size_t{7}));
  const double duration = flags.get("duration", 3.0);

  std::cout << "=== Refs [13]/[14]: runtime thermal management ===\n\n";

  benchgen::BenchmarkSpec spec;
  spec.name = "dtm";
  spec.soft_modules = 40;
  spec.num_nets = 80;
  spec.num_terminals = 8;
  spec.outline_mm2 = 4.0;
  spec.power_w = 8.0;  // deliberately hot
  Floorplan3D fp = benchgen::generate(spec, seed);
  Rng rng(seed);
  floorplan::LayoutState state = floorplan::LayoutState::initial(fp, rng);
  state.apply_to(fp);
  tsv::place_signal_tsvs(fp);

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  const thermal::GridSolver solver(fp.tech(), cfg);

  // --- experiment 1: open-loop tracking ------------------------------
  std::cout << "-- sensor tracking (no throttling, noise 1.5 K) --\n";
  mitigation::DtmOptions track;
  track.trigger_k = 1e9;
  track.release_k = 1e9 - 1.0;
  track.sensor_noise_k = 1.5;
  track.control_period_s = 0.02;
  track.use_kalman = false;
  // Parameter sweeps re-run the same t = 0+ heating step; a checkpoint
  // (one per dt) solves it once and replays it bitwise across settings.
  mitigation::DtmCheckpoint track_ckpt;
  Rng rng_raw(seed + 1), rng_kf(seed + 1);
  const auto t_raw =
      run_dtm(fp, solver, duration, 0.02, rng_raw, track, &track_ckpt);
  track.use_kalman = true;
  track.kalman_slope_var = 2.0;
  const auto t_kf =
      run_dtm(fp, solver, duration, 0.02, rng_kf, track, &track_ckpt);
  std::cout << "  raw reads      : RMSE " << bench::fmt(t_raw.estimate_rmse_k, 3)
            << " K\n  Kalman [14]    : RMSE "
            << bench::fmt(t_kf.estimate_rmse_k, 3) << " K\n\n";

  // --- experiment 2: closed-loop throttling --------------------------
  // Uncontrolled peak first; the trigger sits 5 K below it.
  const double peak_unc = t_raw.peak_k;
  const double trigger = peak_unc - 5.0;

  // "none": trigger armed but throttling is a no-op, so time-over-trigger
  // is measured against the same threshold.
  mitigation::DtmOptions none;
  none.trigger_k = trigger;
  none.release_k = trigger - 4.0;
  none.throttle_scale = 1.0;
  none.sensor_noise_k = 1.0;
  none.control_period_s = 0.05;

  mitigation::DtmOptions reactive = none;
  reactive.throttle_scale = 0.5;
  reactive.throttled_fraction = 0.4;
  reactive.use_kalman = false;
  reactive.lookahead_periods = 0.0;

  mitigation::DtmOptions proactive = reactive;
  proactive.use_kalman = true;
  proactive.kalman_slope_var = 2.0;
  proactive.lookahead_periods = 2.0;

  mitigation::DtmCheckpoint sweep_ckpt;
  Rng rng_n(seed + 2), rng_re(seed + 2), rng_pro(seed + 2);
  const auto r_none =
      run_dtm(fp, solver, duration, 0.01, rng_n, none, &sweep_ckpt);
  const auto r_re =
      run_dtm(fp, solver, duration, 0.01, rng_re, reactive, &sweep_ckpt);
  const auto r_pro =
      run_dtm(fp, solver, duration, 0.01, rng_pro, proactive, &sweep_ckpt);

  bench::Table table({"controller", "peak T [K]", "time > trigger [ms]",
                      "perf loss [%]", "toggles"});
  table.add("none", r_none.peak_k, 1e3 * r_none.time_over_trigger_s,
            100.0 * (1.0 - 1.0), r_none.control_actions);
  table.add("reactive raw [13]", r_re.peak_k, 1e3 * r_re.time_over_trigger_s,
            100.0 * r_re.performance_loss, r_re.control_actions);
  table.add("proactive Kalman [14]", r_pro.peak_k,
            1e3 * r_pro.time_over_trigger_s, 100.0 * r_pro.performance_loss,
            r_pro.control_actions);
  table.print();

  std::cout << "\ncheckpoint: t=0+ field reused by "
            << (t_kf.checkpoint_reused ? 1 : 0) +
                   (r_re.checkpoint_reused ? 1 : 0) +
                   (r_pro.checkpoint_reused ? 1 : 0)
            << "/3 sweep continuation runs (bitwise-identical results)\n"
            << "trigger: " << bench::fmt(trigger, 1)
            << " K (uncontrolled peak - 5 K)\n"
            << "predictor tracks the peak better than raw reads: "
            << (t_kf.estimate_rmse_k < t_raw.estimate_rmse_k ? "YES" : "NO")
            << "\nthrottling contains the peak: "
            << (r_re.peak_k < r_none.peak_k ? "YES" : "NO")
            << "\nproactive control does not spend longer above trigger: "
            << (r_pro.time_over_trigger_s <= r_re.time_over_trigger_s + 0.05
                    ? "YES"
                    : "NO")
            << "\n";
  return 0;
}
