// Section 8 (future work) / footnote 1: "Thermal maps would be
// considerably different for other 3D integration flavors, e.g., for
// monolithic 3D ICs."  This harness quantifies that: the same logical
// design is evaluated under TSV-based stacking and under monolithic
// integration (thin tiers, nanoscale MIVs), comparing
//
//   * the per-die power-temperature correlations r1/r2 (Eq. 1),
//   * the cross-tier coupling (bottom power vs top temperature), and
//   * the leverage of the via-arrangement lever: |thermal-map shift|
//     between a via-free and a densely via'd configuration.
//
// Expected trends: monolithic tiers couple far more strongly (thin ILD),
// and MIVs are too small to serve as decorrelating "heat pipes" -- so the
// paper's TSV-arrangement lever loses most of its power, motivating the
// future-work tailoring the authors call for.
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "leakage/pearson.hpp"
#include "thermal/grid_solver.hpp"
#include "tsv/planner.hpp"

using namespace tsc3d;

namespace {

struct FlavorMetrics {
  double r1 = 0.0;
  double r2 = 0.0;
  double cross_tier = 0.0;
  double via_leverage_k = 0.0;
  double peak_k = 0.0;
};

FlavorMetrics evaluate(const Floorplan3D& fp, const ThermalConfig& cfg) {
  const thermal::GridSolver solver(fp.tech(), cfg);
  const std::size_t nx = cfg.grid_nx, ny = cfg.grid_ny;
  std::vector<GridD> power;
  for (std::size_t d = 0; d < fp.tech().num_dies; ++d)
    power.push_back(fp.power_map(d, nx, ny));

  const auto res = solver.solve_steady(power, fp.tsv_density_map(nx, ny));

  FlavorMetrics m;
  m.r1 = leakage::pearson(power[0], res.die_temperature[0]);
  m.r2 = leakage::pearson(power[1], res.die_temperature[1]);
  m.cross_tier = leakage::pearson(power[0], res.die_temperature[1]);
  m.peak_k = res.peak_k;

  // Via-arrangement leverage: how much does a dense via field move the
  // bottom die's thermal map, compared to no vias at all?
  const GridD none(nx, ny, 0.0);
  const GridD dense(nx, ny, 0.3);
  const auto base = solver.solve_steady(power, none);
  const auto vias = solver.solve_steady(power, dense);
  double shift = 0.0;
  for (std::size_t i = 0; i < base.die_temperature[0].size(); ++i)
    shift +=
        std::abs(base.die_temperature[0][i] - vias.die_temperature[0][i]);
  m.via_leverage_k =
      shift / static_cast<double>(base.die_temperature[0].size());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::size_t{7}));

  std::cout << "=== Sec. 8 extension: TSV-based vs monolithic flavor ===\n\n";

  benchgen::BenchmarkSpec spec;
  spec.name = "flavor";
  spec.soft_modules = 60;
  spec.num_nets = 120;
  spec.num_terminals = 12;
  spec.outline_mm2 = 9.0;
  spec.power_w = 6.0;

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;

  bench::Table table({"flavor", "r1", "r2", "cross-tier r", "via leverage [K]",
                      "peak T [K]"});

  FlavorMetrics tsv_m, mono_m;
  for (const bool monolithic : {false, true}) {
    Floorplan3D fp = benchgen::generate(spec, seed);
    if (monolithic) fp.tech() = make_monolithic(fp.tech());

    Rng rng(seed);
    floorplan::LayoutState state = floorplan::LayoutState::initial(fp, rng);
    state.apply_to(fp);
    tsv::place_signal_tsvs(fp);

    const FlavorMetrics m = evaluate(fp, cfg);
    table.add(monolithic ? "monolithic" : "tsv-based", m.r1, m.r2,
              m.cross_tier, m.via_leverage_k, m.peak_k);
    (monolithic ? mono_m : tsv_m) = m;
  }
  table.print();

  std::cout << "\ncross-tier coupling stronger in monolithic: "
            << (mono_m.cross_tier > tsv_m.cross_tier ? "YES" : "NO")
            << "\nvia-arrangement leverage weaker in monolithic: "
            << (mono_m.via_leverage_k < tsv_m.via_leverage_k ? "YES" : "NO")
            << " (the paper's TSV lever needs re-tailoring, Sec. 8)\n";
  return 0;
}
