// Section 7.1 variant: "Alternatively, we may adapt that stage to focus
// on reducing the correlation stability primarily for the critical
// module(s) to be protected from TSC attacks, and to accept more stable
// correlations elsewhere."
//
// This harness compares chip-wide dummy-TSV insertion with insertion
// focused on a critical (crypto) module's neighbourhood, reporting the
// local correlation stability at the module and the TSV budget spent.
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "leakage/activity.hpp"
#include "tsv/dummy_inserter.hpp"
#include "tsv/planner.hpp"

using namespace tsc3d;

namespace {

/// Mean |stability| inside the given die-0 region.
double local_stability(const Floorplan3D& fp,
                       const thermal::GridSolver& solver, const Rect& region,
                       std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  const leakage::StabilitySampling s =
      leakage::run_stability_sampling(fp, solver, samples, rng);
  const GridD& map = s.stability[0];
  const double bw =
      fp.tech().die_width_um / static_cast<double>(map.nx());
  const double bh =
      fp.tech().die_height_um / static_cast<double>(map.ny());
  double sum = 0.0;
  std::size_t cnt = 0;
  for (std::size_t iy = 0; iy < map.ny(); ++iy) {
    for (std::size_t ix = 0; ix < map.nx(); ++ix) {
      const Point c{(static_cast<double>(ix) + 0.5) * bw,
                    (static_cast<double>(iy) + 0.5) * bh};
      if (region.contains(c)) {
        sum += std::abs(map.at(ix, iy));
        ++cnt;
      }
    }
  }
  return cnt > 0 ? sum / static_cast<double>(cnt) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{9}));
  const std::size_t samples = flags.get("samples", std::size_t{10});

  // A design whose module 0 is the hot critical core.
  benchgen::BenchmarkSpec spec;
  spec.name = "focus";
  spec.soft_modules = 32;
  spec.num_nets = 64;
  spec.num_terminals = 8;
  spec.outline_mm2 = 9.0;
  spec.power_w = 3.0;
  Floorplan3D base = benchgen::generate(spec, seed);
  base.modules()[0].power_w *= 8.0;
  Rng layout_rng(seed);
  floorplan::LayoutState state =
      floorplan::LayoutState::initial(base, layout_rng);
  state.apply_to(base);
  tsv::place_signal_tsvs(base);
  // Critical region: the core's rectangle grown by 400 um.
  Rect region = base.modules()[0].shape;
  region.x -= 400.0;
  region.y -= 400.0;
  region.w += 800.0;
  region.h += 800.0;

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 24;
  const thermal::GridSolver solver(base.tech(), cfg);

  std::cout << "=== Sec. 7.1 variant: chip-wide vs focused dummy TSVs ===\n";
  std::cout << "critical module: " << base.modules()[0].name << " on die "
            << base.modules()[0].die << ", region " << region << "\n\n";

  const double stab_before =
      local_stability(base, solver, region, samples, seed + 1);

  bench::Table table({"variant", "dummy TSVs", "local |stability|",
                      "local reduction"});
  table.add("no insertion", std::size_t{0}, stab_before,
            bench::fmt(0.0, 1) + " %");

  for (const bool focused : {false, true}) {
    Floorplan3D fp = base;
    Rng rng(seed + 2);
    tsv::DummyInsertOptions opt;
    opt.samples_per_iteration = samples;
    opt.max_iterations = 8;
    if (focused) opt.focus_regions.push_back(region);
    const tsv::DummyInsertResult res =
        insert_dummy_tsvs(fp, solver, rng, opt);
    const double stab =
        local_stability(fp, solver, region, samples, seed + 1);
    table.add(focused ? "focused on critical module" : "chip-wide",
              res.tsvs_inserted, stab,
              bench::fmt(100.0 * (stab_before - stab) / stab_before, 1) +
                  " %");
  }
  table.print();

  std::cout << "\nfocused insertion concentrates the stability reduction on "
               "the module an attacker would monitor, trading chip-wide "
               "coverage for a smaller TSV budget.\n";
  return 0;
}
