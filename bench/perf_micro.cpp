// google-benchmark microbenchmarks of the computational kernels: the
// sequence-pair packing, the SOR steady-state solve, the power-blurring
// estimate, the spatial entropy, and the Pearson correlation.  These
// bound the floorplanner's per-iteration costs.
#include <benchmark/benchmark.h>

#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "floorplan/move_transaction.hpp"
#include "floorplan/sequence_pair.hpp"
#include "leakage/pearson.hpp"
#include "leakage/spatial_entropy.hpp"
#include "thermal/power_blur.hpp"

using namespace tsc3d;

namespace {

void BM_SequencePairPack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> ids(n);
  std::vector<double> w(n), h(n);
  Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = i;
    w[i] = rng.uniform(1.0, 50.0);
    h[i] = rng.uniform(1.0, 50.0);
  }
  floorplan::SequencePair sp(ids);
  sp.shuffle(rng);
  for (auto _ : state) {
    const floorplan::Packing p =
        sp.pack([&](std::size_t id) { return w[id]; },
                [&](std::size_t id) { return h[id]; });
    benchmark::DoNotOptimize(p.width);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SequencePairPack)
    ->Arg(50)->Arg(200)->Arg(800)->Arg(2000)->Arg(5000)->Complexity();

void BM_SteadyStateSolve(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = g;
  // Backends are pinned throughout this file: `auto` (the config
  // default) resolves per engine role, which would silently migrate a
  // benchmark's workload when defaults shift.  Here and in the
  // Cold/Warm pair below the subject is the SOR loop itself.
  cfg.solver = SolverBackend::sor;
  const thermal::GridSolver solver(tech, cfg);
  std::vector<GridD> power(2, GridD(g, g, 0.0));
  power[0].at(g / 2, g / 2) = 3.0;
  const GridD tsv(g, g, 0.1);
  for (auto _ : state) {
    const auto res = solver.solve_steady(power, tsv);
    benchmark::DoNotOptimize(res.peak_k);
  }
}
BENCHMARK(BM_SteadyStateSolve)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Block-resolved power map: rectangular module footprints scaled with
/// the grid -- the shape the floorplanner's pack -> power_map path
/// actually emits.  (A single-cell point source is a harsher stress,
/// but its fine-grid log-singularity is unrepresentative and distorts
/// solver comparisons: half the temperature rise lives in the last
/// octave of resolution, which only fine-level relaxation can build.)
std::vector<GridD> block_power(std::size_t g) {
  std::vector<GridD> power(2, GridD(g, g, 0.0));
  const auto block = [&](std::size_t die, double fx, double fy, double fw,
                         double fh, double watts) {
    const auto x0 = static_cast<std::size_t>(fx * static_cast<double>(g));
    const auto y0 = static_cast<std::size_t>(fy * static_cast<double>(g));
    const auto w = static_cast<std::size_t>(fw * static_cast<double>(g));
    const auto h = static_cast<std::size_t>(fh * static_cast<double>(g));
    for (std::size_t y = y0; y < y0 + h; ++y)
      for (std::size_t x = x0; x < x0 + w; ++x)
        power[die].at(x, y) = watts / static_cast<double>(w * h);
  };
  block(0, 0.16, 0.16, 0.23, 0.19, 2.0);
  block(0, 0.55, 0.23, 0.16, 0.31, 1.5);
  block(0, 0.31, 0.63, 0.28, 0.16, 1.8);
  block(1, 0.08, 0.47, 0.19, 0.23, 1.2);
  block(1, 0.63, 0.63, 0.23, 0.23, 2.2);
  return power;
}

/// Field-cold SOR solves: the assembly/hierarchy is cached (primed once
/// before the loop) and every iteration solves from an ambient field via
/// Start::cold -- the cost a sampling or verify pass pays per fresh
/// layout whose TSV map is unchanged.  The whole cold-solve family
/// (Cold / Multigrid / Fmg) shares this discipline and the block_power
/// workload so the gated ratios compare backends, not workloads.
void BM_SolveSteadyCold(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = g;
  cfg.solver = SolverBackend::sor;  // the gated SOR reference
  thermal::ThermalEngine engine(tech, cfg);
  const auto power = block_power(g);
  const GridD tsv(g, g, 0.1);
  (void)engine.solve_steady(power, tsv);  // prime the assembly cache
  for (auto _ : state) {
    const auto res =
        engine.solve_steady(power, tsv, thermal::ThermalEngine::Start::cold);
    benchmark::DoNotOptimize(res.peak_k);
  }
}
BENCHMARK(BM_SolveSteadyCold)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

/// Field-cold multigrid solves with the FMG seed DISABLED: plain
/// V-cycles from an ambient start, the PR 5 cold path, kept as the
/// reference the FMG gate measures against.  Cold solves are exactly
/// where SOR's smooth-error tail hurts most; CI gates
/// BM_SolveSteadyCold/128 / BM_SolveSteadyMultigrid/128 at >= 2x
/// (scripts/check_perf.py).
void BM_SolveSteadyMultigrid(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = g;
  cfg.solver = SolverBackend::multigrid;
  cfg.mg_fmg = false;  // plain V-cycles from ambient (the PR 5 path)
  thermal::ThermalEngine engine(tech, cfg);
  const auto power = block_power(g);
  const GridD tsv(g, g, 0.1);
  (void)engine.solve_steady(power, tsv);  // prime assembly + hierarchy
  for (auto _ : state) {
    const auto res =
        engine.solve_steady(power, tsv, thermal::ThermalEngine::Start::cold);
    benchmark::DoNotOptimize(res.peak_k);
  }
}
BENCHMARK(BM_SolveSteadyMultigrid)->Arg(64)->Arg(128)->Arg(192)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// FMG-seeded field-cold multigrid solves (the default cold path since
/// this PR): the FMG descent restricts the true rhs down the hierarchy,
/// solves the coarsest level near-exactly, and ascends with two V-cycles
/// per level, leaving an initial guess at ~truncation error that the
/// fine V-cycle loop finishes in ~2 cycles instead of 6-9.  The edge
/// over plain V-cycles widens with the grid because the seed is
/// truncation-limited while the stopping tolerance is fixed.  CI gates
/// BM_SolveSteadyMultigrid/256 / BM_SolveSteadyFmg/256 at >= 2x
/// (scripts/check_perf.py).
void BM_SolveSteadyFmg(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = g;
  cfg.solver = SolverBackend::multigrid;
  cfg.mg_fmg = true;
  thermal::ThermalEngine engine(tech, cfg);
  const auto power = block_power(g);
  const GridD tsv(g, g, 0.1);
  (void)engine.solve_steady(power, tsv);  // prime assembly + hierarchy
  for (auto _ : state) {
    const auto res =
        engine.solve_steady(power, tsv, thermal::ThermalEngine::Start::cold);
    benchmark::DoNotOptimize(res.peak_k);
  }
}
BENCHMARK(BM_SolveSteadyFmg)->Arg(64)->Arg(128)->Arg(192)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Stiff transient stepping, SOR vs multigrid-preconditioned implicit
/// Euler.  Large steps relative to the thermal RC make each implicit
/// solve as hard as a steady solve, which is exactly where per-step SOR
/// drowns in sweeps and a V-cycle on (G + C/dt) pays off.  mg:0 runs the
/// plain SOR per-step loop, mg:1 the (bitwise-deterministic) V-cycle
/// path with its opening-sweep fast path.  CI gates mg:0 / mg:1 at
/// >= 2x (scripts/check_perf.py).
void BM_TransientStiff(benchmark::State& state) {
  const bool mg = state.range(0) != 0;
  constexpr std::size_t g = 64;
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = g;
  cfg.solver = mg ? SolverBackend::multigrid : SolverBackend::sor;
  thermal::ThermalEngine engine(tech, cfg);
  const auto power = block_power(g);
  const GridD tsv(g, g, 0.1);
  for (auto _ : state) {
    engine.reset();  // fresh field: every step solved from scratch
    const auto res =
        engine.solve_transient([&](double) { return power; }, tsv, 1.0, 0.25);
    benchmark::DoNotOptimize(res.final_state.peak_k);
  }
}
BENCHMARK(BM_TransientStiff)->ArgName("mg")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Scalar vs AVX2 red-black sweep kernel on a fixed 160-sweep budget
/// (identical work either way -- the kernels are bitwise equal, so the
/// stopping rule cannot diverge and the ratio is pure kernel speed).
/// simd:1 is skipped on hosts without AVX2.  CI gates simd:0 / simd:1
/// at >= 1.05x (scripts/check_perf.py).
void BM_SweepKernel(benchmark::State& state) {
  const bool simd = state.range(0) != 0;
  if (simd && !thermal::sweep_simd_available()) {
    state.SkipWithError("AVX2 not available on this host");
    return;
  }
  // 64x64 keeps the working set L2-resident: the sweep is memory-bound
  // at larger grids, where any kernel measures the DRAM interface.
  constexpr std::size_t g = 64;
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = g;
  cfg.solver = SolverBackend::sor;
  cfg.max_iterations = 160;  // fixed sweep budget ...
  cfg.tolerance_k = 0.0;     // ... the stopping rule can never cut short
  thermal::ThermalEngine engine(tech, cfg);
  const auto power = block_power(g);
  const GridD tsv(g, g, 0.1);
  const bool prev = thermal::sweep_simd_enabled();
  thermal::set_sweep_simd(simd);
  for (auto _ : state) {
    const auto res = engine.solve_steady(power, tsv);
    benchmark::DoNotOptimize(res.peak_k);
  }
  thermal::set_sweep_simd(prev);
}
BENCHMARK(BM_SweepKernel)->ArgName("simd")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Warm-started ThermalEngine solves over a jittering power map -- the
/// annealing/sampling-loop workload: cached assembly plus the previous
/// field as the initial guess.
void BM_SolveSteadyWarm(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = g;
  cfg.solver = SolverBackend::sor;  // the gated warm-vs-cold SOR pair
  thermal::ThermalEngine engine(tech, cfg);
  auto power = block_power(g);
  const GridD tsv(g, g, 0.1);
  (void)engine.solve_steady(power, tsv);  // prime assembly + field
  Rng rng(7);
  for (auto _ : state) {
    // Perturb one bin per solve, like a single annealing move would; the
    // bin is restored afterwards so the workload cannot drift (erasing
    // the hotspot would let warm solves degenerate to ~1 sweep).
    const std::size_t ix = rng.index(g), iy = rng.index(g);
    const double saved = power[0].at(ix, iy);
    power[0].at(ix, iy) = saved + rng.uniform(0.0, 0.2);
    const auto res = engine.solve_steady(power, tsv);
    benchmark::DoNotOptimize(res.peak_k);
    power[0].at(ix, iy) = saved;
  }
}
BENCHMARK(BM_SolveSteadyWarm)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Sharded-sweep scaling: a fixed-work steady solve (the tolerance is
/// unreachable, so every solve runs exactly max_iterations red-black
/// sweeps) on a 128x128 grid, with the row ranges of each color sharded
/// across `threads:N` workers.  Threaded results are bitwise identical
/// to serial, so this isolates pure sweep scaling; CI gates the
/// threads:1 / threads:4 ratio at >= 1.8x (scripts/check_perf.py).
void BM_SolveSteadySharded(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t g = 128;
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = g;
  cfg.max_iterations = 40;   // fixed sweep budget ...
  cfg.tolerance_k = 0.0;     // ... the stopping rule can never cut short
  cfg.solver = SolverBackend::sor;  // fixed budget only makes sense in sweeps
  thermal::ThermalEngine engine(tech, cfg, {.threads = threads});
  std::vector<GridD> power(2, GridD(g, g, 0.0));
  power[0].at(g / 2, g / 2) = 3.0;
  const GridD tsv(g, g, 0.1);
  for (auto _ : state) {
    const auto res = engine.solve_steady(power, tsv);
    benchmark::DoNotOptimize(res.peak_k);
  }
}
BENCHMARK(BM_SolveSteadySharded)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Batched candidate evaluation: score 4 candidate power maps per
/// iteration at 64x64 with a fixed sweep budget (tolerance unreachable,
/// so every candidate costs exactly max_iterations red-black sweeps and
/// the batch/sequential comparison is pure scheduling).  batch:1 runs
/// the 4 solves sequentially through solve_steady -- the unbatched
/// annealing loop -- while batch:4 scores them in ONE solve_steady_batch
/// call whose per-candidate solves fan out across the worker pool.  CI
/// gates batch:4/threads:4 at >= 1.5x over batch:1/threads:1
/// (scripts/check_perf.py); batch:1/threads:4 (sequential solves with
/// sharded sweeps) is reported for context.
void BM_BatchedEval(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t g = 64;
  constexpr std::size_t kCandidates = 4;
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = g;
  cfg.max_iterations = 20;  // fixed sweep budget ...
  cfg.tolerance_k = 0.0;    // ... the stopping rule can never cut short
  cfg.solver = SolverBackend::sor;  // fixed budget only makes sense in sweeps
  thermal::ThermalEngine engine(tech, cfg, {.threads = threads});
  std::vector<GridD> base(2, GridD(g, g, 0.0));
  base[0].at(g / 2, g / 2) = 3.0;
  const GridD tsv(g, g, 0.1);
  (void)engine.solve_steady(base, tsv);  // prime assembly + warm field
  std::vector<std::vector<GridD>> candidates(kCandidates, base);
  for (std::size_t j = 0; j < kCandidates; ++j)
    candidates[j][0].at((5 * j + 3) % g, (7 * j + 11) % g) += 0.2;
  for (auto _ : state) {
    if (batch > 1) {
      const auto results = engine.solve_steady_batch(candidates, tsv);
      benchmark::DoNotOptimize(results[0].peak_k);
      engine.adopt_candidate(kCandidates - 1);
    } else {
      for (const std::vector<GridD>& candidate : candidates) {
        const auto res = engine.solve_steady(candidate, tsv);
        benchmark::DoNotOptimize(res.peak_k);
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kCandidates));
}
BENCHMARK(BM_BatchedEval)
    ->ArgNames({"batch", "threads"})
    ->Args({1, 1})->Args({1, 4})->Args({4, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PowerBlurEstimate(benchmark::State& state) {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;
  const thermal::GridSolver solver(tech, cfg);
  const thermal::PowerBlur blur(solver, 10);
  Floorplan3D fp = benchgen::generate("n100", 1);
  Rng rng(1);
  floorplan::LayoutState s = floorplan::LayoutState::initial(fp, rng);
  s.apply_to(fp);
  const std::vector<GridD> power{fp.power_map(0, 32, 32),
                                 fp.power_map(1, 32, 32)};
  const GridD tsv = fp.tsv_density_map(32, 32);
  for (auto _ : state) {
    const auto t = blur.estimate(power, tsv);
    benchmark::DoNotOptimize(t[0][0]);
  }
}
BENCHMARK(BM_PowerBlurEstimate)->Unit(benchmark::kMillisecond);

void BM_SpatialEntropy(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  GridD power(g, g, 0.0);
  Rng rng(2);
  for (auto& v : power) v = rng.lognormal(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(leakage::spatial_entropy(power));
  }
}
BENCHMARK(BM_SpatialEntropy)->Arg(32)->Arg(64);

void BM_Pearson(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  GridD a(g, g), b(g, g);
  Rng rng(3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform();
    b[i] = rng.uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(leakage::pearson(a, b));
  }
}
BENCHMARK(BM_Pearson)->Arg(32)->Arg(64);

void BM_CheapCostEvaluation(benchmark::State& state) {
  TechnologyConfig tech;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;
  Floorplan3D fp = benchgen::generate("n100", 1);
  const thermal::GridSolver solver(fp.tech(), cfg);
  const thermal::PowerBlur blur(solver, 10);
  floorplan::CostEvaluator::Options opt;
  opt.leakage_grid = 32;
  floorplan::CostEvaluator eval(fp, blur, opt);
  Rng rng(1);
  floorplan::LayoutState s = floorplan::LayoutState::initial(fp, rng);
  s.apply_to(fp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate_cheap().total);
  }
}
BENCHMARK(BM_CheapCostEvaluation)->Unit(benchmark::kMicrosecond);

/// The n800 scale instance the incremental-evaluation gate runs on:
/// GSRC-style, all soft, net/terminal/outline/power densities on the
/// n300 -> n1000 trend (see benchgen::scale_specs).
const benchgen::BenchmarkSpec& n800_spec() {
  static const benchgen::BenchmarkSpec spec{"n800",  0,     800, 10.0,
                                            5040,    600,   61.44, 34.8};
  return spec;
}

/// The annealer's cheap-evaluation inner loop at n800: real proposal
/// moves (run_stage with a huge full-eval interval, so every move is
/// move -> stage -> evaluate_cheap -> Metropolis), with the incremental
/// pipeline on (incremental:1 -- since PR 7 this routes through
/// MoveTransaction, so rejected moves roll their caches back instead of
/// re-packing) or the seed's rescan-everything path (incremental:0).
/// items_per_second is annealing moves per second; scripts/check_perf.py
/// gates incremental:1's absolute moves/sec (--min-moves-per-sec) plus
/// the step-level speedup, and gates the >= 5x cheap-eval ratio on
/// BM_CheapEval (the evaluator call isolated from move proposal and
/// repacking, which the incremental pipeline cannot skip).
void BM_AnnealStepCheap(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  Floorplan3D fp = benchgen::generate(n800_spec(), 1);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;
  const thermal::GridSolver solver(fp.tech(), cfg);
  const thermal::PowerBlur blur(solver, 10);
  floorplan::CostEvaluator::Options eval_opt;
  eval_opt.leakage_grid = 32;
  eval_opt.incremental = incremental;
  eval_opt.cross_check_interval = 0;  // measure the pipeline, not the guard
  floorplan::CostEvaluator eval(fp, blur, eval_opt);

  constexpr std::size_t kMovesPerStage = 16;
  floorplan::AnnealOptions aopt;
  aopt.stages = 1u << 26;  // never exhausted within the benchmark
  aopt.total_moves = aopt.stages * kMovesPerStage;
  aopt.full_eval_interval = ~std::size_t{0};  // cheap evals only
  aopt.thermal_eval_interval = 0;
  floorplan::Annealer annealer(fp, eval, aopt);

  Rng rng(1);
  floorplan::LayoutState s = floorplan::LayoutState::initial(fp, rng);
  if (!incremental) s.disable_tracking();  // seed path: repack everything
  floorplan::AnnealSession session = annealer.begin(s, rng);
  for (auto _ : state) {
    annealer.run_stage(session, rng);
    // Hand DoNotOptimize a dead copy, never live annealer state: the
    // lvalue overload's read-write "+m,r" asm constraint can write the
    // value back through a scratch register (observed corrupting
    // session.current.total under GCC 12, which sent the Metropolis
    // loop into a reject-everything spiral and halved the measurement).
    double observed_total = session.current.total;
    benchmark::DoNotOptimize(observed_total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kMovesPerStage));
}
BENCHMARK(BM_AnnealStepCheap)
    ->ArgName("incremental")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Cheap-evaluation throughput at n800 -- the tentpole's gated quantity.
/// Each iteration proposes and applies a real layout perturbation (an
/// intra-die sequence swap or a rotate, the annealer's dominant move
/// kinds) with the timer PAUSED, then times only evaluate_cheap():
/// incremental:1 recomputes dirty nets and re-sums in canonical order,
/// incremental:0 rescans every net and rebuilds every die span (the seed
/// path).  scripts/check_perf.py gates incremental:1 over incremental:0
/// at >= 5x.
void BM_CheapEval(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  Floorplan3D fp = benchgen::generate(n800_spec(), 1);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;
  const thermal::GridSolver solver(fp.tech(), cfg);
  const thermal::PowerBlur blur(solver, 10);
  floorplan::CostEvaluator::Options eval_opt;
  eval_opt.leakage_grid = 32;
  eval_opt.incremental = incremental;
  eval_opt.cross_check_interval = 0;  // measure the pipeline, not the guard
  floorplan::CostEvaluator eval(fp, blur, eval_opt);
  Rng rng(1);
  floorplan::LayoutState s = floorplan::LayoutState::initial(fp, rng);
  if (!incremental) s.disable_tracking();  // seed path: repack everything
  s.apply_to(fp);
  benchmark::DoNotOptimize(eval.evaluate_cheap().total);  // prime caches
  for (auto _ : state) {
    state.PauseTiming();
    if (rng.uniform() < 0.8) {
      floorplan::SequencePair& sp = s.die_sp[rng.index(s.die_sp.size())];
      const std::size_t i = rng.index(sp.size());
      std::size_t j = rng.index(sp.size() - 1);
      if (j >= i) ++j;
      sp.swap_both(sp.positive()[i], sp.positive()[j]);
      s.touch_die(s.die_of[sp.positive()[i]]);
    } else {
      const std::size_t id = rng.index(s.width.size());
      std::swap(s.width[id], s.height[id]);
      s.touch_die(s.die_of[id]);
    }
    s.apply_to(fp);
    state.ResumeTiming();
    benchmark::DoNotOptimize(eval.evaluate_cheap().total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CheapEval)
    ->ArgName("incremental")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

/// One-module perturbation -> hpwl_cached(): the dirty-net recompute plus
/// the canonical re-sum, i.e. the per-move wirelength cost of the
/// incremental pipeline.
void BM_IncrementalHpwl(benchmark::State& state) {
  Floorplan3D fp = benchgen::generate(n800_spec(), 1);
  Rng rng(1);
  floorplan::LayoutState s = floorplan::LayoutState::initial(fp, rng);
  s.apply_to(fp);
  benchmark::DoNotOptimize(fp.hpwl_cached());  // prime the per-net cache
  double delta = 0.25;
  for (auto _ : state) {
    const std::size_t id = rng.index(fp.modules().size());
    fp.modules()[id].shape.x += delta;
    delta = -delta;  // alternate so the layout cannot drift
    fp.note_module_moved(id);
    benchmark::DoNotOptimize(fp.hpwl_cached());
  }
}
BENCHMARK(BM_IncrementalHpwl)->Unit(benchmark::kMicrosecond);

/// The same perturbation through the full rescan -- the baseline
/// BM_IncrementalHpwl replaces (reported for context; the end-to-end
/// ratio is gated via BM_AnnealStepCheap).
void BM_FullHpwl(benchmark::State& state) {
  Floorplan3D fp = benchgen::generate(n800_spec(), 1);
  Rng rng(1);
  floorplan::LayoutState s = floorplan::LayoutState::initial(fp, rng);
  s.apply_to(fp);
  double delta = 0.25;
  for (auto _ : state) {
    const std::size_t id = rng.index(fp.modules().size());
    fp.modules()[id].shape.x += delta;
    delta = -delta;
    benchmark::DoNotOptimize(fp.hpwl());
  }
}
BENCHMARK(BM_FullHpwl)->Unit(benchmark::kMicrosecond);

/// The reject path in isolation at n800: a forced-reject move stream
/// where every iteration proposes a real intra-die swap, publishes it,
/// prices it with evaluate_cheap(), and throws it away.
/// transactional:0 is the classic pattern -- revert() mints fresh die
/// versions, so the rejected die is re-packed and its nets re-priced on
/// the NEXT publication (the double-apply_to cost the transaction
/// removes).  transactional:1 runs the same stream through
/// MoveTransaction: rollback restores the journaled cache cells and the
/// die versions, so the next apply_to() skips the rejected die
/// outright.  Consecutive moves alternate dies deterministically: when
/// the next move lands on the SAME die, the classic re-pack coalesces
/// with the new move's own repack, which at D dies happens with
/// probability 1/D -- alternation prices the common D-die case instead
/// of the 2-die lucky one.  scripts/check_perf.py gates the
/// transactional:0 / transactional:1 ratio (--min-reject-speedup).
void BM_AnnealStepReject(benchmark::State& state) {
  const bool transactional = state.range(0) != 0;
  Floorplan3D fp = benchgen::generate(n800_spec(), 1);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;
  const thermal::GridSolver solver(fp.tech(), cfg);
  const thermal::PowerBlur blur(solver, 10);
  floorplan::CostEvaluator::Options eval_opt;
  eval_opt.leakage_grid = 32;
  eval_opt.incremental = true;
  eval_opt.cross_check_interval = 0;  // measure the pipeline, not the guard
  floorplan::CostEvaluator eval(fp, blur, eval_opt);
  Rng rng(1);
  floorplan::LayoutState s = floorplan::LayoutState::initial(fp, rng);
  s.apply_to(fp);
  benchmark::DoNotOptimize(eval.evaluate_cheap().total);  // prime caches
  floorplan::MoveTransaction txn(fp, eval);
  std::size_t next_die = 0;
  for (auto _ : state) {
    floorplan::MoveRecord rec;
    rec.kind = floorplan::MoveRecord::Kind::swap_both;
    rec.die_a = next_die;
    next_die = (next_die + 1) % s.die_sp.size();
    floorplan::SequencePair& sp = s.die_sp[rec.die_a];
    const std::size_t i = rng.index(sp.size());
    std::size_t j = rng.index(sp.size() - 1);
    if (j >= i) ++j;
    rec.module_a = sp.positive()[i];
    rec.module_b = sp.positive()[j];
    if (transactional) {
      txn.open(s);
      sp.swap_both(rec.module_a, rec.module_b);
      s.touch_die(rec.die_a);
      txn.stage();
      benchmark::DoNotOptimize(eval.evaluate_cheap().total);
      txn.rollback(rec);
    } else {
      sp.swap_both(rec.module_a, rec.module_b);
      s.touch_die(rec.die_a);
      s.apply_to(fp);
      benchmark::DoNotOptimize(eval.evaluate_cheap().total);
      rec.revert(s);  // fresh versions: the next apply_to() re-packs
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AnnealStepReject)
    ->ArgName("transactional")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

/// The bare transaction bracket at n800: open -> mutate -> stage ->
/// rollback with no evaluation in between, i.e. the journaling +
/// dirty-die repack + bitwise restore a speculative move costs before
/// any cost term is read.  Reported for context (the end-to-end reject
/// ratio is gated via BM_AnnealStepReject).
void BM_TrialMove(benchmark::State& state) {
  Floorplan3D fp = benchgen::generate(n800_spec(), 1);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;
  const thermal::GridSolver solver(fp.tech(), cfg);
  const thermal::PowerBlur blur(solver, 10);
  floorplan::CostEvaluator::Options eval_opt;
  eval_opt.leakage_grid = 32;
  eval_opt.incremental = true;
  eval_opt.cross_check_interval = 0;
  floorplan::CostEvaluator eval(fp, blur, eval_opt);
  Rng rng(1);
  floorplan::LayoutState s = floorplan::LayoutState::initial(fp, rng);
  s.apply_to(fp);
  benchmark::DoNotOptimize(eval.evaluate_cheap().total);  // prime caches
  floorplan::MoveTransaction txn(fp, eval);
  for (auto _ : state) {
    floorplan::MoveRecord rec;
    rec.kind = floorplan::MoveRecord::Kind::swap_both;
    rec.die_a = rng.index(s.die_sp.size());
    floorplan::SequencePair& sp = s.die_sp[rec.die_a];
    const std::size_t i = rng.index(sp.size());
    std::size_t j = rng.index(sp.size() - 1);
    if (j >= i) ++j;
    rec.module_a = sp.positive()[i];
    rec.module_b = sp.positive()[j];
    txn.open(s);
    sp.swap_both(rec.module_a, rec.module_b);
    s.touch_die(rec.die_a);
    txn.stage();
    txn.rollback(rec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrialMove)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
