// Section 2.1, reasons the thermal side channel is attractive -- (iii)
// "it may serve as proxy for the power side-channel using temperature-
// to-power interpolation techniques such as [19]".  This harness arms the
// attacker with that capability (attack/power_inversion.hpp) plus the SVF
// metric [23] and the covert-channel receiver [5], and measures all three
// against a power-aware versus a TSC-aware floorplan of n100:
//
//   * inversion r: Pearson correlation between the attacker's
//     temperature-to-power estimate and the true power map (per die);
//   * SVF: side-channel vulnerability factor over Gaussian activity
//     phases, oracle = module powers, side = observed thermal map;
//   * covert capacity: achievable bit/s of an on-chip thermal sender.
//
// Expected shape: the TSC-aware floorplan worsens the inversion and the
// SVF (same direction as r1 in Table 2); the covert-channel capacity is
// bounded by thermal low-pass physics in both setups (Fig. 1).
#include <iostream>

#include "attack/covert_channel.hpp"
#include "attack/power_inversion.hpp"
#include "attack/sensor.hpp"
#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/floorplanner.hpp"
#include "leakage/activity.hpp"
#include "leakage/svf.hpp"

using namespace tsc3d;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::size_t{5}));
  const std::size_t moves = flags.get("moves", std::size_t{0});
  const std::size_t phases = flags.get("phases", std::size_t{24});

  std::cout << "=== Ref. [19]/[23]/[5] attacker toolkit: PA vs TSC ===\n\n";

  bench::Table table({"setup", "inversion r (die0)", "inversion r (die1)",
                      "SVF", "covert cap [bit/s]", "covert BER"});

  double svf_values[2] = {0.0, 0.0};
  double inv_values[2] = {0.0, 0.0};
  int idx = 0;
  for (const bool tsc : {false, true}) {
    floorplan::FloorplannerOptions opt =
        tsc ? floorplan::Floorplanner::tsc_aware_setup()
            : floorplan::Floorplanner::power_aware_setup();
    opt.anneal.total_moves = moves;
    opt.anneal.stages = 25;
    opt.anneal.full_eval_interval = 200;
    opt.dummy.samples_per_iteration = 10;
    opt.dummy.max_iterations = 6;

    Floorplan3D fp = benchgen::generate("n100", seed);
    Rng rng(seed);
    const floorplan::Floorplanner planner(opt);
    (void)planner.run(fp, rng);

    ThermalConfig cfg = opt.thermal;
    cfg.grid_nx = cfg.grid_ny = 32;
    const std::size_t nx = cfg.grid_nx, ny = cfg.grid_ny;
    const thermal::GridSolver solver(fp.tech(), cfg);
    const GridD tsv_density = fp.tsv_density_map(nx, ny);

    // --- temperature-to-power inversion on the nominal steady state ----
    std::vector<GridD> power;
    for (std::size_t d = 0; d < fp.tech().num_dies; ++d)
      power.push_back(fp.power_map(d, nx, ny));
    const auto thermal_res = solver.solve_steady(power, tsv_density);

    attack::InversionOptions iopt;
    iopt.kernel_sigma_bins = 2.0;
    double inv_r[2] = {0.0, 0.0};
    for (std::size_t d = 0; d < 2; ++d) {
      const auto est =
          attack::invert_power(thermal_res.die_temperature[d], iopt);
      inv_r[d] = attack::inversion_correlation(power[d], est.power_estimate);
    }

    // --- SVF over Gaussian activity phases ----------------------------
    leakage::ActivityModel activity;
    leakage::SvfAccumulator svf_acc;
    attack::SensorGrid sensors;
    Rng activity_rng(seed + 7);
    for (std::size_t ph = 0; ph < phases; ++ph) {
      const auto sample = activity.sample(fp, activity_rng);
      std::vector<GridD> phase_power;
      for (std::size_t d = 0; d < fp.tech().num_dies; ++d)
        phase_power.push_back(fp.power_map(d, nx, ny, &sample));
      const auto phase_thermal =
          solver.solve_steady(phase_power, tsv_density);
      // The attacker's observation: the bottom die's map through sensors.
      const GridD observed =
          sensors.observe(phase_thermal.die_temperature[0], nx, ny,
                          activity_rng);
      svf_acc.add_phase(sample, observed);
    }
    const double svf = svf_acc.svf();

    // --- covert channel from the largest bottom-die module ------------
    std::size_t sender = 0;
    double best_area = -1.0;
    for (std::size_t i = 0; i < fp.modules().size(); ++i) {
      const auto& m = fp.modules()[i];
      if (m.die == 0 && m.shape.area() > best_area) {
        best_area = m.shape.area();
        sender = i;
      }
    }
    attack::CovertChannelOptions copt;
    copt.bits = 16;
    copt.bit_period_s = 0.2;
    copt.dt_s = 0.02;
    copt.power_boost = 3.0;
    Rng covert_rng(seed + 13);
    const auto covert =
        attack::run_covert_channel(fp, solver, sender, covert_rng, copt);

    table.add(tsc ? "TSC" : "PA", inv_r[0], inv_r[1], svf,
              covert.capacity_bps, covert.bit_error_rate);
    svf_values[idx] = svf;
    inv_values[idx] = inv_r[0];
    ++idx;
  }
  table.print();

  std::cout << "\nSVF PA -> TSC: " << bench::fmt(svf_values[0], 3) << " -> "
            << bench::fmt(svf_values[1], 3)
            << "\ninversion r1 PA -> TSC: " << bench::fmt(inv_values[0], 3)
            << " -> " << bench::fmt(inv_values[1], 3)
            << "\n(the paper's Eq. 1 metric and the SVF should move in the "
               "same direction, Sec. 4.1)\n";
  return 0;
}
