// Section 6 ablation: the fast (power-blurring) thermal analysis that
// drives the floorplanning loop versus the detailed grid solver used for
// verification.  The paper: "we found this fast analysis to be inferior
// to the detailed analysis of HotSpot, especially for diverse
// arrangements of TSVs.  Thus, we also verify the final correlation
// after floorplanning."
//
// Reported: per-pattern field correlation and mean absolute error of the
// fast estimate, plus the error of the correlation coefficient itself.
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "leakage/pearson.hpp"
#include "thermal/power_blur.hpp"
#include "thermal/thermal_engine.hpp"
#include "tsv/planner.hpp"

using namespace tsc3d;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{4}));

  Floorplan3D fp = benchgen::generate("n100", seed);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;
  thermal::ThermalEngine engine(fp.tech(), cfg);
  const thermal::PowerBlur blur(engine, 10);

  Rng rng(seed);
  floorplan::LayoutState state = floorplan::LayoutState::initial(fp, rng);
  state.apply_to(fp);

  std::cout << "=== Sec. 6 ablation: fast power blurring vs detailed solver "
               "===\n\n";
  bench::Table table({"TSV pattern", "field corr", "MAE [K]",
                      "r1 detailed", "r1 fast", "|r1 error|"});

  struct PatternResult {
    std::string name;
    double r_err = 0.0;
  };
  std::vector<PatternResult> outcomes;

  const std::vector<std::string> patterns = {"none", "signal", "regular",
                                             "islands", "diverse"};
  for (const std::string& pattern : patterns) {
    tsv::clear_tsvs(fp, TsvKind::signal);
    Rng prng(seed + 7);
    if (pattern == "signal") {
      tsv::place_signal_tsvs(fp);
    } else if (pattern == "regular") {
      tsv::add_regular_grid(fp, 10, 10);
    } else if (pattern == "islands") {
      tsv::add_islands(fp, 6, 25, prng);
    } else if (pattern == "diverse") {
      tsv::add_islands(fp, 3, 36, prng);
      tsv::add_irregular(fp, 60, prng);
    }

    std::vector<GridD> power{fp.power_map(0, 32, 32),
                             fp.power_map(1, 32, 32)};
    const GridD tsvs = fp.tsv_density_map(32, 32);
    const thermal::ThermalResult detailed = engine.solve_steady(power, tsvs);
    const std::vector<GridD> fast = blur.estimate(power, tsvs);

    const double field_corr =
        leakage::pearson(fast[0], detailed.die_temperature[0]);
    double mae = 0.0;
    for (std::size_t i = 0; i < fast[0].size(); ++i)
      mae += std::abs(fast[0][i] - detailed.die_temperature[0][i]);
    mae /= static_cast<double>(fast[0].size());
    const double r_detailed =
        leakage::pearson(power[0], detailed.die_temperature[0]);
    const double r_fast = leakage::pearson(power[0], fast[0]);

    table.add(pattern, field_corr, mae, r_detailed, r_fast,
              std::abs(r_detailed - r_fast));
    outcomes.push_back({pattern, std::abs(r_detailed - r_fast)});
  }
  table.print();

  double uniform_err = 0.0, diverse_err = 0.0;
  for (const auto& o : outcomes) {
    if (o.name == "none" || o.name == "regular") uniform_err += o.r_err / 2.0;
    if (o.name == "diverse" || o.name == "islands")
      diverse_err += o.r_err / 2.0;
  }
  std::cout << "\nmean |r1 error| on homogeneous patterns: "
            << bench::fmt(uniform_err) << "\n";
  std::cout << "mean |r1 error| on diverse TSV patterns : "
            << bench::fmt(diverse_err) << "\n";
  std::cout << "fast analysis degrades for diverse TSVs (paper's rationale "
               "for post-floorplanning verification): "
            << (diverse_err >= uniform_err * 0.8 ? "CONSISTENT"
                                                 : "NOT OBSERVED")
            << "\n";
  return 0;
}
