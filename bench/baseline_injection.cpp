// Section 1's comparison: Gu et al. [18] mitigate thermal leakage by
// injecting dummy activities at runtime; the paper instead floorplans
// the leakage away at design time and critiques injection on two counts:
//
//   (a) "the 'injection' principle causes further power dissipation,
//       which may be prohibitive for thermal- and power-constrained 3D
//       ICs in the first place";
//   (b) "the best leakage-mitigation rates are only achievable for the
//       highest injection rates."
//
// This harness sweeps the injection budget on a power-aware floorplan of
// n100 and reports smoothing gain, activity distinguishability, power
// overhead, and peak temperature -- next to the TSC-aware floorplan's
// design point (+5.38% power in the paper, Table 2).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/floorplanner.hpp"
#include "leakage/activity.hpp"
#include "mitigation/noise_injection.hpp"

using namespace tsc3d;

namespace {

/// RMS distance between two observed bottom-die thermal maps under two
/// different activities -- what the profiling attacker distinguishes.
double distinguishability(const Floorplan3D& fp,
                          const thermal::GridSolver& solver,
                          const mitigation::InjectionOptions& opt,
                          Rng& rng) {
  leakage::ActivityModel model;
  const std::size_t nx = solver.nx(), ny = solver.ny();
  const GridD tsv = fp.tsv_density_map(nx, ny);
  const auto act_a = model.sample(fp, rng);
  const auto act_b = model.sample(fp, rng);
  const auto observe = [&](const std::vector<double>& act) {
    const auto inj = run_noise_injection(fp, solver, opt, &act);
    std::vector<GridD> power;
    for (std::size_t d = 0; d < fp.tech().num_dies; ++d) {
      power.push_back(fp.power_map(d, nx, ny, &act));
      power.back() += inj.injected_power_w[d];
    }
    return solver.solve_steady(power, tsv);
  };
  const auto ta = observe(act_a);
  const auto tb = observe(act_b);
  double acc = 0.0;
  for (std::size_t i = 0; i < ta.die_temperature[0].size(); ++i) {
    const double diff = ta.die_temperature[0][i] - tb.die_temperature[0][i];
    acc += diff * diff;
  }
  return std::sqrt(acc / static_cast<double>(ta.die_temperature[0].size()));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::size_t{5}));
  const std::size_t moves = flags.get("moves", std::size_t{0});

  std::cout << "=== Ref. [18] baseline: dummy-activity injection vs "
               "TSC-aware floorplanning ===\n\n";

  // Substrate: a power-aware floorplan (the design the injection
  // controllers would be bolted onto).
  floorplan::FloorplannerOptions pa_opt =
      floorplan::Floorplanner::power_aware_setup();
  pa_opt.anneal.total_moves = moves;
  pa_opt.anneal.stages = 25;
  pa_opt.anneal.full_eval_interval = 200;
  Floorplan3D fp = benchgen::generate("n100", seed);
  Rng rng(seed);
  const floorplan::Floorplanner pa_planner(pa_opt);
  const auto pa_metrics = pa_planner.run(fp, rng);

  ThermalConfig cfg = pa_opt.thermal;
  cfg.grid_nx = cfg.grid_ny = 32;
  const thermal::GridSolver solver(fp.tech(), cfg);

  double nominal_power = 0.0;
  for (std::size_t i = 0; i < fp.modules().size(); ++i)
    nominal_power += fp.effective_power(i);

  bench::Table table({"injection budget", "power overhead [%]",
                      "roughness die0 [K]", "distinguishability [K]",
                      "peak T [K]"});

  double rough0 = 0.0, dist0 = 0.0;
  for (const double budget : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    for (const bool naive : {false, true}) {
      if (naive && budget < 0.40) continue;  // one naive row for contrast
      mitigation::InjectionOptions opt;
      opt.budget_fraction = budget;
      opt.iterations = 8;
      opt.stop_at_sweet_spot = !naive;
      const auto result = run_noise_injection(fp, solver, opt);
      Rng dist_rng(seed + 31);  // same activities at every budget
      const double dist = distinguishability(fp, solver, opt, dist_rng);
      if (budget == 0.0) {
        rough0 = result.roughness_after[0];
        dist0 = dist;
      }
      table.add(bench::fmt(100.0 * budget, 0) +
                    (naive ? " % (naive)" : " %"),
                100.0 * result.power_overhead_w / nominal_power,
                result.roughness_after[0], dist, result.peak_k_after);
    }
  }
  table.print();

  // The design-time alternative, for the same design.
  floorplan::FloorplannerOptions tsc_opt =
      floorplan::Floorplanner::tsc_aware_setup();
  tsc_opt.anneal.total_moves = moves;
  tsc_opt.anneal.stages = 25;
  tsc_opt.anneal.full_eval_interval = 200;
  tsc_opt.dummy.samples_per_iteration = 10;
  tsc_opt.dummy.max_iterations = 6;
  Floorplan3D fp_tsc = benchgen::generate("n100", seed);
  Rng rng_tsc(seed);
  const floorplan::Floorplanner tsc_planner(tsc_opt);
  const auto tsc_metrics = tsc_planner.run(fp_tsc, rng_tsc);

  std::cout << "\nTSC-aware floorplanning of the same design:\n"
            << "  power cost   : "
            << bench::fmt(100.0 * (tsc_metrics.power_w - pa_metrics.power_w) /
                              pa_metrics.power_w,
                          2)
            << " % (paper: +5.38 % avg)\n"
            << "  r1           : " << bench::fmt(pa_metrics.correlation[0], 3)
            << " (PA) vs " << bench::fmt(tsc_metrics.correlation[0], 3)
            << " (TSC)  [single run; bench/table2_leakage averages]\n"
            << "\nreading the sweep (baseline roughness "
            << bench::fmt(rough0, 2) << " K, distinguishability "
            << bench::fmt(dist0, 2)
            << " K): smoothing improves with budget until the "
               "controller's sweet spot, where the overhead column "
               "saturates -- spending past it (naive row) mints new "
               "hotspots, heats the stack by tens of kelvin, and still "
               "pays the full power bill (critiques (a) and (b)).\n";
  return 0;
}
