// Figure 2 / Section 3: exploratory experiments over all 30 combinations
// of 5 power distributions x 6 TSV distributions on a two-die 3D IC.
// For every combination the detailed solver produces the thermal maps and
// we report the per-die power-temperature correlation (Eq. 1).
//
// The paper's two key findings are checked explicitly at the end:
//  (i)  non-uniform power with large gradients correlates most; globally
//       uniform least; locally uniform stays low;
//  (ii) many regularly arranged TSVs raise the correlation -- the fewer
//       and the less regular the TSVs, the lower the correlation.
#include <iostream>

#include "bench_util.hpp"
#include "core/rng.hpp"
#include "leakage/pearson.hpp"
#include "leakage/spatial_entropy.hpp"
#include "thermal/thermal_engine.hpp"

using namespace tsc3d;

namespace {

constexpr std::size_t kGrid = 32;

/// 5 power-distribution archetypes (Sec. 3), one map per die.
std::vector<GridD> make_power(const std::string& kind, double total_w,
                              Rng& rng) {
  std::vector<GridD> maps(2, GridD(kGrid, kGrid, 0.0));
  for (std::size_t d = 0; d < 2; ++d) {
    GridD& p = maps[d];
    if (kind == "globally_uniform") {
      p.fill(1.0);
    } else if (kind == "locally_uniform") {
      // Fine patchwork of locally uniform regions with modest level
      // differences (groups of similar power regimes, Fig. 2 bottom row).
      const double level[4] = {0.85, 0.95, 1.10, 1.25};
      for (std::size_t iy = 0; iy < kGrid; ++iy)
        for (std::size_t ix = 0; ix < kGrid; ++ix) {
          const std::size_t patch =
              (ix / 4 * 2654435761u + iy / 4 * 40503u) % 4;
          p.at(ix, iy) = level[patch];
        }
    } else if (kind == "small_gradients") {
      for (std::size_t iy = 0; iy < kGrid; ++iy)
        for (std::size_t ix = 0; ix < kGrid; ++ix)
          p.at(ix, iy) =
              1.0 + 0.15 * std::sin(0.4 * static_cast<double>(ix)) *
                        std::cos(0.4 * static_cast<double>(iy));
    } else if (kind == "medium_gradients") {
      // Quadrants with moderate level ratios (~3x): coarse-scale pattern.
      const double level[4] = {0.7, 1.0, 1.5, 2.1};
      for (std::size_t iy = 0; iy < kGrid; ++iy)
        for (std::size_t ix = 0; ix < kGrid; ++ix)
          p.at(ix, iy) = level[(ix / 16) + 2 * (iy / 16)];
    } else {  // large_gradients
      // Quadrants with very large level ratios (~40x) plus hotspots:
      // large power gradients within the die (Fig. 2 middle row).
      const double level[4] = {0.2, 1.0, 3.0, 8.0};
      for (std::size_t iy = 0; iy < kGrid; ++iy)
        for (std::size_t ix = 0; ix < kGrid; ++ix)
          p.at(ix, iy) = level[(ix / 16) + 2 * (iy / 16)];
      for (int hs = 0; hs < 3; ++hs) {
        const std::size_t cx = 3 + rng.index(kGrid - 6);
        const std::size_t cy = 3 + rng.index(kGrid - 6);
        for (std::size_t iy = cy - 2; iy <= cy + 2; ++iy)
          for (std::size_t ix = cx - 2; ix <= cx + 2; ++ix)
            p.at(ix, iy) += 6.0;
      }
    }
    // Normalize each die to total_w.
    const double s = p.sum();
    for (auto& v : p) v *= total_w / s;
  }
  return maps;
}

/// 6 TSV-distribution archetypes (Sec. 3).
GridD make_tsvs(const std::string& kind, Rng& rng) {
  GridD t(kGrid, kGrid, 0.0);
  auto regular = [&](std::size_t pitch, double f) {
    for (std::size_t iy = pitch / 2; iy < kGrid; iy += pitch)
      for (std::size_t ix = pitch / 2; ix < kGrid; ix += pitch)
        t.at(ix, iy) = std::max(t.at(ix, iy), f);
  };
  auto irregular = [&](std::size_t count, double f) {
    for (std::size_t i = 0; i < count; ++i)
      t.at(rng.index(kGrid), rng.index(kGrid)) = f;
  };
  auto islands = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t cx = 2 + rng.index(kGrid - 4);
      const std::size_t cy = 2 + rng.index(kGrid - 4);
      for (std::size_t iy = cy - 1; iy <= cy + 1; ++iy)
        for (std::size_t ix = cx - 1; ix <= cx + 1; ++ix)
          t.at(ix, iy) = 1.0;
    }
  };
  if (kind == "none") {
    // leave zero
  } else if (kind == "max_density") {
    t.fill(1.0);
  } else if (kind == "irregular") {
    irregular(50, 0.6);
  } else if (kind == "irregular+regular") {
    irregular(50, 0.6);
    regular(4, 0.6);
  } else if (kind == "islands") {
    islands(6);
  } else {  // islands+regular
    islands(6);
    regular(4, 0.6);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{1}));
  const std::size_t threads = flags.get("threads", std::size_t{1});

  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = kGrid;
  // One engine for the whole 30-combination sweep: each solve warm-starts
  // from the previous combination's field.  --threads=N shards the
  // red-black sweeps (results are bitwise-identical to serial).
  thermal::ThermalEngine engine(tech, cfg, {.threads = threads});

  const std::vector<std::string> power_kinds = {
      "globally_uniform", "locally_uniform", "small_gradients",
      "medium_gradients", "large_gradients"};
  const std::vector<std::string> tsv_kinds = {
      "none",    "max_density", "irregular", "irregular+regular",
      "islands", "islands+regular"};

  std::cout << "=== Figure 2 / Sec. 3: 30 power x TSV combinations ===\n";
  std::cout << "cells: correlation r1 (bottom die) / r2 (top die)\n\n";

  bench::Table table({"power \\ tsv", tsv_kinds[0], tsv_kinds[1],
                      tsv_kinds[2], tsv_kinds[3], tsv_kinds[4],
                      tsv_kinds[5]});
  // Collected statistics for the findings checks.
  std::map<std::string, double> mean_r1_by_power;
  std::map<std::string, double> mean_r1_by_tsv;

  for (const std::string& pk : power_kinds) {
    std::vector<std::string> row{pk};
    for (const std::string& tk : tsv_kinds) {
      Rng rng(seed);  // same randomness for every combo: fair comparison
      const std::vector<GridD> power = make_power(pk, 8.0, rng);
      const GridD tsvs = make_tsvs(tk, rng);
      const thermal::ThermalResult res = engine.solve_steady(power, tsvs);
      const double r1 = leakage::pearson(power[0], res.die_temperature[0]);
      const double r2 = leakage::pearson(power[1], res.die_temperature[1]);
      row.push_back(bench::fmt(r1, 2) + "/" + bench::fmt(r2, 2));
      mean_r1_by_power[pk] += r1 / static_cast<double>(tsv_kinds.size());
      mean_r1_by_tsv[tk] += r1 / static_cast<double>(power_kinds.size());
    }
    table.add_row(row);
  }
  table.print();

  std::cout << "\n--- finding (i): power-distribution effect on r1 ---\n";
  for (const std::string& pk : power_kinds)
    std::cout << "  " << pk << ": mean r1 = "
              << bench::fmt(mean_r1_by_power[pk]) << "\n";
  const bool finding_i =
      mean_r1_by_power["large_gradients"] >
          mean_r1_by_power["locally_uniform"] &&
      mean_r1_by_power["globally_uniform"] <=
          mean_r1_by_power["large_gradients"];

  std::cout << "\n--- finding (ii): TSV-distribution effect on r1 ---\n";
  for (const std::string& tk : tsv_kinds)
    std::cout << "  " << tk << ": mean r1 = " << bench::fmt(mean_r1_by_tsv[tk])
              << "\n";
  const bool finding_ii =
      mean_r1_by_tsv["max_density"] > mean_r1_by_tsv["islands"] &&
      mean_r1_by_tsv["max_density"] > mean_r1_by_tsv["irregular"];

  std::cout << "\nfinding (i)  large gradients correlate more than locally "
               "uniform: "
            << (finding_i ? "CONFIRMED" : "NOT CONFIRMED") << "\n";
  std::cout << "finding (ii) regular/many TSVs correlate more than "
               "few/irregular: "
            << (finding_ii ? "CONFIRMED" : "NOT CONFIRMED") << "\n";
  return finding_i && finding_ii ? 0 : 1;
}
