// Table 2 + Figure 5: average spatial entropies (S1, S2), correlation
// coefficients (r1, r2) and design cost for power-aware (PA) versus
// thermal side-channel-aware (TSC) floorplanning over all six benchmarks.
//
// The paper averages 50 floorplanning runs per setup; the run count and
// the SA budget are flag-controlled so the full-scale experiment can be
// reproduced (--runs=50 --moves=40000), while the default settings keep
// the harness in CI time.  The SHAPE of the result is what matters:
//   * TSC lowers r1 (bottom die), more so for larger circuits;
//   * r2 stays high for both setups (heatsink design rule, Sec. 7.2);
//   * TSC costs a little power (paper: +5.4%), some delay (+10.3%), more
//     voltage volumes (+87%), few dummy TSVs, and about the same WL.
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/floorplanner.hpp"

using namespace tsc3d;

namespace {

struct Aggregate {
  std::vector<double> s1, s2, r1, r2, power, delay, wl, peak, runtime;
  std::vector<double> signal_tsvs, dummy_tsvs, volumes;

  void add(const floorplan::FloorplanMetrics& m) {
    s1.push_back(m.entropy[0]);
    s2.push_back(m.entropy[1]);
    r1.push_back(m.correlation[0]);
    r2.push_back(m.correlation[1]);
    power.push_back(m.power_w);
    delay.push_back(m.critical_delay_ns);
    wl.push_back(m.wirelength_m);
    peak.push_back(m.peak_k);
    runtime.push_back(m.runtime_s);
    signal_tsvs.push_back(static_cast<double>(m.signal_tsvs));
    dummy_tsvs.push_back(static_cast<double>(m.dummy_tsvs));
    volumes.push_back(static_cast<double>(m.voltage_volumes));
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t runs = flags.get("runs", std::size_t{2});
  const std::size_t moves = flags.get("moves", std::size_t{0});
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{1}));
  const std::vector<std::string> names = flags.get_list(
      "benchmarks", {"n100", "n200", "n300", "ibm01", "ibm03", "ibm07"});

  std::cout << "=== Table 2 / Figure 5: PA vs TSC floorplanning ===\n";
  std::cout << "runs per setup: " << runs << ", SA moves: " << moves
            << " (paper: 50 runs)\n\n";

  auto make_options = [&](bool tsc) {
    floorplan::FloorplannerOptions o =
        tsc ? floorplan::Floorplanner::tsc_aware_setup()
            : floorplan::Floorplanner::power_aware_setup();
    o.anneal.total_moves = moves;  // 0 = auto-scaled
    o.anneal.stages = 25;
    o.anneal.full_eval_interval = 200;
    o.dummy.samples_per_iteration = 10;
    o.dummy.max_iterations = 6;
    return o;
  };

  bench::Table pa_table({"metric", "setup", "n100", "n200", "n300", "ibm01",
                         "ibm03", "ibm07", "avg"});
  std::map<std::string, std::map<std::string, Aggregate>> results;

  for (const std::string& name : names) {
    for (const bool tsc : {false, true}) {
      const floorplan::Floorplanner planner(make_options(tsc));
      Aggregate& agg = results[name][tsc ? "TSC" : "PA"];
      for (std::size_t run = 0; run < runs; ++run) {
        Floorplan3D fp = benchgen::generate(name, seed + run);
        Rng rng(seed * 1000 + run * 7 + (tsc ? 1 : 0));
        const floorplan::FloorplanMetrics m = planner.run(fp, rng);
        agg.add(m);
        std::cerr << "  " << name << " " << (tsc ? "TSC" : "PA ") << " run "
                  << run << ": r1=" << bench::fmt(m.correlation[0])
                  << " r2=" << bench::fmt(m.correlation[1])
                  << (m.legal ? "" : " [outline not met]") << " ("
                  << bench::fmt(m.runtime_s, 1) << " s)\n";
      }
    }
  }

  // --- emit the Table 2 layout ------------------------------------------
  auto emit = [&](const std::string& label, auto selector, int digits) {
    for (const char* setup : {"PA", "TSC"}) {
      std::vector<std::string> row{label, setup};
      double sum = 0.0;
      for (const char* name :
           {"n100", "n200", "n300", "ibm01", "ibm03", "ibm07"}) {
        if (!results.count(name)) {
          row.push_back("-");
          continue;
        }
        const double v = bench::mean(selector(results[name][setup]));
        row.push_back(bench::fmt(v, digits));
        sum += v;
      }
      row.push_back(bench::fmt(sum / static_cast<double>(names.size()),
                               digits));
      pa_table.add_row(row);
    }
  };
  emit("S1 spatial entropy", [](const Aggregate& a) { return a.s1; }, 3);
  emit("r1 correlation", [](const Aggregate& a) { return a.r1; }, 3);
  emit("S2 spatial entropy", [](const Aggregate& a) { return a.s2; }, 3);
  emit("r2 correlation", [](const Aggregate& a) { return a.r2; }, 3);
  emit("overall power [W]", [](const Aggregate& a) { return a.power; }, 3);
  emit("critical delay [ns]", [](const Aggregate& a) { return a.delay; }, 3);
  emit("wirelength [m]", [](const Aggregate& a) { return a.wl; }, 3);
  emit("peak temp [K]", [](const Aggregate& a) { return a.peak; }, 2);
  emit("signal TSVs", [](const Aggregate& a) { return a.signal_tsvs; }, 0);
  emit("dummy thermal TSVs", [](const Aggregate& a) { return a.dummy_tsvs; },
       1);
  emit("voltage volumes", [](const Aggregate& a) { return a.volumes; }, 2);
  emit("runtime [s]", [](const Aggregate& a) { return a.runtime; }, 1);
  pa_table.print();

  // --- headline comparisons (Sec. 7.2 / 7.3) -----------------------------
  double r1_pa = 0.0, r1_tsc = 0.0, pw_pa = 0.0, pw_tsc = 0.0, vol_pa = 0.0,
         vol_tsc = 0.0, wl_pa = 0.0, wl_tsc = 0.0;
  for (const std::string& name : names) {
    r1_pa += std::abs(bench::mean(results[name]["PA"].r1));
    r1_tsc += std::abs(bench::mean(results[name]["TSC"].r1));
    pw_pa += bench::mean(results[name]["PA"].power);
    pw_tsc += bench::mean(results[name]["TSC"].power);
    vol_pa += bench::mean(results[name]["PA"].volumes);
    vol_tsc += bench::mean(results[name]["TSC"].volumes);
    wl_pa += bench::mean(results[name]["PA"].wl);
    wl_tsc += bench::mean(results[name]["TSC"].wl);
  }
  const double r1_red = 100.0 * (r1_pa - r1_tsc) / r1_pa;
  std::cout << "\nTSC vs PA summary (averages over benchmarks):\n";
  std::cout << "  r1 reduction           : " << bench::fmt(r1_red, 2)
            << " %   (paper: 7.71 % avg, up to 16.79 %)\n";
  std::cout << "  power overhead         : "
            << bench::fmt(100.0 * (pw_tsc - pw_pa) / pw_pa, 2)
            << " %   (paper: +5.38 %)\n";
  std::cout << "  voltage-volume overhead: "
            << bench::fmt(100.0 * (vol_tsc - vol_pa) / vol_pa, 2)
            << " %   (paper: +87.17 %)\n";
  std::cout << "  wirelength overhead    : "
            << bench::fmt(100.0 * (wl_tsc - wl_pa) / wl_pa, 2)
            << " %   (paper: +1.08 %)\n";
  const bool shape_holds = r1_tsc <= r1_pa;
  std::cout << "\nTSC-aware floorplanning lowers the bottom-die correlation: "
            << (shape_holds ? "YES" : "NO") << "\n";
  return shape_holds ? 0 : 1;
}
