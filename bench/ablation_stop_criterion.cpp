// Section 6.2/7.1 ablation: the dummy-TSV "sweet spot" stop criterion
// (insert only while the average correlation decreases) versus naive
// fixed-count insertion.  The paper observes that TSV insertion past the
// sweet spot stabilizes the correlation again through adverse side
// effects on previously decorrelated regions.
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "leakage/activity.hpp"
#include "tsv/dummy_inserter.hpp"
#include "tsv/planner.hpp"

using namespace tsc3d;

namespace {

/// Average per-die sampled correlation of the current floorplan.
double sampled_correlation(const Floorplan3D& fp,
                           const thermal::GridSolver& solver,
                           std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  const leakage::StabilitySampling s =
      leakage::run_stability_sampling(fp, solver, samples, rng);
  return bench::mean(s.mean_correlation);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{6}));
  const std::size_t samples = flags.get("samples", std::size_t{10});

  Floorplan3D base = benchgen::generate("n100", seed);
  Rng layout_rng(seed);
  floorplan::LayoutState state =
      floorplan::LayoutState::initial(base, layout_rng);
  state.apply_to(base);
  tsv::place_signal_tsvs(base);

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 24;
  const thermal::GridSolver solver(base.tech(), cfg);

  std::cout << "=== Sec. 6.2 ablation: sweet-spot stop vs fixed-count "
               "insertion ===\n\n";

  // --- variant A: sweet-spot criterion ---------------------------------
  Floorplan3D sweet = base;
  Rng rng_a(seed + 1);
  tsv::DummyInsertOptions opt;
  opt.samples_per_iteration = samples;
  opt.max_iterations = 10;
  opt.islands_per_iteration = 2;
  opt.tsvs_per_island = 16;
  const tsv::DummyInsertResult res_sweet =
      insert_dummy_tsvs(sweet, solver, rng_a, opt);

  // --- variant B: fixed large budget, no stop criterion -----------------
  // Emulated by inserting the same island size at the most stable bins
  // for the FULL iteration budget regardless of the correlation trend.
  Floorplan3D fixed = base;
  Rng rng_b(seed + 1);
  std::size_t fixed_tsvs = 0;
  {
    for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
      const leakage::StabilitySampling s =
          leakage::run_stability_sampling(fixed, solver, samples, rng_b);
      // Pick the 2 most stable bins and insert unconditionally.
      GridD combined = s.stability[0];
      for (auto& v : combined) v = std::abs(v);
      for (std::size_t d = 1; d < s.stability.size(); ++d)
        for (std::size_t i = 0; i < combined.size(); ++i)
          combined[i] =
              std::max(combined[i], std::abs(s.stability[d][i]));
      for (int k = 0; k < 2; ++k) {
        std::size_t best = 0;
        for (std::size_t i = 0; i < combined.size(); ++i)
          if (combined[i] > combined[best]) best = i;
        combined[best] = -1.0;
        const double bw =
            fixed.tech().die_width_um / static_cast<double>(combined.nx());
        const double bh =
            fixed.tech().die_height_um / static_cast<double>(combined.ny());
        Tsv t;
        t.position = {(static_cast<double>(best % combined.nx()) + 0.5) * bw,
                      (static_cast<double>(best / combined.nx()) + 0.5) * bh};
        t.count = opt.tsvs_per_island;
        t.kind = TsvKind::dummy;
        fixed.tsvs().push_back(t);
        fixed_tsvs += t.count;
      }
    }
  }

  const double corr_base =
      sampled_correlation(base, solver, samples, seed + 50);
  const double corr_sweet =
      sampled_correlation(sweet, solver, samples, seed + 50);
  const double corr_fixed =
      sampled_correlation(fixed, solver, samples, seed + 50);

  bench::Table table(
      {"variant", "dummy TSVs", "avg sampled correlation", "vs base"});
  table.add("no insertion", std::size_t{0}, corr_base, bench::fmt(0.0, 1));
  table.add("sweet-spot stop", res_sweet.tsvs_inserted, corr_sweet,
            bench::fmt(100.0 * (corr_sweet - corr_base) / corr_base, 1) +
                " %");
  table.add("fixed budget", fixed_tsvs, corr_fixed,
            bench::fmt(100.0 * (corr_fixed - corr_base) / corr_base, 1) +
                " %");
  table.print();

  std::cout << "\nsweet-spot insertion uses "
            << res_sweet.tsvs_inserted << " TSVs vs " << fixed_tsvs
            << " for the fixed budget.\n";
  const bool efficient =
      corr_sweet <= corr_base + 1e-9 &&
      res_sweet.tsvs_inserted <= fixed_tsvs;
  std::cout << "sweet-spot variant achieves its reduction with fewer TSVs: "
            << (efficient ? "YES" : "NO") << "\n";
  return efficient ? 0 : 1;
}
