// Table 1: properties of the GSRC and IBM-HB+ benchmarks.  The synthetic
// generator must reproduce every column; this harness regenerates each
// instance and prints the measured values side by side with the spec.
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"

using namespace tsc3d;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{1}));

  std::cout << "=== Table 1: benchmark properties (spec vs generated) ===\n\n";
  bool all_match = true;
  const auto check_tier = [&](const std::vector<benchgen::BenchmarkSpec>&
                                  specs) {
    bench::Table table({"name", "modules (h/s)", "scale", "#nets", "#pins",
                        "#terminals", "outline [mm2]", "power@1.0V [W]"});
    for (const benchgen::BenchmarkSpec& spec : specs) {
      const Floorplan3D fp = benchgen::generate(spec, seed);
      std::size_t hard = 0;
      double power = 0.0;
      for (const Module& m : fp.modules()) {
        hard += m.soft ? 0 : 1;
        power += m.power_w;
      }
      std::size_t pins = 0;
      for (const Net& n : fp.nets()) pins += n.pins.size();
      table.add_row({spec.name,
                     std::to_string(hard) + "/" +
                         std::to_string(fp.modules().size() - hard),
                     bench::fmt(spec.scale_factor, 0),
                     std::to_string(fp.nets().size()), std::to_string(pins),
                     std::to_string(fp.terminals().size()),
                     bench::fmt(spec.outline_mm2, 2), bench::fmt(power, 2)});
      all_match &= hard == spec.hard_modules &&
                   fp.modules().size() == spec.total_modules() &&
                   fp.nets().size() == spec.num_nets &&
                   fp.terminals().size() == spec.num_terminals &&
                   std::abs(power - spec.power_w) < 1e-6;
    }
    table.print();
  };
  check_tier(benchgen::table1_specs());
  std::cout << "\n--- scale tier (beyond the paper; incremental-eval "
               "workloads) ---\n";
  check_tier(benchgen::scale_specs());
  std::cout << "\nall instances match their specs: "
            << (all_match ? "YES" : "NO") << "\n";
  return all_match ? 0 : 1;
}
