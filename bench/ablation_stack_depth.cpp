// Section 8 (future work): "we shall address the thermal leakage in
// larger 3D-IC stacks."  The stack builder, solver, and metrics are
// generic over the die count; this harness floorplans the same logical
// design onto 2-, 3-, and 4-die stacks and reports the per-die leakage
// correlations and the thermal cost.
//
// Expected physics: dies farther from the heatsink run hotter, and the
// per-die correlation asymmetry (r_top vs r_bottom) deepens with stack
// height -- the leakage problem gets harder, not easier, in taller
// stacks.
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "leakage/pearson.hpp"
#include "thermal/grid_solver.hpp"
#include "tsv/planner.hpp"

using namespace tsc3d;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{7}));

  std::cout << "=== Sec. 8 extension: leakage across stack depths ===\n\n";
  bench::Table table({"dies", "per-die r (bottom..top)", "peak T [K]",
                      "heat via sink [W]", "heat via package [W]"});

  std::vector<double> peaks;
  for (const std::size_t dies : {std::size_t{2}, std::size_t{3},
                                 std::size_t{4}}) {
    benchgen::BenchmarkSpec spec;
    spec.name = "stack" + std::to_string(dies);
    spec.soft_modules = 60;
    spec.num_nets = 120;
    spec.num_terminals = 12;
    spec.outline_mm2 = 9.0;
    spec.power_w = 6.0;
    Floorplan3D fp = benchgen::generate(spec, seed);
    fp.tech().num_dies = dies;

    // Quick layout: initial state + signal TSVs (full SA isn't needed for
    // the thermal trend; the same module set is spread over more dies).
    Rng rng(seed);
    floorplan::LayoutState state = floorplan::LayoutState::initial(fp, rng);
    state.apply_to(fp);
    tsv::place_signal_tsvs(fp);

    ThermalConfig cfg;
    cfg.grid_nx = cfg.grid_ny = 32;
    const thermal::GridSolver solver(fp.tech(), cfg);
    std::vector<GridD> power;
    for (std::size_t d = 0; d < dies; ++d)
      power.push_back(fp.power_map(d, 32, 32));
    const thermal::ThermalResult res =
        solver.solve_steady(power, fp.tsv_density_map(32, 32));

    std::string rs;
    for (std::size_t d = 0; d < dies; ++d) {
      if (d > 0) rs += " / ";
      rs += bench::fmt(
          leakage::pearson(power[d], res.die_temperature[d]), 2);
    }
    table.add(dies, rs, res.peak_k, res.heat_to_sink_w,
              res.heat_to_package_w);
    peaks.push_back(res.peak_k);
  }
  table.print();

  const bool hotter = peaks.size() == 3 && peaks[2] > peaks[0];
  std::cout << "\ntaller stacks run hotter for the same total power: "
            << (hotter ? "YES" : "NO")
            << " (thermal management is the binding constraint, Sec. 1)\n";
  return 0;
}
