// Section 6.1 ablation: the cost of floorplanning-centric voltage
// assignment.  The paper: "our techniques induce a low runtime cost,
// around 30%, when compared to 3D floorplanning without voltage
// assignment" (versus impractical MILP formulations in prior work).
//
// We run the same SA budget with and without the voltage-assignment /
// expensive-analysis stage enabled and compare wall-clock time, power,
// and volume counts.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/floorplanner.hpp"

using namespace tsc3d;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed",
                                                         std::size_t{8}));
  const std::size_t moves = flags.get("moves", std::size_t{20000});

  std::cout << "=== Sec. 6.1 ablation: voltage assignment runtime cost ===\n";
  std::cout << "benchmark n100, " << moves << " SA moves per variant\n\n";

  bench::Table table({"variant", "runtime [s]", "power [W]", "volumes",
                      "critical delay [ns]"});

  double runtime_without = 0.0, runtime_with = 0.0;
  for (const bool with_va : {false, true}) {
    floorplan::FloorplannerOptions opt =
        floorplan::Floorplanner::power_aware_setup();
    opt.anneal.total_moves = moves;
    opt.anneal.stages = 25;
    // Without VA: push the expensive refresh out of reach so the loop
    // runs pure layout optimization (the paper's baseline flow).
    opt.anneal.full_eval_interval = with_va ? 200 : moves + 1;

    Floorplan3D fp = benchgen::generate("n100", seed);
    Rng rng(seed);
    const floorplan::Floorplanner planner(opt);
    const auto t0 = std::chrono::steady_clock::now();
    const floorplan::FloorplanMetrics m = planner.run(fp, rng);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    (with_va ? runtime_with : runtime_without) = dt;
    table.add(with_va ? "with voltage assignment" : "layout-only loop", dt,
              m.power_w, m.voltage_volumes, m.critical_delay_ns);
  }
  table.print();

  const double overhead =
      100.0 * (runtime_with - runtime_without) / runtime_without;
  std::cout << "\nruntime overhead of continuous voltage assignment: "
            << bench::fmt(overhead, 1) << " %  (paper: ~30 %)\n";
  return 0;
}
