// Ref [4], second half: heating FAULT attacks.  The attacker cannot
// trigger the victim module, but boosts other modules via crafted
// inputs until the victim crosses a fault threshold.  This harness
// sweeps the activity boost and the attacker's power-stealth budget on
// a fixed layout and reports the achievable victim temperature -- then
// shows the defender's two levers: a DTM-style power cap (throttling
// the accomplices) and extra dummy thermal TSVs over the victim.
#include <iostream>

#include "attack/heating_fault.hpp"
#include "bench_util.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "tsv/planner.hpp"

using namespace tsc3d;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::size_t{9}));

  std::cout << "=== Ref. [4]: heating fault attack ===\n\n";

  benchgen::BenchmarkSpec spec;
  spec.name = "fault";
  spec.soft_modules = 30;
  spec.num_nets = 60;
  spec.num_terminals = 8;
  spec.outline_mm2 = 4.0;
  spec.power_w = 6.0;
  Floorplan3D fp = benchgen::generate(spec, seed);
  Rng rng(seed);
  floorplan::LayoutState state = floorplan::LayoutState::initial(fp, rng);
  state.apply_to(fp);
  tsv::place_signal_tsvs(fp);

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  const thermal::GridSolver solver(fp.tech(), cfg);

  // Victim: the lowest-power module on the bottom die (quiet targets --
  // key stores, RNGs -- are the interesting ones).
  std::size_t victim = 0;
  double lowest = 1e300;
  for (std::size_t i = 0; i < fp.modules().size(); ++i) {
    const auto& m = fp.modules()[i];
    if (m.die == 0 && m.power_w < lowest) {
      lowest = m.power_w;
      victim = i;
    }
  }

  bench::Table table({"boost", "stealth budget", "accomplices",
                      "attack power [W]", "victim T rest [K]",
                      "victim T attacked [K]"});
  for (const double boost : {1.5, 2.0, 3.0}) {
    for (const double budget : {0.1, 0.3, 1.0}) {
      attack::HeatingFaultOptions opt;
      opt.boost = boost;
      opt.power_budget_fraction = budget;
      opt.fault_threshold_k = 1e9;  // report temperatures, not verdicts
      const auto r =
          attack::run_heating_fault_attack(fp, solver, victim, opt);
      table.add(boost, bench::fmt(100.0 * budget, 0) + " %",
                r.accomplices_used, r.attack_power_w,
                r.victim_peak_k_nominal, r.victim_peak_k_attacked);
    }
  }
  table.print();

  // Defender's view: the rise the attacker can force, per watt burned,
  // is the lever DTM throttling caps (bench/ablation_dtm) and dummy
  // thermal TSVs over the victim dilute (bench/ablation_focus_protection).
  attack::HeatingFaultOptions strong;
  strong.boost = 3.0;
  strong.power_budget_fraction = 1.0;
  strong.fault_threshold_k = 1e9;
  const auto r = attack::run_heating_fault_attack(fp, solver, victim, strong);
  std::cout << "\nstrongest attack: +"
            << bench::fmt(r.victim_peak_k_attacked - r.victim_peak_k_nominal,
                          2)
            << " K on the victim for " << bench::fmt(r.attack_power_w, 2)
            << " W of accomplice activity ("
            << bench::fmt(
                   (r.victim_peak_k_attacked - r.victim_peak_k_nominal) /
                       std::max(r.attack_power_w, 1e-9),
                   2)
            << " K/W)\na power monitor that caps boosted activity (DTM, "
               "refs [13]/[14]) bounds this vector directly.\n";
  return 0;
}
