// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Shared helpers for the experiment harness binaries.  Every bench binary
// regenerates one table or figure of the paper; common needs are flag
// parsing (--runs=N, --benchmarks=a,b, --moves=N, --seed=N), simple
// statistics, and aligned table printing.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

namespace tsc3d::bench {

/// Minimal --key=value flag parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  [[nodiscard]] std::size_t get(const std::string& key,
                                std::size_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoul(it->second);
  }
  [[nodiscard]] double get(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& key, const std::vector<std::string>& fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::vector<std::string> out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) out.push_back(item);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
};

inline double mean(const std::vector<double>& v) {
  return v.empty() ? 0.0
                   : std::accumulate(v.begin(), v.end(), 0.0) /
                         static_cast<double>(v.size());
}

inline double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double var = 0.0;
  for (const double x : v) var += (x - m) * (x - m);
  return std::sqrt(var / static_cast<double>(v.size()));
}

/// Simple aligned table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : widths_(header.size(), 0) {
    add_row(std::move(header));
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i)
      widths_[i] = std::max(widths_[i], cells[i].size());
    rows_.push_back(std::move(cells));
  }

  template <typename... Args>
  void add(Args&&... args) {
    add_row({to_cell(std::forward<Args>(args))...});
  }

  void print(std::ostream& os = std::cout) const {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        os << (c == 0 ? "" : "  ");
        os.width(static_cast<std::streamsize>(widths_[c]));
        os << std::left << rows_[r][c];
      }
      os << "\n";
      if (r == 0) {
        std::size_t total = 0;
        for (const std::size_t w : widths_) total += w + 2;
        os << std::string(total, '-') << "\n";
      }
    }
  }

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(std::size_t v) { return std::to_string(v); }
  static std::string to_cell(int v) { return std::to_string(v); }
  static std::string to_cell(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
  }

 private:
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

/// Format with explicit precision.
inline std::string fmt(double v, int digits = 3) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace tsc3d::bench
