// Tests of the map export/import helpers (CSV + PGM).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/map_io.hpp"

namespace tsc3d {
namespace {

class MapIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("tsc3d_mapio_") + info->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(MapIoTest, CsvRoundTrip) {
  GridD map(5, 3);
  for (std::size_t i = 0; i < map.size(); ++i)
    map[i] = 0.25 * static_cast<double>(i) - 1.0;
  write_csv(map, dir_ / "m.csv");
  const GridD back = read_csv(dir_ / "m.csv");
  ASSERT_EQ(back.nx(), 5u);
  ASSERT_EQ(back.ny(), 3u);
  for (std::size_t i = 0; i < map.size(); ++i)
    EXPECT_NEAR(back[i], map[i], 1e-12);
}

TEST_F(MapIoTest, PgmHeaderAndSize) {
  GridD map(8, 4, 0.0);
  map.at(7, 3) = 1.0;
  write_pgm(map, dir_ / "m.pgm");
  std::ifstream in(dir_ / "m.pgm", std::ios::binary);
  std::string magic;
  std::size_t w = 0, h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 8u);
  EXPECT_EQ(h, 4u);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> pixels(w * h);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(w * h));
  // y-flip: the hot pixel at (7, 3) lands in the FIRST written row.
  EXPECT_EQ(static_cast<unsigned char>(pixels[7]), 255u);
}

TEST_F(MapIoTest, ConstantMapDoesNotDivideByZero) {
  GridD map(4, 4, 3.0);
  write_pgm(map, dir_ / "c.pgm");  // must not crash
  EXPECT_TRUE(std::filesystem::exists(dir_ / "c.pgm"));
}

TEST_F(MapIoTest, ReadCsvRejectsRaggedRows) {
  {
    std::ofstream out(dir_ / "bad.csv");
    out << "1,2,3\n1,2\n";
  }
  EXPECT_THROW(read_csv(dir_ / "bad.csv"), std::runtime_error);
}

TEST_F(MapIoTest, MissingFileThrows) {
  EXPECT_THROW(read_csv(dir_ / "absent.csv"), std::runtime_error);
  EXPECT_THROW(write_csv(GridD(2, 2), dir_ / "no_dir" / "x.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace tsc3d
