#include "core/geometry.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace tsc3d {
namespace {

TEST(Geometry, RectBasics) {
  const Rect r{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(r.area(), 1200.0);
  EXPECT_DOUBLE_EQ(r.right(), 40.0);
  EXPECT_DOUBLE_EQ(r.top(), 60.0);
  EXPECT_DOUBLE_EQ(r.center().x, 25.0);
  EXPECT_DOUBLE_EQ(r.center().y, 40.0);
  EXPECT_DOUBLE_EQ(r.aspect_ratio(), 0.75);
}

TEST(Geometry, DegenerateRectHasZeroArea) {
  EXPECT_DOUBLE_EQ((Rect{0, 0, 0, 10}.area()), 0.0);
  EXPECT_DOUBLE_EQ((Rect{0, 0, 10, 0}.area()), 0.0);
}

TEST(Geometry, ContainsPoint) {
  const Rect r{0.0, 0.0, 10.0, 10.0};
  EXPECT_TRUE(r.contains(Point{5.0, 5.0}));
  EXPECT_TRUE(r.contains(Point{0.0, 0.0}));    // closed boundary
  EXPECT_TRUE(r.contains(Point{10.0, 10.0}));
  EXPECT_FALSE(r.contains(Point{10.001, 5.0}));
  EXPECT_FALSE(r.contains(Point{-0.001, 5.0}));
}

TEST(Geometry, ContainsRect) {
  const Rect outer{0.0, 0.0, 100.0, 100.0};
  EXPECT_TRUE(outer.contains(Rect{10.0, 10.0, 20.0, 20.0}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{90.0, 90.0, 20.0, 20.0}));
  EXPECT_FALSE(outer.contains(Rect{-1.0, 0.0, 5.0, 5.0}));
}

TEST(Geometry, AbuttingRectsDoNotOverlap) {
  const Rect a{0.0, 0.0, 10.0, 10.0};
  const Rect b{10.0, 0.0, 10.0, 10.0};  // shares the x=10 edge
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(b.overlaps(a));
  EXPECT_DOUBLE_EQ(overlap_area(a, b), 0.0);
}

TEST(Geometry, OverlapAreaIsCorrect) {
  const Rect a{0.0, 0.0, 10.0, 10.0};
  const Rect b{5.0, 5.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(overlap_area(a, b), 25.0);
  const Rect i = intersection(a, b);
  EXPECT_EQ(i, (Rect{5.0, 5.0, 5.0, 5.0}));
}

TEST(Geometry, BoundingBox) {
  const Rect a{0.0, 0.0, 1.0, 1.0};
  const Rect b{5.0, 7.0, 2.0, 3.0};
  const Rect bb = bounding_box(a, b);
  EXPECT_EQ(bb, (Rect{0.0, 0.0, 7.0, 10.0}));
}

TEST(Geometry, Distances) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(manhattan(a, b), 7.0);
}

// Property sweep: overlap is symmetric and overlap area never exceeds
// either rectangle's own area.
class OverlapProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(OverlapProperty, SymmetricAndBounded) {
  const auto [dx, dy, scale] = GetParam();
  const Rect a{0.0, 0.0, 10.0, 8.0};
  const Rect b{dx, dy, 10.0 * scale, 8.0 * scale};
  EXPECT_EQ(a.overlaps(b), b.overlaps(a));
  const double ov = overlap_area(a, b);
  EXPECT_DOUBLE_EQ(ov, overlap_area(b, a));
  EXPECT_LE(ov, a.area() + 1e-12);
  EXPECT_LE(ov, b.area() + 1e-12);
  EXPECT_GE(ov, 0.0);
  // Consistency: positive overlap area iff overlaps() is true.
  EXPECT_EQ(ov > 0.0, a.overlaps(b));
}

INSTANTIATE_TEST_SUITE_P(
    Offsets, OverlapProperty,
    ::testing::Combine(::testing::Values(-12.0, -5.0, 0.0, 5.0, 9.999, 10.0,
                                         15.0),
                       ::testing::Values(-9.0, 0.0, 4.0, 8.0, 12.0),
                       ::testing::Values(0.5, 1.0, 2.0)));

}  // namespace
}  // namespace tsc3d
