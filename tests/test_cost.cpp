// Tests of the multi-objective cost evaluator (Sec. 7 setups).
#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "floorplan/cost.hpp"

namespace tsc3d::floorplan {
namespace {

class CostFixture : public ::testing::Test {
 protected:
  CostFixture()
      : fp_(make_instance()),
        solver_(fp_.tech(), thermal_cfg()),
        blur_(solver_, 5) {
    Rng rng(1);
    LayoutState s = LayoutState::initial(fp_, rng);
    s.apply_to(fp_);
  }

  static Floorplan3D make_instance() {
    benchgen::BenchmarkSpec spec;
    spec.name = "cost_test";
    spec.soft_modules = 16;
    spec.num_nets = 30;
    spec.num_terminals = 4;
    spec.outline_mm2 = 4.0;
    spec.power_w = 2.0;
    return benchgen::generate(spec, 3);
  }
  static ThermalConfig thermal_cfg() {
    ThermalConfig c;
    c.grid_nx = c.grid_ny = 16;
    return c;
  }
  CostEvaluator::Options options(CostWeights w) {
    CostEvaluator::Options o;
    o.weights = w;
    o.leakage_grid = 16;
    return o;
  }

  Floorplan3D fp_;
  thermal::GridSolver solver_;
  thermal::PowerBlur blur_;
};

TEST_F(CostFixture, FullEvaluationPopulatesAllTerms) {
  CostEvaluator eval(fp_, blur_, options(tsc_aware_weights()));
  const CostBreakdown c = eval.evaluate_full();
  EXPECT_GT(c.bbox_area_ratio, 0.0);
  EXPECT_GT(c.wirelength_um, 0.0);
  EXPECT_GT(c.delay_ns, 0.0);
  EXPECT_GT(c.peak_k_rise, 0.0);
  EXPECT_GT(c.power_w, 0.0);
  EXPECT_GE(c.num_volumes, 1.0);
  ASSERT_EQ(c.correlation.size(), 2u);
  ASSERT_EQ(c.entropy.size(), 2u);
  EXPECT_GT(c.total, 0.0);
}

TEST_F(CostFixture, NormalizationMakesFirstTotalOrderOfWeightSum) {
  // Every term is normalized to its first-evaluation value, so the first
  // total approximates the sum of active weights.
  CostEvaluator eval(fp_, blur_, options(power_aware_weights()));
  const CostBreakdown c = eval.evaluate_full();
  const CostWeights w = power_aware_weights();
  const double weight_sum = w.area + w.wirelength + w.delay + w.peak_temp +
                            w.power + w.volumes +
                            w.outline * c.outline_penalty;
  EXPECT_NEAR(c.total, weight_sum, 0.6);
}

TEST_F(CostFixture, CheapEvalTracksGeometryChanges) {
  CostEvaluator eval(fp_, blur_, options(power_aware_weights()));
  const CostBreakdown before = eval.evaluate_full();
  // Stretch a module far outside the outline: cheap terms must react.
  // Direct mutations must be announced (see "incremental layout
  // tracking" in core/floorplan.hpp) so the cached cheap terms refresh.
  fp_.modules()[0].shape.x = fp_.tech().die_width_um * 2.0;
  fp_.note_module_moved(0);
  const CostBreakdown after = eval.evaluate_cheap();
  EXPECT_GT(after.outline_penalty, before.outline_penalty);
  EXPECT_GT(after.wirelength_um, before.wirelength_um);
  EXPECT_FALSE(after.fits_outline);
}

TEST_F(CostFixture, CheapEvalCarriesCachedExpensiveTerms) {
  CostEvaluator eval(fp_, blur_, options(power_aware_weights()));
  const CostBreakdown full = eval.evaluate_full();
  const CostBreakdown cheap = eval.evaluate_cheap();
  EXPECT_DOUBLE_EQ(cheap.power_w, full.power_w);
  EXPECT_DOUBLE_EQ(cheap.num_volumes, full.num_volumes);
  EXPECT_DOUBLE_EQ(cheap.peak_k_rise, full.peak_k_rise);
}

TEST_F(CostFixture, EntropyIsLiveInCheapPathForTscWeights) {
  CostEvaluator eval(fp_, blur_, options(tsc_aware_weights()));
  (void)eval.evaluate_full();
  // Move every module of die 0 into one corner: the power map collapses
  // and the (live) entropy term must change in the cheap evaluation.
  const CostBreakdown before = eval.evaluate_cheap();
  for (Module& m : fp_.modules()) {
    if (m.die == 0) {
      m.shape.x = 0.0;
      m.shape.y = 0.0;
    }
  }
  fp_.invalidate_layout_caches();  // bulk move outside apply_to
  const CostBreakdown after = eval.evaluate_cheap();
  EXPECT_NE(before.entropy[0], after.entropy[0]);
}

TEST_F(CostFixture, ThermalEvalRefreshesCorrelation) {
  CostEvaluator eval(fp_, blur_, options(tsc_aware_weights()));
  (void)eval.evaluate_full();
  // Pile all die-0 power into one hotspot: the blur-estimated correlation
  // must move on the next thermal evaluation.
  const CostBreakdown before = eval.evaluate_thermal();
  for (Module& m : fp_.modules()) {
    if (m.die == 0) {
      m.shape.x = 100.0;
      m.shape.y = 100.0;
    }
  }
  fp_.invalidate_layout_caches();  // bulk move outside apply_to
  const CostBreakdown after = eval.evaluate_thermal();
  EXPECT_NE(before.correlation[0], after.correlation[0]);
}

TEST_F(CostFixture, WeightsGateTerms) {
  CostWeights none;
  none.area = none.outline = none.wirelength = none.delay = 0.0;
  none.peak_temp = none.power = none.volumes = 0.0;
  none.correlation = none.entropy = none.power_gradient = 0.0;
  CostEvaluator eval(fp_, blur_, options(none));
  const CostBreakdown c = eval.evaluate_full();
  EXPECT_DOUBLE_EQ(c.total, 0.0);
}

TEST_F(CostFixture, DetailedEngineReplacesBlurEstimate) {
  // With a detailed engine wired up, the in-loop thermal term comes from
  // warm-started grid solves instead of power blurring; the term stays
  // populated and the engine actually gets used.
  thermal::ThermalEngine engine(fp_.tech(), thermal_cfg());
  auto opt = options(tsc_aware_weights());
  opt.detailed_engine = &engine;
  CostEvaluator eval(fp_, blur_, opt);
  const CostBreakdown c = eval.evaluate_full();
  EXPECT_GT(c.peak_k_rise, 0.0);
  ASSERT_EQ(c.correlation.size(), 2u);
  EXPECT_GT(engine.stats().steady_solves, 0u);
  (void)eval.evaluate_thermal();
  EXPECT_GT(engine.stats().warm_starts, 0u);
}

TEST_F(CostFixture, DetailedEngineGridMismatchThrows) {
  ThermalConfig coarse;
  coarse.grid_nx = coarse.grid_ny = 8;  // != leakage_grid (16)
  thermal::ThermalEngine engine(fp_.tech(), coarse);
  auto opt = options(tsc_aware_weights());
  opt.detailed_engine = &engine;
  EXPECT_THROW((CostEvaluator{fp_, blur_, opt}), std::invalid_argument);
}

TEST_F(CostFixture, PresetWeightsMatchPaperSetups) {
  const CostWeights pa = power_aware_weights();
  EXPECT_DOUBLE_EQ(pa.correlation, 0.0);
  EXPECT_DOUBLE_EQ(pa.entropy, 0.0);
  const CostWeights tsc = tsc_aware_weights();
  EXPECT_GT(tsc.correlation, 0.0);
  EXPECT_GT(tsc.entropy, 0.0);
  // Classical criteria stay active in the TSC setup (Sec. 7: "we consider
  // the same criteria as for (i)").
  EXPECT_GT(tsc.area, 0.0);
  EXPECT_GT(tsc.wirelength, 0.0);
  EXPECT_GT(tsc.delay, 0.0);
  EXPECT_GT(tsc.peak_temp, 0.0);
}

}  // namespace
}  // namespace tsc3d::floorplan
