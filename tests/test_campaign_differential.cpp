// Differential layer for the campaign adapters (src/campaign/
// scenario.cpp): every adapter -- floorplan rebuild, DTM / noise-
// injection mitigation, the five attack mappings, and the leakage
// summary -- is pinned BITWISE against a direct call to the standalone
// entry point it wraps, with the same inputs and seeds.  Any drift
// between "what the campaign reports" and "what the tool computes when
// invoked directly" fails here, not in a reviewer's spot check.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <vector>

#include "attack/attacks.hpp"
#include "attack/covert_channel.hpp"
#include "attack/heating_fault.hpp"
#include "campaign/matrix.hpp"
#include "campaign/options.hpp"
#include "campaign/scenario.hpp"
#include "config/config_file.hpp"
#include "core/rng.hpp"
#include "leakage/activity.hpp"
#include "leakage/mutual_information.hpp"
#include "leakage/pearson.hpp"
#include "leakage/spatial_entropy.hpp"
#include "leakage/svf.hpp"
#include "mitigation/dtm.hpp"
#include "mitigation/noise_injection.hpp"
#include "service/result_io.hpp"
#include "service/worker.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::campaign {
namespace {

namespace fs = std::filesystem;

constexpr const char* kConfig =
    "[floorplanning]\n"
    "sa_moves = 1200\n"
    "sa_stages = 8\n"
    "fast_grid = 16\n"
    "verify_grid = 24\n"
    "sampling_grid = 16\n";

/// One real exploration, run once and shared by every test: the
/// adapters are exercised against the floorplan a campaign would
/// actually evaluate, not a synthetic fixture.
struct Exploration {
  service::JobSpec job;
  service::StoredResult stored;
  Floorplan3D floorplan;
};

const Exploration& exploration() {
  static const Exploration exp = [] {
    const fs::path dir =
        fs::path(::testing::TempDir()) / "campaign_diff_exploration";
    fs::remove_all(dir);
    fs::create_directories(dir);

    Exploration e;
    e.job.benchmark = "n100";
    e.job.seed = 1;
    e.job.config_text = kConfig;
    const service::WorkReport report =
        service::run_job(e.job, dir / "job.ckp", dir / "job.res", nullptr, 4);
    if (!report.ok)
      throw std::runtime_error("fixture exploration failed: " + report.error);
    const service::ArtifactContext ctx = service::job_context(e.job);
    const service::ResultLoad load =
        service::load_result_file(dir / "job.res", &ctx);
    if (!load.ok)
      throw std::runtime_error("fixture result unreadable: " + load.reason);
    e.stored = load.result;
    e.floorplan = rebuild_floorplan(
        e.job, config::ConfigFile::parse(kConfig, "fixture"), e.stored);
    return e;
  }();
  return exp;
}

CampaignOptions small_options() {
  CampaignOptions opt;
  opt.attack_grid = 8;
  opt.monitoring_trials = 2;
  opt.covert_bits = 4;
  opt.dtm_duration_s = 0.05;
  opt.dtm_dt_s = 0.005;
  opt.injection_budget = 0.10;
  opt.leakage_phases = 3;
  return opt;
}

ThermalConfig scenario_thermal(const CampaignOptions& opt) {
  ThermalConfig thermal;
  thermal.grid_nx = opt.attack_grid;
  thermal.grid_ny = opt.attack_grid;
  return thermal;
}

/// The adapters' deterministic victim/sender choice, replicated.
std::vector<std::size_t> by_area(const Floorplan3D& fp) {
  std::vector<std::size_t> order(fp.modules().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double aa = fp.modules()[a].area_um2;
    const double ab = fp.modules()[b].area_um2;
    if (aa != ab) return aa > ab;
    return a < b;
  });
  return order;
}

// --- rebuild ------------------------------------------------------------

TEST(CampaignDifferential, RebuildReproducesStoredMetricsBitwise) {
  const Exploration& e = exploration();
  // Same formula the flow used when it stored the result (floorplanner
  // metrics: wirelength_m = hpwl() * 1e-6).  Bitwise, not approximate.
  EXPECT_EQ(e.floorplan.hpwl() * 1e-6, e.stored.wirelength_m);
  EXPECT_EQ(e.floorplan.modules().size(), e.stored.placement.size());
  EXPECT_EQ(e.floorplan.tsvs().size(), e.stored.tsvs.size());
  EXPECT_EQ(e.floorplan.tech().clock_period_ns, e.stored.clock_period_ns);
}

// --- mitigation adapters ------------------------------------------------

TEST(CampaignDifferential, NoneMitigationIsTheIdentity) {
  const Exploration& e = exploration();
  const CampaignOptions opt = small_options();
  const MitigationOutcome out =
      apply_mitigation(e.floorplan, scenario_thermal(opt),
                       MitigationKind::none, opt, 42);
  EXPECT_EQ(out.overhead_w, 0.0);
  EXPECT_EQ(out.performance_loss, 0.0);
  ASSERT_EQ(out.floorplan.modules().size(), e.floorplan.modules().size());
  for (std::size_t i = 0; i < out.floorplan.modules().size(); ++i)
    EXPECT_EQ(out.floorplan.modules()[i].power_w,
              e.floorplan.modules()[i].power_w);
}

TEST(CampaignDifferential, DtmAdapterMatchesDirectRunDtm) {
  const Exploration& e = exploration();
  const CampaignOptions opt = small_options();
  const ThermalConfig thermal = scenario_thermal(opt);
  const std::uint64_t seed = 1234567;

  // Direct call, same inputs and seed the adapter uses.
  const thermal::GridSolver solver(e.floorplan.tech(), thermal);
  Rng rng(seed);
  const mitigation::DtmOptions dtm_opt;
  const mitigation::DtmResult direct = mitigation::run_dtm(
      e.floorplan, solver, opt.dtm_duration_s, opt.dtm_dt_s, rng, dtm_opt);

  const MitigationOutcome out = apply_mitigation(
      e.floorplan, thermal, MitigationKind::dtm, opt, seed);
  EXPECT_EQ(out.performance_loss, direct.performance_loss);
  EXPECT_EQ(out.peak_k, direct.peak_k);
  EXPECT_EQ(out.overhead_w, 0.0);

  // The static throttle applies the controller's exact selection at
  // dtm_opt.throttle_scale -- or leaves every module untouched when the
  // controller never throttled.
  const std::vector<bool> throttled =
      mitigation::throttleable_modules(e.floorplan, dtm_opt);
  ASSERT_EQ(out.floorplan.modules().size(), e.floorplan.modules().size());
  for (std::size_t i = 0; i < throttled.size(); ++i) {
    const double base = e.floorplan.modules()[i].power_w;
    const double expected = (direct.throttled_time_s > 0.0 && throttled[i])
                                ? base * dtm_opt.throttle_scale
                                : base;
    EXPECT_EQ(out.floorplan.modules()[i].power_w, expected) << "module " << i;
  }
}

TEST(CampaignDifferential, InjectionAdapterMatchesDirectRunNoiseInjection) {
  const Exploration& e = exploration();
  const CampaignOptions opt = small_options();
  const ThermalConfig thermal = scenario_thermal(opt);

  const thermal::GridSolver solver(e.floorplan.tech(), thermal);
  mitigation::InjectionOptions inj_opt;
  inj_opt.budget_fraction = opt.injection_budget;
  const mitigation::InjectionResult direct =
      mitigation::run_noise_injection(e.floorplan, solver, inj_opt);

  const MitigationOutcome out = apply_mitigation(
      e.floorplan, thermal, MitigationKind::noise_injection, opt, 9);
  EXPECT_EQ(out.overhead_w, direct.power_overhead_w);
  EXPECT_EQ(out.peak_k, direct.peak_k_after);

  // One injector pseudo-module per nonzero bin, wattage preserved
  // exactly (voltage index 0 <=> power scale 1).
  std::size_t nonzero_bins = 0;
  double injected = 0.0;
  for (const GridD& grid : direct.injected_power_w)
    for (std::size_t iy = 0; iy < grid.ny(); ++iy)
      for (std::size_t ix = 0; ix < grid.nx(); ++ix)
        if (grid.at(ix, iy) > 0.0) {
          ++nonzero_bins;
          injected += grid.at(ix, iy);
        }
  ASSERT_EQ(out.floorplan.modules().size(),
            e.floorplan.modules().size() + nonzero_bins);
  double adapter_injected = 0.0;
  for (std::size_t i = e.floorplan.modules().size();
       i < out.floorplan.modules().size(); ++i) {
    const Module& m = out.floorplan.modules()[i];
    EXPECT_EQ(m.voltage_index, 0u);
    EXPECT_FALSE(m.soft);
    adapter_injected += m.power_w;
  }
  EXPECT_EQ(adapter_injected, injected);  // same order, bitwise-equal sum
}

// --- attack adapters ----------------------------------------------------

TEST(CampaignDifferential, LocalizationMatchesDirectAttack) {
  const Exploration& e = exploration();
  const CampaignOptions opt = small_options();
  const thermal::GridSolver solver(e.floorplan.tech(),
                                   scenario_thermal(opt));
  Rng rng(7);
  const attack::LocalizationResult direct = attack::run_localization_attack(
      e.floorplan, solver, rng, attack::AttackOptions{});
  EXPECT_EQ(run_attack(e.floorplan, solver, AttackKind::localization, opt, 7),
            direct.success_rate());
}

TEST(CampaignDifferential, CharacterizationMatchesDirectAttack) {
  const Exploration& e = exploration();
  const CampaignOptions opt = small_options();
  const thermal::GridSolver solver(e.floorplan.tech(),
                                   scenario_thermal(opt));
  Rng rng(8);
  const attack::CharacterizationResult direct =
      attack::run_characterization_attack(e.floorplan, solver, rng,
                                          attack::AttackOptions{});
  EXPECT_EQ(
      run_attack(e.floorplan, solver, AttackKind::characterization, opt, 8),
      std::clamp(direct.r2, 0.0, 1.0));
}

TEST(CampaignDifferential, MonitoringMatchesDirectAttack) {
  const Exploration& e = exploration();
  const CampaignOptions opt = small_options();
  const thermal::GridSolver solver(e.floorplan.tech(),
                                   scenario_thermal(opt));
  const std::vector<std::size_t> order = by_area(e.floorplan);
  Rng rng(9);
  const attack::MonitoringResult direct = attack::run_monitoring_attack(
      e.floorplan, solver, order[0], order[1], opt.monitoring_trials, rng,
      attack::AttackOptions{});
  EXPECT_EQ(run_attack(e.floorplan, solver, AttackKind::monitoring, opt, 9),
            direct.accuracy());
}

TEST(CampaignDifferential, CovertChannelMatchesDirectAttack) {
  const Exploration& e = exploration();
  const CampaignOptions opt = small_options();
  const thermal::GridSolver solver(e.floorplan.tech(),
                                   scenario_thermal(opt));
  const std::vector<std::size_t> order = by_area(e.floorplan);
  Rng rng(10);
  attack::CovertChannelOptions cc_opt;
  cc_opt.bits = opt.covert_bits;
  const attack::CovertChannelResult direct =
      attack::run_covert_channel(e.floorplan, solver, order[0], rng, cc_opt);
  EXPECT_EQ(
      run_attack(e.floorplan, solver, AttackKind::covert_channel, opt, 10),
      std::clamp(1.0 - 2.0 * direct.bit_error_rate, 0.0, 1.0));
}

TEST(CampaignDifferential, HeatingFaultMatchesDirectAttack) {
  const Exploration& e = exploration();
  const CampaignOptions opt = small_options();
  const thermal::GridSolver solver(e.floorplan.tech(),
                                   scenario_thermal(opt));
  const std::vector<std::size_t> order = by_area(e.floorplan);
  const attack::HeatingFaultOptions hf_opt;
  const attack::HeatingFaultResult direct =
      attack::run_heating_fault_attack(e.floorplan, solver, order[0], hf_opt);
  double expected;
  if (direct.fault_induced) {
    expected = 1.0;
  } else {
    const double span =
        hf_opt.fault_threshold_k - direct.victim_peak_k_nominal;
    expected = span <= 0.0
                   ? 1.0
                   : std::clamp((direct.victim_peak_k_attacked -
                                 direct.victim_peak_k_nominal) /
                                    span,
                                0.0, 1.0);
  }
  EXPECT_EQ(
      run_attack(e.floorplan, solver, AttackKind::heating_fault, opt, 11),
      expected);
}

// --- leakage adapter ----------------------------------------------------

TEST(CampaignDifferential, LeakageSummaryMatchesDirectMetricCalls) {
  const Exploration& e = exploration();
  const CampaignOptions opt = small_options();
  const thermal::GridSolver solver(e.floorplan.tech(),
                                   scenario_thermal(opt));
  const std::uint64_t seed = 77;

  const std::size_t nx = solver.nx(), ny = solver.ny();
  const std::size_t dies = e.floorplan.tech().num_dies;
  const GridD tsv_density = e.floorplan.tsv_density_map(nx, ny);
  std::vector<GridD> power;
  for (std::size_t d = 0; d < dies; ++d)
    power.push_back(e.floorplan.power_map(d, nx, ny));
  const thermal::ThermalResult nominal =
      solver.solve_steady(power, tsv_density);

  LeakageSummary direct;
  for (std::size_t d = 0; d < dies; ++d) {
    direct.pearson_abs_max = std::max(
        direct.pearson_abs_max,
        std::abs(leakage::pearson(power[d], nominal.die_temperature[d])));
    direct.mi_max = std::max(
        direct.mi_max,
        leakage::mutual_information(power[d], nominal.die_temperature[d]));
    direct.spatial_entropy_max = std::max(
        direct.spatial_entropy_max, leakage::spatial_entropy(power[d]));
  }
  leakage::SvfAccumulator svf;
  const leakage::ActivityModel model;
  Rng rng(seed);
  for (std::size_t phase = 0; phase < opt.leakage_phases; ++phase) {
    const std::vector<double> activity = model.sample(e.floorplan, rng);
    std::vector<GridD> phase_power;
    for (std::size_t d = 0; d < dies; ++d)
      phase_power.push_back(e.floorplan.power_map(d, nx, ny, &activity));
    const thermal::ThermalResult observed =
        solver.solve_steady(phase_power, tsv_density);
    std::vector<double> side;
    for (std::size_t d = 0; d < dies; ++d)
      side.insert(side.end(), observed.die_temperature[d].data().begin(),
                  observed.die_temperature[d].data().end());
    svf.add_phase(activity, side);
  }
  direct.svf = svf.svf();

  EXPECT_EQ(measure_leakage(e.floorplan, solver, opt, seed), direct);
}

// --- end-to-end cross-check against the single-slice entry points ------

TEST(CampaignDifferential, EvaluateScenarioComposesTheAdaptersExactly) {
  const Exploration& e = exploration();
  const CampaignOptions opt = small_options();

  service::JobSpec job = e.job;
  job.scenario = "localization";
  job.mitigation = "noise_injection";
  job.flavor = "power_aware";

  const fs::path dir =
      fs::path(::testing::TempDir()) / "campaign_diff_evaluate";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const ScenarioResult res = evaluate_scenario(job, opt, dir / "e.ckp",
                                               dir / "e.res", nullptr, 4);

  // Exploration side: the stored metrics verbatim.
  EXPECT_EQ(res.legal, e.stored.legal);
  EXPECT_EQ(res.wirelength_m, e.stored.wirelength_m);
  EXPECT_EQ(res.power_w, e.stored.power_w);
  EXPECT_EQ(res.peak_k, e.stored.peak_k);

  // Scenario side: the adapter composition with the scenario's own
  // per-stage seeds, reproduced step by step.
  const ScenarioContext ctx = scenario_context(job, opt);
  const ThermalConfig thermal = scenario_thermal(opt);
  const MitigationOutcome mitigated =
      apply_mitigation(e.floorplan, thermal, MitigationKind::noise_injection,
                       opt, scenario_seed(ctx, "mitigation"));
  const thermal::GridSolver solver(mitigated.floorplan.tech(), thermal);
  EXPECT_EQ(res.mitigation_overhead_w, mitigated.overhead_w);
  EXPECT_EQ(res.attack_success,
            run_attack(mitigated.floorplan, solver, AttackKind::localization,
                       opt, scenario_seed(ctx, "attack")));
  EXPECT_EQ(measure_leakage(mitigated.floorplan, solver, opt,
                            scenario_seed(ctx, "leakage")),
            (LeakageSummary{res.pearson_abs_max, res.mi_max, res.svf,
                            res.spatial_entropy_max}));
  EXPECT_EQ(res.leakage, res.attack_success);
  EXPECT_EQ(res.overhead,
            res.power_w * (1.0 + res.mitigation_performance_loss) +
                res.mitigation_overhead_w);
}

}  // namespace
}  // namespace tsc3d::campaign
