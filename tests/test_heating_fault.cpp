// Tests for the heating fault attack (attack/heating_fault.hpp).
#include "attack/heating_fault.hpp"

#include <gtest/gtest.h>

namespace tsc3d::attack {
namespace {

/// Victim in the center of die 0, accomplices of varying distance and
/// power around it, one on die 1 directly above the victim.
Floorplan3D fault_design() {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 2000.0;
  Floorplan3D fp(tech);
  const struct {
    double x, y, w, h, power;
    std::size_t die;
  } specs[] = {
      {800, 800, 400, 400, 0.3, 0},    // 0: victim (center, die 0)
      {750, 750, 500, 500, 1.5, 1},    // 1: stacked right above
      {100, 100, 300, 300, 1.5, 0},    // 2: far corner, same die
      {1250, 800, 300, 400, 1.0, 0},   // 3: adjacent, same die
      {1600, 1600, 300, 300, 0.1, 0},  // 4: far and weak
  };
  for (const auto& s : specs) {
    Module m;
    m.name = "m" + std::to_string(fp.modules().size());
    m.shape = {s.x, s.y, s.w, s.h};
    m.area_um2 = m.shape.area();
    m.power_w = s.power;
    m.die = s.die;
    fp.modules().push_back(m);
  }
  return fp;
}

thermal::GridSolver small_solver(const Floorplan3D& fp) {
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  return {fp.tech(), cfg};
}

TEST(VictimPeak, ReadsTheFootprintBins) {
  const auto fp = fault_design();
  GridD thermal(16, 16, 300.0);
  // Victim occupies x,y in [800, 1200): bins 7..9 at 2000/16=125 um.
  thermal.at(7, 7) = 330.0;
  EXPECT_DOUBLE_EQ(victim_peak_k(fp, thermal, 0), 330.0);
  // A hotspot outside the footprint is invisible to the victim.
  thermal.at(7, 7) = 300.0;
  thermal.at(0, 0) = 340.0;
  EXPECT_DOUBLE_EQ(victim_peak_k(fp, thermal, 0), 300.0);
}

TEST(HeatingFault, AttackRaisesVictimTemperature) {
  const auto fp = fault_design();
  const auto solver = small_solver(fp);
  HeatingFaultOptions opt;
  opt.boost = 3.0;
  opt.fault_threshold_k = 1e6;  // measure the rise, not the verdict
  const auto result = run_heating_fault_attack(fp, solver, 0, opt);
  EXPECT_GT(result.victim_peak_k_attacked, result.victim_peak_k_nominal);
  EXPECT_GT(result.accomplices_used, 0u);
  EXPECT_GT(result.attack_power_w, 0.0);
  EXPECT_FALSE(result.fault_induced);
}

TEST(HeatingFault, RepeatRunsAreBitwiseIdentical) {
  // The campaign runner caches heating-fault outcomes, so a repeat with
  // identical inputs must reproduce every field bitwise -- the greedy
  // accomplice search may not depend on anything but its arguments.
  const auto fp = fault_design();
  const auto solver = small_solver(fp);
  HeatingFaultOptions opt;
  opt.boost = 2.5;
  const auto a = run_heating_fault_attack(fp, solver, 0, opt);
  const auto b = run_heating_fault_attack(fp, solver, 0, opt);
  EXPECT_EQ(a.accomplices_used, b.accomplices_used);
  EXPECT_EQ(a.accomplices, b.accomplices);
  EXPECT_EQ(a.victim_peak_k_nominal, b.victim_peak_k_nominal);
  EXPECT_EQ(a.victim_peak_k_attacked, b.victim_peak_k_attacked);
  EXPECT_EQ(a.attack_power_w, b.attack_power_w);
  EXPECT_EQ(a.fault_induced, b.fault_induced);
}

TEST(HeatingFault, VictimIsNeverItsOwnAccomplice) {
  const auto fp = fault_design();
  const auto solver = small_solver(fp);
  const auto result = run_heating_fault_attack(fp, solver, 0);
  for (const auto accomplice : result.accomplices)
    EXPECT_NE(accomplice, 0u);
}

TEST(HeatingFault, PrefersThermallyCloseAccomplices) {
  // The stacked module (1) and the adjacent module (3) influence the
  // victim more than the far, weak module (4); with two accomplice
  // slots the attack must pick from the close ones.
  const auto fp = fault_design();
  const auto solver = small_solver(fp);
  HeatingFaultOptions opt;
  opt.max_accomplices = 2;
  // A loose stealth budget isolates the influence ranking (a tight one
  // makes the greedy skip expensive strong accomplices for cheap weak
  // ones -- covered by StealthBudgetLimitsTheAttack).
  opt.power_budget_fraction = 10.0;
  const auto result = run_heating_fault_attack(fp, solver, 0, opt);
  ASSERT_EQ(result.accomplices.size(), 2u);
  for (const auto accomplice : result.accomplices)
    EXPECT_NE(accomplice, 4u);
}

TEST(HeatingFault, StealthBudgetLimitsTheAttack) {
  const auto fp = fault_design();
  const auto solver = small_solver(fp);
  HeatingFaultOptions tight;
  tight.power_budget_fraction = 0.2;
  HeatingFaultOptions loose;
  loose.power_budget_fraction = 10.0;
  const auto r_tight = run_heating_fault_attack(fp, solver, 0, tight);
  const auto r_loose = run_heating_fault_attack(fp, solver, 0, loose);
  EXPECT_LE(r_tight.attack_power_w, r_loose.attack_power_w);
  EXPECT_LE(r_tight.victim_peak_k_attacked,
            r_loose.victim_peak_k_attacked + 1e-9);
  // The budget bound itself holds.
  double nominal_total = 0.0;
  for (std::size_t i = 0; i < fp.modules().size(); ++i)
    nominal_total += fp.effective_power(i);
  EXPECT_LE(r_tight.attack_power_w, 0.2 * nominal_total + 1e-9);
}

TEST(HeatingFault, FaultVerdictFollowsThreshold) {
  const auto fp = fault_design();
  const auto solver = small_solver(fp);
  HeatingFaultOptions opt;
  const auto probe = run_heating_fault_attack(fp, solver, 0, opt);
  HeatingFaultOptions low = opt, high = opt;
  low.fault_threshold_k = probe.victim_peak_k_attacked - 1.0;
  high.fault_threshold_k = probe.victim_peak_k_attacked + 1.0;
  EXPECT_TRUE(run_heating_fault_attack(fp, solver, 0, low).fault_induced);
  EXPECT_FALSE(run_heating_fault_attack(fp, solver, 0, high).fault_induced);
}

TEST(HeatingFault, MoreBoostHeatsMore) {
  const auto fp = fault_design();
  const auto solver = small_solver(fp);
  HeatingFaultOptions mild, strong;
  mild.boost = 1.5;
  strong.boost = 4.0;
  const auto r_mild = run_heating_fault_attack(fp, solver, 0, mild);
  const auto r_strong = run_heating_fault_attack(fp, solver, 0, strong);
  EXPECT_GT(r_strong.victim_peak_k_attacked, r_mild.victim_peak_k_attacked);
}

TEST(HeatingFault, InvalidArgumentsThrow) {
  const auto fp = fault_design();
  const auto solver = small_solver(fp);
  EXPECT_THROW((void)run_heating_fault_attack(fp, solver, 99),
               std::invalid_argument);
  HeatingFaultOptions bad;
  bad.boost = 1.0;
  EXPECT_THROW((void)run_heating_fault_attack(fp, solver, 0, bad),
               std::invalid_argument);
  bad = {};
  bad.max_accomplices = 0;
  EXPECT_THROW((void)run_heating_fault_attack(fp, solver, 0, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsc3d::attack
