// Tests of the ThermalEngine's reuse machinery: warm-started solves must
// agree with cold solves within the solver tolerance, the assembly cache
// must key on the TSV-density map, and convergence diagnostics (steady
// and per-transient-step) must be reported truthfully.
#include <gtest/gtest.h>

#include "thermal/grid_solver.hpp"
#include "thermal/thermal_engine.hpp"

namespace tsc3d::thermal {
namespace {

TechnologyConfig test_tech() {
  TechnologyConfig t;
  t.die_width_um = 2000.0;
  t.die_height_um = 2000.0;
  return t;
}

ThermalConfig test_thermal(std::size_t grid = 16) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = grid;
  return c;
}

std::vector<GridD> hotspot_power(std::size_t grid, double watts,
                                 std::size_t ix, std::size_t iy) {
  std::vector<GridD> power(2, GridD(grid, grid, 0.0));
  power[0].at(ix, iy) = watts;
  return power;
}

TEST(ThermalEngine, WarmStartMatchesColdSolveOnRepeatedInput) {
  ThermalConfig cfg = test_thermal();
  cfg.tolerance_k = 1e-6;
  ThermalEngine engine(test_tech(), cfg);
  const GridD tsv(16, 16, 0.1);
  const auto power = hotspot_power(16, 2.0, 8, 8);

  const ThermalResult cold = engine.solve_steady(power, tsv);
  EXPECT_FALSE(cold.warm_started);
  ASSERT_TRUE(cold.converged);

  const ThermalResult warm = engine.solve_steady(power, tsv);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_TRUE(warm.assembly_reused);
  ASSERT_TRUE(warm.converged);
  // Restarting from the converged field must terminate almost instantly.
  EXPECT_LT(warm.iterations, cold.iterations / 4);

  for (std::size_t l = 0; l < cold.layer_temperature.size(); ++l)
    for (std::size_t c = 0; c < cold.layer_temperature[l].size(); ++c)
      EXPECT_NEAR(warm.layer_temperature[l][c], cold.layer_temperature[l][c],
                  1e-3);
}

TEST(ThermalEngine, WarmStartMatchesColdSolveOnPerturbedInput) {
  ThermalConfig cfg = test_thermal();
  cfg.tolerance_k = 1e-6;
  ThermalEngine warm_engine(test_tech(), cfg);
  ThermalEngine cold_engine(test_tech(), cfg);
  const GridD tsv(16, 16, 0.2);

  // Walk a sequence of perturbed power maps, as annealing/sampling loops
  // do, warm-starting each solve from the previous field; a fresh cold
  // solve of the same input must agree within solver tolerance.
  auto power = hotspot_power(16, 2.0, 5, 5);
  for (int step = 0; step < 4; ++step) {
    power[0].at(5 + static_cast<std::size_t>(step), 5) = 1.5;
    power[1].at(10, 10) = 0.5 + 0.2 * step;
    const ThermalResult warm = warm_engine.solve_steady(power, tsv);
    const ThermalResult cold =
        cold_engine.solve_steady(power, tsv, ThermalEngine::Start::cold);
    ASSERT_TRUE(warm.converged);
    ASSERT_TRUE(cold.converged);
    if (step > 0) {
      EXPECT_TRUE(warm.warm_started);
    }
    ASSERT_EQ(warm.die_temperature.size(), cold.die_temperature.size());
    for (std::size_t d = 0; d < cold.die_temperature.size(); ++d)
      for (std::size_t c = 0; c < cold.die_temperature[d].size(); ++c)
        EXPECT_NEAR(warm.die_temperature[d][c], cold.die_temperature[d][c],
                    1e-3);
  }
}

TEST(ThermalEngine, AssemblyCacheKeysOnTsvDensity) {
  ThermalEngine engine(test_tech(), test_thermal());
  const auto power = hotspot_power(16, 1.0, 8, 8);
  const GridD tsv_a(16, 16, 0.0);
  GridD tsv_b(16, 16, 0.0);
  tsv_b.at(3, 3) = 0.5;

  EXPECT_FALSE(engine.solve_steady(power, tsv_a).assembly_reused);
  EXPECT_TRUE(engine.solve_steady(power, tsv_a).assembly_reused);
  // A single changed bin must invalidate the cached network...
  EXPECT_FALSE(engine.solve_steady(power, tsv_b).assembly_reused);
  // ...and the new one is cached in turn.
  EXPECT_TRUE(engine.solve_steady(power, tsv_b).assembly_reused);
  EXPECT_EQ(engine.stats().assembly_builds, 2u);
  EXPECT_EQ(engine.stats().assembly_reuses, 2u);
}

TEST(ThermalEngine, ResetDropsCacheAndWarmState) {
  ThermalEngine engine(test_tech(), test_thermal());
  const auto power = hotspot_power(16, 1.0, 8, 8);
  const GridD tsv(16, 16, 0.0);
  (void)engine.solve_steady(power, tsv);
  engine.reset();
  const ThermalResult res = engine.solve_steady(power, tsv);
  EXPECT_FALSE(res.warm_started);
  EXPECT_FALSE(res.assembly_reused);
}

TEST(ThermalEngine, ExhaustedSteadySolveReportsNotConverged) {
  ThermalConfig cfg = test_thermal();
  // Pin the SOR backend: this asserts the exact sweep-budget accounting
  // of the SOR loop (multigrid spends its budget in V-cycle granules;
  // its exhaustion reporting is covered in test_solver_policy.cpp).
  cfg.solver = SolverBackend::sor;
  cfg.max_iterations = 3;
  cfg.tolerance_k = 1e-12;
  ThermalEngine engine(test_tech(), cfg);
  const ThermalResult res =
      engine.solve_steady(hotspot_power(16, 2.0, 8, 8), GridD(16, 16, 0.0));
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3u);
  EXPECT_GT(res.residual_k, 0.0);
}

TEST(ThermalEngine, NonConvergingTransientReportsNotConverged) {
  // Starve the per-step SOR loop: with a tiny iteration budget and an
  // unreachable tolerance, every implicit-Euler step exhausts its budget.
  // The legacy solver reported converged == true regardless.
  ThermalConfig cfg = test_thermal(8);
  cfg.solver = SolverBackend::sor;  // exact per-step SOR accounting
  cfg.max_iterations = 2;
  cfg.tolerance_k = 1e-13;
  ThermalEngine engine(test_tech(), cfg);
  const auto power = hotspot_power(8, 2.0, 4, 4);
  const TransientResult res = engine.solve_transient(
      [&](double) { return power; }, GridD(8, 8, 0.0), 0.05, 0.01);
  EXPECT_EQ(res.steps, 5u);
  EXPECT_EQ(res.unconverged_steps, 5u);
  EXPECT_EQ(res.total_iterations, 10u);
  EXPECT_FALSE(res.final_state.converged);
  EXPECT_EQ(res.final_state.iterations, res.total_iterations);
}

TEST(ThermalEngine, ConvergingTransientReportsPerStepConvergence) {
  ThermalEngine engine(test_tech(), test_thermal(8));
  const auto power = hotspot_power(8, 2.0, 4, 4);
  const TransientResult res = engine.solve_transient(
      [&](double) { return power; }, GridD(8, 8, 0.0), 0.05, 0.01);
  EXPECT_EQ(res.steps, 5u);
  EXPECT_EQ(res.unconverged_steps, 0u);
  EXPECT_TRUE(res.final_state.converged);
  EXPECT_GE(res.total_iterations, res.steps);
}

TEST(ThermalEngine, FacadeColdSolveIsHistoryIndependent) {
  // GridSolver keeps the legacy contract: results are a pure function of
  // the inputs, no matter what was solved before.
  const GridSolver solver(test_tech(), test_thermal());
  const GridD tsv(16, 16, 0.0);
  const auto p1 = hotspot_power(16, 2.0, 8, 8);
  const auto p2 = hotspot_power(16, 0.5, 2, 13);

  const ThermalResult first = solver.solve_steady(p1, tsv);
  (void)solver.solve_steady(p2, tsv);  // pollute the engine state
  const ThermalResult again = solver.solve_steady(p1, tsv);
  EXPECT_FALSE(again.warm_started);
  EXPECT_EQ(first.iterations, again.iterations);
  for (std::size_t l = 0; l < first.layer_temperature.size(); ++l)
    for (std::size_t c = 0; c < first.layer_temperature[l].size(); ++c)
      EXPECT_DOUBLE_EQ(again.layer_temperature[l][c],
                       first.layer_temperature[l][c]);
}

TEST(ThermalEngine, StatsAccumulateAcrossSolves) {
  ThermalEngine engine(test_tech(), test_thermal());
  const auto power = hotspot_power(16, 1.0, 8, 8);
  const GridD tsv(16, 16, 0.0);
  (void)engine.solve_steady(power, tsv);
  (void)engine.solve_steady(power, tsv);
  const ThermalEngine::Stats& s = engine.stats();
  EXPECT_EQ(s.steady_solves, 2u);
  EXPECT_EQ(s.warm_starts, 1u);
  EXPECT_GT(s.total_sweeps, 0u);
}

}  // namespace
}  // namespace tsc3d::thermal
