// Tests for the thermal covert channel (attack/covert_channel.hpp).
#include "attack/covert_channel.hpp"

#include <gtest/gtest.h>

namespace tsc3d::attack {
namespace {

/// One strong sender module plus a quiet background module per die.
Floorplan3D channel_design() {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 2000.0;
  Floorplan3D fp(tech);
  Module sender;
  sender.name = "sender";
  sender.shape = {400.0, 400.0, 800.0, 800.0};
  sender.area_um2 = sender.shape.area();
  sender.power_w = 2.0;
  sender.die = 0;
  fp.modules().push_back(sender);
  Module quiet;
  quiet.name = "quiet";
  quiet.shape = {1400.0, 1400.0, 400.0, 400.0};
  quiet.area_um2 = quiet.shape.area();
  quiet.power_w = 0.2;
  quiet.die = 1;
  fp.modules().push_back(quiet);
  return fp;
}

thermal::GridSolver small_solver(const Floorplan3D& fp) {
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 12;
  return {fp.tech(), cfg};
}

TEST(BinaryEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_NEAR(binary_entropy(0.11), 0.4999, 5e-4);  // H2(0.11) ~ 0.5
}

TEST(BinaryEntropy, ClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(binary_entropy(-0.3), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.7), 0.0);
}

TEST(CovertChannel, SlowChannelDecodesReliably) {
  // At a generous bit period the thermal response settles per symbol and
  // the receiver must decode essentially error-free.
  const auto fp = channel_design();
  const auto solver = small_solver(fp);
  Rng rng(42);
  CovertChannelOptions opt;
  opt.bits = 24;
  opt.bit_period_s = 0.5;
  opt.dt_s = 0.025;
  opt.power_boost = 3.0;
  const auto result = run_covert_channel(fp, solver, 0, rng, opt);
  EXPECT_GT(result.bits_sent, 5u);
  EXPECT_LT(result.bit_error_rate, 0.15);
  EXPECT_GT(result.signal_swing_k, 0.0);
}

TEST(CovertChannel, CapacityReflectsBitPeriod) {
  // An error-free slow channel still has low capacity: rate is bounded
  // by 1/(2*T_bit).
  const auto fp = channel_design();
  const auto solver = small_solver(fp);
  Rng rng(43);
  CovertChannelOptions opt;
  opt.bits = 16;
  opt.bit_period_s = 0.5;
  opt.dt_s = 0.025;
  opt.power_boost = 3.0;
  const auto result = run_covert_channel(fp, solver, 0, rng, opt);
  EXPECT_LE(result.capacity_bps, 1.0 / (2.0 * opt.bit_period_s) + 1e-9);
}

TEST(CovertChannel, TooFastChannelDegrades) {
  // Pushing the symbol rate far above the thermal bandwidth must cost
  // accuracy or swing: the low-pass behaviour of Fig. 1.
  const auto fp = channel_design();
  const auto solver = small_solver(fp);
  Rng rng(44);
  CovertChannelOptions slow, fast;
  slow.bits = fast.bits = 24;
  slow.power_boost = fast.power_boost = 3.0;
  slow.bit_period_s = 0.5;
  slow.dt_s = 0.025;
  fast.bit_period_s = 0.004;
  fast.dt_s = 0.001;
  const auto r_slow = run_covert_channel(fp, solver, 0, rng, slow);
  const auto r_fast = run_covert_channel(fp, solver, 0, rng, fast);
  EXPECT_LT(r_fast.signal_swing_k, r_slow.signal_swing_k);
}

TEST(CovertChannel, InvalidArgumentsThrow) {
  const auto fp = channel_design();
  const auto solver = small_solver(fp);
  Rng rng(45);
  EXPECT_THROW((void)run_covert_channel(fp, solver, 99, rng),
               std::invalid_argument);
  CovertChannelOptions bad;
  bad.bits = 0;
  EXPECT_THROW((void)run_covert_channel(fp, solver, 0, rng, bad),
               std::invalid_argument);
  bad = {};
  bad.dt_s = 1.0;
  bad.bit_period_s = 0.1;
  EXPECT_THROW((void)run_covert_channel(fp, solver, 0, rng, bad),
               std::invalid_argument);
}

TEST(CovertChannel, SweepReturnsOneResultPerPeriod) {
  const auto fp = channel_design();
  const auto solver = small_solver(fp);
  Rng rng(46);
  CovertChannelOptions opt;
  opt.bits = 8;
  opt.dt_s = 0.02;
  const std::vector<double> periods{0.2, 0.4};
  const auto results =
      sweep_covert_channel(fp, solver, 0, periods, rng, opt);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_GE(r.bits_sent, 1u);
}

TEST(CovertChannel, SweepRejectsEmptyPeriods) {
  const auto fp = channel_design();
  const auto solver = small_solver(fp);
  Rng rng(47);
  EXPECT_THROW((void)sweep_covert_channel(fp, solver, 0, {}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsc3d::attack
