// Tests of the Elmore timing model (Sec. 6.1).
#include <gtest/gtest.h>

#include "power/timing.hpp"

namespace tsc3d::power {
namespace {

/// A tiny two-module design on one or two dies.
Floorplan3D two_module_design(bool cross_die, double distance_um = 1000.0) {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  Floorplan3D fp(tech);
  for (int i = 0; i < 2; ++i) {
    Module m;
    m.name = i == 0 ? "drv" : "snk";
    m.shape = {i == 0 ? 0.0 : distance_um, 0.0, 100.0, 100.0};
    m.area_um2 = 1e4;
    m.intrinsic_delay_ns = 0.2;
    m.die = (cross_die && i == 1) ? 1 : 0;
    m.voltage_index = 1;
    fp.modules().push_back(m);
  }
  Net n;
  n.pins.push_back({0, kInvalidIndex});
  n.pins.push_back({1, kInvalidIndex});
  fp.nets().push_back(n);
  return fp;
}

TEST(ElmoreTiming, DelayGrowsWithWireLength) {
  const Floorplan3D near = two_module_design(false, 500.0);
  const Floorplan3D far = two_module_design(false, 3000.0);
  const ElmoreTiming t_near(near);
  const ElmoreTiming t_far(far);
  EXPECT_LT(t_near.net_delay_ns(near.nets()[0]),
            t_far.net_delay_ns(far.nets()[0]));
}

TEST(ElmoreTiming, CrossDieNetPaysTsvDelay)  {
  // Same planar distance; the 3D net carries one TSV hop worth of RC.
  const Floorplan3D planar = two_module_design(false);
  const Floorplan3D stacked = two_module_design(true);
  const ElmoreTiming t2d(planar);
  const ElmoreTiming t3d(stacked);
  EXPECT_GT(t3d.net_delay_ns(stacked.nets()[0]),
            t2d.net_delay_ns(planar.nets()[0]));
}

TEST(ElmoreTiming, StageDelayIncludesModules) {
  const Floorplan3D fp = two_module_design(false);
  const ElmoreTiming t(fp);
  const double net = t.net_delay_ns(fp.nets()[0]);
  const double stage = t.stage_delay_ns(fp.nets()[0]);
  // driver 0.2 ns + sink 0.2 ns at 1.0 V.
  EXPECT_NEAR(stage, net + 0.4, 1e-9);
}

TEST(ElmoreTiming, VoltageScalesModuleDelay) {
  Floorplan3D fp = two_module_design(false);
  const ElmoreTiming t(fp);
  const double nominal = t.stage_delay_ns(fp.nets()[0]);
  // Hypothetical: driver at 0.8 V -> its 0.2 ns scales by 1.56.
  const double slow = t.stage_delay_ns(fp.nets()[0], 0, 0);
  EXPECT_NEAR(slow - nominal, 0.2 * 0.56, 1e-9);
  // At 1.2 V the module speeds up.
  const double fast = t.stage_delay_ns(fp.nets()[0], 0, 2);
  EXPECT_NEAR(nominal - fast, 0.2 * 0.17, 1e-9);
}

TEST(ElmoreTiming, AnalyzeFindsCriticalNet) {
  Floorplan3D fp = two_module_design(false, 3500.0);
  // Add a short second net; the long one must be critical.
  Module m;
  m.name = "c";
  m.shape = {0.0, 200.0, 100.0, 100.0};
  m.area_um2 = 1e4;
  m.intrinsic_delay_ns = 0.01;
  fp.modules().push_back(m);
  Net n2;
  n2.pins.push_back({0, kInvalidIndex});
  n2.pins.push_back({2, kInvalidIndex});
  n2.id = 1;
  fp.nets().push_back(n2);
  const ElmoreTiming t(fp);
  const TimingReport rep = t.analyze();
  EXPECT_EQ(rep.critical_net, 0u);
  EXPECT_EQ(rep.stage_delay_ns.size(), 2u);
  EXPECT_GT(rep.critical_delay_ns, rep.stage_delay_ns[1]);
}

TEST(ElmoreTiming, FeasibleVoltagesShrinkWithTightClock) {
  Floorplan3D fp = two_module_design(false);
  const ElmoreTiming t(fp);
  const double stage = t.stage_delay_ns(fp.nets()[0]);
  // Generous clock: every level feasible.
  EXPECT_EQ(t.feasible_voltages(0, stage * 2.0), 0b111u);
  // Clock exactly at nominal: 0.8 V (slower) must be infeasible.
  const unsigned tight = t.feasible_voltages(0, stage * 1.001);
  EXPECT_FALSE(tight & 0b001);
  EXPECT_TRUE(tight & 0b010);
  // Clock below even the 1.2 V stage delay: nothing fits.
  EXPECT_EQ(t.feasible_voltages(0, 0.0), 0u);
}

TEST(ElmoreTiming, NetsOfModuleIndex) {
  Floorplan3D fp = two_module_design(false);
  const ElmoreTiming t(fp);
  ASSERT_EQ(t.nets_of_module(0).size(), 1u);
  EXPECT_EQ(t.nets_of_module(0)[0], 0u);
}

TEST(ElmoreTiming, TerminalOnlyPinsDontCrash) {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 1000.0;
  Floorplan3D fp(tech);
  Terminal a, b;
  a.position = {0, 0};
  b.position = {500, 0};
  fp.terminals().push_back(a);
  fp.terminals().push_back(b);
  Net n;
  NetPin p1, p2;
  p1.terminal = 0;
  p2.terminal = 1;
  n.pins = {p1, p2};
  fp.nets().push_back(n);
  const ElmoreTiming t(fp);
  EXPECT_GE(t.stage_delay_ns(fp.nets()[0]), 0.0);
}

}  // namespace
}  // namespace tsc3d::power
