// Tests of the >2-die generality (the paper's Sec. 8 future-work
// direction): stack construction, thermal solve, fast estimation, and
// layout state across taller stacks.
#include <gtest/gtest.h>

#include "floorplan/annealer.hpp"
#include "benchgen/generator.hpp"
#include "thermal/power_blur.hpp"

namespace tsc3d {
namespace {

TechnologyConfig tech_with_dies(std::size_t dies) {
  TechnologyConfig t;
  t.num_dies = dies;
  t.die_width_um = t.die_height_um = 2000.0;
  return t;
}

ThermalConfig small_cfg() {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = 12;
  return c;
}

TEST(MultiDie, ThreeDieSolveConservesEnergy) {
  const thermal::GridSolver solver(tech_with_dies(3), small_cfg());
  std::vector<GridD> power(3, GridD(12, 12, 0.0));
  power[0].at(6, 6) = 1.0;
  power[1].at(3, 3) = 1.0;
  power[2].at(9, 9) = 1.0;
  const thermal::ThermalResult res =
      solver.solve_steady(power, GridD(12, 12, 0.0));
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.die_temperature.size(), 3u);
  EXPECT_NEAR(res.heat_to_sink_w + res.heat_to_package_w, 3.0, 0.05);
}

TEST(MultiDie, MiddleDieHotterThanTopForSamePower) {
  // Heat injected mid-stack has a longer path to the sink than heat
  // injected in the top die.
  const thermal::GridSolver solver(tech_with_dies(3), small_cfg());
  const GridD tsv(12, 12, 0.0);
  std::vector<GridD> mid(3, GridD(12, 12, 0.0));
  mid[1].at(6, 6) = 2.0;
  std::vector<GridD> top(3, GridD(12, 12, 0.0));
  top[2].at(6, 6) = 2.0;
  EXPECT_GT(solver.solve_steady(mid, tsv).peak_k,
            solver.solve_steady(top, tsv).peak_k);
}

TEST(MultiDie, PowerBlurHandlesThreeDies) {
  const thermal::GridSolver solver(tech_with_dies(3), small_cfg());
  const thermal::PowerBlur blur(solver, 4);
  std::vector<GridD> power(3, GridD(12, 12, 0.0));
  power[1].at(6, 6) = 1.5;
  const std::vector<GridD> est = blur.estimate(power, GridD(12, 12, 0.0));
  ASSERT_EQ(est.size(), 3u);
  // The heated die is the hottest in the estimate too.
  EXPECT_GE(est[1].max(), est[0].max() - 1e-9);
  EXPECT_GT(est[1].max(), 293.15);
}

TEST(MultiDie, LayoutStateSpreadsModulesOverFourDies) {
  benchgen::BenchmarkSpec spec;
  spec.name = "quad";
  spec.soft_modules = 40;
  spec.num_nets = 60;
  spec.num_terminals = 4;
  spec.outline_mm2 = 4.0;
  spec.power_w = 4.0;
  Floorplan3D fp = benchgen::generate(spec, 11);
  fp.tech().num_dies = 4;
  Rng rng(2);
  const floorplan::LayoutState s = floorplan::LayoutState::initial(fp, rng);
  ASSERT_EQ(s.die_sp.size(), 4u);
  for (const auto& sp : s.die_sp) EXPECT_GT(sp.size(), 0u);
  s.apply_to(fp);
  // Area roughly balanced: no die holds more than half the total.
  double total = 0.0;
  std::vector<double> per_die(4, 0.0);
  for (const Module& m : fp.modules()) {
    per_die[m.die] += m.area_um2;
    total += m.area_um2;
  }
  for (const double a : per_die) EXPECT_LT(a, 0.5 * total);
}

TEST(MultiDie, StackLayerOrderingForFourDies) {
  const thermal::LayerStack s =
      thermal::build_stack(tech_with_dies(4), small_cfg());
  // Die layer indices strictly increase bottom to top.
  for (std::size_t d = 1; d < 4; ++d)
    EXPECT_GT(s.layer_of_die[d], s.layer_of_die[d - 1]);
  // Every inter-die bond layer is a TSV layer.
  std::size_t tsv_layers = 0;
  for (const auto& l : s.layers) tsv_layers += l.tsv_layer ? 1 : 0;
  // 3 bonds + 3 traversed upper bulks.
  EXPECT_EQ(tsv_layers, 6u);
}

}  // namespace
}  // namespace tsc3d
