// Tests of the spatial entropy of power maps (Eq. 3) and its
// nested-means classification.
#include <gtest/gtest.h>

#include "leakage/spatial_entropy.hpp"

namespace tsc3d::leakage {
namespace {

TEST(NestedMeans, UniformValuesProduceNoCuts) {
  const std::vector<double> v(64, 2.5);
  EXPECT_TRUE(nested_means_cuts(v, 0.05, 8).empty());
}

TEST(NestedMeans, TwoClustersProduceOneSeparatingCut) {
  std::vector<double> v;
  for (int i = 0; i < 10; ++i) v.push_back(1.0);
  for (int i = 0; i < 10; ++i) v.push_back(9.0);
  const auto cuts = nested_means_cuts(v, 0.05, 8);
  ASSERT_FALSE(cuts.empty());
  // Some cut must separate the clusters.
  bool separates = false;
  for (const double c : cuts) separates |= (c > 1.0 && c <= 9.0);
  EXPECT_TRUE(separates);
}

TEST(NestedMeans, DepthCapBoundsClassCount) {
  std::vector<double> v;
  for (int i = 0; i < 256; ++i) v.push_back(static_cast<double>(i));
  const auto cuts = nested_means_cuts(v, 0.0, 3);
  EXPECT_LE(cuts.size() + 1, 8u);  // 2^3 classes max
}

TEST(NestedMeans, CutsAreSortedAscending) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i % 17));
  const auto cuts = nested_means_cuts(v, 0.01, 6);
  for (std::size_t i = 1; i < cuts.size(); ++i)
    EXPECT_LE(cuts[i - 1], cuts[i]);
}

TEST(SpatialEntropy, UniformMapHasZeroEntropy) {
  const GridD p(16, 16, 1.0);
  EXPECT_DOUBLE_EQ(spatial_entropy(p), 0.0);
}

TEST(SpatialEntropy, SingleClassReported) {
  const GridD p(8, 8, 3.0);
  const SpatialEntropyResult res = spatial_entropy_detailed(p);
  EXPECT_EQ(res.classes.size(), 1u);
  EXPECT_EQ(res.classes[0].members, 64u);
}

TEST(SpatialEntropy, RatioOrientationsMeasureOppositeThings) {
  // The default (literal Eq. 3) ratio rewards compact, segregated classes
  // -- the configurations with large coherent thermal gradients (high
  // leakage).  Claramunt's orientation rewards mixing.  A checkerboard
  // mixes the two power classes maximally; two separated halves keep
  // them apart.
  GridD checker(16, 16, 0.0);
  GridD halves(16, 16, 0.0);
  for (std::size_t iy = 0; iy < 16; ++iy) {
    for (std::size_t ix = 0; ix < 16; ++ix) {
      checker.at(ix, iy) = ((ix + iy) % 2 == 0) ? 1.0 : 9.0;
      halves.at(ix, iy) = (ix < 8) ? 1.0 : 9.0;
    }
  }
  // Literal Eq. 3 (default): segregated halves score higher.
  EXPECT_GT(spatial_entropy(halves), spatial_entropy(checker));
  // Claramunt orientation: the mixed checkerboard scores higher.
  SpatialEntropyOptions claramunt;
  claramunt.ratio = EntropyRatio::claramunt;
  EXPECT_GT(spatial_entropy(checker, claramunt),
            spatial_entropy(halves, claramunt));
}

TEST(SpatialEntropy, ShannonTermMatchesTwoBalancedClasses) {
  GridD halves(8, 8, 0.0);
  for (std::size_t iy = 0; iy < 8; ++iy)
    for (std::size_t ix = 0; ix < 8; ++ix)
      halves.at(ix, iy) = (ix < 4) ? 1.0 : 9.0;
  const SpatialEntropyResult res = spatial_entropy_detailed(halves);
  // Two perfectly balanced classes: plain Shannon entropy = 1 bit.
  EXPECT_NEAR(res.shannon, 1.0, 1e-9);
  ASSERT_EQ(res.classes.size(), 2u);
  EXPECT_EQ(res.classes[0].members, 32u);
  EXPECT_EQ(res.classes[1].members, 32u);
}

TEST(SpatialEntropy, ClassDistancesSane) {
  GridD halves(8, 8, 0.0);
  for (std::size_t iy = 0; iy < 8; ++iy)
    for (std::size_t ix = 0; ix < 8; ++ix)
      halves.at(ix, iy) = (ix < 4) ? 1.0 : 9.0;
  const SpatialEntropyResult res = spatial_entropy_detailed(halves);
  for (const PowerClass& c : res.classes) {
    EXPECT_GT(c.d_intra, 0.0);
    EXPECT_GT(c.d_inter, 0.0);
    // Members of a compact half-plane class are mutually closer than they
    // are to the other half.
    EXPECT_LT(c.d_intra, c.d_inter);
  }
}

TEST(SpatialEntropy, PaperLiteralRatioIsLargerForCompactClasses) {
  // For compact classes d_inter > d_intra, so the literal Eq. 3 ratio
  // produces a larger value than the Claramunt orientation.
  GridD halves(8, 8, 0.0);
  for (std::size_t iy = 0; iy < 8; ++iy)
    for (std::size_t ix = 0; ix < 8; ++ix)
      halves.at(ix, iy) = (ix < 4) ? 1.0 : 9.0;
  SpatialEntropyOptions claramunt;
  claramunt.ratio = EntropyRatio::claramunt;
  SpatialEntropyOptions literal;
  literal.ratio = EntropyRatio::paper_literal;
  EXPECT_GT(spatial_entropy(halves, literal),
            spatial_entropy(halves, claramunt));
  // And for the perfectly compact split the literal entropy exceeds the
  // plain Shannon entropy (ratio > 1), as in the paper's S ~ 2.7..4.5
  // magnitudes.
  EXPECT_GT(spatial_entropy(halves, literal),
            spatial_entropy_detailed(halves, literal).shannon);
}

TEST(SpatialEntropy, MoreClassesMoreEntropyForScatteredValues) {
  // A map with 4 interleaved regimes should exceed one with 2.
  GridD two(16, 16, 0.0), four(16, 16, 0.0);
  for (std::size_t iy = 0; iy < 16; ++iy) {
    for (std::size_t ix = 0; ix < 16; ++ix) {
      two.at(ix, iy) = ((ix + iy) % 2 == 0) ? 1.0 : 9.0;
      four.at(ix, iy) = 1.0 + 3.0 * static_cast<double>((ix + iy) % 4);
    }
  }
  EXPECT_GT(spatial_entropy(four), spatial_entropy(two));
}

TEST(SpatialEntropy, InsensitiveToUniformScaling) {
  // Nested means partitions scale with the data, so a uniformly scaled
  // map yields the same classes and the same entropy.
  GridD p(8, 8, 0.0);
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<double>(i % 5);
  GridD scaled = p;
  scaled *= 42.0;
  EXPECT_NEAR(spatial_entropy(p), spatial_entropy(scaled), 1e-9);
}

TEST(SpatialEntropy, SegregatedGradientScoresHigherThanScatteredMix) {
  // Under the default (literal) orientation, a coarse segregated
  // gradient -- the leaky configuration per Sec. 3 finding (i) -- scores
  // HIGHER spatial entropy than the same two power levels scattered
  // bin-by-bin (which thermal diffusion decorrelates).  This is exactly
  // the "lower entropy ~ lower correlation" trend of Sec. 4.2.
  GridD grouped(16, 16, 0.0), scattered(16, 16, 0.0);
  for (std::size_t iy = 0; iy < 16; ++iy) {
    for (std::size_t ix = 0; ix < 16; ++ix) {
      grouped.at(ix, iy) = (iy < 8) ? 2.0 : 8.0;
      scattered.at(ix, iy) = ((ix * 7 + iy * 13) % 2 == 0) ? 2.0 : 8.0;
    }
  }
  EXPECT_GT(spatial_entropy(grouped), spatial_entropy(scattered));
}

}  // namespace
}  // namespace tsc3d::leakage
