// Tests for runtime thermal management (mitigation/dtm.hpp): the scalar
// Kalman filter of [14] and the closed-loop throttling controller.
#include "mitigation/dtm.hpp"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

namespace tsc3d::mitigation {
namespace {

TEST(ScalarKalman, ConvergesToConstantSignal) {
  ScalarKalman kf(300.0, 0.0, 1.0);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    kf.predict();
    kf.update(310.0 + rng.gaussian(0.0, 1.0));
  }
  EXPECT_NEAR(kf.state_k(), 310.0, 0.5);
  // With zero process noise the variance must collapse.
  EXPECT_LT(kf.variance(), 0.1);
}

TEST(ScalarKalman, TracksARamp) {
  ScalarKalman kf(300.0, 0.5, 0.25);
  double truth = 300.0;
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    truth += 0.05;
    kf.predict();
    kf.update(truth + rng.gaussian(0.0, 0.5));
  }
  EXPECT_NEAR(kf.state_k(), truth, 1.0);
}

TEST(ScalarKalman, FiltersNoiseBelowRawReadings) {
  // The estimator's RMSE must beat the raw sensor's over a noisy
  // constant signal.
  Rng rng(5);
  ScalarKalman kf(305.0, 0.01, 4.0);
  double kf_se = 0.0, raw_se = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double reading = 305.0 + rng.gaussian(0.0, 2.0);
    kf.predict();
    kf.update(reading);
    kf_se += (kf.state_k() - 305.0) * (kf.state_k() - 305.0);
    raw_se += (reading - 305.0) * (reading - 305.0);
  }
  EXPECT_LT(std::sqrt(kf_se / n), std::sqrt(raw_se / n));
}

TEST(ScalarKalman, ExactSensorIsAdoptedOutright) {
  ScalarKalman kf(300.0, 0.1, 0.0);
  kf.predict();
  kf.update(333.0);
  EXPECT_DOUBLE_EQ(kf.state_k(), 333.0);
  EXPECT_DOUBLE_EQ(kf.variance(), 0.0);
}

TEST(ScalarKalman, NegativeVarianceThrows) {
  EXPECT_THROW(ScalarKalman(300.0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ScalarKalman(300.0, 1.0, -1.0), std::invalid_argument);
}

TEST(RampKalman, TracksARampWithoutLag) {
  // The constant-velocity model must track a ramp with zero steady-state
  // lag -- the property the random-walk filter lacks.
  RampKalman kf(300.0, 0.01, 0.01, 1.0);
  double truth = 300.0;
  Rng rng(6);
  // Average the tail: the instantaneous slope estimate fluctuates with
  // the read noise, its mean must sit on the true slope.
  double slope_acc = 0.0;
  int slope_n = 0;
  for (int i = 0; i < 1200; ++i) {
    truth += 0.2;
    kf.predict();
    kf.update(truth + rng.gaussian(0.0, 1.0));
    if (i >= 600) {
      slope_acc += kf.slope_k_per_period();
      ++slope_n;
    }
  }
  EXPECT_NEAR(kf.state_k(), truth, 1.0);
  EXPECT_NEAR(slope_acc / slope_n, 0.2, 0.05);
}

TEST(RampKalman, ExtrapolationUsesTheSlope) {
  RampKalman kf(300.0, 0.01, 0.01, 0.5);
  double truth = 300.0;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    truth += 0.1;
    kf.predict();
    kf.update(truth + rng.gaussian(0.0, 0.5));
  }
  EXPECT_NEAR(kf.extrapolate(10.0), truth + 1.0, 1.0);
}

TEST(RampKalman, ExactSensorAdoptsReading) {
  RampKalman kf(300.0, 0.1, 0.1, 0.0);
  kf.predict();
  kf.update(310.0);
  EXPECT_DOUBLE_EQ(kf.state_k(), 310.0);
}

TEST(RampKalman, NegativeVarianceThrows) {
  EXPECT_THROW(RampKalman(300.0, -1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RampKalman(300.0, 1.0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RampKalman(300.0, 1.0, 1.0, -1.0), std::invalid_argument);
}

/// A hot design that will cross a conservative trigger quickly.
Floorplan3D hot_design() {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 2000.0;
  Floorplan3D fp(tech);
  for (int i = 0; i < 3; ++i) {
    Module m;
    m.name = "m" + std::to_string(i);
    m.shape = {200.0 + 600.0 * i, 400.0, 500.0, 1000.0};
    m.area_um2 = m.shape.area();
    m.power_w = i == 0 ? 4.0 : 1.0;  // m0 is the hotspot
    m.die = static_cast<std::size_t>(i % 2);
    fp.modules().push_back(m);
  }
  return fp;
}

thermal::GridSolver small_solver(const Floorplan3D& fp) {
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 12;
  return {fp.tech(), cfg};
}

TEST(Dtm, ThrottlingLimitsPeakTemperature) {
  const auto fp = hot_design();
  const auto solver = small_solver(fp);
  DtmOptions off;
  off.trigger_k = 1e6;  // never throttle
  off.release_k = 1e6 - 1.0;
  DtmOptions on;
  on.trigger_k = 320.0;
  on.release_k = 318.0;
  on.throttle_scale = 0.4;
  on.throttled_fraction = 0.5;
  Rng rng_a(7), rng_b(7);
  const auto uncontrolled = run_dtm(fp, solver, 1.0, 0.01, rng_a, off);
  const auto controlled = run_dtm(fp, solver, 1.0, 0.01, rng_b, on);
  EXPECT_LT(controlled.peak_k, uncontrolled.peak_k);
  EXPECT_GT(controlled.throttled_time_s, 0.0);
  EXPECT_GT(controlled.performance_loss, 0.0);
  EXPECT_DOUBLE_EQ(uncontrolled.performance_loss, 0.0);
}

TEST(Dtm, KalmanBeatsRawSensorOnEstimateRmse) {
  // Run long enough that the saturating heating transient (where any
  // level+slope model pays a curvature penalty) does not dominate the
  // steady phase the filter denoises.
  const auto fp = hot_design();
  const auto solver = small_solver(fp);
  DtmOptions raw;
  raw.use_kalman = false;
  raw.sensor_noise_k = 1.5;
  raw.trigger_k = 1e6;
  raw.release_k = 1e6 - 1.0;
  raw.control_period_s = 0.02;
  DtmOptions kalman = raw;
  kalman.use_kalman = true;
  // Slope process noise scales with the square of the control period
  // (the slope state is per-period); 0.02 s periods need a larger value
  // than the 0.01 s default assumes.
  kalman.kalman_slope_var = 2.0;
  Rng rng_a(11), rng_b(11);
  const auto r_raw = run_dtm(fp, solver, 4.0, 0.02, rng_a, raw);
  const auto r_kf = run_dtm(fp, solver, 4.0, 0.02, rng_b, kalman);
  EXPECT_LT(r_kf.estimate_rmse_k, r_raw.estimate_rmse_k);
}

TEST(Dtm, ProactiveControllerActsEarlier) {
  // With lookahead the controller throttles before the trigger is truly
  // crossed, cutting the time spent above it.
  const auto fp = hot_design();
  const auto solver = small_solver(fp);
  DtmOptions reactive;
  reactive.trigger_k = 316.0;
  reactive.release_k = 314.0;
  reactive.lookahead_periods = 0.0;
  reactive.sensor_noise_k = 0.05;
  DtmOptions proactive = reactive;
  proactive.lookahead_periods = 3.0;
  Rng rng_a(13), rng_b(13);
  const auto r_re = run_dtm(fp, solver, 1.0, 0.01, rng_a, reactive);
  const auto r_pro = run_dtm(fp, solver, 1.0, 0.01, rng_b, proactive);
  EXPECT_LE(r_pro.time_over_trigger_s, r_re.time_over_trigger_s + 1e-9);
}

TEST(Dtm, HysteresisBoundsControlActions) {
  const auto fp = hot_design();
  const auto solver = small_solver(fp);
  DtmOptions opt;
  opt.trigger_k = 316.0;
  opt.release_k = 310.0;  // wide hysteresis band
  opt.sensor_noise_k = 0.1;
  Rng rng(17);
  const auto result = run_dtm(fp, solver, 1.0, 0.01, rng, opt);
  // With a wide band the controller cannot chatter every period.
  EXPECT_LT(result.control_actions, 20u);
}

TEST(Dtm, SensorReadsEveryStepWhenDtEqualsControlPeriod) {
  // dt == control period: the controller must read exactly once per step.
  // (The pre-fix accounting advanced the control deadline by one period
  // per read, so any step overshooting a deadline dragged the schedule
  // permanently behind.)  Binary-friendly times keep the test exact.
  const auto fp = hot_design();
  const auto solver = small_solver(fp);
  DtmOptions opt;
  opt.trigger_k = 1e6;  // observe only, never throttle
  opt.release_k = 1e6 - 1.0;
  opt.control_period_s = 0.25;
  Rng rng(23);
  const auto result = run_dtm(fp, solver, 5.0, 0.25, rng, opt);
  EXPECT_EQ(result.sensor_reads, 20u);
  EXPECT_TRUE(result.thermal_converged);
}

TEST(Dtm, SensorReadCadenceFollowsControlPeriod) {
  // dt = 0.25 s, period = 0.75 s, duration 7.5 s: the first read fires at
  // the first step (t = 0.25, at or past the initial deadline of 0), the
  // deadline then rebases to 0.75, 1.5, 2.25, ... so reads land at 0.25,
  // 0.75, 1.5, 2.25, ..., 7.5 -- eleven in total.
  const auto fp = hot_design();
  const auto solver = small_solver(fp);
  DtmOptions opt;
  opt.trigger_k = 1e6;
  opt.release_k = 1e6 - 1.0;
  opt.control_period_s = 0.75;
  Rng rng(29);
  const auto result = run_dtm(fp, solver, 7.5, 0.25, rng, opt);
  EXPECT_EQ(result.sensor_reads, 11u);
}

TEST(Dtm, FinalStepTemperatureIsAccounted) {
  // The peak of the run must reflect the LAST step's solved temperatures
  // too (the pre-fix accounting only ever saw previous-step fields, so
  // the hottest instant of a monotone heating run went missing).
  const auto fp = hot_design();
  const auto solver = small_solver(fp);
  DtmOptions opt;
  opt.trigger_k = 1e6;
  opt.release_k = 1e6 - 1.0;
  Rng rng(31);
  const auto result = run_dtm(fp, solver, 0.5, 0.01, rng, opt);
  // Reference: the same open-loop transient's final state.
  const GridD tsv = fp.tsv_density_map(solver.nx(), solver.ny());
  std::vector<GridD> nominal;
  for (std::size_t d = 0; d < fp.tech().num_dies; ++d)
    nominal.push_back(fp.power_map(d, solver.nx(), solver.ny()));
  const auto open_loop = solver.solve_transient(
      [&](double) { return nominal; }, tsv, 0.5, 0.01);
  double final_peak = 0.0;
  for (std::size_t d = 0; d < fp.tech().num_dies; ++d)
    final_peak =
        std::max(final_peak, open_loop.final_state.die_temperature[d].max());
  EXPECT_GE(result.peak_k + 1e-9, final_peak);
}

TEST(Dtm, AccountedTimeNeverExceedsDuration) {
  // duration = 0.4 s at dt = 0.25 s takes ceil = 2 solver steps; the
  // second step must only contribute the 0.15 s remainder, so a run that
  // is over-trigger (and throttled) throughout reports at most the
  // requested duration, not steps * dt.
  const auto fp = hot_design();
  const auto solver = small_solver(fp);
  DtmOptions opt;
  opt.trigger_k = 200.0;  // below ambient: always over, always throttling
  opt.release_k = 199.0;
  opt.control_period_s = 0.25;
  Rng rng(37);
  const auto result = run_dtm(fp, solver, 0.4, 0.25, rng, opt);
  EXPECT_NEAR(result.time_over_trigger_s, 0.4, 1e-12);
  EXPECT_LE(result.throttled_time_s, 0.4 + 1e-12);
  EXPECT_LE(result.performance_loss, 1.0 - opt.throttle_scale + 1e-12);
}

TEST(Dtm, InvalidOptionsThrow) {
  const auto fp = hot_design();
  const auto solver = small_solver(fp);
  Rng rng(19);
  EXPECT_THROW((void)run_dtm(fp, solver, 0.0, 0.01, rng),
               std::invalid_argument);
  DtmOptions bad;
  bad.control_period_s = 0.001;
  EXPECT_THROW((void)run_dtm(fp, solver, 1.0, 0.01, rng, bad),
               std::invalid_argument);
  bad = {};
  bad.throttle_scale = 0.0;
  EXPECT_THROW((void)run_dtm(fp, solver, 1.0, 0.01, rng, bad),
               std::invalid_argument);
  bad = {};
  bad.release_k = bad.trigger_k + 1.0;
  EXPECT_THROW((void)run_dtm(fp, solver, 1.0, 0.01, rng, bad),
               std::invalid_argument);
}

void expect_bitwise_equal(const DtmResult& a, const DtmResult& b) {
  EXPECT_EQ(a.time_over_trigger_s, b.time_over_trigger_s);
  EXPECT_EQ(a.peak_k, b.peak_k);
  EXPECT_EQ(a.throttled_time_s, b.throttled_time_s);
  EXPECT_EQ(a.performance_loss, b.performance_loss);
  EXPECT_EQ(a.estimate_rmse_k, b.estimate_rmse_k);
  EXPECT_EQ(a.control_actions, b.control_actions);
  EXPECT_EQ(a.sensor_reads, b.sensor_reads);
  EXPECT_EQ(a.thermal_converged, b.thermal_converged);
}

TEST(Dtm, CheckpointReuseIsBitwiseEquivalent) {
  // A DTM parameter sweep re-runs the same t = 0+ heating step; the
  // checkpoint replaces that solve on the second run and must change
  // NOTHING about the results -- same RNG stream, same controller
  // trajectory, same temperatures, bit for bit.
  const auto fp = hot_design();
  DtmOptions opt;
  opt.trigger_k = 316.0;
  opt.release_k = 314.0;
  opt.sensor_noise_k = 0.5;

  DtmCheckpoint checkpoint;
  Rng rng_a(31), rng_b(31);
  const auto solver_a = small_solver(fp);
  const auto fresh = run_dtm(fp, solver_a, 1.0, 0.01, rng_a, opt,
                             &checkpoint);
  EXPECT_FALSE(fresh.checkpoint_reused);
  EXPECT_TRUE(fresh.checkpoint_captured);
  ASSERT_TRUE(checkpoint.valid);

  const auto solver_b = small_solver(fp);
  const auto reused = run_dtm(fp, solver_b, 1.0, 0.01, rng_b, opt,
                              &checkpoint);
  EXPECT_TRUE(reused.checkpoint_reused);
  EXPECT_FALSE(reused.checkpoint_captured);
  expect_bitwise_equal(fresh, reused);

  // And with different controller parameters (the sweep case): reuse
  // still fires -- the first step is controller-independent -- and the
  // result matches a fresh run under the same parameters exactly.
  DtmOptions proactive = opt;
  proactive.lookahead_periods = 3.0;
  proactive.trigger_k = 320.0;
  proactive.release_k = 318.0;
  Rng rng_c(31), rng_d(31);
  const auto swept = run_dtm(fp, small_solver(fp), 1.0, 0.01, rng_c,
                             proactive, &checkpoint);
  EXPECT_TRUE(swept.checkpoint_reused);
  const auto swept_fresh =
      run_dtm(fp, small_solver(fp), 1.0, 0.01, rng_d, proactive);
  expect_bitwise_equal(swept, swept_fresh);
}

TEST(Dtm, CheckpointMismatchFallsBackToFreshSolve) {
  const auto fp = hot_design();
  DtmOptions opt;
  opt.trigger_k = 1e6;
  opt.release_k = 1e6 - 1.0;
  opt.control_period_s = 0.05;  // above both dt values used below

  DtmCheckpoint checkpoint;
  Rng rng_a(37);
  (void)run_dtm(fp, small_solver(fp), 1.0, 0.01, rng_a, opt, &checkpoint);
  ASSERT_TRUE(checkpoint.valid);

  // A different dt invalidates the checkpoint: the run must fall back
  // (and recapture), matching a checkpoint-free run bitwise.
  Rng rng_b(37), rng_c(37);
  const auto other_dt = run_dtm(fp, small_solver(fp), 1.0, 0.02, rng_b, opt,
                                &checkpoint);
  EXPECT_FALSE(other_dt.checkpoint_reused);
  EXPECT_TRUE(other_dt.checkpoint_captured);
  const auto plain = run_dtm(fp, small_solver(fp), 1.0, 0.02, rng_c, opt);
  expect_bitwise_equal(other_dt, plain);
  EXPECT_EQ(checkpoint.dt_s, 0.02);  // recaptured for the new sweep
}

TEST(Dtm, CheckpointlessRunsUnaffectedByApi) {
  // nullptr checkpoint (every pre-existing caller): identical to a run
  // that captures -- capturing is observation only.
  const auto fp = hot_design();
  DtmOptions opt;
  opt.trigger_k = 316.0;
  opt.release_k = 314.0;
  DtmCheckpoint checkpoint;
  Rng rng_a(41), rng_b(41);
  const auto with = run_dtm(fp, small_solver(fp), 0.5, 0.01, rng_a, opt,
                            &checkpoint);
  const auto without = run_dtm(fp, small_solver(fp), 0.5, 0.01, rng_b, opt);
  EXPECT_FALSE(without.checkpoint_captured);
  expect_bitwise_equal(with, without);
}

}  // namespace
}  // namespace tsc3d::mitigation
