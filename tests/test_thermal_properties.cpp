// Property tests of the thermal solver: invariants that must hold for
// every grid size, die count, integration flavor, and TSV density --
// plus the closed-loop (feedback) transient API.
#include <cmath>
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::thermal {
namespace {

TechnologyConfig tech_for(std::size_t dies, IntegrationFlavor flavor) {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 2000.0;
  tech.num_dies = dies;
  if (flavor == IntegrationFlavor::monolithic) tech = make_monolithic(tech);
  return tech;
}

std::vector<GridD> random_power(std::size_t dies, std::size_t n, Rng& rng,
                                double total_w) {
  std::vector<GridD> maps;
  double sum = 0.0;
  for (std::size_t d = 0; d < dies; ++d) {
    GridD map(n, n);
    for (auto& v : map) {
      v = rng.uniform(0.0, 1.0);
      sum += v;
    }
    maps.push_back(std::move(map));
  }
  for (auto& map : maps) map *= total_w / sum;
  return maps;
}

struct Config {
  std::size_t grid;
  std::size_t dies;
  IntegrationFlavor flavor;
};

class ConservationSweep : public ::testing::TestWithParam<Config> {};

TEST_P(ConservationSweep, DissipatedPowerLeavesThroughTheTwoPaths) {
  const auto& p = GetParam();
  const auto tech = tech_for(p.dies, p.flavor);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = p.grid;
  cfg.tolerance_k = 1e-6;
  const GridSolver solver(tech, cfg);
  Rng rng(p.grid + p.dies);
  const auto power = random_power(p.dies, p.grid, rng, 3.0);
  const GridD tsv(p.grid, p.grid, 0.1);
  const auto res = solver.solve_steady(power, tsv);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.heat_to_sink_w + res.heat_to_package_w, 3.0, 0.02);
  // Everything sits above ambient; the peak is finite and sane.
  for (const auto& map : res.die_temperature) {
    EXPECT_GE(map.min(), cfg.ambient_k - 1e-9);
    EXPECT_LT(map.max(), 1000.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, ConservationSweep,
    ::testing::Values(Config{8, 2, IntegrationFlavor::tsv_based},
                      Config{16, 2, IntegrationFlavor::tsv_based},
                      Config{16, 3, IntegrationFlavor::tsv_based},
                      Config{16, 2, IntegrationFlavor::monolithic},
                      Config{16, 4, IntegrationFlavor::monolithic},
                      Config{24, 2, IntegrationFlavor::tsv_based}));

TEST(ThermalProperties, SuperpositionOfRises) {
  // The network is linear: temperature RISES superpose.
  const auto tech = tech_for(2, IntegrationFlavor::tsv_based);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 12;
  cfg.tolerance_k = 1e-7;
  const GridSolver solver(tech, cfg);
  const GridD tsv(12, 12, 0.05);
  Rng rng(3);
  const auto pa = random_power(2, 12, rng, 1.0);
  const auto pb = random_power(2, 12, rng, 2.0);
  std::vector<GridD> pab = pa;
  for (std::size_t d = 0; d < 2; ++d) pab[d] += pb[d];

  const auto ra = solver.solve_steady(pa, tsv);
  const auto rb = solver.solve_steady(pb, tsv);
  const auto rab = solver.solve_steady(pab, tsv);
  for (std::size_t d = 0; d < 2; ++d) {
    for (std::size_t i = 0; i < ra.die_temperature[d].size(); ++i) {
      const double rise_sum = (ra.die_temperature[d][i] - cfg.ambient_k) +
                              (rb.die_temperature[d][i] - cfg.ambient_k);
      const double rise_joint = rab.die_temperature[d][i] - cfg.ambient_k;
      EXPECT_NEAR(rise_joint, rise_sum, 0.02 * std::max(1.0, rise_sum));
    }
  }
}

TEST(ThermalProperties, MirrorSymmetry) {
  // A power map mirrored in x yields the mirrored thermal map (uniform
  // TSV density preserves the symmetry).
  const auto tech = tech_for(2, IntegrationFlavor::tsv_based);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  cfg.tolerance_k = 1e-7;
  const GridSolver solver(tech, cfg);
  const GridD tsv(16, 16, 0.1);
  Rng rng(5);
  auto power = random_power(2, 16, rng, 2.0);

  auto mirrored = power;
  for (std::size_t d = 0; d < 2; ++d)
    for (std::size_t iy = 0; iy < 16; ++iy)
      for (std::size_t ix = 0; ix < 16; ++ix)
        mirrored[d].at(ix, iy) = power[d].at(15 - ix, iy);

  const auto res = solver.solve_steady(power, tsv);
  const auto res_m = solver.solve_steady(mirrored, tsv);
  for (std::size_t d = 0; d < 2; ++d)
    for (std::size_t iy = 0; iy < 16; ++iy)
      for (std::size_t ix = 0; ix < 16; ++ix)
        EXPECT_NEAR(res_m.die_temperature[d].at(ix, iy),
                    res.die_temperature[d].at(15 - ix, iy), 1e-3);
}

TEST(ThermalProperties, MonotoneInPower) {
  // Adding power anywhere can cool nothing (conductance network with
  // fixed boundary temperatures is monotone).
  const auto tech = tech_for(2, IntegrationFlavor::tsv_based);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 12;
  cfg.tolerance_k = 1e-7;
  const GridSolver solver(tech, cfg);
  const GridD tsv(12, 12, 0.0);
  Rng rng(7);
  const auto power = random_power(2, 12, rng, 2.0);
  auto more = power;
  more[0].at(6, 6) += 0.5;
  const auto res = solver.solve_steady(power, tsv);
  const auto res_more = solver.solve_steady(more, tsv);
  for (std::size_t d = 0; d < 2; ++d)
    for (std::size_t i = 0; i < res.die_temperature[d].size(); ++i)
      EXPECT_GE(res_more.die_temperature[d][i],
                res.die_temperature[d][i] - 1e-6);
}

TEST(TransientFeedback, CallbackSeesAmbientFirstThenWarming) {
  const auto tech = tech_for(2, IntegrationFlavor::tsv_based);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 8;
  const GridSolver solver(tech, cfg);
  const GridD tsv(8, 8, 0.0);
  std::vector<double> seen_max;
  const auto cb = [&](double, const std::vector<GridD>& die_temp) {
    double peak = 0.0;
    for (const auto& map : die_temp) peak = std::max(peak, map.max());
    seen_max.push_back(peak);
    return std::vector<GridD>(2, GridD(8, 8, 2.0 / (8.0 * 8.0)));
  };
  (void)solver.solve_transient_feedback(cb, tsv, 0.1, 0.005);
  ASSERT_GE(seen_max.size(), 3u);
  EXPECT_NEAR(seen_max.front(), cfg.ambient_k, 1e-9);
  // Under constant power the observed peak must rise monotonically.
  for (std::size_t i = 1; i < seen_max.size(); ++i)
    EXPECT_GE(seen_max[i], seen_max[i - 1] - 1e-9);
  EXPECT_GT(seen_max.back(), cfg.ambient_k + 0.5);
}

TEST(TransientFeedback, MatchesOpenLoopWhenFeedbackIgnored) {
  const auto tech = tech_for(2, IntegrationFlavor::tsv_based);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 8;
  const GridSolver solver(tech, cfg);
  const GridD tsv(8, 8, 0.0);
  const auto power = [&](double) {
    return std::vector<GridD>(2, GridD(8, 8, 1.0 / 64.0));
  };
  const auto open = solver.solve_transient(power, tsv, 0.05, 0.005);
  const auto closed = solver.solve_transient_feedback(
      [&](double t, const std::vector<GridD>&) { return power(t); }, tsv,
      0.05, 0.005);
  ASSERT_EQ(open.trace.size(), closed.trace.size());
  for (std::size_t i = 0; i < open.trace.size(); ++i)
    EXPECT_DOUBLE_EQ(open.trace[i].die_peak_k[0],
                     closed.trace[i].die_peak_k[0]);
}

TEST(TransientFeedback, ControllerCanActuallyCoolTheStack) {
  // Closed-loop sanity: a bang-bang controller that cuts power when the
  // observed peak crosses a threshold must keep the stack cooler than
  // the uncontrolled run.
  const auto tech = tech_for(2, IntegrationFlavor::tsv_based);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 8;
  const GridSolver solver(tech, cfg);
  const GridD tsv(8, 8, 0.0);
  const double threshold = 310.0;
  const auto controlled = solver.solve_transient_feedback(
      [&](double, const std::vector<GridD>& die_temp) {
        double peak = 0.0;
        for (const auto& map : die_temp) peak = std::max(peak, map.max());
        const double watts = peak > threshold ? 0.5 : 4.0;
        return std::vector<GridD>(2, GridD(8, 8, watts / (2.0 * 64.0)));
      },
      tsv, 0.5, 0.005);
  const auto uncontrolled = solver.solve_transient(
      [&](double) {
        return std::vector<GridD>(2, GridD(8, 8, 4.0 / (2.0 * 64.0)));
      },
      tsv, 0.5, 0.005);
  EXPECT_LT(controlled.final_state.peak_k, uncontrolled.final_state.peak_k);
  // And it hovers near the threshold rather than collapsing to ambient.
  EXPECT_GT(controlled.final_state.peak_k, cfg.ambient_k + 2.0);
}

}  // namespace
}  // namespace tsc3d::thermal
