// Tests of LayoutState and the simulated-annealing engine on small
// instances (kept tiny so the suite stays fast).
#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "thermal/power_blur.hpp"

namespace tsc3d::floorplan {
namespace {

/// A reduced n100-style instance: ~24 modules on a small outline.
Floorplan3D small_instance(std::uint64_t seed) {
  benchgen::BenchmarkSpec spec;
  spec.name = "tiny";
  spec.soft_modules = 24;
  spec.num_nets = 40;
  spec.num_terminals = 8;
  spec.outline_mm2 = 4.0;
  spec.power_w = 2.0;
  return benchgen::generate(spec, seed);
}

ThermalConfig fast_cfg() {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = 16;
  return c;
}

TEST(LayoutState, InitialCoversAllModules) {
  Floorplan3D fp = small_instance(1);
  Rng rng(1);
  const LayoutState s = LayoutState::initial(fp, rng);
  std::size_t total = 0;
  for (const SequencePair& sp : s.die_sp) total += sp.size();
  EXPECT_EQ(total, fp.modules().size());
  EXPECT_EQ(s.die_of.size(), fp.modules().size());
  for (std::size_t i = 0; i < s.die_of.size(); ++i)
    EXPECT_TRUE(s.die_sp[s.die_of[i]].contains(i));
}

TEST(LayoutState, ThermalDesignRuleSendsHotModulesUp) {
  Floorplan3D fp = small_instance(2);
  Rng rng(2);
  const LayoutState s = LayoutState::initial(fp, rng, true);
  // Mean power density on the top die must exceed the bottom die's.
  double dens[2] = {0.0, 0.0};
  double area[2] = {0.0, 0.0};
  for (std::size_t i = 0; i < s.die_of.size(); ++i) {
    dens[s.die_of[i]] += fp.modules()[i].power_w;
    area[s.die_of[i]] += fp.modules()[i].area_um2;
  }
  EXPECT_GT(dens[1] / area[1], dens[0] / area[0]);
}

TEST(LayoutState, ApplyWritesShapesAndDies) {
  Floorplan3D fp = small_instance(3);
  Rng rng(3);
  const LayoutState s = LayoutState::initial(fp, rng);
  s.apply_to(fp);
  for (std::size_t i = 0; i < fp.modules().size(); ++i) {
    const Module& m = fp.modules()[i];
    EXPECT_EQ(m.die, s.die_of[i]);
    EXPECT_GT(m.shape.w, 0.0);
    EXPECT_NEAR(m.shape.area(), m.area_um2, m.area_um2 * 1e-9);
  }
  // Sequence-pair packings never overlap.
  const LegalityReport rep = fp.check_legality();
  EXPECT_EQ(rep.overlap_count, 0u);
}

class AnnealerFixture : public ::testing::Test {
 protected:
  AnnealerFixture()
      : fp_(small_instance(4)),
        solver_(fp_.tech(), fast_cfg()),
        blur_(solver_, 5) {}

  CostEvaluator::Options eval_options(bool tsc) {
    CostEvaluator::Options o;
    o.weights = tsc ? tsc_aware_weights() : power_aware_weights();
    o.leakage_grid = 16;
    return o;
  }

  Floorplan3D fp_;
  thermal::GridSolver solver_;
  thermal::PowerBlur blur_;
};

TEST_F(AnnealerFixture, FindsLegalFloorplan) {
  CostEvaluator eval(fp_, blur_, eval_options(false));
  AnnealOptions opt;
  opt.total_moves = 4000;
  opt.stages = 20;
  opt.full_eval_interval = 200;
  Annealer annealer(fp_, eval, opt);
  Rng rng(7);
  LayoutState state = LayoutState::initial(fp_, rng);
  const AnnealStats stats = annealer.run(state, rng);
  EXPECT_GT(stats.moves, 0u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_TRUE(stats.found_legal);
  const LegalityReport rep = fp_.check_legality();
  EXPECT_TRUE(rep.legal) << "overlaps=" << rep.overlap_count
                         << " outline=" << rep.outline_violations;
}

TEST_F(AnnealerFixture, ImprovesOverInitialCost) {
  CostEvaluator eval(fp_, blur_, eval_options(false));
  Rng rng(8);
  LayoutState state = LayoutState::initial(fp_, rng);
  state.apply_to(fp_);
  const double initial = eval.evaluate_full().total;
  AnnealOptions opt;
  opt.total_moves = 4000;
  opt.stages = 20;
  opt.full_eval_interval = 200;
  Annealer annealer(fp_, eval, opt);
  const AnnealStats stats = annealer.run(state, rng);
  EXPECT_LT(stats.best_cost, initial);
}

TEST_F(AnnealerFixture, EscalationRaisesOutlineWeightWhileIllegal) {
  // A crowded instance (85% utilization) with a minimal budget: stages
  // that end illegal must escalate the evaluator's outline weight.
  benchgen::BenchmarkSpec spec;
  spec.name = "crowded";
  spec.soft_modules = 30;
  spec.num_nets = 40;
  spec.num_terminals = 4;
  spec.outline_mm2 = 4.0;
  spec.power_w = 2.0;
  benchgen::GeneratorOptions gen;
  gen.target_utilization = 0.85;
  Floorplan3D fp = benchgen::generate(spec, 17, gen);
  thermal::GridSolver solver(fp.tech(), fast_cfg());
  thermal::PowerBlur blur(solver, 5);
  CostEvaluator::Options o;
  o.leakage_grid = 16;
  CostEvaluator eval(fp, blur, o);
  const double w0 = eval.outline_weight();

  AnnealOptions opt;
  opt.total_moves = 600;  // deliberately too small to finish legal
  opt.stages = 12;
  opt.full_eval_interval = 200;
  opt.repair_fraction = 0.0;  // isolate the escalation mechanism
  Annealer annealer(fp, eval, opt);
  Rng rng(18);
  LayoutState state = LayoutState::initial(fp, rng);
  const AnnealStats stats = annealer.run(state, rng);
  if (!stats.found_legal) {
    EXPECT_GT(eval.outline_weight(), w0);
  }
}

TEST_F(AnnealerFixture, EscalationCanBeDisabled) {
  CostEvaluator eval(fp_, blur_, eval_options(false));
  const double w0 = eval.outline_weight();
  AnnealOptions opt;
  opt.total_moves = 500;
  opt.stages = 10;
  opt.outline_escalation = 1.0;
  opt.repair_fraction = 0.0;
  Annealer annealer(fp_, eval, opt);
  Rng rng(19);
  LayoutState state = LayoutState::initial(fp_, rng);
  (void)annealer.run(state, rng);
  EXPECT_DOUBLE_EQ(eval.outline_weight(), w0);
}

TEST_F(AnnealerFixture, RepairPhaseRunsOnlyWhenIllegal) {
  // Roomy instance: SA finds a legal plan, so no repair moves are spent.
  CostEvaluator eval(fp_, blur_, eval_options(false));
  AnnealOptions opt;
  opt.total_moves = 4000;
  opt.stages = 20;
  opt.full_eval_interval = 200;
  Annealer annealer(fp_, eval, opt);
  Rng rng(20);
  LayoutState state = LayoutState::initial(fp_, rng);
  const AnnealStats stats = annealer.run(state, rng);
  if (stats.found_legal) {
    EXPECT_EQ(stats.repair_moves, 0u);
  }
}

TEST_F(AnnealerFixture, CrowdedInstanceBecomesLegalWithFullMachinery) {
  // The end-to-end claim: escalation + repair recover legality on a
  // crowded instance where a plain weight would leave overhang.
  benchgen::BenchmarkSpec spec;
  spec.name = "crowded2";
  spec.soft_modules = 30;
  spec.num_nets = 40;
  spec.num_terminals = 4;
  spec.outline_mm2 = 4.0;
  spec.power_w = 2.0;
  benchgen::GeneratorOptions gen;
  gen.target_utilization = 0.80;
  Floorplan3D fp = benchgen::generate(spec, 23, gen);
  thermal::GridSolver solver(fp.tech(), fast_cfg());
  thermal::PowerBlur blur(solver, 5);
  CostEvaluator::Options o;
  o.leakage_grid = 16;
  CostEvaluator eval(fp, blur, o);
  AnnealOptions opt;
  opt.total_moves = 8000;
  opt.stages = 25;
  opt.full_eval_interval = 300;
  Annealer annealer(fp, eval, opt);
  Rng rng(24);
  LayoutState state = LayoutState::initial(fp, rng);
  const AnnealStats stats = annealer.run(state, rng);
  EXPECT_TRUE(stats.found_legal);
  EXPECT_TRUE(fp.check_legality().legal);
}

TEST_F(AnnealerFixture, DeterministicGivenSeed) {
  AnnealOptions opt;
  opt.total_moves = 1500;
  opt.stages = 10;
  opt.full_eval_interval = 100;

  auto run_once = [&](std::uint64_t seed) {
    Floorplan3D fp = small_instance(4);
    thermal::GridSolver solver(fp.tech(), fast_cfg());
    thermal::PowerBlur blur(solver, 5);
    CostEvaluator::Options o;
    o.leakage_grid = 16;
    CostEvaluator eval(fp, blur, o);
    Annealer annealer(fp, eval, opt);
    Rng rng(seed);
    LayoutState state = LayoutState::initial(fp, rng);
    return annealer.run(state, rng).best_cost;
  };
  EXPECT_DOUBLE_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));
}

}  // namespace
}  // namespace tsc3d::floorplan
