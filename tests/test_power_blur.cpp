// Tests of the fast power-blurring thermal estimator against the
// detailed grid solver it is calibrated from.
#include <gtest/gtest.h>

#include "leakage/pearson.hpp"
#include "thermal/power_blur.hpp"

namespace tsc3d::thermal {
namespace {

TechnologyConfig test_tech() {
  TechnologyConfig t;
  t.die_width_um = 2000.0;
  t.die_height_um = 2000.0;
  return t;
}

ThermalConfig test_cfg(std::size_t grid = 16) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = grid;
  return c;
}

class PowerBlurTest : public ::testing::Test {
 protected:
  PowerBlurTest() : solver_(test_tech(), test_cfg()), blur_(solver_, 6) {}
  GridSolver solver_;
  PowerBlur blur_;
};

TEST_F(PowerBlurTest, ZeroPowerGivesAmbient) {
  const std::vector<GridD> power(2, GridD(16, 16, 0.0));
  const std::vector<GridD> t = blur_.estimate(power, GridD(16, 16, 0.0));
  for (const GridD& map : t)
    for (const double v : map) EXPECT_NEAR(v, 293.15, 0.01);
}

TEST_F(PowerBlurTest, CenteredImpulseMatchesDetailedSolver) {
  // The kernel was calibrated on exactly this case; the estimate must
  // reproduce it closely near the impulse.
  std::vector<GridD> power(2, GridD(16, 16, 0.0));
  power[0].at(8, 8) = 0.1;
  const GridD tsv(16, 16, 0.0);
  const ThermalResult detailed = solver_.solve_steady(power, tsv);
  const std::vector<GridD> fast = blur_.estimate(power, tsv);
  for (std::size_t d = 0; d < 2; ++d) {
    for (std::size_t off = 0; off <= 4; ++off) {
      EXPECT_NEAR(fast[d].at(8 + off, 8),
                  detailed.die_temperature[d].at(8 + off, 8), 0.05)
          << "die " << d << " offset " << off;
    }
  }
}

TEST_F(PowerBlurTest, EstimateCorrelatesWithDetailedSolver) {
  // A realistic multi-source map: the fast estimate should track the
  // detailed solution closely (rank correlation of the fields).
  std::vector<GridD> power(2, GridD(16, 16, 0.0));
  power[0].at(3, 3) = 0.8;
  power[0].at(12, 10) = 1.5;
  power[1].at(6, 13) = 1.0;
  const GridD tsv(16, 16, 0.0);
  const ThermalResult detailed = solver_.solve_steady(power, tsv);
  const std::vector<GridD> fast = blur_.estimate(power, tsv);
  for (std::size_t d = 0; d < 2; ++d) {
    const double r =
        leakage::pearson(fast[d], detailed.die_temperature[d]);
    EXPECT_GT(r, 0.95) << "die " << d;
  }
}

TEST_F(PowerBlurTest, TsvDensityLowersBottomDieEstimate) {
  std::vector<GridD> power(2, GridD(16, 16, 0.0));
  power[0].at(8, 8) = 2.0;
  const double bare = blur_.peak(power, GridD(16, 16, 0.0));
  const double piped = blur_.peak(power, GridD(16, 16, 1.0));
  EXPECT_LT(piped, bare);
}

TEST_F(PowerBlurTest, FarFieldPositive) {
  // Any watt injected anywhere raises the whole chip somewhat.
  for (const bool tsv : {false, true}) {
    for (std::size_t s = 0; s < 2; ++s)
      for (std::size_t d = 0; d < 2; ++d)
        EXPECT_GT(blur_.far_field(s, d, tsv), 0.0);
  }
}

TEST_F(PowerBlurTest, LinearityInPower) {
  std::vector<GridD> p1(2, GridD(16, 16, 0.0));
  p1[1].at(5, 5) = 1.0;
  std::vector<GridD> p3(2, GridD(16, 16, 0.0));
  p3[1].at(5, 5) = 3.0;
  const GridD tsv(16, 16, 0.0);
  const double rise1 = blur_.peak(p1, tsv) - 293.15;
  const double rise3 = blur_.peak(p3, tsv) - 293.15;
  EXPECT_NEAR(rise3 / rise1, 3.0, 1e-6);
}

TEST_F(PowerBlurTest, InputValidation) {
  EXPECT_THROW(blur_.estimate({GridD(16, 16, 0.0)}, GridD(16, 16, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(blur_.estimate(std::vector<GridD>(2, GridD(8, 8, 0.0)),
                              GridD(8, 8, 0.0)),
               std::invalid_argument);
}

TEST_F(PowerBlurTest, FastAnalysisIsInferiorForDiverseTsvArrangements) {
  // The paper found the fast analysis "inferior to the detailed analysis
  // of HotSpot, especially for diverse arrangements of TSVs" -- verify
  // that the fast/detailed gap grows with an irregular TSV pattern.
  std::vector<GridD> power(2, GridD(16, 16, 0.0));
  power[0].at(4, 4) = 1.0;
  power[0].at(11, 11) = 1.0;
  GridD uniform_tsv(16, 16, 0.3);
  GridD diverse_tsv(16, 16, 0.0);
  for (std::size_t i = 0; i < 16; ++i) diverse_tsv[i * 7 % 256] = 1.0;

  auto gap = [&](const GridD& tsv) {
    const ThermalResult det = solver_.solve_steady(power, tsv);
    const std::vector<GridD> fast = blur_.estimate(power, tsv);
    double err = 0.0;
    for (std::size_t i = 0; i < fast[0].size(); ++i)
      err += std::abs(fast[0][i] - det.die_temperature[0][i]);
    return err;
  };
  EXPECT_GE(gap(diverse_tsv), gap(uniform_tsv) * 0.5);
}

}  // namespace
}  // namespace tsc3d::thermal
