#include "core/floorplan.hpp"

#include <gtest/gtest.h>

namespace tsc3d {
namespace {

TechnologyConfig small_tech() {
  TechnologyConfig t;
  t.die_width_um = 1000.0;
  t.die_height_um = 1000.0;
  return t;
}

Module make_module(std::string name, Rect shape, double power,
                   std::size_t die) {
  Module m;
  m.name = std::move(name);
  m.shape = shape;
  m.area_um2 = shape.area();
  m.power_w = power;
  m.die = die;
  return m;
}

TEST(FloorplanDB, PowerMapIntegratesToTotalPower) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {100, 100, 200, 200}, 1.5, 0));
  fp.modules().push_back(make_module("b", {500, 500, 300, 100}, 2.5, 0));
  fp.modules().push_back(make_module("c", {0, 0, 400, 400}, 4.0, 1));
  const GridD p0 = fp.power_map(0, 16, 16);
  const GridD p1 = fp.power_map(1, 16, 16);
  EXPECT_NEAR(p0.sum(), 4.0, 1e-9);
  EXPECT_NEAR(p1.sum(), 4.0, 1e-9);
}

TEST(FloorplanDB, PowerMapConservedAcrossResolutions) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {123, 241, 333, 137}, 3.3, 0));
  for (const std::size_t g : {8u, 16u, 32u, 64u, 128u}) {
    EXPECT_NEAR(fp.power_map(0, g, g).sum(), 3.3, 1e-9)
        << "grid " << g;
  }
}

TEST(FloorplanDB, PowerMapUsesOverrideVector) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {0, 0, 100, 100}, 1.0, 0));
  const std::vector<double> boost{5.0};
  EXPECT_NEAR(fp.power_map(0, 8, 8, &boost).sum(), 5.0, 1e-9);
}

TEST(FloorplanDB, EffectivePowerScalesWithVoltage) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {0, 0, 100, 100}, 1.0, 0));
  fp.modules()[0].voltage_index = 0;  // 0.8 V
  EXPECT_NEAR(fp.effective_power(0), 0.817, 1e-12);
  fp.modules()[0].voltage_index = 2;  // 1.2 V
  EXPECT_NEAR(fp.effective_power(0), 1.496, 1e-12);
  fp.modules()[0].voltage_index = 1;  // 1.0 V
  EXPECT_NEAR(fp.effective_power(0), 1.0, 1e-12);
}

TEST(FloorplanDB, UtilizationPerDie) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {0, 0, 500, 500}, 1.0, 0));
  fp.modules().push_back(make_module("b", {0, 0, 500, 200}, 1.0, 1));
  EXPECT_NEAR(fp.utilization(0), 0.25, 1e-12);
  EXPECT_NEAR(fp.utilization(1), 0.10, 1e-12);
}

TEST(FloorplanDB, TsvDensityIntegratesToIslandArea) {
  Floorplan3D fp(small_tech());
  Tsv t;
  t.position = {500.0, 500.0};
  t.count = 4;
  fp.tsvs().push_back(t);
  const GridD d = fp.tsv_density_map(20, 20);
  const double bin_area = (1000.0 / 20) * (1000.0 / 20);
  const double covered = d.sum() * bin_area;
  const Rect island = fp.tsv_island_rect(t);
  EXPECT_NEAR(covered, island.area(), 1e-6);
}

TEST(FloorplanDB, TsvDensityClampedToOne) {
  Floorplan3D fp(small_tech());
  Tsv t;
  t.position = {500.0, 500.0};
  t.count = 10000;  // gigantic island
  fp.tsvs().push_back(t);
  const GridD d = fp.tsv_density_map(10, 10);
  for (const double v : d) EXPECT_LE(v, 1.0);
}

TEST(FloorplanDB, TsvCountByKind) {
  Floorplan3D fp(small_tech());
  Tsv s;
  s.count = 3;
  s.kind = TsvKind::signal;
  Tsv d;
  d.count = 16;
  d.kind = TsvKind::dummy;
  fp.tsvs().push_back(s);
  fp.tsvs().push_back(d);
  EXPECT_EQ(fp.tsv_count(TsvKind::signal), 3u);
  EXPECT_EQ(fp.tsv_count(TsvKind::dummy), 16u);
}

TEST(FloorplanDB, DummyTsvsExcludableFromDensity) {
  Floorplan3D fp(small_tech());
  Tsv d;
  d.position = {500.0, 500.0};
  d.count = 9;
  d.kind = TsvKind::dummy;
  fp.tsvs().push_back(d);
  EXPECT_GT(fp.tsv_density_map(10, 10, true).sum(), 0.0);
  EXPECT_DOUBLE_EQ(fp.tsv_density_map(10, 10, false).sum(), 0.0);
}

TEST(FloorplanDB, HpwlTwoPinNet) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {0, 0, 100, 100}, 1, 0));
  fp.modules().push_back(make_module("b", {300, 400, 100, 100}, 1, 0));
  Net n;
  n.pins.push_back({0, kInvalidIndex});
  n.pins.push_back({1, kInvalidIndex});
  fp.nets().push_back(n);
  // centers (50,50) and (350,450): HPWL = 300 + 400.
  EXPECT_NEAR(fp.hpwl(), 700.0, 1e-9);
}

TEST(FloorplanDB, HpwlIncludesTerminalsAndWeights) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {0, 0, 100, 100}, 1, 0));
  Terminal t;
  t.position = {1000.0, 50.0};
  fp.terminals().push_back(t);
  Net n;
  n.weight = 2.0;
  n.pins.push_back({0, kInvalidIndex});
  NetPin tp;
  tp.terminal = 0;
  n.pins.push_back(tp);
  fp.nets().push_back(n);
  EXPECT_NEAR(fp.hpwl(), 2.0 * (950.0 + 0.0), 1e-9);
}

TEST(FloorplanDB, SinglePinNetContributesNothing) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {0, 0, 100, 100}, 1, 0));
  Net n;
  n.pins.push_back({0, kInvalidIndex});
  fp.nets().push_back(n);
  EXPECT_DOUBLE_EQ(fp.hpwl(), 0.0);
}

TEST(FloorplanDB, LegalityDetectsOverlap) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {0, 0, 100, 100}, 1, 0));
  fp.modules().push_back(make_module("b", {50, 50, 100, 100}, 1, 0));
  const LegalityReport rep = fp.check_legality();
  EXPECT_FALSE(rep.legal);
  EXPECT_EQ(rep.overlap_count, 1u);
  EXPECT_NEAR(rep.overlap_area_um2, 2500.0, 1e-9);
}

TEST(FloorplanDB, LegalityIgnoresCrossDieOverlap) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {0, 0, 100, 100}, 1, 0));
  fp.modules().push_back(make_module("b", {0, 0, 100, 100}, 1, 1));
  EXPECT_TRUE(fp.check_legality().legal);
}

TEST(FloorplanDB, LegalityDetectsOutlineViolation) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {950, 0, 100, 100}, 1, 0));
  const LegalityReport rep = fp.check_legality();
  EXPECT_FALSE(rep.legal);
  EXPECT_EQ(rep.outline_violations, 1u);
  EXPECT_NEAR(rep.outline_excess_um2, 5000.0, 1e-9);
}

TEST(FloorplanDB, ModulesOnDie) {
  Floorplan3D fp(small_tech());
  fp.modules().push_back(make_module("a", {0, 0, 1, 1}, 1, 0));
  fp.modules().push_back(make_module("b", {0, 0, 1, 1}, 1, 1));
  fp.modules().push_back(make_module("c", {0, 0, 1, 1}, 1, 0));
  const auto on0 = fp.modules_on_die(0);
  ASSERT_EQ(on0.size(), 2u);
  EXPECT_EQ(on0[0], 0u);
  EXPECT_EQ(on0[1], 2u);
}

TEST(FloorplanDB, InvalidTechThrows) {
  TechnologyConfig t;
  t.die_width_um = -5.0;
  EXPECT_THROW(Floorplan3D{t}, std::invalid_argument);
}

}  // namespace
}  // namespace tsc3d
