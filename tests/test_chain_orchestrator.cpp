// Tests of the parallel-tempering chain orchestrator: determinism under
// a fixed seed regardless of scheduling (threaded vs sequential chains),
// exchange-acceptance bookkeeping on a tiny temperature ladder, and the
// Floorplanner-level wiring.  The suites run under TSan on CI.
#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "floorplan/chain_orchestrator.hpp"
#include "floorplan/floorplanner.hpp"

namespace tsc3d::floorplan {
namespace {

Floorplan3D small_instance(std::uint64_t seed) {
  benchgen::BenchmarkSpec spec;
  spec.name = "tiny";
  spec.soft_modules = 18;
  spec.num_nets = 30;
  spec.num_terminals = 6;
  spec.outline_mm2 = 4.0;
  spec.power_w = 2.0;
  return benchgen::generate(spec, seed);
}

ChainSetup small_setup(std::size_t chains, bool parallel = true) {
  ChainSetup s;
  s.fast_thermal.grid_nx = s.fast_thermal.grid_ny = 16;
  s.blur_radius = 5;
  s.eval.weights = power_aware_weights();
  s.eval.leakage_grid = 16;
  s.anneal.total_moves = 1600;
  s.anneal.stages = 8;
  s.anneal.full_eval_interval = 200;
  s.chains.chains = chains;
  s.chains.exchange_interval = 2;
  s.chains.ladder_ratio = 4.0;
  s.chains.parallel = parallel;
  return s;
}

struct RunResult {
  ChainReport report;
  std::vector<Rect> shapes;
  std::vector<std::size_t> dies;
};

RunResult run_once(const ChainSetup& setup, std::uint64_t seed) {
  Floorplan3D fp = small_instance(11);
  Rng rng(3);
  const LayoutState initial = LayoutState::initial(fp, rng);
  ChainOrchestrator orchestrator(setup);
  RunResult out;
  out.report = orchestrator.run(fp, initial, seed);
  for (const Module& m : fp.modules()) {
    out.shapes.push_back(m.shape);
    out.dies.push_back(m.die);
  }
  return out;
}

void expect_same_outcome(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.report.winner, b.report.winner);
  EXPECT_EQ(a.report.exchange.rounds, b.report.exchange.rounds);
  EXPECT_EQ(a.report.exchange.attempts, b.report.exchange.attempts);
  EXPECT_EQ(a.report.exchange.accepts, b.report.exchange.accepts);
  ASSERT_EQ(a.report.chains.size(), b.report.chains.size());
  for (std::size_t k = 0; k < a.report.chains.size(); ++k) {
    EXPECT_EQ(a.report.chains[k].moves, b.report.chains[k].moves);
    EXPECT_EQ(a.report.chains[k].accepted, b.report.chains[k].accepted);
    EXPECT_DOUBLE_EQ(a.report.chains[k].best_cost,
                     b.report.chains[k].best_cost);
  }
  ASSERT_EQ(a.shapes.size(), b.shapes.size());
  for (std::size_t i = 0; i < a.shapes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.shapes[i].x, b.shapes[i].x);
    EXPECT_DOUBLE_EQ(a.shapes[i].y, b.shapes[i].y);
    EXPECT_DOUBLE_EQ(a.shapes[i].w, b.shapes[i].w);
    EXPECT_DOUBLE_EQ(a.shapes[i].h, b.shapes[i].h);
    EXPECT_EQ(a.dies[i], b.dies[i]);
  }
}

TEST(ChainOrchestrator, DeterministicUnderFixedSeed) {
  const ChainSetup setup = small_setup(3);
  const RunResult a = run_once(setup, 42);
  const RunResult b = run_once(setup, 42);
  expect_same_outcome(a, b);
}

TEST(ChainOrchestrator, SchedulingIndependent) {
  // Threaded chains and sequential round-robin must agree exactly: the
  // chains only interact at the exchange barriers, which consume a
  // dedicated RNG in a fixed pair order.
  const RunResult threaded = run_once(small_setup(3, true), 42);
  const RunResult sequential = run_once(small_setup(3, false), 42);
  expect_same_outcome(threaded, sequential);
}

TEST(ChainOrchestrator, DifferentSeedsExploreDifferently) {
  const ChainSetup setup = small_setup(2);
  const RunResult a = run_once(setup, 1);
  const RunResult b = run_once(setup, 2);
  // Same design, different seeds: the annealed layouts should differ
  // (cost equality to full double precision would mean the seed is dead).
  bool any_difference = false;
  for (std::size_t k = 0; k < a.report.chains.size(); ++k)
    any_difference |=
        a.report.chains[k].best_cost != b.report.chains[k].best_cost;
  EXPECT_TRUE(any_difference);
}

TEST(ChainOrchestrator, ExchangeStatisticsOnTinyLadder) {
  // 3 chains, exchange every 2 of 8 stages -> 3 exchange rounds, each
  // proposing exactly one ladder pair (alternating (0,1) / (1,2)).
  const RunResult r = run_once(small_setup(3), 7);
  EXPECT_EQ(r.report.exchange.rounds, 3u);
  EXPECT_EQ(r.report.exchange.attempts, 3u);
  EXPECT_LE(r.report.exchange.accepts, r.report.exchange.attempts);
  ASSERT_EQ(r.report.chains.size(), 3u);
  for (const AnnealStats& s : r.report.chains) {
    EXPECT_GT(s.moves, 0u);
    EXPECT_GT(s.accepted, 0u);
    EXPECT_GT(s.initial_temperature, 0.0);
  }
  EXPECT_LT(r.report.winner, 3u);
}

TEST(ChainOrchestrator, EvenChainCountAlternatesPairCount) {
  // 4 chains: even rounds propose (0,1) and (2,3), odd rounds (1,2).
  const RunResult r = run_once(small_setup(4), 7);
  EXPECT_EQ(r.report.exchange.rounds, 3u);
  EXPECT_EQ(r.report.exchange.attempts, 2u + 1u + 2u);
}

TEST(ChainOrchestrator, ChainSeedsAreDistinctAndStable) {
  EXPECT_EQ(ChainOrchestrator::chain_seed(42, 0),
            ChainOrchestrator::chain_seed(42, 0));
  EXPECT_NE(ChainOrchestrator::chain_seed(42, 0),
            ChainOrchestrator::chain_seed(42, 1));
  EXPECT_NE(ChainOrchestrator::chain_seed(42, 0),
            ChainOrchestrator::chain_seed(43, 0));
}

TEST(ChainOrchestrator, RejectsZeroChainsAndSubUnityLadder) {
  ChainSetup bad = small_setup(0);
  EXPECT_THROW(ChainOrchestrator{bad}, std::invalid_argument);
  ChainSetup ladder = small_setup(2);
  ladder.chains.ladder_ratio = 0.5;
  EXPECT_THROW(ChainOrchestrator{ladder}, std::invalid_argument);
}

TEST(ChainOrchestrator, FloorplannerRunsChainsAndStaysDeterministic) {
  FloorplannerOptions opt = Floorplanner::power_aware_setup();
  opt.anneal.total_moves = 1600;
  opt.anneal.stages = 8;
  opt.fast_grid = 16;
  opt.verify_grid = 16;
  opt.blur_radius = 5;
  opt.chains.chains = 2;
  opt.chains.exchange_interval = 2;
  const Floorplanner planner(opt);

  Floorplan3D fp_a = small_instance(5);
  Rng rng_a(9);
  const FloorplanMetrics a = planner.run(fp_a, rng_a);
  Floorplan3D fp_b = small_instance(5);
  Rng rng_b(9);
  const FloorplanMetrics b = planner.run(fp_b, rng_b);

  ASSERT_EQ(a.chains.chains.size(), 2u);
  EXPECT_EQ(a.chains.winner, b.chains.winner);
  EXPECT_DOUBLE_EQ(a.anneal.best_cost, b.anneal.best_cost);
  EXPECT_DOUBLE_EQ(a.peak_k, b.peak_k);
  ASSERT_EQ(a.correlation.size(), b.correlation.size());
  for (std::size_t d = 0; d < a.correlation.size(); ++d)
    EXPECT_DOUBLE_EQ(a.correlation[d], b.correlation[d]);
  // The winning chain's stats are surfaced as the run's anneal trace.
  EXPECT_EQ(a.anneal.moves, a.chains.chains[a.chains.winner].moves);
  EXPECT_DOUBLE_EQ(a.anneal.best_cost,
                   a.chains.chains[a.chains.winner].best_cost);
}

}  // namespace
}  // namespace tsc3d::floorplan
