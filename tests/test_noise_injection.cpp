// Tests for the Gu et al. [18] dummy-activity injection baseline
// (mitigation/noise_injection.hpp).
#include "mitigation/noise_injection.hpp"

#include <gtest/gtest.h>

namespace tsc3d::mitigation {
namespace {

/// A deliberately leaky two-die design: one dominant hotspot per die.
Floorplan3D leaky_design() {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 2000.0;
  Floorplan3D fp(tech);
  const double specs[4][4] = {
      // x, y, power, die
      {200.0, 200.0, 2.0, 0},
      {1400.0, 1400.0, 0.2, 0},
      {200.0, 1400.0, 1.5, 1},
      {1400.0, 200.0, 0.15, 1},
  };
  for (const auto& s : specs) {
    Module m;
    m.name = "m" + std::to_string(fp.modules().size());
    m.shape = {s[0], s[1], 400.0, 400.0};
    m.area_um2 = m.shape.area();
    m.power_w = s[2];
    m.die = static_cast<std::size_t>(s[3]);
    fp.modules().push_back(m);
  }
  return fp;
}

thermal::GridSolver small_solver(const Floorplan3D& fp) {
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  return {fp.tech(), cfg};
}

TEST(ThermalRoughness, ZeroForFlatMap) {
  EXPECT_DOUBLE_EQ(thermal_roughness(GridD(8, 8, 300.0)), 0.0);
}

TEST(ThermalRoughness, GrowsWithContrast) {
  GridD mild(8, 8, 300.0), strong(8, 8, 300.0);
  mild.at(4, 4) = 302.0;
  strong.at(4, 4) = 320.0;
  EXPECT_GT(thermal_roughness(strong), thermal_roughness(mild));
}

TEST(NoiseInjection, ZeroBudgetIsANoOp) {
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  InjectionOptions opt;
  opt.budget_fraction = 0.0;
  const auto result = run_noise_injection(fp, solver, opt);
  EXPECT_DOUBLE_EQ(result.power_overhead_w, 0.0);
  ASSERT_EQ(result.correlation_before.size(),
            result.correlation_after.size());
  for (std::size_t d = 0; d < result.correlation_before.size(); ++d)
    EXPECT_NEAR(result.correlation_after[d], result.correlation_before[d],
                1e-12);
}

TEST(NoiseInjection, SpendsAtMostTheBudget) {
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  double nominal = 0.0;
  for (std::size_t i = 0; i < fp.modules().size(); ++i)
    nominal += fp.effective_power(i);
  InjectionOptions opt;
  opt.budget_fraction = 0.2;
  const auto result = run_noise_injection(fp, solver, opt);
  EXPECT_LE(result.power_overhead_w, 0.2 * nominal + 1e-9);
  EXPECT_GT(result.power_overhead_w, 0.0);
}

TEST(NoiseInjection, InjectedMapsAccountForTheOverhead) {
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  InjectionOptions opt;
  opt.budget_fraction = 0.15;
  const auto result = run_noise_injection(fp, solver, opt);
  double injected = 0.0;
  for (const auto& map : result.injected_power_w) injected += map.sum();
  EXPECT_NEAR(injected, result.power_overhead_w, 1e-9);
  for (const auto& map : result.injected_power_w)
    EXPECT_GE(map.min(), 0.0);
}

TEST(NoiseInjection, SmoothsTheThermalProfile) {
  // The controller's objective: "smooth thermal profiles" [18].
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  InjectionOptions opt;
  opt.budget_fraction = 0.4;
  opt.iterations = 8;
  const auto result = run_noise_injection(fp, solver, opt);
  for (std::size_t d = 0; d < result.roughness_before.size(); ++d)
    EXPECT_LT(result.roughness_after[d], result.roughness_before[d]);
}

TEST(NoiseInjection, ReducesActivityDistinguishability) {
  // What smoothing buys Gu et al.: two different activities look more
  // alike through the thermal side channel once profiles are flattened.
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  const std::size_t nx = solver.nx(), ny = solver.ny();
  const GridD tsv(nx, ny, 0.0);
  const std::vector<double> act_a{2.0, 0.2, 1.5, 0.15};
  const std::vector<double> act_b{0.5, 1.7, 1.5, 0.15};

  const auto distance = [&](double budget) {
    InjectionOptions opt;
    opt.budget_fraction = budget;
    opt.iterations = 8;
    const auto ra = run_noise_injection(fp, solver, opt, &act_a);
    const auto rb = run_noise_injection(fp, solver, opt, &act_b);
    const auto observed = [&](const std::vector<double>& act,
                              const InjectionResult& r) {
      std::vector<GridD> p;
      for (std::size_t d = 0; d < 2; ++d) {
        p.push_back(fp.power_map(d, nx, ny, &act));
        p.back() += r.injected_power_w[d];
      }
      return solver.solve_steady(p, tsv);
    };
    const auto ta = observed(act_a, ra);
    const auto tb = observed(act_b, rb);
    double acc = 0.0;
    for (std::size_t i = 0; i < ta.die_temperature[0].size(); ++i) {
      const double diff =
          ta.die_temperature[0][i] - tb.die_temperature[0][i];
      acc += diff * diff;
    }
    return std::sqrt(acc);
  };

  EXPECT_LT(distance(0.4), distance(0.0));
}

TEST(NoiseInjection, CorrelationMayRiseOnHotspotDesigns) {
  // Documented counter-intuitive behaviour (see header): flattening the
  // background makes T's SHAPE more like P's on a hotspot design, so the
  // Eq. 1 correlation rises even as roughness falls.  This is exactly
  // the paper's point that injection does not address the correlation
  // metric the way TSC-aware floorplanning does.
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  InjectionOptions opt;
  opt.budget_fraction = 0.4;
  opt.iterations = 8;
  const auto result = run_noise_injection(fp, solver, opt);
  EXPECT_GT(result.correlation_after[0],
            result.correlation_before[0] - 0.05);
}

TEST(NoiseInjection, RaisesTemperature) {
  // The paper's critique (a): injection costs power, hence heat.
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  InjectionOptions opt;
  opt.budget_fraction = 0.4;
  const auto result = run_noise_injection(fp, solver, opt);
  EXPECT_GE(result.peak_k_after, result.peak_k_before - 1e-9);
}

TEST(NoiseInjection, HigherBudgetsSmoothMore) {
  // The paper's critique (b): "the best leakage-mitigation rates are
  // only achievable for the highest injection rates" -- smoothing gains
  // are monotone in the budget.
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  double prev = 1e9;
  for (const double budget : {0.05, 0.2, 0.5}) {
    InjectionOptions opt;
    opt.budget_fraction = budget;
    opt.iterations = 8;
    const auto result = run_noise_injection(fp, solver, opt);
    // Monotone until the sweet spot; beyond it the controller stops, so
    // larger budgets can at worst tie.
    EXPECT_LE(result.roughness_after[0], prev + 1e-9) << "budget=" << budget;
    prev = result.roughness_after[0];
  }
}

TEST(NoiseInjection, ActivitySampleOverrideIsUsed) {
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  std::vector<double> sample(fp.modules().size(), 0.5);
  InjectionOptions opt;
  opt.budget_fraction = 0.1;
  const auto with_sample = run_noise_injection(fp, solver, opt, &sample);
  const auto nominal = run_noise_injection(fp, solver, opt);
  // Uniform activity: before-correlations differ from the nominal case.
  EXPECT_NE(with_sample.correlation_before[0],
            nominal.correlation_before[0]);
}

TEST(NoiseInjection, InvalidOptionsThrow) {
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  InjectionOptions opt;
  opt.budget_fraction = -0.1;
  EXPECT_THROW((void)run_noise_injection(fp, solver, opt),
               std::invalid_argument);
  opt = {};
  opt.spend_fraction = 0.0;
  EXPECT_THROW((void)run_noise_injection(fp, solver, opt),
               std::invalid_argument);
  opt = {};
  opt.sites_per_die = 0;
  EXPECT_THROW((void)run_noise_injection(fp, solver, opt),
               std::invalid_argument);
}

class InjectionBudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(InjectionBudgetSweep, OverheadScalesWithBudget) {
  const auto fp = leaky_design();
  const auto solver = small_solver(fp);
  double nominal = 0.0;
  for (std::size_t i = 0; i < fp.modules().size(); ++i)
    nominal += fp.effective_power(i);
  InjectionOptions opt;
  opt.budget_fraction = GetParam();
  opt.iterations = 10;
  opt.spend_fraction = 1.0;       // spend everything in one go
  opt.stop_at_sweet_spot = false; // accounting test: naive controller
  const auto result = run_noise_injection(fp, solver, opt);
  EXPECT_NEAR(result.power_overhead_w, GetParam() * nominal,
              1e-6 * nominal);
}

INSTANTIATE_TEST_SUITE_P(Budgets, InjectionBudgetSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5));

}  // namespace
}  // namespace tsc3d::mitigation
