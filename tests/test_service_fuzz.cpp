// Seeded adversarial fuzz over the service's on-disk artifact loaders
// (checkpoint_io, result_io, campaign scenario_io).  Hundreds of random
// truncations, bit flips, region splices and trailing-garbage frames
// are thrown at each loader; every defect must be FAIL-SOFT -- {ok =
// false, reason} -- never a crash, hang, or wrong accept (a mutant that
// loads ok must decode to exactly the pristine artifact).  Targeted
// cases pin the hostile-length-prefix hardening: a length field near
// 2^64 must be rejected before any allocation is attempted.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/generator.hpp"
#include "campaign/scenario_io.hpp"
#include "config/apply.hpp"
#include "config/config_file.hpp"
#include "floorplan/floorplanner.hpp"
#include "service/checkpoint_io.hpp"
#include "service/result_io.hpp"
#include "service/serialize.hpp"
#include "service/version.hpp"

namespace tsc3d::service {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- pristine artifacts -------------------------------------------------

ArtifactContext sample_context() {
  ArtifactContext ctx;
  ctx.design_hash = 0xd1d1;
  ctx.config_hash = 0xc0c0;
  ctx.seed = 5;
  ctx.code_version = kCodeVersion;
  return ctx;
}

StoredResult sample_result() {
  StoredResult res;
  res.context = sample_context();
  res.legal = true;
  res.correlation = {0.25, -0.5};
  res.entropy = {3.5, 4.25};
  res.power_w = 6.5;
  res.critical_delay_ns = 1.25;
  res.wirelength_m = 2.75;
  res.peak_k = 352.5;
  res.signal_tsvs = 40;
  res.dummy_tsvs = 8;
  res.voltage_volumes = 3;
  res.clock_period_ns = 1.5;
  for (std::uint64_t i = 0; i < 12; ++i) {
    PlacedModule m;
    m.die = i % 2;
    m.x = static_cast<double>(i) * 10.0;
    m.y = static_cast<double>(i) * 5.0;
    m.w = 30.0;
    m.h = 20.0;
    m.voltage_index = i % 3;
    res.placement.push_back(m);
    StoredTsv t;
    t.x = m.x;
    t.y = m.y;
    t.count = i + 1;
    t.kind = i % 2;
    t.net = i;
    res.tsvs.push_back(t);
  }
  return res;
}

campaign::ScenarioResult sample_scenario() {
  campaign::ScenarioResult res;
  res.context.exploration = sample_context();
  res.context.attack = "monitoring";
  res.context.mitigation = "dtm";
  res.context.flavor = "tsc_secure";
  res.context.params_hash = 0xabcd;
  res.legal = true;
  res.wirelength_m = 2.75;
  res.power_w = 6.5;
  res.peak_k = 352.5;
  res.attack_success = 0.625;
  res.leakage = 0.625;
  res.overhead = 7.25;
  return res;
}

/// A real checkpoint from a short run (the checkpoint payload is by far
/// the richest format; synthetic fixtures would under-exercise it).
const std::string& pristine_checkpoint_bytes(const fs::path& dir) {
  static const std::string bytes = [&] {
    const config::ConfigFile cfg = config::ConfigFile::parse(
        "[floorplanning]\nsa_moves = 600\nsa_stages = 4\nfast_grid = 16\n"
        "verify_grid = 24\nsampling_grid = 16\n");
    const floorplan::Floorplanner planner(
        config::make_floorplanner_options(cfg));
    Floorplan3D fp = benchgen::generate("n100", 5);
    Rng rng(5);
    floorplan::ExplorationCheckpoint snapshot;
    floorplan::ExplorationHooks hooks;
    hooks.save = [&](const floorplan::ExplorationCheckpoint& ck) {
      snapshot = ck;
    };
    (void)planner.run(fp, rng, hooks);
    save_checkpoint_file(dir / "pristine.ckp", sample_context(), snapshot);
    return read_bytes(dir / "pristine.ckp");
  }();
  return bytes;
}

// --- the mutation engine ------------------------------------------------

enum class Defect { truncate, bit_flip, splice, trailing_garbage };

std::string mutate(const std::string& pristine, std::mt19937_64& rng) {
  std::string bytes = pristine;
  switch (static_cast<Defect>(rng() % 4)) {
    case Defect::truncate: {
      bytes.resize(rng() % bytes.size());
      break;
    }
    case Defect::bit_flip: {
      const std::size_t flips = 1 + rng() % 8;
      for (std::size_t i = 0; i < flips; ++i)
        bytes[rng() % bytes.size()] ^= static_cast<char>(1u << (rng() % 8));
      break;
    }
    case Defect::splice: {
      const std::size_t start = rng() % bytes.size();
      const std::size_t len =
          std::min(bytes.size() - start, 1 + rng() % 64);
      for (std::size_t i = 0; i < len; ++i)
        bytes[start + i] = static_cast<char>(rng());
      break;
    }
    case Defect::trailing_garbage: {
      const std::size_t extra = 1 + rng() % 64;
      for (std::size_t i = 0; i < extra; ++i)
        bytes.push_back(static_cast<char>(rng()));
      break;
    }
  }
  return bytes;
}

// --- fuzz runs: every defect fail-soft, never a wrong accept ------------

TEST(ServiceFuzz, CheckpointLoaderSurvivesHundredsOfCorruptFrames) {
  const fs::path dir = fresh_dir("fuzz_ckp");
  const std::string pristine = pristine_checkpoint_bytes(dir);
  const ArtifactContext ctx = sample_context();

  std::mt19937_64 rng(0xC4C4C4C4u);
  std::size_t rejected = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string mutant = mutate(pristine, rng);
    if (mutant == pristine) continue;
    write_bytes(dir / "m.ckp", mutant);
    const CheckpointLoad load = load_checkpoint_file(dir / "m.ckp", ctx);
    if (load.ok) {
      // Accepting is only legal if the decode is EXACTLY the pristine
      // artifact (e.g. a splice that rewrote bytes to themselves).
      write_bytes(dir / "roundtrip.ckp", mutant);
      const CheckpointLoad again =
          load_checkpoint_file(dir / "roundtrip.ckp", ctx);
      ASSERT_TRUE(again.ok);
    } else {
      EXPECT_FALSE(load.reason.empty()) << "case " << i;
      ++rejected;
    }
  }
  // Sanity: the fuzz actually exercised the reject paths.
  EXPECT_GT(rejected, 100u);
}

TEST(ServiceFuzz, ResultLoaderSurvivesHundredsOfCorruptFrames) {
  const fs::path dir = fresh_dir("fuzz_res");
  const StoredResult original = sample_result();
  save_result_file(dir / "pristine.res", original);
  const std::string pristine = read_bytes(dir / "pristine.res");

  std::mt19937_64 rng(0xE5E5E5E5u);
  std::size_t rejected = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string mutant = mutate(pristine, rng);
    if (mutant == pristine) continue;
    write_bytes(dir / "m.res", mutant);
    const ResultLoad load =
        load_result_file(dir / "m.res", &original.context);
    if (load.ok) {
      EXPECT_EQ(load.result, original)
          << "case " << i << ": wrong accept -- corrupted bytes decoded "
          << "to a DIFFERENT result";
    } else {
      EXPECT_FALSE(load.reason.empty()) << "case " << i;
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 100u);
}

TEST(ServiceFuzz, ScenarioLoaderSurvivesHundredsOfCorruptFrames) {
  const fs::path dir = fresh_dir("fuzz_scn");
  const campaign::ScenarioResult original = sample_scenario();
  campaign::save_scenario_file(dir / "pristine.scn", original);
  const std::string pristine = read_bytes(dir / "pristine.scn");

  std::mt19937_64 rng(0xF6F6F6F6u);
  std::size_t rejected = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string mutant = mutate(pristine, rng);
    if (mutant == pristine) continue;
    write_bytes(dir / "m.scn", mutant);
    const campaign::ScenarioLoad load =
        campaign::load_scenario_file(dir / "m.scn", &original.context);
    if (load.ok) {
      EXPECT_EQ(load.result, original)
          << "case " << i << ": wrong accept";
    } else {
      EXPECT_FALSE(load.reason.empty()) << "case " << i;
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 100u);
}

// --- targeted hostile frames -------------------------------------------

TEST(ServiceFuzz, HostileLengthPrefixIsRejectedBeforeAllocation) {
  // A container length near 2^64 must be caught by the divide-based
  // bounds check, not multiplied into a small number and "accepted".
  ByteWriter w;
  w.u64(0xFFFFFFFFFFFFFFF0ULL);
  const std::vector<std::uint8_t>& buf = w.bytes();
  {
    ByteReader r(buf.data(), buf.size());
    EXPECT_THROW((void)r.vec_f64(), std::runtime_error);
  }
  {
    ByteReader r(buf.data(), buf.size());
    EXPECT_THROW((void)r.vec_u64(), std::runtime_error);
  }
}

TEST(ServiceFuzz, OversizedPayloadSizeFieldIsACleanMiss) {
  const fs::path dir = fresh_dir("fuzz_oversize");
  // Valid magic + version, then a payload_size of 2^64 - 1: every loader
  // must reject on the size/remaining mismatch without touching payload.
  const auto craft = [&](const char* magic) {
    ByteWriter w;
    for (std::size_t i = 0; i < 8; ++i)
      w.u8(static_cast<std::uint8_t>(magic[i]));
    w.u64(1);                       // format version
    w.u64(0xFFFFFFFFFFFFFFFFULL);   // payload size
    w.u64(0);                       // checksum
    std::string bytes(w.bytes().begin(), w.bytes().end());
    return bytes;
  };

  write_bytes(dir / "h.ckp", craft("TSC3DCKP"));
  EXPECT_FALSE(load_checkpoint_file(dir / "h.ckp", sample_context()).ok);

  write_bytes(dir / "h.res", craft("TSC3DRES"));
  EXPECT_FALSE(load_result_file(dir / "h.res", nullptr).ok);

  write_bytes(dir / "h.scn", craft("TSC3DSCN"));
  EXPECT_FALSE(campaign::load_scenario_file(dir / "h.scn", nullptr).ok);
}

TEST(ServiceFuzz, EmptyAndMissingFilesAreCleanMisses) {
  const fs::path dir = fresh_dir("fuzz_empty");
  write_bytes(dir / "empty.res", "");
  EXPECT_FALSE(load_result_file(dir / "empty.res", nullptr).ok);
  EXPECT_FALSE(load_result_file(dir / "absent.res", nullptr).ok);
  EXPECT_FALSE(load_checkpoint_file(dir / "absent.ckp", sample_context()).ok);
  EXPECT_FALSE(campaign::load_scenario_file(dir / "absent.scn", nullptr).ok);
}

}  // namespace
}  // namespace tsc3d::service
