// Tests of backend auto-selection (thermal.solver = auto, EngineRole)
// and the solver-policy edge cases around it: auto resolves per engine
// role (fast_loop -> SOR, sampling/verify -> multigrid) while explicit
// backends force; non-coarsenable grids fall back to SOR bitwise with
// or without FMG; a single-level hierarchy degenerates without
// divergence; stalled V-cycles (strongly z-coupled monolithic stacks)
// hand the solve back to SOR and still meet the cross-backend accuracy
// contract; and the multigrid transient path stays bitwise across
// thread counts (the *Parallel suite also runs under TSan on CI) and
// agrees with the SOR transient within the documented 1e-3 K bound.
#include <gtest/gtest.h>

#include <cmath>

#include "thermal/multigrid.hpp"
#include "thermal/thermal_engine.hpp"

namespace tsc3d::thermal {
namespace {

TechnologyConfig test_tech(std::size_t dies = 2) {
  TechnologyConfig t;
  t.die_width_um = 2000.0;
  t.die_height_um = 2000.0;
  t.num_dies = dies;
  return t;
}

ThermalConfig test_thermal(std::size_t grid, SolverBackend backend,
                           double tolerance = 1e-6) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = grid;
  c.solver = backend;
  c.tolerance_k = tolerance;
  return c;
}

std::vector<GridD> test_power(std::size_t grid, std::size_t dies = 2) {
  std::vector<GridD> power(dies, GridD(grid, grid, 0.0));
  power[0].at(grid / 2, grid / 2) = 2.0;
  power[0].at(2, 3) = 0.7;
  power[1].at(grid - 3, grid - 2) = 1.1;
  return power;
}

GridD test_tsv(std::size_t grid) {
  GridD tsv(grid, grid, 0.1);
  tsv.at(4, 4) = 0.8;
  return tsv;
}

double max_abs_diff(const ThermalResult& a, const ThermalResult& b) {
  EXPECT_EQ(a.layer_temperature.size(), b.layer_temperature.size());
  double max_diff = 0.0;
  for (std::size_t l = 0; l < a.layer_temperature.size(); ++l)
    for (std::size_t c = 0; c < a.layer_temperature[l].size(); ++c)
      max_diff = std::max(max_diff, std::abs(a.layer_temperature[l][c] -
                                             b.layer_temperature[l][c]));
  return max_diff;
}

void expect_bitwise_equal(const ThermalResult& a, const ThermalResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.vcycles, b.vcycles);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.fmg_started, b.fmg_started);
  EXPECT_EQ(a.mg_stalled, b.mg_stalled);
  EXPECT_EQ(a.residual_k, b.residual_k);  // exact: same update sequence
  EXPECT_EQ(a.peak_k, b.peak_k);
  ASSERT_EQ(a.layer_temperature.size(), b.layer_temperature.size());
  for (std::size_t l = 0; l < a.layer_temperature.size(); ++l) {
    ASSERT_EQ(a.layer_temperature[l].size(), b.layer_temperature[l].size());
    for (std::size_t c = 0; c < a.layer_temperature[l].size(); ++c)
      ASSERT_EQ(a.layer_temperature[l][c], b.layer_temperature[l][c])
          << "layer " << l << " cell " << c;
  }
}

// --- auto-selection ------------------------------------------------------

TEST(SolverPolicy, ResolveBackendMatrix) {
  // auto resolves by role; explicit backends are forced for every role.
  EXPECT_EQ(resolve_backend(SolverBackend::auto_select, EngineRole::fast_loop),
            SolverBackend::sor);
  EXPECT_EQ(resolve_backend(SolverBackend::auto_select, EngineRole::sampling),
            SolverBackend::multigrid);
  EXPECT_EQ(resolve_backend(SolverBackend::auto_select, EngineRole::verify),
            SolverBackend::multigrid);
  for (const EngineRole role :
       {EngineRole::fast_loop, EngineRole::sampling, EngineRole::verify}) {
    EXPECT_EQ(resolve_backend(SolverBackend::sor, role), SolverBackend::sor);
    EXPECT_EQ(resolve_backend(SolverBackend::multigrid, role),
              SolverBackend::multigrid);
  }
}

TEST(SolverPolicy, EngineResolvesAutoByRole) {
  const auto cfg = test_thermal(16, SolverBackend::auto_select);
  const auto power = test_power(16);
  const GridD tsv = test_tsv(16);

  // verify -> multigrid: cold solves V-cycle (FMG-seeded).
  ThermalEngine verify(test_tech(), cfg, {}, EngineRole::verify);
  const ThermalResult rv = verify.solve_steady(power, tsv);
  ASSERT_TRUE(rv.converged);
  EXPECT_GT(rv.vcycles, 0u);
  EXPECT_TRUE(rv.fmg_started);

  // fast_loop -> SOR: never a V-cycle, never an FMG start.
  ThermalEngine fast(test_tech(), cfg, {}, EngineRole::fast_loop);
  const ThermalResult rf = fast.solve_steady(power, tsv);
  ASSERT_TRUE(rf.converged);
  EXPECT_EQ(rf.vcycles, 0u);
  EXPECT_FALSE(rf.fmg_started);

  // Same physics either way.
  EXPECT_LT(max_abs_diff(rv, rf), 1e-3);
}

TEST(SolverPolicy, AutoFastLoopEngineMatchesForcedSorBitwise) {
  const auto power = test_power(16);
  const GridD tsv = test_tsv(16);
  ThermalEngine auto_fast(test_tech(),
                          test_thermal(16, SolverBackend::auto_select), {},
                          EngineRole::fast_loop);
  ThermalEngine forced(test_tech(), test_thermal(16, SolverBackend::sor));
  expect_bitwise_equal(auto_fast.solve_steady(power, tsv),
                       forced.solve_steady(power, tsv));
}

// --- degenerate hierarchies ----------------------------------------------

TEST(SolverPolicy, AutoOnNonCoarsenableGridFallsBackToSorBitwise) {
  // 6x6 halves below kMinExtent, so no coarse level exists: the verify
  // engine's multigrid resolution must degrade to the SOR loop with the
  // identical update sequence (same omega, same ordering).
  constexpr std::size_t g = 6;
  const auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  ThermalEngine auto_verify(test_tech(),
                            test_thermal(g, SolverBackend::auto_select), {},
                            EngineRole::verify);
  ThermalEngine forced(test_tech(), test_thermal(g, SolverBackend::sor));
  const ThermalResult ra = auto_verify.solve_steady(power, tsv);
  EXPECT_EQ(ra.vcycles, 0u);
  EXPECT_FALSE(ra.fmg_started);  // FMG needs a usable hierarchy
  expect_bitwise_equal(ra, forced.solve_steady(power, tsv));
}

TEST(SolverPolicy, FmgFlagIrrelevantOnNonCoarsenableGridBitwise) {
  constexpr std::size_t g = 6;
  const auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  ThermalConfig with_fmg = test_thermal(g, SolverBackend::multigrid);
  with_fmg.mg_fmg = true;
  ThermalConfig without = with_fmg;
  without.mg_fmg = false;
  ThermalEngine a(test_tech(), with_fmg);
  ThermalEngine b(test_tech(), without);
  expect_bitwise_equal(a.solve_steady(power, tsv),
                       b.solve_steady(power, tsv));
}

TEST(SolverPolicy, SingleLevelHierarchyDegeneratesWithoutDivergence) {
  // mg_levels = 1 under a 32x32 grid leaves a LARGE coarsest level
  // (16x16), which the fixed-budget coarsest smoother cannot solve
  // accurately -- the cycle's contraction degrades, which is exactly
  // what the stall detector is for.  The contract here is graceful
  // degradation, not speed: the solve must converge (V-cycles, then
  // SOR fallback if they stall) and stay inside the accuracy contract.
  ThermalConfig cfg = test_thermal(32, SolverBackend::multigrid);
  cfg.mg_levels = 1;
  const auto power = test_power(32);
  const GridD tsv = test_tsv(32);
  ThermalEngine mg(test_tech(), cfg);
  const ThermalResult rm = mg.solve_steady(power, tsv);
  ASSERT_TRUE(rm.converged);
  EXPECT_GT(rm.vcycles, 0u);

  ThermalEngine sor(test_tech(), test_thermal(32, SolverBackend::sor));
  EXPECT_LT(max_abs_diff(rm, sor.solve_steady(power, tsv)), 1e-3);
}

TEST(SolverPolicy, FmgDisabledColdSolveStillConvergesAndAgrees) {
  ThermalConfig no_fmg = test_thermal(32, SolverBackend::multigrid);
  no_fmg.mg_fmg = false;
  const auto power = test_power(32);
  const GridD tsv = test_tsv(32);
  ThermalEngine plain(test_tech(), no_fmg);
  const ThermalResult rp = plain.solve_steady(power, tsv);
  ASSERT_TRUE(rp.converged);
  EXPECT_FALSE(rp.fmg_started);

  ThermalEngine fmg(test_tech(), test_thermal(32, SolverBackend::multigrid));
  const ThermalResult rf = fmg.solve_steady(power, tsv);
  ASSERT_TRUE(rf.converged);
  EXPECT_TRUE(rf.fmg_started);
  // The FMG seed exists to shrink the V-cycle loop.
  EXPECT_LE(rf.vcycles, rp.vcycles);
  EXPECT_LT(max_abs_diff(rp, rf), 1e-3);
}

TEST(SolverPolicy, MultigridBudgetExhaustionReportsNotConverged) {
  ThermalConfig cfg = test_thermal(16, SolverBackend::multigrid);
  cfg.max_iterations = 3;  // less than one cycle's 2 * mg_smooth_sweeps
  cfg.tolerance_k = 1e-13;
  ThermalEngine engine(test_tech(), cfg);
  const ThermalResult res =
      engine.solve_steady(test_power(16), test_tsv(16));
  EXPECT_FALSE(res.converged);
  EXPECT_GT(res.iterations, 0u);
  EXPECT_GT(res.residual_k, 0.0);
}

// --- stall fallback (monolithic stacks) ----------------------------------

TEST(SolverPolicy, StalledVcyclesFallBackToSorAndConverge) {
  // Monolithic bonding couples adjacent layers through sub-um ILD, so
  // vertical conductance dwarfs lateral and the point-smoothed V-cycle
  // stops contracting; the engine must detect that and finish with SOR
  // sweeps -- converged, and still inside the 1e-3 K contract.
  const TechnologyConfig tech = make_monolithic(test_tech(4));
  const auto power = test_power(16, 4);
  const GridD tsv = test_tsv(16);
  ThermalEngine mg(tech, test_thermal(16, SolverBackend::multigrid));
  const ThermalResult rm = mg.solve_steady(power, tsv);
  ASSERT_TRUE(rm.converged);
  EXPECT_TRUE(rm.mg_stalled);
  EXPECT_EQ(mg.stats().mg_stalls, 1u);

  ThermalEngine sor(tech, test_thermal(16, SolverBackend::sor));
  const ThermalResult rs = sor.solve_steady(power, tsv);
  ASSERT_TRUE(rs.converged);
  EXPECT_LT(max_abs_diff(rm, rs), 1e-3);
}

TEST(SolverPolicy, TsvStackDoesNotTripTheStallDetector) {
  ThermalEngine mg(test_tech(), test_thermal(32, SolverBackend::multigrid));
  const ThermalResult res = mg.solve_steady(test_power(32), test_tsv(32));
  ASSERT_TRUE(res.converged);
  EXPECT_FALSE(res.mg_stalled);
  EXPECT_EQ(mg.stats().mg_stalls, 0u);
}

// --- transient multigrid (runs under TSan on CI) -------------------------

void expect_transient_bitwise_equal(const TransientResult& a,
                                    const TransientResult& b) {
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_EQ(a.unconverged_steps, b.unconverged_steps);
  expect_bitwise_equal(a.final_state, b.final_state);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t s = 0; s < a.trace.size(); ++s)
    for (std::size_t d = 0; d < a.trace[s].die_peak_k.size(); ++d) {
      ASSERT_EQ(a.trace[s].die_peak_k[d], b.trace[s].die_peak_k[d]);
      ASSERT_EQ(a.trace[s].die_mean_k[d], b.trace[s].die_mean_k[d]);
    }
}

TEST(ThermalEngineTransientMultigridParallel, StiffStepsBitwiseAcrossThreads) {
  // dt far above the stack's thermal time constants leaves (G + C/dt)
  // close to the steady operator -- the regime where per-step SOR grinds
  // and the V-cycle path earns its keep.  The sharded fine sweep must
  // keep the whole trajectory bitwise identical to serial.
  constexpr std::size_t g = 16;
  const auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  ThermalEngine serial(test_tech(), test_thermal(g, SolverBackend::multigrid));
  const TransientResult reference = serial.solve_transient(
      [&](double) { return power; }, tsv, 1.0, 0.25);
  ASSERT_EQ(reference.unconverged_steps, 0u);
  ASSERT_GT(reference.final_state.vcycles, 0u);  // the cycles engaged

  for (const std::size_t threads : {2u, 4u}) {
    ThermalEngine sharded(test_tech(),
                          test_thermal(g, SolverBackend::multigrid),
                          {.threads = threads, .min_nodes_per_thread = 1});
    expect_transient_bitwise_equal(
        reference, sharded.solve_transient([&](double) { return power; },
                                           tsv, 1.0, 0.25));
  }
}

TEST(ThermalEngineTransientMultigridParallel, AgreesWithSorTransient) {
  constexpr std::size_t g = 16;
  const auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  ThermalEngine mg(test_tech(), test_thermal(g, SolverBackend::multigrid));
  const TransientResult rm = mg.solve_transient(
      [&](double) { return power; }, tsv, 1.0, 0.25);
  ThermalEngine sor(test_tech(), test_thermal(g, SolverBackend::sor));
  const TransientResult rs = sor.solve_transient(
      [&](double) { return power; }, tsv, 1.0, 0.25);
  ASSERT_EQ(rm.unconverged_steps, 0u);
  ASSERT_EQ(rs.unconverged_steps, 0u);
  EXPECT_LT(max_abs_diff(rm.final_state, rs.final_state), 1e-3);
  // The point of V-cycling stiff steps: fewer fine-level sweeps total.
  EXPECT_LT(rm.total_iterations, rs.total_iterations);
}

TEST(ThermalEngineTransientMultigridParallel, EquilibriumFastPathSkipsCycles) {
  // The single plain smoothing sweep that opens each step doubles as
  // the convergence measure, and its max update is bounded below by the
  // physical per-step temperature change -- so the no-V-cycle fast path
  // is reachable exactly when the trajectory sits at equilibrium.  An
  // ambient-start zero-power hold must therefore cost one sweep per
  // step and never engage a cycle.
  constexpr std::size_t g = 16;
  const std::vector<GridD> power(2, GridD(g, g, 0.0));
  const GridD tsv = test_tsv(g);
  ThermalEngine mg(test_tech(),
                   test_thermal(g, SolverBackend::multigrid, 1e-4));
  const TransientResult res = mg.solve_transient(
      [&](double) { return power; }, tsv, 0.05, 0.01);
  EXPECT_EQ(res.unconverged_steps, 0u);
  EXPECT_EQ(res.final_state.vcycles, 0u);
  EXPECT_EQ(res.total_iterations, res.steps);
}

}  // namespace
}  // namespace tsc3d::thermal
