// Round-trip tests of the GSRC bookshelf file IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "benchgen/generator.hpp"
#include "benchgen/gsrc_io.hpp"

namespace tsc3d::benchgen {
namespace {

class GsrcIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique directory per test case: ctest runs suites in parallel.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("tsc3d_gsrc_") + info->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(GsrcIoTest, BundleRoundTripPreservesStructure) {
  Floorplan3D original = generate("n100", 11);
  // Give the modules a placement so .pl carries real data.
  double x = 0.0;
  for (Module& m : original.modules()) {
    m.shape.x = x;
    m.shape.y = 2.0 * x;
    x += 10.0;
  }
  write_bundle(original, (dir_ / "n100").string());

  const Floorplan3D loaded = read_bundle(
      original.tech(), dir_ / "n100.blocks", dir_ / "n100.nets",
      dir_ / "n100.pl", dir_ / "n100.power");

  ASSERT_EQ(loaded.modules().size(), original.modules().size());
  ASSERT_EQ(loaded.terminals().size(), original.terminals().size());
  ASSERT_EQ(loaded.nets().size(), original.nets().size());
  for (std::size_t i = 0; i < original.modules().size(); ++i) {
    const Module& a = original.modules()[i];
    const Module& b = loaded.modules()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.soft, b.soft);
    EXPECT_NEAR(a.area_um2, b.area_um2, a.area_um2 * 0.05);
    EXPECT_NEAR(a.power_w, b.power_w, 1e-6);
    EXPECT_NEAR(a.shape.x, b.shape.x, 1e-6);
    EXPECT_NEAR(a.shape.y, b.shape.y, 1e-6);
    EXPECT_EQ(a.die, b.die);
  }
  for (std::size_t i = 0; i < original.nets().size(); ++i)
    EXPECT_EQ(loaded.nets()[i].pins.size(), original.nets()[i].pins.size());
}

TEST_F(GsrcIoTest, ReadsHandWrittenGsrcFile) {
  // A minimal hand-authored .blocks file in the canonical GSRC syntax.
  {
    std::ofstream out(dir_ / "mini.blocks");
    out << "UCSC blocks 1.0\n";
    out << "# hand written\n\n";
    out << "NumSoftRectangularBlocks : 2\n";
    out << "NumHardRectilinearBlocks : 1\n";
    out << "NumTerminals : 1\n\n";
    out << "sb0 softrectangular 10000 0.5 2.0\n";
    out << "sb1 softrectangular 20000 0.333 3.0\n";
    out << "hb0 hardrectilinear 4 (0, 0) (0, 50) (200, 50) (200, 0)\n\n";
    out << "p0 terminal\n";
  }
  {
    std::ofstream out(dir_ / "mini.nets");
    out << "UCLA nets 1.0\n\n";
    out << "NumNets : 2\nNumPins : 5\n";
    out << "NetDegree : 3\n";
    out << "sb0 B\nsb1 B\nhb0 B\n";
    out << "NetDegree : 2\n";
    out << "sb0 B\np0 B\n";
  }
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 1000.0;
  const Floorplan3D fp =
      read_bundle(tech, dir_ / "mini.blocks", dir_ / "mini.nets");
  ASSERT_EQ(fp.modules().size(), 3u);
  ASSERT_EQ(fp.terminals().size(), 1u);
  ASSERT_EQ(fp.nets().size(), 2u);
  EXPECT_TRUE(fp.modules()[0].soft);
  EXPECT_NEAR(fp.modules()[0].area_um2, 10000.0, 1e-9);
  EXPECT_NEAR(fp.modules()[0].min_aspect, 0.5, 1e-9);
  EXPECT_FALSE(fp.modules()[2].soft);
  EXPECT_NEAR(fp.modules()[2].shape.w, 200.0, 1e-9);
  EXPECT_NEAR(fp.modules()[2].shape.h, 50.0, 1e-9);
  EXPECT_EQ(fp.nets()[0].pins.size(), 3u);
  EXPECT_TRUE(fp.nets()[1].pins[1].is_terminal());
}

TEST_F(GsrcIoTest, MissingFileThrows) {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 1000.0;
  EXPECT_THROW(read_bundle(tech, dir_ / "absent.blocks"),
               std::runtime_error);
}

TEST_F(GsrcIoTest, CommentsAndBlanksIgnored) {
  {
    std::ofstream out(dir_ / "c.blocks");
    out << "UCSC blocks 1.0\n";
    out << "\n\n# lots of commentary\n";
    out << "NumSoftRectangularBlocks : 1\n";
    out << "sb0 softrectangular 100 1.0 1.0  # trailing comment\n";
  }
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 1000.0;
  const Floorplan3D fp = read_bundle(tech, dir_ / "c.blocks");
  EXPECT_EQ(fp.modules().size(), 1u);
}

}  // namespace
}  // namespace tsc3d::benchgen
