// Tests for the Corblivar-style config parser (config/config_file.hpp)
// and its mapping onto option structs (config/apply.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>

#include "config/apply.hpp"
#include "config/config_file.hpp"

namespace tsc3d::config {
namespace {

TEST(ConfigFile, ParsesSectionsAndScalars) {
  const auto cfg = ConfigFile::parse(
      "top = 1\n"
      "[a]\n"
      "x = 2.5\n"
      "name = hello world\n"
      "[b]\n"
      "x = 7\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("top", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(cfg.get_double("a.x", 0.0), 2.5);
  EXPECT_EQ(cfg.get_string("a.name", ""), "hello world");
  EXPECT_EQ(cfg.get_size("b.x", 0), 7u);
}

TEST(ConfigFile, CommentsAndBlankLinesIgnored) {
  const auto cfg = ConfigFile::parse(
      "# full-line comment\n"
      "\n"
      "key = 3   # trailing comment\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("key", 0.0), 3.0);
}

TEST(ConfigFile, FallbacksWhenAbsent) {
  const auto cfg = ConfigFile::parse("");
  EXPECT_DOUBLE_EQ(cfg.get_double("nope", 4.5), 4.5);
  EXPECT_EQ(cfg.get_string("nope", "dflt"), "dflt");
  EXPECT_TRUE(cfg.get_bool("nope", true));
  EXPECT_EQ(cfg.get_size("nope", 9), 9u);
}

TEST(ConfigFile, BooleanSpellings) {
  const auto cfg = ConfigFile::parse(
      "a = true\nb = Yes\nc = ON\nd = 1\ne = false\nf = no\ng = off\nh = 0\n");
  for (const char* key : {"a", "b", "c", "d"})
    EXPECT_TRUE(cfg.get_bool(key, false)) << key;
  for (const char* key : {"e", "f", "g", "h"})
    EXPECT_FALSE(cfg.get_bool(key, true)) << key;
}

TEST(ConfigFile, MalformedLinesThrowWithLineNumbers) {
  try {
    (void)ConfigFile::parse("ok = 1\nbroken line\n", "test.conf");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("test.conf:2"), std::string::npos);
  }
}

TEST(ConfigFile, RejectsDuplicateKeys) {
  EXPECT_THROW((void)ConfigFile::parse("x = 1\nx = 2\n"), ConfigError);
}

TEST(ConfigFile, RejectsBadSectionHeader) {
  EXPECT_THROW((void)ConfigFile::parse("[oops\n"), ConfigError);
  EXPECT_THROW((void)ConfigFile::parse("[]\n"), ConfigError);
}

TEST(ConfigFile, RejectsEmptyKeyAndBadNumbers) {
  EXPECT_THROW((void)ConfigFile::parse("= 3\n"), ConfigError);
  const auto cfg = ConfigFile::parse("x = abc\ny = 1.5zzz\nz = -3\n");
  EXPECT_THROW((void)cfg.get_double("x", 0.0), ConfigError);
  EXPECT_THROW((void)cfg.get_double("y", 0.0), ConfigError);
  EXPECT_THROW((void)cfg.get_size("z", 0), ConfigError);
  EXPECT_THROW((void)cfg.get_bool("x", false), ConfigError);
}

TEST(ConfigFile, RequireThrowsOnMissing) {
  const auto cfg = ConfigFile::parse("x = 1\n");
  EXPECT_DOUBLE_EQ(cfg.require_double("x"), 1.0);
  EXPECT_THROW((void)cfg.require_double("missing"), ConfigError);
  EXPECT_THROW((void)cfg.require_string("missing"), ConfigError);
}

TEST(ConfigFile, UnusedKeysTracksReads) {
  const auto cfg = ConfigFile::parse("a = 1\nb = 2\n");
  (void)cfg.get_double("a", 0.0);
  const auto unused = cfg.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "b");
}

TEST(ConfigFile, LoadFromDiskRoundTrips) {
  // Run-unique filename: a fixed path would race a concurrent run of
  // this binary (ctest --repeat, sanitizer jobs sharing /tmp).
  const auto path = std::filesystem::temp_directory_path() /
                    ("tsc3d_test_" + std::to_string(std::random_device{}()) +
                     ".conf");
  {
    std::ofstream out(path);
    out << "[s]\nkey = 42\n";
  }
  const auto cfg = ConfigFile::load(path);
  EXPECT_EQ(cfg.get_size("s.key", 0), 42u);
  std::filesystem::remove(path);
}

TEST(ConfigFile, LoadMissingFileThrows) {
  EXPECT_THROW((void)ConfigFile::load("/nonexistent/nowhere.conf"),
               ConfigError);
}

TEST(ApplyTechnology, OverlaysFields) {
  const auto cfg = ConfigFile::parse(
      "[technology]\n"
      "num_dies = 3\n"
      "die_width_um = 1234\n"
      "tsv_pitch_um = 12\n");
  TechnologyConfig tech;
  apply_technology(cfg, tech);
  EXPECT_EQ(tech.num_dies, 3u);
  EXPECT_DOUBLE_EQ(tech.die_width_um, 1234.0);
  EXPECT_DOUBLE_EQ(tech.tsv.pitch_um, 12.0);
  // Untouched fields keep defaults.
  EXPECT_DOUBLE_EQ(tech.die_height_um, 4000.0);
}

TEST(ApplyTechnology, MonolithicFlavorSwitchesViaGeometry) {
  const auto cfg = ConfigFile::parse("[technology]\nflavor = monolithic\n");
  TechnologyConfig tech;
  apply_technology(cfg, tech);
  EXPECT_EQ(tech.flavor, IntegrationFlavor::monolithic);
  EXPECT_LT(tech.tsv.diameter_um, 1.0);
}

TEST(ApplyTechnology, RejectsUnknownFlavor) {
  const auto cfg = ConfigFile::parse("[technology]\nflavor = quantum\n");
  TechnologyConfig tech;
  EXPECT_THROW(apply_technology(cfg, tech), ConfigError);
}

TEST(ApplyThermal, OverlaysAndValidates) {
  const auto cfg = ConfigFile::parse(
      "[thermal]\n"
      "grid_nx = 32\n"
      "ambient_k = 300\n");
  ThermalConfig thermal;
  apply_thermal(cfg, thermal);
  EXPECT_EQ(thermal.grid_nx, 32u);
  EXPECT_DOUBLE_EQ(thermal.ambient_k, 300.0);

  const auto bad = ConfigFile::parse("[thermal]\ngrid_nx = 2\n");
  ThermalConfig t2;
  EXPECT_THROW(apply_thermal(bad, t2), std::invalid_argument);
}

TEST(ApplyThermal, SolverBackendSelection) {
  const auto cfg = ConfigFile::parse(
      "[thermal]\n"
      "solver = multigrid\n"
      "mg_levels = 3\n"
      "mg_smooth_sweeps = 1\n");
  ThermalConfig thermal;
  apply_thermal(cfg, thermal);
  EXPECT_EQ(thermal.solver, SolverBackend::multigrid);
  EXPECT_EQ(thermal.mg_levels, 3u);
  EXPECT_EQ(thermal.mg_smooth_sweeps, 1u);

  ThermalConfig defaults;
  apply_thermal(ConfigFile::parse(""), defaults);
  EXPECT_EQ(defaults.solver, SolverBackend::auto_select);
  EXPECT_TRUE(defaults.mg_fmg);

  const auto autosel = ConfigFile::parse("[thermal]\nsolver = auto\n");
  ThermalConfig t_auto;
  apply_thermal(autosel, t_auto);
  EXPECT_EQ(t_auto.solver, SolverBackend::auto_select);

  const auto forced = ConfigFile::parse(
      "[thermal]\nsolver = sor\nmg_fmg = false\n");
  ThermalConfig t_forced;
  apply_thermal(forced, t_forced);
  EXPECT_EQ(t_forced.solver, SolverBackend::sor);
  EXPECT_FALSE(t_forced.mg_fmg);

  const auto bad = ConfigFile::parse("[thermal]\nsolver = jacobi\n");
  ThermalConfig t2;
  EXPECT_THROW(apply_thermal(bad, t2), ConfigError);

  const auto zero_sweeps =
      ConfigFile::parse("[thermal]\nmg_smooth_sweeps = 0\n");
  ThermalConfig t3;
  EXPECT_THROW(apply_thermal(zero_sweeps, t3), std::invalid_argument);
}

TEST(MakeFloorplannerOptions, InnerToleranceScaleOverlay) {
  const auto cfg = ConfigFile::parse(
      "[floorplanning]\n"
      "inner_tolerance_scale = 5\n");
  const auto opt = make_floorplanner_options(cfg);
  EXPECT_DOUBLE_EQ(opt.anneal.inner_tolerance_scale, 5.0);
}

TEST(MakeFloorplannerOptions, ModePresetThenOverrides) {
  const auto cfg = ConfigFile::parse(
      "[floorplanning]\n"
      "mode = tsc\n"
      "sa_moves = 777\n"
      "dummy_insertion = false\n");
  const auto opt = make_floorplanner_options(cfg);
  EXPECT_EQ(opt.mode, floorplan::FlowMode::tsc_aware);
  EXPECT_EQ(opt.anneal.total_moves, 777u);
  EXPECT_FALSE(opt.dummy_insertion);
}

TEST(MakeFloorplannerOptions, RejectsUnknownMode) {
  const auto cfg = ConfigFile::parse("[floorplanning]\nmode = fast\n");
  EXPECT_THROW((void)make_floorplanner_options(cfg), ConfigError);
}

TEST(MakeFloorplannerOptions, DefaultIsPowerAware) {
  const auto cfg = ConfigFile::parse("");
  const auto opt = make_floorplanner_options(cfg);
  EXPECT_EQ(opt.mode, floorplan::FlowMode::power_aware);
}

TEST(ShippedConfigs, AllExampleConfigsParseCleanly) {
  // The configs shipped in configs/ must parse and map without errors or
  // unused (misspelled) keys.
  const std::filesystem::path dir = std::filesystem::path(TSC3D_SOURCE_DIR)
                                    / "configs";
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".conf") continue;
    ++seen;
    const auto cfg = ConfigFile::load(entry.path());
    TechnologyConfig tech;
    EXPECT_NO_THROW(apply_technology(cfg, tech)) << entry.path();
    EXPECT_NO_THROW((void)make_floorplanner_options(cfg)) << entry.path();
    EXPECT_TRUE(cfg.unused_keys().empty())
        << entry.path() << ": unused keys present";
  }
  EXPECT_GE(seen, 3u);
}

}  // namespace
}  // namespace tsc3d::config
