// Tests of the geometric multigrid solver backend (thermal/multigrid.hpp)
// and the SolverPolicy dispatch: multigrid results must agree with the
// SOR backend within the engine's documented accuracy contract (1e-3 K
// at tolerance_k = 1e-6 -- the same bound the warm/cold tests use),
// converge in far fewer fine-level sweeps on cold solves, fall back to
// SOR on grids that cannot coarsen, and stay BITWISE deterministic
// across thread counts and through the batched field-pool path.  The
// *Parallel suite also runs under TSan on CI.
#include <gtest/gtest.h>

#include <cmath>

#include "thermal/multigrid.hpp"
#include "thermal/thermal_engine.hpp"

namespace tsc3d::thermal {
namespace {

TechnologyConfig test_tech() {
  TechnologyConfig t;
  t.die_width_um = 2000.0;
  t.die_height_um = 2000.0;
  return t;
}

ThermalConfig test_thermal(std::size_t grid, SolverBackend backend,
                           double tolerance = 1e-6) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = grid;
  c.solver = backend;
  c.tolerance_k = tolerance;
  return c;
}

std::vector<GridD> test_power(std::size_t grid) {
  std::vector<GridD> power(2, GridD(grid, grid, 0.0));
  power[0].at(grid / 2, grid / 2) = 2.0;
  power[0].at(2, 3) = 0.7;
  power[1].at(grid - 3, grid - 2) = 1.1;
  return power;
}

GridD test_tsv(std::size_t grid) {
  GridD tsv(grid, grid, 0.1);
  tsv.at(4, 4) = 0.8;
  tsv.at(grid - 5, 6) = 0.5;
  return tsv;
}

double max_abs_diff(const ThermalResult& a, const ThermalResult& b) {
  EXPECT_EQ(a.layer_temperature.size(), b.layer_temperature.size());
  double max_diff = 0.0;
  for (std::size_t l = 0; l < a.layer_temperature.size(); ++l)
    for (std::size_t c = 0; c < a.layer_temperature[l].size(); ++c)
      max_diff = std::max(max_diff, std::abs(a.layer_temperature[l][c] -
                                             b.layer_temperature[l][c]));
  return max_diff;
}

void expect_bitwise_equal(const ThermalResult& a, const ThermalResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.vcycles, b.vcycles);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.residual_k, b.residual_k);  // exact: same update sequence
  EXPECT_EQ(a.peak_k, b.peak_k);
  ASSERT_EQ(a.layer_temperature.size(), b.layer_temperature.size());
  for (std::size_t l = 0; l < a.layer_temperature.size(); ++l) {
    ASSERT_EQ(a.layer_temperature[l].size(), b.layer_temperature[l].size());
    for (std::size_t c = 0; c < a.layer_temperature[l].size(); ++c)
      ASSERT_EQ(a.layer_temperature[l][c], b.layer_temperature[l][c])
          << "layer " << l << " cell " << c;
  }
}

// --- correctness ---------------------------------------------------------

TEST(ThermalEngineMultigrid, AgreesWithSorWithinAccuracyContract) {
  // The documented contract: at tolerance_k = 1e-6, any two converged
  // solves of the same problem agree within 1e-3 K -- across warm/cold
  // starts (PR 2) and now across backends.
  constexpr std::size_t g = 32;
  const auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  ThermalEngine sor(test_tech(), test_thermal(g, SolverBackend::sor));
  ThermalEngine mg(test_tech(), test_thermal(g, SolverBackend::multigrid));
  const ThermalResult rs = sor.solve_steady(power, tsv);
  const ThermalResult rm = mg.solve_steady(power, tsv);
  ASSERT_TRUE(rs.converged);
  ASSERT_TRUE(rm.converged);
  EXPECT_EQ(rs.vcycles, 0u);
  EXPECT_GT(rm.vcycles, 0u);
  EXPECT_LE(max_abs_diff(rs, rm), 1e-3);
  EXPECT_NEAR(rs.peak_k, rm.peak_k, 1e-3);
  EXPECT_NEAR(rs.heat_to_sink_w + rs.heat_to_package_w,
              rm.heat_to_sink_w + rm.heat_to_package_w, 1e-3);
}

TEST(ThermalEngineMultigrid, ColdSolveUsesFarFewerSweepsThanSor) {
  constexpr std::size_t g = 32;
  const auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  ThermalEngine sor(test_tech(), test_thermal(g, SolverBackend::sor));
  ThermalEngine mg(test_tech(), test_thermal(g, SolverBackend::multigrid));
  const ThermalResult rs = sor.solve_steady(power, tsv);
  const ThermalResult rm = mg.solve_steady(power, tsv);
  ASSERT_TRUE(rs.converged);
  ASSERT_TRUE(rm.converged);
  // SOR needs hundreds of sweeps cold; the V-cycle a few dozen.  A 4x
  // margin keeps the assertion robust while still proving the point.
  EXPECT_LT(rm.iterations * 4, rs.iterations);
  EXPECT_EQ(mg.stats().vcycles, rm.vcycles);
}

TEST(ThermalEngineMultigrid, WarmStartAgreesAndReportsReuse) {
  constexpr std::size_t g = 20;
  auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  ThermalEngine mg(test_tech(), test_thermal(g, SolverBackend::multigrid));
  const ThermalResult cold = mg.solve_steady(power, tsv);
  power[0].at(5, 7) = 0.4;
  const ThermalResult warm = mg.solve_steady(power, tsv);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_TRUE(warm.assembly_reused);
  ASSERT_TRUE(warm.converged);

  ThermalEngine fresh(test_tech(), test_thermal(g, SolverBackend::multigrid));
  const ThermalResult ref = fresh.solve_steady(power, tsv);
  EXPECT_LE(max_abs_diff(warm, ref), 1e-3);
  (void)cold;
}

TEST(ThermalEngineMultigrid, NonCoarsenableGridFallsBackToSorBitwise) {
  // 6x6 would coarsen to 3x3, below the minimum extent: no hierarchy,
  // and the dispatch must degrade to plain SOR -- bitwise, since it is
  // the identical sweep sequence.  (Maps are hand-made: the shared
  // fixtures index outside a grid this small.)
  constexpr std::size_t g = 6;
  std::vector<GridD> power(2, GridD(g, g, 0.0));
  power[0].at(3, 3) = 2.0;
  power[1].at(1, 4) = 0.9;
  GridD tsv(g, g, 0.1);
  tsv.at(2, 2) = 0.7;
  ThermalEngine sor(test_tech(), test_thermal(g, SolverBackend::sor));
  ThermalEngine mg(test_tech(), test_thermal(g, SolverBackend::multigrid));
  const ThermalResult rs = sor.solve_steady(power, tsv);
  const ThermalResult rm = mg.solve_steady(power, tsv);
  EXPECT_EQ(rm.vcycles, 0u);
  expect_bitwise_equal(rs, rm);
}

TEST(ThermalEngineMultigrid, MgLevelsCapsTheHierarchyDepth) {
  constexpr std::size_t g = 32;  // auto depth: 16, 8, 4
  const ThermalConfig cfg = test_thermal(g, SolverBackend::multigrid);
  const auto power = test_power(g);
  const GridD tsv = test_tsv(g);

  ThermalConfig capped = cfg;
  capped.mg_levels = 1;
  ThermalEngine shallow(test_tech(), capped);
  const ThermalResult r = shallow.solve_steady(power, tsv);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.vcycles, 0u);

  ThermalEngine deep(test_tech(), cfg);
  const ThermalResult rd = deep.solve_steady(power, tsv);
  ASSERT_TRUE(rd.converged);
  // A two-grid cycle works too, just with more cycles than full depth.
  // Its slower convergence leaves a slightly larger error at the same
  // stopping rule, so the cross-depth bound is a little looser than the
  // full-depth-vs-SOR contract.
  EXPECT_LE(max_abs_diff(r, rd), 5e-3);
}

TEST(ThermalEngineMultigrid, HierarchyCoarsensConservatively) {
  // The aggregated coarse operator must preserve total boundary
  // conductance and capacitance (parallel paths add): build a hierarchy
  // from a hand-made uniform assembly and check the invariants.
  Assembly fine;
  fine.nx = fine.ny = 8;
  fine.nl = 2;
  const std::size_t n = fine.num_nodes();
  fine.g_xm.assign(n, 0.0);
  fine.g_xp.assign(n, 0.0);
  fine.g_ym.assign(n, 0.0);
  fine.g_yp.assign(n, 0.0);
  fine.g_zm.assign(n, 0.0);
  fine.g_zp.assign(n, 0.0);
  fine.cap.assign(n, 3.0);
  fine.bound_rhs.assign(n, 1.5);
  fine.g_sink.assign(fine.nx * fine.ny, 2.0);
  fine.g_pkg.assign(fine.nx * fine.ny, 0.5);
  for (std::size_t l = 0; l < fine.nl; ++l)
    for (std::size_t iy = 0; iy < fine.ny; ++iy)
      for (std::size_t ix = 0; ix < fine.nx; ++ix) {
        const std::size_t i = (l * fine.ny + iy) * fine.nx + ix;
        if (ix > 0) fine.g_xm[i] = 1.0;
        if (ix + 1 < fine.nx) fine.g_xp[i] = 1.0;
        if (iy > 0) fine.g_ym[i] = 1.0;
        if (iy + 1 < fine.ny) fine.g_yp[i] = 1.0;
        if (l + 1 < fine.nl) fine.g_zp[i] = 4.0;
        if (l > 0) fine.g_zm[i] = 4.0;
      }
  fine.diag_static.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    fine.diag_static[i] = fine.g_xm[i] + fine.g_xp[i] + fine.g_ym[i] +
                          fine.g_yp[i] + fine.g_zm[i] + fine.g_zp[i];

  MultigridHierarchy h;
  h.build(fine, 0);
  ASSERT_TRUE(h.usable());
  EXPECT_EQ(h.levels().size(), 1u);  // 8 -> 4, then 2 < kMinExtent
  const Assembly& c = h.levels()[0].a;
  EXPECT_EQ(c.nx, 4u);
  EXPECT_EQ(c.ny, 4u);
  EXPECT_EQ(c.nl, 2u);

  auto sum = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += x;
    return s;
  };
  // Parallel-path aggregates are exactly preserved...
  EXPECT_DOUBLE_EQ(sum(c.g_sink), sum(fine.g_sink));
  EXPECT_DOUBLE_EQ(sum(c.g_pkg), sum(fine.g_pkg));
  EXPECT_DOUBLE_EQ(sum(c.cap), sum(fine.cap));
  EXPECT_DOUBLE_EQ(sum(c.g_zp), sum(fine.g_zp));
  EXPECT_DOUBLE_EQ(sum(c.bound_rhs), sum(fine.bound_rhs));
  // ...and uniform lateral conductance is invariant under 2x coarsening
  // (k * t * H / W with H and W both doubled).
  for (std::size_t l = 0; l < c.nl; ++l)
    for (std::size_t iy = 0; iy < c.ny; ++iy)
      for (std::size_t ix = 0; ix + 1 < c.nx; ++ix)
        EXPECT_DOUBLE_EQ(c.g_xp[(l * c.ny + iy) * c.nx + ix], 1.0);
}

TEST(ThermalEngineMultigrid, SetPolicySwitchesBackendMidLife) {
  constexpr std::size_t g = 16;
  const auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  ThermalEngine engine(test_tech(), test_thermal(g, SolverBackend::sor));
  const ThermalResult rs = engine.solve_steady(power, tsv);
  ASSERT_TRUE(rs.converged);
  EXPECT_EQ(rs.vcycles, 0u);

  SolverPolicy policy = engine.policy();
  policy.backend = SolverBackend::multigrid;
  engine.set_policy(policy);
  const ThermalResult rm =
      engine.solve_steady(power, tsv, ThermalEngine::Start::cold);
  ASSERT_TRUE(rm.converged);
  EXPECT_GT(rm.vcycles, 0u);
  EXPECT_LE(max_abs_diff(rs, rm), 1e-3);
}

// --- tolerance schedule --------------------------------------------------

TEST(ThermalEngineMultigrid, ToleranceScheduleTradesSweepsForAccuracy) {
  constexpr std::size_t g = 20;
  const auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  for (const SolverBackend backend :
       {SolverBackend::sor, SolverBackend::multigrid}) {
    ThermalEngine exact(test_tech(), test_thermal(g, backend, 1e-6));
    const ThermalResult tight = exact.solve_steady(power, tsv);

    ThermalEngine coarse(test_tech(), test_thermal(g, backend, 1e-6));
    coarse.set_tolerance_scale(1000.0);
    EXPECT_DOUBLE_EQ(coarse.policy().tolerance.scale, 1000.0);
    const ThermalResult loose = coarse.solve_steady(power, tsv);
    ASSERT_TRUE(loose.converged);
    EXPECT_LT(loose.iterations, tight.iterations);
    // Looser stopping, but still a convergent iteration on the same
    // fixed point: the fields stay close.
    EXPECT_LE(max_abs_diff(tight, loose), 0.5);

    // Tightening back restores the contract accuracy.
    coarse.set_tolerance_scale(1.0);
    const ThermalResult again =
        coarse.solve_steady(power, tsv, ThermalEngine::Start::cold);
    ASSERT_TRUE(again.converged);
    EXPECT_LE(max_abs_diff(tight, again), 1e-3);
  }
}

TEST(ThermalEngineMultigrid, ToleranceScaleClampsBelowOne) {
  ThermalEngine engine(test_tech(),
                       test_thermal(16, SolverBackend::sor, 1e-4));
  engine.set_tolerance_scale(0.01);  // must clamp: never tighter than cfg
  EXPECT_DOUBLE_EQ(engine.policy().tolerance.scale, 1.0);
  EXPECT_DOUBLE_EQ(engine.policy().tolerance.tolerance_for(1e-4), 1e-4);
  ToleranceSchedule sched{8.0};
  EXPECT_DOUBLE_EQ(sched.tolerance_for(1e-4), 8e-4);
}

// --- batched field-pool path ---------------------------------------------

TEST(ThermalEngineMultigrid, BatchOfOneBitwiseMatchesSolveSteady) {
  constexpr std::size_t g = 20;
  auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  ThermalEngine a(test_tech(), test_thermal(g, SolverBackend::multigrid));
  ThermalEngine b(test_tech(), test_thermal(g, SolverBackend::multigrid));
  (void)a.solve_steady(power, tsv);
  (void)b.solve_steady(power, tsv);

  power[0].at(3, 9) = 0.9;
  const ThermalResult direct = a.solve_steady(power, tsv);
  const std::vector<ThermalResult> batch =
      b.solve_steady_batch({power}, tsv);
  ASSERT_EQ(batch.size(), 1u);
  expect_bitwise_equal(direct, batch[0]);
  b.adopt_candidate(0);

  // And the adopted field warms the next solve identically.
  power[0].at(3, 9) = 1.3;
  expect_bitwise_equal(a.solve_steady(power, tsv),
                       b.solve_steady(power, tsv));
}

// --- thread determinism (runs under TSan on CI) --------------------------

TEST(ThermalEngineMultigridParallel, ColdSolveBitwiseAcrossThreadCounts) {
  constexpr std::size_t g = 20;
  const auto power = test_power(g);
  const GridD tsv = test_tsv(g);
  ThermalEngine serial(test_tech(), test_thermal(g, SolverBackend::multigrid));
  const ThermalResult reference = serial.solve_steady(power, tsv);
  ASSERT_TRUE(reference.converged);
  ASSERT_GT(reference.vcycles, 0u);

  for (const std::size_t threads : {2u, 3u, 4u, 8u}) {
    ThermalEngine sharded(test_tech(),
                          test_thermal(g, SolverBackend::multigrid),
                          {.threads = threads, .min_nodes_per_thread = 1});
    EXPECT_EQ(sharded.threads(), threads);
    expect_bitwise_equal(reference, sharded.solve_steady(power, tsv));
  }
}

TEST(ThermalEngineMultigridParallel, WarmSequenceBitwiseAcrossThreads) {
  ThermalEngine serial(test_tech(),
                       test_thermal(20, SolverBackend::multigrid));
  ThermalEngine sharded(test_tech(),
                        test_thermal(20, SolverBackend::multigrid),
                        {.threads = 4, .min_nodes_per_thread = 1});
  auto power = test_power(20);
  const GridD tsv = test_tsv(20);
  for (int step = 0; step < 4; ++step) {
    power[0].at(5 + static_cast<std::size_t>(step), 7) = 0.4 + 0.3 * step;
    expect_bitwise_equal(serial.solve_steady(power, tsv),
                         sharded.solve_steady(power, tsv));
  }
  EXPECT_EQ(serial.stats().total_sweeps, sharded.stats().total_sweeps);
  EXPECT_EQ(serial.stats().vcycles, sharded.stats().vcycles);
}

TEST(ThermalEngineMultigridParallel, BatchedCandidatesBitwiseAcrossThreads) {
  constexpr std::size_t g = 20;
  constexpr std::size_t k = 4;
  const auto base = test_power(g);
  const GridD tsv = test_tsv(g);
  std::vector<std::vector<GridD>> candidates(k, base);
  for (std::size_t j = 0; j < k; ++j)
    candidates[j][0].at((3 * j + 2) % g, (5 * j + 1) % g) += 0.3;

  ThermalEngine serial(test_tech(), test_thermal(g, SolverBackend::multigrid));
  (void)serial.solve_steady(base, tsv);
  const std::vector<ThermalResult> ref =
      serial.solve_steady_batch(candidates, tsv);

  for (const std::size_t threads : {2u, 4u}) {
    ThermalEngine pooled(test_tech(),
                         test_thermal(g, SolverBackend::multigrid),
                         {.threads = threads, .min_nodes_per_thread = 1});
    (void)pooled.solve_steady(base, tsv);
    const std::vector<ThermalResult> out =
        pooled.solve_steady_batch(candidates, tsv);
    ASSERT_EQ(out.size(), ref.size());
    for (std::size_t j = 0; j < k; ++j)
      expect_bitwise_equal(ref[j], out[j]);
  }
}

}  // namespace
}  // namespace tsc3d::thermal
