// Tests of the sequence-pair representation and its O(n log n) packing.
// The key property: a sequence-pair packing NEVER overlaps, for any pair
// of permutations and any block dimensions.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/floorplan.hpp"
#include "floorplan/sequence_pair.hpp"

namespace tsc3d::floorplan {
namespace {

/// Brute-force overlap check over a packed result.
bool any_overlap(const SequencePair& sp, const Packing& p,
                 const std::vector<double>& w,
                 const std::vector<double>& h) {
  const auto& order = sp.members();
  for (std::size_t a = 0; a < order.size(); ++a) {
    for (std::size_t b = a + 1; b < order.size(); ++b) {
      const Rect ra{p.position[a].x, p.position[a].y, w[order[a]],
                    h[order[a]]};
      const Rect rb{p.position[b].x, p.position[b].y, w[order[b]],
                    h[order[b]]};
      if (ra.overlaps(rb)) return true;
    }
  }
  return false;
}

TEST(SequencePair, SingleBlockAtOrigin) {
  SequencePair sp(std::vector<std::size_t>{0});
  const Packing p = sp.pack([](std::size_t) { return 10.0; },
                            [](std::size_t) { return 5.0; });
  EXPECT_DOUBLE_EQ(p.position[0].x, 0.0);
  EXPECT_DOUBLE_EQ(p.position[0].y, 0.0);
  EXPECT_DOUBLE_EQ(p.width, 10.0);
  EXPECT_DOUBLE_EQ(p.height, 5.0);
}

TEST(SequencePair, IdenticalSequencesPackInRow) {
  // (abc, abc): a left of b left of c.
  SequencePair sp(std::vector<std::size_t>{0, 1, 2});
  const Packing p = sp.pack([](std::size_t) { return 4.0; },
                            [](std::size_t) { return 3.0; });
  EXPECT_DOUBLE_EQ(p.position[0].x, 0.0);
  EXPECT_DOUBLE_EQ(p.position[1].x, 4.0);
  EXPECT_DOUBLE_EQ(p.position[2].x, 8.0);
  EXPECT_DOUBLE_EQ(p.width, 12.0);
  EXPECT_DOUBLE_EQ(p.height, 3.0);
}

TEST(SequencePair, ReversedNegativePacksInColumn) {
  // (abc, cba): a above b above c.
  SequencePair sp(std::vector<std::size_t>{0, 1, 2});
  sp.swap_negative(0, 2);  // cba
  const Packing p = sp.pack([](std::size_t) { return 4.0; },
                            [](std::size_t) { return 3.0; });
  EXPECT_DOUBLE_EQ(p.width, 4.0);
  EXPECT_DOUBLE_EQ(p.height, 9.0);
  // Positive order a,b,c with negative order c,b,a: a is topmost.
  EXPECT_DOUBLE_EQ(p.position[0].y, 6.0);
  EXPECT_DOUBLE_EQ(p.position[2].y, 0.0);
}

TEST(SequencePair, SparseGlobalIdsSupported) {
  SequencePair sp(std::vector<std::size_t>{42, 7, 1000});
  const Packing p = sp.pack([](std::size_t id) { return id == 7 ? 2.0 : 6.0; },
                            [](std::size_t) { return 1.0; });
  EXPECT_DOUBLE_EQ(p.width, 14.0);
}

TEST(SequencePair, MovesPreservePermutations) {
  SequencePair sp(std::vector<std::size_t>{0, 1, 2, 3, 4});
  Rng rng(5);
  sp.shuffle(rng);
  sp.swap_positive(0, 3);
  sp.swap_negative(1, 4);
  sp.swap_both(2, 0);
  auto sorted = [](std::vector<std::size_t> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(sp.positive()), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sorted(sp.negative()), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SequencePair, SwapBothUnknownModuleLeavesPairIntact) {
  // Strong exception guarantee: a swap naming an absent module must throw
  // WITHOUT mutating either sequence -- a half-applied swap would leave
  // the two sequences describing different arrangements.
  SequencePair sp(std::vector<std::size_t>{0, 1, 2, 3});
  Rng rng(9);
  sp.shuffle(rng);
  const std::vector<std::size_t> pos = sp.positive();
  const std::vector<std::size_t> neg = sp.negative();
  EXPECT_THROW(sp.swap_both(1, 99), std::invalid_argument);
  EXPECT_THROW(sp.swap_both(99, 1), std::invalid_argument);
  EXPECT_THROW(sp.swap_both(98, 99), std::invalid_argument);
  EXPECT_EQ(sp.positive(), pos);
  EXPECT_EQ(sp.negative(), neg);
}

TEST(SequencePair, RemoveAndInsert) {
  SequencePair sp(std::vector<std::size_t>{0, 1, 2});
  sp.remove(1);
  EXPECT_EQ(sp.size(), 2u);
  EXPECT_FALSE(sp.contains(1));
  sp.insert(1, 0, 2);
  EXPECT_EQ(sp.size(), 3u);
  EXPECT_TRUE(sp.contains(1));
  EXPECT_EQ(sp.positive()[0], 1u);
  EXPECT_EQ(sp.negative()[2], 1u);
}

TEST(SequencePair, InsertSlotsClamped) {
  SequencePair sp(std::vector<std::size_t>{0});
  sp.insert(9, 100, 100);  // way out of range: append
  EXPECT_EQ(sp.positive().back(), 9u);
  EXPECT_EQ(sp.negative().back(), 9u);
}

// The central property test: random permutations and random dimensions
// never produce overlaps, and the bounding box contains every block.
class PackingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackingProperty, NoOverlapAndBounded) {
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.index(40);
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  std::vector<double> w(n), h(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.uniform(1.0, 50.0);
    h[i] = rng.uniform(1.0, 50.0);
  }
  SequencePair sp(ids);
  sp.shuffle(rng);
  // A few random moves on top.
  for (int mv = 0; mv < 20; ++mv) {
    const std::size_t i = rng.index(n);
    const std::size_t j = rng.index(n);
    if (i == j) continue;
    switch (rng.index(3)) {
      case 0: sp.swap_positive(i, j); break;
      case 1: sp.swap_negative(i, j); break;
      default: sp.swap_both(sp.positive()[i], sp.positive()[j]); break;
    }
  }
  const Packing p = sp.pack([&](std::size_t id) { return w[id]; },
                            [&](std::size_t id) { return h[id]; });
  EXPECT_FALSE(any_overlap(sp, p, w, h));
  const auto& order = sp.members();
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_GE(p.position[k].x, 0.0);
    EXPECT_GE(p.position[k].y, 0.0);
    EXPECT_LE(p.position[k].x + w[order[k]], p.width + 1e-9);
    EXPECT_LE(p.position[k].y + h[order[k]], p.height + 1e-9);
  }
  // The packing is compact: total block area fits in the bounding box.
  double area = 0.0;
  for (std::size_t i = 0; i < n; ++i) area += w[i] * h[i];
  EXPECT_GE(p.width * p.height, area - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PackingProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace tsc3d::floorplan
