// Failure-injection tests for the GSRC bookshelf reader: real benchmark
// files come with warts, so the documented behaviour is "skip what can
// be skipped, throw on what cannot".
#include <filesystem>
#include <fstream>
#include <random>
#include <gtest/gtest.h>

#include "benchgen/gsrc_io.hpp"

namespace tsc3d::benchgen {
namespace {

class GsrcFailures : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique directory per test case AND per run: ctest -j runs sibling
    // cases as concurrent processes (a shared directory would let one
    // case's TearDown delete another's fixture files mid-test), and the
    // random component keeps concurrent runs of the same binary apart
    // (sanitizer jobs sharing /tmp).
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("tsc3d_gsrc_failures_" +
            std::to_string(std::random_device{}()) + "_" + info->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path write(const std::string& name,
                              const std::string& content) {
    const auto path = dir_ / name;
    std::ofstream out(path);
    out << content;
    return path;
  }

  TechnologyConfig tech_;
  std::filesystem::path dir_;
};

TEST_F(GsrcFailures, EmptyBlocksFileYieldsEmptyFloorplan) {
  const auto blocks = write("empty.blocks", "");
  const auto fp = read_bundle(tech_, blocks);
  EXPECT_TRUE(fp.modules().empty());
  EXPECT_TRUE(fp.nets().empty());
}

TEST_F(GsrcFailures, HeaderOnlyBlocksFileYieldsEmptyFloorplan) {
  const auto blocks = write("hdr.blocks",
                            "UCSC blocks 1.0\n"
                            "NumSoftRectangularBlocks : 0\n"
                            "NumHardRectilinearBlocks : 0\n"
                            "NumTerminals : 0\n");
  const auto fp = read_bundle(tech_, blocks);
  EXPECT_TRUE(fp.modules().empty());
}

TEST_F(GsrcFailures, UnknownBlockKindIsSkipped) {
  const auto blocks = write("weird.blocks",
                            "sb0 softrectangular 10000 0.5 2.0\n"
                            "sb1 dodecahedral 10000 0.5 2.0\n"
                            "sb2 softrectangular 20000 0.5 2.0\n");
  const auto fp = read_bundle(tech_, blocks);
  EXPECT_EQ(fp.modules().size(), 2u);
}

TEST_F(GsrcFailures, NetPinsOnUnknownObjectsAreSkipped) {
  const auto blocks = write("a.blocks",
                            "sb0 softrectangular 10000 0.5 2.0\n"
                            "sb1 softrectangular 10000 0.5 2.0\n");
  const auto nets = write("a.nets",
                          "NetDegree : 3\n"
                          "sb0 B\n"
                          "ghost B\n"
                          "sb1 B\n");
  const auto fp = read_bundle(tech_, blocks, nets);
  ASSERT_EQ(fp.nets().size(), 1u);
  EXPECT_EQ(fp.nets()[0].pins.size(), 2u);
}

TEST_F(GsrcFailures, SinglePinNetsAreDropped) {
  const auto blocks =
      write("b.blocks", "sb0 softrectangular 10000 0.5 2.0\n");
  const auto nets = write("b.nets",
                          "NetDegree : 2\n"
                          "sb0 B\n"
                          "ghost B\n");
  const auto fp = read_bundle(tech_, blocks, nets);
  EXPECT_TRUE(fp.nets().empty());
}

TEST_F(GsrcFailures, MalformedNetDegreeThrows) {
  const auto blocks =
      write("c.blocks", "sb0 softrectangular 10000 0.5 2.0\n");
  const auto nets = write("c.nets", "NetDegree : banana\n");
  EXPECT_ANY_THROW((void)read_bundle(tech_, blocks, nets));
}

TEST_F(GsrcFailures, PlacementWithoutDieColumnDefaultsToDieZero) {
  const auto blocks =
      write("d.blocks", "sb0 softrectangular 10000 0.5 2.0\n");
  const auto pl = write("d.pl", "sb0 120.5 340.25\n");
  const auto fp = read_bundle(tech_, blocks, {}, pl);
  ASSERT_EQ(fp.modules().size(), 1u);
  EXPECT_DOUBLE_EQ(fp.modules()[0].shape.x, 120.5);
  EXPECT_DOUBLE_EQ(fp.modules()[0].shape.y, 340.25);
  EXPECT_EQ(fp.modules()[0].die, 0u);
}

TEST_F(GsrcFailures, PlacementOfUnknownModuleIsIgnored) {
  const auto blocks =
      write("e.blocks", "sb0 softrectangular 10000 0.5 2.0\n");
  const auto pl = write("e.pl", "nosuch 1 2\nsb0 3 4 1\n");
  const auto fp = read_bundle(tech_, blocks, {}, pl);
  ASSERT_EQ(fp.modules().size(), 1u);
  EXPECT_EQ(fp.modules()[0].die, 1u);
}

TEST_F(GsrcFailures, PowerSidecarForUnknownModulesIsIgnored) {
  const auto blocks =
      write("f.blocks", "sb0 softrectangular 10000 0.5 2.0\n");
  const auto power = write("f.power", "nosuch 3.5\nsb0 1.25\n");
  const auto fp = read_bundle(tech_, blocks, {}, {}, power);
  ASSERT_EQ(fp.modules().size(), 1u);
  EXPECT_DOUBLE_EQ(fp.modules()[0].power_w, 1.25);
}

TEST_F(GsrcFailures, MissingNetsFileThrows) {
  const auto blocks =
      write("g.blocks", "sb0 softrectangular 10000 0.5 2.0\n");
  EXPECT_THROW((void)read_bundle(tech_, blocks, dir_ / "absent.nets"),
               std::runtime_error);
}

TEST_F(GsrcFailures, CommentsEverywhereAreHarmless) {
  const auto blocks = write("h.blocks",
                            "# leading comment\n"
                            "sb0 softrectangular 10000 0.5 2.0 # trailing\n"
                            "\n"
                            "   # indented comment\n"
                            "sb1 softrectangular 20000 0.5 2.0\n");
  const auto fp = read_bundle(tech_, blocks);
  EXPECT_EQ(fp.modules().size(), 2u);
}

}  // namespace
}  // namespace tsc3d::benchgen
