// Tests for the monolithic 3D integration flavor (paper future work,
// Sec. 8): sequential tiers, thin inter-tier dielectric, nanoscale MIVs.
#include <gtest/gtest.h>

#include "core/floorplan.hpp"
#include "leakage/pearson.hpp"
#include "thermal/grid_solver.hpp"
#include "thermal/stack.hpp"

namespace tsc3d::thermal {
namespace {

TechnologyConfig tsv_tech() {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 2000.0;
  return tech;
}

ThermalConfig small_cfg() {
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  return cfg;
}

TEST(MonolithicStack, UsesIldAndTierThickness) {
  const auto tech = make_monolithic(tsv_tech());
  const auto stack = build_stack(tech, small_cfg());
  bool found_ild = false;
  for (const auto& layer : stack.layers) {
    EXPECT_EQ(layer.name.find("bond"), std::string::npos);
    if (layer.name.rfind("ild", 0) == 0) {
      found_ild = true;
      EXPECT_NEAR(layer.thickness_m, 0.5e-6, 1e-12);
      EXPECT_TRUE(layer.tsv_layer);
    }
    if (layer.name.rfind("die", 0) == 0) {
      EXPECT_NEAR(layer.thickness_m, 1.0e-6, 1e-12);
    }
  }
  EXPECT_TRUE(found_ild);
}

TEST(MonolithicStack, TsvFlavorKeepsBondLayer) {
  const auto stack = build_stack(tsv_tech(), small_cfg());
  bool found_bond = false;
  for (const auto& layer : stack.layers)
    if (layer.name.rfind("bond", 0) == 0) found_bond = true;
  EXPECT_TRUE(found_bond);
}

TEST(MonolithicStack, MakeMonolithicSwapsViaGeometry) {
  const auto tech = make_monolithic(tsv_tech());
  EXPECT_EQ(tech.flavor, IntegrationFlavor::monolithic);
  EXPECT_LT(tech.tsv.diameter_um, 1.0);
  EXPECT_LT(tech.tsv.cell_area_um2(), 1.0);
  // Other parameters must survive the conversion.
  EXPECT_DOUBLE_EQ(tech.die_width_um, 2000.0);
}

TEST(MonolithicStack, LayerCountMatchesTsvFlavor) {
  // Same structure, different materials/thicknesses.
  const auto a = build_stack(tsv_tech(), small_cfg());
  const auto b = build_stack(make_monolithic(tsv_tech()), small_cfg());
  EXPECT_EQ(a.layers.size(), b.layers.size());
  EXPECT_EQ(a.layer_of_die, b.layer_of_die);
}

/// One hot module on the bottom die, quiet upper die.
Floorplan3D hot_bottom_design(const TechnologyConfig& tech) {
  Floorplan3D fp(tech);
  Module hot;
  hot.name = "hot";
  hot.shape = {200.0, 200.0, 600.0, 600.0};
  hot.area_um2 = hot.shape.area();
  hot.power_w = 3.0;
  hot.die = 0;
  fp.modules().push_back(hot);
  Module quiet;
  quiet.name = "quiet";
  quiet.shape = {1200.0, 1200.0, 600.0, 600.0};
  quiet.area_um2 = quiet.shape.area();
  quiet.power_w = 0.3;
  quiet.die = 1;
  fp.modules().push_back(quiet);
  return fp;
}

TEST(MonolithicThermal, TiersCoupleMoreStronglyThanDies) {
  // The thin ILD couples tiers far more strongly than a 20 um bond
  // couples dies: the upper layer must mirror the lower layer's hotspot
  // more faithfully in the monolithic stack.
  const auto cfg = small_cfg();
  const auto tech_tsv = tsv_tech();
  const auto tech_mono = make_monolithic(tsv_tech());

  const auto correlation_across = [&](const TechnologyConfig& tech) {
    const Floorplan3D fp = hot_bottom_design(tech);
    const GridSolver solver(tech, cfg);
    std::vector<GridD> power;
    for (std::size_t d = 0; d < tech.num_dies; ++d)
      power.push_back(fp.power_map(d, cfg.grid_nx, cfg.grid_ny));
    const auto result =
        solver.solve_steady(power, fp.tsv_density_map(cfg.grid_nx,
                                                      cfg.grid_ny));
    // Correlate the BOTTOM die's power with the TOP die's temperature:
    // pure inter-layer thermal coupling.
    return leakage::pearson(power[0], result.die_temperature[1]);
  };

  EXPECT_GT(correlation_across(tech_mono), correlation_across(tech_tsv));
}

TEST(MonolithicThermal, SolverConvergesForMonolithicStack) {
  const auto tech = make_monolithic(tsv_tech());
  const auto cfg = small_cfg();
  const Floorplan3D fp = hot_bottom_design(tech);
  const GridSolver solver(tech, cfg);
  std::vector<GridD> power;
  for (std::size_t d = 0; d < tech.num_dies; ++d)
    power.push_back(fp.power_map(d, cfg.grid_nx, cfg.grid_ny));
  const auto result = solver.solve_steady(
      power, fp.tsv_density_map(cfg.grid_nx, cfg.grid_ny));
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.peak_k, cfg.ambient_k);
  // Energy balance: all dissipated power leaves through the two paths.
  EXPECT_NEAR(result.heat_to_sink_w + result.heat_to_package_w, 3.3, 0.05);
}

TEST(MonolithicThermal, MivsBarelyChangeTheThermalMap) {
  // The decorrelation lever of the paper -- via arrangement -- weakens
  // under monolithic integration: a dense MIV field changes the map far
  // less than the same arrangement of TSVs does.
  const auto cfg = small_cfg();

  const auto map_shift = [&](const TechnologyConfig& tech) {
    const Floorplan3D fp = hot_bottom_design(tech);
    const GridSolver solver(tech, cfg);
    std::vector<GridD> power;
    for (std::size_t d = 0; d < tech.num_dies; ++d)
      power.push_back(fp.power_map(d, cfg.grid_nx, cfg.grid_ny));
    const GridD none(cfg.grid_nx, cfg.grid_ny, 0.0);
    // A via field covering 30% of every bin vs no vias at all.
    const GridD dense(cfg.grid_nx, cfg.grid_ny, 0.3);
    const auto base = solver.solve_steady(power, none);
    const auto vias = solver.solve_steady(power, dense);
    double shift = 0.0;
    for (std::size_t i = 0; i < base.die_temperature[0].size(); ++i)
      shift += std::abs(base.die_temperature[0][i] -
                        vias.die_temperature[0][i]);
    return shift / static_cast<double>(base.die_temperature[0].size());
  };

  const double tsv_shift = map_shift(tsv_tech());
  const double miv_shift = map_shift(make_monolithic(tsv_tech()));
  EXPECT_LT(miv_shift, tsv_shift);
}

class MonolithicTierSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MonolithicTierSweep, StackBuildsAndSolvesForNTiers) {
  auto tech = make_monolithic(tsv_tech());
  tech.num_dies = GetParam();
  const auto cfg = small_cfg();
  const GridSolver solver(tech, cfg);
  std::vector<GridD> power(tech.num_dies,
                           GridD(cfg.grid_nx, cfg.grid_ny, 1e-3));
  const GridD none(cfg.grid_nx, cfg.grid_ny, 0.0);
  const auto result = solver.solve_steady(power, none);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.die_temperature.size(), tech.num_dies);
}

INSTANTIATE_TEST_SUITE_P(Tiers, MonolithicTierSweep,
                         ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace tsc3d::thermal
