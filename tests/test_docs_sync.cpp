// Documentation/config synchronization: docs/CONFIG.md must document
// exactly the config keys that src/config/apply.cpp handles.  Both files
// are read from the source tree (TSC3D_SOURCE_DIR) and compared as key
// sets, so adding a key to either side without the other fails the
// suite with the offending key named.
//
// Extraction rules:
//  * apply.cpp keys are the string literals passed to the typed
//    ConfigFile getters (get_string/get_double/get_size/get_bool and the
//    require_ variants) that contain a section dot;
//  * CONFIG.md keys are every backticked `section.key` token whose
//    section is one of the known config sections -- prose mentions count
//    as documentation, file names like `foo/bar.conf` do not match.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace {

std::string read_source_file(const std::string& relative) {
  const std::string path = std::string(TSC3D_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const std::set<std::string>& config_sections() {
  static const std::set<std::string> sections{
      "technology", "thermal", "floorplanning", "service", "campaign"};
  return sections;
}

std::string section_of(const std::string& key) {
  return key.substr(0, key.find('.'));
}

std::set<std::string> keys_handled_by_apply_cpp() {
  const std::string src = read_source_file("src/config/apply.cpp");
  static const std::regex getter(
      R"((?:get_string|get_double|get_size|get_bool|require_string|require_double)\s*\(\s*\"([a-z0-9_]+\.[a-z0-9_]+)\")");
  std::set<std::string> keys;
  for (auto it = std::sregex_iterator(src.begin(), src.end(), getter);
       it != std::sregex_iterator(); ++it)
    keys.insert((*it)[1].str());
  return keys;
}

std::set<std::string> keys_documented_in_config_md() {
  const std::string doc = read_source_file("docs/CONFIG.md");
  static const std::regex backticked(
      R"(`([a-z][a-z0-9_]*\.[a-z][a-z0-9_]*)`)");
  std::set<std::string> keys;
  for (auto it = std::sregex_iterator(doc.begin(), doc.end(), backticked);
       it != std::sregex_iterator(); ++it) {
    const std::string key = (*it)[1].str();
    if (config_sections().count(section_of(key)) > 0) keys.insert(key);
  }
  return keys;
}

TEST(ConfigDocSync, ExtractionFindsBothSides) {
  // Guard against a silently broken regex reporting two empty (and thus
  // trivially equal) sets.
  EXPECT_GE(keys_handled_by_apply_cpp().size(), 20u);
  EXPECT_GE(keys_documented_in_config_md().size(), 20u);
  EXPECT_EQ(keys_handled_by_apply_cpp().count("floorplanning.batch_candidates"),
            1u);
}

TEST(ConfigDocSync, EveryHandledKeyIsDocumented) {
  const std::set<std::string> handled = keys_handled_by_apply_cpp();
  const std::set<std::string> documented = keys_documented_in_config_md();
  for (const std::string& key : handled)
    EXPECT_EQ(documented.count(key), 1u)
        << "config key '" << key
        << "' is handled in src/config/apply.cpp but not documented in "
           "docs/CONFIG.md";
}

TEST(ConfigDocSync, EveryDocumentedKeyIsHandled) {
  const std::set<std::string> handled = keys_handled_by_apply_cpp();
  const std::set<std::string> documented = keys_documented_in_config_md();
  for (const std::string& key : documented)
    EXPECT_EQ(handled.count(key), 1u)
        << "docs/CONFIG.md documents '" << key
        << "' which src/config/apply.cpp does not handle (stale doc?)";
}

TEST(ConfigDocSync, DocumentedSectionsMatchKnownSections) {
  for (const std::string& key : keys_handled_by_apply_cpp())
    EXPECT_EQ(config_sections().count(section_of(key)), 1u)
        << "apply.cpp introduced section '" << section_of(key)
        << "' -- teach tests/test_docs_sync.cpp and docs/CONFIG.md about it";
}

}  // namespace
