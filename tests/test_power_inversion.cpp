// Tests for temperature-to-power inversion (attack/power_inversion.hpp).
#include "attack/power_inversion.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "leakage/pearson.hpp"

namespace tsc3d::attack {
namespace {

/// A power map with a few well-separated blocks, like a floorplan.
GridD blocky_power(std::size_t n, Rng& rng) {
  GridD p(n, n, 0.05);
  const std::size_t block = n / 4;
  for (int b = 0; b < 4; ++b) {
    const std::size_t bx = rng.index(n - block);
    const std::size_t by = rng.index(n - block);
    const double level = rng.uniform(0.5, 2.0);
    for (std::size_t iy = by; iy < by + block; ++iy)
      for (std::size_t ix = bx; ix < bx + block; ++ix)
        p.at(ix, iy) += level;
  }
  return p;
}

TEST(Diffuse, PreservesTotalEnergyInInterior) {
  // The normalized kernel conserves the sum for a source away from the
  // borders (replicate padding only distorts near edges).
  GridD p(32, 32, 0.0);
  p.at(16, 16) = 10.0;
  const GridD t = diffuse(p, 2.0, 6);
  EXPECT_NEAR(t.sum(), 10.0, 1e-6);
}

TEST(Diffuse, SmoothsPeaks) {
  GridD p(16, 16, 0.0);
  p.at(8, 8) = 1.0;
  const GridD t = diffuse(p, 1.5, 4);
  EXPECT_LT(t.max(), 1.0);
  EXPECT_GT(t.at(8, 8), t.at(0, 0));
}

TEST(Diffuse, InvalidArgsThrow) {
  const GridD p(4, 4, 1.0);
  EXPECT_THROW((void)diffuse(p, 0.0, 3), std::invalid_argument);
  EXPECT_THROW((void)diffuse(p, -1.0, 3), std::invalid_argument);
  EXPECT_THROW((void)diffuse(p, 1.0, 0), std::invalid_argument);
}

TEST(InvertPower, RecoversBlockyMapFromItsOwnForwardModel) {
  // When the attacker's kernel assumption is exact, inversion must
  // recover the power map almost perfectly (modulo regularization bias).
  Rng rng(21);
  const GridD p = blocky_power(32, rng);
  const GridD t = diffuse(p, 2.0, 6);
  InversionOptions opt;
  opt.kernel_sigma_bins = 2.0;
  const auto result = invert_power(t, opt);
  EXPECT_GT(inversion_correlation(p, result.power_estimate), 0.9);
}

TEST(InvertPower, BeatsRawThermalCorrelation) {
  // The whole point of inversion: the estimate correlates with power
  // better than the blurred thermal map itself does.
  Rng rng(22);
  const GridD p = blocky_power(32, rng);
  const GridD t = diffuse(p, 3.0, 9);
  InversionOptions opt;
  opt.kernel_sigma_bins = 3.0;
  opt.kernel_radius = 9;
  const auto result = invert_power(t, opt);
  const double raw = leakage::pearson(p, t);
  const double inverted = inversion_correlation(p, result.power_estimate);
  EXPECT_GT(inverted, raw);
}

TEST(InvertPower, WrongKernelAssumptionDegradesRecovery) {
  // The paper's mitigation rests on breaking the attacker's homogeneous
  // diffusion assumption.  Model that directly: blur each half of the map
  // with a very different kernel (heterogeneous heat paths) and invert
  // with a single homogeneous kernel.
  Rng rng(23);
  const GridD p = blocky_power(32, rng);
  const GridD t_homogeneous = diffuse(p, 2.0, 6);

  GridD left = p, right = p;
  const GridD l_blur = diffuse(left, 1.0, 6);
  const GridD r_blur = diffuse(right, 5.0, 15);
  GridD t_heterogeneous(p.nx(), p.ny());
  for (std::size_t iy = 0; iy < p.ny(); ++iy)
    for (std::size_t ix = 0; ix < p.nx(); ++ix)
      t_heterogeneous.at(ix, iy) =
          ix < p.nx() / 2 ? l_blur.at(ix, iy) : r_blur.at(ix, iy);

  InversionOptions opt;
  opt.kernel_sigma_bins = 2.0;
  const double good = inversion_correlation(
      p, invert_power(t_homogeneous, opt).power_estimate);
  const double bad = inversion_correlation(
      p, invert_power(t_heterogeneous, opt).power_estimate);
  EXPECT_GT(good, bad);
}

TEST(InvertPower, EstimateIsNonNegative) {
  Rng rng(24);
  GridD t(16, 16);
  for (auto& v : t) v = rng.uniform(300.0, 310.0);
  const auto result = invert_power(t);
  EXPECT_GE(result.power_estimate.min(), 0.0);
}

TEST(InvertPower, OffsetInvariant) {
  // Adding a constant (ambient shift) must not change the estimate.
  Rng rng(25);
  const GridD p = blocky_power(16, rng);
  GridD t = diffuse(p, 1.5, 4);
  GridD t_shifted = t;
  for (auto& v : t_shifted) v += 293.0;
  InversionOptions opt;
  opt.kernel_sigma_bins = 1.5;
  opt.kernel_radius = 4;
  const auto a = invert_power(t, opt);
  const auto b = invert_power(t_shifted, opt);
  for (std::size_t i = 0; i < a.power_estimate.size(); ++i)
    EXPECT_NEAR(a.power_estimate[i], b.power_estimate[i], 1e-9);
}

TEST(InvertPower, MoreIterationsReduceResidual) {
  Rng rng(26);
  const GridD p = blocky_power(16, rng);
  const GridD t = diffuse(p, 1.5, 4);
  InversionOptions few, many;
  few.iterations = 10;
  many.iterations = 400;
  EXPECT_GE(invert_power(t, few).residual_norm,
            invert_power(t, many).residual_norm);
}

TEST(InvertPower, StrongerSmoothingFlattensEstimate) {
  Rng rng(27);
  const GridD p = blocky_power(16, rng);
  const GridD t = diffuse(p, 1.5, 4);
  InversionOptions none, strong;
  none.lambda_smooth = 0.0;
  strong.lambda_smooth = 5.0;
  const GridD sharp = invert_power(t, none).power_estimate;
  const GridD flat = invert_power(t, strong).power_estimate;
  EXPECT_LT(flat.max() - flat.min(), sharp.max() - sharp.min());
}

TEST(InvertPower, InvalidInputsThrow) {
  EXPECT_THROW((void)invert_power(GridD{}), std::invalid_argument);
  GridD t(4, 4, 300.0);
  InversionOptions opt;
  opt.kernel_sigma_bins = 0.0;
  EXPECT_THROW((void)invert_power(t, opt), std::invalid_argument);
  opt.kernel_sigma_bins = 1.0;
  opt.kernel_radius = 0;
  EXPECT_THROW((void)invert_power(t, opt), std::invalid_argument);
}

TEST(InvertPower, ConstantMapYieldsZeroEstimate) {
  const GridD t(8, 8, 300.0);
  const auto result = invert_power(t);
  EXPECT_NEAR(result.power_estimate.max(), 0.0, 1e-12);
}

class InversionSigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(InversionSigmaSweep, MatchedKernelRecoversAcrossWidths) {
  Rng rng(31);
  const GridD p = blocky_power(32, rng);
  const double sigma = GetParam();
  const auto radius = static_cast<std::size_t>(3.0 * sigma) + 1;
  const GridD t = diffuse(p, sigma, radius);
  InversionOptions opt;
  opt.kernel_sigma_bins = sigma;
  opt.kernel_radius = radius;
  const auto result = invert_power(t, opt);
  EXPECT_GT(inversion_correlation(p, result.power_estimate), 0.85)
      << "sigma=" << sigma;
}

INSTANTIATE_TEST_SUITE_P(Sigmas, InversionSigmaSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace tsc3d::attack
