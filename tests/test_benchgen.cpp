// Tests of the Table 1 specs and the synthetic benchmark generator.
#include <gtest/gtest.h>

#include <set>

#include "benchgen/generator.hpp"

namespace tsc3d::benchgen {
namespace {

TEST(BenchmarkSpec, TableOneHasSixRows) {
  EXPECT_EQ(table1_specs().size(), 6u);
}

TEST(BenchmarkSpec, LookupByName) {
  const BenchmarkSpec& s = spec_by_name("ibm03");
  EXPECT_EQ(s.hard_modules, 290u);
  EXPECT_EQ(s.soft_modules, 999u);
  EXPECT_EQ(s.num_nets, 10279u);
  EXPECT_DOUBLE_EQ(s.power_w, 19.78);
}

TEST(BenchmarkSpec, UnknownNameThrows) {
  EXPECT_THROW((void)spec_by_name("n999"), std::out_of_range);
}

TEST(BenchmarkSpec, DieEdgeFromOutline) {
  EXPECT_NEAR(spec_by_name("n100").die_edge_um(), 4000.0, 1e-9);
  EXPECT_NEAR(spec_by_name("ibm03").die_edge_um(), 8000.0, 1e-9);
}

class GeneratorMatchesSpec : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorMatchesSpec, CountsAndPower) {
  const BenchmarkSpec& spec = spec_by_name(GetParam());
  const Floorplan3D fp = generate(spec, 1);
  EXPECT_EQ(fp.modules().size(), spec.total_modules());
  EXPECT_EQ(fp.nets().size(), spec.num_nets);
  EXPECT_EQ(fp.terminals().size(), spec.num_terminals);
  // Total nominal power at 1.0 V matches the Table 1 column.
  double power = 0.0;
  for (const Module& m : fp.modules()) power += m.power_w;
  EXPECT_NEAR(power, spec.power_w, 1e-6);
  // Hard/soft split.
  std::size_t hard = 0;
  for (const Module& m : fp.modules()) hard += m.soft ? 0 : 1;
  EXPECT_EQ(hard, spec.hard_modules);
  // Outline.
  EXPECT_NEAR(fp.tech().die_width_um, spec.die_edge_um(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, GeneratorMatchesSpec,
                         ::testing::Values("n100", "n200", "n300", "ibm01",
                                           "ibm03", "ibm07"));

TEST(Generator, DeterministicForSameSeed) {
  const Floorplan3D a = generate("n100", 7);
  const Floorplan3D b = generate("n100", 7);
  ASSERT_EQ(a.modules().size(), b.modules().size());
  for (std::size_t i = 0; i < a.modules().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.modules()[i].area_um2, b.modules()[i].area_um2);
    EXPECT_DOUBLE_EQ(a.modules()[i].power_w, b.modules()[i].power_w);
  }
  ASSERT_EQ(a.nets().size(), b.nets().size());
  for (std::size_t i = 0; i < a.nets().size(); ++i)
    EXPECT_EQ(a.nets()[i].pins.size(), b.nets()[i].pins.size());
}

TEST(Generator, DifferentSeedsDiffer) {
  const Floorplan3D a = generate("n100", 1);
  const Floorplan3D b = generate("n100", 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.modules().size(); ++i)
    any_diff |= a.modules()[i].area_um2 != b.modules()[i].area_um2;
  EXPECT_TRUE(any_diff);
}

TEST(Generator, UtilizationNearTarget) {
  GeneratorOptions opt;
  opt.target_utilization = 0.55;
  const Floorplan3D fp = generate("n100", 3, opt);
  double area = 0.0;
  for (const Module& m : fp.modules()) area += m.area_um2;
  const double util = area / (2.0 * fp.tech().die_area_um2());
  EXPECT_NEAR(util, 0.55, 1e-9);
}

TEST(Generator, NetDegreesAtLeastTwo) {
  const Floorplan3D fp = generate("n200", 4);
  for (const Net& n : fp.nets()) EXPECT_GE(n.pins.size(), 2u);
}

TEST(Generator, NetPinsReferenceValidObjects) {
  const Floorplan3D fp = generate("ibm01", 5);
  for (const Net& n : fp.nets()) {
    for (const NetPin& p : n.pins) {
      if (p.is_terminal()) {
        EXPECT_LT(p.terminal, fp.terminals().size());
      } else {
        EXPECT_LT(p.module, fp.modules().size());
      }
    }
  }
}

TEST(Generator, NoDuplicateModulePinsWithinNet) {
  const Floorplan3D fp = generate("n100", 6);
  for (const Net& n : fp.nets()) {
    std::set<std::size_t> seen;
    for (const NetPin& p : n.pins) {
      if (p.is_terminal()) continue;
      EXPECT_TRUE(seen.insert(p.module).second)
          << "net " << n.id << " repeats module " << p.module;
    }
  }
}

TEST(Generator, TerminalsOnBoundary) {
  const Floorplan3D fp = generate("n100", 8);
  const Rect o = fp.outline();
  for (const Terminal& t : fp.terminals()) {
    const bool on_edge = t.position.x == o.x || t.position.x == o.right() ||
                         t.position.y == o.y || t.position.y == o.top();
    EXPECT_TRUE(on_edge) << t.name;
  }
}

TEST(Generator, HardModulesHaveFixedAspect) {
  const Floorplan3D fp = generate("ibm01", 9);
  for (const Module& m : fp.modules()) {
    if (!m.soft) {
      EXPECT_DOUBLE_EQ(m.min_aspect, m.max_aspect);
    }
  }
}

TEST(Generator, PowerRegimesProduceDensitySpread) {
  // The generator should produce clearly distinct power densities
  // (hot crypto cores vs cool glue logic), not a uniform smear.
  const Floorplan3D fp = generate("n100", 10);
  double lo = 1e300, hi = 0.0;
  for (const Module& m : fp.modules()) {
    const double d = m.power_w / m.area_um2;
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GT(hi / lo, 3.0);
}

}  // namespace
}  // namespace tsc3d::benchgen
