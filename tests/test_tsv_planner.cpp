// Tests of signal-TSV planning and the Fig. 2 pattern generators.
#include <gtest/gtest.h>

#include "tsv/planner.hpp"

namespace tsc3d::tsv {
namespace {

Floorplan3D stacked_design() {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 2000.0;
  Floorplan3D fp(tech);
  for (int i = 0; i < 4; ++i) {
    Module m;
    m.name = "m" + std::to_string(i);
    m.shape = {100.0 + 400.0 * i, 100.0, 300.0, 300.0};
    m.area_um2 = 9e4;
    m.die = static_cast<std::size_t>(i % 2);
    fp.modules().push_back(m);
  }
  // Net 0 crosses dies (m0 on die 0, m1 on die 1); net 1 stays on die 0.
  Net n0;
  n0.id = 0;
  n0.pins.push_back({0, kInvalidIndex});
  n0.pins.push_back({1, kInvalidIndex});
  fp.nets().push_back(n0);
  Net n1;
  n1.id = 1;
  n1.pins.push_back({0, kInvalidIndex});
  n1.pins.push_back({2, kInvalidIndex});
  fp.nets().push_back(n1);
  return fp;
}

TEST(TsvPlanner, OnlyCrossingNetsGetTsvs) {
  Floorplan3D fp = stacked_design();
  const PlanResult res = place_signal_tsvs(fp);
  EXPECT_EQ(res.crossing_nets, 1u);
  EXPECT_EQ(res.tsvs_placed, 1u);
  ASSERT_EQ(fp.tsvs().size(), 1u);
  EXPECT_EQ(fp.tsvs()[0].net, 0u);
  EXPECT_EQ(fp.tsvs()[0].kind, TsvKind::signal);
}

TEST(TsvPlanner, TsvAtNetBoundingBoxCenter) {
  Floorplan3D fp = stacked_design();
  place_signal_tsvs(fp);
  // m0 center (250,250), m1 center (650,250) -> TSV at (450,250).
  EXPECT_NEAR(fp.tsvs()[0].position.x, 450.0, 1e-9);
  EXPECT_NEAR(fp.tsvs()[0].position.y, 250.0, 1e-9);
}

TEST(TsvPlanner, ReplanningIsIdempotent) {
  Floorplan3D fp = stacked_design();
  place_signal_tsvs(fp);
  place_signal_tsvs(fp);
  EXPECT_EQ(fp.tsvs().size(), 1u);
}

TEST(TsvPlanner, DummyTsvsSurviveReplanning) {
  Floorplan3D fp = stacked_design();
  Tsv dummy;
  dummy.kind = TsvKind::dummy;
  dummy.count = 8;
  fp.tsvs().push_back(dummy);
  place_signal_tsvs(fp);
  EXPECT_EQ(fp.tsv_count(TsvKind::dummy), 8u);
  EXPECT_EQ(fp.tsv_count(TsvKind::signal), 1u);
}

TEST(TsvPlanner, IslandClusteringMergesNearbyTsvs) {
  Floorplan3D fp = stacked_design();
  // Make both nets cross by moving m2 to die 1.
  fp.modules()[2].die = 1;
  PlannerOptions opt;
  opt.island_grid = 1;  // single cluster cell: everything merges
  const PlanResult res = place_signal_tsvs(fp, opt);
  EXPECT_EQ(res.crossing_nets, 2u);
  EXPECT_EQ(res.islands, 1u);
  EXPECT_EQ(res.tsvs_placed, 2u);
  ASSERT_EQ(fp.tsvs().size(), 1u);
  EXPECT_EQ(fp.tsvs()[0].count, 2u);
}

TEST(TsvPlanner, TsvsStayWithinOutline) {
  Floorplan3D fp = stacked_design();
  // Put the crossing modules at the chip corner so the bbox center would
  // land near the boundary.
  fp.modules()[0].shape = {0.0, 0.0, 50.0, 50.0};
  fp.modules()[1].shape = {0.0, 0.0, 50.0, 50.0};
  place_signal_tsvs(fp);
  const Rect o = fp.outline();
  for (const Tsv& t : fp.tsvs()) {
    EXPECT_TRUE(o.contains(t.position));
    EXPECT_GT(t.position.x, 0.0);
    EXPECT_GT(t.position.y, 0.0);
  }
}

TEST(TsvPatterns, RegularGridCount) {
  Floorplan3D fp = stacked_design();
  clear_tsvs(fp, TsvKind::signal);
  add_regular_grid(fp, 5, 4);
  EXPECT_EQ(fp.tsv_count(TsvKind::signal), 20u);
}

TEST(TsvPatterns, IrregularCountAndBounds) {
  Floorplan3D fp = stacked_design();
  clear_tsvs(fp, TsvKind::signal);
  Rng rng(3);
  add_irregular(fp, 50, rng);
  EXPECT_EQ(fp.tsv_count(TsvKind::signal), 50u);
  for (const Tsv& t : fp.tsvs()) EXPECT_TRUE(fp.outline().contains(t.position));
}

TEST(TsvPatterns, IslandsCarryCounts) {
  Floorplan3D fp = stacked_design();
  clear_tsvs(fp, TsvKind::signal);
  Rng rng(4);
  add_islands(fp, 3, 25, rng);
  EXPECT_EQ(fp.tsvs().size(), 3u);
  EXPECT_EQ(fp.tsv_count(TsvKind::signal), 75u);
}

TEST(TsvPatterns, MaxDensityCoversMostOfTheDie) {
  Floorplan3D fp = stacked_design();
  clear_tsvs(fp, TsvKind::signal);
  fill_max_density(fp);
  const GridD d = fp.tsv_density_map(16, 16);
  EXPECT_GT(d.mean(), 0.8);
}

TEST(TsvPatterns, ClearRemovesOnlyRequestedKind) {
  Floorplan3D fp = stacked_design();
  place_signal_tsvs(fp);
  Tsv dummy;
  dummy.kind = TsvKind::dummy;
  fp.tsvs().push_back(dummy);
  clear_tsvs(fp, TsvKind::signal);
  EXPECT_EQ(fp.tsv_count(TsvKind::signal), 0u);
  EXPECT_EQ(fp.tsvs().size(), 1u);
}

}  // namespace
}  // namespace tsc3d::tsv
