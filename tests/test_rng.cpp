#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tsc3d {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a() != b());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 5; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(a(), first[static_cast<size_t>(i)]);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(6);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7000; ++i) ++seen[rng.index(7)];
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, IndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaling) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(5.0, 2.0);
    sum += g;
    sum2 += (g - 5.0) * (g - 5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum2 / n), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace tsc3d
