// Tests for the B*-tree representation (floorplan/btree.hpp): packing
// admissibility, move validity, and local-search behaviour.
#include "floorplan/btree.hpp"

#include <gtest/gtest.h>

namespace tsc3d::floorplan {
namespace {

std::vector<double> random_extents(std::size_t n, Rng& rng, double lo,
                                   double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

bool no_overlaps(const std::vector<PackedBlock>& blocks) {
  for (std::size_t i = 0; i < blocks.size(); ++i)
    for (std::size_t j = i + 1; j < blocks.size(); ++j)
      if (blocks[i].shape.overlaps(blocks[j].shape)) return false;
  return true;
}

TEST(BTree, ChainPacksInARow) {
  BTree tree(4);
  const std::vector<double> w{10, 20, 30, 40}, h{5, 5, 5, 5};
  double bw = 0, bh = 0;
  const auto blocks = tree.pack(w, h, bw, bh);
  EXPECT_DOUBLE_EQ(bw, 100.0);
  EXPECT_DOUBLE_EQ(bh, 5.0);
  // Left children pack to the right of their parents, in order.
  EXPECT_DOUBLE_EQ(blocks[0].shape.x, 0.0);
  EXPECT_DOUBLE_EQ(blocks[1].shape.x, 10.0);
  EXPECT_DOUBLE_EQ(blocks[2].shape.x, 30.0);
  EXPECT_DOUBLE_EQ(blocks[3].shape.x, 60.0);
}

TEST(BTree, SingleModule) {
  BTree tree(1);
  double bw = 0, bh = 0;
  const auto blocks = tree.pack({7.0}, {3.0}, bw, bh);
  EXPECT_DOUBLE_EQ(bw, 7.0);
  EXPECT_DOUBLE_EQ(bh, 3.0);
  EXPECT_DOUBLE_EQ(blocks[0].shape.x, 0.0);
  EXPECT_DOUBLE_EQ(blocks[0].shape.y, 0.0);
}

TEST(BTree, EmptyThrows) { EXPECT_THROW(BTree tree(0), std::invalid_argument); }

TEST(BTree, ExtentMismatchThrows) {
  BTree tree(3);
  double bw = 0, bh = 0;
  EXPECT_THROW((void)tree.pack({1.0}, {1.0, 1.0, 1.0}, bw, bh),
               std::invalid_argument);
}

TEST(BTree, RandomTreesPackWithoutOverlap) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    BTree tree(12, rng);
    ASSERT_TRUE(tree.valid());
    const auto w = random_extents(12, rng, 5.0, 50.0);
    const auto h = random_extents(12, rng, 5.0, 50.0);
    double bw = 0, bh = 0;
    const auto blocks = tree.pack(w, h, bw, bh);
    EXPECT_TRUE(no_overlaps(blocks)) << "trial " << trial;
    // Every block inside the bounding box; area lower bound respected.
    double module_area = 0.0;
    for (const auto& b : blocks) {
      EXPECT_GE(b.shape.x, 0.0);
      EXPECT_GE(b.shape.y, 0.0);
      EXPECT_LE(b.shape.right(), bw + 1e-9);
      EXPECT_LE(b.shape.top(), bh + 1e-9);
      module_area += b.shape.area();
    }
    EXPECT_GE(bw * bh, module_area - 1e-9);
  }
}

TEST(BTree, MovesPreserveValidityAndPackability) {
  Rng rng(7);
  BTree tree(16, rng);
  const auto w = random_extents(16, rng, 5.0, 40.0);
  const auto h = random_extents(16, rng, 5.0, 40.0);
  for (int k = 0; k < 500; ++k) {
    if (rng.bernoulli(0.5))
      tree.swap_random(rng);
    else
      tree.move_random(rng);
    ASSERT_TRUE(tree.valid()) << "after move " << k;
  }
  double bw = 0, bh = 0;
  const auto blocks = tree.pack(w, h, bw, bh);
  EXPECT_TRUE(no_overlaps(blocks));
}

TEST(BTree, PackIsDeterministic) {
  Rng rng(9);
  BTree tree(10, rng);
  const auto w = random_extents(10, rng, 5.0, 30.0);
  const auto h = random_extents(10, rng, 5.0, 30.0);
  double bw1 = 0, bh1 = 0, bw2 = 0, bh2 = 0;
  const auto a = tree.pack(w, h, bw1, bh1);
  const auto b = tree.pack(w, h, bw2, bh2);
  EXPECT_DOUBLE_EQ(bw1, bw2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].shape.x, b[i].shape.x);
    EXPECT_DOUBLE_EQ(a[i].shape.y, b[i].shape.y);
  }
}

TEST(BTree, OptimizeReducesDeadSpace) {
  Rng rng(11);
  BTree tree(20, rng);
  const auto w = random_extents(20, rng, 5.0, 50.0);
  const auto h = random_extents(20, rng, 5.0, 50.0);
  double bw = 0, bh = 0;
  (void)tree.pack(w, h, bw, bh);
  const double initial_area = bw * bh;
  const auto quality = optimize_btree(tree, w, h, 2000, rng);
  EXPECT_LE(quality.bbox_area, initial_area);
  EXPECT_GE(quality.dead_space(), 0.0);
  EXPECT_LT(quality.dead_space(), 0.5);
  // The returned tree is the best one found.
  (void)tree.pack(w, h, bw, bh);
  EXPECT_NEAR(bw * bh, quality.bbox_area, 1e-9);
}

class BTreeSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BTreeSizeSweep, AdmissibleAcrossSizes) {
  Rng rng(GetParam());
  BTree tree(GetParam(), rng);
  const auto w = random_extents(GetParam(), rng, 1.0, 100.0);
  const auto h = random_extents(GetParam(), rng, 1.0, 100.0);
  double bw = 0, bh = 0;
  const auto blocks = tree.pack(w, h, bw, bh);
  EXPECT_TRUE(no_overlaps(blocks));
  EXPECT_TRUE(tree.valid());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40, 100));

}  // namespace
}  // namespace tsc3d::floorplan
