// Tests of the correlation-driven dummy-TSV insertion loop (Sec. 6.2).
#include <gtest/gtest.h>

#include "tsv/dummy_inserter.hpp"

namespace tsc3d::tsv {
namespace {

/// A deliberately leaky design: a strong isolated hotspot on die 0 whose
/// thermal response tracks its power closely.
Floorplan3D leaky_design() {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 2000.0;
  Floorplan3D fp(tech);
  auto add = [&](const char* name, Rect r, double p, std::size_t die) {
    Module m;
    m.name = name;
    m.shape = r;
    m.area_um2 = r.area();
    m.power_w = p;
    m.die = die;
    fp.modules().push_back(m);
  };
  add("hot", {1400, 1400, 400, 400}, 2.0, 0);
  add("a", {100, 100, 600, 600}, 0.3, 0);
  add("b", {100, 900, 600, 600}, 0.3, 0);
  add("top0", {200, 200, 700, 700}, 0.5, 1);
  add("top1", {1100, 1100, 700, 700}, 0.5, 1);
  return fp;
}

ThermalConfig sampling_cfg() {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = 16;
  return c;
}

TEST(DummyInserter, ReducesAverageCorrelation) {
  Floorplan3D fp = leaky_design();
  const thermal::GridSolver solver(fp.tech(), sampling_cfg());
  Rng rng(42);
  DummyInsertOptions opt;
  opt.samples_per_iteration = 8;
  opt.max_iterations = 6;
  opt.islands_per_iteration = 2;
  opt.tsvs_per_island = 32;
  const DummyInsertResult res = insert_dummy_tsvs(fp, solver, rng, opt);
  // The stop criterion guarantees the final correlation never exceeds
  // the starting one.
  EXPECT_LE(res.correlation_after, res.correlation_before + 1e-9);
  // On this leaky design at least one batch must help.
  EXPECT_GT(res.tsvs_inserted, 0u);
  EXPECT_EQ(fp.tsv_count(TsvKind::dummy), res.tsvs_inserted);
}

TEST(DummyInserter, HistoryTracksIterations) {
  Floorplan3D fp = leaky_design();
  const thermal::GridSolver solver(fp.tech(), sampling_cfg());
  Rng rng(1);
  DummyInsertOptions opt;
  opt.samples_per_iteration = 6;
  opt.max_iterations = 3;
  const DummyInsertResult res = insert_dummy_tsvs(fp, solver, rng, opt);
  EXPECT_EQ(res.correlation_history.size(), res.iterations + 1);
  EXPECT_LE(res.iterations, 3u);
}

TEST(DummyInserter, RollsBackPastSweetSpot) {
  // With the chip already saturated in TSVs, more dummies can't help; the
  // loop must stop quickly and leave few (or no) extra TSVs behind.
  Floorplan3D fp = leaky_design();
  Tsv blanket;
  blanket.position = {1000.0, 1000.0};
  blanket.count = 40000;  // covers everything
  blanket.kind = TsvKind::signal;
  fp.tsvs().push_back(blanket);
  const thermal::GridSolver solver(fp.tech(), sampling_cfg());
  Rng rng(2);
  DummyInsertOptions opt;
  opt.samples_per_iteration = 6;
  opt.max_iterations = 5;
  opt.saturation = 0.9;
  const DummyInsertResult res = insert_dummy_tsvs(fp, solver, rng, opt);
  EXPECT_LE(res.iterations, 2u);
}

TEST(DummyInserter, FocusRegionsRestrictPlacement) {
  Floorplan3D fp = leaky_design();
  const thermal::GridSolver solver(fp.tech(), sampling_cfg());
  Rng rng(3);
  DummyInsertOptions opt;
  opt.samples_per_iteration = 6;
  opt.max_iterations = 4;
  const Rect focus{1200.0, 1200.0, 800.0, 800.0};  // around the hotspot
  opt.focus_regions.push_back(focus);
  (void)insert_dummy_tsvs(fp, solver, rng, opt);
  for (const Tsv& t : fp.tsvs()) {
    if (t.kind == TsvKind::dummy) {
      EXPECT_TRUE(focus.contains(t.position));
    }
  }
}

TEST(DummyInserter, RejectsTooFewSamples) {
  Floorplan3D fp = leaky_design();
  const thermal::GridSolver solver(fp.tech(), sampling_cfg());
  Rng rng(4);
  DummyInsertOptions opt;
  opt.samples_per_iteration = 1;
  EXPECT_THROW(insert_dummy_tsvs(fp, solver, rng, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsc3d::tsv
