// Tests of the sensor model and the thermal side-channel attacks.
#include <gtest/gtest.h>

#include "attack/attacks.hpp"

namespace tsc3d::attack {
namespace {

/// Four well-separated, strongly powered modules: a very leaky target.
Floorplan3D leaky_design() {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 2000.0;
  Floorplan3D fp(tech);
  const double positions[4][2] = {
      {200, 200}, {1400, 200}, {200, 1400}, {1400, 1400}};
  for (int i = 0; i < 4; ++i) {
    Module m;
    m.name = "m" + std::to_string(i);
    m.shape = {positions[i][0], positions[i][1], 400.0, 400.0};
    m.area_um2 = 400.0 * 400.0;
    m.power_w = 1.0;
    m.die = 0;
    fp.modules().push_back(m);
  }
  return fp;
}

ThermalConfig small_cfg() {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = 16;
  return c;
}

TEST(SensorGrid, NoiselessReadingMatchesTruth) {
  SensorOptions opt;
  opt.noise_sigma_k = 0.0;
  const SensorGrid sensors(opt);
  GridD thermal(16, 16, 300.0);
  // Sensor sites on a 16-bin axis with 8 sensors sit at bins 1,3,...,15;
  // put the hotspot on a sampled bin.
  thermal.at(9, 9) = 310.0;
  Rng rng(1);
  const GridD readings = sensors.read(thermal, rng);
  EXPECT_EQ(readings.nx(), 8u);
  // The sensor covering the hotspot must see it.
  EXPECT_NEAR(readings.max(), 310.0, 1e-9);
  EXPECT_NEAR(readings.min(), 300.0, 1e-9);
}

TEST(SensorGrid, NoiseScalesWithAveraging) {
  SensorOptions noisy;
  noisy.noise_sigma_k = 1.0;
  noisy.reads_averaged = 1;
  SensorOptions averaged = noisy;
  averaged.reads_averaged = 16;
  const GridD thermal(16, 16, 300.0);
  auto stddev = [&](const SensorOptions& o, std::uint64_t seed) {
    const SensorGrid s(o);
    Rng rng(seed);
    double sum2 = 0.0;
    int n = 0;
    for (int rep = 0; rep < 200; ++rep) {
      const GridD r = s.read(thermal, rng);
      for (const double v : r) {
        sum2 += (v - 300.0) * (v - 300.0);
        ++n;
      }
    }
    return std::sqrt(sum2 / n);
  };
  EXPECT_NEAR(stddev(noisy, 2), 1.0, 0.05);
  EXPECT_NEAR(stddev(averaged, 3), 0.25, 0.02);
}

TEST(SensorGrid, ObserveReturnsFullResolution) {
  const SensorGrid sensors(SensorOptions{});
  const GridD thermal(32, 32, 305.0);
  Rng rng(4);
  const GridD view = sensors.observe(thermal, 32, 32, rng);
  EXPECT_EQ(view.nx(), 32u);
  EXPECT_EQ(view.ny(), 32u);
  EXPECT_NEAR(view.mean(), 305.0, 0.1);
}

TEST(SensorGrid, InvalidOptionsThrow) {
  SensorOptions bad;
  bad.sensors_x = 1;
  EXPECT_THROW(SensorGrid{bad}, std::invalid_argument);
  SensorOptions zero_reads;
  zero_reads.reads_averaged = 0;
  EXPECT_THROW(SensorGrid{zero_reads}, std::invalid_argument);
}

TEST(Attacks, LocalizationSucceedsOnLeakyDesign) {
  const Floorplan3D fp = leaky_design();
  const thermal::GridSolver solver(fp.tech(), small_cfg());
  Rng rng(5);
  AttackOptions opt;
  opt.max_modules = 4;
  opt.activity_boost = 2.0;
  opt.sensors.noise_sigma_k = 0.01;
  const LocalizationResult res =
      run_localization_attack(fp, solver, rng, opt);
  EXPECT_EQ(res.modules_tested, 4u);
  // Well-separated hotspots with low noise: the attacker wins.
  EXPECT_GE(res.success_rate(), 0.75);
  EXPECT_EQ(res.die_correct, 4u);
}

TEST(Attacks, HeavyNoiseDegradesLocalization) {
  const Floorplan3D fp = leaky_design();
  const thermal::GridSolver solver(fp.tech(), small_cfg());
  AttackOptions clean;
  clean.max_modules = 4;
  clean.activity_boost = 1.0;
  clean.sensors.noise_sigma_k = 0.001;
  AttackOptions noisy = clean;
  noisy.sensors.noise_sigma_k = 50.0;  // drown the signal
  Rng rng_a(6), rng_b(6);
  const double clean_err =
      run_localization_attack(fp, solver, rng_a, clean).mean_error_um;
  const double noisy_err =
      run_localization_attack(fp, solver, rng_b, noisy).mean_error_um;
  EXPECT_LT(clean_err, noisy_err);
}

TEST(Attacks, CharacterizationModelsLinearSystem) {
  const Floorplan3D fp = leaky_design();
  const thermal::GridSolver solver(fp.tech(), small_cfg());
  Rng rng(7);
  AttackOptions opt;
  opt.max_modules = 4;
  opt.test_patterns = 6;
  opt.pattern_modules = 2;
  opt.sensors.noise_sigma_k = 0.005;
  const CharacterizationResult res =
      run_characterization_attack(fp, solver, rng, opt);
  EXPECT_EQ(res.modules_profiled, 4u);
  // Steady-state conduction is linear: superposition must predict well.
  EXPECT_GT(res.r2, 0.9);
  EXPECT_GT(res.signature_separation, 0.0);
}

TEST(Attacks, MonitoringDistinguishesDistantModules) {
  const Floorplan3D fp = leaky_design();
  const thermal::GridSolver solver(fp.tech(), small_cfg());
  Rng rng(8);
  AttackOptions opt;
  opt.activity_boost = 2.0;
  opt.sensors.noise_sigma_k = 0.01;
  const MonitoringResult res =
      run_monitoring_attack(fp, solver, 0, 3, 20, rng, opt);
  EXPECT_EQ(res.trials, 20u);
  EXPECT_GE(res.accuracy(), 0.9);
}

TEST(Attacks, FixedSeedRepeatsBitwise) {
  // The campaign runner caches attack outcomes content-addressed by
  // seed, so a repeat with the same inputs must reproduce EVERY field
  // bitwise -- not approximately.
  const Floorplan3D fp = leaky_design();
  const thermal::GridSolver solver(fp.tech(), small_cfg());
  AttackOptions opt;
  opt.max_modules = 4;
  opt.activity_boost = 2.0;
  opt.test_patterns = 4;
  opt.pattern_modules = 2;
  opt.sensors.noise_sigma_k = 0.05;

  Rng la(21), lb(21);
  const LocalizationResult loc_a = run_localization_attack(fp, solver, la, opt);
  const LocalizationResult loc_b = run_localization_attack(fp, solver, lb, opt);
  EXPECT_EQ(loc_a.modules_tested, loc_b.modules_tested);
  EXPECT_EQ(loc_a.die_correct, loc_b.die_correct);
  EXPECT_EQ(loc_a.localized, loc_b.localized);
  EXPECT_EQ(loc_a.mean_error_um, loc_b.mean_error_um);

  Rng ca(22), cb(22);
  const CharacterizationResult ch_a =
      run_characterization_attack(fp, solver, ca, opt);
  const CharacterizationResult ch_b =
      run_characterization_attack(fp, solver, cb, opt);
  EXPECT_EQ(ch_a.r2, ch_b.r2);
  EXPECT_EQ(ch_a.signature_separation, ch_b.signature_separation);
  EXPECT_EQ(ch_a.modules_profiled, ch_b.modules_profiled);

  Rng ma(23), mb(23);
  const MonitoringResult mon_a =
      run_monitoring_attack(fp, solver, 0, 3, 10, ma, opt);
  const MonitoringResult mon_b =
      run_monitoring_attack(fp, solver, 0, 3, 10, mb, opt);
  EXPECT_EQ(mon_a.trials, mon_b.trials);
  EXPECT_EQ(mon_a.correct, mon_b.correct);

  // And a different seed is a genuinely different experiment.  (r2 is
  // continuous in the noise realization; localization error can snap to
  // the same sensor bins across seeds and is no seed witness.)
  Rng other(24);
  const CharacterizationResult ch_c =
      run_characterization_attack(fp, solver, other, opt);
  EXPECT_NE(ch_a.r2, ch_c.r2);
}

TEST(Attacks, MonitoringAtChanceUnderExtremeNoise) {
  const Floorplan3D fp = leaky_design();
  const thermal::GridSolver solver(fp.tech(), small_cfg());
  Rng rng(9);
  AttackOptions opt;
  opt.activity_boost = 0.01;        // barely any signal
  opt.sensors.noise_sigma_k = 100.0;  // huge noise
  const MonitoringResult res =
      run_monitoring_attack(fp, solver, 0, 1, 30, rng, opt);
  EXPECT_GE(res.accuracy(), 0.2);
  EXPECT_LE(res.accuracy(), 0.8);
}

}  // namespace
}  // namespace tsc3d::attack
