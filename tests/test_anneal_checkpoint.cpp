// Durable annealing checkpoints (exploration_checkpoint.hpp): the crash
// contract is that a flow resumed from ANY stage-boundary snapshot must
// be BITWISE-identical -- final placement, TSVs, metrics, and RNG
// stream position -- to the uninterrupted run, because checkpoints
// capture the complete annealing state (layout, RNG, cost normalizers,
// stage counters, thermal warm field, per-chain tempering state).
//
// Covered paths: classic single chain, batched candidate evaluation
// (k > 1), and parallel tempering; plus the observer property (saving
// checkpoints perturbs nothing) and the resume-at-final-stage edge.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "benchgen/generator.hpp"
#include "floorplan/exploration_checkpoint.hpp"
#include "floorplan/floorplanner.hpp"

namespace tsc3d::floorplan {
namespace {

Floorplan3D small_instance(std::uint64_t seed) {
  benchgen::BenchmarkSpec spec;
  spec.name = "tiny";
  spec.soft_modules = 16;
  spec.num_nets = 28;
  spec.num_terminals = 6;
  spec.outline_mm2 = 4.0;
  spec.power_w = 2.0;
  return benchgen::generate(spec, seed);
}

FloorplannerOptions fast_options() {
  FloorplannerOptions o = Floorplanner::power_aware_setup();
  o.anneal.total_moves = 5000;
  o.anneal.stages = 10;
  o.anneal.full_eval_interval = 100;
  o.fast_grid = 16;
  o.verify_grid = 24;
  o.sampling_grid = 16;
  o.blur_radius = 5;
  return o;
}

struct RunOutcome {
  FloorplanMetrics metrics;
  Floorplan3D fp;
  Rng::State rng;
};

/// Run the flow, optionally recording every checkpoint and/or resuming
/// from one.
RunOutcome run_flow(const FloorplannerOptions& opt, std::uint64_t seed,
                    std::vector<ExplorationCheckpoint>* record,
                    const ExplorationCheckpoint* resume) {
  RunOutcome out;
  out.fp = small_instance(seed);
  Rng rng(seed);
  const Floorplanner planner(opt);
  if (record == nullptr && resume == nullptr) {
    out.metrics = planner.run(out.fp, rng);
  } else {
    ExplorationHooks hooks;
    hooks.checkpoint_interval = 1;
    if (record != nullptr)
      hooks.save = [record](const ExplorationCheckpoint& ck) {
        record->push_back(ck);
      };
    hooks.resume = resume;
    out.metrics = planner.run(out.fp, rng, hooks);
  }
  out.rng = rng.state();
  return out;
}

/// Bitwise comparison of everything a crash must not change.  runtime_s
/// is wall-clock and deliberately excluded.
void expect_bitwise_equal(const RunOutcome& a, const RunOutcome& b) {
  ASSERT_EQ(a.fp.modules().size(), b.fp.modules().size());
  for (std::size_t i = 0; i < a.fp.modules().size(); ++i) {
    const Module& ma = a.fp.modules()[i];
    const Module& mb = b.fp.modules()[i];
    EXPECT_EQ(ma.die, mb.die) << "module " << i;
    EXPECT_EQ(ma.shape.x, mb.shape.x) << "module " << i;
    EXPECT_EQ(ma.shape.y, mb.shape.y) << "module " << i;
    EXPECT_EQ(ma.shape.w, mb.shape.w) << "module " << i;
    EXPECT_EQ(ma.shape.h, mb.shape.h) << "module " << i;
    EXPECT_EQ(ma.voltage_index, mb.voltage_index) << "module " << i;
  }
  ASSERT_EQ(a.fp.tsvs().size(), b.fp.tsvs().size());
  for (std::size_t i = 0; i < a.fp.tsvs().size(); ++i) {
    EXPECT_EQ(a.fp.tsvs()[i].position.x, b.fp.tsvs()[i].position.x);
    EXPECT_EQ(a.fp.tsvs()[i].position.y, b.fp.tsvs()[i].position.y);
    EXPECT_EQ(a.fp.tsvs()[i].count, b.fp.tsvs()[i].count);
  }
  EXPECT_EQ(a.fp.tech().clock_period_ns, b.fp.tech().clock_period_ns);
  EXPECT_EQ(a.metrics.legal, b.metrics.legal);
  EXPECT_EQ(a.metrics.correlation, b.metrics.correlation);
  EXPECT_EQ(a.metrics.entropy, b.metrics.entropy);
  EXPECT_EQ(a.metrics.power_w, b.metrics.power_w);
  EXPECT_EQ(a.metrics.critical_delay_ns, b.metrics.critical_delay_ns);
  EXPECT_EQ(a.metrics.wirelength_m, b.metrics.wirelength_m);
  EXPECT_EQ(a.metrics.peak_k, b.metrics.peak_k);
  EXPECT_EQ(a.metrics.signal_tsvs, b.metrics.signal_tsvs);
  EXPECT_EQ(a.metrics.dummy_tsvs, b.metrics.dummy_tsvs);
  EXPECT_EQ(a.metrics.voltage_volumes, b.metrics.voltage_volumes);
  EXPECT_EQ(a.metrics.anneal.moves, b.metrics.anneal.moves);
  EXPECT_EQ(a.metrics.anneal.accepted, b.metrics.anneal.accepted);
  EXPECT_EQ(a.metrics.anneal.best_cost, b.metrics.anneal.best_cost);
  EXPECT_TRUE(a.rng == b.rng) << "final RNG stream positions differ";
}

/// The shared scenario: reference run, observed run (checkpoints saved,
/// must equal the reference), then a resume from a mid-run snapshot.
void check_resume_bitwise(const FloorplannerOptions& opt,
                          std::uint64_t seed) {
  const RunOutcome reference = run_flow(opt, seed, nullptr, nullptr);

  std::vector<ExplorationCheckpoint> snapshots;
  const RunOutcome observed = run_flow(opt, seed, &snapshots, nullptr);
  ASSERT_GE(snapshots.size(), 3u);
  expect_bitwise_equal(reference, observed);  // saving must not perturb

  const ExplorationCheckpoint& mid = snapshots[snapshots.size() / 2];
  const RunOutcome resumed = run_flow(opt, seed, nullptr, &mid);
  expect_bitwise_equal(reference, resumed);
}

TEST(AnnealCheckpoint, ClassicPathResumesBitwise) {
  check_resume_bitwise(fast_options(), 7);
}

TEST(AnnealCheckpoint, BatchedPathResumesBitwise) {
  FloorplannerOptions opt = fast_options();
  opt.anneal.batch_candidates = 4;
  check_resume_bitwise(opt, 11);
}

TEST(AnnealCheckpoint, TemperingPathResumesBitwise) {
  FloorplannerOptions opt = fast_options();
  opt.chains.chains = 3;
  opt.chains.exchange_interval = 2;
  check_resume_bitwise(opt, 13);
}

TEST(AnnealCheckpoint, TransactionalOffResumesBitwise) {
  FloorplannerOptions opt = fast_options();
  opt.anneal.transactional = false;
  check_resume_bitwise(opt, 17);
}

TEST(AnnealCheckpoint, ResumeFromEveryEarlySnapshotMatches) {
  // Not just the midpoint: the first snapshots cover the coldest caches
  // (thermal warm field absent vs present, normalizers still settling).
  const FloorplannerOptions opt = fast_options();
  const RunOutcome reference = run_flow(opt, 23, nullptr, nullptr);
  std::vector<ExplorationCheckpoint> snapshots;
  (void)run_flow(opt, 23, &snapshots, nullptr);
  ASSERT_GE(snapshots.size(), 3u);
  for (std::size_t i : {std::size_t{0}, std::size_t{1}}) {
    const RunOutcome resumed = run_flow(opt, 23, nullptr, &snapshots[i]);
    expect_bitwise_equal(reference, resumed);
  }
}

TEST(AnnealCheckpoint, ResumeFromFinalSnapshotRunsZeroStages) {
  const FloorplannerOptions opt = fast_options();
  const RunOutcome reference = run_flow(opt, 29, nullptr, nullptr);
  std::vector<ExplorationCheckpoint> snapshots;
  (void)run_flow(opt, 29, &snapshots, nullptr);
  ASSERT_FALSE(snapshots.empty());
  const RunOutcome resumed =
      run_flow(opt, 29, nullptr, &snapshots.back());
  expect_bitwise_equal(reference, resumed);
  EXPECT_EQ(resumed.metrics.anneal.moves, reference.metrics.anneal.moves);
}

TEST(AnnealCheckpoint, ResumeRejectsChainShapeMismatch) {
  FloorplannerOptions opt = fast_options();
  std::vector<ExplorationCheckpoint> snapshots;
  (void)run_flow(opt, 31, &snapshots, nullptr);
  ASSERT_FALSE(snapshots.empty());
  // A single-chain snapshot fed to a tempering run (and vice versa)
  // must be rejected loudly, not silently misapplied.
  opt.chains.chains = 3;
  EXPECT_THROW((void)run_flow(opt, 31, nullptr, &snapshots.front()),
               std::invalid_argument);
}

TEST(AnnealCheckpoint, LayoutRestoreValidatesMembership) {
  LayoutStateImage img;
  img.tracked = false;
  img.positive = {{0, 1, 2}};
  img.negative = {{2, 0, 3}};  // 3 is not a member of positive
  img.width = {{10.0, 10.0, 10.0}};
  img.height = {{10.0, 10.0, 10.0}};
  img.die_of = {0, 0, 0};
  EXPECT_THROW((void)restore_layout(img), std::invalid_argument);
}

}  // namespace
}  // namespace tsc3d::floorplan
