#include "core/grid.hpp"

#include <gtest/gtest.h>

namespace tsc3d {
namespace {

TEST(Grid2D, ConstructionAndAccess) {
  Grid2D<double> g(4, 3, 1.5);
  EXPECT_EQ(g.nx(), 4u);
  EXPECT_EQ(g.ny(), 3u);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 1.5);
  g.at(2, 1) = 7.0;
  EXPECT_DOUBLE_EQ(g.at(2, 1), 7.0);
  // Row-major flat indexing: (ix, iy) -> iy * nx + ix.
  EXPECT_DOUBLE_EQ(g[1 * 4 + 2], 7.0);
}

TEST(Grid2D, ZeroDimensionThrows) {
  EXPECT_THROW(Grid2D<double>(0, 4), std::invalid_argument);
  EXPECT_THROW(Grid2D<double>(4, 0), std::invalid_argument);
}

TEST(Grid2D, Statistics) {
  GridD g(2, 2, 0.0);
  g.at(0, 0) = 1.0;
  g.at(1, 0) = 2.0;
  g.at(0, 1) = 3.0;
  g.at(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(g.min(), 1.0);
  EXPECT_DOUBLE_EQ(g.max(), 4.0);
  EXPECT_DOUBLE_EQ(g.sum(), 10.0);
  EXPECT_DOUBLE_EQ(g.mean(), 2.5);
}

TEST(Grid2D, Arithmetic) {
  GridD a(2, 2, 1.0);
  GridD b(2, 2, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.at(1, 1), 3.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
}

TEST(Grid2D, DimensionMismatchThrows) {
  GridD a(2, 2);
  GridD b(3, 2);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Grid2D, ResamplePreservesConstantField) {
  GridD src(8, 8, 3.25);
  const GridD dst = resample(src, 32, 32);
  EXPECT_EQ(dst.nx(), 32u);
  for (const double v : dst) EXPECT_NEAR(v, 3.25, 1e-12);
}

TEST(Grid2D, ResampleIdentity) {
  GridD src(4, 4);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<double>(i);
  const GridD same = resample(src, 4, 4);
  for (std::size_t i = 0; i < src.size(); ++i)
    EXPECT_NEAR(same[i], src[i], 1e-12);
}

TEST(Grid2D, ResampleInterpolatesGradientLinearly) {
  // A linear ramp in x stays a linear ramp after upsampling (interior).
  GridD src(4, 1 + 3);  // 4x4
  for (std::size_t iy = 0; iy < 4; ++iy)
    for (std::size_t ix = 0; ix < 4; ++ix)
      src.at(ix, iy) = static_cast<double>(ix);
  const GridD up = resample(src, 8, 8);
  for (std::size_t iy = 0; iy < 8; ++iy) {
    for (std::size_t ix = 1; ix < 7; ++ix) {
      const double expected =
          std::clamp((static_cast<double>(ix) + 0.5) / 8.0 * 4.0 - 0.5, 0.0,
                     3.0);
      EXPECT_NEAR(up.at(ix, iy), expected, 1e-9);
    }
  }
}

// Property: resampling conserves the mean of a constant-per-half field
// reasonably (no overshoot beyond the input range).
class ResampleRange : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResampleRange, OutputWithinInputRange) {
  const std::size_t n = GetParam();
  GridD src(6, 6, 0.0);
  for (std::size_t iy = 0; iy < 6; ++iy)
    for (std::size_t ix = 0; ix < 6; ++ix)
      src.at(ix, iy) = (ix < 3) ? 1.0 : 9.0;
  const GridD dst = resample(src, n, n);
  for (const double v : dst) {
    EXPECT_GE(v, 1.0 - 1e-12);
    EXPECT_LE(v, 9.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ResampleRange,
                         ::testing::Values(2, 3, 6, 7, 12, 48));

}  // namespace
}  // namespace tsc3d
