// Tests of the incremental move-evaluation pipeline across its layers:
//
//  * Floorplan3D's per-net HPWL / box-length / die-bounds caches and
//    ElmoreTiming::analyze_cached must stay BITWISE-equal to the full
//    rescans through thousands of randomized mixed moves (sequence
//    swaps, resizes, transfers, exchanges), including reverts and
//    batched-style snapshot/restore staging across LayoutState copies;
//  * whole annealing runs (classic and batched) with the incremental
//    pipeline ON must bitwise-reproduce runs with it OFF -- same RNG
//    stream, same accepts, same best layout;
//  * the debug cross-check must stay silent on a clean run and throw
//    std::logic_error when layout writes bypass note_module_moved;
//  * the IncrementalEvalParallel suite drives incremental state through
//    batched parallel-tempering chains (runs under TSan on CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "floorplan/chain_orchestrator.hpp"
#include "floorplan/cost.hpp"
#include "floorplan/move_transaction.hpp"
#include "power/timing.hpp"
#include "thermal/power_blur.hpp"

namespace tsc3d {
namespace {

namespace fpn = tsc3d::floorplan;

Floorplan3D small_instance(std::uint64_t seed) {
  benchgen::BenchmarkSpec spec;
  spec.name = "inc_eval";
  spec.soft_modules = 24;
  spec.num_nets = 40;
  spec.num_terminals = 6;
  spec.outline_mm2 = 4.0;
  spec.power_w = 2.0;
  return benchgen::generate(spec, seed);
}

/// Assert every incrementally maintained quantity equals its full
/// recompute, bitwise: per-net HPWL total, per-net stage delays and the
/// critical stage, and the per-die bounding boxes.
void expect_caches_match_full(Floorplan3D& fp, power::ElmoreTiming& timing) {
  ASSERT_EQ(fp.hpwl_cached(), fp.hpwl());
  const power::TimingReport full = timing.analyze();
  const power::TimingReport& cached = timing.analyze_cached();
  ASSERT_EQ(cached.critical_delay_ns, full.critical_delay_ns);
  ASSERT_EQ(cached.critical_net, full.critical_net);
  ASSERT_EQ(cached.stage_delay_ns.size(), full.stage_delay_ns.size());
  for (std::size_t n = 0; n < full.stage_delay_ns.size(); ++n)
    ASSERT_EQ(cached.stage_delay_ns[n], full.stage_delay_ns[n])
        << "net " << n;
  for (std::size_t d = 0; d < fp.tech().num_dies; ++d) {
    const Floorplan3D::DieBounds b = fp.die_bounds(d);
    double w = 0.0, h = 0.0;
    for (const Module& m : fp.modules()) {
      if (m.die != d) continue;
      w = std::max(w, m.shape.right());
      h = std::max(h, m.shape.top());
    }
    ASSERT_EQ(b.width, w) << "die " << d;
    ASSERT_EQ(b.height, h) << "die " << d;
  }
}

TEST(IncrementalEval, MixedMovesWithRevertsKeepCachesExact) {
  Floorplan3D fp = small_instance(5);
  Rng rng(17);
  fpn::LayoutState s = fpn::LayoutState::initial(fp, rng);
  s.apply_to(fp);
  power::ElmoreTiming timing(fp);
  expect_caches_match_full(fp, timing);

  // Thousands of mixed moves through the public state API; roughly a
  // third are reverted right after being checked (exercising the
  // fresh-version revert path), mirroring SA rejection.
  for (std::size_t step = 0; step < 2000; ++step) {
    const double roll = rng.uniform();
    // The revert closure undoes the move through the same public ops.
    std::function<void()> revert;
    if (roll < 0.25) {
      // Resize (rotate) one module.
      const std::size_t id = rng.index(s.width.size());
      std::swap(s.width[id], s.height[id]);
      s.touch_die(s.die_of[id]);
      revert = [&s, id] {
        std::swap(s.width[id], s.height[id]);
        s.touch_die(s.die_of[id]);
      };
    } else if (roll < 0.40 && s.die_sp.size() > 1) {
      // Transfer a module to the other die.
      const std::size_t id = rng.index(s.die_of.size());
      const std::size_t from = s.die_of[id];
      if (s.die_sp[from].size() < 2) continue;
      std::size_t to = rng.index(s.die_sp.size() - 1);
      if (to >= from) ++to;
      const auto& pos = s.die_sp[from].positive();
      const auto& neg = s.die_sp[from].negative();
      const auto pos_slot = static_cast<std::size_t>(
          std::find(pos.begin(), pos.end(), id) - pos.begin());
      const auto neg_slot = static_cast<std::size_t>(
          std::find(neg.begin(), neg.end(), id) - neg.begin());
      s.die_sp[from].remove(id);
      const std::size_t ins_pos = rng.index(s.die_sp[to].size() + 1);
      const std::size_t ins_neg = rng.index(s.die_sp[to].size() + 1);
      s.die_sp[to].insert(id, ins_pos, ins_neg);
      s.die_of[id] = to;
      s.touch_die(from);
      s.touch_die(to);
      revert = [&s, id, from, to, pos_slot, neg_slot] {
        s.die_sp[to].remove(id);
        s.die_sp[from].insert(id, pos_slot, neg_slot);
        s.die_of[id] = from;
        s.touch_die(from);
        s.touch_die(to);
      };
    } else {
      // Intra-die sequence swap (positive, negative, or both).
      const std::size_t d = rng.index(s.die_sp.size());
      fpn::SequencePair& sp = s.die_sp[d];
      if (sp.size() < 2) continue;
      const std::size_t i = rng.index(sp.size());
      std::size_t j = rng.index(sp.size() - 1);
      if (j >= i) ++j;
      switch (rng.index(3)) {
        case 0:
          sp.swap_positive(i, j);
          revert = [&sp, &s, d, i, j] {
            sp.swap_positive(i, j);
            s.touch_die(d);
          };
          break;
        case 1:
          sp.swap_negative(i, j);
          revert = [&sp, &s, d, i, j] {
            sp.swap_negative(i, j);
            s.touch_die(d);
          };
          break;
        default: {
          const std::size_t a = sp.positive()[i];
          const std::size_t b = sp.positive()[j];
          sp.swap_both(a, b);
          revert = [&sp, &s, d, a, b] {
            sp.swap_both(a, b);
            s.touch_die(d);
          };
          break;
        }
      }
      s.touch_die(d);
    }

    s.apply_to(fp);
    expect_caches_match_full(fp, timing);
    if (rng.uniform() < 0.33) {
      revert();
      s.apply_to(fp);
      expect_caches_match_full(fp, timing);
    }
  }
}

TEST(IncrementalEval, BatchedStagingAcrossCopiesKeepsCachesExact) {
  // The batched path snapshots the base state, applies candidate copies,
  // and finally adopts one (or re-applies the base): stamps must keep
  // every write exact across the copy family.
  Floorplan3D fp = small_instance(8);
  Rng rng(23);
  fpn::LayoutState base = fpn::LayoutState::initial(fp, rng);
  base.apply_to(fp);
  power::ElmoreTiming timing(fp);

  for (std::size_t round = 0; round < 200; ++round) {
    std::vector<fpn::LayoutState> candidates;
    for (std::size_t j = 0; j < 3; ++j) {
      // Derive each candidate from the base by one swap move.
      fpn::LayoutState cand = base;
      fpn::SequencePair& sp = cand.die_sp[rng.index(cand.die_sp.size())];
      if (sp.size() < 2) continue;
      const std::size_t i = rng.index(sp.size());
      std::size_t k = rng.index(sp.size() - 1);
      if (k >= i) ++k;
      sp.swap_both(sp.positive()[i], sp.positive()[k]);
      cand.touch_die(cand.die_of[sp.positive()[i]]);
      candidates.push_back(std::move(cand));
    }
    for (const fpn::LayoutState& cand : candidates) {
      cand.apply_to(fp);
      expect_caches_match_full(fp, timing);
    }
    // Adopt the last candidate (if any) or fall back to the base.
    if (!candidates.empty() && rng.uniform() < 0.5)
      base = std::move(candidates.back());
    base.apply_to(fp);
    expect_caches_match_full(fp, timing);
  }
}

// ---------------------------------------------------------------------------

/// Everything one annealing run produces that determinism can bite on.
struct AnnealOutcome {
  fpn::AnnealStats stats;
  std::vector<double> width, height;
  std::vector<std::size_t> die_of;
  std::vector<double> coords;   ///< final module x/y as applied to the fp
  std::uint64_t rng_after = 0;  ///< next raw draw: stream-position probe
};

void expect_same_outcome(const AnnealOutcome& a, const AnnealOutcome& b) {
  EXPECT_EQ(a.stats.moves, b.stats.moves);
  EXPECT_EQ(a.stats.accepted, b.stats.accepted);
  EXPECT_EQ(a.stats.full_evals, b.stats.full_evals);
  EXPECT_EQ(a.stats.repair_moves, b.stats.repair_moves);
  EXPECT_EQ(a.stats.found_legal, b.stats.found_legal);
  EXPECT_EQ(a.stats.initial_temperature, b.stats.initial_temperature);
  EXPECT_EQ(a.stats.best_cost, b.stats.best_cost);  // bitwise, not ULP-near
  ASSERT_EQ(a.width.size(), b.width.size());
  for (std::size_t i = 0; i < a.width.size(); ++i) {
    EXPECT_EQ(a.width[i], b.width[i]) << "module " << i;
    EXPECT_EQ(a.height[i], b.height[i]) << "module " << i;
    EXPECT_EQ(a.die_of[i], b.die_of[i]) << "module " << i;
  }
  ASSERT_EQ(a.coords.size(), b.coords.size());
  for (std::size_t i = 0; i < a.coords.size(); ++i)
    EXPECT_EQ(a.coords[i], b.coords[i]) << "coord " << i;
  EXPECT_EQ(a.rng_after, b.rng_after);
}

/// One full anneal; `incremental` toggles the whole pipeline exactly as
/// the floorplanner does (evaluator dispatch AND dirty-die packing).
/// k == 0 is the classic step loop, k > 1 the batched one.
/// `transactional` routes moves through MoveTransaction (PR 7) or the
/// classic apply/revert/apply loops.
AnnealOutcome run_anneal(bool incremental, std::size_t k,
                         std::uint64_t seed, bool transactional = true) {
  Floorplan3D fp = small_instance(4);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  thermal::GridSolver solver(fp.tech(), cfg);
  const thermal::PowerBlur blur(solver, 5);
  fpn::CostEvaluator::Options eopt;
  eopt.weights = fpn::tsc_aware_weights();
  eopt.leakage_grid = 16;
  eopt.incremental = incremental;
  fpn::CostEvaluator eval(fp, blur, eopt);

  fpn::AnnealOptions opt;
  opt.total_moves = 1600;
  opt.stages = 8;
  opt.full_eval_interval = 90;
  opt.transactional = transactional;
  fpn::Annealer annealer(fp, eval, opt);

  Rng rng(seed);
  fpn::LayoutState state = fpn::LayoutState::initial(fp, rng);
  if (!incremental) state.disable_tracking();  // end-to-end seed path
  fpn::AnnealSession session = annealer.begin(state, rng);
  if (k == 0) {
    while (annealer.run_stage(session, rng)) {
    }
  } else {
    while (annealer.run_stage_batched(session, rng, k)) {
    }
  }
  AnnealOutcome out;
  out.stats = annealer.finish(session, rng);
  out.width = state.width;
  out.height = state.height;
  out.die_of = state.die_of;
  for (const Module& m : fp.modules()) {
    out.coords.push_back(m.shape.x);
    out.coords.push_back(m.shape.y);
  }
  out.rng_after = rng();
  return out;
}

TEST(IncrementalEval, FullRunBitwiseMatchesNonIncremental) {
  // The tentpole's acceptance contract: the incremental pipeline must be
  // an optimization, not a behavior change -- whole runs agree bit for
  // bit with the rescan-everything path.
  expect_same_outcome(run_anneal(true, 0, 33), run_anneal(false, 0, 33));
}

TEST(IncrementalEval, BatchedRunBitwiseMatchesNonIncremental) {
  expect_same_outcome(run_anneal(true, 4, 21), run_anneal(false, 4, 21));
}

TEST(IncrementalEval, TransactionalRunBitwiseMatchesRevertLoop) {
  // The PR 7 contract: routing every move through MoveTransaction
  // (speculative stage -> evaluate -> commit/rollback) must reproduce
  // the classic incremental apply/revert/apply loop bit for bit,
  // including the RNG stream position (rng_after probes it).
  expect_same_outcome(run_anneal(true, 0, 33, true),
                      run_anneal(true, 0, 33, false));
}

TEST(IncrementalEval, TransactionalBatchedRunBitwiseMatchesCopyLoop) {
  // Batched flavor: k record/replay transactions against one base state
  // must match the k-deep-copies staging loop bit for bit.
  expect_same_outcome(run_anneal(true, 4, 21, true),
                      run_anneal(true, 4, 21, false));
}

// ---------------------------------------------------------------------------

TEST(IncrementalEval, CrossCheckSilentOnCleanRunThrowsOnCorruption) {
  Floorplan3D fp = small_instance(6);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  thermal::GridSolver solver(fp.tech(), cfg);
  const thermal::PowerBlur blur(solver, 5);
  fpn::CostEvaluator::Options eopt;
  eopt.leakage_grid = 16;
  eopt.cross_check_interval = 1;  // verify EVERY cheap evaluation
  fpn::CostEvaluator eval(fp, blur, eopt);

  Rng rng(3);
  fpn::LayoutState s = fpn::LayoutState::initial(fp, rng);
  s.apply_to(fp);
  (void)eval.evaluate_full();
  // A clean move/eval loop must never trip the guard.
  for (std::size_t step = 0; step < 50; ++step) {
    fpn::SequencePair& sp = s.die_sp[rng.index(s.die_sp.size())];
    const std::size_t i = rng.index(sp.size());
    std::size_t j = rng.index(sp.size() - 1);
    if (j >= i) ++j;
    sp.swap_both(sp.positive()[i], sp.positive()[j]);
    s.touch_die(s.die_of[sp.positive()[i]]);
    s.apply_to(fp);
    EXPECT_NO_THROW((void)eval.evaluate_cheap());
  }
  // Moving a module behind the database's back must be caught.  The
  // offset is a full die width so the bbox/outline terms diverge no
  // matter where the module sat.
  fp.modules()[0].shape.x += fp.tech().die_width_um;  // no note: corruption
  EXPECT_THROW((void)eval.evaluate_cheap(), std::logic_error);
}

// ---------------------------------------------------------------------------

TEST(MoveTransaction, EscalationBetweenCachedEvalsStaysExact) {
  // Outline-weight escalation between cached evaluations: the raw-term
  // caches store weight-independent values, so escalating must neither
  // corrupt them (the every-eval cross-check would throw) nor change the
  // raw terms; only the weighted total moves.
  Floorplan3D fp = small_instance(6);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  thermal::GridSolver solver(fp.tech(), cfg);
  const thermal::PowerBlur blur(solver, 5);
  fpn::CostEvaluator::Options eopt;
  eopt.leakage_grid = 16;
  eopt.cross_check_interval = 1;  // verify EVERY cheap evaluation
  fpn::CostEvaluator eval(fp, blur, eopt);

  Rng rng(9);
  fpn::LayoutState s = fpn::LayoutState::initial(fp, rng);
  s.apply_to(fp);
  (void)eval.evaluate_full();
  // Warm the per-die term caches with a few move/eval rounds.
  for (std::size_t step = 0; step < 10; ++step) {
    fpn::SequencePair& sp = s.die_sp[rng.index(s.die_sp.size())];
    const std::size_t i = rng.index(sp.size());
    std::size_t j = rng.index(sp.size() - 1);
    if (j >= i) ++j;
    sp.swap_both(sp.positive()[i], sp.positive()[j]);
    s.touch_die(s.die_of[sp.positive()[i]]);
    s.apply_to(fp);
    (void)eval.evaluate_cheap();
  }
  const fpn::CostBreakdown before = eval.evaluate_cheap();
  const double w_before = eval.outline_weight();
  eval.scale_outline_weight(1.35);
  EXPECT_EQ(eval.outline_weight(), w_before * 1.35);
  const fpn::CostBreakdown after = eval.evaluate_cheap();  // cross-checked
  // Raw terms are weight-independent and served from the warm caches.
  EXPECT_EQ(after.bbox_area_ratio, before.bbox_area_ratio);
  EXPECT_EQ(after.outline_penalty, before.outline_penalty);
  EXPECT_EQ(after.wirelength_um, before.wirelength_um);
  EXPECT_EQ(after.delay_ns, before.delay_ns);
  EXPECT_EQ(after.fits_outline, before.fits_outline);
  // Only the weighted total moved, by exactly the outline re-pricing.
  EXPECT_NEAR(after.total - before.total,
              (eval.outline_weight() - w_before) * before.outline_penalty,
              1e-9 * std::max(1.0, std::abs(before.total)));
}

TEST(MoveTransaction, EscalationRefusedMidTrialAndMidBatch) {
  Floorplan3D fp = small_instance(6);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  thermal::GridSolver solver(fp.tech(), cfg);
  const thermal::PowerBlur blur(solver, 5);
  fpn::CostEvaluator::Options eopt;
  eopt.leakage_grid = 16;
  fpn::CostEvaluator eval(fp, blur, eopt);
  Rng rng(9);
  fpn::LayoutState s = fpn::LayoutState::initial(fp, rng);
  s.apply_to(fp);
  (void)eval.evaluate_full();

  eval.trial_begin();
  EXPECT_THROW(eval.scale_outline_weight(2.0), std::logic_error);
  eval.trial_rollback();
  EXPECT_NO_THROW(eval.scale_outline_weight(2.0));

  eval.batch_begin(fpn::CostEvaluator::EvalLevel::cheap, 1);
  EXPECT_THROW(eval.scale_outline_weight(2.0), std::logic_error);
  eval.batch_stage();
  (void)eval.batch_evaluate();
  eval.batch_adopt(0);
  EXPECT_NO_THROW(eval.scale_outline_weight(2.0));
}

TEST(MoveTransaction, PhaseMisuseThrows) {
  Floorplan3D fp = small_instance(6);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  thermal::GridSolver solver(fp.tech(), cfg);
  const thermal::PowerBlur blur(solver, 5);
  fpn::CostEvaluator::Options eopt;
  eopt.leakage_grid = 16;
  fpn::CostEvaluator eval(fp, blur, eopt);
  Rng rng(9);
  fpn::LayoutState s = fpn::LayoutState::initial(fp, rng);
  s.apply_to(fp);

  fpn::MoveTransaction txn(fp, eval);
  fpn::MoveRecord rec;
  EXPECT_THROW(txn.stage(), std::logic_error);     // nothing open
  EXPECT_THROW(txn.commit(), std::logic_error);    // nothing staged
  EXPECT_THROW(txn.rollback(rec), std::logic_error);
  EXPECT_THROW(txn.abort(), std::logic_error);
  txn.open(s);
  EXPECT_THROW(txn.open(s), std::logic_error);     // no nesting
  EXPECT_THROW(txn.commit(), std::logic_error);    // open but not staged
  txn.stage();
  EXPECT_THROW(txn.abort(), std::logic_error);     // staged aborts are
  txn.rollback(rec);                               // rollbacks (rec: none)
  // Floorplan trial brackets refuse nesting and wholesale invalidation.
  fp.begin_trial();
  EXPECT_THROW(fp.begin_trial(), std::logic_error);
  EXPECT_THROW(fp.invalidate_layout_caches(), std::logic_error);
  fp.rollback_trial();
  EXPECT_THROW(fp.rollback_trial(), std::logic_error);
  EXPECT_NO_THROW(fp.invalidate_layout_caches());
}

TEST(MoveTransaction, TrackingOnOffBitwiseAtN1000) {
  // Randomized A/B at a real benchmark size: a tracked (stamped,
  // transactional) run and a disable_tracking() run must produce the
  // SAME final layout bit for bit -- tracking and transactions are pure
  // optimizations at any scale, not behavior changes.
  for (const std::uint64_t seed : {7ull, 19ull}) {
    auto run_once = [&](bool tracked) {
      Floorplan3D fp = benchgen::generate("n1000", 2);
      ThermalConfig cfg;
      cfg.grid_nx = cfg.grid_ny = 16;
      thermal::GridSolver solver(fp.tech(), cfg);
      const thermal::PowerBlur blur(solver, 5);
      fpn::CostEvaluator::Options eopt;
      eopt.weights = fpn::power_aware_weights();
      eopt.leakage_grid = 16;
      eopt.incremental = tracked;
      fpn::CostEvaluator eval(fp, blur, eopt);
      fpn::AnnealOptions opt;
      opt.total_moves = 600;
      opt.stages = 3;
      opt.full_eval_interval = 200;
      fpn::Annealer annealer(fp, eval, opt);
      Rng rng(seed);
      fpn::LayoutState state = fpn::LayoutState::initial(fp, rng);
      if (!tracked) state.disable_tracking();
      AnnealOutcome out;
      out.stats = annealer.run(state, rng);
      out.width = state.width;
      out.height = state.height;
      out.die_of = state.die_of;
      for (const Module& m : fp.modules()) {
        out.coords.push_back(m.shape.x);
        out.coords.push_back(m.shape.y);
      }
      out.rng_after = rng();
      return out;
    };
    expect_same_outcome(run_once(true), run_once(false));
  }
}

// ---------------------------------------------------------------------------

TEST(MoveTransactionParallel, TransactionalChainsMatchRevertPathUnderThreads) {
  // Transactions under batched parallel tempering: threaded and
  // sequential chain scheduling must agree, and both must equal the
  // transactional-OFF (classic revert) pipeline.  Runs under TSan on CI.
  auto run_once = [](bool parallel, bool transactional) {
    fpn::ChainSetup s;
    s.fast_thermal.grid_nx = s.fast_thermal.grid_ny = 16;
    s.blur_radius = 5;
    s.detailed_inner_thermal = true;
    s.engine_parallel.threads = 2;
    s.eval.weights = fpn::power_aware_weights();
    s.eval.leakage_grid = 16;
    s.anneal.total_moves = 1000;
    s.anneal.stages = 5;
    s.anneal.full_eval_interval = 150;
    s.anneal.thermal_eval_interval = 9;
    s.anneal.batch_candidates = 3;
    s.anneal.transactional = transactional;
    s.chains.chains = 3;
    s.chains.exchange_interval = 2;
    s.chains.ladder_ratio = 4.0;
    s.chains.parallel = parallel;
    Floorplan3D fp = small_instance(11);
    Rng rng(3);
    fpn::LayoutState initial = fpn::LayoutState::initial(fp, rng);
    fpn::ChainOrchestrator orchestrator(s);
    const fpn::ChainReport report = orchestrator.run(fp, initial, 42);
    std::vector<double> coords;
    for (const Module& m : fp.modules()) {
      coords.push_back(m.shape.x);
      coords.push_back(m.shape.y);
    }
    return std::make_tuple(report.winner, report.exchange.accepts, coords,
                           report.chains.at(report.winner).best_cost);
  };
  const auto threaded = run_once(true, true);
  EXPECT_EQ(threaded, run_once(false, true));  // scheduling-independent
  EXPECT_EQ(threaded, run_once(true, false));  // equals the revert path
}

// ---------------------------------------------------------------------------

TEST(IncrementalEvalParallel, BatchedChainsDeterministicAndMatchSeedPath) {
  // Incremental state flowing through batched parallel-tempering chains:
  // threaded and sequential scheduling must agree exactly, a threaded
  // repeat must agree, and the whole thing must equal the
  // rescan-everything pipeline.  Runs under TSan on CI.
  auto setup = [](bool parallel, bool incremental) {
    fpn::ChainSetup s;
    s.fast_thermal.grid_nx = s.fast_thermal.grid_ny = 16;
    s.blur_radius = 5;
    s.detailed_inner_thermal = true;
    s.engine_parallel.threads = 2;
    s.eval.weights = fpn::power_aware_weights();
    s.eval.leakage_grid = 16;
    s.eval.incremental = incremental;
    s.anneal.total_moves = 1000;
    s.anneal.stages = 5;
    s.anneal.full_eval_interval = 150;
    s.anneal.thermal_eval_interval = 9;
    s.anneal.batch_candidates = 3;
    s.chains.chains = 3;
    s.chains.exchange_interval = 2;
    s.chains.ladder_ratio = 4.0;
    s.chains.parallel = parallel;
    return s;
  };
  auto run_once = [&](bool parallel, bool incremental) {
    Floorplan3D fp = small_instance(11);
    Rng rng(3);
    fpn::LayoutState initial = fpn::LayoutState::initial(fp, rng);
    if (!incremental) initial.disable_tracking();
    fpn::ChainOrchestrator orchestrator(setup(parallel, incremental));
    const fpn::ChainReport report = orchestrator.run(fp, initial, 42);
    std::vector<double> coords;
    for (const Module& m : fp.modules()) {
      coords.push_back(m.shape.x);
      coords.push_back(m.shape.y);
    }
    return std::make_tuple(report.winner, report.exchange.accepts, coords,
                           report.chains.at(report.winner).best_cost);
  };
  const auto threaded = run_once(true, true);
  EXPECT_EQ(threaded, run_once(false, true));   // scheduling-independent
  EXPECT_EQ(threaded, run_once(true, true));    // repeatable
  EXPECT_EQ(threaded, run_once(false, false));  // equals the seed path
}

}  // namespace
}  // namespace tsc3d
