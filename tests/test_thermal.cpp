// Tests of the layer stack and the detailed grid solver: structure,
// energy conservation, physical monotonicities, and the TSV heat-pipe
// effect the paper's mitigation builds on.
#include <gtest/gtest.h>

#include "thermal/grid_solver.hpp"
#include "thermal/stack.hpp"

namespace tsc3d::thermal {
namespace {

TechnologyConfig test_tech() {
  TechnologyConfig t;
  t.die_width_um = 2000.0;
  t.die_height_um = 2000.0;
  return t;
}

ThermalConfig test_thermal(std::size_t grid = 16) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = grid;
  return c;
}

TEST(LayerStack, TwoDieStackStructure) {
  const LayerStack s = build_stack(test_tech(), test_thermal());
  // die0_bulk, bond01, die1_bulk, tim, spreader, sink.
  ASSERT_EQ(s.layers.size(), 6u);
  EXPECT_EQ(s.layers[0].name, "die0_bulk");
  EXPECT_EQ(s.layers[1].name, "bond01");
  EXPECT_EQ(s.layers[2].name, "die1_bulk");
  EXPECT_EQ(s.layers[3].name, "tim");
  EXPECT_EQ(s.layers[4].name, "spreader");
  EXPECT_EQ(s.layers[5].name, "sink");
  EXPECT_EQ(s.layer_of_die[0], 0u);
  EXPECT_EQ(s.layer_of_die[1], 2u);
}

TEST(LayerStack, TsvLayersAreBondAndUpperBulk) {
  const LayerStack s = build_stack(test_tech(), test_thermal());
  EXPECT_FALSE(s.layers[0].tsv_layer);  // bottom bulk: TSVs land here
  EXPECT_TRUE(s.layers[1].tsv_layer);   // bond
  EXPECT_TRUE(s.layers[2].tsv_layer);   // upper bulk traversed
  EXPECT_FALSE(s.layers[3].tsv_layer);
}

TEST(LayerStack, PowerLayersMatchDies) {
  const LayerStack s = build_stack(test_tech(), test_thermal());
  EXPECT_EQ(s.layers[0].power_die, 0u);
  EXPECT_EQ(s.layers[2].power_die, 1u);
  EXPECT_FALSE(s.layers[1].has_power());
  EXPECT_FALSE(s.layers[5].has_power());
}

TEST(LayerStack, FourDieStack) {
  TechnologyConfig t = test_tech();
  t.num_dies = 4;
  const LayerStack s = build_stack(t, test_thermal());
  // 4 bulks + 3 bonds + tim + spreader + sink = 10 layers.
  EXPECT_EQ(s.layers.size(), 10u);
  EXPECT_EQ(s.layer_of_die.size(), 4u);
}

TEST(GridSolver, ZeroPowerGivesAmbientEverywhere) {
  // The multigrid backend stops on per-sweep updates like SOR does, but
  // its absolute error at the default tolerance can sit right at the
  // 1e-3 K band this test asserts (an FMG-seeded solve builds the field
  // from zero rather than starting exactly at ambient).  A tighter
  // stopping tolerance keeps the assertion about physics, not about the
  // stopping rule.
  ThermalConfig cfg = test_thermal();
  cfg.tolerance_k = 1e-6;
  const GridSolver solver(test_tech(), cfg);
  const std::vector<GridD> power(2, GridD(16, 16, 0.0));
  const GridD tsv(16, 16, 0.0);
  const ThermalResult res = solver.solve_steady(power, tsv);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.peak_k, 293.15, 1e-3);
  for (const GridD& t : res.die_temperature)
    for (const double v : t) EXPECT_NEAR(v, 293.15, 1e-3);
}

TEST(GridSolver, EnergyConservation) {
  const GridSolver solver(test_tech(), test_thermal());
  std::vector<GridD> power(2, GridD(16, 16, 0.0));
  power[0].at(8, 8) = 2.0;
  power[1].at(4, 4) = 3.0;
  const ThermalResult res = solver.solve_steady(power, GridD(16, 16, 0.0));
  ASSERT_TRUE(res.converged);
  // All injected power must leave through the sink or the package.
  EXPECT_NEAR(res.heat_to_sink_w + res.heat_to_package_w, 5.0, 0.05);
}

TEST(GridSolver, PrimaryPathDominates) {
  // With a strong heatsink and a weak package path, most heat goes up.
  const GridSolver solver(test_tech(), test_thermal());
  std::vector<GridD> power(2, GridD(16, 16, 0.0));
  power[1].at(8, 8) = 5.0;
  const ThermalResult res = solver.solve_steady(power, GridD(16, 16, 0.0));
  EXPECT_GT(res.heat_to_sink_w, res.heat_to_package_w);
}

TEST(GridSolver, TemperatureAboveAmbientAndPeakAtSource) {
  const GridSolver solver(test_tech(), test_thermal());
  std::vector<GridD> power(2, GridD(16, 16, 0.0));
  power[0].at(12, 3) = 4.0;
  const ThermalResult res = solver.solve_steady(power, GridD(16, 16, 0.0));
  const GridD& t0 = res.die_temperature[0];
  double max_v = 0.0;
  std::size_t max_ix = 0, max_iy = 0;
  for (std::size_t iy = 0; iy < 16; ++iy)
    for (std::size_t ix = 0; ix < 16; ++ix) {
      EXPECT_GT(t0.at(ix, iy), 293.15 - 1e-6);
      if (t0.at(ix, iy) > max_v) {
        max_v = t0.at(ix, iy);
        max_ix = ix;
        max_iy = iy;
      }
    }
  EXPECT_EQ(max_ix, 12u);
  EXPECT_EQ(max_iy, 3u);
}

TEST(GridSolver, LinearityInPower) {
  // Steady-state heat conduction is linear: doubling power doubles the
  // temperature rise.
  const GridSolver solver(test_tech(), test_thermal());
  std::vector<GridD> p1(2, GridD(16, 16, 0.0));
  p1[0].at(8, 8) = 1.0;
  std::vector<GridD> p2(2, GridD(16, 16, 0.0));
  p2[0].at(8, 8) = 2.0;
  const GridD tsv(16, 16, 0.0);
  const ThermalResult r1 = solver.solve_steady(p1, tsv);
  const ThermalResult r2 = solver.solve_steady(p2, tsv);
  const double rise1 = r1.peak_k - 293.15;
  const double rise2 = r2.peak_k - 293.15;
  EXPECT_NEAR(rise2 / rise1, 2.0, 0.02);
}

TEST(GridSolver, TsvsCoolTheBottomDie) {
  // TSVs act as heat pipes toward the heatsink: with full TSV coverage
  // the bottom-die hotspot must be cooler than without TSVs.
  const GridSolver solver(test_tech(), test_thermal());
  std::vector<GridD> power(2, GridD(16, 16, 0.0));
  power[0].at(8, 8) = 4.0;
  const ThermalResult bare =
      solver.solve_steady(power, GridD(16, 16, 0.0));
  const ThermalResult piped =
      solver.solve_steady(power, GridD(16, 16, 1.0));
  EXPECT_LT(piped.die_temperature[0].max(), bare.die_temperature[0].max());
}

TEST(GridSolver, LocalTsvIslandCreatesLocalCoolSpot) {
  // Two identical heat sources; a TSV island under one of them lowers its
  // temperature relative to the other -- the decorrelation mechanism of
  // Sec. 3 (finding ii).
  const GridSolver solver(test_tech(), test_thermal());
  std::vector<GridD> power(2, GridD(16, 16, 0.0));
  power[0].at(4, 8) = 2.0;
  power[0].at(12, 8) = 2.0;
  GridD tsv(16, 16, 0.0);
  tsv.at(4, 8) = 1.0;  // island above the first source
  tsv.at(4, 7) = 1.0;
  tsv.at(4, 9) = 1.0;
  const ThermalResult res = solver.solve_steady(power, tsv);
  EXPECT_LT(res.die_temperature[0].at(4, 8),
            res.die_temperature[0].at(12, 8) - 0.01);
}

TEST(GridSolver, DiesAreThermallyCoupled) {
  // Power on the top die heats the bottom die above ambient.
  const GridSolver solver(test_tech(), test_thermal());
  std::vector<GridD> power(2, GridD(16, 16, 0.0));
  power[1].at(8, 8) = 4.0;
  const ThermalResult res = solver.solve_steady(power, GridD(16, 16, 0.0));
  EXPECT_GT(res.die_temperature[0].at(8, 8), 293.15 + 0.05);
}

TEST(GridSolver, BottomDieRunsHotterForSamePower) {
  // The bottom die is farther from the heatsink: equal power there yields
  // a higher peak than on the top die (motivates the thermal design rule).
  const GridSolver solver(test_tech(), test_thermal());
  std::vector<GridD> bottom(2, GridD(16, 16, 0.0));
  bottom[0].at(8, 8) = 4.0;
  std::vector<GridD> top(2, GridD(16, 16, 0.0));
  top[1].at(8, 8) = 4.0;
  const GridD tsv(16, 16, 0.0);
  EXPECT_GT(solver.solve_steady(bottom, tsv).peak_k,
            solver.solve_steady(top, tsv).peak_k);
}

TEST(GridSolver, InputValidation) {
  const GridSolver solver(test_tech(), test_thermal());
  EXPECT_THROW(
      solver.solve_steady({GridD(16, 16, 0.0)}, GridD(16, 16, 0.0)),
      std::invalid_argument);  // one map for two dies
  EXPECT_THROW(solver.solve_steady(std::vector<GridD>(2, GridD(8, 8, 0.0)),
                                   GridD(8, 8, 0.0)),
               std::invalid_argument);  // wrong grid
}

TEST(GridSolver, TransientApproachesSteadyState) {
  const GridSolver solver(test_tech(), test_thermal(8));
  std::vector<GridD> power(2, GridD(8, 8, 0.0));
  power[0].at(4, 4) = 2.0;
  const GridD tsv(8, 8, 0.0);
  const ThermalResult steady = solver.solve_steady(power, tsv);
  const TransientResult trans = solver.solve_transient(
      [&](double) { return power; }, tsv, /*t_end=*/50.0, /*dt=*/0.5, 10);
  EXPECT_NEAR(trans.final_state.peak_k, steady.peak_k, 0.2);
}

TEST(GridSolver, TransientTemperatureLagsPower) {
  // Fig. 1: power steps are instantaneous, temperature responds slowly.
  // Right after a power step the temperature is far from its final value.
  const GridSolver solver(test_tech(), test_thermal(8));
  std::vector<GridD> power(2, GridD(8, 8, 0.0));
  power[0].at(4, 4) = 2.0;
  const GridD tsv(8, 8, 0.0);
  const ThermalResult steady = solver.solve_steady(power, tsv);
  const TransientResult early = solver.solve_transient(
      [&](double) { return power; }, tsv, /*t_end=*/1e-3, /*dt=*/1e-4, 1);
  const double steady_rise = steady.peak_k - 293.15;
  const double early_rise = early.final_state.peak_k - 293.15;
  EXPECT_LT(early_rise, 0.8 * steady_rise);
  EXPECT_GT(early_rise, 0.0);
}

TEST(GridSolver, TransientMonotoneRiseUnderConstantPower) {
  const GridSolver solver(test_tech(), test_thermal(8));
  std::vector<GridD> power(2, GridD(8, 8, 0.0));
  power[1].at(4, 4) = 3.0;
  const TransientResult res = solver.solve_transient(
      [&](double) { return power; }, GridD(8, 8, 0.0), 10.0, 0.5, 1);
  for (std::size_t i = 1; i < res.trace.size(); ++i)
    EXPECT_GE(res.trace[i].die_peak_k[1] + 1e-9,
              res.trace[i - 1].die_peak_k[1]);
}

}  // namespace
}  // namespace tsc3d::thermal
