// The batch exploration service (src/service/): durable job queue
// semantics, checkpoint/result file validation fallbacks (the
// DtmCheckpoint discipline: any defect is a clean fresh start with a
// reason, never silent corruption), content-addressed cache key
// sensitivity, cache hits with zero annealing, and the headline crash
// contract -- a worker that dies mid-run resumes from its checkpoint
// and produces a result file BYTE-identical to an uninterrupted run's.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "benchgen/generator.hpp"
#include "config/apply.hpp"
#include "config/config_file.hpp"
#include "floorplan/floorplanner.hpp"
#include "service/checkpoint_io.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "service/version.hpp"
#include "service/worker.hpp"

namespace tsc3d::service {
namespace {

namespace fs = std::filesystem;

/// Small but real config so worker runs finish in well under a second.
constexpr const char* kConfig =
    "[floorplanning]\n"
    "sa_moves = 1500\n"
    "sa_stages = 8\n"
    "fast_grid = 16\n"
    "verify_grid = 24\n"
    "sampling_grid = 16\n";

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

JobSpec small_job(std::uint64_t seed) {
  JobSpec job;
  job.benchmark = "n100";
  job.seed = seed;
  job.config_text = kConfig;
  return job;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- job format ---------------------------------------------------------

TEST(JobFormat, RoundTripsThroughText) {
  JobSpec job;
  job.benchmark = "n200";
  job.seed = 42;
  job.config_text = "[floorplanning]\nmode = tsc\n";
  EXPECT_EQ(parse_job(format_job(job)), job);

  JobSpec files;
  files.blocks = "d/x.blocks";
  files.nets = "d/x.nets";
  files.seed = 7;
  EXPECT_EQ(parse_job(format_job(files)), files);
}

TEST(JobFormat, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_job("not a job file"), std::runtime_error);
  EXPECT_THROW((void)parse_job("tsc3d-job v1\nseed 1\n"),
               std::runtime_error);  // no design
  EXPECT_THROW(
      (void)parse_job("tsc3d-job v1\nbenchmark n100\nconfig-begin\nx = 1\n"),
      std::runtime_error);  // unterminated config
  EXPECT_THROW((void)parse_job("tsc3d-job v1\nfrobnicate yes\n"),
               std::runtime_error);
}

TEST(JobFormat, IdIsStableAndContentAddressed) {
  const JobSpec a = small_job(1);
  EXPECT_EQ(job_id(a), job_id(small_job(1)));
  EXPECT_NE(job_id(a), job_id(small_job(2)));
  JobSpec other = small_job(1);
  other.config_text += "sa_moves = 99\n";  // duplicate key is fine as text
  EXPECT_NE(job_id(a), job_id(other));
}

// --- queue lifecycle ----------------------------------------------------

ServiceOptions queue_options(const fs::path& dir) {
  ServiceOptions opt;
  opt.queue_dir = dir.string();
  return opt;
}

TEST(JobQueue, EnqueueClaimCompleteLifecycle) {
  JobQueue queue(queue_options(fresh_dir("svc_lifecycle")));
  const std::string id = queue.enqueue(small_job(1));
  EXPECT_EQ(queue.status().pending, 1u);

  // Idempotent: same content, same id, still one job.
  EXPECT_EQ(queue.enqueue(small_job(1)), id);
  EXPECT_EQ(queue.status().pending, 1u);

  const auto claimed = queue.claim_next();
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->id, id);
  EXPECT_EQ(claimed->spec, small_job(1));
  EXPECT_EQ(queue.status().claimed, 1u);

  // The claim excludes other workers.
  EXPECT_FALSE(queue.claim_next().has_value());

  queue.complete(*claimed);
  EXPECT_EQ(queue.status().pending, 0u);
  EXPECT_EQ(queue.status().claimed, 0u);
  EXPECT_EQ(queue.status().done, 1u);

  // A completed job does not re-enqueue.
  EXPECT_EQ(queue.enqueue(small_job(1)), id);
  EXPECT_EQ(queue.status().pending, 0u);
}

TEST(JobQueue, ReleaseReturnsJobToPending) {
  JobQueue queue(queue_options(fresh_dir("svc_release")));
  queue.enqueue(small_job(1));
  const auto claimed = queue.claim_next();
  ASSERT_TRUE(claimed.has_value());
  queue.release(*claimed);
  EXPECT_TRUE(queue.claim_next().has_value());
}

TEST(JobQueue, FailMovesJobAsideWithReason) {
  JobQueue queue(queue_options(fresh_dir("svc_fail")));
  const std::string id = queue.enqueue(small_job(1));
  const auto claimed = queue.claim_next();
  ASSERT_TRUE(claimed.has_value());
  queue.fail(*claimed, "boom");
  EXPECT_EQ(queue.status().failed, 1u);
  EXPECT_EQ(queue.status().pending, 0u);
  EXPECT_EQ(read_bytes(queue.root() / "failed" / (id + ".reason")), "boom\n");
}

TEST(JobQueue, StaleClaimIsReclaimed) {
  ServiceOptions opt = queue_options(fresh_dir("svc_stale"));
  opt.claim_lease_s = 0.0;  // every existing claim is instantly stale
  JobQueue queue(opt);
  queue.enqueue(small_job(1));
  const auto first = queue.claim_next();
  ASSERT_TRUE(first.has_value());
  // The "crashed" worker's claim is stale, so a second worker wins it.
  const auto second = queue.claim_next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->id, second->id);
}

// --- checkpoint file validation ----------------------------------------

/// A real (small) checkpoint to serialize: captured from a short run.
floorplan::ExplorationCheckpoint sample_checkpoint() {
  const config::ConfigFile cfg = config::ConfigFile::parse(kConfig);
  const floorplan::Floorplanner planner(
      config::make_floorplanner_options(cfg));
  Floorplan3D fp = benchgen::generate("n100", 3);
  Rng rng(3);
  floorplan::ExplorationCheckpoint snapshot;
  floorplan::ExplorationHooks hooks;
  hooks.save = [&](const floorplan::ExplorationCheckpoint& ck) {
    snapshot = ck;
  };
  (void)planner.run(fp, rng, hooks);
  return snapshot;
}

ArtifactContext sample_context() {
  ArtifactContext ctx;
  ctx.design_hash = 0x1111;
  ctx.config_hash = 0x2222;
  ctx.seed = 3;
  ctx.code_version = kCodeVersion;
  return ctx;
}

TEST(CheckpointIo, RoundTripsAndResumesEquivalently) {
  const fs::path dir = fresh_dir("svc_ckio");
  const floorplan::ExplorationCheckpoint original = sample_checkpoint();
  const ArtifactContext ctx = sample_context();
  save_checkpoint_file(dir / "a.ckp", ctx, original);

  const CheckpointLoad load = load_checkpoint_file(dir / "a.ckp", ctx);
  ASSERT_TRUE(load.ok) << load.reason;

  // The loaded checkpoint must drive the flow exactly like the in-memory
  // one: resume both and compare the final placements bitwise.
  const config::ConfigFile cfg = config::ConfigFile::parse(kConfig);
  const floorplan::Floorplanner planner(
      config::make_floorplanner_options(cfg));
  Floorplan3D fp_a = benchgen::generate("n100", 3);
  Floorplan3D fp_b = benchgen::generate("n100", 3);
  Rng rng_a(3), rng_b(3);
  floorplan::ExplorationHooks hooks_a, hooks_b;
  hooks_a.resume = &original;
  hooks_b.resume = &load.checkpoint;
  (void)planner.run(fp_a, rng_a, hooks_a);
  (void)planner.run(fp_b, rng_b, hooks_b);
  ASSERT_EQ(fp_a.modules().size(), fp_b.modules().size());
  for (std::size_t i = 0; i < fp_a.modules().size(); ++i) {
    EXPECT_EQ(fp_a.modules()[i].shape.x, fp_b.modules()[i].shape.x);
    EXPECT_EQ(fp_a.modules()[i].shape.y, fp_b.modules()[i].shape.y);
    EXPECT_EQ(fp_a.modules()[i].die, fp_b.modules()[i].die);
  }
  EXPECT_TRUE(rng_a.state() == rng_b.state());
}

TEST(CheckpointIo, RejectsEveryIdentityMismatch) {
  const fs::path file = fresh_dir("svc_ckid") / "a.ckp";
  const ArtifactContext ctx = sample_context();
  save_checkpoint_file(file, ctx, sample_checkpoint());

  ArtifactContext wrong = ctx;
  wrong.design_hash ^= 1;  // a different design's checkpoint
  EXPECT_FALSE(load_checkpoint_file(file, wrong).ok);
  EXPECT_EQ(load_checkpoint_file(file, wrong).reason,
            "design hash mismatch");

  wrong = ctx;
  wrong.config_hash ^= 1;
  EXPECT_EQ(load_checkpoint_file(file, wrong).reason,
            "config hash mismatch");

  wrong = ctx;
  wrong.seed ^= 1;
  EXPECT_EQ(load_checkpoint_file(file, wrong).reason, "seed mismatch");

  wrong = ctx;
  wrong.code_version = "tsc3d-0-other";  // producer from another build
  EXPECT_EQ(load_checkpoint_file(file, wrong).reason,
            "code version mismatch");
}

TEST(CheckpointIo, RejectsCorruptFilesCleanly) {
  const fs::path dir = fresh_dir("svc_ckbad");
  const ArtifactContext ctx = sample_context();
  save_checkpoint_file(dir / "a.ckp", ctx, sample_checkpoint());
  const std::string bytes = read_bytes(dir / "a.ckp");

  EXPECT_EQ(load_checkpoint_file(dir / "missing.ckp", ctx).reason,
            "no checkpoint file");

  {  // truncated mid-payload
    std::ofstream out(dir / "trunc.ckp", std::ios::binary);
    out << bytes.substr(0, bytes.size() / 2);
  }
  EXPECT_FALSE(load_checkpoint_file(dir / "trunc.ckp", ctx).ok);

  {  // one flipped payload byte: checksum catches it
    std::string corrupt = bytes;
    corrupt[corrupt.size() - 3] ^= 0x40;
    std::ofstream out(dir / "flip.ckp", std::ios::binary);
    out << corrupt;
  }
  EXPECT_EQ(load_checkpoint_file(dir / "flip.ckp", ctx).reason,
            "checksum mismatch");

  {  // not a checkpoint at all
    std::ofstream out(dir / "junk.ckp", std::ios::binary);
    out << "definitely not a checkpoint";
  }
  EXPECT_EQ(load_checkpoint_file(dir / "junk.ckp", ctx).reason,
            "bad magic");

  {  // future format version
    std::string future = bytes;
    future[8] = 99;  // version field follows the 8-byte magic
    std::ofstream out(dir / "future.ckp", std::ios::binary);
    out << future;
  }
  EXPECT_EQ(load_checkpoint_file(dir / "future.ckp", ctx).reason,
            "unknown format version");
}

// --- result cache -------------------------------------------------------

TEST(ResultCache, MissesWhenAnyKeyComponentChanges) {
  ResultCache cache(fresh_dir("svc_cachekey"));
  StoredResult res;
  res.context = sample_context();
  res.legal = true;
  cache.store(res);
  EXPECT_TRUE(cache.probe(res.context).has_value());

  ArtifactContext changed = res.context;
  changed.design_hash ^= 1;
  EXPECT_FALSE(cache.probe(changed).has_value());
  changed = res.context;
  changed.config_hash ^= 1;
  EXPECT_FALSE(cache.probe(changed).has_value());
  changed = res.context;
  changed.seed ^= 1;
  EXPECT_FALSE(cache.probe(changed).has_value());
  changed = res.context;
  changed.code_version = "tsc3d-0-other";
  EXPECT_FALSE(cache.probe(changed).has_value());
}

TEST(ResultCache, CollisionDegradesToMissNotWrongHit) {
  ResultCache cache(fresh_dir("svc_collide"));
  StoredResult res;
  res.context = sample_context();
  cache.store(res);
  // Plant a foreign artifact in the slot another context hashes to;
  // a probe validates the embedded context, so it must miss.
  ArtifactContext other = res.context;
  other.seed ^= 1;
  fs::copy_file(cache.path_for(res.context), cache.path_for(other));
  EXPECT_FALSE(cache.probe(other).has_value());
}

TEST(ConfigFile, CanonicalFormIgnoresFormattingOnly) {
  const auto a = config::ConfigFile::parse(
      "[floorplanning]\nsa_moves = 2000  # why not\n\nfast_grid=16\n");
  const auto b = config::ConfigFile::parse(
      "[floorplanning]\n  fast_grid = 16\nsa_moves   =2000\n");
  EXPECT_EQ(a.canonical(), b.canonical());
  const auto c = config::ConfigFile::parse(
      "[floorplanning]\nfast_grid = 16\nsa_moves = 2001\n");
  EXPECT_NE(a.canonical(), c.canonical());
}

// --- worker -------------------------------------------------------------

TEST(Worker, CacheHitServesStoredBytesWithZeroAnnealing) {
  const fs::path dir = fresh_dir("svc_cachehit");
  ResultCache cache(dir / "cache");
  const JobSpec job = small_job(4);

  const WorkReport first =
      run_job(job, dir / "a.ckp", dir / "a.res", &cache, 1);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.sa_moves, 0u);

  const WorkReport second =
      run_job(job, dir / "b.ckp", dir / "b.res", &cache, 1);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.sa_moves, 0u);
  EXPECT_EQ(read_bytes(dir / "a.res"), read_bytes(dir / "b.res"));
}

TEST(Worker, CrashMidRunResumesToByteIdenticalResult) {
  const fs::path dir = fresh_dir("svc_crash");
  const JobSpec job = small_job(5);
  const ArtifactContext ctx = job_context(job);

  // Uninterrupted reference (no cache, so the resumed run really runs).
  const WorkReport ref = run_job(job, dir / "ref.ckp", dir / "ref.res",
                                 nullptr, 1);
  ASSERT_TRUE(ref.ok) << ref.error;

  // "Crash" a worker mid-anneal: run the identical flow with durable
  // checkpoints and die (throw) right after the third snapshot lands.
  const config::ConfigFile cfg = config::ConfigFile::parse(kConfig);
  const floorplan::Floorplanner planner(
      config::make_floorplanner_options(cfg));
  Floorplan3D fp = benchgen::generate(job.benchmark, job.seed);
  Rng rng(job.seed);
  floorplan::ExplorationHooks hooks;
  int saved = 0;
  hooks.save = [&](const floorplan::ExplorationCheckpoint& ck) {
    save_checkpoint_file(dir / "job.ckp", ctx, ck);
    if (++saved == 3) throw std::runtime_error("simulated crash");
  };
  EXPECT_THROW((void)planner.run(fp, rng, hooks), std::runtime_error);

  // A new worker picks the job up from the surviving checkpoint.
  const WorkReport resumed = run_job(job, dir / "job.ckp",
                                     dir / "job.res", nullptr, 1);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_TRUE(resumed.resumed) << resumed.resume_note;
  // Restored stats continue the pre-crash count: the TOTAL matches the
  // uninterrupted run exactly, it does not double-count redone work.
  EXPECT_EQ(resumed.sa_moves, ref.sa_moves);
  EXPECT_EQ(read_bytes(dir / "ref.res"), read_bytes(dir / "job.res"));
}

TEST(Worker, DefectiveCheckpointFallsBackToFreshStart) {
  const fs::path dir = fresh_dir("svc_fallback");
  const JobSpec job = small_job(6);
  const WorkReport ref = run_job(job, dir / "ref.ckp", dir / "ref.res",
                                 nullptr, 1);
  ASSERT_TRUE(ref.ok) << ref.error;

  {  // garbage where the checkpoint should be
    std::ofstream out(dir / "bad.ckp", std::ios::binary);
    out << "garbage";
  }
  const WorkReport rerun = run_job(job, dir / "bad.ckp", dir / "bad.res",
                                   nullptr, 1);
  ASSERT_TRUE(rerun.ok) << rerun.error;
  EXPECT_FALSE(rerun.resumed);
  EXPECT_EQ(rerun.resume_note, "bad magic");
  EXPECT_EQ(read_bytes(dir / "ref.res"), read_bytes(dir / "bad.res"));
}

TEST(Worker, ServiceKeysDoNotChangeTheCacheKey) {
  // Operational settings (queue dir, lease) must not split the cache:
  // two sweeps differing only in [service] keys share artifacts.
  const JobSpec a = small_job(10);
  JobSpec b = a;
  b.config_text =
      std::string(kConfig) + "[service]\nclaim_lease_s = 5\n";
  EXPECT_EQ(job_context(a), job_context(b));
  EXPECT_NE(job_id(a), job_id(b));  // distinct queue entries, one artifact
}

TEST(Worker, RejectsUnknownConfigKeys) {
  JobSpec job = small_job(7);
  job.config_text = "[floorplanning]\nsa_movez = 10\n";
  const fs::path dir = fresh_dir("svc_typo");
  const WorkReport report =
      run_job(job, dir / "a.ckp", dir / "a.res", nullptr, 1);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("sa_movez"), std::string::npos);
}

TEST(Worker, WorkOneDrainsQueueAndRecordsFailures) {
  ServiceOptions opt = queue_options(fresh_dir("svc_workone"));
  JobQueue queue(opt);
  queue.enqueue(small_job(8));
  JobSpec broken = small_job(9);
  broken.config_text = "[floorplanning]\nmode = bogus\n";
  queue.enqueue(broken);

  int ok = 0, failed = 0;
  while (const auto report = work_one(queue)) {
    (report->ok ? ok : failed)++;
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(queue.status().done, 1u);
  EXPECT_EQ(queue.status().failed, 1u);
  EXPECT_EQ(queue.status().pending, 0u);
  EXPECT_EQ(queue.status().claimed, 0u);
}

}  // namespace
}  // namespace tsc3d::service
