// Tests of batched candidate evaluation across its three layers:
//
//  * ThermalEngine::solve_steady_batch -- every candidate of a batch
//    must be BITWISE-identical to an unbatched warm solve from the same
//    base field (contexts sweep serially, the assembly is shared), for
//    any thread count, and adopt_candidate must hand the chosen field to
//    the next solve exactly;
//  * CostEvaluator's batch_begin/stage/evaluate/adopt protocol -- a
//    batch of one must leave costs, caches, and the detailed engine's
//    warm field bitwise-equal to the corresponding evaluate_*() call;
//  * Annealer::run_stage_batched -- at k = 1 the batched step loop must
//    bitwise-reproduce the classic unbatched path (same RNG stream, same
//    accepts, same best layout), and at k > 1 stay deterministic per
//    seed, including under parallel-tempering chains.
//
// The ThermalEngineParallelBatch / ChainOrchestratorBatched suites also
// run under TSan on CI to vet the task-mode worker-pool synchronization.
#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "floorplan/chain_orchestrator.hpp"
#include "thermal/power_blur.hpp"
#include "thermal/thermal_engine.hpp"

namespace tsc3d {
namespace {

TechnologyConfig batch_tech() {
  TechnologyConfig t;
  t.die_width_um = 2000.0;
  t.die_height_um = 2000.0;
  return t;
}

ThermalConfig batch_thermal(std::size_t grid) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = grid;
  return c;
}

std::vector<GridD> base_power(std::size_t grid) {
  std::vector<GridD> power(2, GridD(grid, grid, 0.0));
  power[0].at(grid / 2, grid / 2) = 2.0;
  power[1].at(2, grid - 3) = 1.1;
  return power;
}

/// Candidate j perturbs one bin of the base map, like one annealing move.
std::vector<GridD> candidate_power(std::size_t grid, std::size_t j) {
  std::vector<GridD> power = base_power(grid);
  power[0].at((3 * j + 1) % grid, (5 * j + 2) % grid) += 0.1 + 0.05 * j;
  return power;
}

void expect_bitwise_equal(const thermal::ThermalResult& a,
                          const thermal::ThermalResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.residual_k, b.residual_k);  // exact: same update sequence
  EXPECT_EQ(a.peak_k, b.peak_k);
  ASSERT_EQ(a.layer_temperature.size(), b.layer_temperature.size());
  for (std::size_t l = 0; l < a.layer_temperature.size(); ++l) {
    ASSERT_EQ(a.layer_temperature[l].size(), b.layer_temperature[l].size());
    for (std::size_t c = 0; c < a.layer_temperature[l].size(); ++c)
      ASSERT_EQ(a.layer_temperature[l][c], b.layer_temperature[l][c])
          << "layer " << l << " cell " << c;
  }
}

TEST(ThermalEngineParallelBatch, BatchOfOneBitwiseMatchesSolveSteady) {
  const std::size_t g = 20;
  const GridD tsv(g, g, 0.1);
  thermal::ThermalEngine seq(batch_tech(), batch_thermal(g));
  thermal::ThermalEngine bat(batch_tech(), batch_thermal(g),
                             {.threads = 4, .min_nodes_per_thread = 1});
  // Walk a perturbed sequence on both engines, the second one through
  // batch-of-one calls with adoption: every field must match exactly.
  for (std::size_t step = 0; step < 4; ++step) {
    const auto power = candidate_power(g, step);
    const thermal::ThermalResult a = seq.solve_steady(power, tsv);
    const auto b = bat.solve_steady_batch({power}, tsv);
    ASSERT_EQ(b.size(), 1u);
    bat.adopt_candidate(0);
    expect_bitwise_equal(a, b[0]);
    EXPECT_EQ(a.warm_started, b[0].warm_started);
    EXPECT_EQ(step > 0, b[0].warm_started);
  }
}

TEST(ThermalEngineParallelBatch, CandidatesMatchIndividualWarmSolves) {
  const std::size_t g = 20;
  const GridD tsv(g, g, 0.1);
  const std::size_t k = 4;

  thermal::ThermalEngine batched(batch_tech(), batch_thermal(g),
                                 {.threads = 4, .min_nodes_per_thread = 1});
  (void)batched.solve_steady(base_power(g), tsv);  // prime the warm field
  std::vector<std::vector<GridD>> candidates;
  for (std::size_t j = 0; j < k; ++j)
    candidates.push_back(candidate_power(g, j));
  const auto results = batched.solve_steady_batch(candidates, tsv);
  ASSERT_EQ(results.size(), k);
  EXPECT_EQ(batched.last_batch_size(), k);
  EXPECT_EQ(batched.stats().batch_calls, 1u);
  EXPECT_EQ(batched.stats().batch_candidates, k);

  // Every candidate must equal a reference engine that solved the same
  // candidate as its ONLY follow-up to the same base solve.
  for (std::size_t j = 0; j < k; ++j) {
    thermal::ThermalEngine reference(batch_tech(), batch_thermal(g));
    (void)reference.solve_steady(base_power(g), tsv);
    const thermal::ThermalResult expected =
        reference.solve_steady(candidates[j], tsv);
    expect_bitwise_equal(expected, results[j]);
    EXPECT_TRUE(results[j].warm_started);
    EXPECT_TRUE(results[j].assembly_reused);
  }
}

TEST(ThermalEngineParallelBatch, AdoptCandidateSeedsTheNextSolve) {
  const std::size_t g = 20;
  const GridD tsv(g, g, 0.1);
  thermal::ThermalEngine batched(batch_tech(), batch_thermal(g),
                                 {.threads = 3, .min_nodes_per_thread = 1});
  (void)batched.solve_steady(base_power(g), tsv);
  std::vector<std::vector<GridD>> candidates;
  for (std::size_t j = 0; j < 3; ++j)
    candidates.push_back(candidate_power(g, j));
  (void)batched.solve_steady_batch(candidates, tsv);
  batched.adopt_candidate(2);
  const auto follow = candidate_power(g, 7);
  const thermal::ThermalResult after = batched.solve_steady(follow, tsv);

  thermal::ThermalEngine reference(batch_tech(), batch_thermal(g));
  (void)reference.solve_steady(base_power(g), tsv);
  (void)reference.solve_steady(candidates[2], tsv);
  const thermal::ThermalResult expected = reference.solve_steady(follow, tsv);
  expect_bitwise_equal(expected, after);
}

TEST(ThermalEngineParallelBatch, SerialAndPooledBatchesAgreeBitwise) {
  // A tiny grid floors sweep sharding out entirely (threads() == 1), but
  // batch candidates still fan across the lazily created pool; both
  // engines must produce identical batches.
  const std::size_t g = 16;
  const GridD tsv(g, g, 0.05);
  thermal::ThermalEngine serial(batch_tech(), batch_thermal(g));
  thermal::ThermalEngine pooled(batch_tech(), batch_thermal(g),
                                {.threads = 4});
  EXPECT_EQ(pooled.threads(), 1u);  // sharding floored, pool batch-only
  std::vector<std::vector<GridD>> candidates;
  for (std::size_t j = 0; j < 6; ++j)
    candidates.push_back(candidate_power(g, j));
  const auto a = serial.solve_steady_batch(candidates, tsv);
  const auto b = pooled.solve_steady_batch(candidates, tsv);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j)
    expect_bitwise_equal(a[j], b[j]);
}

TEST(ThermalEngineParallelBatch, ColdBatchesAndEdgeCases) {
  const std::size_t g = 16;
  const GridD tsv(g, g, 0.05);
  thermal::ThermalEngine engine(batch_tech(), batch_thermal(g),
                                {.threads = 2, .min_nodes_per_thread = 1});
  EXPECT_TRUE(engine.solve_steady_batch({}, tsv).empty());
  EXPECT_THROW(engine.adopt_candidate(0), std::out_of_range);

  const auto cold =
      engine.solve_steady_batch({candidate_power(g, 1)}, tsv,
                                thermal::ThermalEngine::Start::cold);
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_FALSE(cold[0].warm_started);
  thermal::ThermalEngine reference(batch_tech(), batch_thermal(g));
  const thermal::ThermalResult expected =
      reference.solve_steady(candidate_power(g, 1), tsv);
  expect_bitwise_equal(expected, cold[0]);
  EXPECT_THROW(engine.adopt_candidate(1), std::out_of_range);
  engine.adopt_candidate(0);
}

// ---------------------------------------------------------------------------

namespace fpn = tsc3d::floorplan;

Floorplan3D batch_instance(std::uint64_t seed) {
  benchgen::BenchmarkSpec spec;
  spec.name = "tiny";
  spec.soft_modules = 20;
  spec.num_nets = 32;
  spec.num_terminals = 6;
  spec.outline_mm2 = 4.0;
  spec.power_w = 2.0;
  return benchgen::generate(spec, seed);
}

/// Everything one annealing run produces that determinism can bite on.
struct AnnealOutcome {
  fpn::AnnealStats stats;
  std::vector<double> width, height;
  std::vector<std::size_t> die_of;
  std::uint64_t rng_after = 0;  ///< next raw draw: stream-position probe
};

void expect_same_outcome(const AnnealOutcome& a, const AnnealOutcome& b) {
  EXPECT_EQ(a.stats.moves, b.stats.moves);
  EXPECT_EQ(a.stats.accepted, b.stats.accepted);
  EXPECT_EQ(a.stats.full_evals, b.stats.full_evals);
  EXPECT_EQ(a.stats.repair_moves, b.stats.repair_moves);
  EXPECT_EQ(a.stats.found_legal, b.stats.found_legal);
  EXPECT_EQ(a.stats.initial_temperature, b.stats.initial_temperature);
  EXPECT_EQ(a.stats.best_cost, b.stats.best_cost);  // bitwise, not ULP-near
  ASSERT_EQ(a.width.size(), b.width.size());
  for (std::size_t i = 0; i < a.width.size(); ++i) {
    EXPECT_EQ(a.width[i], b.width[i]) << "module " << i;
    EXPECT_EQ(a.height[i], b.height[i]) << "module " << i;
    EXPECT_EQ(a.die_of[i], b.die_of[i]) << "module " << i;
  }
  EXPECT_EQ(a.rng_after, b.rng_after);
}

/// Run one full anneal with the detailed engine wired in.  `batched`
/// drives every stage through run_stage_batched(k); k = 0 means the
/// classic run_stage path.
AnnealOutcome run_anneal(std::size_t k, std::uint64_t seed) {
  Floorplan3D fp = batch_instance(4);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  thermal::ThermalEngine engine(fp.tech(), cfg,
                                {.threads = k > 1 ? std::size_t{2}
                                                  : std::size_t{1}});
  const thermal::PowerBlur blur(engine, 5);
  fpn::CostEvaluator::Options eopt;
  eopt.weights = fpn::tsc_aware_weights();
  eopt.leakage_grid = 16;
  eopt.detailed_engine = &engine;
  fpn::CostEvaluator eval(fp, blur, eopt);

  fpn::AnnealOptions opt;
  opt.total_moves = 1200;
  opt.stages = 8;
  opt.full_eval_interval = 90;
  opt.thermal_eval_interval = 7;
  fpn::Annealer annealer(fp, eval, opt);

  Rng rng(seed);
  fpn::LayoutState state = fpn::LayoutState::initial(fp, rng);
  fpn::AnnealSession session = annealer.begin(state, rng);
  if (k == 0) {
    while (annealer.run_stage(session, rng)) {
    }
  } else {
    while (annealer.run_stage_batched(session, rng, k)) {
    }
  }
  AnnealOutcome out;
  out.stats = annealer.finish(session, rng);
  out.width = state.width;
  out.height = state.height;
  out.die_of = state.die_of;
  out.rng_after = rng();
  return out;
}

TEST(AnnealerBatched, BatchOfOneBitwiseMatchesUnbatchedPath) {
  // The acceptance contract of the whole feature: driving every stage
  // through the batched machinery at k = 1 must reproduce the classic
  // path bit for bit -- same RNG stream, same costs, same layout.
  expect_same_outcome(run_anneal(0, 33), run_anneal(1, 33));
}

TEST(AnnealerBatched, DeterministicPerSeedAtBatchFour) {
  expect_same_outcome(run_anneal(4, 21), run_anneal(4, 21));
  const AnnealOutcome a = run_anneal(4, 21);
  const AnnealOutcome b = run_anneal(4, 22);
  EXPECT_NE(a.stats.best_cost, b.stats.best_cost);
}

TEST(AnnealerBatched, BatchedRunFindsLegalFloorplan) {
  Floorplan3D fp = batch_instance(7);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  thermal::ThermalEngine engine(fp.tech(), cfg, {.threads = 2});
  const thermal::PowerBlur blur(engine, 5);
  fpn::CostEvaluator::Options eopt;
  eopt.leakage_grid = 16;
  fpn::CostEvaluator eval(fp, blur, eopt);
  fpn::AnnealOptions opt;
  opt.total_moves = 4000;
  opt.stages = 20;
  opt.full_eval_interval = 200;
  opt.batch_candidates = 3;  // dispatched by plain run_stage via run()
  fpn::Annealer annealer(fp, eval, opt);
  Rng rng(7);
  fpn::LayoutState state = fpn::LayoutState::initial(fp, rng);
  const fpn::AnnealStats stats = annealer.run(state, rng);
  EXPECT_GT(stats.moves, 0u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_TRUE(stats.found_legal);
  EXPECT_TRUE(fp.check_legality().legal);
}

// ---------------------------------------------------------------------------

TEST(CostEvaluatorBatch, BatchOfOneMatchesEvaluateThermal) {
  // Two identical evaluator/engine stacks; one scores a modified layout
  // with evaluate_thermal, the other through the batch protocol.  Costs,
  // caches (probed via evaluate_cheap), and the engines' warm fields
  // (probed via a second evaluate_thermal) must agree bitwise.
  auto make = [](Floorplan3D& fp, thermal::ThermalEngine& engine,
                 const thermal::PowerBlur& blur) {
    fpn::CostEvaluator::Options o;
    o.weights = fpn::tsc_aware_weights();
    o.leakage_grid = 16;
    o.detailed_engine = &engine;
    return fpn::CostEvaluator(fp, blur, o);
  };
  Floorplan3D fp_a = batch_instance(9);
  Floorplan3D fp_b = batch_instance(9);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  thermal::ThermalEngine engine_a(fp_a.tech(), cfg);
  thermal::ThermalEngine engine_b(fp_b.tech(), cfg, {.threads = 2});
  const thermal::PowerBlur blur_a(engine_a, 5);
  const thermal::PowerBlur blur_b(engine_b, 5);
  fpn::CostEvaluator eval_a = make(fp_a, engine_a, blur_a);
  fpn::CostEvaluator eval_b = make(fp_b, engine_b, blur_b);

  Rng rng_a(5), rng_b(5);
  fpn::LayoutState state_a = fpn::LayoutState::initial(fp_a, rng_a);
  fpn::LayoutState state_b = fpn::LayoutState::initial(fp_b, rng_b);
  state_a.apply_to(fp_a);
  state_b.apply_to(fp_b);
  const fpn::CostBreakdown full_a = eval_a.evaluate_full();
  const fpn::CostBreakdown full_b = eval_b.evaluate_full();
  EXPECT_EQ(full_a.total, full_b.total);

  // The same one-module resize on both layouts.
  std::swap(state_a.width[3], state_a.height[3]);
  std::swap(state_b.width[3], state_b.height[3]);
  state_a.apply_to(fp_a);
  const fpn::CostBreakdown direct = eval_a.evaluate_thermal();

  state_b.apply_to(fp_b);
  eval_b.batch_begin(fpn::CostEvaluator::EvalLevel::thermal, 1);
  eval_b.batch_stage();
  ASSERT_EQ(eval_b.batch_size(), 1u);
  const std::vector<fpn::CostBreakdown> batch = eval_b.batch_evaluate();
  ASSERT_EQ(batch.size(), 1u);
  eval_b.batch_adopt(0);

  EXPECT_EQ(direct.total, batch[0].total);
  EXPECT_EQ(direct.peak_k_rise, batch[0].peak_k_rise);
  ASSERT_EQ(direct.correlation.size(), batch[0].correlation.size());
  for (std::size_t d = 0; d < direct.correlation.size(); ++d)
    EXPECT_EQ(direct.correlation[d], batch[0].correlation[d]);

  // Cache equality: a cheap eval carries the adopted expensive terms.
  EXPECT_EQ(eval_a.evaluate_cheap().total, eval_b.evaluate_cheap().total);
  // Warm-field equality: the next thermal refresh warm-starts from the
  // adopted candidate's field on both sides.
  std::swap(state_a.width[5], state_a.height[5]);
  std::swap(state_b.width[5], state_b.height[5]);
  state_a.apply_to(fp_a);
  state_b.apply_to(fp_b);
  EXPECT_EQ(eval_a.evaluate_thermal().total, eval_b.evaluate_thermal().total);
}

TEST(CostEvaluatorBatch, ProtocolMisuseThrows) {
  Floorplan3D fp = batch_instance(3);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  thermal::ThermalEngine engine(fp.tech(), cfg);
  const thermal::PowerBlur blur(engine, 5);
  fpn::CostEvaluator::Options o;
  o.leakage_grid = 16;
  fpn::CostEvaluator eval(fp, blur, o);
  Rng rng(2);
  fpn::LayoutState state = fpn::LayoutState::initial(fp, rng);
  state.apply_to(fp);

  EXPECT_THROW(eval.batch_stage(), std::logic_error);
  EXPECT_THROW((void)eval.batch_evaluate(), std::logic_error);
  EXPECT_THROW(eval.batch_adopt(0), std::logic_error);

  eval.batch_begin(fpn::CostEvaluator::EvalLevel::cheap, 2);
  EXPECT_THROW(eval.batch_begin(fpn::CostEvaluator::EvalLevel::cheap, 2),
               std::logic_error);
  eval.batch_stage();
  (void)eval.batch_evaluate();
  EXPECT_THROW(eval.batch_adopt(5), std::out_of_range);
  eval.batch_adopt(0);
  // Closed: a new batch may start again.
  eval.batch_begin(fpn::CostEvaluator::EvalLevel::cheap, 1);
  eval.batch_stage();
  (void)eval.batch_evaluate();
  eval.batch_adopt(0);
}

// ---------------------------------------------------------------------------

fpn::ChainSetup batched_chain_setup(bool parallel) {
  fpn::ChainSetup s;
  s.fast_thermal.grid_nx = s.fast_thermal.grid_ny = 16;
  s.blur_radius = 5;
  s.detailed_inner_thermal = true;  // exercise the engine batch per chain
  s.engine_parallel.threads = 2;
  s.eval.weights = fpn::power_aware_weights();
  s.eval.leakage_grid = 16;
  s.anneal.total_moves = 1200;
  s.anneal.stages = 6;
  s.anneal.full_eval_interval = 150;
  s.anneal.thermal_eval_interval = 9;
  s.anneal.batch_candidates = 3;
  s.chains.chains = 3;
  s.chains.exchange_interval = 2;
  s.chains.ladder_ratio = 4.0;
  s.chains.parallel = parallel;
  return s;
}

TEST(ChainOrchestratorBatched, SchedulingIndependentUnderBatching) {
  // Batched steps inside parallel-tempering chains: threaded and
  // sequential chain scheduling must agree exactly, as must a repeat of
  // the threaded run -- batching keeps everything chain-local.
  auto run_once = [](bool parallel) {
    Floorplan3D fp = batch_instance(11);
    Rng rng(3);
    const fpn::LayoutState initial = fpn::LayoutState::initial(fp, rng);
    fpn::ChainOrchestrator orchestrator(batched_chain_setup(parallel));
    const fpn::ChainReport report = orchestrator.run(fp, initial, 42);
    std::vector<double> coords;
    for (const Module& m : fp.modules()) {
      coords.push_back(m.shape.x);
      coords.push_back(m.shape.y);
    }
    return std::make_tuple(report.winner, report.exchange.accepts, coords,
                           report.chains.at(report.winner).best_cost);
  };
  const auto threaded = run_once(true);
  const auto sequential = run_once(false);
  const auto repeat = run_once(true);
  EXPECT_EQ(threaded, sequential);
  EXPECT_EQ(threaded, repeat);
}

}  // namespace
}  // namespace tsc3d
