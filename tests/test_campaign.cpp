// The adversarial campaign runner (src/campaign/): matrix expansion
// (count, canonical ordering, dedup, flavor baking), idempotent
// enqueueing on the batch queue, Pareto-front extraction on hand-built
// points, scenario-file round trips, and the headline determinism
// contract -- the same campaign evaluated at different worker counts,
// fresh or through the scenario cache, produces identical results and
// byte-identical report artifacts.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/matrix.hpp"
#include "campaign/options.hpp"
#include "campaign/pareto.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "campaign/scenario_io.hpp"
#include "config/config_file.hpp"
#include "service/job_queue.hpp"

namespace tsc3d::campaign {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// A campaign spec small enough that full evaluation takes seconds.
constexpr const char* kCampaignConfig =
    "[floorplanning]\n"
    "sa_moves = 1200\n"
    "sa_stages = 8\n"
    "fast_grid = 16\n"
    "verify_grid = 24\n"
    "sampling_grid = 16\n"
    "[campaign]\n"
    "attacks = localization, characterization\n"
    "mitigations = none, noise_injection\n"
    "flavors = power_aware\n"
    "seeds = 1\n"
    "attack_grid = 8\n"
    "monitoring_trials = 2\n"
    "covert_bits = 4\n"
    "leakage_phases = 3\n";

config::ConfigFile campaign_config() {
  return config::ConfigFile::parse(kCampaignConfig, "test campaign");
}

CampaignOptions tiny_options() {
  CampaignOptions opt;
  opt.attacks = {AttackKind::localization, AttackKind::characterization};
  opt.mitigations = {MitigationKind::none, MitigationKind::noise_injection};
  opt.flavors = {FlavorKind::power_aware, FlavorKind::monolithic};
  opt.seed_lo = 1;
  opt.seed_hi = 2;
  return opt;
}

// --- matrix expansion ---------------------------------------------------

TEST(CampaignMatrix, ExpandsTheFullCrossProduct) {
  const config::ConfigFile cfg = config::ConfigFile::parse("", "empty");
  const std::vector<service::JobSpec> jobs =
      expand_matrix(tiny_options(), cfg);
  ASSERT_EQ(jobs.size(), 2u * 2u * 2u * 2u);
  for (const service::JobSpec& job : jobs) {
    EXPECT_TRUE(job.is_scenario());
    EXPECT_EQ(job.benchmark, "n100");
    EXPECT_NO_THROW((void)parse_attack(job.scenario));
    EXPECT_NO_THROW((void)parse_mitigation(job.mitigation));
    EXPECT_NO_THROW((void)parse_flavor(job.flavor));
  }
}

TEST(CampaignMatrix, OrderingIsCanonicalAndInputOrderIndependent) {
  const config::ConfigFile cfg = config::ConfigFile::parse("", "empty");
  const std::vector<service::JobSpec> jobs =
      expand_matrix(tiny_options(), cfg);

  // Sorted by (attack, mitigation, flavor, seed) names.
  const auto key = [](const service::JobSpec& j) {
    return std::make_tuple(j.scenario, j.mitigation, j.flavor, j.seed);
  };
  for (std::size_t i = 1; i < jobs.size(); ++i)
    EXPECT_LT(key(jobs[i - 1]), key(jobs[i])) << "row " << i;

  // Scrambled, repeated axis lists expand to the identical job list.
  CampaignOptions scrambled = tiny_options();
  std::reverse(scrambled.attacks.begin(), scrambled.attacks.end());
  std::reverse(scrambled.flavors.begin(), scrambled.flavors.end());
  scrambled.mitigations.push_back(MitigationKind::none);  // repeat
  scrambled.attacks.push_back(AttackKind::localization);  // repeat
  EXPECT_EQ(expand_matrix(scrambled, cfg), jobs);
}

TEST(CampaignMatrix, BakesTheFlavorIntoTheConfigText) {
  const config::ConfigFile cfg = config::ConfigFile::parse(
      "[floorplanning]\nsa_moves = 777\n", "base");
  CampaignOptions opt = tiny_options();
  opt.attacks = {AttackKind::localization};
  opt.mitigations = {MitigationKind::none};
  opt.seed_hi = 1;
  const std::vector<service::JobSpec> jobs = expand_matrix(opt, cfg);
  ASSERT_EQ(jobs.size(), 2u);
  for (const service::JobSpec& job : jobs) {
    const config::ConfigFile parsed =
        config::ConfigFile::parse(job.config_text, "job");
    // Non-flavor keys survive verbatim; the flavor sets mode + stack.
    EXPECT_EQ(parsed.get_size("floorplanning.sa_moves", 0), 777u);
    const std::string mode = parsed.get_string("floorplanning.mode", "");
    const std::string stack = parsed.get_string("technology.flavor", "");
    if (job.flavor == "monolithic") {
      EXPECT_EQ(mode, "power");
      EXPECT_EQ(stack, "monolithic");
    } else {
      EXPECT_EQ(job.flavor, "power_aware");
      EXPECT_EQ(mode, "power");
      EXPECT_EQ(stack, "tsv");
    }
  }
}

TEST(CampaignMatrix, ExplorationSpecStripsOnlyTheScenarioAnnotations) {
  const config::ConfigFile cfg = config::ConfigFile::parse("", "empty");
  const std::vector<service::JobSpec> jobs =
      expand_matrix(tiny_options(), cfg);
  for (const service::JobSpec& job : jobs) {
    const service::JobSpec exp = exploration_spec(job);
    EXPECT_FALSE(exp.is_scenario());
    EXPECT_TRUE(exp.mitigation.empty());
    EXPECT_TRUE(exp.flavor.empty());
    EXPECT_EQ(exp.benchmark, job.benchmark);
    EXPECT_EQ(exp.seed, job.seed);
    EXPECT_EQ(exp.config_text, job.config_text);
  }
  // Scenario jobs differing only in attack/mitigation share the same
  // exploration (and thus one cached floorplan result).
  const service::JobSpec& a = jobs.front();
  for (const service::JobSpec& b : jobs)
    if (b.flavor == a.flavor && b.seed == a.seed &&
        (b.scenario != a.scenario || b.mitigation != a.mitigation))
      EXPECT_EQ(service::job_id(exploration_spec(a)),
                service::job_id(exploration_spec(b)));
}

TEST(CampaignMatrix, ScenarioJobTextRoundTripsAndPlainIdsAreUnchanged) {
  const config::ConfigFile cfg = config::ConfigFile::parse("", "empty");
  const std::vector<service::JobSpec> jobs =
      expand_matrix(tiny_options(), cfg);
  for (const service::JobSpec& job : jobs)
    EXPECT_EQ(service::parse_job(service::format_job(job)), job);

  // A plain job's canonical text has no scenario lines at all, so job
  // ids from before the campaign runner existed are unchanged.  (Use an
  // empty config: the flavored config TEXT legitimately contains the
  // word "flavor".)
  service::JobSpec bare;
  bare.benchmark = "n100";
  bare.seed = 4;
  const std::string plain = service::format_job(bare);
  EXPECT_EQ(plain.find("scenario"), std::string::npos);
  EXPECT_EQ(plain.find("mitigation"), std::string::npos);
  EXPECT_EQ(plain.find("flavor"), std::string::npos);
}

TEST(CampaignMatrix, EnqueueIsIdempotent) {
  service::ServiceOptions sopt;
  sopt.queue_dir = fresh_dir("campaign_enqueue_q").string();
  service::JobQueue queue(sopt);

  CampaignPlan plan;
  plan.options = tiny_options();
  plan.jobs =
      expand_matrix(plan.options, config::ConfigFile::parse("", "empty"));

  const std::vector<std::string> first = enqueue_campaign(queue, plan);
  const std::vector<std::string> second = enqueue_campaign(queue, plan);
  EXPECT_EQ(first, second);
  EXPECT_EQ(queue.status().pending, plan.jobs.size());
}

// --- Pareto front on hand-built points ----------------------------------

TEST(CampaignPareto, SinglePointIsItsOwnFront) {
  const std::vector<ParetoPoint> front = pareto_front({{0.5, 3.0, 0}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], (ParetoPoint{0.5, 3.0, 0}));
}

TEST(CampaignPareto, DominatedPointsAreRemoved) {
  // (0.2, 5) and (0.8, 1) trade off; (0.5, 6) loses to (0.2, 5) on both
  // axes; (0.8, 2) loses to (0.8, 1) on overhead at equal leakage.
  const std::vector<ParetoPoint> front = pareto_front({
      {0.5, 6.0, 0},
      {0.8, 1.0, 1},
      {0.2, 5.0, 2},
      {0.8, 2.0, 3},
  });
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0], (ParetoPoint{0.2, 5.0, 2}));
  EXPECT_EQ(front[1], (ParetoPoint{0.8, 1.0, 1}));
}

TEST(CampaignPareto, TiesAreKeptAndOrderedByIndex) {
  const std::vector<ParetoPoint> front = pareto_front({
      {0.3, 2.0, 7},
      {0.3, 2.0, 1},
      {0.9, 9.0, 2},  // dominated
  });
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0].index, 1u);
  EXPECT_EQ(front[1].index, 7u);
}

TEST(CampaignPareto, FrontIsInputOrderIndependent) {
  std::vector<ParetoPoint> points = {
      {0.1, 9.0, 0}, {0.5, 5.0, 1}, {0.9, 1.0, 2},
      {0.5, 5.5, 3}, {0.2, 8.0, 4}, {0.2, 9.5, 5},
  };
  const std::vector<ParetoPoint> front = pareto_front(points);
  std::reverse(points.begin(), points.end());
  EXPECT_EQ(pareto_front(points), front);
  ASSERT_EQ(front.size(), 4u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LT(front[i - 1].leakage, front[i].leakage);
    EXPECT_GT(front[i - 1].overhead, front[i].overhead);
  }
}

// --- scenario files and the scenario cache ------------------------------

ScenarioResult sample_result() {
  ScenarioResult res;
  res.context.exploration.design_hash = 0x1111;
  res.context.exploration.config_hash = 0x2222;
  res.context.exploration.seed = 3;
  res.context.exploration.code_version = "test-code";
  res.context.attack = "localization";
  res.context.mitigation = "dtm";
  res.context.flavor = "tsc_secure";
  res.context.params_hash = 0x3333;
  res.legal = true;
  res.wirelength_m = 2.5;
  res.power_w = 6.25;
  res.critical_delay_ns = 1.5;
  res.peak_k = 351.25;
  res.mitigation_overhead_w = 0.5;
  res.mitigation_performance_loss = 0.125;
  res.mitigation_peak_k = 344.0;
  res.attack_success = 0.75;
  res.pearson_abs_max = 0.5;
  res.mi_max = 1.25;
  res.svf = 0.875;
  res.spatial_entropy_max = 4.5;
  res.leakage = 0.75;
  res.overhead = 7.53125;
  return res;
}

TEST(CampaignScenarioIo, RoundTripsEveryFieldAndWritesStableBytes) {
  const fs::path dir = fresh_dir("campaign_scn_io");
  const ScenarioResult res = sample_result();
  save_scenario_file(dir / "a.scn", res);
  const ScenarioLoad load = load_scenario_file(dir / "a.scn", &res.context);
  ASSERT_TRUE(load.ok) << load.reason;
  EXPECT_EQ(load.result, res);

  save_scenario_file(dir / "b.scn", res);
  EXPECT_EQ(read_bytes(dir / "a.scn"), read_bytes(dir / "b.scn"));
}

TEST(CampaignScenarioIo, CacheMissesOnContextMismatchNeverWrongHits) {
  const fs::path dir = fresh_dir("campaign_scn_cache");
  const ScenarioCache cache(dir);
  const ScenarioResult res = sample_result();
  EXPECT_FALSE(cache.probe(res.context).has_value());

  cache.store(res);
  const std::optional<ScenarioResult> hit = cache.probe(res.context);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, res);

  // Same key slot, different embedded context -> must degrade to a miss.
  ScenarioContext other = res.context;
  other.attack = "monitoring";
  EXPECT_FALSE(cache.probe(other).has_value());

  // A truncated cache file is a clean miss, not a crash or wrong hit.
  const std::string bytes = read_bytes(cache.path_for(res.context));
  std::ofstream(cache.path_for(res.context), std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  EXPECT_FALSE(cache.probe(res.context).has_value());
}

// --- the determinism contract -------------------------------------------

struct CampaignRun {
  std::vector<ScenarioResult> results;
  std::string scenarios_csv;
  std::string pareto_csv;
  std::string summary;
  std::size_t cache_hits = 0;
};

CampaignRun run_campaign(const std::string& tag, std::size_t workers,
                         const std::string& shared_cache_dir) {
  service::ServiceOptions sopt;
  sopt.queue_dir = fresh_dir("campaign_run_" + tag).string();
  sopt.cache_dir = shared_cache_dir;
  service::JobQueue queue(sopt);

  const CampaignPlan plan = plan_campaign(campaign_config());
  enqueue_campaign(queue, plan);
  const std::vector<ScenarioWorkReport> reports =
      drain(queue, plan.options, workers);

  CampaignRun run;
  EXPECT_EQ(reports.size(), plan.jobs.size());
  for (const ScenarioWorkReport& r : reports) {
    EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
    if (r.cache_hit) ++run.cache_hits;
  }
  run.results = collect_results(queue, plan);
  run.scenarios_csv = render_scenarios_csv(plan.jobs, run.results);
  run.pareto_csv = render_pareto_csv(plan.jobs, run.results);
  run.summary = render_summary(plan.options, plan.jobs, run.results);
  return run;
}

TEST(CampaignParallel, WorkerCountAndCacheStateNeverChangeTheReport) {
  // Fresh evaluation, one worker vs four workers on fresh queues.
  const CampaignRun serial = run_campaign("serial", 1, "");
  const CampaignRun parallel = run_campaign("parallel", 4, "");
  EXPECT_EQ(serial.results, parallel.results);
  EXPECT_EQ(serial.scenarios_csv, parallel.scenarios_csv);
  EXPECT_EQ(serial.pareto_csv, parallel.pareto_csv);
  EXPECT_EQ(serial.summary, parallel.summary);

  // Third run on a fresh queue sharing the serial run's cache: every
  // scenario is served from cache, and nothing in the report moves.
  const std::string cache_dir =
      (fs::path(::testing::TempDir()) / "campaign_run_serial" / "cache")
          .string();
  const CampaignRun cached = run_campaign("cached", 2, cache_dir);
  EXPECT_EQ(cached.cache_hits, cached.results.size());
  EXPECT_EQ(serial.results, cached.results);
  EXPECT_EQ(serial.scenarios_csv, cached.scenarios_csv);
  EXPECT_EQ(serial.pareto_csv, cached.pareto_csv);
  EXPECT_EQ(serial.summary, cached.summary);
}

TEST(CampaignReport, WritesByteIdenticalArtifactsAcrossReruns) {
  const config::ConfigFile cfg = config::ConfigFile::parse("", "empty");
  CampaignOptions opt = tiny_options();
  const std::vector<service::JobSpec> jobs = expand_matrix(opt, cfg);

  // Synthetic results keyed off the row index: deterministic, no
  // evaluation needed to exercise the writer.
  std::vector<ScenarioResult> results(jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].legal = true;
    results[i].leakage = static_cast<double>(i % 5) / 8.0;
    results[i].overhead = 5.0 + static_cast<double>(i % 3) / 16.0;
    results[i].attack_success = results[i].leakage;
    results[i].power_w = results[i].overhead;
  }

  const fs::path dir1 = fresh_dir("campaign_report_1");
  const fs::path dir2 = fresh_dir("campaign_report_2");
  write_report(dir1, opt, jobs, results);
  write_report(dir2, opt, jobs, results);
  for (const char* name : {"scenarios.csv", "pareto.csv", "SUMMARY.txt"}) {
    const std::string a = read_bytes(dir1 / name);
    EXPECT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, read_bytes(dir2 / name)) << name;
  }

  // Every Pareto row must reference a scenario row that exists.
  const std::string pareto = read_bytes(dir1 / "pareto.csv");
  EXPECT_NE(pareto.find("localization,"), std::string::npos);
}

}  // namespace
}  // namespace tsc3d::campaign
