// End-to-end integration: config file -> options -> generate -> full
// Fig. 3 flow -> metrics -> GSRC export -> re-import -> same leakage
// numbers.  This is the pipeline a downstream user scripts against.
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "benchgen/gsrc_io.hpp"
#include "config/apply.hpp"
#include "config/config_file.hpp"
#include "floorplan/floorplanner.hpp"
#include "leakage/pearson.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d {
namespace {

class IntegrationFlow : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own process, in parallel with its
    // siblings; the artifact directory must be unique per test or one
    // test's TearDown races another's round trip.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("tsc3d_integration_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IntegrationFlow, ConfigDrivenTscFlowProducesConsistentArtifacts) {
  // 1. Options from a config string, exactly as the CLI does.
  const auto cfg = config::ConfigFile::parse(
      "[floorplanning]\n"
      "mode = tsc\n"
      "sa_moves = 2500\n"
      "fast_grid = 16\n"
      "verify_grid = 32\n"
      "sampling_grid = 16\n"
      "dummy_max_iterations = 3\n"
      "dummy_samples = 6\n"
      "[thermal]\n"
      "grid_nx = 32\n"
      "grid_ny = 32\n");
  auto options = config::make_floorplanner_options(cfg);
  options.anneal.stages = 15;
  EXPECT_TRUE(cfg.unused_keys().empty());

  // 2. Generate and floorplan a small instance.
  benchgen::BenchmarkSpec spec;
  spec.name = "itest";
  spec.soft_modules = 24;
  spec.num_nets = 40;
  spec.num_terminals = 6;
  spec.outline_mm2 = 4.0;
  spec.power_w = 2.0;
  Floorplan3D fp = benchgen::generate(spec, 31);
  Rng rng(31);
  const floorplan::Floorplanner planner(options);
  const auto metrics = planner.run(fp, rng);

  // 3. Metrics are internally consistent.
  ASSERT_EQ(metrics.correlation.size(), 2u);
  EXPECT_GE(std::abs(metrics.correlation[0]), 0.0);
  EXPECT_LE(std::abs(metrics.correlation[0]), 1.0);
  EXPECT_GT(metrics.power_w, 0.0);
  EXPECT_GT(metrics.peak_k, 293.0);
  EXPECT_EQ(metrics.signal_tsvs, fp.tsv_count(TsvKind::signal));
  EXPECT_EQ(metrics.dummy_tsvs, fp.tsv_count(TsvKind::dummy));

  // 4. Export the placed design and re-import it.
  benchgen::write_bundle(fp, dir_ / "chip");
  const Floorplan3D back = benchgen::read_bundle(
      fp.tech(), dir_ / "chip.blocks", dir_ / "chip.nets",
      dir_ / "chip.pl", dir_ / "chip.power");
  ASSERT_EQ(back.modules().size(), fp.modules().size());
  ASSERT_EQ(back.nets().size(), fp.nets().size());

  // 5. The re-imported design yields the same per-die correlation
  //    (positions, dies, and powers survived the round trip; TSVs are
  //    design data, so reuse the original density map).
  ThermalConfig cfg2 = options.thermal;
  // The 1e-6 correlation comparison below measures round-trip fidelity;
  // solve tightly enough that solver error stays well under that bound.
  cfg2.tolerance_k = 1e-7;
  const thermal::GridSolver solver(fp.tech(), cfg2);
  const std::size_t nx = cfg2.grid_nx, ny = cfg2.grid_ny;
  const GridD tsv = fp.tsv_density_map(nx, ny);
  for (std::size_t d = 0; d < 2; ++d) {
    const GridD p_orig = fp.power_map(d, nx, ny);
    const GridD p_back = back.power_map(d, nx, ny);
    for (std::size_t i = 0; i < p_orig.size(); ++i)
      ASSERT_NEAR(p_back[i], p_orig[i], 1e-6);
  }
  const auto t_orig = solver.solve_steady(
      {fp.power_map(0, nx, ny), fp.power_map(1, nx, ny)}, tsv);
  const auto t_back = solver.solve_steady(
      {back.power_map(0, nx, ny), back.power_map(1, nx, ny)}, tsv);
  for (std::size_t d = 0; d < 2; ++d) {
    const double r_orig =
        leakage::pearson(fp.power_map(d, nx, ny), t_orig.die_temperature[d]);
    const double r_back = leakage::pearson(back.power_map(d, nx, ny),
                                           t_back.die_temperature[d]);
    EXPECT_NEAR(r_back, r_orig, 1e-6);
  }
}

TEST_F(IntegrationFlow, MonolithicConfigRunsTheFlowEndToEnd) {
  const auto cfg = config::ConfigFile::parse(
      "[floorplanning]\n"
      "mode = tsc\n"
      "sa_moves = 1500\n"
      "fast_grid = 16\n"
      "verify_grid = 16\n"
      "dummy_insertion = false\n"
      "[technology]\n"
      "flavor = monolithic\n"
      "[thermal]\n"
      "grid_nx = 16\n"
      "grid_ny = 16\n");
  auto options = config::make_floorplanner_options(cfg);
  options.anneal.stages = 10;
  TechnologyConfig tech;
  config::apply_technology(cfg, tech);

  benchgen::BenchmarkSpec spec;
  spec.name = "mono";
  spec.soft_modules = 16;
  spec.num_nets = 24;
  spec.num_terminals = 4;
  spec.outline_mm2 = 4.0;
  spec.power_w = 1.5;
  Floorplan3D fp = benchgen::generate(spec, 37);
  fp.tech() = tech;
  fp.tech().die_width_um = 2000.0;
  fp.tech().die_height_um = 2000.0;

  Rng rng(37);
  const auto metrics = floorplan::Floorplanner(options).run(fp, rng);
  EXPECT_EQ(metrics.dummy_tsvs, 0u);  // disabled above
  EXPECT_GT(metrics.peak_k, 293.0);
  EXPECT_EQ(metrics.correlation.size(), 2u);
}

}  // namespace
}  // namespace tsc3d
