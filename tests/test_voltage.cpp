// Tests of voltage-volume construction and selection (Sec. 6.1).
#include <gtest/gtest.h>

#include <set>

#include "power/voltage.hpp"

namespace tsc3d::power {
namespace {

/// A 2x2 arrangement of abutting modules on die 0 plus one module on
/// die 1 overlapping the first -- a small but complete topology.
Floorplan3D grid_design() {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  tech.clock_period_ns = 100.0;  // generous: all voltages feasible
  Floorplan3D fp(tech);
  const double s = 500.0;
  int k = 0;
  for (int iy = 0; iy < 2; ++iy) {
    for (int ix = 0; ix < 2; ++ix) {
      Module m;
      m.name = "m" + std::to_string(k++);
      m.shape = {ix * s, iy * s, s, s};
      m.area_um2 = s * s;
      m.power_w = 1.0;
      m.intrinsic_delay_ns = 0.1;
      m.die = 0;
      fp.modules().push_back(m);
    }
  }
  Module top;
  top.name = "top";
  top.shape = {0.0, 0.0, s, s};
  top.area_um2 = s * s;
  top.power_w = 1.0;
  top.intrinsic_delay_ns = 0.1;
  top.die = 1;
  fp.modules().push_back(top);
  // One net tying everything together so timing has stages.
  Net n;
  for (std::size_t i = 0; i < 5; ++i) n.pins.push_back({i, kInvalidIndex});
  fp.nets().push_back(n);
  return fp;
}

TEST(VoltageAssigner, AdjacencySameDieAndCrossDie) {
  Floorplan3D fp = grid_design();
  const ElmoreTiming t(fp);
  VoltageOptions opt;
  opt.adjacency_tolerance_um = 10.0;
  const VoltageAssigner va(fp, t, opt);
  EXPECT_TRUE(va.adjacent(0, 1));   // abutting horizontally
  EXPECT_TRUE(va.adjacent(0, 2));   // abutting vertically
  EXPECT_TRUE(va.adjacent(0, 4));   // vertical overlap across dies
  EXPECT_FALSE(va.adjacent(1, 4));  // different die, disjoint footprints
}

TEST(VoltageAssigner, EveryModuleAssignedExactlyOnce) {
  Floorplan3D fp = grid_design();
  const ElmoreTiming t(fp);
  VoltageAssigner va(fp, t, {});
  const VoltageAssignment res = va.assign();
  std::set<std::size_t> seen;
  for (const VoltageVolume& v : res.volumes)
    for (const std::size_t m : v.modules)
      EXPECT_TRUE(seen.insert(m).second) << "module assigned twice";
  EXPECT_EQ(seen.size(), fp.modules().size());
}

TEST(VoltageAssigner, PowerAwarePicksLowestFeasibleVoltage) {
  Floorplan3D fp = grid_design();  // generous clock: 0.8 V feasible
  const ElmoreTiming t(fp);
  VoltageOptions opt;
  opt.objective = VoltageObjective::power_aware;
  VoltageAssigner va(fp, t, opt);
  const VoltageAssignment res = va.assign();
  for (const VoltageVolume& v : res.volumes)
    EXPECT_EQ(v.voltage_index, 0u);  // 0.8 V
  for (const Module& m : fp.modules())
    EXPECT_EQ(m.voltage_index, 0u);
  // Total power reflects the 0.817 scaling of all 5 modules.
  EXPECT_NEAR(res.total_power_w, 5.0 * 0.817, 1e-9);
}

TEST(VoltageAssigner, TightClockForcesNominalOrHigher) {
  Floorplan3D fp = grid_design();
  // Clock set so that 0.8 V violates timing but 1.0 V passes.
  const ElmoreTiming probe(fp);
  const double nominal_stage = probe.analyze().critical_delay_ns;
  fp.tech().clock_period_ns = nominal_stage * 1.05;
  const ElmoreTiming t(fp);
  VoltageOptions opt;
  opt.objective = VoltageObjective::power_aware;
  VoltageAssigner va(fp, t, opt);
  va.assign();
  for (const Module& m : fp.modules()) EXPECT_GE(m.voltage_index, 1u);
}

TEST(VoltageAssigner, TscObjectiveSplitsDissimilarDensities) {
  // Two abutting modules with a 10x density gap: the TSC objective must
  // keep them in separate volumes, PA may merge them.
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  tech.clock_period_ns = 100.0;
  Floorplan3D fp(tech);
  for (int i = 0; i < 2; ++i) {
    Module m;
    m.name = "m" + std::to_string(i);
    m.shape = {i * 500.0, 0.0, 500.0, 500.0};
    m.area_um2 = 500.0 * 500.0;
    m.power_w = i == 0 ? 0.2 : 2.0;
    m.intrinsic_delay_ns = 0.1;
    fp.modules().push_back(m);
  }
  Net n;
  n.pins.push_back({0, kInvalidIndex});
  n.pins.push_back({1, kInvalidIndex});
  fp.nets().push_back(n);

  const ElmoreTiming t(fp);
  VoltageOptions pa;
  pa.objective = VoltageObjective::power_aware;
  VoltageAssigner va_pa(fp, t, pa);
  const std::size_t pa_volumes = va_pa.assign().num_volumes();

  VoltageOptions tsc;
  tsc.objective = VoltageObjective::tsc_aware;
  tsc.density_band = 0.3;
  VoltageAssigner va_tsc(fp, t, tsc);
  const std::size_t tsc_volumes = va_tsc.assign().num_volumes();

  EXPECT_EQ(pa_volumes, 1u);
  EXPECT_EQ(tsc_volumes, 2u);
}

TEST(VoltageAssigner, VolumeStatisticsConsistent) {
  Floorplan3D fp = grid_design();
  const ElmoreTiming t(fp);
  VoltageAssigner va(fp, t, {});
  const VoltageAssignment res = va.assign();
  double power = 0.0, area = 0.0;
  for (const VoltageVolume& v : res.volumes) {
    power += v.power_w;
    area += v.area_um2;
    EXPECT_GT(v.area_um2, 0.0);
  }
  EXPECT_NEAR(power, res.total_power_w, 1e-9);
  EXPECT_NEAR(area, 5.0 * 500.0 * 500.0, 1e-6);
}

TEST(VoltageAssigner, CrossDieVolumeFlagged) {
  Floorplan3D fp = grid_design();
  const ElmoreTiming t(fp);
  VoltageAssigner va(fp, t, {});
  const VoltageAssignment res = va.assign();
  // Module 4 (top die) overlaps module 0: with the generous clock they
  // merge into one volume spanning both dies.
  bool any_spanning = false;
  for (const VoltageVolume& v : res.volumes) any_spanning |= v.spans_dies;
  EXPECT_TRUE(any_spanning);
}

}  // namespace
}  // namespace tsc3d::power
