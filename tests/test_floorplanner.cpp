// End-to-end integration tests of the full Fig. 3 flow on a reduced
// instance: PA and TSC setups, legality, metric sanity, and the headline
// qualitative result (TSC-aware floorplanning does not increase the
// bottom-die correlation).
#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "floorplan/floorplanner.hpp"

namespace tsc3d::floorplan {
namespace {

Floorplan3D small_instance(std::uint64_t seed) {
  benchgen::BenchmarkSpec spec;
  spec.name = "tiny";
  spec.soft_modules = 20;
  spec.num_nets = 35;
  spec.num_terminals = 8;
  spec.outline_mm2 = 4.0;
  spec.power_w = 2.5;
  return benchgen::generate(spec, seed);
}

FloorplannerOptions fast_options(FlowMode mode) {
  FloorplannerOptions o = mode == FlowMode::power_aware
                              ? Floorplanner::power_aware_setup()
                              : Floorplanner::tsc_aware_setup();
  o.anneal.total_moves = 8000;
  o.anneal.stages = 20;
  o.anneal.full_eval_interval = 150;
  o.fast_grid = 16;
  o.verify_grid = 24;
  o.sampling_grid = 16;
  o.blur_radius = 5;
  o.dummy.samples_per_iteration = 6;
  o.dummy.max_iterations = 3;
  return o;
}

TEST(Floorplanner, PowerAwareFlowProducesLegalPlacement) {
  Floorplan3D fp = small_instance(1);
  const Floorplanner planner(fast_options(FlowMode::power_aware));
  Rng rng(1);
  const FloorplanMetrics m = planner.run(fp, rng);
  EXPECT_TRUE(m.legal);
  EXPECT_TRUE(fp.check_legality().legal);
  ASSERT_EQ(m.correlation.size(), 2u);
  ASSERT_EQ(m.entropy.size(), 2u);
  EXPECT_GT(m.power_w, 0.0);
  EXPECT_GT(m.critical_delay_ns, 0.0);
  EXPECT_GT(m.wirelength_m, 0.0);
  EXPECT_GT(m.peak_k, 293.15);
  EXPECT_GT(m.voltage_volumes, 0u);
  EXPECT_EQ(m.dummy_tsvs, 0u);  // PA runs no dummy insertion
  EXPECT_GT(m.runtime_s, 0.0);
}

TEST(Floorplanner, TscFlowRunsDummyInsertion) {
  Floorplan3D fp = small_instance(2);
  const Floorplanner planner(fast_options(FlowMode::tsc_aware));
  Rng rng(2);
  const FloorplanMetrics m = planner.run(fp, rng);
  EXPECT_TRUE(m.legal);
  // The dummy loop ran (its trace is populated) and respected the stop
  // criterion.
  EXPECT_GE(m.dummy.correlation_history.size(), 1u);
  EXPECT_LE(m.dummy.correlation_after, m.dummy.correlation_before + 1e-9);
  EXPECT_EQ(m.dummy_tsvs, m.dummy.tsvs_inserted);
}

TEST(Floorplanner, CorrelationsAreValidCoefficients) {
  Floorplan3D fp = small_instance(3);
  const Floorplanner planner(fast_options(FlowMode::tsc_aware));
  Rng rng(3);
  const FloorplanMetrics m = planner.run(fp, rng);
  for (const double r : m.correlation) {
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
  }
  for (const double s : m.entropy) EXPECT_GE(s, 0.0);
}

TEST(Floorplanner, SignalTsvCountMatchesCrossingNets) {
  Floorplan3D fp = small_instance(4);
  const Floorplanner planner(fast_options(FlowMode::power_aware));
  Rng rng(4);
  const FloorplanMetrics m = planner.run(fp, rng);
  std::size_t crossing = 0;
  for (const Net& n : fp.nets()) {
    bool d0 = false, d1 = false;
    for (const NetPin& p : n.pins) {
      // Terminals sit on die 0 and count toward the span.
      const std::size_t die = p.is_terminal()
                                  ? fp.terminals()[p.terminal].die
                                  : fp.modules()[p.module].die;
      (die == 0 ? d0 : d1) = true;
    }
    if (d0 && d1) ++crossing;
  }
  EXPECT_EQ(m.signal_tsvs, crossing);
}

TEST(Floorplanner, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    Floorplan3D fp = small_instance(5);
    const Floorplanner planner(fast_options(FlowMode::power_aware));
    Rng rng(seed);
    const FloorplanMetrics m = planner.run(fp, rng);
    return std::make_pair(m.correlation[0], m.wirelength_m);
  };
  const auto a = run_once(9);
  const auto b = run_once(9);
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(Floorplanner, TscSetupDoesNotWorsenBottomDieCorrelation) {
  // The paper's headline: TSC-aware floorplanning lowers r1 vs the PA
  // baseline (Table 2).  On a small instance with a modest SA budget we
  // assert the weaker, robust form: averaged over seeds, TSC <= PA + eps.
  double pa_sum = 0.0, tsc_sum = 0.0;
  const int runs = 6;
  for (int i = 0; i < runs; ++i) {
    {
      Floorplan3D fp = small_instance(100 + static_cast<std::uint64_t>(i));
      Rng rng(200 + static_cast<std::uint64_t>(i));
      const Floorplanner planner(fast_options(FlowMode::power_aware));
      pa_sum += std::abs(planner.run(fp, rng).correlation[0]);
    }
    {
      Floorplan3D fp = small_instance(100 + static_cast<std::uint64_t>(i));
      Rng rng(200 + static_cast<std::uint64_t>(i));
      const Floorplanner planner(fast_options(FlowMode::tsc_aware));
      tsc_sum += std::abs(planner.run(fp, rng).correlation[0]);
    }
  }
  EXPECT_LE(tsc_sum / runs, pa_sum / runs + 0.10);
}

}  // namespace
}  // namespace tsc3d::floorplan
