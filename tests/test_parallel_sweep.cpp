// Tests of the sharded red-black sweep: threaded engines must produce
// BITWISE-identical results to the serial engine for any thread count
// (the color barrier preserves the serial update order; within a color,
// nodes only read the other color), across steady, warm-started, and
// transient solves.  These suites also run under TSan on CI to vet the
// worker-pool synchronization.
#include <gtest/gtest.h>

#include "thermal/thermal_engine.hpp"

namespace tsc3d::thermal {
namespace {

TechnologyConfig test_tech() {
  TechnologyConfig t;
  t.die_width_um = 2000.0;
  t.die_height_um = 2000.0;
  return t;
}

ThermalConfig test_thermal(std::size_t grid = 20) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = grid;
  return c;
}

std::vector<GridD> test_power(std::size_t grid) {
  std::vector<GridD> power(2, GridD(grid, grid, 0.0));
  power[0].at(grid / 2, grid / 2) = 2.0;
  power[0].at(2, 3) = 0.7;
  power[1].at(grid - 3, grid - 2) = 1.1;
  return power;
}

GridD test_tsv(std::size_t grid) {
  GridD tsv(grid, grid, 0.1);
  tsv.at(4, 4) = 0.8;
  tsv.at(grid - 5, 6) = 0.5;
  return tsv;
}

void expect_bitwise_equal(const ThermalResult& a, const ThermalResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.residual_k, b.residual_k);  // exact: same update sequence
  EXPECT_EQ(a.peak_k, b.peak_k);
  ASSERT_EQ(a.layer_temperature.size(), b.layer_temperature.size());
  for (std::size_t l = 0; l < a.layer_temperature.size(); ++l) {
    ASSERT_EQ(a.layer_temperature[l].size(), b.layer_temperature[l].size());
    for (std::size_t c = 0; c < a.layer_temperature[l].size(); ++c)
      ASSERT_EQ(a.layer_temperature[l][c], b.layer_temperature[l][c])
          << "layer " << l << " cell " << c;
  }
}

TEST(ThermalEngineParallel, SteadySolveBitwiseEqualAcrossThreadCounts) {
  const auto power = test_power(20);
  const GridD tsv = test_tsv(20);
  ThermalEngine serial(test_tech(), test_thermal());
  const ThermalResult reference = serial.solve_steady(power, tsv);
  ASSERT_TRUE(reference.converged);

  for (const std::size_t threads : {2u, 3u, 4u, 8u}) {
    ThermalEngine sharded(test_tech(), test_thermal(),
                          {.threads = threads, .min_nodes_per_thread = 1});
    EXPECT_EQ(sharded.threads(), threads);
    const ThermalResult res = sharded.solve_steady(power, tsv);
    expect_bitwise_equal(reference, res);
  }
}

TEST(ThermalEngineParallel, WarmStartedSequenceBitwiseEqual) {
  // Walk a perturbed-power sequence, warm-starting every solve, on a
  // serial and a 4-thread engine side by side: every intermediate field
  // (and thus every sweep count) must match exactly.
  ThermalEngine serial(test_tech(), test_thermal());
  ThermalEngine sharded(test_tech(), test_thermal(),
                        {.threads = 4, .min_nodes_per_thread = 1});
  auto power = test_power(20);
  const GridD tsv = test_tsv(20);
  for (int step = 0; step < 4; ++step) {
    power[0].at(5 + static_cast<std::size_t>(step), 7) = 0.4 + 0.3 * step;
    const ThermalResult a = serial.solve_steady(power, tsv);
    const ThermalResult b = sharded.solve_steady(power, tsv);
    expect_bitwise_equal(a, b);
  }
  EXPECT_EQ(serial.stats().total_sweeps, sharded.stats().total_sweeps);
}

TEST(ThermalEngineParallel, TransientSolveBitwiseEqual) {
  ThermalEngine serial(test_tech(), test_thermal(12));
  ThermalEngine sharded(test_tech(), test_thermal(12),
                        {.threads = 3, .min_nodes_per_thread = 1});
  const auto power = test_power(12);
  const GridD tsv(12, 12, 0.2);
  const auto at = [&](double) { return power; };
  const TransientResult a = serial.solve_transient(at, tsv, 0.05, 0.01);
  const TransientResult b = sharded.solve_transient(at, tsv, 0.05, 0.01);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_EQ(a.unconverged_steps, b.unconverged_steps);
  expect_bitwise_equal(a.final_state, b.final_state);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    for (std::size_t d = 0; d < a.trace[i].die_peak_k.size(); ++d)
      EXPECT_EQ(a.trace[i].die_peak_k[d], b.trace[i].die_peak_k[d]);
}

TEST(ThermalEngineParallel, MoreThreadsThanRowsStillCorrect) {
  // 4x4 grid: fewer rows per color than workers; some shards are empty.
  const std::size_t g = 4;
  std::vector<GridD> power(2, GridD(g, g, 0.0));
  power[0].at(2, 2) = 1.0;
  const GridD tsv(g, g, 0.3);
  ThermalEngine serial(test_tech(), test_thermal(g));
  ThermalEngine sharded(test_tech(), test_thermal(g),
                        {.threads = 16, .min_nodes_per_thread = 1});
  expect_bitwise_equal(serial.solve_steady(power, tsv),
                       sharded.solve_steady(power, tsv));
}

TEST(ThermalEngineParallel, PoolPersistsAcrossManySolves) {
  // Many short solves on one engine: per-sweep spawn would dominate, a
  // persistent pool must not leak or deadlock.  (Run under TSan on CI.)
  ThermalEngine engine(test_tech(), test_thermal(8),
                       {.threads = 4, .min_nodes_per_thread = 1});
  std::vector<GridD> power(2, GridD(8, 8, 0.0));
  const GridD tsv(8, 8, 0.1);
  for (int i = 0; i < 50; ++i) {
    power[0].at(static_cast<std::size_t>(i) % 8, 3) = 0.5 + 0.01 * i;
    const ThermalResult res = engine.solve_steady(power, tsv);
    EXPECT_TRUE(res.converged);
  }
  EXPECT_EQ(engine.stats().steady_solves, 50u);
}

TEST(ThermalEngineParallel, ThreadsOneIsSerial) {
  ThermalEngine engine(test_tech(), test_thermal(), {.threads = 1});
  EXPECT_EQ(engine.threads(), 1u);
}

TEST(ThermalEngineParallel, TinyGridsAutoSerialize) {
  // The default min_nodes_per_thread floor keeps fast-loop-sized grids
  // serial (barrier rendezvous would outweigh the sharded work) while
  // verification-sized grids still shard.
  ThermalEngine tiny(test_tech(), test_thermal(16), {.threads = 8});
  EXPECT_EQ(tiny.threads(), 1u);
  ThermalEngine big(test_tech(), test_thermal(64), {.threads = 4});
  EXPECT_GT(big.threads(), 1u);
}

}  // namespace
}  // namespace tsc3d::thermal
