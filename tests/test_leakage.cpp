// Tests of the leakage metrics: Pearson correlation (Eq. 1), correlation
// stability (Eq. 2), and the Gaussian activity model (Sec. 6.2).
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "leakage/activity.hpp"
#include "leakage/pearson.hpp"

namespace tsc3d::leakage {
namespace {

TEST(Pearson, PerfectPositiveCorrelation) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{10, 20, 30, 40, 50};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Pearson, KnownValue) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{2, 1, 4, 3, 5};
  // Hand-computed: cov = 8/5, sd_a = sd_b = sqrt(2).
  EXPECT_NEAR(pearson(a, b), 0.8, 1e-12);
}

TEST(Pearson, ZeroVarianceYieldsZero) {
  const std::vector<double> a{3, 3, 3};
  const std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
  EXPECT_DOUBLE_EQ(pearson(b, a), 0.0);
}

TEST(Pearson, InvariantUnderAffineTransform) {
  Rng rng(77);
  std::vector<double> a(50), b(50);
  for (std::size_t i = 0; i < 50; ++i) {
    a[i] = rng.uniform();
    b[i] = 0.5 * a[i] + rng.gaussian(0.0, 0.2);
  }
  const double r = pearson(a, b);
  std::vector<double> a2 = a, b2 = b;
  for (double& v : a2) v = 3.0 * v + 17.0;   // positive affine map
  for (double& v : b2) v = 0.1 * v - 4.0;
  EXPECT_NEAR(pearson(a2, b2), r, 1e-9);
}

TEST(Pearson, SymmetricInArguments) {
  Rng rng(5);
  std::vector<double> a(30), b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    a[i] = rng.uniform();
    b[i] = rng.uniform();
  }
  EXPECT_NEAR(pearson(a, b), pearson(b, a), 1e-15);
}

TEST(Pearson, BoundedInUnitInterval) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(40), b(40);
    for (std::size_t i = 0; i < 40; ++i) {
      a[i] = rng.gaussian();
      b[i] = rng.gaussian();
    }
    const double r = pearson(a, b);
    EXPECT_GE(r, -1.0 - 1e-12);
    EXPECT_LE(r, 1.0 + 1e-12);
  }
}

TEST(Pearson, GridOverloadMatchesVectorOverload) {
  GridD p(3, 2), t(3, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    p[i] = static_cast<double>(i * i);
    t[i] = 5.0 - static_cast<double>(i);
  }
  EXPECT_DOUBLE_EQ(pearson(p, t), pearson(p.data(), t.data()));
}

TEST(Pearson, LengthMismatchThrows) {
  EXPECT_THROW((void)pearson(std::vector<double>{1, 2},
                             std::vector<double>{1}),
               std::invalid_argument);
}

TEST(StabilityAccumulator, PerfectlyLinearBinGivesOne) {
  StabilityAccumulator acc(2, 2);
  for (int s = 1; s <= 10; ++s) {
    GridD p(2, 2, 0.0), t(2, 2, 0.0);
    p.at(0, 0) = s;
    t.at(0, 0) = 3.0 * s + 1.0;  // exact linear relation
    p.at(1, 1) = s;
    t.at(1, 1) = -2.0 * s;       // exact inverse relation
    acc.add(p, t);
  }
  const GridD r = acc.stability();
  EXPECT_NEAR(r.at(0, 0), 1.0, 1e-9);
  EXPECT_NEAR(r.at(1, 1), -1.0, 1e-9);
  // Bins that never varied carry no signal.
  EXPECT_DOUBLE_EQ(r.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 0.0);
}

TEST(StabilityAccumulator, FewerThanTwoSamplesYieldsZeros) {
  StabilityAccumulator acc(2, 2);
  GridD p(2, 2, 1.0), t(2, 2, 2.0);
  acc.add(p, t);
  const GridD r = acc.stability();
  for (const double v : r) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(StabilityAccumulator, MeanAbsStability) {
  StabilityAccumulator acc(1, 2);
  for (int s = 1; s <= 5; ++s) {
    GridD p(1, 2, 0.0), t(1, 2, 0.0);
    p.at(0, 0) = s;
    t.at(0, 0) = s;      // r = +1
    p.at(0, 1) = s;
    t.at(0, 1) = -s;     // r = -1
    acc.add(p, t);
  }
  EXPECT_NEAR(acc.mean_abs_stability(), 1.0, 1e-9);
}

TEST(StabilityAccumulator, NoisyBinHasLowerStabilityThanCleanBin) {
  Rng rng(123);
  StabilityAccumulator acc(2, 1);
  for (int s = 0; s < 200; ++s) {
    GridD p(2, 1, 0.0), t(2, 1, 0.0);
    const double x = rng.uniform();
    p.at(0, 0) = x;
    t.at(0, 0) = x;                          // clean
    p.at(1, 0) = x;
    t.at(1, 0) = x + rng.gaussian(0.0, 2.0); // drowned in noise
    acc.add(p, t);
  }
  const GridD r = acc.stability();
  EXPECT_GT(r.at(0, 0), 0.99);
  EXPECT_LT(std::abs(r.at(1, 0)), 0.5);
}

TEST(StabilityAccumulator, GridMismatchThrows) {
  StabilityAccumulator acc(2, 2);
  EXPECT_THROW(acc.add(GridD(3, 2), GridD(2, 2)), std::invalid_argument);
}

TEST(ActivityModel, SampleMatchesNominalStatistics) {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 1000.0;
  Floorplan3D fp(tech);
  Module m;
  m.name = "a";
  m.shape = {0, 0, 100, 100};
  m.area_um2 = 1e4;
  m.power_w = 2.0;
  m.voltage_index = 1;
  fp.modules().push_back(m);

  ActivityModel model;
  Rng rng(42);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto p = model.sample(fp, rng);
    sum += p[0];
    sum2 += (p[0] - 2.0) * (p[0] - 2.0);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.01);
  EXPECT_NEAR(std::sqrt(sum2 / n), 0.2, 0.01);  // sigma = 10% of nominal
}

TEST(ActivityModel, SamplesAreNonNegative) {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 1000.0;
  Floorplan3D fp(tech);
  Module m;
  m.power_w = 0.001;  // tiny power: truncation must kick in sometimes
  m.shape = {0, 0, 10, 10};
  fp.modules().push_back(m);
  ActivityModel model;
  model.sigma_fraction = 5.0;  // huge spread to force negatives
  Rng rng(1);
  for (int i = 0; i < 1000; ++i)
    EXPECT_GE(model.sample(fp, rng)[0], 0.0);
}

TEST(ActivityModel, VoltageScalingShiftsMean) {
  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 1000.0;
  Floorplan3D fp(tech);
  Module m;
  m.power_w = 1.0;
  m.shape = {0, 0, 10, 10};
  m.voltage_index = 2;  // 1.2 V -> power x1.496
  fp.modules().push_back(m);
  ActivityModel model;
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += model.sample(fp, rng)[0];
  EXPECT_NEAR(sum / n, 1.496, 0.01);
}

}  // namespace
}  // namespace tsc3d::leakage
