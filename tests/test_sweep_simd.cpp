// Tests of the hand-vectorized (AVX2) red-black color sweep in
// thermal/sweep.cpp: the SIMD kernel must be BITWISE identical to the
// scalar one -- same operation order per node, no FMA contraction --
// across both backends, cold and warm starts, and transient stepping,
// so runtime dispatch can never change a result, only its speed.  On
// hosts without AVX2 the suite degenerates to scalar-vs-scalar and
// still passes.
#include <gtest/gtest.h>

#include <cmath>

#include "thermal/thermal_engine.hpp"

namespace tsc3d::thermal {
namespace {

/// RAII A/B guard: force the requested kernel, restore the previous
/// dispatch on scope exit so test order never leaks state.
class SimdGuard {
 public:
  explicit SimdGuard(bool enabled) : prev_(sweep_simd_enabled()) {
    set_sweep_simd(enabled);
  }
  ~SimdGuard() { set_sweep_simd(prev_); }

 private:
  bool prev_;
};

TechnologyConfig test_tech() {
  TechnologyConfig t;
  t.die_width_um = 2000.0;
  t.die_height_um = 2000.0;
  return t;
}

ThermalConfig test_thermal(std::size_t grid, SolverBackend backend) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = grid;
  c.solver = backend;
  c.tolerance_k = 1e-6;
  return c;
}

std::vector<GridD> test_power(std::size_t grid) {
  std::vector<GridD> power(2, GridD(grid, grid, 0.0));
  power[0].at(grid / 2, grid / 2) = 2.0;
  power[0].at(1, grid - 2) = 0.9;
  power[1].at(grid - 3, 2) = 1.3;
  return power;
}

void expect_bitwise_equal(const ThermalResult& a, const ThermalResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.vcycles, b.vcycles);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.residual_k, b.residual_k);
  EXPECT_EQ(a.peak_k, b.peak_k);
  ASSERT_EQ(a.layer_temperature.size(), b.layer_temperature.size());
  for (std::size_t l = 0; l < a.layer_temperature.size(); ++l)
    for (std::size_t c = 0; c < a.layer_temperature[l].size(); ++c)
      ASSERT_EQ(a.layer_temperature[l][c], b.layer_temperature[l][c])
          << "layer " << l << " cell " << c;
}

TEST(SweepSimd, DispatchReportsAndToggles) {
  const bool prev = sweep_simd_enabled();
  set_sweep_simd(false);
  EXPECT_FALSE(sweep_simd_enabled());
  set_sweep_simd(true);
  // Enabling only sticks where the kernel exists.
  EXPECT_EQ(sweep_simd_enabled(), sweep_simd_available());
  set_sweep_simd(prev);
}

TEST(SweepSimd, SteadySorSolveBitwiseScalarVsSimd) {
  // Grid widths that exercise every tail case of the 4-wide kernel:
  // 16 (vector blocks + tail), 20, and 10 (vector path barely engages).
  for (const std::size_t g : {10u, 16u, 20u}) {
    const auto power = test_power(g);
    const GridD tsv(g, g, 0.1);
    ThermalResult scalar, simd;
    {
      SimdGuard guard(false);
      ThermalEngine engine(test_tech(), test_thermal(g, SolverBackend::sor));
      scalar = engine.solve_steady(power, tsv);
    }
    {
      SimdGuard guard(true);
      ThermalEngine engine(test_tech(), test_thermal(g, SolverBackend::sor));
      simd = engine.solve_steady(power, tsv);
    }
    ASSERT_TRUE(scalar.converged);
    expect_bitwise_equal(scalar, simd);
  }
}

TEST(SweepSimd, MultigridSolveBitwiseScalarVsSimd) {
  // The same kernel smooths every multigrid level; FMG + V-cycles must
  // be trajectory-identical under either dispatch.
  constexpr std::size_t g = 32;
  const auto power = test_power(g);
  const GridD tsv(g, g, 0.1);
  ThermalResult scalar, simd;
  {
    SimdGuard guard(false);
    ThermalEngine engine(test_tech(),
                         test_thermal(g, SolverBackend::multigrid));
    scalar = engine.solve_steady(power, tsv);
  }
  {
    SimdGuard guard(true);
    ThermalEngine engine(test_tech(),
                         test_thermal(g, SolverBackend::multigrid));
    simd = engine.solve_steady(power, tsv);
  }
  ASSERT_TRUE(scalar.converged);
  ASSERT_GT(scalar.vcycles, 0u);
  expect_bitwise_equal(scalar, simd);
}

TEST(SweepSimd, TransientTrajectoryBitwiseScalarVsSimd) {
  constexpr std::size_t g = 16;
  const auto power = test_power(g);
  const GridD tsv(g, g, 0.1);
  const auto run = [&](bool simd_on) {
    SimdGuard guard(simd_on);
    ThermalEngine engine(test_tech(),
                         test_thermal(g, SolverBackend::multigrid));
    return engine.solve_transient([&](double) { return power; }, tsv, 1.0,
                                  0.25);
  };
  const TransientResult scalar = run(false);
  const TransientResult simd = run(true);
  EXPECT_EQ(scalar.total_iterations, simd.total_iterations);
  EXPECT_EQ(scalar.unconverged_steps, simd.unconverged_steps);
  expect_bitwise_equal(scalar.final_state, simd.final_state);
}

TEST(SweepSimd, ShardedSweepBitwiseScalarVsSimd) {
  // SIMD dispatch composes with sweep sharding: the pool splits rows,
  // each shard picks the same kernel, and the combined result must stay
  // bitwise equal to the serial scalar reference.
  constexpr std::size_t g = 24;
  const auto power = test_power(g);
  const GridD tsv(g, g, 0.1);
  ThermalResult reference, sharded_simd;
  {
    SimdGuard guard(false);
    ThermalEngine engine(test_tech(), test_thermal(g, SolverBackend::sor));
    reference = engine.solve_steady(power, tsv);
  }
  {
    SimdGuard guard(true);
    ThermalEngine engine(test_tech(), test_thermal(g, SolverBackend::sor),
                         {.threads = 4, .min_nodes_per_thread = 1});
    sharded_simd = engine.solve_steady(power, tsv);
  }
  expect_bitwise_equal(reference, sharded_simd);
}

}  // namespace
}  // namespace tsc3d::thermal
