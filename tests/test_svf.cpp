// Tests for the side-channel vulnerability factor (leakage/svf.hpp).
#include "leakage/svf.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace tsc3d::leakage {
namespace {

std::vector<double> scaled(const std::vector<double>& v, double k) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = k * v[i];
  return out;
}

TEST(PhaseSimilarity, NegativeEuclideanIsZeroForIdenticalVectors) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(
      phase_similarity(a, a, PhaseSimilarity::negative_euclidean), 0.0);
}

TEST(PhaseSimilarity, NegativeEuclideanMatchesHandComputedDistance) {
  const std::vector<double> a{0.0, 0.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(
      phase_similarity(a, b, PhaseSimilarity::negative_euclidean), -5.0);
}

TEST(PhaseSimilarity, CosineOfParallelVectorsIsOne) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_NEAR(phase_similarity(a, scaled(a, 7.5), PhaseSimilarity::cosine),
              1.0, 1e-12);
}

TEST(PhaseSimilarity, CosineOfOrthogonalVectorsIsZero) {
  const std::vector<double> a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_NEAR(phase_similarity(a, b, PhaseSimilarity::cosine), 0.0, 1e-12);
}

TEST(PhaseSimilarity, CosineOfZeroVectorIsZero) {
  const std::vector<double> a{0.0, 0.0}, b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(phase_similarity(a, b, PhaseSimilarity::cosine), 0.0);
}

TEST(PhaseSimilarity, SizeMismatchThrows) {
  const std::vector<double> a{1.0}, b{1.0, 2.0};
  EXPECT_THROW((void)phase_similarity(a, b, PhaseSimilarity::pearson),
               std::invalid_argument);
}

TEST(Svf, PerfectLeakageWhenSideEqualsOracle) {
  SvfAccumulator acc;
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> phase(8);
    for (auto& v : phase) v = rng.uniform(0.0, 5.0);
    acc.add_phase(phase, phase);
  }
  EXPECT_NEAR(acc.svf(), 1.0, 1e-9);
}

TEST(Svf, PerfectLeakageUnderLinearScaling) {
  // A side channel that is a scaled copy of the oracle leaks the full
  // phase structure: SVF must still be ~1.
  SvfAccumulator acc;
  Rng rng(11);
  for (int i = 0; i < 12; ++i) {
    std::vector<double> phase(6);
    for (auto& v : phase) v = rng.uniform(0.0, 2.0);
    acc.add_phase(phase, scaled(phase, 3.0));
  }
  EXPECT_NEAR(acc.svf(), 1.0, 1e-9);
}

TEST(Svf, IndependentSideChannelHasLowSvf) {
  SvfAccumulator acc;
  Rng rng(13);
  for (int i = 0; i < 40; ++i) {
    std::vector<double> oracle(16), side(16);
    for (auto& v : oracle) v = rng.uniform(0.0, 1.0);
    for (auto& v : side) v = rng.uniform(0.0, 1.0);
    acc.add_phase(oracle, side);
  }
  EXPECT_LT(std::abs(acc.svf()), 0.25);
}

TEST(Svf, NoisySideChannelDegradesSvfMonotonically) {
  // Increasing observation noise must not increase SVF (averaged over
  // a few seeds to keep the test robust).
  double prev = 1.1;
  for (double noise : {0.0, 0.5, 4.0}) {
    double avg = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SvfAccumulator acc;
      Rng rng(seed);
      for (int i = 0; i < 30; ++i) {
        std::vector<double> oracle(12), side(12);
        for (std::size_t k = 0; k < oracle.size(); ++k) {
          oracle[k] = rng.uniform(0.0, 1.0);
          side[k] = oracle[k] + rng.gaussian(0.0, noise);
        }
        acc.add_phase(oracle, side);
      }
      avg += acc.svf() / 3.0;
    }
    EXPECT_LT(avg, prev + 1e-9) << "noise=" << noise;
    prev = avg;
  }
}

TEST(Svf, RequiresThreePhases) {
  using Vec = std::vector<double>;
  SvfAccumulator acc;
  acc.add_phase(Vec{1.0, 2.0}, Vec{1.0, 2.0});
  acc.add_phase(Vec{2.0, 1.0}, Vec{2.0, 1.0});
  EXPECT_THROW((void)acc.svf(), std::logic_error);
  acc.add_phase(Vec{0.5, 0.5}, Vec{0.5, 0.5});
  EXPECT_NO_THROW((void)acc.svf());
}

TEST(Svf, PhaseSizeChangeThrows) {
  using Vec = std::vector<double>;
  SvfAccumulator acc;
  acc.add_phase(Vec{1.0, 2.0}, Vec{1.0});
  EXPECT_THROW(acc.add_phase(Vec{1.0}, Vec{1.0}), std::invalid_argument);
  EXPECT_THROW(acc.add_phase(Vec{1.0, 2.0}, Vec{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Svf, EmptyPhaseThrows) {
  SvfAccumulator acc;
  EXPECT_THROW(acc.add_phase(std::vector<double>{},
                             std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Svf, SimilarityVectorsHaveChooseTwoEntries) {
  SvfAccumulator acc;
  for (int i = 0; i < 5; ++i)
    acc.add_phase({static_cast<double>(i)}, {static_cast<double>(i)});
  const auto [so, ss] = acc.similarity_vectors();
  EXPECT_EQ(so.size(), 10u);
  EXPECT_EQ(ss.size(), 10u);
}

TEST(Svf, GridOverloadMatchesVectorOverload) {
  SvfAccumulator a, b;
  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    GridD g(3, 3);
    for (auto& v : g) v = rng.uniform(0.0, 1.0);
    std::vector<double> oracle{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    a.add_phase(oracle, g);
    b.add_phase(oracle, g.data());
  }
  EXPECT_DOUBLE_EQ(a.svf(), b.svf());
}

class SvfSimilarityMeasures
    : public ::testing::TestWithParam<PhaseSimilarity> {};

TEST_P(SvfSimilarityMeasures, SelfLeakageIsMaximalForEveryMeasure) {
  SvfAccumulator acc({GetParam()});
  Rng rng(29);
  for (int i = 0; i < 15; ++i) {
    std::vector<double> phase(10);
    for (auto& v : phase) v = rng.uniform(0.5, 2.0);
    acc.add_phase(phase, phase);
  }
  EXPECT_NEAR(acc.svf(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, SvfSimilarityMeasures,
                         ::testing::Values(
                             PhaseSimilarity::negative_euclidean,
                             PhaseSimilarity::pearson,
                             PhaseSimilarity::cosine));

}  // namespace
}  // namespace tsc3d::leakage
