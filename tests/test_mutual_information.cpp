// Tests for the mutual-information estimator
// (leakage/mutual_information.hpp).
#include "leakage/mutual_information.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace tsc3d::leakage {
namespace {

std::vector<double> uniform_sample(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(0.0, 1.0);
  return v;
}

TEST(MutualInformation, IdenticalSignalsCarryFullEntropy) {
  Rng rng(5);
  const auto a = uniform_sample(4096, rng);
  const double mi = mutual_information(a, a);
  const double h = shannon_entropy(a);
  // I(A;A) = H(A); estimator noise only.
  EXPECT_NEAR(mi, h, 0.05 * h);
  EXPECT_GT(mi, 3.0);  // 16 equal bins of uniform data ~ 4 bits
}

TEST(MutualInformation, IndependentSignalsHaveNearZeroMI) {
  Rng rng(6);
  const auto a = uniform_sample(4096, rng);
  const auto b = uniform_sample(4096, rng);
  EXPECT_LT(mutual_information(a, b), 0.1);
}

TEST(MutualInformation, RankBinningIsInvariantUnderMonotoneTransform) {
  // MI must see through the nonlinearity that kills Pearson correlation.
  // Only equal-frequency (rank) binning has this property exactly.
  Rng rng(7);
  const auto a = uniform_sample(4096, rng);
  std::vector<double> cubed(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    cubed[i] = a[i] * a[i] * a[i];
  MutualInformationOptions opt;
  opt.binning = Binning::equal_frequency;
  const double mi_lin = mutual_information(a, a, opt);
  const double mi_cub = mutual_information(a, cubed, opt);
  EXPECT_NEAR(mi_cub, mi_lin, 1e-9);
  EXPECT_GT(mi_lin, 3.0);
}

TEST(MutualInformation, EqualWidthBinningDegradesUnderSkewButStaysHigh) {
  // Equal-width binning loses resolution when one marginal is skewed,
  // but a strong dependence must still register well above independence.
  Rng rng(7);
  const auto a = uniform_sample(4096, rng);
  std::vector<double> cubed(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    cubed[i] = a[i] * a[i] * a[i];
  const double mi_cub = mutual_information(a, cubed);
  EXPECT_GT(mi_cub, 1.5);
}

TEST(MutualInformation, ConstantSignalYieldsZero) {
  const std::vector<double> c(100, 3.5);
  Rng rng(8);
  const auto a = uniform_sample(100, rng);
  EXPECT_DOUBLE_EQ(mutual_information(a, c), 0.0);
  EXPECT_DOUBLE_EQ(mutual_information(c, a), 0.0);
}

TEST(MutualInformation, NonNegative) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = uniform_sample(64, rng);
    const auto b = uniform_sample(64, rng);
    EXPECT_GE(mutual_information(a, b), 0.0);
  }
}

TEST(MutualInformation, SymmetricInArguments) {
  Rng rng(10);
  const auto a = uniform_sample(512, rng);
  std::vector<double> b(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    b[i] = 0.7 * a[i] + rng.gaussian(0.0, 0.1);
  MutualInformationOptions opt;
  opt.bins_x = opt.bins_y = 12;
  EXPECT_NEAR(mutual_information(a, b, opt), mutual_information(b, a, opt),
              1e-12);
}

TEST(MutualInformation, MoreNoiseMeansLessInformation) {
  Rng rng(11);
  const auto a = uniform_sample(2048, rng);
  double prev = 1e9;
  for (double noise : {0.01, 0.2, 2.0}) {
    std::vector<double> b(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      b[i] = a[i] + rng.gaussian(0.0, noise);
    const double mi = mutual_information(a, b);
    EXPECT_LT(mi, prev) << "noise=" << noise;
    prev = mi;
  }
}

TEST(MutualInformation, SizeMismatchThrows) {
  EXPECT_THROW((void)mutual_information(std::vector<double>{1.0, 2.0},
                                  std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(MutualInformation, ZeroBinsThrows) {
  MutualInformationOptions opt;
  opt.bins_x = 0;
  EXPECT_THROW((void)mutual_information(std::vector<double>{1.0, 2.0},
                                  std::vector<double>{1.0, 2.0}, opt),
               std::invalid_argument);
}

TEST(MutualInformation, GridOverloadChecksDimensions) {
  GridD a(4, 4), b(4, 5);
  EXPECT_THROW((void)mutual_information(a, b), std::invalid_argument);
}

TEST(MutualInformation, GridOverloadMatchesVectorOverload) {
  Rng rng(12);
  GridD a(8, 8), b(8, 8);
  for (auto& v : a) v = rng.uniform(0.0, 1.0);
  for (auto& v : b) v = rng.uniform(0.0, 1.0);
  EXPECT_DOUBLE_EQ(mutual_information(a, b),
                   mutual_information(a.data(), b.data()));
}

TEST(ShannonEntropy, UniformDataApproachesLogBins) {
  Rng rng(13);
  const auto a = uniform_sample(1 << 16, rng);
  EXPECT_NEAR(shannon_entropy(a, 16), 4.0, 0.05);
}

TEST(ShannonEntropy, ConstantDataIsZero) {
  EXPECT_DOUBLE_EQ(shannon_entropy(std::vector<double>(50, 1.0)), 0.0);
}

TEST(ShannonEntropy, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(shannon_entropy({}), 0.0);
}

TEST(ShannonEntropy, ZeroBinsThrows) {
  EXPECT_THROW((void)shannon_entropy(std::vector<double>{1.0}, 0),
               std::invalid_argument);
}

class MiBinsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MiBinsSweep, BoundedByMinMarginalEntropy) {
  // I(A;B) <= min(H(A), H(B)) must hold for every bin count.
  Rng rng(17);
  const auto a = uniform_sample(1024, rng);
  std::vector<double> b(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    b[i] = a[i] + rng.gaussian(0.0, 0.3);
  MutualInformationOptions opt;
  opt.bins_x = opt.bins_y = GetParam();
  opt.miller_madow = false;  // the bound is exact only without correction
  const double mi = mutual_information(a, b, opt);
  const double ha = shannon_entropy(a, GetParam(), false);
  const double hb = shannon_entropy(b, GetParam(), false);
  EXPECT_LE(mi, std::min(ha, hb) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bins, MiBinsSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace tsc3d::leakage
