#include "campaign/options.hpp"

#include <stdexcept>

namespace tsc3d::campaign {

std::string attack_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::localization: return "localization";
    case AttackKind::characterization: return "characterization";
    case AttackKind::monitoring: return "monitoring";
    case AttackKind::covert_channel: return "covert_channel";
    case AttackKind::heating_fault: return "heating_fault";
  }
  throw std::invalid_argument("attack_name: invalid AttackKind");
}

std::string mitigation_name(MitigationKind kind) {
  switch (kind) {
    case MitigationKind::none: return "none";
    case MitigationKind::dtm: return "dtm";
    case MitigationKind::noise_injection: return "noise_injection";
  }
  throw std::invalid_argument("mitigation_name: invalid MitigationKind");
}

std::string flavor_name(FlavorKind kind) {
  switch (kind) {
    case FlavorKind::power_aware: return "power_aware";
    case FlavorKind::tsc_secure: return "tsc_secure";
    case FlavorKind::monolithic: return "monolithic";
  }
  throw std::invalid_argument("flavor_name: invalid FlavorKind");
}

AttackKind parse_attack(const std::string& name) {
  if (name == "localization") return AttackKind::localization;
  if (name == "characterization") return AttackKind::characterization;
  if (name == "monitoring") return AttackKind::monitoring;
  if (name == "covert_channel") return AttackKind::covert_channel;
  if (name == "heating_fault") return AttackKind::heating_fault;
  throw std::invalid_argument("unknown attack '" + name + "'");
}

MitigationKind parse_mitigation(const std::string& name) {
  if (name == "none") return MitigationKind::none;
  if (name == "dtm") return MitigationKind::dtm;
  if (name == "noise_injection") return MitigationKind::noise_injection;
  throw std::invalid_argument("unknown mitigation '" + name + "'");
}

FlavorKind parse_flavor(const std::string& name) {
  if (name == "power_aware") return FlavorKind::power_aware;
  if (name == "tsc_secure") return FlavorKind::tsc_secure;
  if (name == "monolithic") return FlavorKind::monolithic;
  throw std::invalid_argument("unknown flavor '" + name + "'");
}

}  // namespace tsc3d::campaign
