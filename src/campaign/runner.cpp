#include "campaign/runner.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "campaign/matrix.hpp"
#include "campaign/scenario_io.hpp"
#include "config/apply.hpp"
#include "service/result_cache.hpp"
#include "service/worker.hpp"

namespace tsc3d::campaign {

namespace {

/// Where job `id`'s finished scenario lands (results/<id>.scn -- beside
/// where a plain job of the same id would put its .res).
std::filesystem::path scenario_result_path(const service::JobQueue& queue,
                                           const std::string& id) {
  std::filesystem::path path = queue.result_path(id);
  path.replace_extension(".scn");
  return path;
}

/// Run one claimed scenario job: probe the scenario cache, on a miss
/// evaluate end to end (exploration itself cached-or-fresh inside
/// evaluate_scenario), then persist to results/<id>.scn and the cache.
ScenarioWorkReport run_scenario_job(service::JobQueue& queue,
                                    const service::ClaimedJob& claimed,
                                    const CampaignOptions& opt) {
  ScenarioWorkReport report;
  report.id = claimed.id;
  report.scenario = true;
  try {
    const config::ConfigFile cfg =
        config::ConfigFile::parse(claimed.spec.config_text, "job config");
    CampaignOptions job_opt = config::make_campaign_options(cfg);
    // Evaluation knobs come from the job's own embedded config (they are
    // part of the scenario identity); the caller's `opt` only steers
    // orchestration.
    (void)opt;

    const ScenarioContext ctx = scenario_context(claimed.spec, job_opt);
    ScenarioCache scache(queue.cache_dir());

    ScenarioResult result;
    if (std::optional<ScenarioResult> hit = scache.probe(ctx)) {
      report.cache_hit = true;
      result = std::move(*hit);
    } else {
      const service::JobSpec exploration = exploration_spec(claimed.spec);
      const std::string exploration_id = service::job_id(exploration);
      std::optional<service::ResultCache> cache;
      if (queue.options().cache) cache.emplace(queue.cache_dir());
      result = evaluate_scenario(claimed.spec, job_opt,
                                 queue.checkpoint_path(exploration_id),
                                 queue.result_path(exploration_id),
                                 cache ? &*cache : nullptr,
                                 queue.options().checkpoint_interval);
      scache.store(result);
    }
    save_scenario_file(scenario_result_path(queue, claimed.id), result);
    report.ok = true;
  } catch (const std::exception& e) {
    report.error = e.what();
  }
  return report;
}

}  // namespace

CampaignPlan plan_campaign(const config::ConfigFile& cfg) {
  CampaignPlan plan;
  plan.options = config::make_campaign_options(cfg);
  plan.jobs = expand_matrix(plan.options, cfg);
  return plan;
}

std::vector<std::string> enqueue_campaign(service::JobQueue& queue,
                                          const CampaignPlan& plan) {
  std::vector<std::string> ids;
  ids.reserve(plan.jobs.size());
  for (const service::JobSpec& job : plan.jobs)
    ids.push_back(queue.enqueue(job));
  return ids;
}

std::optional<ScenarioWorkReport> work_one(service::JobQueue& queue,
                                           const CampaignOptions& opt) {
  std::optional<service::ClaimedJob> claimed = queue.claim_next();
  if (!claimed) return std::nullopt;

  ScenarioWorkReport report;
  if (claimed->spec.is_scenario()) {
    report = run_scenario_job(queue, *claimed, opt);
  } else {
    std::optional<service::ResultCache> cache;
    if (queue.options().cache) cache.emplace(queue.cache_dir());
    const service::WorkReport plain = service::run_job(
        claimed->spec, queue.checkpoint_path(claimed->id),
        queue.result_path(claimed->id), cache ? &*cache : nullptr,
        queue.options().checkpoint_interval);
    report.id = claimed->id;
    report.ok = plain.ok;
    report.cache_hit = plain.cache_hit;
    report.error = plain.error;
  }

  if (report.ok)
    queue.complete(*claimed);
  else
    queue.fail(*claimed, report.error);
  return report;
}

std::vector<ScenarioWorkReport> drain(service::JobQueue& queue,
                                      const CampaignOptions& opt,
                                      std::size_t workers,
                                      std::size_t max_jobs) {
  if (workers == 0) workers = 1;
  std::vector<ScenarioWorkReport> reports;
  std::mutex mu;  // guards `reports` and the max_jobs budget

  const auto loop = [&] {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (max_jobs != 0 && reports.size() >= max_jobs) return;
      }
      std::optional<ScenarioWorkReport> report = work_one(queue, opt);
      if (!report) return;
      std::lock_guard<std::mutex> lock(mu);
      reports.push_back(std::move(*report));
    }
  };

  if (workers == 1) {
    loop();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(loop);
    for (std::thread& t : pool) t.join();
  }
  return reports;
}

std::vector<ScenarioResult> collect_results(const service::JobQueue& queue,
                                            const CampaignPlan& plan) {
  const ScenarioCache scache(queue.cache_dir());
  std::vector<ScenarioResult> results;
  results.reserve(plan.jobs.size());
  for (const service::JobSpec& job : plan.jobs) {
    const ScenarioContext ctx = scenario_context(job, plan.options);
    std::optional<ScenarioResult> hit = scache.probe(ctx);
    if (!hit)
      throw std::runtime_error(
          "campaign: missing scenario result for job " + service::job_id(job) +
          " (" + job.scenario + "/" + job.mitigation + "/" + job.flavor +
          "/seed " + std::to_string(job.seed) + ") -- did it fail?");
    results.push_back(std::move(*hit));
  }
  return results;
}

}  // namespace tsc3d::campaign
