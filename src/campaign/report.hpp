// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Campaign report rendering: scenarios.csv (one row per matrix cell, in
// canonical matrix order), pareto.csv (the per-attack leakage-vs-
// overhead fronts), and SUMMARY.txt.  All three are versioned and
// byte-stable: doubles are rendered with "%.17g" (round-trip exact), no
// timestamps or hostnames appear, and row order is the canonical matrix
// order -- never the completion order -- so reruns at any worker count
// byte-compare equal.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "campaign/options.hpp"
#include "campaign/scenario.hpp"
#include "service/job_queue.hpp"

namespace tsc3d::campaign {

/// Round-trip-exact decimal rendering of a double ("%.17g").
[[nodiscard]] std::string format_double(double v);

/// The scenarios.csv content for results aligned with their jobs
/// (results[i] answers jobs[i]; both in expand_matrix order).
[[nodiscard]] std::string render_scenarios_csv(
    const std::vector<service::JobSpec>& jobs,
    const std::vector<ScenarioResult>& results);

/// The pareto.csv content: per attack (in canonical name order), the
/// Pareto front over that attack's (mitigation, flavor, seed) points.
[[nodiscard]] std::string render_pareto_csv(
    const std::vector<service::JobSpec>& jobs,
    const std::vector<ScenarioResult>& results);

/// The SUMMARY.txt content: matrix shape, per-attack front sizes, and
/// the extreme points of each front.
[[nodiscard]] std::string render_summary(
    const CampaignOptions& opt, const std::vector<service::JobSpec>& jobs,
    const std::vector<ScenarioResult>& results);

/// Write all three artifacts into `dir` (created if needed), atomically
/// (temp + rename).  Throws std::runtime_error on I/O failure or if
/// `jobs` and `results` disagree in size.
void write_report(const std::filesystem::path& dir, const CampaignOptions& opt,
                  const std::vector<service::JobSpec>& jobs,
                  const std::vector<ScenarioResult>& results);

}  // namespace tsc3d::campaign
