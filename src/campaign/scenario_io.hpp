// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// On-disk encoding of one finished scenario evaluation, plus the
// content-addressed scenario cache.  Same framing discipline as
// result_io/checkpoint_io: magic "TSC3DSCN", u64 format version, u64
// payload size, u64 FNV-1a checksum, payload.  Loading is fail-soft --
// EVERY defect (missing file, bad magic, unknown version, truncation,
// checksum mismatch, context mismatch, trailing bytes) yields
// {ok = false, reason}, never an exception or a wrong accept -- and
// writes are atomic (temp + rename).  Scenario results are runtime-free
// deterministic functions of their ScenarioContext, so reruns produce
// byte-identical files and the campaign report can be byte-compared.
#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "campaign/scenario.hpp"

namespace tsc3d::campaign {

/// Write atomically (temp + rename); throws std::runtime_error on I/O
/// failure.
void save_scenario_file(const std::filesystem::path& path,
                        const ScenarioResult& result);

struct ScenarioLoad {
  bool ok = false;
  std::string reason;
  ScenarioResult result;
};

/// Load + validate framing and (when `expect` is non-null) the embedded
/// context; defects are clean misses.
[[nodiscard]] ScenarioLoad load_scenario_file(
    const std::filesystem::path& path, const ScenarioContext* expect);

/// Content-addressed scenario cache: <hex(scenario_key)>.scn files in a
/// flat directory (shareable with the exploration ResultCache's dir --
/// extensions differ).  Probes re-validate the embedded context, so key
/// collisions and stale files degrade to misses, never wrong hits.
class ScenarioCache {
 public:
  explicit ScenarioCache(std::filesystem::path dir);

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

  [[nodiscard]] std::filesystem::path path_for(
      const ScenarioContext& ctx) const;

  [[nodiscard]] std::optional<ScenarioResult> probe(
      const ScenarioContext& ctx) const;

  void store(const ScenarioResult& result) const;

 private:
  std::filesystem::path dir_;
};

}  // namespace tsc3d::campaign
