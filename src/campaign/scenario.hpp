// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Scenario evaluation: one cell of the campaign matrix, evaluated as
//
//   exploration (cached-or-fresh floorplan result)
//     -> mitigation  (none | statically-applied DTM | noise injection)
//       -> attack    (Sec. 5 attacker models, Hutter-style heating
//                     faults, Masti-style covert channels)
//       -> leakage   (Pearson / MI / SVF / spatial entropy)
//
// Each stage is a THIN adapter over the standalone entry point it wraps
// -- the differential suite (tests/test_campaign_differential.cpp) pins
// every adapter bitwise against a direct call with the same inputs --
// and each stochastic stage draws from its own Rng seeded by
// scenario_seed(context, purpose), so scenario results are a pure
// function of the ScenarioContext: bitwise-reproducible, scheduling-
// independent, and cacheable content-addressed (scenario_io.hpp).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "campaign/options.hpp"
#include "config/config_file.hpp"
#include "core/floorplan.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "service/worker.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::campaign {

/// Identity of one scenario evaluation.  Extends the exploration's
/// ArtifactContext (design, canonical config, seed, code version) with
/// the scenario axes and a digest of the evaluation knobs; two scenario
/// artifacts are interchangeable iff everything matches.
struct ScenarioContext {
  service::ArtifactContext exploration;
  std::string attack;
  std::string mitigation;
  std::string flavor;
  std::uint64_t params_hash = 0;  ///< scenario_params_hash of the knobs

  [[nodiscard]] bool operator==(const ScenarioContext&) const = default;
};

/// Digest of the CampaignOptions fields that shape a scenario result
/// (attack_grid, trials, bits, DTM horizon, injection budget, leakage
/// phases).  Matrix axes and report_dir are deliberately excluded: they
/// pick WHICH scenarios run, not what any one scenario computes.
[[nodiscard]] std::uint64_t scenario_params_hash(const CampaignOptions& opt);

/// Build the full identity of a scenario job (job.is_scenario() must
/// hold; throws otherwise).
[[nodiscard]] ScenarioContext scenario_context(const service::JobSpec& job,
                                               const CampaignOptions& opt);

/// Single 64-bit digest of the context (cache slot addressing; probes
/// re-validate the full context, so collisions degrade to misses).
[[nodiscard]] std::uint64_t scenario_key(const ScenarioContext& ctx);

/// Deterministic per-stage RNG seed: digest of the context chained with
/// a purpose tag ("mitigation", "attack", "leakage").  Distinct stages
/// get uncorrelated streams; the same stage of the same scenario always
/// gets the same one.
[[nodiscard]] std::uint64_t scenario_seed(const ScenarioContext& ctx,
                                          const std::string& purpose);

/// The uniform outcome of one scenario (the rows of scenarios.csv).
struct ScenarioResult {
  ScenarioContext context;

  // --- exploration side (from the cached StoredResult) ------------------
  bool legal = false;
  double wirelength_m = 0.0;
  double power_w = 0.0;
  double critical_delay_ns = 0.0;
  double peak_k = 0.0;

  // --- mitigation side --------------------------------------------------
  double mitigation_overhead_w = 0.0;      ///< injected dummy power [W]
  double mitigation_performance_loss = 0.0;///< DTM mean power reduction
  double mitigation_peak_k = 0.0;          ///< peak during the mitigation run

  // --- attack side ------------------------------------------------------
  double attack_success = 0.0;  ///< in [0, 1]; see docs/CAMPAIGNS.md

  // --- leakage metrics (on the mitigated floorplan) ---------------------
  double pearson_abs_max = 0.0;      ///< max |Eq.1 r_d| over dies
  double mi_max = 0.0;               ///< max MI(P;T) over dies [bit]
  double svf = 0.0;                  ///< Demme-style SVF over phases
  double spatial_entropy_max = 0.0;  ///< max Eq.3 S_d over dies

  // --- Pareto axes (both minimized; docs/CAMPAIGNS.md) ------------------
  double leakage = 0.0;   ///< == attack_success
  double overhead = 0.0;  ///< power_w * (1 + perf loss) + injected power

  [[nodiscard]] bool operator==(const ScenarioResult&) const = default;
};

/// A mitigated floorplan plus the mitigation's cost figures.
struct MitigationOutcome {
  Floorplan3D floorplan;
  double overhead_w = 0.0;
  double performance_loss = 0.0;
  double peak_k = 0.0;
};

/// Reconstruct the exploration's final floorplan: build_design() for the
/// job, then the StoredResult's placement, TSVs, and derived clock
/// applied on top.  The rebuilt plan reproduces the stored metrics
/// (wirelength_m bitwise; the differential suite asserts it).
[[nodiscard]] Floorplan3D rebuild_floorplan(
    const service::JobSpec& exploration, const config::ConfigFile& cfg,
    const service::StoredResult& stored);

/// Apply one mitigation.  `none` returns the plan unchanged with zero
/// cost.  `dtm` runs the closed DTM loop (run_dtm, seeded Rng) and, when
/// the controller throttled at all, returns the plan with the
/// controller's exact throttle set (mitigation::throttleable_modules)
/// statically applied at throttle_scale.  `noise_injection` runs the
/// smoothing controller (run_noise_injection) and returns the plan with
/// one injector pseudo-module per nonzero bin of the injected-power map
/// (voltage index 0, so the injected wattage is exact).
[[nodiscard]] MitigationOutcome apply_mitigation(const Floorplan3D& fp,
                                                 const ThermalConfig& thermal,
                                                 MitigationKind kind,
                                                 const CampaignOptions& opt,
                                                 std::uint64_t seed);

/// Run one attacker model against the (mitigated) floorplan and map its
/// native result onto the uniform success scalar in [0, 1]
/// (docs/CAMPAIGNS.md lists the mapping per attack).
[[nodiscard]] double run_attack(const Floorplan3D& fp,
                                const thermal::GridSolver& solver,
                                AttackKind kind, const CampaignOptions& opt,
                                std::uint64_t seed);

/// Leakage metrics of the (mitigated) floorplan on the scenario grid.
struct LeakageSummary {
  double pearson_abs_max = 0.0;
  double mi_max = 0.0;
  double svf = 0.0;
  double spatial_entropy_max = 0.0;

  [[nodiscard]] bool operator==(const LeakageSummary&) const = default;
};

[[nodiscard]] LeakageSummary measure_leakage(const Floorplan3D& fp,
                                             const thermal::GridSolver& solver,
                                             const CampaignOptions& opt,
                                             std::uint64_t seed);

/// Evaluate one scenario job end to end.  The exploration result comes
/// from `exploration_cache` when possible; a miss runs the exploration
/// in-process via service::run_job (checkpointing to `checkpoint_file`,
/// result to `exploration_result_file`) and populates the cache, so
/// concurrent scenario jobs sharing a floorplan duplicate at most the
/// exploration work -- never diverge on its result.  Throws on failure
/// (the runner maps that to JobQueue::fail).
[[nodiscard]] ScenarioResult evaluate_scenario(
    const service::JobSpec& job, const CampaignOptions& opt,
    const std::filesystem::path& checkpoint_file,
    const std::filesystem::path& exploration_result_file,
    service::ResultCache* exploration_cache, std::size_t checkpoint_interval);

}  // namespace tsc3d::campaign
