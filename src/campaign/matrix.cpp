#include "campaign/matrix.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace tsc3d::campaign {

namespace {

/// Canonical text -> key/value map.  canonical() emits one
/// "section.key = value" line per entry, so this inversion is exact.
std::map<std::string, std::string> canonical_entries(
    const config::ConfigFile& cfg) {
  std::map<std::string, std::string> entries;
  std::istringstream in(cfg.canonical());
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find(" = ");
    if (eq == std::string::npos) continue;
    entries[line.substr(0, eq)] = line.substr(eq + 3);
  }
  return entries;
}

std::string render_config(const std::map<std::string, std::string>& entries) {
  std::string text;
  for (const auto& [key, value] : entries)
    text += key + " = " + value + "\n";
  return text;
}

/// Deduplicated, sorted axis values (sorted by canonical name so the
/// expansion ignores spec-list ordering and repeats).
template <typename Kind, typename NameFn>
std::vector<Kind> sorted_axis(std::vector<Kind> values, NameFn name) {
  std::sort(values.begin(), values.end(),
            [&](Kind a, Kind b) { return name(a) < name(b); });
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace

std::string flavored_config(const config::ConfigFile& base,
                            FlavorKind flavor) {
  std::map<std::string, std::string> entries = canonical_entries(base);
  switch (flavor) {
    case FlavorKind::power_aware:
      entries["floorplanning.mode"] = "power";
      entries["technology.flavor"] = "tsv";
      break;
    case FlavorKind::tsc_secure:
      entries["floorplanning.mode"] = "tsc";
      entries["technology.flavor"] = "tsv";
      break;
    case FlavorKind::monolithic:
      entries["floorplanning.mode"] = "power";
      entries["technology.flavor"] = "monolithic";
      break;
  }
  return render_config(entries);
}

std::vector<service::JobSpec> expand_matrix(const CampaignOptions& opt,
                                            const config::ConfigFile& base) {
  const auto attacks = sorted_axis(opt.attacks, attack_name);
  const auto mitigations = sorted_axis(opt.mitigations, mitigation_name);
  const auto flavors = sorted_axis(opt.flavors, flavor_name);

  // Flavor -> config text, computed once per flavor.
  std::map<FlavorKind, std::string> flavor_config;
  for (const FlavorKind flavor : flavors)
    flavor_config[flavor] = flavored_config(base, flavor);

  std::vector<service::JobSpec> jobs;
  for (const AttackKind attack : attacks)
    for (const MitigationKind mitigation : mitigations)
      for (const FlavorKind flavor : flavors)
        for (std::uint64_t seed = opt.seed_lo; seed <= opt.seed_hi; ++seed) {
          service::JobSpec job;
          job.benchmark = opt.benchmark;
          job.seed = seed;
          job.config_text = flavor_config[flavor];
          job.scenario = attack_name(attack);
          job.mitigation = mitigation_name(mitigation);
          job.flavor = flavor_name(flavor);
          jobs.push_back(std::move(job));
        }
  return jobs;
}

service::JobSpec exploration_spec(const service::JobSpec& scenario_job) {
  service::JobSpec exploration = scenario_job;
  exploration.scenario.clear();
  exploration.mitigation.clear();
  exploration.flavor.clear();
  return exploration;
}

}  // namespace tsc3d::campaign
