#include "campaign/pareto.hpp"

#include <algorithm>

namespace tsc3d::campaign {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.leakage > b.leakage || a.overhead > b.overhead) return false;
  return a.leakage < b.leakage || a.overhead < b.overhead;
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
  // Canonical order first: the scan below then sees candidates
  // best-leakage first, and the output order is input-order independent.
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.leakage != b.leakage) return a.leakage < b.leakage;
              if (a.overhead != b.overhead) return a.overhead < b.overhead;
              return a.index < b.index;
            });

  std::vector<ParetoPoint> front;
  for (const ParetoPoint& p : points) {
    bool dominated = false;
    for (const ParetoPoint& f : front)
      if (dominates(f, p)) {
        dominated = true;
        break;
      }
    if (!dominated) front.push_back(p);
  }
  return front;
}

}  // namespace tsc3d::campaign
