#include "campaign/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "campaign/pareto.hpp"
#include "service/serialize.hpp"
#include "service/version.hpp"

namespace tsc3d::campaign {

namespace {

/// Attack names present in `jobs`, in canonical (sorted, unique) order.
std::vector<std::string> attacks_present(
    const std::vector<service::JobSpec>& jobs) {
  std::vector<std::string> names;
  names.reserve(jobs.size());
  for (const service::JobSpec& job : jobs) names.push_back(job.scenario);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// The Pareto candidates of one attack; `index` is the row in `jobs`.
std::vector<ParetoPoint> points_for_attack(
    const std::string& attack, const std::vector<service::JobSpec>& jobs,
    const std::vector<ScenarioResult>& results) {
  std::vector<ParetoPoint> points;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (jobs[i].scenario == attack)
      points.push_back({results[i].leakage, results[i].overhead, i});
  return points;
}

void write_atomic(const std::filesystem::path& path,
                  const std::string& content) {
  const std::filesystem::path tmp = service::unique_tmp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("write_report: cannot open " + tmp.string());
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out)
      throw std::runtime_error("write_report: write failed on " +
                               tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

void check_aligned(const std::vector<service::JobSpec>& jobs,
                   const std::vector<ScenarioResult>& results) {
  if (jobs.size() != results.size())
    throw std::runtime_error("campaign report: jobs/results size mismatch");
}

}  // namespace

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string render_scenarios_csv(const std::vector<service::JobSpec>& jobs,
                                 const std::vector<ScenarioResult>& results) {
  check_aligned(jobs, results);
  std::string out;
  out += "# tsc3d campaign scenarios v1\n";
  out +=
      "attack,mitigation,flavor,benchmark,seed,legal,wirelength_m,power_w,"
      "critical_delay_ns,peak_k,mitigation_overhead_w,"
      "mitigation_performance_loss,mitigation_peak_k,attack_success,"
      "pearson_abs_max,mi_max,svf,spatial_entropy_max,leakage,overhead\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const service::JobSpec& job = jobs[i];
    const ScenarioResult& r = results[i];
    out += job.scenario + ',' + job.mitigation + ',' + job.flavor + ',' +
           job.benchmark + ',' + std::to_string(job.seed) + ',' +
           (r.legal ? "1" : "0") + ',' + format_double(r.wirelength_m) + ',' +
           format_double(r.power_w) + ',' +
           format_double(r.critical_delay_ns) + ',' + format_double(r.peak_k) +
           ',' + format_double(r.mitigation_overhead_w) + ',' +
           format_double(r.mitigation_performance_loss) + ',' +
           format_double(r.mitigation_peak_k) + ',' +
           format_double(r.attack_success) + ',' +
           format_double(r.pearson_abs_max) + ',' + format_double(r.mi_max) +
           ',' + format_double(r.svf) + ',' +
           format_double(r.spatial_entropy_max) + ',' +
           format_double(r.leakage) + ',' + format_double(r.overhead) + '\n';
  }
  return out;
}

std::string render_pareto_csv(const std::vector<service::JobSpec>& jobs,
                              const std::vector<ScenarioResult>& results) {
  check_aligned(jobs, results);
  std::string out;
  out += "# tsc3d campaign pareto v1\n";
  out += "attack,mitigation,flavor,benchmark,seed,leakage,overhead\n";
  for (const std::string& attack : attacks_present(jobs)) {
    const std::vector<ParetoPoint> front =
        pareto_front(points_for_attack(attack, jobs, results));
    for (const ParetoPoint& p : front) {
      const service::JobSpec& job = jobs[p.index];
      out += attack + ',' + job.mitigation + ',' + job.flavor + ',' +
             job.benchmark + ',' + std::to_string(job.seed) + ',' +
             format_double(p.leakage) + ',' + format_double(p.overhead) + '\n';
    }
  }
  return out;
}

std::string render_summary(const CampaignOptions& opt,
                           const std::vector<service::JobSpec>& jobs,
                           const std::vector<ScenarioResult>& results) {
  check_aligned(jobs, results);
  std::string out;
  out += "tsc3d campaign summary v1\n";
  out += std::string("code ") + service::kCodeVersion + '\n';
  out += "benchmark " + opt.benchmark + '\n';
  out += "scenarios " + std::to_string(jobs.size()) + '\n';
  out += '\n';
  for (const std::string& attack : attacks_present(jobs)) {
    const std::vector<ParetoPoint> points =
        points_for_attack(attack, jobs, results);
    const std::vector<ParetoPoint> front = pareto_front(points);
    out += '[' + attack + "]\n";
    out += "  points " + std::to_string(points.size()) + ", front " +
           std::to_string(front.size()) + '\n';
    if (!front.empty()) {
      const ParetoPoint& lo_leak = front.front();  // (leakage, overhead) sort
      const ParetoPoint& lo_cost = front.back();
      const service::JobSpec& leak_job = jobs[lo_leak.index];
      const service::JobSpec& cost_job = jobs[lo_cost.index];
      out += "  min leakage " + format_double(lo_leak.leakage) +
             " at overhead " + format_double(lo_leak.overhead) + " (" +
             leak_job.mitigation + '/' + leak_job.flavor + "/seed " +
             std::to_string(leak_job.seed) + ")\n";
      out += "  min overhead " + format_double(lo_cost.overhead) +
             " at leakage " + format_double(lo_cost.leakage) + " (" +
             cost_job.mitigation + '/' + cost_job.flavor + "/seed " +
             std::to_string(cost_job.seed) + ")\n";
    }
  }
  return out;
}

void write_report(const std::filesystem::path& dir, const CampaignOptions& opt,
                  const std::vector<service::JobSpec>& jobs,
                  const std::vector<ScenarioResult>& results) {
  check_aligned(jobs, results);
  std::filesystem::create_directories(dir);
  write_atomic(dir / "scenarios.csv", render_scenarios_csv(jobs, results));
  write_atomic(dir / "pareto.csv", render_pareto_csv(jobs, results));
  write_atomic(dir / "SUMMARY.txt", render_summary(opt, jobs, results));
}

}  // namespace tsc3d::campaign
