// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Pareto-front extraction over the campaign's (leakage, overhead)
// plane.  Both axes are minimized: the front answers "how much leakage
// must I accept for a given mitigation/floorplanning budget?" per
// attacker model (Sec. 6's security-vs-cost trade-off).
#pragma once

#include <cstddef>
#include <vector>

namespace tsc3d::campaign {

/// One candidate point.  `index` ties the point back to its scenario row
/// and breaks ordering ties deterministically.
struct ParetoPoint {
  double leakage = 0.0;
  double overhead = 0.0;
  std::size_t index = 0;

  [[nodiscard]] bool operator==(const ParetoPoint&) const = default;
};

/// True iff `a` dominates `b` under minimization: no worse on both axes
/// and strictly better on at least one.  Equal points do not dominate
/// each other, so ties survive onto the front.
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// The non-dominated subset of `points`, sorted by (leakage, overhead,
/// index).  Duplicate coordinates are all kept; the output is a pure,
/// order-independent function of the input SET, so campaign reports stay
/// byte-stable under any scheduling of the scenarios that produced the
/// points.
[[nodiscard]] std::vector<ParetoPoint> pareto_front(
    std::vector<ParetoPoint> points);

}  // namespace tsc3d::campaign
