// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Declarative matrix spec for the adversarial campaign runner (docs/
// CAMPAIGNS.md).  A campaign sweeps the cross-product
//
//   attacker model x mitigation setting x floorplan flavor x seeds
//
// and every axis value is named here, together with the knobs the
// scenario adapters hand to the underlying attack/mitigation/leakage
// entry points.  Config mapping lives in config::make_campaign_options
// ([campaign] section); enum <-> name helpers below are the single
// source of the canonical spelling used in job files, cache identities,
// and report rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tsc3d::campaign {

/// The attacker models of Sec. 5 plus the two transient attackers.
enum class AttackKind {
  localization,
  characterization,
  monitoring,
  covert_channel,
  heating_fault,
};

/// Mitigation settings the defender may deploy.
enum class MitigationKind {
  none,
  dtm,
  noise_injection,
};

/// Floorplan flavors: how the exploration that produced the layout was
/// configured.
enum class FlavorKind {
  power_aware,  ///< floorplanning.mode = power, TSV-based stack
  tsc_secure,   ///< floorplanning.mode = tsc, TSV-based stack
  monolithic,   ///< power-aware objective on a monolithic (MIV) stack
};

/// Canonical names (used in job files, scenario identities, reports).
[[nodiscard]] std::string attack_name(AttackKind kind);
[[nodiscard]] std::string mitigation_name(MitigationKind kind);
[[nodiscard]] std::string flavor_name(FlavorKind kind);

/// Parse a canonical name; throws std::invalid_argument on an unknown
/// one (config typos must fail loudly, not enqueue garbage scenarios).
[[nodiscard]] AttackKind parse_attack(const std::string& name);
[[nodiscard]] MitigationKind parse_mitigation(const std::string& name);
[[nodiscard]] FlavorKind parse_flavor(const std::string& name);

/// The full campaign specification.
struct CampaignOptions {
  /// Design under campaign: a synthetic benchmark name (Table 1 tier).
  std::string benchmark = "n100";

  // --- matrix axes ------------------------------------------------------
  std::vector<AttackKind> attacks = {AttackKind::localization,
                                     AttackKind::characterization};
  std::vector<MitigationKind> mitigations = {MitigationKind::none,
                                             MitigationKind::dtm};
  std::vector<FlavorKind> flavors = {FlavorKind::power_aware,
                                     FlavorKind::tsc_secure};
  std::uint64_t seed_lo = 1;  ///< Monte-Carlo seeds [seed_lo, seed_hi]
  std::uint64_t seed_hi = 1;

  // --- scenario evaluation knobs (part of the scenario identity) --------
  std::size_t attack_grid = 32;       ///< thermal grid for scenario solves
  std::size_t monitoring_trials = 8;  ///< monitoring attack trials
  std::size_t covert_bits = 8;        ///< covert-channel payload bits
  double dtm_duration_s = 0.1;        ///< DTM closed-loop horizon
  double dtm_dt_s = 0.005;            ///< DTM transient step
  double injection_budget = 0.10;     ///< noise-injection power budget
  std::size_t leakage_phases = 4;     ///< SVF activity phases (>= 3)

  // --- reporting (NOT part of any scenario identity) --------------------
  std::string report_dir;  ///< where `tsc3d_campaign report` writes
};

}  // namespace tsc3d::campaign
