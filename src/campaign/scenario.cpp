#include "campaign/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/attacks.hpp"
#include "attack/covert_channel.hpp"
#include "attack/heating_fault.hpp"
#include "campaign/matrix.hpp"
#include "config/apply.hpp"
#include "leakage/activity.hpp"
#include "leakage/mutual_information.hpp"
#include "leakage/pearson.hpp"
#include "leakage/spatial_entropy.hpp"
#include "leakage/svf.hpp"
#include "mitigation/dtm.hpp"
#include "mitigation/noise_injection.hpp"
#include "service/serialize.hpp"

namespace tsc3d::campaign {

namespace {

std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) {
  return service::fnv1a64(&v, sizeof(v), h);
}

std::uint64_t hash_f64(std::uint64_t h, double v) {
  return service::fnv1a64(&v, sizeof(v), h);
}

std::uint64_t hash_str(std::uint64_t h, const std::string& s) {
  // Length-prefixed so ("ab","c") never collides with ("a","bc").
  h = hash_u64(h, s.size());
  return service::fnv1a64(s.data(), s.size(), h);
}

/// Module indices sorted by area descending, index ascending on ties --
/// the deterministic "largest modules" the attack adapters pick victims
/// and senders from.  Matches the block-level attacker of Sec. 5: the
/// big, well-known IP blocks are the natural targets.
std::vector<std::size_t> modules_by_area(const Floorplan3D& fp) {
  std::vector<std::size_t> order(fp.modules().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double aa = fp.modules()[a].area_um2;
    const double ab = fp.modules()[b].area_um2;
    if (aa != ab) return aa > ab;
    return a < b;
  });
  return order;
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

std::uint64_t scenario_params_hash(const CampaignOptions& opt) {
  std::uint64_t h = service::fnv1a64("tsc3d-scenario-params v1");
  h = hash_u64(h, opt.attack_grid);
  h = hash_u64(h, opt.monitoring_trials);
  h = hash_u64(h, opt.covert_bits);
  h = hash_f64(h, opt.dtm_duration_s);
  h = hash_f64(h, opt.dtm_dt_s);
  h = hash_f64(h, opt.injection_budget);
  h = hash_u64(h, opt.leakage_phases);
  return h;
}

ScenarioContext scenario_context(const service::JobSpec& job,
                                 const CampaignOptions& opt) {
  if (!job.is_scenario())
    throw std::invalid_argument(
        "scenario_context: job carries no scenario annotation");
  // Validate the annotations up front: a job file with a typo'd axis
  // name must fail here, not deep inside evaluation.
  (void)parse_attack(job.scenario);
  (void)parse_mitigation(job.mitigation.empty() ? "none" : job.mitigation);
  (void)parse_flavor(job.flavor.empty() ? "power_aware" : job.flavor);
  ScenarioContext ctx;
  ctx.exploration = service::job_context(exploration_spec(job));
  ctx.attack = job.scenario;
  ctx.mitigation = job.mitigation.empty() ? "none" : job.mitigation;
  ctx.flavor = job.flavor.empty() ? "power_aware" : job.flavor;
  ctx.params_hash = scenario_params_hash(opt);
  return ctx;
}

std::uint64_t scenario_key(const ScenarioContext& ctx) {
  std::uint64_t h = service::fnv1a64("tsc3d-scenario v1");
  h = hash_u64(h, ctx.exploration.design_hash);
  h = hash_u64(h, ctx.exploration.config_hash);
  h = hash_u64(h, ctx.exploration.seed);
  h = hash_str(h, ctx.exploration.code_version);
  h = hash_str(h, ctx.attack);
  h = hash_str(h, ctx.mitigation);
  h = hash_str(h, ctx.flavor);
  h = hash_u64(h, ctx.params_hash);
  return h;
}

std::uint64_t scenario_seed(const ScenarioContext& ctx,
                            const std::string& purpose) {
  return hash_str(scenario_key(ctx), purpose);
}

Floorplan3D rebuild_floorplan(const service::JobSpec& exploration,
                              const config::ConfigFile& cfg,
                              const service::StoredResult& stored) {
  Floorplan3D fp = service::build_design(exploration, cfg);
  if (stored.placement.size() != fp.modules().size())
    throw std::runtime_error(
        "rebuild_floorplan: stored placement has " +
        std::to_string(stored.placement.size()) + " modules, design has " +
        std::to_string(fp.modules().size()));
  for (std::size_t i = 0; i < stored.placement.size(); ++i) {
    const service::PlacedModule& p = stored.placement[i];
    Module& m = fp.modules()[i];
    m.die = static_cast<std::size_t>(p.die);
    m.shape = Rect{p.x, p.y, p.w, p.h};
    m.voltage_index = static_cast<std::size_t>(p.voltage_index);
  }
  fp.tsvs().clear();
  for (const service::StoredTsv& t : stored.tsvs) {
    Tsv tsv;
    tsv.position = Point{t.x, t.y};
    tsv.count = static_cast<std::size_t>(t.count);
    tsv.kind = t.kind == 0 ? TsvKind::signal : TsvKind::dummy;
    tsv.net = static_cast<NetId>(t.net);
    fp.tsvs().push_back(tsv);
  }
  if (stored.clock_period_ns > 0.0)
    fp.tech().clock_period_ns = stored.clock_period_ns;
  fp.invalidate_layout_caches();
  return fp;
}

MitigationOutcome apply_mitigation(const Floorplan3D& fp,
                                   const ThermalConfig& thermal,
                                   MitigationKind kind,
                                   const CampaignOptions& opt,
                                   std::uint64_t seed) {
  MitigationOutcome out;
  out.floorplan = fp;
  if (kind == MitigationKind::none) return out;

  const thermal::GridSolver solver(fp.tech(), thermal);
  if (kind == MitigationKind::dtm) {
    Rng rng(seed);
    const mitigation::DtmOptions dtm_opt;
    const mitigation::DtmResult result = mitigation::run_dtm(
        fp, solver, opt.dtm_duration_s, opt.dtm_dt_s, rng, dtm_opt);
    out.performance_loss = result.performance_loss;
    out.peak_k = result.peak_k;
    if (result.throttled_time_s > 0.0) {
      // The attacker observes the throttled operating point: scale the
      // controller's EXACT throttle set (same selection run_dtm acts
      // on) down to the throttled power level.
      const std::vector<bool> throttled =
          mitigation::throttleable_modules(fp, dtm_opt);
      for (std::size_t i = 0; i < throttled.size(); ++i)
        if (throttled[i])
          out.floorplan.modules()[i].power_w *= dtm_opt.throttle_scale;
      out.floorplan.invalidate_layout_caches();
    }
    return out;
  }

  // Noise injection: run the smoothing controller, then make the dummy
  // activity part of the floorplan the attacker sees by adding one
  // injector pseudo-module per nonzero bin of the injected-power map.
  mitigation::InjectionOptions inj_opt;
  inj_opt.budget_fraction = opt.injection_budget;
  const mitigation::InjectionResult result =
      mitigation::run_noise_injection(fp, solver, inj_opt);
  out.overhead_w = result.power_overhead_w;
  out.peak_k = result.peak_k_after;
  const double die_w = fp.tech().die_width_um;
  const double die_h = fp.tech().die_height_um;
  for (std::size_t d = 0; d < result.injected_power_w.size(); ++d) {
    const GridD& grid = result.injected_power_w[d];
    if (grid.empty()) continue;
    const double bin_w = die_w / static_cast<double>(grid.nx());
    const double bin_h = die_h / static_cast<double>(grid.ny());
    for (std::size_t iy = 0; iy < grid.ny(); ++iy)
      for (std::size_t ix = 0; ix < grid.nx(); ++ix) {
        const double watts = grid.at(ix, iy);
        if (watts <= 0.0) continue;
        Module inj;
        inj.id = out.floorplan.modules().size();
        inj.name = "inj_d" + std::to_string(d) + "_" + std::to_string(ix) +
                   "_" + std::to_string(iy);
        inj.area_um2 = bin_w * bin_h;
        inj.soft = false;
        // Voltage index 0 has power_scale 1.0, so effective_power()
        // reproduces the injected wattage exactly.
        inj.power_w = watts;
        inj.voltage_index = 0;
        inj.die = d;
        inj.shape = Rect{static_cast<double>(ix) * bin_w,
                         static_cast<double>(iy) * bin_h, bin_w, bin_h};
        out.floorplan.modules().push_back(inj);
      }
  }
  out.floorplan.invalidate_layout_caches();
  return out;
}

double run_attack(const Floorplan3D& fp, const thermal::GridSolver& solver,
                  AttackKind kind, const CampaignOptions& opt,
                  std::uint64_t seed) {
  Rng rng(seed);
  const attack::AttackOptions attack_opt;
  switch (kind) {
    case AttackKind::localization: {
      const attack::LocalizationResult r =
          attack::run_localization_attack(fp, solver, rng, attack_opt);
      return r.success_rate();
    }
    case AttackKind::characterization: {
      const attack::CharacterizationResult r =
          attack::run_characterization_attack(fp, solver, rng, attack_opt);
      return clamp01(r.r2);
    }
    case AttackKind::monitoring: {
      const std::vector<std::size_t> order = modules_by_area(fp);
      if (order.size() < 2)
        throw std::runtime_error("monitoring attack needs >= 2 modules");
      const attack::MonitoringResult r = attack::run_monitoring_attack(
          fp, solver, order[0], order[1], opt.monitoring_trials, rng,
          attack_opt);
      return r.accuracy();
    }
    case AttackKind::covert_channel: {
      const std::vector<std::size_t> order = modules_by_area(fp);
      if (order.empty())
        throw std::runtime_error("covert channel needs >= 1 module");
      attack::CovertChannelOptions cc_opt;
      cc_opt.bits = opt.covert_bits;
      const attack::CovertChannelResult r =
          attack::run_covert_channel(fp, solver, order[0], rng, cc_opt);
      // BER 0.5 is a coin flip (no channel); BER 0 is a perfect one.
      return clamp01(1.0 - 2.0 * r.bit_error_rate);
    }
    case AttackKind::heating_fault: {
      const std::vector<std::size_t> order = modules_by_area(fp);
      if (order.empty())
        throw std::runtime_error("heating fault needs >= 1 module");
      const attack::HeatingFaultOptions hf_opt;
      const attack::HeatingFaultResult r =
          attack::run_heating_fault_attack(fp, solver, order[0], hf_opt);
      if (r.fault_induced) return 1.0;
      // Partial credit: how far toward the fault threshold the attack
      // pushed the victim from its resting temperature.
      const double span = hf_opt.fault_threshold_k - r.victim_peak_k_nominal;
      if (span <= 0.0) return 1.0;  // already faulting at rest
      return clamp01((r.victim_peak_k_attacked - r.victim_peak_k_nominal) /
                     span);
    }
  }
  throw std::invalid_argument("run_attack: invalid AttackKind");
}

LeakageSummary measure_leakage(const Floorplan3D& fp,
                               const thermal::GridSolver& solver,
                               const CampaignOptions& opt,
                               std::uint64_t seed) {
  const std::size_t nx = solver.nx(), ny = solver.ny();
  const std::size_t dies = fp.tech().num_dies;
  const GridD tsv_density = fp.tsv_density_map(nx, ny);

  std::vector<GridD> power;
  power.reserve(dies);
  for (std::size_t d = 0; d < dies; ++d)
    power.push_back(fp.power_map(d, nx, ny));
  const thermal::ThermalResult nominal =
      solver.solve_steady(power, tsv_density);

  LeakageSummary summary;
  for (std::size_t d = 0; d < dies; ++d) {
    summary.pearson_abs_max =
        std::max(summary.pearson_abs_max,
                 std::abs(leakage::pearson(power[d],
                                           nominal.die_temperature[d])));
    summary.mi_max = std::max(
        summary.mi_max,
        leakage::mutual_information(power[d], nominal.die_temperature[d]));
    summary.spatial_entropy_max = std::max(
        summary.spatial_entropy_max, leakage::spatial_entropy(power[d]));
  }

  // SVF over Gaussian activity phases: the oracle trace is the sampled
  // per-module power vector, the side trace the concatenated per-die
  // thermal maps that activity produces.
  leakage::SvfAccumulator svf;
  const leakage::ActivityModel model;
  Rng rng(seed);
  for (std::size_t phase = 0; phase < opt.leakage_phases; ++phase) {
    const std::vector<double> activity = model.sample(fp, rng);
    std::vector<GridD> phase_power;
    phase_power.reserve(dies);
    for (std::size_t d = 0; d < dies; ++d)
      phase_power.push_back(fp.power_map(d, nx, ny, &activity));
    const thermal::ThermalResult observed =
        solver.solve_steady(phase_power, tsv_density);
    std::vector<double> side;
    side.reserve(dies * nx * ny);
    for (std::size_t d = 0; d < dies; ++d)
      side.insert(side.end(), observed.die_temperature[d].data().begin(),
                  observed.die_temperature[d].data().end());
    svf.add_phase(activity, side);
  }
  summary.svf = svf.svf();
  return summary;
}

ScenarioResult evaluate_scenario(
    const service::JobSpec& job, const CampaignOptions& opt,
    const std::filesystem::path& checkpoint_file,
    const std::filesystem::path& exploration_result_file,
    service::ResultCache* exploration_cache,
    std::size_t checkpoint_interval) {
  const ScenarioContext ctx = scenario_context(job, opt);
  const service::JobSpec exploration = exploration_spec(job);
  const config::ConfigFile cfg =
      config::ConfigFile::parse(exploration.config_text, "<scenario config>");

  // Exploration result: cache hit, or run it here.  Deterministic
  // either way, so concurrent workers racing on a shared exploration
  // duplicate work at most -- the stored bytes are identical.
  service::StoredResult stored;
  bool have = false;
  if (exploration_cache != nullptr) {
    if (std::optional<service::StoredResult> hit =
            exploration_cache->probe(ctx.exploration)) {
      stored = *hit;
      have = true;
    }
  }
  if (!have) {
    const service::WorkReport report =
        service::run_job(exploration, checkpoint_file,
                         exploration_result_file, exploration_cache,
                         checkpoint_interval);
    if (!report.ok)
      throw std::runtime_error("scenario exploration failed: " +
                               report.error);
    const service::ResultLoad load = service::load_result_file(
        exploration_result_file, &ctx.exploration);
    if (!load.ok)
      throw std::runtime_error("scenario exploration result unreadable: " +
                               load.reason);
    stored = load.result;
  }

  const Floorplan3D fp = rebuild_floorplan(exploration, cfg, stored);

  // Scenario-grid thermal configuration: the config's [thermal] keys
  // with the campaign's analysis resolution.
  ThermalConfig thermal;
  config::apply_thermal(cfg, thermal);
  thermal.grid_nx = opt.attack_grid;
  thermal.grid_ny = opt.attack_grid;

  const MitigationOutcome mitigated =
      apply_mitigation(fp, thermal, parse_mitigation(ctx.mitigation), opt,
                       scenario_seed(ctx, "mitigation"));

  const thermal::GridSolver solver(mitigated.floorplan.tech(), thermal);
  const double success =
      run_attack(mitigated.floorplan, solver, parse_attack(ctx.attack), opt,
                 scenario_seed(ctx, "attack"));
  const LeakageSummary leak = measure_leakage(
      mitigated.floorplan, solver, opt, scenario_seed(ctx, "leakage"));

  ScenarioResult result;
  result.context = ctx;
  result.legal = stored.legal;
  result.wirelength_m = stored.wirelength_m;
  result.power_w = stored.power_w;
  result.critical_delay_ns = stored.critical_delay_ns;
  result.peak_k = stored.peak_k;
  result.mitigation_overhead_w = mitigated.overhead_w;
  result.mitigation_performance_loss = mitigated.performance_loss;
  result.mitigation_peak_k = mitigated.peak_k;
  result.attack_success = success;
  result.pearson_abs_max = leak.pearson_abs_max;
  result.mi_max = leak.mi_max;
  result.svf = leak.svf;
  result.spatial_entropy_max = leak.spatial_entropy_max;
  result.leakage = success;
  result.overhead = stored.power_w * (1.0 + mitigated.performance_loss) +
                    mitigated.overhead_w;
  return result;
}

}  // namespace tsc3d::campaign
