// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Campaign orchestration on top of the batch service: expand the
// declarative [campaign] matrix into scenario jobs, push them through
// the existing durable JobQueue (same claim/lease/idempotent-enqueue
// machinery as plain exploration jobs), evaluate each against its
// cached-or-fresh floorplan, and aggregate the per-attack Pareto
// fronts into a byte-stable report.  Operator guide: docs/CAMPAIGNS.md.
//
// Scenario results are content-addressed in the queue's cache directory
// (<hex(scenario_key)>.scn beside the exploration's .res files), so a
// second campaign run -- at any worker count, on a fresh queue sharing
// the cache -- reproduces the report byte-for-byte without recomputing.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "campaign/options.hpp"
#include "campaign/scenario.hpp"
#include "config/config_file.hpp"
#include "service/job_queue.hpp"

namespace tsc3d::campaign {

/// A fully expanded campaign: the options parsed from [campaign] plus
/// the scenario jobs in canonical matrix order (expand_matrix).
struct CampaignPlan {
  CampaignOptions options;
  std::vector<service::JobSpec> jobs;
};

/// Parse [campaign] from `cfg` and expand the matrix.
[[nodiscard]] CampaignPlan plan_campaign(const config::ConfigFile& cfg);

/// Enqueue every scenario job (idempotent; re-enqueueing an existing
/// campaign is a no-op).  Returns the job ids aligned with plan.jobs.
std::vector<std::string> enqueue_campaign(service::JobQueue& queue,
                                          const CampaignPlan& plan);

/// What happened to one claimed job (scenario or plain).
struct ScenarioWorkReport {
  std::string id;
  bool ok = false;
  bool scenario = false;   ///< false: a plain exploration job
  bool cache_hit = false;  ///< scenario served from the scenario cache
  std::string error;       ///< set when ok == false
};

/// Claim and run the next available job, dispatching scenario jobs to
/// evaluate_scenario and plain jobs to the standard worker path.
/// Returns std::nullopt when nothing is claimable.
[[nodiscard]] std::optional<ScenarioWorkReport> work_one(
    service::JobQueue& queue, const CampaignOptions& opt);

/// Drain the queue with `workers` threads sharing one JobQueue (safe:
/// the queue object is immutable state plus O_EXCL claim files).
/// `max_jobs` == 0 drains until empty.  Returns the per-job reports in
/// an unspecified order (report rendering never depends on it).
std::vector<ScenarioWorkReport> drain(service::JobQueue& queue,
                                      const CampaignOptions& opt,
                                      std::size_t workers,
                                      std::size_t max_jobs = 0);

/// Fetch every planned scenario's result from the scenario cache,
/// aligned with plan.jobs.  Throws std::runtime_error naming the first
/// missing scenario (job failed or never ran).
[[nodiscard]] std::vector<ScenarioResult> collect_results(
    const service::JobQueue& queue, const CampaignPlan& plan);

}  // namespace tsc3d::campaign
