// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Matrix expansion: from a declarative CampaignOptions spec to the
// concrete list of scenario jobs riding the service::JobQueue.
//
// Properties the tests pin down (tests/test_campaign.cpp):
//   * the expansion is CANONICALLY ORDERED -- scenarios sorted by
//     (attack, mitigation, flavor, seed) names -- and DEDUPLICATED, so
//     two specs listing the same axes in any order and with repeats
//     expand to the identical job list;
//   * enqueueing an expansion twice is a no-op (job ids are content
//     hashes; the queue's enqueue is idempotent);
//   * stripping the scenario annotations from any scenario job yields
//     the exploration job whose floorplan the scenario evaluates, with
//     the flavor baked into the config text.
#pragma once

#include <string>
#include <vector>

#include "campaign/options.hpp"
#include "config/config_file.hpp"
#include "service/job_queue.hpp"

namespace tsc3d::campaign {

/// Render `base` with the flavor's config overrides applied:
///   power_aware -> floorplanning.mode = power, technology.flavor = tsv
///   tsc_secure  -> floorplanning.mode = tsc,   technology.flavor = tsv
///   monolithic  -> floorplanning.mode = power, technology.flavor =
///                  monolithic
/// The result is the base config's canonical form with those keys
/// overridden -- valid config text (canonical lines re-parse), stable
/// under reformatting of the base, and safe against duplicate-key
/// collisions with keys the base already sets.
[[nodiscard]] std::string flavored_config(const config::ConfigFile& base,
                                          FlavorKind flavor);

/// Expand the campaign matrix into scenario jobs: one per
/// (attack, mitigation, flavor, seed), canonically ordered and deduped.
/// `base` supplies every non-flavor config key verbatim.
[[nodiscard]] std::vector<service::JobSpec> expand_matrix(
    const CampaignOptions& opt, const config::ConfigFile& base);

/// The exploration job underlying a scenario job: same design, config,
/// and seed, with the scenario annotations cleared.  Scenario jobs with
/// equal explorations share one cached floorplan result.
[[nodiscard]] service::JobSpec exploration_spec(
    const service::JobSpec& scenario_job);

}  // namespace tsc3d::campaign
