#include "campaign/scenario_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "service/serialize.hpp"
#include "service/version.hpp"

namespace tsc3d::campaign {

namespace {

constexpr char kMagic[8] = {'T', 'S', 'C', '3', 'D', 'S', 'C', 'N'};

void put_context(service::ByteWriter& w, const ScenarioContext& ctx) {
  w.u64(ctx.exploration.design_hash);
  w.u64(ctx.exploration.config_hash);
  w.u64(ctx.exploration.seed);
  w.str(ctx.exploration.code_version);
  w.str(ctx.attack);
  w.str(ctx.mitigation);
  w.str(ctx.flavor);
  w.u64(ctx.params_hash);
}

ScenarioContext get_context(service::ByteReader& r) {
  ScenarioContext ctx;
  ctx.exploration.design_hash = r.u64();
  ctx.exploration.config_hash = r.u64();
  ctx.exploration.seed = r.u64();
  ctx.exploration.code_version = r.str();
  ctx.attack = r.str();
  ctx.mitigation = r.str();
  ctx.flavor = r.str();
  ctx.params_hash = r.u64();
  return ctx;
}

}  // namespace

void save_scenario_file(const std::filesystem::path& path,
                        const ScenarioResult& res) {
  service::ByteWriter payload;
  put_context(payload, res.context);
  payload.boolean(res.legal);
  payload.f64(res.wirelength_m);
  payload.f64(res.power_w);
  payload.f64(res.critical_delay_ns);
  payload.f64(res.peak_k);
  payload.f64(res.mitigation_overhead_w);
  payload.f64(res.mitigation_performance_loss);
  payload.f64(res.mitigation_peak_k);
  payload.f64(res.attack_success);
  payload.f64(res.pearson_abs_max);
  payload.f64(res.mi_max);
  payload.f64(res.svf);
  payload.f64(res.spatial_entropy_max);
  payload.f64(res.leakage);
  payload.f64(res.overhead);

  service::ByteWriter file;
  for (const char m : kMagic) file.u8(static_cast<std::uint8_t>(m));
  file.u64(service::kScenarioFormatVersion);
  file.u64(payload.bytes().size());
  file.u64(service::fnv1a64(payload.bytes().data(), payload.bytes().size()));

  const std::filesystem::path tmp = service::unique_tmp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("save_scenario_file: cannot open " +
                               tmp.string());
    out.write(reinterpret_cast<const char*>(file.bytes().data()),
              static_cast<std::streamsize>(file.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.bytes().data()),
              static_cast<std::streamsize>(payload.bytes().size()));
    out.flush();
    if (!out)
      throw std::runtime_error("save_scenario_file: write failed on " +
                               tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

ScenarioLoad load_scenario_file(const std::filesystem::path& path,
                                const ScenarioContext* expect) {
  ScenarioLoad out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.reason = "no scenario file";
    return out;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  try {
    service::ByteReader header(bytes.data(), bytes.size());
    for (const char m : kMagic)
      if (header.u8() != static_cast<std::uint8_t>(m)) {
        out.reason = "bad magic";
        return out;
      }
    if (header.u64() != service::kScenarioFormatVersion) {
      out.reason = "unknown format version";
      return out;
    }
    const std::uint64_t payload_size = header.u64();
    const std::uint64_t checksum = header.u64();
    if (payload_size != header.remaining()) {
      out.reason = "truncated or oversized payload";
      return out;
    }
    const std::uint8_t* payload =
        bytes.data() + (bytes.size() - header.remaining());
    if (service::fnv1a64(payload, static_cast<std::size_t>(payload_size)) !=
        checksum) {
      out.reason = "checksum mismatch";
      return out;
    }

    service::ByteReader r(payload, static_cast<std::size_t>(payload_size));
    ScenarioResult res;
    res.context = get_context(r);
    if (expect != nullptr && !(res.context == *expect)) {
      out.reason = "context mismatch";
      return out;
    }
    res.legal = r.boolean();
    res.wirelength_m = r.f64();
    res.power_w = r.f64();
    res.critical_delay_ns = r.f64();
    res.peak_k = r.f64();
    res.mitigation_overhead_w = r.f64();
    res.mitigation_performance_loss = r.f64();
    res.mitigation_peak_k = r.f64();
    res.attack_success = r.f64();
    res.pearson_abs_max = r.f64();
    res.mi_max = r.f64();
    res.svf = r.f64();
    res.spatial_entropy_max = r.f64();
    res.leakage = r.f64();
    res.overhead = r.f64();
    if (!r.exhausted()) {
      out.reason = "trailing bytes";
      return out;
    }
    out.result = std::move(res);
    out.ok = true;
    return out;
  } catch (const std::exception& e) {
    out.reason = e.what();
    out.ok = false;
    return out;
  }
}

ScenarioCache::ScenarioCache(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path ScenarioCache::path_for(
    const ScenarioContext& ctx) const {
  std::ostringstream hex;
  hex << std::hex << std::setw(16) << std::setfill('0') << scenario_key(ctx);
  return dir_ / (hex.str() + ".scn");
}

std::optional<ScenarioResult> ScenarioCache::probe(
    const ScenarioContext& ctx) const {
  const ScenarioLoad load = load_scenario_file(path_for(ctx), &ctx);
  if (!load.ok) return std::nullopt;
  return load.result;
}

void ScenarioCache::store(const ScenarioResult& result) const {
  save_scenario_file(path_for(result.context), result);
}

}  // namespace tsc3d::campaign
