#include "tsv/dummy_inserter.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tsc3d::tsv {

namespace {

/// Combined |stability| over all dies per bin: TSVs act on the whole
/// stack, so insertion targets the bin whose correlation is most stable
/// anywhere in the column.
GridD combined_stability(const leakage::StabilitySampling& s) {
  GridD combined = s.stability.front();
  for (auto& v : combined) v = std::abs(v);
  for (std::size_t d = 1; d < s.stability.size(); ++d) {
    for (std::size_t i = 0; i < combined.size(); ++i)
      combined[i] = std::max(combined[i], std::abs(s.stability[d][i]));
  }
  return combined;
}

double average(const std::vector<double>& v) {
  return v.empty() ? 0.0
                   : std::accumulate(v.begin(), v.end(), 0.0) /
                         static_cast<double>(v.size());
}

}  // namespace

DummyInsertResult insert_dummy_tsvs(Floorplan3D& fp,
                                    thermal::ThermalEngine& engine,
                                    Rng& rng,
                                    const DummyInsertOptions& options) {
  DummyInsertResult result;
  const std::size_t nx = engine.nx();
  const std::size_t ny = engine.ny();
  const double bw = fp.tech().die_width_um / static_cast<double>(nx);
  const double bh = fp.tech().die_height_um / static_cast<double>(ny);

  // Common random numbers: every sampling campaign reuses the same
  // activity draws, so the before/after correlation comparison is paired
  // and the stop criterion reacts to the TSVs, not to sampling noise.
  const std::uint64_t sampling_seed = rng();
  auto sample = [&]() {
    Rng paired(sampling_seed);
    return leakage::run_stability_sampling(
        fp, engine, options.samples_per_iteration, paired);
  };

  leakage::StabilitySampling sampling = sample();
  double best_corr = average(sampling.mean_correlation);
  result.correlation_before = best_corr;
  result.stability_before = average(sampling.mean_abs_stability);
  result.correlation_history.push_back(best_corr);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Rank bins by combined stability; take the strongest unsaturated
    // bins inside the focus region (if any).
    const GridD stability = combined_stability(sampling);
    const GridD density = fp.tsv_density_map(nx, ny);
    std::vector<std::size_t> order(stability.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return stability[a] > stability[b];
    });

    const std::size_t before_size = fp.tsvs().size();
    std::size_t added = 0;
    for (const std::size_t bin : order) {
      if (added >= options.islands_per_iteration) break;
      if (density[bin] > options.saturation) continue;
      const std::size_t ix = bin % nx;
      const std::size_t iy = bin / nx;
      const Point center{(static_cast<double>(ix) + 0.5) * bw,
                         (static_cast<double>(iy) + 0.5) * bh};
      if (!options.focus_regions.empty()) {
        const bool inside = std::any_of(
            options.focus_regions.begin(), options.focus_regions.end(),
            [&](const Rect& r) { return r.contains(center); });
        if (!inside) continue;
      }
      Tsv t;
      t.position = center;
      t.count = options.tsvs_per_island;
      t.kind = TsvKind::dummy;
      fp.tsvs().push_back(t);
      ++added;
    }
    if (added == 0) break;  // nothing insertable left

    leakage::StabilitySampling next = sample();
    const double corr = average(next.mean_correlation);
    result.correlation_history.push_back(corr);
    ++result.iterations;

    if (corr >= best_corr) {
      // Sweet spot passed: roll back the last batch and stop (Sec. 6.2).
      fp.tsvs().resize(before_size);
      break;
    }
    best_corr = corr;
    sampling = std::move(next);
    result.islands_inserted += added;
    result.tsvs_inserted += added * options.tsvs_per_island;
  }

  result.correlation_after = best_corr;
  result.stability_after = average(sampling.mean_abs_stability);
  return result;
}

DummyInsertResult insert_dummy_tsvs(Floorplan3D& fp,
                                    const thermal::GridSolver& solver,
                                    Rng& rng,
                                    const DummyInsertOptions& options) {
  return insert_dummy_tsvs(fp, solver.engine(), rng, options);
}

}  // namespace tsc3d::tsv
