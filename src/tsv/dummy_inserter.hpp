// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Correlation-driven insertion of dummy thermal TSVs (Sec. 6.2 / 7.1):
// "Continuing the runtime sampling process, we iteratively insert dummy
// thermal TSVs where the most stable correlations occur, as long as the
// resulting average correlation is reduced.  This stop criterion
// represents the final 'sweet spot' where further TSV insertion would
// increase the overall correlation again."
//
// Each iteration re-runs the Gaussian activity sampling, locates the bins
// with the most stable power-temperature correlation, drops an island of
// dummy TSVs there, and re-evaluates.  The last batch is rolled back when
// the average correlation stops improving.
#pragma once

#include <cstddef>
#include <vector>

#include "core/floorplan.hpp"
#include "core/rng.hpp"
#include "leakage/activity.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::tsv {

struct DummyInsertOptions {
  std::size_t samples_per_iteration = 20;  ///< activity samples per step
  std::size_t islands_per_iteration = 3;   ///< dummy islands added per step
  std::size_t tsvs_per_island = 32;        ///< TSVs per dummy island
  std::size_t max_iterations = 12;
  /// Skip bins whose TSV coverage already exceeds this fraction.
  double saturation = 0.8;
  /// Optional focus: only consider stability peaks inside this die-0
  /// region (empty = whole chip).  Supports the paper's alternative of
  /// protecting critical modules only (end of Sec. 7.1).
  std::vector<Rect> focus_regions;
};

/// Trace of one insertion campaign.
struct DummyInsertResult {
  std::size_t iterations = 0;
  std::size_t tsvs_inserted = 0;       ///< net of the rolled-back batch
  std::size_t islands_inserted = 0;
  double correlation_before = 0.0;     ///< avg per-die Eq.1 corr, nominal
  double correlation_after = 0.0;
  double stability_before = 0.0;       ///< mean |r_{x,y}| before
  double stability_after = 0.0;
  std::vector<double> correlation_history;  ///< avg corr per iteration
};

/// Run the insertion loop on `fp` (adds TsvKind::dummy entries).  The
/// per-iteration sampling campaigns reuse the engine's solver state
/// (warm-started solves; the conductance network is rebuilt only when a
/// TSV batch actually lands).
[[nodiscard]] DummyInsertResult insert_dummy_tsvs(
    Floorplan3D& fp, thermal::ThermalEngine& engine, Rng& rng,
    const DummyInsertOptions& options = {});

/// Compatibility overload for GridSolver holders; runs on the solver's
/// underlying engine.
[[nodiscard]] DummyInsertResult insert_dummy_tsvs(
    Floorplan3D& fp, const thermal::GridSolver& solver, Rng& rng,
    const DummyInsertOptions& options = {});

}  // namespace tsc3d::tsv
