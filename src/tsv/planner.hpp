// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Signal-TSV planning and TSV pattern generation.
//
// Every net whose pins span both dies needs (at least) one signal TSV.
// The planner places one TSV per crossing net at the net's bounding-box
// center and can optionally cluster nearby TSVs into islands -- the two
// arrangements whose leakage behaviour Sec. 3 contrasts ("irregular TSVs"
// vs "TSV islands").
//
// The free-standing pattern generators reproduce the six TSV
// distributions of the Fig. 2 exploration: none, maximal density,
// irregular, irregular+regular, islands, islands+regular.
#pragma once

#include <cstddef>

#include "core/floorplan.hpp"
#include "core/rng.hpp"

namespace tsc3d::tsv {

struct PlannerOptions {
  /// If > 0, cluster signal TSVs into islands on a clustering grid with
  /// this many cells per axis (0 = keep one TSV per net, irregular).
  std::size_t island_grid = 0;
};

/// Statistics of one planning pass.
struct PlanResult {
  std::size_t crossing_nets = 0;  ///< nets spanning both dies
  std::size_t tsvs_placed = 0;    ///< total signal TSVs
  std::size_t islands = 0;        ///< TSV groups (== tsvs if unclustered)
};

/// Replace all signal TSVs of `fp` according to the current placement.
/// Dummy TSVs are preserved.
PlanResult place_signal_tsvs(Floorplan3D& fp, const PlannerOptions& opt = {});

// --- exploratory pattern generators (Sec. 3 / Fig. 2) --------------------

/// Remove all TSVs (pattern "no TSVs").
void clear_tsvs(Floorplan3D& fp, TsvKind kind);

/// Pattern "maximal TSV density": 100% of the die area covered by TSV
/// cells and their keep-out zones.
void fill_max_density(Floorplan3D& fp);

/// Pattern "regular TSVs": an nx-by-ny array of single TSVs.
void add_regular_grid(Floorplan3D& fp, std::size_t nx, std::size_t ny);

/// Pattern "irregular TSVs": `count` single TSVs at random positions.
void add_irregular(Floorplan3D& fp, std::size_t count, Rng& rng);

/// Pattern "TSV islands": `islands` groups of `per_island` densely packed
/// TSVs at random positions.
void add_islands(Floorplan3D& fp, std::size_t islands, std::size_t per_island,
                 Rng& rng);

}  // namespace tsc3d::tsv
