#include "tsv/planner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace tsc3d::tsv {

namespace {

/// Clamp a point into the die outline with a margin for the TSV body.
Point clamp_into(const Floorplan3D& fp, Point p) {
  const double margin = fp.tech().tsv.cell_edge_um();
  const Rect o = fp.outline();
  p.x = std::clamp(p.x, o.x + margin, o.right() - margin);
  p.y = std::clamp(p.y, o.y + margin, o.top() - margin);
  return p;
}

}  // namespace

void clear_tsvs(Floorplan3D& fp, TsvKind kind) {
  auto& tsvs = fp.tsvs();
  tsvs.erase(std::remove_if(tsvs.begin(), tsvs.end(),
                            [&](const Tsv& t) { return t.kind == kind; }),
             tsvs.end());
}

PlanResult place_signal_tsvs(Floorplan3D& fp, const PlannerOptions& opt) {
  clear_tsvs(fp, TsvKind::signal);
  PlanResult result;

  // Collect one desired TSV position per die-crossing net.
  std::vector<std::pair<NetId, Point>> wanted;
  for (const Net& net : fp.nets()) {
    std::set<std::size_t> dies;
    double x0 = 0.0, x1 = 0.0, y0 = 0.0, y1 = 0.0;
    bool first = true;
    for (const NetPin& pin : net.pins) {
      Point p;
      std::size_t die = 0;
      if (pin.is_terminal()) {
        const Terminal& t = fp.terminals()[pin.terminal];
        p = t.position;
        die = t.die;
      } else {
        const Module& m = fp.modules()[pin.module];
        p = m.shape.center();
        die = m.die;
      }
      dies.insert(die);
      if (first) {
        x0 = x1 = p.x;
        y0 = y1 = p.y;
        first = false;
      } else {
        x0 = std::min(x0, p.x);
        x1 = std::max(x1, p.x);
        y0 = std::min(y0, p.y);
        y1 = std::max(y1, p.y);
      }
    }
    if (dies.size() < 2) continue;
    ++result.crossing_nets;
    wanted.emplace_back(net.id,
                        clamp_into(fp, {(x0 + x1) / 2.0, (y0 + y1) / 2.0}));
  }

  if (opt.island_grid == 0) {
    // One (irregular) TSV per crossing net.
    for (const auto& [net_id, pos] : wanted) {
      Tsv t;
      t.position = pos;
      t.count = 1;
      t.kind = TsvKind::signal;
      t.net = net_id;
      fp.tsvs().push_back(t);
    }
    result.tsvs_placed = wanted.size();
    result.islands = wanted.size();
    return result;
  }

  // Cluster into islands on a coarse grid: all TSVs falling into one
  // cluster cell merge into a single island at their centroid.
  struct Cluster {
    double sx = 0.0, sy = 0.0;
    std::size_t n = 0;
    NetId first_net = 0;
  };
  std::map<std::pair<std::size_t, std::size_t>, Cluster> clusters;
  const double cw = fp.tech().die_width_um / static_cast<double>(opt.island_grid);
  const double ch =
      fp.tech().die_height_um / static_cast<double>(opt.island_grid);
  for (const auto& [net_id, pos] : wanted) {
    const auto cx = static_cast<std::size_t>(
        std::clamp(pos.x / cw, 0.0, static_cast<double>(opt.island_grid - 1)));
    const auto cy = static_cast<std::size_t>(
        std::clamp(pos.y / ch, 0.0, static_cast<double>(opt.island_grid - 1)));
    Cluster& c = clusters[{cx, cy}];
    if (c.n == 0) c.first_net = net_id;
    c.sx += pos.x;
    c.sy += pos.y;
    ++c.n;
  }
  for (const auto& [cell, c] : clusters) {
    (void)cell;
    Tsv t;
    t.position = clamp_into(
        fp, {c.sx / static_cast<double>(c.n), c.sy / static_cast<double>(c.n)});
    t.count = c.n;
    t.kind = TsvKind::signal;
    t.net = c.first_net;
    fp.tsvs().push_back(t);
    ++result.islands;
    result.tsvs_placed += c.n;
  }
  return result;
}

void fill_max_density(Floorplan3D& fp) {
  const double cell = fp.tech().tsv.cell_edge_um();
  const auto nx =
      static_cast<std::size_t>(fp.tech().die_width_um / cell);
  const auto ny =
      static_cast<std::size_t>(fp.tech().die_height_um / cell);
  // One island per coarse tile keeps the TSV list small while covering
  // 100% of the area: tile of k*k cells -> island of k*k TSVs.
  const std::size_t tile = 16;
  for (std::size_t ty = 0; ty < ny / tile; ++ty) {
    for (std::size_t tx = 0; tx < nx / tile; ++tx) {
      Tsv t;
      t.position = {(static_cast<double>(tx) + 0.5) * cell * tile,
                    (static_cast<double>(ty) + 0.5) * cell * tile};
      t.count = tile * tile;
      t.kind = TsvKind::signal;
      fp.tsvs().push_back(t);
    }
  }
}

void add_regular_grid(Floorplan3D& fp, std::size_t nx, std::size_t ny) {
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      Tsv t;
      t.position = {(static_cast<double>(ix) + 0.5) * fp.tech().die_width_um /
                        static_cast<double>(nx),
                    (static_cast<double>(iy) + 0.5) * fp.tech().die_height_um /
                        static_cast<double>(ny)};
      t.count = 1;
      t.kind = TsvKind::signal;
      fp.tsvs().push_back(t);
    }
  }
}

void add_irregular(Floorplan3D& fp, std::size_t count, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    Tsv t;
    t.position = clamp_into(fp, {rng.uniform(0.0, fp.tech().die_width_um),
                                 rng.uniform(0.0, fp.tech().die_height_um)});
    t.count = 1;
    t.kind = TsvKind::signal;
    fp.tsvs().push_back(t);
  }
}

void add_islands(Floorplan3D& fp, std::size_t islands, std::size_t per_island,
                 Rng& rng) {
  for (std::size_t i = 0; i < islands; ++i) {
    Tsv t;
    t.position = clamp_into(fp, {rng.uniform(0.0, fp.tech().die_width_um),
                                 rng.uniform(0.0, fp.tech().die_height_um)});
    t.count = per_island;
    t.kind = TsvKind::signal;
    fp.tsvs().push_back(t);
  }
}

}  // namespace tsc3d::tsv
