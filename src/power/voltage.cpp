#include "power/voltage.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <numeric>

namespace tsc3d::power {

VoltageAssigner::VoltageAssigner(Floorplan3D& fp, const ElmoreTiming& timing,
                                 VoltageOptions options)
    : fp_(fp), timing_(timing), opt_(options) {}

bool VoltageAssigner::adjacent(std::size_t a, std::size_t b) const {
  const Module& ma = fp_.modules()[a];
  const Module& mb = fp_.modules()[b];
  if (ma.die == mb.die) {
    // Same die: edge-to-edge distance within tolerance.  Expand one
    // rectangle by the tolerance and test for overlap.
    Rect grown = ma.shape;
    grown.x -= opt_.adjacency_tolerance_um;
    grown.y -= opt_.adjacency_tolerance_um;
    grown.w += 2.0 * opt_.adjacency_tolerance_um;
    grown.h += 2.0 * opt_.adjacency_tolerance_um;
    return grown.overlaps(mb.shape);
  }
  // Different dies: vertically adjacent if footprints overlap.
  return ma.shape.overlaps(mb.shape);
}

std::size_t VoltageAssigner::pick_voltage(unsigned mask, double volume_area,
                                          double volume_power_nominal,
                                          double target_density) const {
  const auto& levels = fp_.tech().voltages;
  std::size_t best = 1;
  bool found = false;
  double best_key = 0.0;
  for (std::size_t vi = 0; vi < levels.size(); ++vi) {
    if ((mask & (1u << vi)) == 0) continue;
    double key = 0.0;
    switch (opt_.objective) {
      case VoltageObjective::power_aware:
        // Lowest power wins.
        key = volume_power_nominal * levels[vi].power_scale;
        break;
      case VoltageObjective::tsc_aware: {
        // Density closest to the chip-wide target wins (smooth gradients
        // across volumes), but up-scaling cool volumes toward the target
        // is penalized: burning extra power for smoothness contradicts
        // the paper's low overhead (+5.4% power) and merely trades one
        // leakage source for higher temperatures.  Down-scaling hot
        // volumes both smooths and saves power.
        const double density =
            volume_area > 0.0
                ? volume_power_nominal * levels[vi].power_scale / volume_area
                : 0.0;
        const double up_scaling_penalty =
            std::max(0.0, levels[vi].power_scale - 1.0) * target_density;
        key = std::abs(density - target_density) + up_scaling_penalty;
        break;
      }
    }
    if (!found || key < best_key) {
      best = vi;
      best_key = key;
      found = true;
    }
  }
  // If the mask was empty (fully constrained module), stay at nominal.
  return found ? best : 1;
}

VoltageAssignment VoltageAssigner::assign() {
  const std::size_t n = fp_.modules().size();
  const auto& levels = fp_.tech().voltages;
  const double clock = fp_.tech().clock_period_ns;

  // Feasible voltages per module, evaluated against the current state
  // (the floorplanning loop re-runs assignment each iteration, cf. Fig. 3).
  std::vector<unsigned> feasible(n, 0);
  for (std::size_t m = 0; m < n; ++m)
    feasible[m] = timing_.feasible_voltages(m, clock);

  // Adjacency lists (same-die abutment or cross-die overlap).  Candidate
  // pairs come from a uniform spatial hash so large designs avoid the
  // quadratic all-pairs sweep.
  std::vector<std::vector<std::size_t>> adj(n);
  {
    constexpr std::size_t kBuckets = 16;
    const double bw = fp_.tech().die_width_um / kBuckets;
    const double bh = fp_.tech().die_height_um / kBuckets;
    std::vector<std::vector<std::size_t>> bucket(kBuckets * kBuckets);
    auto span = [&](const Rect& r, double grow) {
      const auto clamp_idx = [](double v, double unit) {
        return static_cast<std::size_t>(std::clamp(
            v / unit, 0.0, static_cast<double>(kBuckets - 1)));
      };
      return std::array<std::size_t, 4>{
          clamp_idx(r.x - grow, bw), clamp_idx(r.right() + grow, bw),
          clamp_idx(r.y - grow, bh), clamp_idx(r.top() + grow, bh)};
    };
    for (std::size_t m = 0; m < n; ++m) {
      const auto [x0, x1, y0, y1] =
          span(fp_.modules()[m].shape, opt_.adjacency_tolerance_um);
      for (std::size_t by = y0; by <= y1; ++by)
        for (std::size_t bx = x0; bx <= x1; ++bx)
          bucket[by * kBuckets + bx].push_back(m);
    }
    for (const auto& cell : bucket) {
      for (std::size_t i = 0; i < cell.size(); ++i) {
        for (std::size_t j = i + 1; j < cell.size(); ++j) {
          const std::size_t a = std::min(cell[i], cell[j]);
          const std::size_t b = std::max(cell[i], cell[j]);
          // Dedupe: a pair may share several buckets.
          if (std::find(adj[a].begin(), adj[a].end(), b) != adj[a].end())
            continue;
          if (adjacent(a, b)) {
            adj[a].push_back(b);
            adj[b].push_back(a);
          }
        }
      }
    }
  }

  // Chip-wide target density for the TSC objective.
  double total_area = 0.0;
  double total_power_nominal = 0.0;
  for (const Module& m : fp_.modules()) {
    total_area += m.shape.area();
    total_power_nominal += m.power_w;
  }
  const double target_density =
      total_area > 0.0 ? total_power_nominal / total_area : 0.0;

  // Seed order: PA grows volumes from the largest modules (fewest
  // volumes); TSC seeds by power density so similar regimes cluster.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (opt_.objective == VoltageObjective::power_aware) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return fp_.modules()[a].shape.area() > fp_.modules()[b].shape.area();
    });
  } else {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return fp_.modules()[a].power_density() >
             fp_.modules()[b].power_density();
    });
  }

  VoltageAssignment result;
  std::vector<bool> assigned(n, false);
  for (const std::size_t seed : order) {
    if (assigned[seed]) continue;
    // BFS growth from the seed, intersecting feasible-voltage sets; the
    // multi-branch tree of Sec. 6.1 collapses to its accepted frontier.
    VoltageVolume vol;
    unsigned mask = feasible[seed] != 0 ? feasible[seed] : (1u << 1);
    double power_nominal = 0.0;
    double density_sum = 0.0;
    std::deque<std::size_t> queue{seed};
    assigned[seed] = true;
    while (!queue.empty()) {
      const std::size_t m = queue.front();
      queue.pop_front();
      const Module& mod = fp_.modules()[m];
      vol.modules.push_back(m);
      vol.area_um2 += mod.shape.area();
      power_nominal += mod.power_w;
      density_sum += mod.power_density();
      for (const std::size_t nb : adj[m]) {
        if (assigned[nb]) continue;
        const unsigned joint =
            mask & (feasible[nb] != 0 ? feasible[nb] : (1u << 1));
        if (joint == 0) continue;  // no common feasible voltage
        if (opt_.objective == VoltageObjective::tsc_aware) {
          const double mean_density =
              density_sum / static_cast<double>(vol.modules.size());
          const double nb_density = fp_.modules()[nb].power_density();
          const double band = opt_.density_band * std::max(mean_density,
                                                           target_density);
          if (std::abs(nb_density - mean_density) > band) continue;
        }
        mask = joint;
        assigned[nb] = true;
        queue.push_back(nb);
      }
    }
    vol.voltage_index =
        pick_voltage(mask, vol.area_um2, power_nominal, target_density);
    vol.power_w = power_nominal * levels[vol.voltage_index].power_scale;
    std::size_t die0 = fp_.modules()[vol.modules.front()].die;
    vol.spans_dies = std::any_of(
        vol.modules.begin(), vol.modules.end(),
        [&](std::size_t m) { return fp_.modules()[m].die != die0; });
    result.volumes.push_back(std::move(vol));
  }

  // Write the assignment back and collect the statistics.
  double intra_sum = 0.0;
  std::vector<double> volume_density;
  for (const VoltageVolume& vol : result.volumes) {
    for (const std::size_t m : vol.modules)
      fp_.modules()[m].voltage_index = vol.voltage_index;
    result.total_power_w += vol.power_w;
    volume_density.push_back(vol.density());
    // Within-volume density stddev at the assigned voltage.
    const double scale = levels[vol.voltage_index].power_scale;
    double mean = 0.0;
    for (const std::size_t m : vol.modules)
      mean += fp_.modules()[m].power_density() * scale;
    mean /= static_cast<double>(vol.modules.size());
    double var = 0.0;
    for (const std::size_t m : vol.modules) {
      const double d = fp_.modules()[m].power_density() * scale - mean;
      var += d * d;
    }
    intra_sum += std::sqrt(var / static_cast<double>(vol.modules.size()));
  }
  result.intra_density_stddev =
      intra_sum / static_cast<double>(result.volumes.size());
  const double vd_mean =
      std::accumulate(volume_density.begin(), volume_density.end(), 0.0) /
      static_cast<double>(volume_density.size());
  double vd_var = 0.0;
  for (const double d : volume_density) vd_var += (d - vd_mean) * (d - vd_mean);
  result.inter_density_stddev =
      std::sqrt(vd_var / static_cast<double>(volume_density.size()));
  return result;
}

}  // namespace tsc3d::power
