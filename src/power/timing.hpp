// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Block-level timing estimation (Sec. 6.1): "For any floorplan layout, we
// initially estimate the timing paths ... We estimate the net delays via
// the well-known Elmore delays (here with consideration of wires and
// TSVs), and the delays of modules are estimated as proposed in [27]."
//
// At block level each register-to-register stage is one driver module,
// one net (wires + possibly a TSV hop), and one sink module.  The critical
// delay is the worst stage over all nets; per-module timing slack follows
// from the stages the module participates in.  Module and net delays
// scale with the assigned voltage level's delay factor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/floorplan.hpp"

namespace tsc3d::power {

/// Electrical parameters of the 90 nm interconnect model.
struct TimingOptions {
  double r_wire_ohm_per_um = 0.10;   ///< unit wire resistance
  double c_wire_f_per_um = 0.20e-15; ///< unit wire capacitance
  double r_tsv_ohm = 0.05;           ///< resistance of one TSV
  double c_tsv_f = 35e-15;           ///< capacitance of one TSV
  double driver_r_ohm = 200.0;       ///< lumped driver output resistance
  double sink_c_f = 5e-15;           ///< lumped sink input capacitance
};

/// Timing report for one floorplan state.
struct TimingReport {
  double critical_delay_ns = 0.0;
  std::size_t critical_net = kInvalidIndex;
  std::vector<double> stage_delay_ns;  ///< per net
};

class ElmoreTiming {
 public:
  ElmoreTiming(const Floorplan3D& fp, TimingOptions options = {});

  /// Elmore delay of a net's interconnect only [ns]: driver resistance
  /// charging the distributed wire plus TSV hops for dies spanned.
  [[nodiscard]] double net_delay_ns(const Net& net) const;

  /// Full stage delay [ns]: driver-module delay + interconnect + worst
  /// sink-module delay, each module scaled by its voltage level.
  [[nodiscard]] double stage_delay_ns(const Net& net) const;

  /// Stage delay with module `m` hypothetically at voltage index `vi`
  /// (other modules keep their current assignment).
  [[nodiscard]] double stage_delay_ns(const Net& net, std::size_t m,
                                      std::size_t vi) const;

  /// Evaluate all stages and the critical delay.
  [[nodiscard]] TimingReport analyze() const;

  /// Incrementally maintained analyze(): per-net stage delays are cached
  /// and recomputed only for nets whose placement epoch
  /// (Floorplan3D::net_epoch, bumped when an incident module moves) or
  /// whose voltage epoch (note_voltages_changed) advanced; the critical
  /// delay is re-derived by scanning the per-net array in canonical net
  /// order.  Bitwise-equal to analyze() -- dirty nets run the identical
  /// stage_delay_ns arithmetic, clean nets return the identical cached
  /// double, and the max scan matches analyze()'s.  The returned
  /// reference stays valid until the next analyze_cached() call.
  [[nodiscard]] const TimingReport& analyze_cached();

  /// Invalidate every cached stage delay that depends on module voltage
  /// assignments.  Call after any pass that mutates
  /// Module::voltage_index (the voltage assigner).
  void note_voltages_changed() { ++voltage_epoch_; }

  // --- trial (speculative) evaluation -------------------------------------
  // Mirrors Floorplan3D's trial bracket: between begin_trial() and
  // commit_trial()/rollback_trial(), analyze_cached() journals each
  // per-net cache row it rewrites for PLACEMENT dirt (net-epoch
  // mismatch, first touch only), and rollback restores those rows
  // bitwise, so a rejected move leaves the stage-delay cache warm with
  // its pre-trial values.  Rows refreshed only because the voltage
  // epoch advanced are NOT journaled: their recompute reads untouched
  // positions and the persisted voltage assignment, so the value stays
  // valid after rollback (journaling them would re-stale every row on
  // each rejection after a voltage refresh).  The critical delay/net
  // are re-derived on every call and need no journal; voltage_epoch_
  // stays monotone (voltage assignment is not unwound on reject --
  // same semantics as the non-transactional loop).
  void begin_trial();
  void commit_trial();
  void rollback_trial();
  [[nodiscard]] bool in_trial() const { return trial_active_; }

  /// True if assigning voltage index `vi` to module `m` keeps every stage
  /// through `m` within the clock period.
  [[nodiscard]] bool voltage_feasible(std::size_t m, std::size_t vi,
                                      double clock_ns) const;

  /// Bitmask of feasible voltage indices for module `m` (bit i = level i).
  [[nodiscard]] unsigned feasible_voltages(std::size_t m,
                                           double clock_ns) const;

  /// Nets that have at least one pin on module `m`.
  [[nodiscard]] const std::vector<std::size_t>& nets_of_module(
      std::size_t m) const {
    return nets_of_module_.at(m);
  }

 private:
  [[nodiscard]] double module_delay_ns(std::size_t m, std::size_t vi) const;
  [[nodiscard]] double wire_length_um(const Net& net) const;
  [[nodiscard]] std::size_t dies_spanned(const Net& net) const;
  [[nodiscard]] double net_delay_ns(const Net& net, std::size_t span) const;
  [[nodiscard]] double net_delay_ns(const Net& net, std::size_t span,
                                    double len_um) const;
  /// stage_delay_ns at the nets' current voltages with the die span and
  /// wire length precomputed; bitwise-equal to stage_delay_ns(net) given
  /// the true span and length (see analyze_cached).
  [[nodiscard]] double stage_delay_ns_with_span(const Net& net,
                                                std::size_t span,
                                                double len_um) const;

  const Floorplan3D& fp_;
  TimingOptions opt_;
  std::vector<std::vector<std::size_t>> nets_of_module_;

  // --- incremental analyze() cache (see analyze_cached) ------------------
  TimingReport cached_report_;
  std::vector<std::uint64_t> stage_net_epoch_;      ///< 0 = never computed
  std::vector<std::uint64_t> stage_voltage_epoch_;
  std::vector<std::size_t> stage_span_;             ///< cached dies_spanned
  std::vector<std::uint64_t> stage_die_epoch_;      ///< 0 = never computed
  std::uint64_t voltage_epoch_ = 1;

  // --- trial journal (see "trial (speculative) evaluation") --------------
  struct TrialStage {
    std::size_t n = 0;
    double delay = 0.0;
    std::uint64_t net_epoch = 0;
    std::uint64_t volt_epoch = 0;
    std::size_t span = 0;
    std::uint64_t die_epoch = 0;
  };
  bool trial_active_ = false;
  std::uint64_t trial_id_ = 0;
  std::vector<std::uint64_t> trial_mark_;
  std::vector<TrialStage> trial_journal_;
};

}  // namespace tsc3d::power
