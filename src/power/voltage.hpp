// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Floorplanning-centric voltage assignment (Sec. 6.1).  Voltage volumes
// are the 3D generalization of voltage domains: contiguous groups of
// modules -- possibly spanning both dies -- that share one supply.
//
// Construction follows the paper: starting from individual modules,
// volumes grow by breadth-first search across spatially adjacent modules
// while the running intersection of feasible voltages (from timing slack)
// stays non-empty.  Selection then differs by setup:
//   * power-aware (PA):  minimize overall power and the number of volumes
//     (each volume takes its lowest feasible voltage);
//   * TSC-aware:        minimize the number of volumes and the standard
//     deviation of power densities within and across volumes, yielding
//     locally uniform power and small cross-volume gradients -- the
//     decorrelation lever identified in Sec. 3.
#pragma once

#include <cstddef>
#include <vector>

#include "core/floorplan.hpp"
#include "power/timing.hpp"

namespace tsc3d::power {

enum class VoltageObjective {
  power_aware,  ///< PA setup of Sec. 7
  tsc_aware,    ///< TSC setup of Sec. 7
};

struct VoltageOptions {
  VoltageObjective objective = VoltageObjective::power_aware;
  /// Modules closer than this (edge-to-edge, same die) count as adjacent.
  double adjacency_tolerance_um = 100.0;
  /// TSC setup: a module may join a volume if its power density deviates
  /// from the volume's mean density by at most this relative band.
  double density_band = 0.75;
};

/// One selected voltage volume.
struct VoltageVolume {
  std::vector<std::size_t> modules;
  std::size_t voltage_index = 1;
  bool spans_dies = false;
  double power_w = 0.0;      ///< at the assigned voltage
  double area_um2 = 0.0;
  [[nodiscard]] double density() const {
    return area_um2 > 0.0 ? power_w / area_um2 : 0.0;
  }
};

/// Result of one assignment pass.
struct VoltageAssignment {
  std::vector<VoltageVolume> volumes;
  double total_power_w = 0.0;
  /// Mean of per-volume stddevs of module power density (intra-volume
  /// uniformity; lower = smoother local power).
  double intra_density_stddev = 0.0;
  /// Stddev of volume mean densities (cross-volume gradients).
  double inter_density_stddev = 0.0;
  [[nodiscard]] std::size_t num_volumes() const { return volumes.size(); }
};

class VoltageAssigner {
 public:
  VoltageAssigner(Floorplan3D& fp, const ElmoreTiming& timing,
                  VoltageOptions options = {});

  /// Construct volumes, pick voltages, and write the assignment into the
  /// floorplan's modules.
  VoltageAssignment assign();

  /// Spatial adjacency used for volume growth; exposed for tests.
  [[nodiscard]] bool adjacent(std::size_t a, std::size_t b) const;

 private:
  [[nodiscard]] std::size_t pick_voltage(unsigned mask,
                                         double volume_area,
                                         double volume_power_nominal,
                                         double target_density) const;

  Floorplan3D& fp_;
  const ElmoreTiming& timing_;
  VoltageOptions opt_;
};

}  // namespace tsc3d::power
