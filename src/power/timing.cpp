#include "power/timing.hpp"

#include <algorithm>
#include <set>

namespace tsc3d::power {

namespace {
constexpr double kSecToNs = 1e9;
}

ElmoreTiming::ElmoreTiming(const Floorplan3D& fp, TimingOptions options)
    : fp_(fp), opt_(options) {
  nets_of_module_.assign(fp_.modules().size(), {});
  for (std::size_t n = 0; n < fp_.nets().size(); ++n) {
    for (const NetPin& pin : fp_.nets()[n].pins) {
      if (!pin.is_terminal()) nets_of_module_[pin.module].push_back(n);
    }
  }
}

double ElmoreTiming::wire_length_um(const Net& net) const {
  // HPWL of the net's projected pin positions: the standard block-level
  // length estimate.
  double x0 = 0.0, x1 = 0.0, y0 = 0.0, y1 = 0.0;
  bool first = true;
  for (const NetPin& pin : net.pins) {
    const Point p = pin.is_terminal()
                        ? fp_.terminals()[pin.terminal].position
                        : fp_.modules()[pin.module].shape.center();
    if (first) {
      x0 = x1 = p.x;
      y0 = y1 = p.y;
      first = false;
    } else {
      x0 = std::min(x0, p.x);
      x1 = std::max(x1, p.x);
      y0 = std::min(y0, p.y);
      y1 = std::max(y1, p.y);
    }
  }
  return (x1 - x0) + (y1 - y0);
}

std::size_t ElmoreTiming::dies_spanned(const Net& net) const {
  std::set<std::size_t> dies;
  for (const NetPin& pin : net.pins) {
    dies.insert(pin.is_terminal() ? fp_.terminals()[pin.terminal].die
                                  : fp_.modules()[pin.module].die);
  }
  return dies.size();
}

double ElmoreTiming::net_delay_ns(const Net& net) const {
  const double len = wire_length_um(net);
  const double r_wire = opt_.r_wire_ohm_per_um * len;
  const double c_wire = opt_.c_wire_f_per_um * len;
  const auto sinks = static_cast<double>(
      net.pins.size() > 1 ? net.pins.size() - 1 : 1);
  const double c_sinks = opt_.sink_c_f * sinks;

  // TSV hops: a net spanning k dies needs k-1 vertical hops in series.
  const std::size_t span = dies_spanned(net);
  const auto hops = static_cast<double>(span > 1 ? span - 1 : 0);
  const double r_tsv = opt_.r_tsv_ohm * hops;
  const double c_tsv = opt_.c_tsv_f * hops;

  // Elmore delay of driver resistance + distributed RC line + lumped TSV
  // and sink loads: R_d*(C_w + C_tsv + C_s) + R_w*(C_w/2 + C_tsv + C_s)
  // + R_tsv*(C_tsv/2 + C_s).
  const double d = opt_.driver_r_ohm * (c_wire + c_tsv + c_sinks) +
                   r_wire * (c_wire / 2.0 + c_tsv + c_sinks) +
                   r_tsv * (c_tsv / 2.0 + c_sinks);
  return d * kSecToNs;
}

double ElmoreTiming::module_delay_ns(std::size_t m, std::size_t vi) const {
  const Module& mod = fp_.modules()[m];
  const auto& levels = fp_.tech().voltages;
  const std::size_t v = std::min(vi, levels.size() - 1);
  return mod.intrinsic_delay_ns * levels[v].delay_scale;
}

double ElmoreTiming::stage_delay_ns(const Net& net) const {
  return stage_delay_ns(net, kInvalidIndex, 0);
}

double ElmoreTiming::stage_delay_ns(const Net& net, std::size_t m,
                                    std::size_t vi) const {
  // Driver: the first module pin of the net (terminals never drive
  // module-internal logic in this model).
  std::size_t driver = kInvalidIndex;
  double worst_sink = 0.0;
  for (const NetPin& pin : net.pins) {
    if (pin.is_terminal()) continue;
    const std::size_t mod = pin.module;
    const std::size_t v =
        mod == m ? vi : fp_.modules()[mod].voltage_index;
    const double d = module_delay_ns(mod, v);
    if (driver == kInvalidIndex) {
      driver = mod;
      worst_sink = 0.0;  // driver delay handled below
      continue;
    }
    worst_sink = std::max(worst_sink, d);
  }
  double total = net_delay_ns(net) + worst_sink;
  if (driver != kInvalidIndex) {
    const std::size_t v =
        driver == m ? vi : fp_.modules()[driver].voltage_index;
    total += module_delay_ns(driver, v);
  }
  return total;
}

TimingReport ElmoreTiming::analyze() const {
  TimingReport report;
  report.stage_delay_ns.reserve(fp_.nets().size());
  for (std::size_t n = 0; n < fp_.nets().size(); ++n) {
    const double d = stage_delay_ns(fp_.nets()[n]);
    report.stage_delay_ns.push_back(d);
    if (d > report.critical_delay_ns) {
      report.critical_delay_ns = d;
      report.critical_net = n;
    }
  }
  return report;
}

bool ElmoreTiming::voltage_feasible(std::size_t m, std::size_t vi,
                                    double clock_ns) const {
  for (const std::size_t n : nets_of_module_[m]) {
    if (stage_delay_ns(fp_.nets()[n], m, vi) > clock_ns) return false;
  }
  return true;
}

unsigned ElmoreTiming::feasible_voltages(std::size_t m,
                                         double clock_ns) const {
  unsigned mask = 0;
  for (std::size_t vi = 0; vi < fp_.tech().voltages.size(); ++vi) {
    if (voltage_feasible(m, vi, clock_ns)) mask |= 1u << vi;
  }
  return mask;
}

}  // namespace tsc3d::power
