#include "power/timing.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace tsc3d::power {

namespace {
constexpr double kSecToNs = 1e9;
}

ElmoreTiming::ElmoreTiming(const Floorplan3D& fp, TimingOptions options)
    : fp_(fp), opt_(options) {
  nets_of_module_.assign(fp_.modules().size(), {});
  for (std::size_t n = 0; n < fp_.nets().size(); ++n) {
    for (const NetPin& pin : fp_.nets()[n].pins) {
      if (!pin.is_terminal()) nets_of_module_[pin.module].push_back(n);
    }
  }
}

double ElmoreTiming::wire_length_um(const Net& net) const {
  // HPWL of the net's projected pin positions: the standard block-level
  // length estimate.  Delegates to the floorplan's canonical box scan so
  // cached lengths (Floorplan3D::net_length_cached) are bitwise
  // interchangeable with a fresh recompute.
  return fp_.net_box_len(net);
}

std::size_t ElmoreTiming::dies_spanned(const Net& net) const {
  std::set<std::size_t> dies;
  for (const NetPin& pin : net.pins) {
    dies.insert(pin.is_terminal() ? fp_.terminals()[pin.terminal].die
                                  : fp_.modules()[pin.module].die);
  }
  return dies.size();
}

double ElmoreTiming::net_delay_ns(const Net& net) const {
  return net_delay_ns(net, dies_spanned(net));
}

double ElmoreTiming::net_delay_ns(const Net& net, std::size_t span) const {
  return net_delay_ns(net, span, wire_length_um(net));
}

double ElmoreTiming::net_delay_ns(const Net& net, std::size_t span,
                                  double len) const {
  const double r_wire = opt_.r_wire_ohm_per_um * len;
  const double c_wire = opt_.c_wire_f_per_um * len;
  const auto sinks = static_cast<double>(
      net.pins.size() > 1 ? net.pins.size() - 1 : 1);
  const double c_sinks = opt_.sink_c_f * sinks;

  // TSV hops: a net spanning k dies needs k-1 vertical hops in series.
  const auto hops = static_cast<double>(span > 1 ? span - 1 : 0);
  const double r_tsv = opt_.r_tsv_ohm * hops;
  const double c_tsv = opt_.c_tsv_f * hops;

  // Elmore delay of driver resistance + distributed RC line + lumped TSV
  // and sink loads: R_d*(C_w + C_tsv + C_s) + R_w*(C_w/2 + C_tsv + C_s)
  // + R_tsv*(C_tsv/2 + C_s).
  const double d = opt_.driver_r_ohm * (c_wire + c_tsv + c_sinks) +
                   r_wire * (c_wire / 2.0 + c_tsv + c_sinks) +
                   r_tsv * (c_tsv / 2.0 + c_sinks);
  return d * kSecToNs;
}

double ElmoreTiming::module_delay_ns(std::size_t m, std::size_t vi) const {
  const Module& mod = fp_.modules()[m];
  const auto& levels = fp_.tech().voltages;
  const std::size_t v = std::min(vi, levels.size() - 1);
  return mod.intrinsic_delay_ns * levels[v].delay_scale;
}

double ElmoreTiming::stage_delay_ns(const Net& net) const {
  return stage_delay_ns(net, kInvalidIndex, 0);
}

double ElmoreTiming::stage_delay_ns_with_span(const Net& net,
                                              std::size_t span,
                                              double len) const {
  // Body of stage_delay_ns(net, kInvalidIndex, 0) with the die span and
  // wire length precomputed: the span is the only set-building step of
  // the stage arithmetic (served from a cache valid while no incident
  // module changes die, net_die_epoch) and the length is the box scan
  // hpwl_cached() already ran for the same dirty net.
  std::size_t driver = kInvalidIndex;
  double worst_sink = 0.0;
  for (const NetPin& pin : net.pins) {
    if (pin.is_terminal()) continue;
    const std::size_t mod = pin.module;
    const double d =
        module_delay_ns(mod, fp_.modules()[mod].voltage_index);
    if (driver == kInvalidIndex) {
      driver = mod;
      worst_sink = 0.0;  // driver delay handled below
      continue;
    }
    worst_sink = std::max(worst_sink, d);
  }
  double total = net_delay_ns(net, span, len) + worst_sink;
  if (driver != kInvalidIndex) {
    total += module_delay_ns(driver, fp_.modules()[driver].voltage_index);
  }
  return total;
}

double ElmoreTiming::stage_delay_ns(const Net& net, std::size_t m,
                                    std::size_t vi) const {
  // Driver: the first module pin of the net (terminals never drive
  // module-internal logic in this model).
  std::size_t driver = kInvalidIndex;
  double worst_sink = 0.0;
  for (const NetPin& pin : net.pins) {
    if (pin.is_terminal()) continue;
    const std::size_t mod = pin.module;
    const std::size_t v =
        mod == m ? vi : fp_.modules()[mod].voltage_index;
    const double d = module_delay_ns(mod, v);
    if (driver == kInvalidIndex) {
      driver = mod;
      worst_sink = 0.0;  // driver delay handled below
      continue;
    }
    worst_sink = std::max(worst_sink, d);
  }
  double total = net_delay_ns(net) + worst_sink;
  if (driver != kInvalidIndex) {
    const std::size_t v =
        driver == m ? vi : fp_.modules()[driver].voltage_index;
    total += module_delay_ns(driver, v);
  }
  return total;
}

TimingReport ElmoreTiming::analyze() const {
  TimingReport report;
  report.stage_delay_ns.reserve(fp_.nets().size());
  for (std::size_t n = 0; n < fp_.nets().size(); ++n) {
    const double d = stage_delay_ns(fp_.nets()[n]);
    report.stage_delay_ns.push_back(d);
    if (d > report.critical_delay_ns) {
      report.critical_delay_ns = d;
      report.critical_net = n;
    }
  }
  return report;
}

const TimingReport& ElmoreTiming::analyze_cached() {
  const std::size_t num_nets = fp_.nets().size();
  if (cached_report_.stage_delay_ns.size() != num_nets) {
    cached_report_.stage_delay_ns.assign(num_nets, 0.0);
    stage_net_epoch_.assign(num_nets, 0);
    stage_voltage_epoch_.assign(num_nets, 0);
    stage_span_.assign(num_nets, 0);
    stage_die_epoch_.assign(num_nets, 0);
  }
  const std::vector<std::uint64_t>& epochs = fp_.net_epochs();
  const std::vector<std::uint64_t>& die_epochs = fp_.net_die_epochs();
  // Single walk in canonical net order: refresh dirty entries, then fold
  // each (now final) value into the same strict-greater max scan
  // analyze() runs -- first maximum in net order wins, bitwise.
  cached_report_.critical_delay_ns = 0.0;
  cached_report_.critical_net = kInvalidIndex;
  for (std::size_t n = 0; n < num_nets; ++n) {
    const std::uint64_t epoch = epochs[n];
    if (stage_net_epoch_[n] != epoch ||
        stage_voltage_epoch_[n] != voltage_epoch_) {
      // Journal only rows whose NET epoch moved -- placement dirt the
      // rollback must undo.  A row that is merely catching up with a
      // voltage-epoch bump recomputes from untouched positions and the
      // persisted voltage assignment (which rollback deliberately keeps,
      // same as the classic reject), so the refreshed value is valid
      // across the trial boundary.  Journaling it would re-stale ALL
      // rows on every rollback and turn each rejected move after a
      // voltage refresh into a full O(nets) recompute.
      if (trial_active_ && stage_net_epoch_[n] != epoch &&
          trial_mark_[n] != trial_id_) {
        trial_mark_[n] = trial_id_;
        trial_journal_.push_back(TrialStage{
            n, cached_report_.stage_delay_ns[n], stage_net_epoch_[n],
            stage_voltage_epoch_[n], stage_span_[n], stage_die_epoch_[n]});
      }
      // The die span only changes when an incident module changes die
      // (net_die_epoch); intra-die moves reuse the cached integer and
      // skip dies_spanned()'s set building -- the dominant cost of a
      // stage recompute.
      if (stage_die_epoch_[n] != die_epochs[n]) {
        stage_span_[n] = dies_spanned(fp_.nets()[n]);
        stage_die_epoch_[n] = die_epochs[n];
      }
      // Reuse the box scan hpwl_cached() ran for this dirty net when the
      // evaluation pipeline computed the HPWL term first; a cache miss
      // recomputes the identical bits.
      double len = 0.0;
      if (!fp_.net_length_cached(n, len))
        len = wire_length_um(fp_.nets()[n]);
      cached_report_.stage_delay_ns[n] =
          stage_delay_ns_with_span(fp_.nets()[n], stage_span_[n], len);
      stage_net_epoch_[n] = epoch;
      stage_voltage_epoch_[n] = voltage_epoch_;
    }
    const double d = cached_report_.stage_delay_ns[n];
    if (d > cached_report_.critical_delay_ns) {
      cached_report_.critical_delay_ns = d;
      cached_report_.critical_net = n;
    }
  }
  return cached_report_;
}

void ElmoreTiming::begin_trial() {
  if (trial_active_)
    throw std::logic_error("ElmoreTiming::begin_trial: trial already open");
  if (trial_mark_.size() != fp_.nets().size())
    trial_mark_.assign(fp_.nets().size(), 0);
  ++trial_id_;
  trial_journal_.clear();
  trial_active_ = true;
}

void ElmoreTiming::commit_trial() {
  if (!trial_active_)
    throw std::logic_error("ElmoreTiming::commit_trial: no trial open");
  trial_active_ = false;
  trial_journal_.clear();
}

void ElmoreTiming::rollback_trial() {
  if (!trial_active_)
    throw std::logic_error("ElmoreTiming::rollback_trial: no trial open");
  trial_active_ = false;
  for (const TrialStage& js : trial_journal_) {
    cached_report_.stage_delay_ns[js.n] = js.delay;
    stage_net_epoch_[js.n] = js.net_epoch;
    stage_voltage_epoch_[js.n] = js.volt_epoch;
    stage_span_[js.n] = js.span;
    stage_die_epoch_[js.n] = js.die_epoch;
  }
  trial_journal_.clear();
}

bool ElmoreTiming::voltage_feasible(std::size_t m, std::size_t vi,
                                    double clock_ns) const {
  for (const std::size_t n : nets_of_module_[m]) {
    if (stage_delay_ns(fp_.nets()[n], m, vi) > clock_ns) return false;
  }
  return true;
}

unsigned ElmoreTiming::feasible_voltages(std::size_t m,
                                         double clock_ns) const {
  unsigned mask = 0;
  for (std::size_t vi = 0; vi < fp_.tech().voltages.size(); ++vi) {
    if (voltage_feasible(m, vi, clock_ns)) mask |= 1u << vi;
  }
  return mask;
}

}  // namespace tsc3d::power
