#include "leakage/mutual_information.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsc3d::leakage {

namespace {

/// Map each value onto a bin index in [0, bins).  Returns false if the
/// sample is constant (no spread to bin).
bool bin_values(const std::vector<double>& v, std::size_t bins,
                Binning binning, std::vector<std::size_t>& out) {
  const auto [mn_it, mx_it] = std::minmax_element(v.begin(), v.end());
  const double mn = *mn_it, mx = *mx_it;
  if (mx <= mn) return false;
  out.resize(v.size());
  if (binning == Binning::equal_width) {
    const double scale = static_cast<double>(bins) / (mx - mn);
    for (std::size_t i = 0; i < v.size(); ++i) {
      auto b = static_cast<std::size_t>((v[i] - mn) * scale);
      out[i] = std::min(b, bins - 1);
    }
    return true;
  }
  // Equal-frequency: bin by rank.  Ties share the rank of their first
  // occurrence so that equal values always land in the same bin (this is
  // what makes the estimate monotone-transform invariant).
  std::vector<std::size_t> order(v.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<std::size_t> rank(v.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    if (pos > 0 && v[order[pos]] == v[order[pos - 1]])
      rank[order[pos]] = rank[order[pos - 1]];
    else
      rank[order[pos]] = pos;
  }
  const double scale =
      static_cast<double>(bins) / static_cast<double>(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    auto b = static_cast<std::size_t>(static_cast<double>(rank[i]) * scale);
    out[i] = std::min(b, bins - 1);
  }
  return true;
}

double plogp_sum_bits(const std::vector<double>& counts, double m) {
  double h = 0.0;
  for (double c : counts) {
    if (c > 0.0) {
      const double p = c / m;
      h -= p * std::log2(p);
    }
  }
  return h;
}

}  // namespace

double shannon_entropy(const std::vector<double>& a, std::size_t bins,
                       bool miller_madow) {
  if (bins == 0) throw std::invalid_argument("shannon_entropy: bins == 0");
  if (a.empty()) return 0.0;
  std::vector<std::size_t> idx;
  if (!bin_values(a, bins, Binning::equal_width, idx)) return 0.0;
  std::vector<double> counts(bins, 0.0);
  for (auto i : idx) counts[i] += 1.0;
  const auto m = static_cast<double>(a.size());
  double h = plogp_sum_bits(counts, m);
  if (miller_madow) {
    const auto occupied = static_cast<double>(
        std::count_if(counts.begin(), counts.end(),
                      [](double c) { return c > 0.0; }));
    h += (occupied - 1.0) / (2.0 * m * std::log(2.0));
  }
  return h;
}

double mutual_information(const std::vector<double>& a,
                          const std::vector<double>& b,
                          const MutualInformationOptions& opt) {
  if (a.size() != b.size())
    throw std::invalid_argument("mutual_information: size mismatch");
  if (opt.bins_x == 0 || opt.bins_y == 0)
    throw std::invalid_argument("mutual_information: zero bins");
  if (a.size() < 2) return 0.0;

  std::vector<std::size_t> ia, ib;
  if (!bin_values(a, opt.bins_x, opt.binning, ia) ||
      !bin_values(b, opt.bins_y, opt.binning, ib))
    return 0.0;  // a constant marginal carries no information

  const std::size_t kx = opt.bins_x, ky = opt.bins_y;
  std::vector<double> joint(kx * ky, 0.0), ma(kx, 0.0), mb(ky, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    joint[ib[i] * kx + ia[i]] += 1.0;
    ma[ia[i]] += 1.0;
    mb[ib[i]] += 1.0;
  }
  const auto m = static_cast<double>(a.size());
  // I(A;B) = H(A) + H(B) - H(A,B)
  double mi = plogp_sum_bits(ma, m) + plogp_sum_bits(mb, m) -
              plogp_sum_bits(joint, m);
  if (opt.miller_madow) {
    const auto occ = [](const std::vector<double>& c) {
      return static_cast<double>(std::count_if(
          c.begin(), c.end(), [](double v) { return v > 0.0; }));
    };
    // Miller-Madow: H_hat += (K-1)/(2m); applied to each entropy term.
    const double corr =
        ((occ(joint) - 1.0) - (occ(ma) - 1.0) - (occ(mb) - 1.0)) /
        (2.0 * m * std::log(2.0));
    mi += corr;
  }
  return std::max(mi, 0.0);
}

double mutual_information(const GridD& a, const GridD& b,
                          const MutualInformationOptions& opt) {
  if (a.nx() != b.nx() || a.ny() != b.ny())
    throw std::invalid_argument("mutual_information: grid dimension mismatch");
  return mutual_information(a.data(), b.data(), opt);
}

}  // namespace tsc3d::leakage
