#include "leakage/activity.hpp"

#include <algorithm>
#include <stdexcept>

namespace tsc3d::leakage {

std::vector<double> ActivityModel::sample(const Floorplan3D& fp,
                                          Rng& rng) const {
  std::vector<double> power(fp.modules().size(), 0.0);
  for (std::size_t i = 0; i < fp.modules().size(); ++i) {
    const double nominal = fp.effective_power(i);
    power[i] = std::max(0.0, rng.gaussian(nominal, sigma_fraction * nominal));
  }
  return power;
}

StabilitySampling run_stability_sampling(const Floorplan3D& fp,
                                         thermal::ThermalEngine& engine,
                                         std::size_t samples, Rng& rng,
                                         const ActivityModel& model) {
  if (samples < 2)
    throw std::invalid_argument(
        "run_stability_sampling: need at least 2 samples");
  const std::size_t nx = engine.nx();
  const std::size_t ny = engine.ny();
  const std::size_t dies = fp.tech().num_dies;

  std::vector<StabilityAccumulator> acc(dies, StabilityAccumulator(nx, ny));
  std::vector<double> corr_sum(dies, 0.0);
  const GridD tsv = fp.tsv_density_map(nx, ny);

  for (std::size_t s = 0; s < samples; ++s) {
    const std::vector<double> activity = model.sample(fp, rng);
    std::vector<GridD> power;
    power.reserve(dies);
    for (std::size_t d = 0; d < dies; ++d)
      power.push_back(fp.power_map(d, nx, ny, &activity));
    const thermal::ThermalResult res = engine.solve_steady(power, tsv);
    for (std::size_t d = 0; d < dies; ++d) {
      acc[d].add(power[d], res.die_temperature[d]);
      corr_sum[d] += pearson(power[d], res.die_temperature[d]);
    }
  }

  StabilitySampling out;
  out.samples = samples;
  for (std::size_t d = 0; d < dies; ++d) {
    out.stability.push_back(acc[d].stability());
    out.mean_abs_stability.push_back(acc[d].mean_abs_stability());
    out.mean_correlation.push_back(corr_sum[d] /
                                   static_cast<double>(samples));
  }
  return out;
}

StabilitySampling run_stability_sampling(const Floorplan3D& fp,
                                         const thermal::GridSolver& solver,
                                         std::size_t samples, Rng& rng,
                                         const ActivityModel& model) {
  return run_stability_sampling(fp, solver.engine(), samples, rng, model);
}

std::vector<double> nominal_correlations(
    const Floorplan3D& fp, const std::vector<GridD>& die_temperature) {
  std::vector<double> r;
  r.reserve(die_temperature.size());
  for (std::size_t d = 0; d < die_temperature.size(); ++d) {
    const GridD power =
        fp.power_map(d, die_temperature[d].nx(), die_temperature[d].ny());
    r.push_back(pearson(power, die_temperature[d]));
  }
  return r;
}

}  // namespace tsc3d::leakage
