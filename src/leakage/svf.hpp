// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Side-channel vulnerability factor (SVF), after Demme et al. [23].  The
// paper adopts the Pearson correlation of power and thermal maps (Eq. 1)
// "the underlying measure for the side-channel vulnerability factor",
// and argues the two are comparably meaningful under its attacker model.
// We implement the full SVF as well so that claim can be checked
// experimentally (bench/attack_success, tests/test_svf.cpp).
//
// SVF is computed from two execution traces observed over the same m
// "phases" (here: activity samples):
//
//   * the oracle trace  -- ground-truth victim state per phase (here the
//     per-module power vector, which is what the attacker wants);
//   * the side trace    -- attacker-visible observation per phase (here
//     the thermal map, or the sensor readings derived from it).
//
// For each trace a pairwise phase-similarity vector is built over all
// (i, j), i < j, and SVF is the Pearson correlation between the two
// similarity vectors.  SVF in [~0, 1]: 1 means phase structure leaks
// perfectly through the side channel, 0 means no exploitable structure.
#pragma once

#include <cstddef>
#include <vector>

#include "core/grid.hpp"

namespace tsc3d::leakage {

/// Similarity measure between two phases of a trace.
enum class PhaseSimilarity {
  negative_euclidean,  ///< -||a - b||_2 (Demme et al.'s distance-based form)
  pearson,             ///< Pearson correlation of the two phase vectors
  cosine,              ///< cosine similarity
};

struct SvfOptions {
  PhaseSimilarity similarity = PhaseSimilarity::negative_euclidean;
};

/// Accumulates phases of the oracle and side traces, then computes the
/// side-channel vulnerability factor.  Phase vectors may differ in length
/// between oracle and side traces (e.g. #modules vs #thermal bins), but
/// each trace's own phases must be consistently sized.
class SvfAccumulator {
 public:
  explicit SvfAccumulator(SvfOptions options = {});

  /// Add one phase: the ground-truth vector and the observed vector.
  void add_phase(const std::vector<double>& oracle,
                 const std::vector<double>& side);

  /// Convenience overload: thermal-map observation.
  void add_phase(const std::vector<double>& oracle, const GridD& side);

  [[nodiscard]] std::size_t phases() const { return oracle_.size(); }

  /// Side-channel vulnerability factor over the phases added so far.
  /// Requires at least 3 phases (fewer yield a degenerate similarity
  /// vector); throws std::logic_error otherwise.
  [[nodiscard]] double svf() const;

  /// The two pairwise similarity vectors (oracle first), mainly for
  /// inspection and tests.  Ordered (0,1), (0,2), ..., (m-2,m-1).
  [[nodiscard]] std::pair<std::vector<double>, std::vector<double>>
  similarity_vectors() const;

 private:
  SvfOptions options_;
  std::vector<std::vector<double>> oracle_;
  std::vector<std::vector<double>> side_;
};

/// Similarity between two equally sized phase vectors under `measure`.
[[nodiscard]] double phase_similarity(const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      PhaseSimilarity measure);

}  // namespace tsc3d::leakage
