// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Histogram-based mutual information between power and thermal maps.
//
// Pearson correlation (Eq. 1) only captures the LINEAR component of the
// power-temperature relationship.  The paper's whole mitigation idea is
// to break that linearity via heterogeneous materials (TSVs) -- so a
// natural follow-up question is how much NONLINEAR leakage remains after
// decorrelation.  Mutual information answers that: it is invariant under
// monotone reparameterization and upper-bounds what any attacker model
// can extract per observation.  MI(P;T) = 0 iff power and temperature are
// statistically independent across bins.
//
// We estimate MI with an equal-width 2D histogram plus the
// Miller-Madow bias correction, which is adequate for the map sizes used
// here (64x64 = 4096 samples, default 16x16 histogram cells).
#pragma once

#include <cstddef>
#include <vector>

#include "core/grid.hpp"

namespace tsc3d::leakage {

/// How values are mapped onto histogram cells.
enum class Binning {
  equal_width,      ///< uniform cells over [min, max]
  equal_frequency,  ///< rank-based quantile cells; invariant under any
                    ///< monotone transform of either variable
};

struct MutualInformationOptions {
  std::size_t bins_x = 16;   ///< histogram bins for the first variable
  std::size_t bins_y = 16;   ///< histogram bins for the second variable
  bool miller_madow = true;  ///< apply (K-1)/(2m ln 2) bias correction
  Binning binning = Binning::equal_width;
};

/// Mutual information I(A;B) in bits between two equally sized value
/// grids (e.g. a power map and a thermal map of the same die).
/// Degenerate inputs (constant grids) yield 0.
[[nodiscard]] double mutual_information(const GridD& a, const GridD& b,
                                        const MutualInformationOptions& opt = {});

/// Mutual information between two raw samples of equal length.
[[nodiscard]] double mutual_information(const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        const MutualInformationOptions& opt = {});

/// Shannon entropy H(A) in bits of one grid under equal-width binning
/// (same estimator as mutual_information, so H upper-bounds MI).
[[nodiscard]] double shannon_entropy(const std::vector<double>& a,
                                     std::size_t bins = 16,
                                     bool miller_madow = true);

}  // namespace tsc3d::leakage
