// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Activity sampling and leakage analysis (Sec. 6.2): "To impersonate an
// attacker triggering various activity patterns by alternating the inputs
// at runtime, we model the power profiles of all modules as Gaussian
// distributions ... the module's nominal power value as mean and a
// standard deviation of 10%.  We stepwise evaluate all the steady-state
// temperatures ... and sample the correlation stability (Eq. 2) in 100
// runs over the whole 3D IC."
#pragma once

#include <cstddef>
#include <vector>

#include "core/floorplan.hpp"
#include "core/rng.hpp"
#include "leakage/pearson.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::leakage {

/// Gaussian per-module activity model.
struct ActivityModel {
  double sigma_fraction = 0.10;  ///< std dev as fraction of nominal power

  /// Draw one activity sample: absolute power per module [W], based on the
  /// module's voltage-scaled nominal power, truncated at zero.
  [[nodiscard]] std::vector<double> sample(const Floorplan3D& fp,
                                           Rng& rng) const;
};

/// Result of a stability-sampling campaign over one floorplan.
struct StabilitySampling {
  /// Per-die correlation-stability maps r_{d,x,y} (Eq. 2).
  std::vector<GridD> stability;
  /// Mean |r_{d,x,y}| per die -- the quantity the dummy-TSV loop monitors.
  std::vector<double> mean_abs_stability;
  /// Average per-sample steady-state correlation r_d (Eq. 1) per die.
  std::vector<double> mean_correlation;
  std::size_t samples = 0;
};

/// Run `samples` Gaussian activity samples through the detailed thermal
/// solver and accumulate the per-die stability maps.  This mirrors the
/// paper's 100-run HotSpot sweeps.  Successive samples are 10% power
/// perturbations of each other, so the engine's warm-started solves make
/// the campaign cheap.
[[nodiscard]] StabilitySampling run_stability_sampling(
    const Floorplan3D& fp, thermal::ThermalEngine& engine,
    std::size_t samples, Rng& rng, const ActivityModel& model = {});

/// Compatibility overload for GridSolver holders; runs on the solver's
/// underlying engine.
[[nodiscard]] StabilitySampling run_stability_sampling(
    const Floorplan3D& fp, const thermal::GridSolver& solver,
    std::size_t samples, Rng& rng, const ActivityModel& model = {});

/// Nominal (steady-state, average-activity) leakage summary of a
/// floorplan: per-die Eq. 1 correlation given precomputed thermal maps.
[[nodiscard]] std::vector<double> nominal_correlations(
    const Floorplan3D& fp, const std::vector<GridD>& die_temperature);

}  // namespace tsc3d::leakage
