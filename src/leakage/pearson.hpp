// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Thermal-leakage correlation metrics (Sec. 4.1 of the paper):
//
//  * pearson()               -- Eq. 1: steady-state correlation r_d between
//                               the power map and the thermal map of die d.
//                               This is the paper's key leakage metric and
//                               the basis of the side-channel vulnerability
//                               factor (SVF) [23].
//  * StabilityAccumulator    -- Eq. 2: per-bin correlation r_{d,x,y} over m
//                               activity samples ("correlation stability").
//                               Streaming implementation: samples are fed
//                               one at a time, nothing is retained but the
//                               sufficient statistics.
#pragma once

#include <cstddef>
#include <vector>

#include "core/grid.hpp"

namespace tsc3d::leakage {

/// Pearson correlation coefficient between two equally sized grids
/// (Eq. 1).  If either grid has zero variance the correlation is
/// undefined; we return 0 (no exploitable relationship).
[[nodiscard]] double pearson(const GridD& power, const GridD& thermal);

/// Pearson correlation between two raw vectors of equal length.
[[nodiscard]] double pearson(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Streaming computation of the per-bin correlation stability map
/// (Eq. 2).  Feed one (power map, thermal map) pair per activity sample;
/// stability() yields r_{d,x,y} for every bin.
class StabilityAccumulator {
 public:
  StabilityAccumulator(std::size_t nx, std::size_t ny);

  /// Add one activity sample's maps (both nx-by-ny).
  void add(const GridD& power, const GridD& thermal);

  [[nodiscard]] std::size_t samples() const { return m_; }

  /// Per-bin correlation over the samples added so far.  Bins whose power
  /// or temperature never varied yield 0 (no leakage observable there).
  [[nodiscard]] GridD stability() const;

  /// Mean of |r_{x,y}| over all bins: the scalar the dummy-TSV insertion
  /// loop monitors (Sec. 6.2).
  [[nodiscard]] double mean_abs_stability() const;

 private:
  std::size_t nx_, ny_, m_ = 0;
  std::vector<double> sum_p_, sum_t_, sum_pp_, sum_tt_, sum_pt_;
};

}  // namespace tsc3d::leakage
