// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Spatial entropy of power maps (Sec. 4.2, Eq. 3), derived from
// Claramunt's spatial form of diversity [24].  The power-map bins are
// classified into similar-value classes by nested-means partitioning
// ("the power values are first sorted, then recursively bi-partitioned
// with the current mean defining the cut, and the partitioning proceeds
// until the standard deviation within any class approaches zero"), and
// each class's Shannon term is weighted by a ratio of its average spatial
// inter-class and intra-class Manhattan distances.
//
// NOTE on the ratio orientation: the paper's Eq. 3 prints d_inter/d_intra,
// whereas Claramunt's original diversity uses d_intra/d_inter.  The two
// orientations measure opposite things: the literal printed ratio grows
// for COMPACT, SEGREGATED power classes (similar powers grouped, class
// groups far apart) -- exactly the configurations that produce large
// coherent thermal gradients and therefore high leakage (Sec. 3 finding
// (i)); Claramunt's orientation instead grows for spatially MIXED
// classes, which thermal diffusion smooths out, i.e. it anti-correlates
// with leakage.  The paper's empirical claim ("the lower the spatial
// entropy, the lower the power-temperature correlation", Sec. 4.2) holds
// for the literal ratio, which our ablation reproduces
// (bench/ablation_entropy_trend).  We therefore default to the literal
// Eq. 3 and keep Claramunt's orientation selectable for comparison.
#pragma once

#include <cstddef>
#include <vector>

#include "core/grid.hpp"

namespace tsc3d::leakage {

/// Which distance-ratio weighting to apply to each class's entropy term.
enum class EntropyRatio {
  claramunt,      ///< d_intra / d_inter (reference [24])
  paper_literal,  ///< d_inter / d_intra (as printed in Eq. 3; default)
};

struct SpatialEntropyOptions {
  EntropyRatio ratio = EntropyRatio::paper_literal;
  /// Nested-means recursion stops when a class's standard deviation drops
  /// below `std_tolerance` times the full map's standard deviation.
  double std_tolerance = 0.05;
  /// Hard cap on recursion depth (at most 2^depth classes).
  std::size_t max_depth = 8;
};

/// One similar-power class produced by nested-means partitioning.
struct PowerClass {
  double lo = 0.0;              ///< value range [lo, hi)
  double hi = 0.0;
  std::size_t members = 0;      ///< number of bins in the class
  double d_intra = 0.0;         ///< avg Manhattan distance within class [bins]
  double d_inter = 0.0;         ///< avg Manhattan distance to other classes
};

/// Full result of a spatial-entropy evaluation, for inspection/tests.
struct SpatialEntropyResult {
  double entropy = 0.0;                ///< S_d of Eq. 3
  double shannon = 0.0;                ///< unweighted Shannon entropy [bit]
  std::vector<PowerClass> classes;
};

/// Compute the spatial entropy of one die's power map.
[[nodiscard]] SpatialEntropyResult spatial_entropy_detailed(
    const GridD& power, const SpatialEntropyOptions& options = {});

/// Convenience wrapper returning only S_d.
[[nodiscard]] double spatial_entropy(const GridD& power,
                                     const SpatialEntropyOptions& options = {});

/// Nested-means class boundaries for a sorted copy of `values`: returns
/// cut points (ascending) delimiting the classes.  Exposed for testing.
[[nodiscard]] std::vector<double> nested_means_cuts(
    std::vector<double> values, double std_tolerance, std::size_t max_depth);

}  // namespace tsc3d::leakage
