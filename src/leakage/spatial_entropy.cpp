#include "leakage/spatial_entropy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tsc3d::leakage {

namespace {

/// Mean and standard deviation of values[lo, hi).
std::pair<double, double> mean_std(const std::vector<double>& values,
                                   std::size_t lo, std::size_t hi) {
  const auto n = static_cast<double>(hi - lo);
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += values[i];
  const double mean = sum / n;
  double var = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    const double d = values[i] - mean;
    var += d * d;
  }
  return {mean, std::sqrt(var / n)};
}

void nested_means_recurse(const std::vector<double>& sorted, std::size_t lo,
                          std::size_t hi, std::size_t depth,
                          double std_floor, std::size_t max_depth,
                          std::vector<double>& cuts) {
  if (hi - lo < 2 || depth >= max_depth) return;
  const auto [mean, sd] = mean_std(sorted, lo, hi);
  if (sd <= std_floor) return;
  // First element >= mean becomes the start of the upper class.
  const auto it = std::lower_bound(sorted.begin() + static_cast<long>(lo),
                                   sorted.begin() + static_cast<long>(hi),
                                   mean);
  const auto cut = static_cast<std::size_t>(it - sorted.begin());
  if (cut == lo || cut == hi) return;  // degenerate: all on one side
  cuts.push_back(sorted[cut]);
  nested_means_recurse(sorted, lo, cut, depth + 1, std_floor, max_depth, cuts);
  nested_means_recurse(sorted, cut, hi, depth + 1, std_floor, max_depth, cuts);
}

/// Ordered pair-distance sum  sum_x sum_x' cA[x] * cB[x'] * |x - x'|
/// over 1D coordinate histograms, in O(n) via prefix sums.
double ordered_pair_dist(const std::vector<double>& c_a,
                         const std::vector<double>& c_b) {
  const std::size_t n = c_a.size();
  // Prefix count and prefix weighted-coordinate sums of B.
  std::vector<double> cnt(n + 1, 0.0), wgt(n + 1, 0.0);
  for (std::size_t x = 0; x < n; ++x) {
    cnt[x + 1] = cnt[x] + c_b[x];
    wgt[x + 1] = wgt[x] + c_b[x] * static_cast<double>(x);
  }
  const double cnt_tot = cnt[n];
  const double wgt_tot = wgt[n];
  double total = 0.0;
  for (std::size_t x = 0; x < n; ++x) {
    if (c_a[x] == 0.0) continue;
    const auto xf = static_cast<double>(x);
    // sum over x' <= x of (x - x') plus sum over x' > x of (x' - x)
    const double below = xf * cnt[x + 1] - wgt[x + 1];
    const double above = (wgt_tot - wgt[x + 1]) - xf * (cnt_tot - cnt[x + 1]);
    total += c_a[x] * (below + above);
  }
  return total;
}

}  // namespace

std::vector<double> nested_means_cuts(std::vector<double> values,
                                      double std_tolerance,
                                      std::size_t max_depth) {
  if (values.empty()) return {};
  std::sort(values.begin(), values.end());
  const auto [mean_all, sd_all] = mean_std(values, 0, values.size());
  (void)mean_all;
  std::vector<double> cuts;
  nested_means_recurse(values, 0, values.size(), 0, std_tolerance * sd_all,
                       max_depth, cuts);
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

SpatialEntropyResult spatial_entropy_detailed(
    const GridD& power, const SpatialEntropyOptions& options) {
  SpatialEntropyResult result;
  const std::size_t nx = power.nx();
  const std::size_t ny = power.ny();
  const std::size_t n = nx * ny;

  const std::vector<double> cuts = nested_means_cuts(
      power.data(), options.std_tolerance, options.max_depth);
  const std::size_t num_classes = cuts.size() + 1;
  if (num_classes < 2) {
    // A single class: the map is (near-)uniform, zero entropy.
    PowerClass c;
    c.lo = power.min();
    c.hi = power.max();
    c.members = n;
    result.classes.push_back(c);
    return result;
  }

  // Assign each bin to its class and build per-class coordinate histograms.
  std::vector<std::vector<double>> hist_x(num_classes,
                                          std::vector<double>(nx, 0.0));
  std::vector<std::vector<double>> hist_y(num_classes,
                                          std::vector<double>(ny, 0.0));
  std::vector<std::size_t> members(num_classes, 0);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double v = power.at(ix, iy);
      const auto it = std::upper_bound(cuts.begin(), cuts.end(), v);
      const auto cls = static_cast<std::size_t>(it - cuts.begin());
      hist_x[cls][ix] += 1.0;
      hist_y[cls][iy] += 1.0;
      ++members[cls];
    }
  }

  // Histogram of all bins (for the inter-class distances).
  std::vector<double> all_x(nx, 0.0), all_y(ny, 0.0);
  for (std::size_t c = 0; c < num_classes; ++c) {
    for (std::size_t x = 0; x < nx; ++x) all_x[x] += hist_x[c][x];
    for (std::size_t y = 0; y < ny; ++y) all_y[y] += hist_y[c][y];
  }

  const auto n_total = static_cast<double>(n);
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (members[c] == 0) continue;
    PowerClass pc;
    pc.members = members[c];
    pc.lo = c == 0 ? power.min() : cuts[c - 1];
    pc.hi = c == num_classes - 1 ? power.max() : cuts[c];
    const auto n_c = static_cast<double>(members[c]);

    // Intra: ordered pair sums count every unordered pair twice.
    const double intra_sum = ordered_pair_dist(hist_x[c], hist_x[c]) +
                             ordered_pair_dist(hist_y[c], hist_y[c]);
    const double intra_pairs = n_c * (n_c - 1.0);
    pc.d_intra = intra_pairs > 0.0 ? intra_sum / intra_pairs : 0.0;

    // Inter: distances from class members to all non-members.
    const double to_all = ordered_pair_dist(hist_x[c], all_x) +
                          ordered_pair_dist(hist_y[c], all_y);
    const double inter_sum = to_all - intra_sum;
    const double inter_pairs = n_c * (n_total - n_c);
    pc.d_inter = inter_pairs > 0.0 ? inter_sum / inter_pairs : 0.0;

    const double p = n_c / n_total;
    const double shannon_term = -p * std::log2(p);
    result.shannon += shannon_term;

    double weight = 0.0;
    switch (options.ratio) {
      case EntropyRatio::claramunt:
        weight = pc.d_inter > 0.0 ? pc.d_intra / pc.d_inter : 0.0;
        break;
      case EntropyRatio::paper_literal: {
        // Guard singleton classes: treat a degenerate intra distance as one
        // bin pitch so the printed ratio stays finite.
        const double d_intra = pc.d_intra > 0.0 ? pc.d_intra : 1.0;
        weight = pc.d_inter / d_intra;
        break;
      }
    }
    result.entropy += weight * shannon_term;
    result.classes.push_back(pc);
  }
  return result;
}

double spatial_entropy(const GridD& power,
                       const SpatialEntropyOptions& options) {
  return spatial_entropy_detailed(power, options).entropy;
}

}  // namespace tsc3d::leakage
