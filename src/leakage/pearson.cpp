#include "leakage/pearson.hpp"

#include <cmath>
#include <stdexcept>

namespace tsc3d::leakage {

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("pearson: length mismatch");
  const auto n = static_cast<double>(a.size());
  if (a.empty()) return 0.0;
  double sum_a = 0.0, sum_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum_a += a[i];
    sum_b += b[i];
  }
  const double mean_a = sum_a / n;
  const double mean_b = sum_b / n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / (std::sqrt(var_a) * std::sqrt(var_b));
}

double pearson(const GridD& power, const GridD& thermal) {
  if (power.nx() != thermal.nx() || power.ny() != thermal.ny())
    throw std::invalid_argument("pearson: grid dimension mismatch");
  return pearson(power.data(), thermal.data());
}

StabilityAccumulator::StabilityAccumulator(std::size_t nx, std::size_t ny)
    : nx_(nx), ny_(ny) {
  const std::size_t n = nx * ny;
  if (n == 0)
    throw std::invalid_argument("StabilityAccumulator: empty grid");
  sum_p_.assign(n, 0.0);
  sum_t_.assign(n, 0.0);
  sum_pp_.assign(n, 0.0);
  sum_tt_.assign(n, 0.0);
  sum_pt_.assign(n, 0.0);
}

void StabilityAccumulator::add(const GridD& power, const GridD& thermal) {
  if (power.nx() != nx_ || power.ny() != ny_ || thermal.nx() != nx_ ||
      thermal.ny() != ny_)
    throw std::invalid_argument("StabilityAccumulator: grid mismatch");
  for (std::size_t i = 0; i < nx_ * ny_; ++i) {
    const double p = power[i];
    const double t = thermal[i];
    sum_p_[i] += p;
    sum_t_[i] += t;
    sum_pp_[i] += p * p;
    sum_tt_[i] += t * t;
    sum_pt_[i] += p * t;
  }
  ++m_;
}

GridD StabilityAccumulator::stability() const {
  GridD r(nx_, ny_, 0.0);
  if (m_ < 2) return r;
  const auto m = static_cast<double>(m_);
  for (std::size_t i = 0; i < nx_ * ny_; ++i) {
    const double cov = sum_pt_[i] - sum_p_[i] * sum_t_[i] / m;
    const double var_p = sum_pp_[i] - sum_p_[i] * sum_p_[i] / m;
    const double var_t = sum_tt_[i] - sum_t_[i] * sum_t_[i] / m;
    if (var_p <= 1e-30 || var_t <= 1e-30) continue;
    r[i] = cov / (std::sqrt(var_p) * std::sqrt(var_t));
  }
  return r;
}

double StabilityAccumulator::mean_abs_stability() const {
  const GridD r = stability();
  double sum = 0.0;
  for (const double v : r) sum += std::abs(v);
  return r.size() > 0 ? sum / static_cast<double>(r.size()) : 0.0;
}

}  // namespace tsc3d::leakage
