#include "leakage/svf.hpp"

#include <cmath>
#include <stdexcept>

#include "leakage/pearson.hpp"

namespace tsc3d::leakage {

namespace {

void check_same_size(const std::vector<double>& a,
                     const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("phase_similarity: vector size mismatch");
}

}  // namespace

double phase_similarity(const std::vector<double>& a,
                        const std::vector<double>& b,
                        PhaseSimilarity measure) {
  check_same_size(a, b);
  switch (measure) {
    case PhaseSimilarity::negative_euclidean: {
      double ss = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        ss += d * d;
      }
      return -std::sqrt(ss);
    }
    case PhaseSimilarity::pearson:
      return pearson(a, b);
    case PhaseSimilarity::cosine: {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
      }
      if (na == 0.0 || nb == 0.0) return 0.0;
      return dot / (std::sqrt(na) * std::sqrt(nb));
    }
  }
  throw std::logic_error("phase_similarity: unknown measure");
}

SvfAccumulator::SvfAccumulator(SvfOptions options) : options_(options) {}

void SvfAccumulator::add_phase(const std::vector<double>& oracle,
                               const std::vector<double>& side) {
  if (!oracle_.empty()) {
    if (oracle.size() != oracle_.front().size())
      throw std::invalid_argument("SvfAccumulator: oracle phase size changed");
    if (side.size() != side_.front().size())
      throw std::invalid_argument("SvfAccumulator: side phase size changed");
  }
  if (oracle.empty() || side.empty())
    throw std::invalid_argument("SvfAccumulator: empty phase vector");
  oracle_.push_back(oracle);
  side_.push_back(side);
}

void SvfAccumulator::add_phase(const std::vector<double>& oracle,
                               const GridD& side) {
  add_phase(oracle, side.data());
}

std::pair<std::vector<double>, std::vector<double>>
SvfAccumulator::similarity_vectors() const {
  const std::size_t m = oracle_.size();
  std::vector<double> sim_oracle, sim_side;
  sim_oracle.reserve(m * (m - 1) / 2);
  sim_side.reserve(m * (m - 1) / 2);
  for (std::size_t i = 0; i + 1 < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      sim_oracle.push_back(
          phase_similarity(oracle_[i], oracle_[j], options_.similarity));
      sim_side.push_back(
          phase_similarity(side_[i], side_[j], options_.similarity));
    }
  }
  return {std::move(sim_oracle), std::move(sim_side)};
}

double SvfAccumulator::svf() const {
  if (phases() < 3)
    throw std::logic_error("SvfAccumulator: need at least 3 phases");
  const auto [sim_oracle, sim_side] = similarity_vectors();
  return pearson(sim_oracle, sim_side);
}

}  // namespace tsc3d::leakage
