// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Temperature-to-power inversion, after PowerField [19].  The paper lists
// this as the third reason the thermal side channel is attractive: "it
// may serve as proxy for the power side-channel using temperature-to-
// power interpolation techniques".  We give the attacker that capability:
// given an observed thermal map, estimate the underlying power map.
//
// Model: within one die, the steady-state thermal map is approximately
// the power map convolved with a diffusion kernel (plus an offset).  The
// attacker assumes a HOMOGENEOUS Gaussian kernel -- exactly the
// assumption the paper's mitigation breaks with irregular TSVs and
// heterogeneous materials (Sec. 2.1, Sec. 3).  The inversion solves the
// MRF-regularized least squares
//
//     min_p  || K*p - t ||^2  +  lambda * p' L p,   p >= 0
//
// (L the 4-neighbour graph Laplacian, playing the role of PowerField's
// Markov-random-field smoothness prior) by projected Landweber descent.
// Inversion quality is scored scale-invariantly via Pearson correlation
// against the true power map, so it plugs directly into the paper's
// leakage framework: decorrelated floorplans must yield worse inversions.
#pragma once

#include <cstddef>

#include "core/grid.hpp"

namespace tsc3d::attack {

struct InversionOptions {
  /// Assumed diffusion-kernel standard deviation, in grid bins.
  double kernel_sigma_bins = 2.0;
  /// Kernel half-width in bins (kernel spans 2*radius+1 per axis).
  std::size_t kernel_radius = 6;
  /// MRF smoothness-prior weight lambda.
  double lambda_smooth = 0.05;
  /// Projected-Landweber iterations.
  std::size_t iterations = 300;
  /// Enforce p >= 0 after every step (power is non-negative).
  bool nonnegative = true;
};

/// Result of one inversion.
struct InversionResult {
  GridD power_estimate;      ///< estimated power map (arbitrary scale)
  double residual_norm = 0.0;  ///< ||K*p - t|| at the last iterate
  std::size_t iterations = 0;
};

/// Estimate the power map that produced `thermal` under the homogeneous
/// diffusion model above.  The offset is removed internally (the minimum
/// of the map is treated as the zero-power baseline), so `thermal` may be
/// passed in kelvin as-is.
[[nodiscard]] InversionResult invert_power(const GridD& thermal,
                                           const InversionOptions& options = {});

/// Convolve `src` with the Gaussian kernel the inversion assumes; exposed
/// for tests and for building synthetic forward models.
[[nodiscard]] GridD diffuse(const GridD& src, double sigma_bins,
                            std::size_t radius);

/// Scale-invariant inversion quality: Pearson correlation between the
/// estimate and the true power map.  1 = power side channel fully
/// recovered through the thermal proxy, 0 = nothing recovered.
[[nodiscard]] double inversion_correlation(const GridD& true_power,
                                           const GridD& estimate);

}  // namespace tsc3d::attack
