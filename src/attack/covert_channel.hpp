// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Thermal covert-channel bandwidth estimation, after Masti et al. [5]
// ("different processes, when scheduled by turns in one core, can build a
// covert channel with up to 12.5 bit/s").  A sender module modulates its
// power with on-off keying; a receiver watches the thermal response at a
// sensor location and decodes the bit stream.  The achievable rate is
// bounded by the thermal low-pass behaviour the paper's Fig. 1
// illustrates: the slower the heat flow, the lower the side channel's
// bandwidth.
//
// For a chosen bit period we transmit a pseudo-random bit sequence
// through the transient solver, decode by comparing each bit window's
// mean temperature against the midpoint of a trailing baseline, and
// report the bit-error rate plus the resulting net capacity
// (1 - H2(BER)) / T_bit in bit/s.
#pragma once

#include <cstddef>
#include <vector>

#include "core/floorplan.hpp"
#include "core/rng.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::attack {

struct CovertChannelOptions {
  std::size_t bits = 32;          ///< payload length
  double bit_period_s = 0.05;     ///< T_bit
  double power_boost = 2.0;       ///< sender's "1" power multiplier
  double dt_s = 2e-3;             ///< transient step
  /// Leading bits discarded while the stack warms up to its operating
  /// point (they carry the step response, not the payload).
  std::size_t warmup_bits = 4;
};

struct CovertChannelResult {
  std::size_t bits_sent = 0;
  std::size_t bits_correct = 0;
  double bit_error_rate = 0.0;
  double capacity_bps = 0.0;  ///< (1 - H2(BER)) / T_bit
  /// Mean receiver-side temperature swing between 1- and 0-bits [K].
  double signal_swing_k = 0.0;
};

/// Transmit a random payload from module `sender` and decode it from the
/// mean temperature of that module's footprint on its die.  The rest of
/// the floorplan runs at nominal power throughout.
[[nodiscard]] CovertChannelResult run_covert_channel(
    const Floorplan3D& fp, const thermal::GridSolver& solver,
    std::size_t sender, Rng& rng, const CovertChannelOptions& options = {});

/// Sweep bit periods and return the highest capacity found; `periods_s`
/// must be non-empty.  Convenience for bench/fig1_timescales.
[[nodiscard]] std::vector<CovertChannelResult> sweep_covert_channel(
    const Floorplan3D& fp, const thermal::GridSolver& solver,
    std::size_t sender, const std::vector<double>& periods_s, Rng& rng,
    CovertChannelOptions options = {});

/// Binary entropy H2(p) in bits, clamped to [0, 1]; exposed for tests.
[[nodiscard]] double binary_entropy(double p);

}  // namespace tsc3d::attack
