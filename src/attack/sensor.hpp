// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// On-chip thermal sensor model.  The paper's attacker (Sec. 5) "has
// unlimited access to all thermal sensors, spread across the 3D IC, and
// can thus obtain high-accuracy and continuous thermal readings of any
// (part of a) module at will"; readings between sensor sites are
// recovered with interpolation techniques (cf. [9], [19]).
//
// SensorGrid samples a die's thermal map at a regular array of sensor
// locations, adds Gaussian measurement noise, and reconstructs a
// full-resolution map via bilinear interpolation -- the attacker's view
// of the thermal side channel.
#pragma once

#include <cstddef>

#include "core/grid.hpp"
#include "core/rng.hpp"

namespace tsc3d::attack {

struct SensorOptions {
  std::size_t sensors_x = 8;   ///< sensor columns per die
  std::size_t sensors_y = 8;   ///< sensor rows per die
  double noise_sigma_k = 0.05; ///< Gaussian read noise [K]
  /// Number of repeated reads averaged per observation (the attacker can
  /// take continuous readings; averaging suppresses noise by sqrt(n)).
  std::size_t reads_averaged = 4;
};

class SensorGrid {
 public:
  explicit SensorGrid(SensorOptions options = {});

  [[nodiscard]] const SensorOptions& options() const { return opt_; }

  /// Sample `thermal` at the sensor sites with read noise applied.
  /// Returns a sensors_x-by-sensors_y grid of readings [K].
  [[nodiscard]] GridD read(const GridD& thermal, Rng& rng) const;

  /// The attacker's reconstructed full-resolution map: sensor readings
  /// bilinearly interpolated back to nx-by-ny.
  [[nodiscard]] GridD observe(const GridD& thermal, std::size_t nx,
                              std::size_t ny, Rng& rng) const;

 private:
  SensorOptions opt_;
};

}  // namespace tsc3d::attack
