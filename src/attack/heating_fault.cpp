#include "attack/heating_fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace tsc3d::attack {

double victim_peak_k(const Floorplan3D& fp, const GridD& die_thermal,
                     std::size_t victim) {
  const Module& m = fp.modules()[victim];
  const Rect outline = fp.outline();
  double peak = 0.0;
  bool hit = false;
  for (std::size_t iy = 0; iy < die_thermal.ny(); ++iy) {
    for (std::size_t ix = 0; ix < die_thermal.nx(); ++ix) {
      const double x = outline.x + (static_cast<double>(ix) + 0.5) /
                                       static_cast<double>(die_thermal.nx()) *
                                       outline.w;
      const double y = outline.y + (static_cast<double>(iy) + 0.5) /
                                       static_cast<double>(die_thermal.ny()) *
                                       outline.h;
      if (m.shape.contains(Point{x, y})) {
        peak = std::max(peak, die_thermal.at(ix, iy));
        hit = true;
      }
    }
  }
  // Degenerate footprint (thinner than a bin): fall back to the bin
  // containing the module center.
  if (!hit) {
    const Point c = m.shape.center();
    const auto ix = std::min(
        static_cast<std::size_t>((c.x - outline.x) / outline.w *
                                 static_cast<double>(die_thermal.nx())),
        die_thermal.nx() - 1);
    const auto iy = std::min(
        static_cast<std::size_t>((c.y - outline.y) / outline.h *
                                 static_cast<double>(die_thermal.ny())),
        die_thermal.ny() - 1);
    peak = die_thermal.at(ix, iy);
  }
  return peak;
}

HeatingFaultResult run_heating_fault_attack(
    const Floorplan3D& fp, const thermal::GridSolver& solver,
    std::size_t victim, const HeatingFaultOptions& options) {
  if (victim >= fp.modules().size())
    throw std::invalid_argument("run_heating_fault_attack: bad victim");
  if (options.boost <= 1.0)
    throw std::invalid_argument(
        "run_heating_fault_attack: boost must exceed 1");
  if (options.max_accomplices == 0)
    throw std::invalid_argument(
        "run_heating_fault_attack: need at least one accomplice");

  const std::size_t nx = solver.nx(), ny = solver.ny();
  const std::size_t dies = fp.tech().num_dies;
  const GridD tsv_density = fp.tsv_density_map(nx, ny);
  const std::size_t victim_die = fp.modules()[victim].die;

  std::vector<double> nominal(fp.modules().size());
  double nominal_total = 0.0;
  for (std::size_t i = 0; i < nominal.size(); ++i) {
    nominal[i] = fp.effective_power(i);
    nominal_total += nominal[i];
  }

  const auto solve_with = [&](const std::vector<double>& power) {
    std::vector<GridD> maps;
    maps.reserve(dies);
    for (std::size_t d = 0; d < dies; ++d)
      maps.push_back(fp.power_map(d, nx, ny, &power));
    return solver.solve_steady(maps, tsv_density);
  };

  HeatingFaultResult result;
  const auto rest = solve_with(nominal);
  result.victim_peak_k_nominal =
      victim_peak_k(fp, rest.die_temperature[victim_die], victim);

  // Influence probing: boost each candidate alone, measure the victim's
  // temperature rise.  (The victim itself cannot be an accomplice -- the
  // attacker by assumption cannot trigger it directly.)
  struct Influence {
    std::size_t module;
    double rise_k;
    double cost_w;
  };
  std::vector<Influence> influence;
  for (std::size_t i = 0; i < fp.modules().size(); ++i) {
    if (i == victim || nominal[i] <= 0.0) continue;
    std::vector<double> probe = nominal;
    probe[i] *= options.boost;
    const auto res = solve_with(probe);
    influence.push_back(
        {i,
         victim_peak_k(fp, res.die_temperature[victim_die], victim) -
             result.victim_peak_k_nominal,
         probe[i] - nominal[i]});
  }
  std::sort(influence.begin(), influence.end(),
            [](const Influence& a, const Influence& b) {
              return a.rise_k > b.rise_k;
            });

  // Greedy packing under the stealth budget.
  const double budget = options.power_budget_fraction * nominal_total;
  std::vector<double> attacked = nominal;
  for (const auto& cand : influence) {
    if (result.accomplices.size() >= options.max_accomplices) break;
    if (cand.rise_k <= 0.0) break;
    if (result.attack_power_w + cand.cost_w > budget) continue;
    attacked[cand.module] *= options.boost;
    result.attack_power_w += cand.cost_w;
    result.accomplices.push_back(cand.module);
  }
  result.accomplices_used = result.accomplices.size();

  const auto res = solve_with(attacked);
  result.victim_peak_k_attacked =
      victim_peak_k(fp, res.die_temperature[victim_die], victim);
  result.fault_induced =
      result.victim_peak_k_attacked >= options.fault_threshold_k;
  return result;
}

}  // namespace tsc3d::attack
