// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Thermal side-channel attacks (Sec. 5).  The attacker applies crafted,
// repetitive input patterns, awaits the thermal steady state, and reads
// the on-chip sensors -- so each "observation" here is one steady-state
// solve viewed through the SensorGrid.
//
//  1. Thermal characterization: the attacker triggers modules one at a
//     time, extracts per-module thermal signatures, and validates the
//     superposition model on unseen multi-module activity patterns.
//     reported: R^2 of the model and the mean pairwise signature
//     separation (distinguishability).
//
//  2. Localization and monitoring: the attacker boosts one (unknown to
//     the defender) module's activity and predicts its die and location
//     from the observed thermal difference map.  reported: success rate
//     and mean localization error.  The monitoring variant distinguishes
//     WHICH of two candidate modules is active (classification accuracy).
#pragma once

#include <cstddef>
#include <vector>

#include "attack/sensor.hpp"
#include "core/floorplan.hpp"
#include "core/rng.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::attack {

struct AttackOptions {
  SensorOptions sensors;
  double activity_boost = 1.0;   ///< triggered module: power * (1 + boost)
  std::size_t max_modules = 32;  ///< modules probed (largest-area first)
  std::size_t test_patterns = 16;  ///< held-out patterns (characterization)
  std::size_t pattern_modules = 4; ///< active modules per test pattern
  /// Localization succeeds if the predicted point falls within the true
  /// module's rectangle grown by this margin [um].
  double tolerance_um = 250.0;
};

struct LocalizationResult {
  std::size_t modules_tested = 0;
  std::size_t die_correct = 0;       ///< predicted die matches
  std::size_t localized = 0;         ///< within tolerance on correct die
  double mean_error_um = 0.0;        ///< distance to true module center
  [[nodiscard]] double success_rate() const {
    return modules_tested > 0
               ? static_cast<double>(localized) /
                     static_cast<double>(modules_tested)
               : 0.0;
  }
};

struct CharacterizationResult {
  double r2 = 0.0;                 ///< superposition-model fit on test set
  double signature_separation = 0.0;  ///< mean pairwise L2 distance [K]
  std::size_t modules_profiled = 0;
};

struct MonitoringResult {
  std::size_t trials = 0;
  std::size_t correct = 0;
  [[nodiscard]] double accuracy() const {
    return trials > 0
               ? static_cast<double>(correct) / static_cast<double>(trials)
               : 0.0;
  }
};

/// Attack 2 (localization): probe the floorplan's largest modules.
[[nodiscard]] LocalizationResult run_localization_attack(
    const Floorplan3D& fp, const thermal::GridSolver& solver, Rng& rng,
    const AttackOptions& options = {});

/// Attack 1 (characterization): build per-module signatures and test the
/// superposition model on random multi-module patterns.
[[nodiscard]] CharacterizationResult run_characterization_attack(
    const Floorplan3D& fp, const thermal::GridSolver& solver, Rng& rng,
    const AttackOptions& options = {});

/// Monitoring: repeatedly activate one of two candidate modules and let
/// the attacker classify which one ran (template matching against the
/// two signatures).
[[nodiscard]] MonitoringResult run_monitoring_attack(
    const Floorplan3D& fp, const thermal::GridSolver& solver,
    std::size_t module_a, std::size_t module_b, std::size_t trials, Rng& rng,
    const AttackOptions& options = {});

}  // namespace tsc3d::attack
