#include "attack/power_inversion.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "leakage/pearson.hpp"

namespace tsc3d::attack {

namespace {

/// Separable 1D Gaussian taps, normalized to sum 1.
std::vector<double> gaussian_taps(double sigma, std::size_t radius) {
  std::vector<double> taps(2 * radius + 1);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    const double x = static_cast<double>(i) - static_cast<double>(radius);
    taps[i] = std::exp(-0.5 * (x / sigma) * (x / sigma));
    sum += taps[i];
  }
  for (auto& t : taps) t /= sum;
  return taps;
}

/// Separable convolution with clamped (replicate) borders.
GridD convolve(const GridD& src, const std::vector<double>& taps) {
  const auto radius = (taps.size() - 1) / 2;
  GridD tmp(src.nx(), src.ny());
  for (std::size_t iy = 0; iy < src.ny(); ++iy) {
    for (std::size_t ix = 0; ix < src.nx(); ++ix) {
      double acc = 0.0;
      for (std::size_t k = 0; k < taps.size(); ++k) {
        const auto off = static_cast<std::ptrdiff_t>(k) -
                         static_cast<std::ptrdiff_t>(radius);
        auto sx = static_cast<std::ptrdiff_t>(ix) + off;
        sx = std::clamp<std::ptrdiff_t>(
            sx, 0, static_cast<std::ptrdiff_t>(src.nx()) - 1);
        acc += taps[k] * src.at(static_cast<std::size_t>(sx), iy);
      }
      tmp.at(ix, iy) = acc;
    }
  }
  GridD dst(src.nx(), src.ny());
  for (std::size_t iy = 0; iy < src.ny(); ++iy) {
    for (std::size_t ix = 0; ix < src.nx(); ++ix) {
      double acc = 0.0;
      for (std::size_t k = 0; k < taps.size(); ++k) {
        const auto off = static_cast<std::ptrdiff_t>(k) -
                         static_cast<std::ptrdiff_t>(radius);
        auto sy = static_cast<std::ptrdiff_t>(iy) + off;
        sy = std::clamp<std::ptrdiff_t>(
            sy, 0, static_cast<std::ptrdiff_t>(src.ny()) - 1);
        acc += taps[k] * tmp.at(ix, static_cast<std::size_t>(sy));
      }
      dst.at(ix, iy) = acc;
    }
  }
  return dst;
}

/// 4-neighbour graph-Laplacian product L*p (replicate borders).
GridD laplacian(const GridD& p) {
  GridD out(p.nx(), p.ny());
  for (std::size_t iy = 0; iy < p.ny(); ++iy) {
    for (std::size_t ix = 0; ix < p.nx(); ++ix) {
      const double c = p.at(ix, iy);
      double acc = 0.0;
      if (ix > 0) acc += c - p.at(ix - 1, iy);
      if (ix + 1 < p.nx()) acc += c - p.at(ix + 1, iy);
      if (iy > 0) acc += c - p.at(ix, iy - 1);
      if (iy + 1 < p.ny()) acc += c - p.at(ix, iy + 1);
      out.at(ix, iy) = acc;
    }
  }
  return out;
}

}  // namespace

GridD diffuse(const GridD& src, double sigma_bins, std::size_t radius) {
  if (sigma_bins <= 0.0)
    throw std::invalid_argument("diffuse: sigma must be positive");
  if (radius == 0) throw std::invalid_argument("diffuse: radius must be > 0");
  return convolve(src, gaussian_taps(sigma_bins, radius));
}

InversionResult invert_power(const GridD& thermal,
                             const InversionOptions& options) {
  if (thermal.empty())
    throw std::invalid_argument("invert_power: empty thermal map");
  if (options.kernel_sigma_bins <= 0.0 || options.kernel_radius == 0)
    throw std::invalid_argument("invert_power: invalid kernel");

  // Remove the ambient/heatsink offset: the coolest bin is the baseline.
  GridD t = thermal;
  const double baseline = t.min();
  for (auto& v : t) v -= baseline;

  const auto taps =
      gaussian_taps(options.kernel_sigma_bins, options.kernel_radius);

  // Projected Landweber: p <- proj(p - tau * (K'(Kp - t) + lambda*L*p)).
  // The normalized Gaussian has spectral norm <= 1 and the 4-neighbour
  // Laplacian norm <= 8, so tau below keeps the iteration contractive.
  const double tau = 1.0 / (1.0 + 8.0 * options.lambda_smooth);

  GridD p = t;  // warm start: the thermal map itself
  GridD residual(t.nx(), t.ny());
  for (std::size_t it = 0; it < options.iterations; ++it) {
    residual = convolve(p, taps);
    residual -= t;
    GridD grad = convolve(residual, taps);  // K' = K (symmetric kernel)
    if (options.lambda_smooth > 0.0) {
      GridD smooth = laplacian(p);
      smooth *= options.lambda_smooth;
      grad += smooth;
    }
    grad *= tau;
    p -= grad;
    if (options.nonnegative)
      for (auto& v : p) v = std::max(v, 0.0);
  }

  residual = convolve(p, taps);
  residual -= t;
  double rn = 0.0;
  for (double v : residual) rn += v * v;

  InversionResult out;
  out.power_estimate = std::move(p);
  out.residual_norm = std::sqrt(rn);
  out.iterations = options.iterations;
  return out;
}

double inversion_correlation(const GridD& true_power, const GridD& estimate) {
  return leakage::pearson(true_power, estimate);
}

}  // namespace tsc3d::attack
