#include "attack/attacks.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tsc3d::attack {

namespace {

/// Solve the steady state for a given per-module power vector and return
/// the attacker's view (noisy, sensor-limited, interpolated) per die.
std::vector<GridD> observe_state(const Floorplan3D& fp,
                                 const thermal::GridSolver& solver,
                                 const std::vector<double>& module_power,
                                 const SensorGrid& sensors, Rng& rng) {
  const std::size_t g = solver.nx();
  std::vector<GridD> power;
  for (std::size_t d = 0; d < fp.tech().num_dies; ++d)
    power.push_back(fp.power_map(d, g, solver.ny(), &module_power));
  const thermal::ThermalResult res =
      solver.solve_steady(power, fp.tsv_density_map(g, solver.ny()));
  std::vector<GridD> views;
  for (std::size_t d = 0; d < fp.tech().num_dies; ++d)
    views.push_back(sensors.observe(res.die_temperature[d], g, solver.ny(),
                                    rng));
  return views;
}

/// Modules ordered by area (largest first) -- the natural probing order
/// for an attacker armed only with datasheet-level knowledge.
std::vector<std::size_t> probe_order(const Floorplan3D& fp,
                                     std::size_t max_modules) {
  std::vector<std::size_t> order(fp.modules().size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fp.modules()[a].area_um2 > fp.modules()[b].area_um2;
  });
  if (order.size() > max_modules) order.resize(max_modules);
  return order;
}

std::vector<double> nominal_power(const Floorplan3D& fp) {
  std::vector<double> p(fp.modules().size(), 0.0);
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = fp.effective_power(i);
  return p;
}

}  // namespace

LocalizationResult run_localization_attack(const Floorplan3D& fp,
                                           const thermal::GridSolver& solver,
                                           Rng& rng,
                                           const AttackOptions& options) {
  LocalizationResult result;
  const SensorGrid sensors(options.sensors);
  const std::size_t g = solver.nx();
  const double bw = fp.tech().die_width_um / static_cast<double>(g);
  const double bh = fp.tech().die_height_um / static_cast<double>(solver.ny());

  const std::vector<double> base_power = nominal_power(fp);
  const std::vector<GridD> baseline =
      observe_state(fp, solver, base_power, sensors, rng);

  double error_sum = 0.0;
  for (const std::size_t target : probe_order(fp, options.max_modules)) {
    std::vector<double> boosted = base_power;
    boosted[target] *= 1.0 + options.activity_boost;
    const std::vector<GridD> view =
        observe_state(fp, solver, boosted, sensors, rng);

    // The attacker picks the bin with the largest temperature increase
    // over the baseline, across all dies.
    double best = -1.0;
    std::size_t best_die = 0, best_bin = 0;
    for (std::size_t d = 0; d < view.size(); ++d) {
      for (std::size_t i = 0; i < view[d].size(); ++i) {
        const double delta = view[d][i] - baseline[d][i];
        if (delta > best) {
          best = delta;
          best_die = d;
          best_bin = i;
        }
      }
    }
    const Point guess{(static_cast<double>(best_bin % g) + 0.5) * bw,
                      (static_cast<double>(best_bin / g) + 0.5) * bh};

    const Module& m = fp.modules()[target];
    ++result.modules_tested;
    error_sum += euclidean(guess, m.shape.center());
    if (best_die == m.die) {
      ++result.die_correct;
      Rect grown = m.shape;
      grown.x -= options.tolerance_um;
      grown.y -= options.tolerance_um;
      grown.w += 2.0 * options.tolerance_um;
      grown.h += 2.0 * options.tolerance_um;
      if (grown.contains(guess)) ++result.localized;
    }
  }
  if (result.modules_tested > 0)
    result.mean_error_um =
        error_sum / static_cast<double>(result.modules_tested);
  return result;
}

CharacterizationResult run_characterization_attack(
    const Floorplan3D& fp, const thermal::GridSolver& solver, Rng& rng,
    const AttackOptions& options) {
  CharacterizationResult result;
  const SensorGrid sensors(options.sensors);

  const std::vector<double> base_power = nominal_power(fp);
  const std::vector<GridD> baseline =
      observe_state(fp, solver, base_power, sensors, rng);
  const std::vector<std::size_t> probes =
      probe_order(fp, options.max_modules);

  // Per-module signature: observed temperature delta per watt of boost,
  // concatenated over dies.
  std::vector<std::vector<double>> signatures;
  for (const std::size_t target : probes) {
    std::vector<double> boosted = base_power;
    const double dp = base_power[target] * options.activity_boost;
    if (dp <= 0.0) {
      signatures.emplace_back();
      continue;
    }
    boosted[target] += dp;
    const std::vector<GridD> view =
        observe_state(fp, solver, boosted, sensors, rng);
    std::vector<double> sig;
    for (std::size_t d = 0; d < view.size(); ++d)
      for (std::size_t i = 0; i < view[d].size(); ++i)
        sig.push_back((view[d][i] - baseline[d][i]) / dp);
    signatures.push_back(std::move(sig));
  }
  result.modules_profiled = signatures.size();

  // Pairwise signature separation (distinguishability of modules).
  double sep_sum = 0.0;
  std::size_t sep_cnt = 0;
  for (std::size_t a = 0; a < signatures.size(); ++a) {
    for (std::size_t b = a + 1; b < signatures.size(); ++b) {
      if (signatures[a].empty() || signatures[b].empty()) continue;
      double l2 = 0.0;
      for (std::size_t i = 0; i < signatures[a].size(); ++i) {
        const double d = signatures[a][i] - signatures[b][i];
        l2 += d * d;
      }
      sep_sum += std::sqrt(l2);
      ++sep_cnt;
    }
  }
  result.signature_separation =
      sep_cnt > 0 ? sep_sum / static_cast<double>(sep_cnt) : 0.0;

  // Validate the superposition model on unseen multi-module patterns.
  double ss_res = 0.0, ss_tot = 0.0, mean_acc = 0.0;
  std::vector<double> actual_all, predicted_all;
  for (std::size_t t = 0; t < options.test_patterns; ++t) {
    std::vector<double> pattern = base_power;
    std::vector<std::pair<std::size_t, double>> active;
    for (std::size_t k = 0; k < options.pattern_modules; ++k) {
      const std::size_t pick = probes[rng.index(probes.size())];
      const double dp = base_power[pick] * options.activity_boost;
      pattern[pick] += dp;
      active.emplace_back(pick, dp);
    }
    const std::vector<GridD> view =
        observe_state(fp, solver, pattern, sensors, rng);

    std::size_t flat = 0;
    for (std::size_t d = 0; d < view.size(); ++d) {
      for (std::size_t i = 0; i < view[d].size(); ++i, ++flat) {
        double pred = baseline[d][i];
        for (const auto& [pick, dp] : active) {
          const auto probe_idx = static_cast<std::size_t>(
              std::find(probes.begin(), probes.end(), pick) -
              probes.begin());
          if (probe_idx < signatures.size() &&
              !signatures[probe_idx].empty())
            pred += signatures[probe_idx][flat] * dp;
        }
        actual_all.push_back(view[d][i]);
        predicted_all.push_back(pred);
      }
    }
  }
  if (!actual_all.empty()) {
    mean_acc = std::accumulate(actual_all.begin(), actual_all.end(), 0.0) /
               static_cast<double>(actual_all.size());
    for (std::size_t i = 0; i < actual_all.size(); ++i) {
      ss_res += (actual_all[i] - predicted_all[i]) *
                (actual_all[i] - predicted_all[i]);
      ss_tot += (actual_all[i] - mean_acc) * (actual_all[i] - mean_acc);
    }
    result.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  }
  return result;
}

MonitoringResult run_monitoring_attack(const Floorplan3D& fp,
                                       const thermal::GridSolver& solver,
                                       std::size_t module_a,
                                       std::size_t module_b,
                                       std::size_t trials, Rng& rng,
                                       const AttackOptions& options) {
  MonitoringResult result;
  const SensorGrid sensors(options.sensors);
  const std::vector<double> base_power = nominal_power(fp);
  const std::vector<GridD> baseline =
      observe_state(fp, solver, base_power, sensors, rng);

  // Template per candidate module (one calibration observation each).
  auto signature = [&](std::size_t m) {
    std::vector<double> boosted = base_power;
    boosted[m] *= 1.0 + options.activity_boost;
    const std::vector<GridD> view =
        observe_state(fp, solver, boosted, sensors, rng);
    std::vector<double> sig;
    for (std::size_t d = 0; d < view.size(); ++d)
      for (std::size_t i = 0; i < view[d].size(); ++i)
        sig.push_back(view[d][i] - baseline[d][i]);
    return sig;
  };
  const std::vector<double> sig_a = signature(module_a);
  const std::vector<double> sig_b = signature(module_b);

  for (std::size_t t = 0; t < trials; ++t) {
    const bool truth_a = rng.bernoulli(0.5);
    const std::size_t active = truth_a ? module_a : module_b;
    std::vector<double> boosted = base_power;
    boosted[active] *= 1.0 + options.activity_boost;
    const std::vector<GridD> view =
        observe_state(fp, solver, boosted, sensors, rng);
    double dot_a = 0.0, dot_b = 0.0;
    std::size_t flat = 0;
    for (std::size_t d = 0; d < view.size(); ++d) {
      for (std::size_t i = 0; i < view[d].size(); ++i, ++flat) {
        const double delta = view[d][i] - baseline[d][i];
        dot_a += delta * sig_a[flat];
        dot_b += delta * sig_b[flat];
      }
    }
    const bool guess_a = dot_a >= dot_b;
    ++result.trials;
    if (guess_a == truth_a) ++result.correct;
  }
  return result;
}

}  // namespace tsc3d::attack
