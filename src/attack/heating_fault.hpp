// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Heating fault attack, after Hutter & Schmidt [4] ("The temperature
// side channel and heating fault attacks") -- the second half of the
// paper's key TSC reference.  The attacker cannot touch the victim
// module directly, but by crafting inputs that keep OTHER modules busy
// he/she heats the stack until the victim crosses a fault threshold
// (bit flips in SRAM, skewed RNGs, violated timing).
//
// The attacker model matches Sec. 5: inputs can boost any subset of
// modules' activity (bounded multiplier), the thermal steady state can
// be awaited, and the floorplan is known only at block level.  The
// attack greedily selects the accomplice modules with the largest
// thermal influence on the victim and reports the achievable victim
// temperature and whether the fault threshold is reached -- with the
// total boosted power as the attack's cost/stealth measure.
//
// Defense hooks: the DTM throttling of mitigation/dtm.hpp caps exactly
// this vector (the bench threads them together), and TSC-aware
// floorplans that decorrelate the victim also blunt the attacker's
// influence ranking.
#pragma once

#include <cstddef>
#include <vector>

#include "core/floorplan.hpp"
#include "core/grid.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::attack {

struct HeatingFaultOptions {
  double fault_threshold_k = 360.0;  ///< victim faults above this
  double boost = 3.0;                ///< activity multiplier on accomplices
  /// Attacker's power stealth budget: boosted-minus-nominal power must
  /// stay below this fraction of the design's nominal total (a power
  /// monitor would flag more).
  double power_budget_fraction = 1.0;
  std::size_t max_accomplices = 8;   ///< modules the inputs can keep busy
};

struct HeatingFaultResult {
  std::size_t accomplices_used = 0;
  std::vector<std::size_t> accomplices;  ///< chosen module indices
  double victim_peak_k_nominal = 0.0;    ///< victim temp at rest
  double victim_peak_k_attacked = 0.0;   ///< victim temp under attack
  double attack_power_w = 0.0;           ///< extra power the attack burns
  bool fault_induced = false;
};

/// Run the greedy heating attack against module `victim`.  Accomplices
/// are chosen by measured thermal influence (one probe solve per
/// candidate, largest victim-temperature rise first), then boosted
/// together while the budget lasts.
[[nodiscard]] HeatingFaultResult run_heating_fault_attack(
    const Floorplan3D& fp, const thermal::GridSolver& solver,
    std::size_t victim, const HeatingFaultOptions& options = {});

/// Peak temperature over the victim module's footprint bins.
[[nodiscard]] double victim_peak_k(const Floorplan3D& fp,
                                   const GridD& die_thermal,
                                   std::size_t victim);

}  // namespace tsc3d::attack
