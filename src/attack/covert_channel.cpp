#include "attack/covert_channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsc3d::attack {

double binary_entropy(double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p == 0.0 || p == 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

CovertChannelResult run_covert_channel(const Floorplan3D& fp,
                                       const thermal::GridSolver& solver,
                                       std::size_t sender, Rng& rng,
                                       const CovertChannelOptions& options) {
  if (sender >= fp.modules().size())
    throw std::invalid_argument("run_covert_channel: sender out of range");
  if (options.bits == 0 || options.bit_period_s <= 0.0 || options.dt_s <= 0.0)
    throw std::invalid_argument("run_covert_channel: invalid options");
  if (options.dt_s > options.bit_period_s)
    throw std::invalid_argument(
        "run_covert_channel: dt must not exceed the bit period");

  const std::size_t total_bits = options.warmup_bits + options.bits;
  std::vector<int> payload(total_bits);
  for (auto& b : payload) b = rng.bernoulli(0.5) ? 1 : 0;

  // Nominal per-module power; the sender toggles between nominal ("0")
  // and boosted ("1").
  std::vector<double> nominal(fp.modules().size());
  for (std::size_t i = 0; i < nominal.size(); ++i)
    nominal[i] = fp.effective_power(i);

  const std::size_t sender_die = fp.modules()[sender].die;
  const std::size_t num_dies = fp.tech().num_dies;
  const std::size_t nx = solver.nx(), ny = solver.ny();
  const GridD tsv_density = fp.tsv_density_map(nx, ny);

  const auto power_at = [&](double time_s) {
    const auto bit =
        std::min(static_cast<std::size_t>(time_s / options.bit_period_s),
                 total_bits - 1);
    std::vector<double> power = nominal;
    if (payload[bit] == 1) power[sender] *= options.power_boost;
    std::vector<GridD> maps;
    maps.reserve(num_dies);
    for (std::size_t d = 0; d < num_dies; ++d)
      maps.push_back(fp.power_map(d, nx, ny, &power));
    return maps;
  };

  // One recorded sample per step; steps per bit >= 1 enforced above.
  const double t_end = static_cast<double>(total_bits) * options.bit_period_s;
  const auto transient =
      solver.solve_transient(power_at, tsv_density, t_end, options.dt_s);

  // Receiver trace: the transient solver records per-die mean
  // temperatures; the sender's heating dominates its die's mean for the
  // boost levels used here, so the die mean is the receiver's signal.
  std::vector<double> trace_t, trace_time;
  trace_t.reserve(transient.trace.size());
  for (const auto& s : transient.trace) {
    trace_time.push_back(s.time_s);
    trace_t.push_back(s.die_mean_k[sender_die]);
  }
  if (trace_t.size() < total_bits)
    throw std::logic_error("run_covert_channel: trace shorter than payload");

  // Decode: per bit window, compare the window's tail mean against the
  // previous window's tail mean -- a rise decodes as 1, a fall as 0; for
  // repeated symbols the drift direction decides.
  CovertChannelResult out;
  double swing_acc = 0.0;
  std::size_t swing_n = 0;
  double prev_tail = 0.0;
  bool have_prev = false;
  std::size_t correct = 0, counted = 0;
  for (std::size_t bit = 0; bit < total_bits; ++bit) {
    const double t0 = static_cast<double>(bit) * options.bit_period_s;
    const double t1 = t0 + options.bit_period_s;
    // Tail mean: last half of the bit window (settled part).
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < trace_t.size(); ++i) {
      if (trace_time[i] >= t0 + 0.5 * options.bit_period_s &&
          trace_time[i] < t1) {
        acc += trace_t[i];
        ++n;
      }
    }
    if (n == 0) continue;
    const double tail = acc / static_cast<double>(n);
    // Differential decoding is only unambiguous on symbol CHANGES; count
    // only transitions, as Masti et al.'s Manchester-style scheme does.
    // On a transition the truth is the new symbol: 0->1 must read as a
    // temperature rise, 1->0 as a fall.
    if (have_prev && bit >= options.warmup_bits &&
        payload[bit] != payload[bit - 1]) {
      const int decoded = tail > prev_tail ? 1 : 0;
      ++counted;
      if (decoded == payload[bit]) ++correct;
      swing_acc += std::abs(tail - prev_tail);
      ++swing_n;
    }
    prev_tail = tail;
    have_prev = true;
  }

  out.bits_sent = counted;
  out.bits_correct = correct;
  out.bit_error_rate =
      counted > 0
          ? 1.0 - static_cast<double>(correct) / static_cast<double>(counted)
          : 0.5;
  // Manchester-style transition coding halves the raw symbol rate.
  out.capacity_bps = (1.0 - binary_entropy(out.bit_error_rate)) /
                     (2.0 * options.bit_period_s);
  out.signal_swing_k =
      swing_n > 0 ? swing_acc / static_cast<double>(swing_n) : 0.0;
  return out;
}

std::vector<CovertChannelResult> sweep_covert_channel(
    const Floorplan3D& fp, const thermal::GridSolver& solver,
    std::size_t sender, const std::vector<double>& periods_s, Rng& rng,
    CovertChannelOptions options) {
  if (periods_s.empty())
    throw std::invalid_argument("sweep_covert_channel: no periods");
  std::vector<CovertChannelResult> results;
  results.reserve(periods_s.size());
  for (double period : periods_s) {
    options.bit_period_s = period;
    options.dt_s = std::min(options.dt_s, period / 4.0);
    results.push_back(run_covert_channel(fp, solver, sender, rng, options));
  }
  return results;
}

}  // namespace tsc3d::attack
