#include "attack/sensor.hpp"

#include <cmath>
#include <stdexcept>

namespace tsc3d::attack {

SensorGrid::SensorGrid(SensorOptions options) : opt_(options) {
  if (opt_.sensors_x < 2 || opt_.sensors_y < 2)
    throw std::invalid_argument("SensorGrid: need at least 2x2 sensors");
  if (opt_.reads_averaged == 0)
    throw std::invalid_argument("SensorGrid: reads_averaged must be > 0");
}

GridD SensorGrid::read(const GridD& thermal, Rng& rng) const {
  GridD readings(opt_.sensors_x, opt_.sensors_y, 0.0);
  const double effective_sigma =
      opt_.noise_sigma_k /
      std::sqrt(static_cast<double>(opt_.reads_averaged));
  for (std::size_t sy = 0; sy < opt_.sensors_y; ++sy) {
    for (std::size_t sx = 0; sx < opt_.sensors_x; ++sx) {
      // Sensor sites sit at the centers of an even partition of the die.
      const auto ix = static_cast<std::size_t>(
          (static_cast<double>(sx) + 0.5) /
          static_cast<double>(opt_.sensors_x) *
          static_cast<double>(thermal.nx()));
      const auto iy = static_cast<std::size_t>(
          (static_cast<double>(sy) + 0.5) /
          static_cast<double>(opt_.sensors_y) *
          static_cast<double>(thermal.ny()));
      const double truth =
          thermal.at(std::min(ix, thermal.nx() - 1),
                     std::min(iy, thermal.ny() - 1));
      readings.at(sx, sy) = rng.gaussian(truth, effective_sigma);
    }
  }
  return readings;
}

GridD SensorGrid::observe(const GridD& thermal, std::size_t nx,
                          std::size_t ny, Rng& rng) const {
  return resample(read(thermal, rng), nx, ny);
}

}  // namespace tsc3d::attack
