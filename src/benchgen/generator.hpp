// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Synthetic benchmark generator.  Produces a Floorplan3D instance that
// matches a BenchmarkSpec's statistics.  Module areas follow a lognormal
// distribution (the empirical shape of GSRC/IBM block areas); power is
// drawn from a small number of "power regimes" so that realistic locally
// similar power classes exist (crypto cores, caches, glue logic, ...);
// nets follow a Rent-like degree distribution with mostly 2..5 pins.
//
// Generation is fully deterministic given (spec, seed).
#pragma once

#include <cstdint>

#include "benchgen/benchmark_spec.hpp"
#include "core/floorplan.hpp"

namespace tsc3d::benchgen {

struct GeneratorOptions {
  double target_utilization = 0.55;  ///< sum(module area) / (dies * outline)
  double area_sigma = 0.85;          ///< lognormal sigma of module areas
  std::size_t power_regimes = 4;     ///< number of distinct power classes
  double regime_spread = 6.0;        ///< density ratio hottest/coolest regime
  double min_net_degree_p = 0.55;    ///< geometric net-degree parameter
  double terminal_net_fraction = 0.25;  ///< nets that include a terminal
};

/// Generate one benchmark instance.  Modules are created unplaced
/// (shape extents are set from area and a nominal aspect ratio; positions
/// are zero and die assignments alternate) -- the floorplanner owns
/// placement.  The returned floorplan's TechnologyConfig outline matches
/// the spec.
[[nodiscard]] Floorplan3D generate(const BenchmarkSpec& spec,
                                   std::uint64_t seed,
                                   const GeneratorOptions& options = {});

/// Convenience: generate by Table 1 name.
[[nodiscard]] Floorplan3D generate(const std::string& name,
                                   std::uint64_t seed,
                                   const GeneratorOptions& options = {});

}  // namespace tsc3d::benchgen
