#include "benchgen/benchmark_spec.hpp"

#include <cmath>

namespace tsc3d::benchgen {

double BenchmarkSpec::die_edge_um() const {
  // mm^2 -> um^2, square die.
  return std::sqrt(outline_mm2) * 1000.0;
}

const std::vector<BenchmarkSpec>& table1_specs() {
  // Columns: name, hard, soft, scale, nets, terminals, outline, power.
  static const std::vector<BenchmarkSpec> specs = {
      {"n100", 0, 100, 10.0, 885, 334, 16.0, 7.83},
      {"n200", 0, 200, 10.0, 1585, 564, 16.0, 7.84},
      {"n300", 0, 300, 10.0, 1893, 569, 23.04, 13.05},
      {"ibm01", 246, 665, 2.0, 5829, 246, 25.0, 4.02},
      {"ibm03", 290, 999, 2.0, 10279, 283, 64.0, 19.78},
      {"ibm07", 291, 829, 2.0, 15047, 287, 64.0, 9.92},
  };
  return specs;
}

const std::vector<BenchmarkSpec>& scale_specs() {
  // Extrapolated GSRC-style rows: nets ~6.3/module (n300's ratio), one
  // terminal per ~1.9 modules capped near the GSRC plateau, outline and
  // power scaled with module count at n300's per-module density.
  static const std::vector<BenchmarkSpec> specs = {
      {"n1000", 0, 1000, 10.0, 6300, 600, 76.8, 43.5},
      {"n2000", 0, 2000, 10.0, 12600, 640, 153.6, 87.0},
  };
  return specs;
}

const BenchmarkSpec& spec_by_name(const std::string& name) {
  for (const BenchmarkSpec& s : table1_specs()) {
    if (s.name == name) return s;
  }
  for (const BenchmarkSpec& s : scale_specs()) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown benchmark: " + name);
}

}  // namespace tsc3d::benchgen
