#include "benchgen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/rng.hpp"

namespace tsc3d::benchgen {

namespace {

/// Geometric net degree >= 2: P(deg = 2 + k) = p (1-p)^k, capped at 12.
std::size_t sample_degree(Rng& rng, double p) {
  std::size_t k = 0;
  while (k < 10 && !rng.bernoulli(p)) ++k;
  return 2 + k;
}

}  // namespace

Floorplan3D generate(const BenchmarkSpec& spec, std::uint64_t seed,
                     const GeneratorOptions& options) {
  Rng rng(seed ^ std::hash<std::string>{}(spec.name));

  TechnologyConfig tech;
  tech.num_dies = 2;
  tech.die_width_um = spec.die_edge_um();
  tech.die_height_um = spec.die_edge_um();
  Floorplan3D fp(tech);

  const std::size_t n = spec.total_modules();
  const double total_area_target =
      options.target_utilization * 2.0 * tech.die_area_um2();

  // --- module areas: lognormal, normalized to the target utilization ----
  std::vector<double> areas(n, 0.0);
  double area_sum = 0.0;
  for (double& a : areas) {
    a = rng.lognormal(0.0, options.area_sigma);
    area_sum += a;
  }
  for (double& a : areas) a *= total_area_target / area_sum;

  // --- power regimes: a few density classes spread over the modules -----
  // Densities rise geometrically from coolest to hottest regime; modules
  // are assigned round-robin after shuffling so regimes are independent of
  // module size.
  std::vector<double> regime_density(options.power_regimes, 1.0);
  for (std::size_t r = 1; r < options.power_regimes; ++r) {
    regime_density[r] =
        std::pow(options.regime_spread,
                 static_cast<double>(r) /
                     static_cast<double>(options.power_regimes - 1));
  }
  std::vector<std::size_t> regime_of(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    regime_of[i] = i % options.power_regimes;
  rng.shuffle(regime_of);

  // Raw power ~ area * regime density * (1 +- 20% lognormal jitter),
  // normalized to the spec's total power at 1.0 V.
  std::vector<double> powers(n, 0.0);
  double power_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    powers[i] =
        areas[i] * regime_density[regime_of[i]] * rng.lognormal(0.0, 0.2);
    power_sum += powers[i];
  }
  for (double& p : powers) p *= spec.power_w / power_sum;

  // --- modules -----------------------------------------------------------
  fp.modules().reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Module m;
    m.id = i;
    const bool hard = i < spec.hard_modules;
    m.name = (hard ? "hb" : "sb") + std::to_string(i);
    m.soft = !hard;
    m.area_um2 = areas[i];
    if (hard) {
      // Hard blocks have a fixed aspect ratio in [0.5, 2].
      const double ar = rng.uniform(0.5, 2.0);
      m.min_aspect = ar;
      m.max_aspect = ar;
    } else {
      m.min_aspect = 1.0 / 3.0;
      m.max_aspect = 3.0;
    }
    m.power_w = powers[i];
    // Intrinsic delay loosely grows with the module's linear dimension.
    m.intrinsic_delay_ns =
        0.05 + 0.15 * std::sqrt(areas[i] / (total_area_target /
                                            static_cast<double>(n))) *
                   rng.uniform(0.5, 1.5);
    // Nominal shape: near-square at the middle of the aspect range.
    const double ar = std::sqrt(m.min_aspect * m.max_aspect);
    m.shape.w = std::sqrt(m.area_um2 * ar);
    m.shape.h = m.area_um2 / m.shape.w;
    m.die = i % 2;  // alternating initial assignment; floorplanner decides
    m.voltage_index = 1;  // 1.0 V nominal
    fp.modules().push_back(std::move(m));
  }

  // --- terminals: spread along the four edges of the bottom die ---------
  fp.terminals().reserve(spec.num_terminals);
  for (std::size_t t = 0; t < spec.num_terminals; ++t) {
    Terminal term;
    term.name = "p" + std::to_string(t);
    term.die = 0;
    const double frac = rng.uniform();
    const double w = tech.die_width_um;
    const double h = tech.die_height_um;
    switch (t % 4) {
      case 0: term.position = {frac * w, 0.0}; break;
      case 1: term.position = {frac * w, h}; break;
      case 2: term.position = {0.0, frac * h}; break;
      default: term.position = {w, frac * h}; break;
    }
    fp.terminals().push_back(std::move(term));
  }

  // --- nets: locality-biased connectivity -------------------------------
  // A net picks a random "anchor" module, then adds further pins from a
  // window around the anchor's index (module indices act as a proxy for
  // logical proximity, as in netlist clustering).
  fp.nets().reserve(spec.num_nets);
  for (std::size_t netno = 0; netno < spec.num_nets; ++netno) {
    Net net;
    net.id = netno;
    const std::size_t degree = sample_degree(rng, options.min_net_degree_p);
    const std::size_t anchor = rng.index(n);
    std::vector<std::size_t> chosen{anchor};
    const std::size_t window = std::max<std::size_t>(8, n / 10);
    while (chosen.size() < degree) {
      const long offset =
          static_cast<long>(rng.index(2 * window + 1)) -
          static_cast<long>(window);
      long idx = static_cast<long>(anchor) + offset;
      idx = std::clamp<long>(idx, 0, static_cast<long>(n) - 1);
      const auto candidate = static_cast<std::size_t>(idx);
      if (std::find(chosen.begin(), chosen.end(), candidate) ==
          chosen.end()) {
        chosen.push_back(candidate);
      } else if (window >= n) {
        break;  // tiny designs: cannot fill the degree without duplicates
      }
    }
    for (const std::size_t mi : chosen) {
      NetPin pin;
      pin.module = mi;
      net.pins.push_back(pin);
    }
    if (!fp.terminals().empty() &&
        rng.bernoulli(options.terminal_net_fraction)) {
      NetPin pin;
      pin.terminal = rng.index(fp.terminals().size());
      net.pins.push_back(pin);
    }
    fp.nets().push_back(std::move(net));
  }

  return fp;
}

Floorplan3D generate(const std::string& name, std::uint64_t seed,
                     const GeneratorOptions& options) {
  return generate(spec_by_name(name), seed, options);
}

}  // namespace tsc3d::benchgen
