// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Benchmark specifications reproducing Table 1 of the paper.  The original
// GSRC and IBM-HB+ benchmark files are not redistributable here, so the
// generator synthesizes statistically equivalent instances: same module
// counts and hard/soft split, same net and terminal counts, same fixed
// outline (after the paper's scale-up), and the same total nominal power
// at 1.0 V.  A GSRC-format reader (gsrc_io.hpp) accepts the real files as
// a drop-in replacement.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsc3d::benchgen {

/// One row of Table 1.
struct BenchmarkSpec {
  std::string name;
  std::size_t hard_modules = 0;
  std::size_t soft_modules = 0;
  double scale_factor = 1.0;     ///< module footprint scale-up (Sec. 7)
  std::size_t num_nets = 0;
  std::size_t num_terminals = 0; ///< terminal pins
  double outline_mm2 = 0.0;      ///< fixed per-die outline area
  double power_w = 0.0;          ///< total nominal power at 1.0 V

  [[nodiscard]] std::size_t total_modules() const {
    return hard_modules + soft_modules;
  }
  /// Square-die edge length [um] for the fixed outline.
  [[nodiscard]] double die_edge_um() const;
};

/// The six benchmarks of Table 1 (GSRC: n100/n200/n300; IBM-HB+:
/// ibm01/ibm03/ibm07).
[[nodiscard]] const std::vector<BenchmarkSpec>& table1_specs();

/// Lookup by name; throws std::out_of_range for unknown names.
[[nodiscard]] const BenchmarkSpec& spec_by_name(const std::string& name);

}  // namespace tsc3d::benchgen
