// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// GSRC bookshelf-format file IO (.blocks / .nets / .pl), plus a simple
// ".power" sidecar (module name + watts) that the original format lacks.
// The writer emits the synthetic benchmarks in the standard format; the
// reader accepts real GSRC / IBM-HB+ files so they can replace the
// synthetic instances verbatim.
#pragma once

#include <filesystem>
#include <string>

#include "core/floorplan.hpp"

namespace tsc3d::benchgen {

/// Write the blocks/terminals of `fp` in GSRC .blocks format.
void write_blocks(const Floorplan3D& fp, const std::filesystem::path& path);

/// Write the nets of `fp` in GSRC .nets format.
void write_nets(const Floorplan3D& fp, const std::filesystem::path& path);

/// Write module/terminal placements (and die assignment as a trailing
/// column, a tsc3d extension) in .pl format.
void write_pl(const Floorplan3D& fp, const std::filesystem::path& path);

/// Write the per-module nominal power sidecar.
void write_power(const Floorplan3D& fp, const std::filesystem::path& path);

/// Write all four files with a common stem: stem.blocks, stem.nets,
/// stem.pl, stem.power.
void write_bundle(const Floorplan3D& fp, const std::filesystem::path& stem);

/// Read a GSRC bundle.  `nets` and `pl`/`power` paths may be empty; the
/// resulting floorplan then has no nets / default placement / zero power.
/// The technology config supplies the fixed outline and stack parameters.
[[nodiscard]] Floorplan3D read_bundle(const TechnologyConfig& tech,
                                      const std::filesystem::path& blocks,
                                      const std::filesystem::path& nets = {},
                                      const std::filesystem::path& pl = {},
                                      const std::filesystem::path& power = {});

}  // namespace tsc3d::benchgen
