#include "service/result_cache.hpp"

#include <iomanip>
#include <sstream>

namespace tsc3d::service {

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path ResultCache::path_for(const ArtifactContext& ctx) const {
  std::ostringstream name;
  name << std::hex << std::setw(16) << std::setfill('0') << context_key(ctx)
       << ".res";
  return dir_ / name.str();
}

std::optional<StoredResult> ResultCache::probe(
    const ArtifactContext& ctx) const {
  ResultLoad load = load_result_file(path_for(ctx), &ctx);
  if (!load.ok) return std::nullopt;
  return std::move(load.result);
}

void ResultCache::store(const StoredResult& result) const {
  save_result_file(path_for(result.context), result);
}

}  // namespace tsc3d::service
