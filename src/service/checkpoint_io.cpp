#include "service/checkpoint_io.hpp"

#include <cstdio>
#include <fstream>

#include "service/serialize.hpp"
#include "service/version.hpp"

namespace tsc3d::service {

namespace {

constexpr char kMagic[8] = {'T', 'S', 'C', '3', 'D', 'C', 'K', 'P'};

// --- field-level encoders/decoders for the floorplan structs -----------

void put_rng(ByteWriter& w, const Rng::State& st) {
  for (const std::uint64_t s : st.s) w.u64(s);
  w.f64(st.cached_gaussian);
  w.boolean(st.has_cached_gaussian);
}

Rng::State get_rng(ByteReader& r) {
  Rng::State st;
  for (std::uint64_t& s : st.s) s = r.u64();
  st.cached_gaussian = r.f64();
  st.has_cached_gaussian = r.boolean();
  return st;
}

void put_breakdown(ByteWriter& w, const floorplan::CostBreakdown& c) {
  w.f64(c.bbox_area_ratio);
  w.f64(c.outline_penalty);
  w.f64(c.wirelength_um);
  w.f64(c.delay_ns);
  w.f64(c.peak_k_rise);
  w.f64(c.power_w);
  w.f64(c.num_volumes);
  w.f64(c.power_gradient);
  w.vec_f64(c.correlation);
  w.vec_f64(c.entropy);
  w.f64(c.total);
  w.boolean(c.fits_outline);
}

floorplan::CostBreakdown get_breakdown(ByteReader& r) {
  floorplan::CostBreakdown c;
  c.bbox_area_ratio = r.f64();
  c.outline_penalty = r.f64();
  c.wirelength_um = r.f64();
  c.delay_ns = r.f64();
  c.peak_k_rise = r.f64();
  c.power_w = r.f64();
  c.num_volumes = r.f64();
  c.power_gradient = r.f64();
  c.correlation = r.vec_f64();
  c.entropy = r.vec_f64();
  c.total = r.f64();
  c.fits_outline = r.boolean();
  return c;
}

void put_stats(ByteWriter& w, const floorplan::AnnealStats& s) {
  w.u64(s.moves);
  w.u64(s.accepted);
  w.u64(s.full_evals);
  w.u64(s.repair_moves);
  w.f64(s.initial_temperature);
  w.f64(s.best_cost);
  w.boolean(s.found_legal);
  put_breakdown(w, s.best_breakdown);
}

floorplan::AnnealStats get_stats(ByteReader& r) {
  floorplan::AnnealStats s;
  s.moves = static_cast<std::size_t>(r.u64());
  s.accepted = static_cast<std::size_t>(r.u64());
  s.full_evals = static_cast<std::size_t>(r.u64());
  s.repair_moves = static_cast<std::size_t>(r.u64());
  s.initial_temperature = r.f64();
  s.best_cost = r.f64();
  s.found_legal = r.boolean();
  s.best_breakdown = get_breakdown(r);
  return s;
}

void put_eval(ByteWriter& w,
              const floorplan::CostEvaluator::CheckpointState& e) {
  w.f64(e.outline_weight);
  w.f64(e.peak_rise);
  w.f64(e.power);
  w.f64(e.volumes);
  w.f64(e.gradient);
  w.vec_f64(e.correlation);
  w.vec_f64(e.entropy);
  w.boolean(e.have_expensive);
  w.u64(e.cheap_evals);
  w.f64(e.norm_area);
  w.f64(e.norm_wl);
  w.f64(e.norm_delay);
  w.f64(e.norm_peak);
  w.f64(e.norm_power);
  w.f64(e.norm_volumes);
  w.f64(e.norm_corr);
  w.f64(e.norm_entropy);
  w.f64(e.norm_gradient);
  w.boolean(e.norm_ready);
}

floorplan::CostEvaluator::CheckpointState get_eval(ByteReader& r) {
  floorplan::CostEvaluator::CheckpointState e;
  e.outline_weight = r.f64();
  e.peak_rise = r.f64();
  e.power = r.f64();
  e.volumes = r.f64();
  e.gradient = r.f64();
  e.correlation = r.vec_f64();
  e.entropy = r.vec_f64();
  e.have_expensive = r.boolean();
  e.cheap_evals = r.u64();
  e.norm_area = r.f64();
  e.norm_wl = r.f64();
  e.norm_delay = r.f64();
  e.norm_peak = r.f64();
  e.norm_power = r.f64();
  e.norm_volumes = r.f64();
  e.norm_corr = r.f64();
  e.norm_entropy = r.f64();
  e.norm_gradient = r.f64();
  e.norm_ready = r.boolean();
  return e;
}

void put_layout(ByteWriter& w, const floorplan::LayoutStateImage& img) {
  w.boolean(img.tracked);
  w.u64(img.positive.size());
  for (std::size_t d = 0; d < img.positive.size(); ++d) {
    w.vec_size(img.positive[d]);
    w.vec_size(img.negative[d]);
  }
  w.vec_f64(img.width);
  w.vec_f64(img.height);
  w.vec_size(img.die_of);
}

floorplan::LayoutStateImage get_layout(ByteReader& r) {
  floorplan::LayoutStateImage img;
  img.tracked = r.boolean();
  const std::uint64_t dies = r.u64();
  img.positive.reserve(static_cast<std::size_t>(dies));
  img.negative.reserve(static_cast<std::size_t>(dies));
  for (std::uint64_t d = 0; d < dies; ++d) {
    img.positive.push_back(r.vec_size());
    img.negative.push_back(r.vec_size());
  }
  img.width = r.vec_f64();
  img.height = r.vec_f64();
  img.die_of = r.vec_size();
  return img;
}

void put_chain(ByteWriter& w, const floorplan::ChainCheckpoint& c) {
  put_layout(w, c.state);
  put_layout(w, c.best);
  put_breakdown(w, c.current);
  put_breakdown(w, c.best_cost);
  w.boolean(c.best_legal);
  w.f64(c.initial_outline_weight);
  w.f64(c.temperature);
  w.f64(c.cooling);
  w.u64(c.total_moves);
  w.u64(c.moves_per_stage);
  w.u64(c.annealed_stages);
  w.u64(c.stage);
  w.u64(c.since_full);
  w.u64(c.since_thermal);
  w.boolean(c.refresh_pending);
  put_stats(w, c.stats);
  put_rng(w, c.rng);
  put_eval(w, c.eval);
  w.boolean(c.has_field);
  w.vec_f64(c.field.temp);
  w.vec_u64(c.voltage_index);
}

floorplan::ChainCheckpoint get_chain(ByteReader& r) {
  floorplan::ChainCheckpoint c;
  c.state = get_layout(r);
  c.best = get_layout(r);
  c.current = get_breakdown(r);
  c.best_cost = get_breakdown(r);
  c.best_legal = r.boolean();
  c.initial_outline_weight = r.f64();
  c.temperature = r.f64();
  c.cooling = r.f64();
  c.total_moves = r.u64();
  c.moves_per_stage = r.u64();
  c.annealed_stages = r.u64();
  c.stage = r.u64();
  c.since_full = r.u64();
  c.since_thermal = r.u64();
  c.refresh_pending = r.boolean();
  c.stats = get_stats(r);
  c.rng = get_rng(r);
  c.eval = get_eval(r);
  c.has_field = r.boolean();
  c.field.temp = r.vec_f64();
  c.voltage_index = r.vec_u64();
  return c;
}

void put_context(ByteWriter& w, const ArtifactContext& ctx) {
  w.u64(ctx.design_hash);
  w.u64(ctx.config_hash);
  w.u64(ctx.seed);
  w.str(ctx.code_version);
}

ArtifactContext get_context(ByteReader& r) {
  ArtifactContext ctx;
  ctx.design_hash = r.u64();
  ctx.config_hash = r.u64();
  ctx.seed = r.u64();
  ctx.code_version = r.str();
  return ctx;
}

}  // namespace

std::uint64_t context_key(const ArtifactContext& ctx) {
  ByteWriter w;
  put_context(w, ctx);
  return fnv1a64(w.bytes().data(), w.bytes().size());
}

void save_checkpoint_file(const std::filesystem::path& path,
                          const ArtifactContext& context,
                          const floorplan::ExplorationCheckpoint& ck) {
  ByteWriter payload;
  put_context(payload, context);
  payload.boolean(ck.tempering);
  payload.f64(ck.clock_period_ns);
  put_rng(payload, ck.flow_rng);
  payload.u64(ck.chains.size());
  for (const floorplan::ChainCheckpoint& c : ck.chains) put_chain(payload, c);
  put_rng(payload, ck.exchange_rng);
  payload.u64(ck.done_stages);
  payload.u64(ck.round);
  payload.u64(ck.exchange.rounds);
  payload.u64(ck.exchange.attempts);
  payload.u64(ck.exchange.accepts);

  ByteWriter file;
  for (const char m : kMagic) file.u8(static_cast<std::uint8_t>(m));
  file.u64(kCheckpointFormatVersion);
  file.u64(payload.bytes().size());
  file.u64(fnv1a64(payload.bytes().data(), payload.bytes().size()));

  const std::filesystem::path tmp = unique_tmp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("save_checkpoint_file: cannot open " +
                               tmp.string());
    out.write(reinterpret_cast<const char*>(file.bytes().data()),
              static_cast<std::streamsize>(file.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.bytes().data()),
              static_cast<std::streamsize>(payload.bytes().size()));
    out.flush();
    if (!out)
      throw std::runtime_error("save_checkpoint_file: write failed on " +
                               tmp.string());
  }
  // Atomic publish: a reader sees either the previous checkpoint or the
  // complete new one, never a half-written file.
  std::filesystem::rename(tmp, path);
}

CheckpointLoad load_checkpoint_file(const std::filesystem::path& path,
                                    const ArtifactContext& expect) {
  CheckpointLoad out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.reason = "no checkpoint file";
    return out;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  try {
    ByteReader header(bytes.data(), bytes.size());
    for (const char m : kMagic)
      if (header.u8() != static_cast<std::uint8_t>(m)) {
        out.reason = "bad magic";
        return out;
      }
    const std::uint64_t version = header.u64();
    if (version != kCheckpointFormatVersion) {
      out.reason = "unknown format version";
      return out;
    }
    const std::uint64_t payload_size = header.u64();
    const std::uint64_t checksum = header.u64();
    if (payload_size != header.remaining()) {
      out.reason = "truncated or oversized payload";
      return out;
    }
    const std::uint8_t* payload =
        bytes.data() + (bytes.size() - header.remaining());
    if (fnv1a64(payload, static_cast<std::size_t>(payload_size)) != checksum) {
      out.reason = "checksum mismatch";
      return out;
    }

    ByteReader r(payload, static_cast<std::size_t>(payload_size));
    const ArtifactContext ctx = get_context(r);
    if (ctx.design_hash != expect.design_hash) {
      out.reason = "design hash mismatch";
      return out;
    }
    if (ctx.config_hash != expect.config_hash) {
      out.reason = "config hash mismatch";
      return out;
    }
    if (ctx.seed != expect.seed) {
      out.reason = "seed mismatch";
      return out;
    }
    if (ctx.code_version != expect.code_version) {
      out.reason = "code version mismatch";
      return out;
    }

    floorplan::ExplorationCheckpoint ck;
    ck.tempering = r.boolean();
    ck.clock_period_ns = r.f64();
    ck.flow_rng = get_rng(r);
    const std::uint64_t chains = r.u64();
    ck.chains.reserve(static_cast<std::size_t>(chains));
    for (std::uint64_t k = 0; k < chains; ++k)
      ck.chains.push_back(get_chain(r));
    ck.exchange_rng = get_rng(r);
    ck.done_stages = r.u64();
    ck.round = r.u64();
    ck.exchange.rounds = static_cast<std::size_t>(r.u64());
    ck.exchange.attempts = static_cast<std::size_t>(r.u64());
    ck.exchange.accepts = static_cast<std::size_t>(r.u64());
    if (!r.exhausted()) {
      out.reason = "trailing bytes";
      return out;
    }
    out.checkpoint = std::move(ck);
    out.ok = true;
    return out;
  } catch (const std::exception& e) {
    out.reason = e.what();  // ByteReader truncation and kin
    out.ok = false;
    return out;
  }
}

}  // namespace tsc3d::service
