// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Service-level knobs of the batch exploration mode (tsc3d_batch).
// Populated from the [service] config section by
// config::make_service_options; every key is documented in
// docs/CONFIG.md and the operator semantics in docs/JOBS.md.
#pragma once

#include <cstddef>
#include <string>

namespace tsc3d::service {

struct ServiceOptions {
  /// Root directory of the on-disk job queue (created on demand).
  std::string queue_dir = "tsc3d-queue";
  /// Content-addressed result cache directory; empty = <queue_dir>/cache.
  std::string cache_dir;
  /// Consult/populate the result cache (off = always re-anneal).
  bool cache = true;
  /// Stages between durable checkpoints (1 = every stage boundary /
  /// exchange barrier; larger values trade redo work for less I/O).
  std::size_t checkpoint_interval = 1;
  /// Seconds after which another worker may steal an unfinished claim
  /// (crash recovery).  0 reclaims immediately -- only sane in tests.
  double claim_lease_s = 600.0;
};

}  // namespace tsc3d::service
