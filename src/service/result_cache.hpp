// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Content-addressed result cache.  Artifacts are StoredResult files (see
// result_io.hpp) named <hex(context_key)>.res in a flat directory.  The
// key digests the full ArtifactContext -- design hash, canonical config
// hash, seed, code version -- so a change to ANY component addresses a
// different slot.  Probes re-validate the stored context field-by-field;
// a key collision or stale file degrades to a miss, never a wrong hit.
//
// Cache hits return the exact bytes a fresh run would produce (results
// are deterministic and runtime-free), so `tsc3d_batch work` can serve a
// repeat exploration with zero annealing moves.
#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "service/result_io.hpp"

namespace tsc3d::service {

class ResultCache {
 public:
  /// Opens (creating if needed) the cache directory.
  explicit ResultCache(std::filesystem::path dir);

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

  /// Slot path for a context (exists or not).
  [[nodiscard]] std::filesystem::path path_for(
      const ArtifactContext& ctx) const;

  /// Look up a context.  Returns the stored result only when the file is
  /// intact AND its embedded context matches `ctx` exactly.
  [[nodiscard]] std::optional<StoredResult> probe(
      const ArtifactContext& ctx) const;

  /// Store a finished result under its own context (atomic write).
  void store(const StoredResult& result) const;

 private:
  std::filesystem::path dir_;
};

}  // namespace tsc3d::service
