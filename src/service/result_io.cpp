#include "service/result_io.hpp"

#include <fstream>

#include "service/serialize.hpp"
#include "service/version.hpp"

namespace tsc3d::service {

namespace {

constexpr char kMagic[8] = {'T', 'S', 'C', '3', 'D', 'R', 'E', 'S'};

void put_rng(ByteWriter& w, const Rng::State& st) {
  for (const std::uint64_t s : st.s) w.u64(s);
  w.f64(st.cached_gaussian);
  w.boolean(st.has_cached_gaussian);
}

Rng::State get_rng(ByteReader& r) {
  Rng::State st;
  for (std::uint64_t& s : st.s) s = r.u64();
  st.cached_gaussian = r.f64();
  st.has_cached_gaussian = r.boolean();
  return st;
}

void put_context(ByteWriter& w, const ArtifactContext& ctx) {
  w.u64(ctx.design_hash);
  w.u64(ctx.config_hash);
  w.u64(ctx.seed);
  w.str(ctx.code_version);
}

ArtifactContext get_context(ByteReader& r) {
  ArtifactContext ctx;
  ctx.design_hash = r.u64();
  ctx.config_hash = r.u64();
  ctx.seed = r.u64();
  ctx.code_version = r.str();
  return ctx;
}

}  // namespace

StoredResult make_stored_result(const ArtifactContext& context,
                                const Floorplan3D& fp,
                                const floorplan::FloorplanMetrics& metrics,
                                const Rng& rng) {
  StoredResult res;
  res.context = context;
  res.legal = metrics.legal;
  res.correlation = metrics.correlation;
  res.entropy = metrics.entropy;
  res.power_w = metrics.power_w;
  res.critical_delay_ns = metrics.critical_delay_ns;
  res.wirelength_m = metrics.wirelength_m;
  res.peak_k = metrics.peak_k;
  res.signal_tsvs = metrics.signal_tsvs;
  res.dummy_tsvs = metrics.dummy_tsvs;
  res.voltage_volumes = metrics.voltage_volumes;
  res.clock_period_ns = fp.tech().clock_period_ns;
  res.placement.reserve(fp.modules().size());
  for (const Module& m : fp.modules()) {
    PlacedModule pm;
    pm.die = m.die;
    pm.x = m.shape.x;
    pm.y = m.shape.y;
    pm.w = m.shape.w;
    pm.h = m.shape.h;
    pm.voltage_index = m.voltage_index;
    res.placement.push_back(pm);
  }
  res.tsvs.reserve(fp.tsvs().size());
  for (const Tsv& t : fp.tsvs()) {
    StoredTsv st;
    st.x = t.position.x;
    st.y = t.position.y;
    st.count = t.count;
    st.kind = static_cast<std::uint64_t>(t.kind);
    st.net = t.net;
    res.tsvs.push_back(st);
  }
  res.final_rng = rng.state();
  return res;
}

void save_result_file(const std::filesystem::path& path,
                      const StoredResult& res) {
  ByteWriter payload;
  put_context(payload, res.context);
  payload.boolean(res.legal);
  payload.vec_f64(res.correlation);
  payload.vec_f64(res.entropy);
  payload.f64(res.power_w);
  payload.f64(res.critical_delay_ns);
  payload.f64(res.wirelength_m);
  payload.f64(res.peak_k);
  payload.u64(res.signal_tsvs);
  payload.u64(res.dummy_tsvs);
  payload.u64(res.voltage_volumes);
  payload.f64(res.clock_period_ns);
  payload.u64(res.placement.size());
  for (const PlacedModule& m : res.placement) {
    payload.u64(m.die);
    payload.f64(m.x);
    payload.f64(m.y);
    payload.f64(m.w);
    payload.f64(m.h);
    payload.u64(m.voltage_index);
  }
  payload.u64(res.tsvs.size());
  for (const StoredTsv& t : res.tsvs) {
    payload.f64(t.x);
    payload.f64(t.y);
    payload.u64(t.count);
    payload.u64(t.kind);
    payload.u64(t.net);
  }
  put_rng(payload, res.final_rng);

  ByteWriter file;
  for (const char m : kMagic) file.u8(static_cast<std::uint8_t>(m));
  file.u64(kResultFormatVersion);
  file.u64(payload.bytes().size());
  file.u64(fnv1a64(payload.bytes().data(), payload.bytes().size()));

  const std::filesystem::path tmp = unique_tmp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("save_result_file: cannot open " +
                               tmp.string());
    out.write(reinterpret_cast<const char*>(file.bytes().data()),
              static_cast<std::streamsize>(file.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.bytes().data()),
              static_cast<std::streamsize>(payload.bytes().size()));
    out.flush();
    if (!out)
      throw std::runtime_error("save_result_file: write failed on " +
                               tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

ResultLoad load_result_file(const std::filesystem::path& path,
                            const ArtifactContext* expect) {
  ResultLoad out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.reason = "no result file";
    return out;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  try {
    ByteReader header(bytes.data(), bytes.size());
    for (const char m : kMagic)
      if (header.u8() != static_cast<std::uint8_t>(m)) {
        out.reason = "bad magic";
        return out;
      }
    if (header.u64() != kResultFormatVersion) {
      out.reason = "unknown format version";
      return out;
    }
    const std::uint64_t payload_size = header.u64();
    const std::uint64_t checksum = header.u64();
    if (payload_size != header.remaining()) {
      out.reason = "truncated or oversized payload";
      return out;
    }
    const std::uint8_t* payload =
        bytes.data() + (bytes.size() - header.remaining());
    if (fnv1a64(payload, static_cast<std::size_t>(payload_size)) != checksum) {
      out.reason = "checksum mismatch";
      return out;
    }

    ByteReader r(payload, static_cast<std::size_t>(payload_size));
    StoredResult res;
    res.context = get_context(r);
    if (expect != nullptr && !(res.context == *expect)) {
      out.reason = "context mismatch";
      return out;
    }
    res.legal = r.boolean();
    res.correlation = r.vec_f64();
    res.entropy = r.vec_f64();
    res.power_w = r.f64();
    res.critical_delay_ns = r.f64();
    res.wirelength_m = r.f64();
    res.peak_k = r.f64();
    res.signal_tsvs = r.u64();
    res.dummy_tsvs = r.u64();
    res.voltage_volumes = r.u64();
    res.clock_period_ns = r.f64();
    const std::uint64_t modules = r.u64();
    res.placement.reserve(static_cast<std::size_t>(modules));
    for (std::uint64_t i = 0; i < modules; ++i) {
      PlacedModule m;
      m.die = r.u64();
      m.x = r.f64();
      m.y = r.f64();
      m.w = r.f64();
      m.h = r.f64();
      m.voltage_index = r.u64();
      res.placement.push_back(m);
    }
    const std::uint64_t tsvs = r.u64();
    res.tsvs.reserve(static_cast<std::size_t>(tsvs));
    for (std::uint64_t i = 0; i < tsvs; ++i) {
      StoredTsv t;
      t.x = r.f64();
      t.y = r.f64();
      t.count = r.u64();
      t.kind = r.u64();
      t.net = r.u64();
      res.tsvs.push_back(t);
    }
    res.final_rng = get_rng(r);
    if (!r.exhausted()) {
      out.reason = "trailing bytes";
      return out;
    }
    out.result = std::move(res);
    out.ok = true;
    return out;
  } catch (const std::exception& e) {
    out.reason = e.what();
    out.ok = false;
    return out;
  }
}

}  // namespace tsc3d::service
