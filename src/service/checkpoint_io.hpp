// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Durable on-disk encoding of floorplan::ExplorationCheckpoint, plus the
// artifact identity every service file carries.
//
// File layout (all integers little-endian):
//
//   magic    "TSC3DCKP"                      8 bytes
//   version  u64 (kCheckpointFormatVersion)
//   size     u64 (payload byte count)
//   checksum u64 (FNV-1a 64 of the payload)
//   payload  ArtifactContext + ExplorationCheckpoint
//
// Loading follows the DtmCheckpoint discipline: EVERY defect -- missing
// file, wrong magic, unknown format version, truncated payload, checksum
// mismatch, or an identity (design/config/seed/code-version) that does
// not match the job being resumed -- yields {ok = false, reason}, and
// the caller starts the run fresh.  A checkpoint can cost redo work,
// never correctness.  Writes go through a temp file + atomic rename, so
// a crash mid-write leaves the previous checkpoint intact.
#pragma once

#include <filesystem>
#include <string>

#include "floorplan/exploration_checkpoint.hpp"

namespace tsc3d::service {

/// Identity of one exploration: what produced an artifact and for which
/// question.  Two artifacts are interchangeable iff all four match.
struct ArtifactContext {
  std::uint64_t design_hash = 0;  ///< content hash of the design source
  std::uint64_t config_hash = 0;  ///< hash of the canonical config text
  std::uint64_t seed = 0;
  std::string code_version;       ///< kCodeVersion of the producer

  [[nodiscard]] bool operator==(const ArtifactContext&) const = default;
};

/// Cache key: a single 64-bit digest of the full context.  Collisions
/// are tolerated -- every artifact stores the full context and probes
/// compare it, so a collision degrades to a miss, never a wrong answer.
[[nodiscard]] std::uint64_t context_key(const ArtifactContext& ctx);

/// Write atomically (temp + rename); throws std::runtime_error on I/O
/// failure.
void save_checkpoint_file(const std::filesystem::path& path,
                          const ArtifactContext& context,
                          const floorplan::ExplorationCheckpoint& checkpoint);

struct CheckpointLoad {
  bool ok = false;
  std::string reason;  ///< why the load was rejected (ok == false)
  floorplan::ExplorationCheckpoint checkpoint;
};

/// Load + validate against `expect` (see file comment).  Never throws on
/// bad content; a defective file is a clean miss with a reason.
[[nodiscard]] CheckpointLoad load_checkpoint_file(
    const std::filesystem::path& path, const ArtifactContext& expect);

}  // namespace tsc3d::service
