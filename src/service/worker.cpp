#include "service/worker.hpp"

#include <fstream>
#include <sstream>

#include "benchgen/generator.hpp"
#include "benchgen/gsrc_io.hpp"
#include "config/apply.hpp"
#include "config/config_file.hpp"
#include "service/serialize.hpp"
#include "service/version.hpp"

namespace tsc3d::service {

namespace {

/// Feed one file's raw bytes into a running FNV digest; a missing file
/// throws so a bad job fails loudly instead of hashing to nonsense.
std::uint64_t hash_file(std::uint64_t h, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("design_hash: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string bytes = ss.str();
  return fnv1a64(bytes.data(), bytes.size(), h);
}

}  // namespace

std::uint64_t design_hash(const JobSpec& job) {
  if (job.blocks.empty()) {
    // Synthetic designs are a pure function of (name, seed); the seed is
    // hashed here too because it shapes the DESIGN, not just the anneal.
    std::uint64_t h = fnv1a64("benchmark");
    h = fnv1a64(job.benchmark.data(), job.benchmark.size(), h);
    const std::uint64_t seed = job.seed;
    h = fnv1a64(&seed, sizeof(seed), h);
    return h;
  }
  std::uint64_t h = fnv1a64("gsrc");
  for (const std::string* path :
       {&job.blocks, &job.nets, &job.pl, &job.power}) {
    const char sep = '\0';
    h = fnv1a64(&sep, 1, h);
    if (!path->empty()) h = hash_file(h, *path);
  }
  return h;
}

ArtifactContext job_context(const JobSpec& job) {
  const config::ConfigFile cfg =
      config::ConfigFile::parse(job.config_text, "<job config>");
  // [service] keys steer the queue machinery and [campaign] keys steer
  // the matrix runner; neither shapes the exploration itself, so both
  // are excluded: sweeps run from different queue dirs, with different
  // lease settings, or under different campaign matrices still share
  // cache entries.
  std::istringstream canonical(cfg.canonical());
  std::string filtered, line;
  while (std::getline(canonical, line))
    if (line.rfind("service.", 0) != 0 && line.rfind("campaign.", 0) != 0)
      filtered += line + "\n";
  ArtifactContext ctx;
  ctx.design_hash = design_hash(job);
  ctx.config_hash = fnv1a64(filtered);
  ctx.seed = job.seed;
  ctx.code_version = kCodeVersion;
  return ctx;
}

Floorplan3D build_design(const JobSpec& job, const config::ConfigFile& cfg) {
  TechnologyConfig tech;
  config::apply_technology(cfg, tech);
  if (!job.blocks.empty())
    return benchgen::read_bundle(tech, job.blocks, job.nets, job.pl,
                                 job.power);
  Floorplan3D fp = benchgen::generate(job.benchmark, job.seed);
  // Synthetic benchmarks carry their own geometry; re-apply the config's
  // [technology] keys on top of it so flavor overrides (monolithic vs
  // tsv) reach generated designs too.  With no [technology] keys set,
  // apply_technology overlays every field onto its current value -- an
  // identity -- so plain exploration results are unaffected.
  TechnologyConfig overlaid = fp.tech();
  config::apply_technology(cfg, overlaid);
  fp.tech() = overlaid;
  return fp;
}

WorkReport run_job(const JobSpec& job,
                   const std::filesystem::path& checkpoint_file,
                   const std::filesystem::path& result_file,
                   ResultCache* cache, std::size_t checkpoint_interval) {
  WorkReport report;
  try {
    if (job.is_scenario())
      throw std::runtime_error(
          "scenario jobs require the campaign runner (tsc3d_campaign work)");
    const ArtifactContext ctx = job_context(job);

    if (cache != nullptr) {
      if (std::optional<StoredResult> hit = cache->probe(ctx)) {
        save_result_file(result_file, *hit);
        report.ok = true;
        report.cache_hit = true;
        report.legal = hit->legal;
        report.result_file = result_file;
        return report;
      }
    }

    const config::ConfigFile cfg =
        config::ConfigFile::parse(job.config_text, "<job config>");
    floorplan::FloorplannerOptions opt =
        config::make_floorplanner_options(cfg);
    (void)config::make_service_options(cfg);   // [service] keys are ours
    (void)config::make_campaign_options(cfg);  // [campaign] keys too
    Floorplan3D fp = build_design(job, cfg);
    const auto unused = cfg.unused_keys();
    if (!unused.empty()) {
      std::string msg = "unrecognized config keys:";
      for (const auto& key : unused) msg += " " + key;
      throw std::runtime_error(msg);
    }

    const CheckpointLoad ck = load_checkpoint_file(checkpoint_file, ctx);
    floorplan::ExplorationHooks hooks;
    hooks.checkpoint_interval = checkpoint_interval;
    hooks.save = [&](const floorplan::ExplorationCheckpoint& snapshot) {
      save_checkpoint_file(checkpoint_file, ctx, snapshot);
    };
    if (ck.ok) {
      hooks.resume = &ck.checkpoint;
      report.resumed = true;
      report.resume_note = "resumed from checkpoint";
    } else {
      report.resume_note = ck.reason;  // fresh start, with the why
    }

    Rng rng(job.seed);
    const floorplan::Floorplanner planner(opt);
    const floorplan::FloorplanMetrics metrics = planner.run(fp, rng, hooks);

    const StoredResult result = make_stored_result(ctx, fp, metrics, rng);
    save_result_file(result_file, result);
    if (cache != nullptr) cache->store(result);

    report.ok = true;
    report.sa_moves = metrics.anneal.moves;
    report.legal = metrics.legal;
    report.result_file = result_file;
    return report;
  } catch (const std::exception& e) {
    report.ok = false;
    report.error = e.what();
    return report;
  }
}

std::optional<WorkReport> work_one(JobQueue& queue) {
  std::optional<ClaimedJob> claimed = queue.claim_next();
  if (!claimed) return std::nullopt;

  std::optional<ResultCache> cache;
  if (queue.options().cache) cache.emplace(queue.cache_dir());

  WorkReport report = run_job(
      claimed->spec, queue.checkpoint_path(claimed->id),
      queue.result_path(claimed->id), cache ? &*cache : nullptr,
      queue.options().checkpoint_interval);
  report.id = claimed->id;

  if (report.ok)
    queue.complete(*claimed);
  else
    queue.fail(*claimed, report.error);
  return report;
}

}  // namespace tsc3d::service
