// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Byte-level serialization primitives for the batch exploration
// service's on-disk artifacts (checkpoints, cached results).  The
// encoding is deliberately boring: little-endian fixed-width integers,
// doubles as their IEEE-754 bit patterns (bit_cast, so round-trips are
// bitwise exact -- the resume and cache contracts depend on that), and
// length-prefixed containers.  Readers bounds-check every access and
// throw on truncation; the file-level framing in checkpoint_io /
// result_io adds magic, version and an FNV-1a checksum on top.
#pragma once

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsc3d::service {

/// A scratch name for writing `path` atomically (write tmp, then
/// rename).  Unique per (process, call), so concurrent writers of the
/// SAME destination -- e.g. two scenario jobs caching their shared
/// exploration result -- never clobber each other's half-written tmp;
/// rename(2) then replaces atomically and last-writer-wins over
/// identical bytes.
[[nodiscard]] inline std::filesystem::path unique_tmp_path(
    const std::filesystem::path& path) {
  static std::atomic<unsigned long long> counter{0};
  const unsigned long long n =
      counter.fetch_add(1, std::memory_order_relaxed);
  return path.string() + ".tmp." +
         std::to_string(static_cast<long long>(::getpid())) + "." +
         std::to_string(n);
}

/// FNV-1a 64-bit over a byte range; `seed` chains multiple ranges.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                                           std::uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= kFnvPrime;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a64(const std::string& s,
                                           std::uint64_t seed = kFnvOffset) {
  return fnv1a64(s.data(), s.size(), seed);
}

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (const std::uint64_t x : v) u64(x);
  }

  void vec_size(const std::vector<std::size_t>& v) {
    u64(v.size());
    for (const std::size_t x : v) u64(x);
  }

  void vec_f64(const std::vector<double>& v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return buf_;
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a byte range; throws std::runtime_error on
/// any read past the end (truncated / corrupt artifact).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] bool boolean() { return u8() != 0; }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] std::vector<std::uint64_t> vec_u64() {
    const std::uint64_t n = u64();
    need_elems(n, 8);
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
    return v;
  }

  [[nodiscard]] std::vector<std::size_t> vec_size() {
    const std::vector<std::uint64_t> raw = vec_u64();
    return {raw.begin(), raw.end()};
  }

  [[nodiscard]] std::vector<double> vec_f64() {
    const std::uint64_t n = u64();
    need_elems(n, 8);
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_)
      throw std::runtime_error("ByteReader: truncated artifact");
  }

  // Overflow-safe element-count check: `n * elem_size` can wrap for a
  // hostile length prefix near 2^64, which would sail past need() and
  // then loop essentially forever.  Divide instead of multiply.
  void need_elems(std::uint64_t n, std::uint64_t elem_size) const {
    if (n > (size_ - pos_) / elem_size)
      throw std::runtime_error("ByteReader: truncated artifact");
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace tsc3d::service
