// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Version identity of the batch exploration service's on-disk
// artifacts.
//
//   * kCodeVersion names the RESULT-AFFECTING code revision.  It is part
//     of every artifact's identity: a checkpoint written by a different
//     code version is discarded (clean restart, never a silent mix of
//     two algorithms), and a cached result from one never answers a
//     query for another.  Bump it whenever a change can alter any
//     annealing result bitwise -- move logic, cost terms, RNG use,
//     default options -- and leave it alone for pure refactors, so the
//     cache survives them.
//   * kCheckpointFormatVersion / kResultFormatVersion name the byte
//     LAYOUTS.  Bump on any encoding change; readers reject other
//     versions instead of misparsing them.
#pragma once

namespace tsc3d::service {

// tsc3d-10: thermal.solver defaults to auto (per-role backend selection)
// and cold multigrid solves are FMG-seeded -- verification/sampling
// temperatures, and thus cached results, change within solver accuracy.
inline constexpr const char* kCodeVersion = "tsc3d-10";

inline constexpr unsigned kCheckpointFormatVersion = 1;
inline constexpr unsigned kResultFormatVersion = 1;
inline constexpr unsigned kScenarioFormatVersion = 1;

}  // namespace tsc3d::service
