// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// On-disk encoding of one finished exploration: the Table-2 metrics, the
// final placement (per-module die/position/extents/voltage), the TSV
// list and the final RNG stream position, all under the producing
// ArtifactContext.  Everything stored is a deterministic function of the
// context -- wall-clock runtime is deliberately NOT stored -- so two
// runs of the same job produce byte-identical files, and the resume and
// cache tests compare result files bitwise.
//
// File layout mirrors checkpoint_io: magic "TSC3DRES", u64 format
// version, u64 payload size, u64 FNV-1a checksum, payload.  Loading is
// fail-soft the same way: any defect is a miss with a reason, never an
// exception or a wrong result.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/floorplan.hpp"
#include "core/rng.hpp"
#include "floorplan/floorplanner.hpp"
#include "service/checkpoint_io.hpp"

namespace tsc3d::service {

/// One module's final placement.
struct PlacedModule {
  std::uint64_t die = 0;
  double x = 0.0, y = 0.0, w = 0.0, h = 0.0;
  std::uint64_t voltage_index = 0;

  [[nodiscard]] bool operator==(const PlacedModule&) const = default;
};

/// One TSV island.
struct StoredTsv {
  double x = 0.0, y = 0.0;
  std::uint64_t count = 0;
  std::uint64_t kind = 0;  ///< TsvKind as integer
  std::uint64_t net = 0;

  [[nodiscard]] bool operator==(const StoredTsv&) const = default;
};

/// The deterministic outcome of one exploration.
struct StoredResult {
  ArtifactContext context;
  bool legal = false;
  std::vector<double> correlation;
  std::vector<double> entropy;
  double power_w = 0.0;
  double critical_delay_ns = 0.0;
  double wirelength_m = 0.0;
  double peak_k = 0.0;
  std::uint64_t signal_tsvs = 0;
  std::uint64_t dummy_tsvs = 0;
  std::uint64_t voltage_volumes = 0;
  double clock_period_ns = 0.0;  ///< auto-derived timing budget
  std::vector<PlacedModule> placement;
  std::vector<StoredTsv> tsvs;
  Rng::State final_rng;  ///< flow RNG position after the full run

  [[nodiscard]] bool operator==(const StoredResult&) const = default;
};

/// Assemble a StoredResult from a finished run.
[[nodiscard]] StoredResult make_stored_result(
    const ArtifactContext& context, const Floorplan3D& fp,
    const floorplan::FloorplanMetrics& metrics, const Rng& rng);

/// Write atomically (temp + rename); throws std::runtime_error on I/O
/// failure.
void save_result_file(const std::filesystem::path& path,
                      const StoredResult& result);

struct ResultLoad {
  bool ok = false;
  std::string reason;
  StoredResult result;
};

/// Load + validate framing and (when `expect` is non-null) the stored
/// context; defects are clean misses.
[[nodiscard]] ResultLoad load_result_file(const std::filesystem::path& path,
                                          const ArtifactContext* expect);

}  // namespace tsc3d::service
