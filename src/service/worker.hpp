// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// The batch worker: drains a JobQueue one job at a time.  For each
// claimed job it
//
//   1. derives the ArtifactContext (design hash, canonical-config hash,
//      seed, code version),
//   2. probes the result cache -- a hit completes the job with ZERO
//      annealing moves and the exact stored bytes,
//   3. probes checkpoints/<id>.ckp -- a valid checkpoint resumes the
//      anneal mid-flight; a defective or mismatched one is discarded
//      with its reason and the run starts fresh,
//   4. runs the flow with checkpoint hooks (a snapshot lands on disk
//      every service.checkpoint_interval stages, atomically),
//   5. stores the result (results/<id>.res + cache) and completes.
//
// Because the flow is deterministic and checkpoints capture the complete
// annealing state, a worker SIGKILLed at any point produces -- after
// resume by any worker -- a result file byte-identical to an
// uninterrupted run's.
#pragma once

#include <cstdint>
#include <string>

#include "config/config_file.hpp"
#include "core/floorplan.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "service/result_io.hpp"

namespace tsc3d::service {

/// Content hash of the job's design source: the (benchmark, seed) name
/// for synthetic designs, or the concatenated bytes of the GSRC files
/// for file-based ones.  Any edit to an input file changes the hash.
[[nodiscard]] std::uint64_t design_hash(const JobSpec& job);

/// The full artifact identity of a job under the current code version.
[[nodiscard]] ArtifactContext job_context(const JobSpec& job);

/// Materialize the job's design with the config's [technology] overlay
/// applied: synthetic benchmarks are generated from (name, seed) and
/// then re-flavored (a config with no [technology] keys leaves them
/// untouched), GSRC bundles are read against the overlaid tech.  Both
/// run_job and the campaign runner build designs through this one
/// function, so an exploration and the scenario layered on top of it
/// always agree on the floorplan they are talking about.
[[nodiscard]] Floorplan3D build_design(const JobSpec& job,
                                       const config::ConfigFile& cfg);

/// What happened to one job.
struct WorkReport {
  std::string id;
  bool ok = false;
  bool cache_hit = false;
  bool resumed = false;
  std::string resume_note;  ///< why a checkpoint was (not) used
  std::uint64_t sa_moves = 0;
  bool legal = false;
  std::filesystem::path result_file;
  std::string error;  ///< set when ok == false
};

/// Run one job to completion (no queue involved): the core of the
/// worker, exposed for tests.  `checkpoint_file` may already hold a
/// checkpoint to resume from; new checkpoints land there.
[[nodiscard]] WorkReport run_job(const JobSpec& job,
                                 const std::filesystem::path& checkpoint_file,
                                 const std::filesystem::path& result_file,
                                 ResultCache* cache,
                                 std::size_t checkpoint_interval);

/// Claim and run the next available job.  Returns std::nullopt when the
/// queue has nothing claimable.  Failures are recorded via
/// JobQueue::fail and reported with ok == false.
[[nodiscard]] std::optional<WorkReport> work_one(JobQueue& queue);

}  // namespace tsc3d::service
