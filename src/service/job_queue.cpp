#include "service/job_queue.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "service/serialize.hpp"

namespace tsc3d::service {

namespace {

constexpr const char* kJobHeader = "tsc3d-job v1";

void write_text_atomic(const std::filesystem::path& path,
                       const std::string& text) {
  const std::filesystem::path tmp = service::unique_tmp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("job queue: cannot write " + tmp.string());
    out << text;
    out.flush();
    if (!out)
      throw std::runtime_error("job queue: write failed on " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

std::string read_text(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("job queue: cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_entries(const std::filesystem::path& dir,
                          const std::string& ext) {
  std::size_t n = 0;
  if (!std::filesystem::exists(dir)) return 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.is_regular_file() && e.path().extension() == ext) ++n;
  return n;
}

double claim_age_s(const std::filesystem::path& claim) {
  const auto mtime = std::filesystem::last_write_time(claim);
  const auto now = std::filesystem::file_time_type::clock::now();
  return std::chrono::duration<double>(now - mtime).count();
}

}  // namespace

std::string format_job(const JobSpec& job) {
  std::ostringstream out;
  out << kJobHeader << "\n";
  if (!job.benchmark.empty()) out << "benchmark " << job.benchmark << "\n";
  if (!job.blocks.empty()) out << "blocks " << job.blocks << "\n";
  if (!job.nets.empty()) out << "nets " << job.nets << "\n";
  if (!job.pl.empty()) out << "pl " << job.pl << "\n";
  if (!job.power.empty()) out << "power " << job.power << "\n";
  if (!job.scenario.empty()) out << "scenario " << job.scenario << "\n";
  if (!job.mitigation.empty()) out << "mitigation " << job.mitigation << "\n";
  if (!job.flavor.empty()) out << "flavor " << job.flavor << "\n";
  out << "seed " << job.seed << "\n";
  out << "config-begin\n" << job.config_text;
  if (!job.config_text.empty() && job.config_text.back() != '\n') out << "\n";
  out << "config-end\n";
  return out.str();
}

JobSpec parse_job(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kJobHeader)
    throw std::runtime_error("job file: missing 'tsc3d-job v1' header");
  JobSpec job;
  bool in_config = false, saw_config_end = false;
  std::ostringstream config;
  while (std::getline(in, line)) {
    if (in_config) {
      if (line == "config-end") {
        in_config = false;
        saw_config_end = true;
        continue;
      }
      config << line << "\n";
      continue;
    }
    if (line.empty()) continue;
    if (line == "config-begin") {
      in_config = true;
      continue;
    }
    const auto sp = line.find(' ');
    const std::string key = line.substr(0, sp);
    const std::string val = sp == std::string::npos ? "" : line.substr(sp + 1);
    if (key == "benchmark") job.benchmark = val;
    else if (key == "blocks") job.blocks = val;
    else if (key == "nets") job.nets = val;
    else if (key == "pl") job.pl = val;
    else if (key == "power") job.power = val;
    else if (key == "scenario") job.scenario = val;
    else if (key == "mitigation") job.mitigation = val;
    else if (key == "flavor") job.flavor = val;
    else if (key == "seed") job.seed = std::stoull(val);
    else
      throw std::runtime_error("job file: unknown key '" + key + "'");
  }
  if (in_config || (!saw_config_end && !config.str().empty()))
    throw std::runtime_error("job file: unterminated config block");
  job.config_text = config.str();
  if (job.benchmark.empty() && job.blocks.empty())
    throw std::runtime_error("job file: needs a benchmark or a blocks file");
  return job;
}

std::string job_id(const JobSpec& job) {
  const std::string text = format_job(job);
  const std::uint64_t digest = fnv1a64(text);
  std::ostringstream hex;
  hex << std::hex << std::setw(16) << std::setfill('0') << digest;
  return hex.str();
}

JobQueue::JobQueue(ServiceOptions opt) : opt_(std::move(opt)) {
  if (opt_.queue_dir.empty())
    throw std::invalid_argument("JobQueue: queue_dir must not be empty");
  root_ = opt_.queue_dir;
  for (const char* sub :
       {"jobs", "claims", "checkpoints", "results", "done", "failed"})
    std::filesystem::create_directories(root_ / sub);
  std::filesystem::create_directories(cache_dir());
}

std::filesystem::path JobQueue::cache_dir() const {
  return opt_.cache_dir.empty() ? root_ / "cache"
                                : std::filesystem::path(opt_.cache_dir);
}

std::string JobQueue::enqueue(const JobSpec& job) {
  const std::string id = job_id(job);
  const std::filesystem::path pending = root_ / "jobs" / (id + ".job");
  const std::filesystem::path finished = root_ / "done" / (id + ".job");
  if (std::filesystem::exists(pending) || std::filesystem::exists(finished))
    return id;
  write_text_atomic(pending, format_job(job));
  return id;
}

std::optional<ClaimedJob> JobQueue::claim_next() {
  std::vector<std::filesystem::path> pending;
  for (const auto& e : std::filesystem::directory_iterator(root_ / "jobs"))
    if (e.is_regular_file() && e.path().extension() == ".job")
      pending.push_back(e.path());
  std::sort(pending.begin(), pending.end());

  for (const auto& job_file : pending) {
    const std::string id = job_file.stem().string();
    const std::filesystem::path claim =
        root_ / "claims" / (id + ".claim");

    if (std::filesystem::exists(claim)) {
      // A live worker holds the lease; reclaim only once it goes stale.
      if (claim_age_s(claim) <= opt_.claim_lease_s) continue;
      std::error_code ec;
      std::filesystem::remove(claim, ec);  // race-tolerant: loser moves on
    }

    // O_CREAT | O_EXCL: exactly one contender wins the claim file.
    const int fd = ::open(claim.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) continue;  // somebody else won the race
    const std::string note = "pid " + std::to_string(::getpid()) + "\n";
    (void)!::write(fd, note.data(), note.size());
    ::close(fd);

    // The job may have completed between listing and claiming.
    if (!std::filesystem::exists(job_file)) {
      std::error_code ec;
      std::filesystem::remove(claim, ec);
      continue;
    }

    ClaimedJob claimed;
    claimed.id = id;
    claimed.spec = parse_job(read_text(job_file));
    claimed.job_file = job_file;
    claimed.claim_file = claim;
    return claimed;
  }
  return std::nullopt;
}

void JobQueue::complete(const ClaimedJob& job) {
  std::filesystem::rename(job.job_file, root_ / "done" / (job.id + ".job"));
  std::error_code ec;
  std::filesystem::remove(checkpoint_path(job.id), ec);
  std::filesystem::remove(job.claim_file, ec);
}

void JobQueue::fail(const ClaimedJob& job, const std::string& reason) {
  write_text_atomic(root_ / "failed" / (job.id + ".reason"), reason + "\n");
  std::filesystem::rename(job.job_file, root_ / "failed" / (job.id + ".job"));
  std::error_code ec;
  std::filesystem::remove(checkpoint_path(job.id), ec);
  std::filesystem::remove(job.claim_file, ec);
}

void JobQueue::release(const ClaimedJob& job) {
  std::error_code ec;
  std::filesystem::remove(job.claim_file, ec);
}

std::filesystem::path JobQueue::checkpoint_path(const std::string& id) const {
  return root_ / "checkpoints" / (id + ".ckp");
}

std::filesystem::path JobQueue::result_path(const std::string& id) const {
  return root_ / "results" / (id + ".res");
}

QueueStatus JobQueue::status() const {
  QueueStatus s;
  s.pending = count_entries(root_ / "jobs", ".job");
  s.claimed = count_entries(root_ / "claims", ".claim");
  s.done = count_entries(root_ / "done", ".job");
  s.failed = count_entries(root_ / "failed", ".job");
  s.checkpoints = count_entries(root_ / "checkpoints", ".ckp");
  s.cached = count_entries(cache_dir(), ".res");
  return s;
}

}  // namespace tsc3d::service
