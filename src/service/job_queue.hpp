// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Durable on-disk job queue for batch design-space exploration.  A queue
// is a directory tree:
//
//   <queue>/jobs/<id>.job          pending work (one text file per job)
//   <queue>/claims/<id>.claim      lease held by a live worker
//   <queue>/checkpoints/<id>.ckp   latest annealing checkpoint
//   <queue>/results/<id>.res       finished StoredResult
//   <queue>/done/<id>.job          job file after successful completion
//   <queue>/failed/<id>.job        job file after a non-retryable error
//   <queue>/cache/<key>.res        content-addressed result cache
//
// The job id is the hex FNV-1a digest of the job file's canonical text,
// so re-enqueueing the same work is idempotent.  Claiming uses
// open(O_CREAT | O_EXCL) on the claim file -- atomic on POSIX -- so two
// workers never run the same job concurrently.  A claim older than the
// lease is presumed orphaned (worker crashed) and may be re-claimed;
// because results are a deterministic function of the job, duplicated
// work after a botched lease is wasted effort, never a wrong answer.
//
// Format and failure semantics are documented for operators in
// docs/JOBS.md.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "service/options.hpp"

namespace tsc3d::service {

/// One unit of work: a design reference, a seed, and the full config
/// text governing the run.  Designs are either a named synthetic
/// benchmark (Table 1) or a GSRC bookshelf bundle referenced by path.
struct JobSpec {
  std::string benchmark;               ///< empty when files are given
  std::string blocks, nets, pl, power; ///< GSRC bundle paths
  std::uint64_t seed = 1;
  std::string config_text;             ///< verbatim Corblivar-style config

  // Campaign scenario annotations (docs/CAMPAIGNS.md).  All three are
  // empty for a plain exploration job -- and empty fields are omitted
  // from the canonical text, so pre-campaign job ids are unchanged.  A
  // non-empty `scenario` marks a ScenarioJob: the same (design, config,
  // seed) exploration plus an attack/mitigation evaluation on top.
  std::string scenario;    ///< attack kind, e.g. "localization"
  std::string mitigation;  ///< "none" | "dtm" | "noise_injection"
  std::string flavor;      ///< "power_aware" | "tsc_secure" | "monolithic"

  [[nodiscard]] bool is_scenario() const { return !scenario.empty(); }

  [[nodiscard]] bool operator==(const JobSpec&) const = default;
};

/// Render the canonical "tsc3d-job v1" text form (what enqueue writes).
[[nodiscard]] std::string format_job(const JobSpec& job);

/// Parse the text form; throws std::runtime_error on malformed input.
[[nodiscard]] JobSpec parse_job(const std::string& text);

/// The job id: hex FNV-1a 64 digest of the canonical job text.
[[nodiscard]] std::string job_id(const JobSpec& job);

/// A claimed job handed to a worker.
struct ClaimedJob {
  std::string id;
  JobSpec spec;
  std::filesystem::path job_file;    ///< jobs/<id>.job
  std::filesystem::path claim_file;  ///< claims/<id>.claim
};

/// Queue occupancy counts for `tsc3d_batch status`.
struct QueueStatus {
  std::size_t pending = 0;
  std::size_t claimed = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t checkpoints = 0;
  std::size_t cached = 0;
};

class JobQueue {
 public:
  /// Opens (creating directories as needed) the queue at opt.queue_dir.
  explicit JobQueue(ServiceOptions opt);

  [[nodiscard]] const ServiceOptions& options() const { return opt_; }
  [[nodiscard]] const std::filesystem::path& root() const { return root_; }
  [[nodiscard]] std::filesystem::path cache_dir() const;

  /// Write the job durably; returns its id.  Idempotent: enqueueing a
  /// job that is already pending, claimed, or done is a no-op.
  std::string enqueue(const JobSpec& job);

  /// Claim the lexicographically first unclaimed pending job, or a job
  /// whose claim is older than options().claim_lease_s (orphaned).
  /// Returns std::nullopt when nothing is claimable.
  [[nodiscard]] std::optional<ClaimedJob> claim_next();

  /// Mark a claimed job finished: moves jobs/<id>.job to done/, removes
  /// the checkpoint and the claim.
  void complete(const ClaimedJob& job);

  /// Mark a claimed job failed: moves the job file to failed/ alongside
  /// a .reason sidecar, removes the checkpoint and the claim.
  void fail(const ClaimedJob& job, const std::string& reason);

  /// Release a claim without finishing (worker shutting down cleanly);
  /// the job stays pending and its checkpoint stays for the next worker.
  void release(const ClaimedJob& job);

  /// Path where job `id` checkpoints (checkpoints/<id>.ckp).
  [[nodiscard]] std::filesystem::path checkpoint_path(
      const std::string& id) const;

  /// Path of job `id`'s result file (results/<id>.res).
  [[nodiscard]] std::filesystem::path result_path(
      const std::string& id) const;

  [[nodiscard]] QueueStatus status() const;

 private:
  ServiceOptions opt_;
  std::filesystem::path root_;
};

}  // namespace tsc3d::service
