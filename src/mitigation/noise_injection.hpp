// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// The competing mitigation the paper argues against: runtime dummy-
// activity injection, after Gu et al. [18].  Their controllers "inject
// dummy activities when-/wherever considered necessary and, hence, aim
// for smooth thermal profiles to hinder thermal profiling of module
// activities."  The paper's critique (Sec. 1):
//
//   (a) the injection principle causes further power dissipation, which
//       may be prohibitive for thermal- and power-constrained 3D ICs;
//   (b) "the best leakage-mitigation rates are only achievable for the
//       highest injection rates."
//
// We implement the baseline faithfully so that critique can be measured:
// a greedy controller distributes a dummy-power budget over injector
// sites placed in the coolest regions of each die, iteratively
// re-solving the steady state and filling the deepest thermal valleys --
// the water-filling strategy an ideal smoothing controller converges to.
// bench/baseline_injection sweeps the budget and reports correlation vs
// power overhead vs peak temperature, next to the floorplanning-based
// mitigation's design point.
#pragma once

#include <cstddef>
#include <vector>

#include "core/floorplan.hpp"
#include "core/grid.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::mitigation {

struct InjectionOptions {
  /// Dummy-power budget as a fraction of the design's nominal power
  /// (Gu et al.'s "injection rate").
  double budget_fraction = 0.10;
  /// Injector sites available per die (thermal-noise generators are
  /// physical blocks; their number is bounded).
  std::size_t sites_per_die = 16;
  /// Controller iterations: each iteration re-solves the steady state
  /// and tops up the coolest sites.
  std::size_t iterations = 6;
  /// Fraction of the remaining budget spent per iteration.
  double spend_fraction = 0.5;
  /// Stop (and roll back the last batch) once an iteration makes the
  /// mean thermal roughness WORSE -- over-filling few sites mints new
  /// hotspots.  Mirrors the sweet-spot stop criterion the paper uses for
  /// dummy-TSV insertion (Sec. 6.2).  Disable to model a naive
  /// controller that blindly burns its whole budget.
  bool stop_at_sweet_spot = true;
};

/// Outcome of one injection campaign on one activity pattern.
struct InjectionResult {
  /// Dummy power added per die, as a map aligned with the solver grid.
  std::vector<GridD> injected_power_w;
  double power_overhead_w = 0.0;   ///< total dummy power spent
  double peak_k_before = 0.0;
  double peak_k_after = 0.0;
  /// Per-die Eq. 1 correlation of the TRUE power map with the thermal
  /// map, before and after injection.  (The attacker wants the true
  /// activity; dummy power is noise to them.)  NOTE: on hotspot-dominated
  /// designs this may RISE under injection -- flattening the cool
  /// background makes the thermal map's shape MORE like the power map's.
  /// Gu et al.'s actual objective is profile smoothness (roughness below)
  /// and activity indistinguishability, which injection does improve;
  /// bench/baseline_injection measures all three.
  std::vector<double> correlation_before;
  std::vector<double> correlation_after;
  /// Per-die thermal roughness (stddev of the map [K]) -- the quantity
  /// the smoothing controller actually minimizes.
  std::vector<double> roughness_before;
  std::vector<double> roughness_after;
};

/// Run the smoothing controller on the floorplan's nominal activity.
/// `module_power_w` optionally supplies one activity sample (as in the
/// stability campaigns); nominal effective power is used otherwise.
/// The controller's iterative re-solves share the engine's cached
/// conductance network and warm-start from each other.
[[nodiscard]] InjectionResult run_noise_injection(
    const Floorplan3D& fp, thermal::ThermalEngine& engine,
    const InjectionOptions& options = {},
    const std::vector<double>* module_power_w = nullptr);

/// Compatibility overload for GridSolver holders; runs on the solver's
/// underlying engine.
[[nodiscard]] InjectionResult run_noise_injection(
    const Floorplan3D& fp, const thermal::GridSolver& solver,
    const InjectionOptions& options = {},
    const std::vector<double>* module_power_w = nullptr);

/// Thermal-profile smoothness: standard deviation of the map [K].  The
/// quantity Gu et al.'s controllers minimize.
[[nodiscard]] double thermal_roughness(const GridD& thermal);

}  // namespace tsc3d::mitigation
