#include "mitigation/noise_injection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "leakage/pearson.hpp"

namespace tsc3d::mitigation {

double thermal_roughness(const GridD& thermal) {
  const double mean = thermal.mean();
  double acc = 0.0;
  for (double v : thermal) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(thermal.size()));
}

namespace {

/// Pick the `sites` coolest bin indices of a thermal map.
std::vector<std::size_t> coolest_bins(const GridD& thermal,
                                      std::size_t sites) {
  std::vector<std::size_t> order(thermal.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  sites = std::min(sites, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(sites),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return thermal[a] < thermal[b];
                    });
  order.resize(sites);
  return order;
}

}  // namespace

InjectionResult run_noise_injection(const Floorplan3D& fp,
                                    thermal::ThermalEngine& engine,
                                    const InjectionOptions& options,
                                    const std::vector<double>* module_power_w) {
  if (options.budget_fraction < 0.0)
    throw std::invalid_argument("run_noise_injection: negative budget");
  if (options.spend_fraction <= 0.0 || options.spend_fraction > 1.0)
    throw std::invalid_argument(
        "run_noise_injection: spend_fraction must be in (0, 1]");
  if (options.sites_per_die == 0)
    throw std::invalid_argument("run_noise_injection: no injector sites");

  const std::size_t nx = engine.nx(), ny = engine.ny();
  const std::size_t dies = fp.tech().num_dies;
  const GridD tsv_density = fp.tsv_density_map(nx, ny);

  // True activity: what the attacker wants to recover.
  std::vector<GridD> true_power;
  true_power.reserve(dies);
  double nominal_total = 0.0;
  for (std::size_t d = 0; d < dies; ++d) {
    true_power.push_back(fp.power_map(d, nx, ny, module_power_w));
    nominal_total += true_power.back().sum();
  }

  InjectionResult result;
  result.injected_power_w.assign(dies, GridD(nx, ny, 0.0));

  // Baseline solve: correlations the attacker enjoys without mitigation.
  auto thermal_res = engine.solve_steady(true_power, tsv_density);
  result.peak_k_before = thermal_res.peak_k;
  for (std::size_t d = 0; d < dies; ++d) {
    result.correlation_before.push_back(
        leakage::pearson(true_power[d], thermal_res.die_temperature[d]));
    result.roughness_before.push_back(
        thermal_roughness(thermal_res.die_temperature[d]));
  }

  // Water-filling controller: per iteration, spend part of the remaining
  // budget on the coolest injector sites of each die, proportional to
  // their depth below the die's mean temperature.  Over-filling a few
  // sites mints new hotspots, so (by default) an iteration that worsens
  // the mean roughness is rolled back and the controller stops -- the
  // injection analogue of the paper's dummy-TSV sweet spot (Sec. 6.2).
  double budget = options.budget_fraction * nominal_total;
  std::vector<GridD> total_power = true_power;
  const auto mean_roughness = [&](const thermal::ThermalResult& res) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dies; ++d)
      acc += thermal_roughness(res.die_temperature[d]);
    return acc / static_cast<double>(dies);
  };
  double roughness = mean_roughness(thermal_res);
  for (std::size_t it = 0; it < options.iterations && budget > 1e-12; ++it) {
    const double spend_total = budget * options.spend_fraction;
    const double spend_per_die = spend_total / static_cast<double>(dies);
    // Remember this batch so a worsening step can be rolled back.
    std::vector<std::pair<std::pair<std::size_t, std::size_t>, double>> batch;
    for (std::size_t d = 0; d < dies; ++d) {
      const GridD& t = thermal_res.die_temperature[d];
      const auto sites = coolest_bins(t, options.sites_per_die);
      const double mean = t.mean();
      double depth_sum = 0.0;
      for (const auto i : sites) depth_sum += std::max(mean - t[i], 0.0);
      for (const auto i : sites) {
        const double share =
            depth_sum > 0.0
                ? std::max(mean - t[i], 0.0) / depth_sum
                : 1.0 / static_cast<double>(sites.size());
        const double dp = spend_per_die * share;
        result.injected_power_w[d][i] += dp;
        total_power[d][i] += dp;
        batch.push_back({{d, i}, dp});
      }
    }
    auto next_res = engine.solve_steady(total_power, tsv_density);
    const double next_roughness = mean_roughness(next_res);
    if (options.stop_at_sweet_spot && next_roughness > roughness) {
      for (const auto& [site, dp] : batch) {
        result.injected_power_w[site.first][site.second] -= dp;
        total_power[site.first][site.second] -= dp;
      }
      break;
    }
    budget -= spend_total;
    result.power_overhead_w += spend_total;
    thermal_res = std::move(next_res);
    roughness = next_roughness;
  }

  result.peak_k_after = thermal_res.peak_k;
  for (std::size_t d = 0; d < dies; ++d) {
    result.correlation_after.push_back(
        leakage::pearson(true_power[d], thermal_res.die_temperature[d]));
    result.roughness_after.push_back(
        thermal_roughness(thermal_res.die_temperature[d]));
  }
  return result;
}

InjectionResult run_noise_injection(const Floorplan3D& fp,
                                    const thermal::GridSolver& solver,
                                    const InjectionOptions& options,
                                    const std::vector<double>* module_power_w) {
  return run_noise_injection(fp, solver.engine(), options, module_power_w);
}

}  // namespace tsc3d::mitigation
