#include "mitigation/dtm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tsc3d::mitigation {

ScalarKalman::ScalarKalman(double initial_k, double process_var,
                           double measurement_var)
    : x_(initial_k), q_(process_var), r_(measurement_var) {
  if (process_var < 0.0 || measurement_var < 0.0)
    throw std::invalid_argument("ScalarKalman: negative variance");
}

void ScalarKalman::predict() { p_ += q_; }

void ScalarKalman::update(double z_k) {
  // With r == 0 the reading is exact: adopt it outright.
  if (r_ == 0.0) {
    x_ = z_k;
    p_ = 0.0;
    return;
  }
  const double k = p_ / (p_ + r_);
  x_ += k * (z_k - x_);
  p_ *= (1.0 - k);
}

RampKalman::RampKalman(double initial_k, double temp_process_var,
                       double slope_process_var, double measurement_var)
    : x_(initial_k),
      qx_(temp_process_var),
      qv_(slope_process_var),
      r_(measurement_var) {
  if (temp_process_var < 0.0 || slope_process_var < 0.0 ||
      measurement_var < 0.0)
    throw std::invalid_argument("RampKalman: negative variance");
}

void RampKalman::predict() {
  // F = [[1, 1], [0, 1]]: x += v per control period.
  x_ += v_;
  const double p00 = p00_ + 2.0 * p01_ + p11_ + qx_;
  const double p01 = p01_ + p11_;
  const double p11 = p11_ + qv_;
  p00_ = p00;
  p01_ = p01;
  p11_ = p11;
}

void RampKalman::update(double z_k) {
  if (!initialized_) {
    // Track-initiation: adopt the first reading as the level (a cold
    // simulation start is a step the constant-velocity model would
    // otherwise convert into a huge phantom slope).
    initialized_ = true;
    x_ = z_k;
    v_ = 0.0;
    p00_ = r_ > 0.0 ? r_ : 0.0;
    p01_ = 0.0;
    return;
  }
  if (r_ == 0.0) {
    // Exact reading: adopt the level, learn the slope from the jump.
    v_ += 0.5 * (z_k - x_);
    x_ = z_k;
    p00_ = p01_ = 0.0;
    return;
  }
  const double s = p00_ + r_;
  const double k0 = p00_ / s;
  const double k1 = p01_ / s;
  const double innovation = z_k - x_;
  x_ += k0 * innovation;
  v_ += k1 * innovation;
  const double p00 = (1.0 - k0) * p00_;
  const double p01 = (1.0 - k0) * p01_;
  const double p11 = p11_ - k1 * p01_;
  p00_ = p00;
  p01_ = p01;
  p11_ = p11;
}

std::vector<bool> throttleable_modules(const Floorplan3D& fp,
                                       const DtmOptions& options) {
  // Hottest modules first (by nominal power density).
  std::vector<std::size_t> order(fp.modules().size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fp.modules()[a].power_density() > fp.modules()[b].power_density();
  });
  const auto throttled_count = static_cast<std::size_t>(
      options.throttled_fraction * static_cast<double>(order.size()) + 0.5);
  std::vector<bool> throttleable(fp.modules().size(), false);
  for (std::size_t i = 0; i < std::min(throttled_count, order.size()); ++i)
    throttleable[order[i]] = true;
  return throttleable;
}

DtmResult run_dtm(const Floorplan3D& fp, thermal::ThermalEngine& engine,
                  double duration_s, double dt_s, Rng& rng,
                  const DtmOptions& options, DtmCheckpoint* checkpoint) {
  if (duration_s <= 0.0 || dt_s <= 0.0)
    throw std::invalid_argument("run_dtm: non-positive time");
  if (options.control_period_s < dt_s)
    throw std::invalid_argument("run_dtm: control period below dt");
  if (options.throttle_scale <= 0.0 || options.throttle_scale > 1.0)
    throw std::invalid_argument("run_dtm: throttle_scale out of (0, 1]");
  if (options.release_k > options.trigger_k)
    throw std::invalid_argument("run_dtm: release above trigger");

  const std::size_t nx = engine.nx(), ny = engine.ny();
  const double ambient_k = engine.config().ambient_k;
  const std::size_t dies = fp.tech().num_dies;
  const GridD tsv_density = fp.tsv_density_map(nx, ny);

  const std::vector<bool> throttleable = throttleable_modules(fp, options);

  std::vector<double> nominal(fp.modules().size());
  for (std::size_t i = 0; i < nominal.size(); ++i)
    nominal[i] = fp.effective_power(i);

  // Controller state, mutated by the feedback callback.
  RampKalman filter(ambient_k, options.kalman_process_var,
                    options.kalman_slope_var,
                    options.sensor_noise_k * options.sensor_noise_k);
  bool throttled = false;
  double next_control_s = 0.0;
  double prev_estimate_k = 0.0;
  bool have_prev_estimate = false;
  DtmResult result;
  double rmse_acc = 0.0;
  std::size_t rmse_n = 0;
  /// Throttle state in effect during each step, for the post-hoc time
  /// accounting below.
  std::vector<bool> step_throttled;
  step_throttled.reserve(static_cast<std::size_t>(duration_s / dt_s) + 2);

  const auto power_at = [&](double time_s,
                            const std::vector<GridD>& die_temp_prev) {
    // Peak over all dies of the state the sensor can observe at this
    // instant (the field the previous step produced).
    double observed_peak = ambient_k;
    for (const auto& map : die_temp_prev)
      observed_peak = std::max(observed_peak, map.max());

    if (time_s >= next_control_s) {
      // Advance the control clock until it is strictly ahead of the
      // simulation clock.  The single `+= period` of the old code fell
      // permanently behind once a step overshot a period boundary (e.g.
      // dt close to the period), silently turning the controller into a
      // read-every-step one.
      while (next_control_s <= time_s)
        next_control_s += options.control_period_s;
      ++result.sensor_reads;
      // Noisy sensor read of the observed peak.
      const double reading =
          observed_peak + rng.gaussian(0.0, options.sensor_noise_k);
      double estimate;
      double decision_value;
      if (options.use_kalman) {
        filter.predict();
        filter.update(reading);
        estimate = filter.state_k();
        // Proactive lead straight from the filter's slope state [14].
        decision_value = options.lookahead_periods > 0.0
                             ? filter.extrapolate(options.lookahead_periods)
                             : estimate;
      } else {
        estimate = reading;
        decision_value = estimate;
        // Raw mode: finite-difference extrapolation of the readings.
        if (options.lookahead_periods > 0.0 && have_prev_estimate)
          decision_value +=
              options.lookahead_periods * (estimate - prev_estimate_k);
      }
      rmse_acc += (estimate - observed_peak) * (estimate - observed_peak);
      ++rmse_n;
      prev_estimate_k = estimate;
      have_prev_estimate = true;

      const bool was_throttled = throttled;
      if (!throttled && decision_value > options.trigger_k) throttled = true;
      if (throttled && decision_value < options.release_k) throttled = false;
      if (was_throttled != throttled) ++result.control_actions;
    }
    step_throttled.push_back(throttled);

    std::vector<double> power = nominal;
    if (throttled)
      for (std::size_t i = 0; i < power.size(); ++i)
        if (throttleable[i]) power[i] *= options.throttle_scale;
    std::vector<GridD> maps;
    maps.reserve(dies);
    for (std::size_t d = 0; d < dies; ++d)
      maps.push_back(fp.power_map(d, nx, ny, &power));
    return maps;
  };

  // --- step 1 (t = 0+), checkpointable ---------------------------------
  // The first step's controller decision is computed up front (same RNG
  // draws and filter updates as the in-solve callback would make), so a
  // checkpointed field can stand in for the solve itself whenever the
  // decision -- and therefore the step-1 power -- matches bitwise.
  const auto total_steps =
      static_cast<std::size_t>(std::ceil(duration_s / dt_s));
  const std::vector<GridD> ambient_maps(dies, GridD(nx, ny, ambient_k));
  const std::vector<GridD> first_power = power_at(dt_s, ambient_maps);

  thermal::TransientSample first_sample;
  bool first_converged = true;
  if (checkpoint != nullptr && checkpoint->valid &&
      checkpoint->dt_s == dt_s && checkpoint->ambient_k == ambient_k &&
      checkpoint->nx == nx && checkpoint->ny == ny &&
      checkpoint->tsv == tsv_density.data() &&
      checkpoint->first_power == first_power) {
    engine.restore_field(checkpoint->field);
    first_sample = checkpoint->first_sample;
    first_converged = checkpoint->first_step_converged;
    result.checkpoint_reused = true;
  } else {
    const auto first_cb = [&](double, const std::vector<GridD>&) {
      return first_power;  // decision already made; do not redraw RNG
    };
    const thermal::TransientResult sim1 = engine.solve_transient_feedback(
        first_cb, tsv_density, dt_s, dt_s, /*record_stride=*/1);
    first_sample = sim1.trace.front();
    first_converged = sim1.unconverged_steps == 0;
    if (checkpoint != nullptr) {
      checkpoint->valid = true;
      checkpoint->dt_s = dt_s;
      checkpoint->ambient_k = ambient_k;
      checkpoint->nx = nx;
      checkpoint->ny = ny;
      checkpoint->tsv = tsv_density.data();
      checkpoint->first_power = first_power;
      checkpoint->field = engine.save_field();
      checkpoint->first_sample = first_sample;
      checkpoint->first_step_converged = first_converged;
      result.checkpoint_captured = true;
    }
  }

  // --- steps 2..N: continuation from the step-1 field ------------------
  // A warm transient recomputes the same implicit-Euler system and steps
  // from the installed field, so splitting the run is bitwise-identical
  // to the single solve_transient_feedback call it replaces -- including
  // the controller's time arithmetic: the callback reconstructs each
  // global timestamp as the same (step + 1) * dt_s product the monolithic
  // run computed (adding dt_s to the engine's relative time can be 1 ulp
  // off and shift a control read), and the continuation's step count is
  // pinned to exactly total_steps - 1 by asking for a mid-step t_end
  // (ceil() of a near-integer quotient could otherwise round a step up).
  thermal::TransientResult sim;
  if (total_steps > 1) {
    std::size_t cont_step = 0;  // continuation steps completed so far
    const auto rest_cb = [&](double /*time_s*/,
                             const std::vector<GridD>& die_temp_prev) {
      ++cont_step;
      return power_at(static_cast<double>(cont_step + 1) * dt_s,
                      die_temp_prev);
    };
    const double cont_end_s =
        (static_cast<double>(total_steps - 1) - 0.5) * dt_s;
    sim = engine.solve_transient_feedback(
        rest_cb, tsv_density, cont_end_s, dt_s, /*record_stride=*/1,
        thermal::ThermalEngine::Start::warm);
  }
  result.thermal_converged = first_converged && sim.unconverged_steps == 0;

  // Time accounting from the per-step trace: sample k holds the
  // temperatures at the END of step k, so each step's share of the
  // duration is attributed to the temperature that step actually
  // produced.  (The old callback-side accounting attributed the PREVIOUS
  // step's temperatures to the current timestamp and never assessed the
  // final step's outcome.)  The solver takes ceil(duration/dt) steps, so
  // the last step only covers the remainder of the duration.
  const std::size_t accounted = std::min(total_steps, sim.trace.size() + 1);
  for (std::size_t k = 0; k < accounted; ++k) {
    const thermal::TransientSample& sample =
        k == 0 ? first_sample : sim.trace[k - 1];
    const double step_dt =
        k + 1 == total_steps
            ? duration_s - static_cast<double>(total_steps - 1) * dt_s
            : dt_s;
    double peak = ambient_k;
    for (const double v : sample.die_peak_k) peak = std::max(peak, v);
    result.peak_k = std::max(result.peak_k, peak);
    if (peak > options.trigger_k) result.time_over_trigger_s += step_dt;
    if (k < step_throttled.size() && step_throttled[k]) {
      result.throttled_time_s += step_dt;
      result.performance_loss += (1.0 - options.throttle_scale) * step_dt;
    }
  }
  result.performance_loss /= duration_s;
  result.estimate_rmse_k =
      rmse_n > 0 ? std::sqrt(rmse_acc / static_cast<double>(rmse_n)) : 0.0;
  return result;
}

DtmResult run_dtm(const Floorplan3D& fp, const thermal::GridSolver& solver,
                  double duration_s, double dt_s, Rng& rng,
                  const DtmOptions& options, DtmCheckpoint* checkpoint) {
  return run_dtm(fp, solver.engine(), duration_s, dt_s, rng, options,
                 checkpoint);
}

}  // namespace tsc3d::mitigation
