// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Runtime thermal management for 3D ICs, after Zhu et al. [13] and the
// Kalman predictor-based proactive DTM of Fu et al. [14].  The paper
// leans on this infrastructure twice: 3D ICs "will require runtime
// capabilities for thermal management, based on embedded on-chip thermal
// sensors" (Sec. 1) -- and those same sensors are the attacker's thermal
// side channel (Sec. 2.1).  Implementing the DTM loop therefore gives us
// both the defender's temperature control and the realistic noisy-sensor
// substrate the attacks read through.
//
// Components:
//  * ScalarKalman     -- per-sensor random-walk Kalman filter; the
//                        predictor of [14] that sees through read noise.
//  * DtmController    -- reactive or proactive threshold throttling: when
//                        the (predicted) hottest sensor exceeds the
//                        trigger, the hottest modules' power is scaled
//                        down (DVFS-style) until the stack cools.
//  * run_dtm          -- closed-loop transient simulation of the
//                        controller against a floorplan.
#pragma once

#include <cstddef>
#include <vector>

#include "core/floorplan.hpp"
#include "core/grid.hpp"
#include "core/rng.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::mitigation {

/// One-dimensional random-walk Kalman filter: state x = temperature of a
/// sensor site, process noise q (thermal drift between control periods),
/// measurement noise r (sensor read noise).
class ScalarKalman {
 public:
  ScalarKalman(double initial_k, double process_var, double measurement_var);

  /// Time update: variance grows by the process noise.
  void predict();
  /// Measurement update with reading z [K].
  void update(double z_k);

  [[nodiscard]] double state_k() const { return x_; }
  [[nodiscard]] double variance() const { return p_; }

 private:
  double x_;
  double p_ = 1.0;
  double q_;
  double r_;
};

/// Two-state (temperature, slope) constant-velocity Kalman filter -- the
/// predictor of [14].  Unlike the random-walk ScalarKalman it tracks the
/// heating/cooling ramps of thermal transients without steady-state lag,
/// and extrapolate() provides the proactive lookahead directly.
class RampKalman {
 public:
  RampKalman(double initial_k, double temp_process_var,
             double slope_process_var, double measurement_var);

  void predict();
  void update(double z_k);

  [[nodiscard]] double state_k() const { return x_; }
  [[nodiscard]] double slope_k_per_period() const { return v_; }
  /// Predicted temperature `periods` control periods ahead.
  [[nodiscard]] double extrapolate(double periods) const {
    return x_ + periods * v_;
  }

 private:
  double x_;
  double v_ = 0.0;
  bool initialized_ = false;  ///< first update adopts the reading outright
  // Covariance [[p00, p01], [p01, p11]].  The prior is deliberately
  // uninformed (large) so the filter adapts quickly during the steep
  // initial heating transient instead of trusting the initial guess.
  double p00_ = 25.0, p01_ = 0.0, p11_ = 25.0;
  double qx_, qv_, r_;
};

struct DtmOptions {
  double trigger_k = 345.0;        ///< throttle when estimate exceeds this
  double release_k = 342.0;        ///< un-throttle below this (hysteresis)
  double throttle_scale = 0.5;     ///< power multiplier while throttled
  /// Fraction of modules (hottest first, by power density) throttled.
  double throttled_fraction = 0.3;
  double control_period_s = 0.01;  ///< sensor read + decision cadence
  double sensor_noise_k = 0.5;     ///< Gaussian read noise per sample
  bool use_kalman = true;          ///< [14]-style predictor vs raw reads
  double kalman_process_var = 0.05;  ///< temperature process noise
  /// Slope process noise.  Thermal transients are saturating
  /// exponentials, so the slope genuinely changes between control
  /// periods; a too-small value makes the filter cling to stale slopes
  /// and overshoot the knee of the heating curve.
  double kalman_slope_var = 0.5;
  /// Proactive lead: throttle when the extrapolation this many control
  /// periods ahead crosses the trigger.  0 = reactive [13].  With the
  /// Kalman predictor the filter's own slope state is extrapolated; with
  /// raw reads a finite difference of consecutive readings is used.
  double lookahead_periods = 1.0;
};

/// Closed-loop outcome.
struct DtmResult {
  double time_over_trigger_s = 0.0;  ///< true peak above trigger_k
  double peak_k = 0.0;               ///< true peak over the whole run
  double throttled_time_s = 0.0;     ///< time spent throttled
  double performance_loss = 0.0;     ///< mean power reduction fraction
  /// RMSE of the controller's estimate against the peak it could observe
  /// at read time (the field the previous solver step produced).
  double estimate_rmse_k = 0.0;
  std::size_t control_actions = 0;   ///< throttle state toggles
  std::size_t sensor_reads = 0;      ///< control-period sensor samples
  bool thermal_converged = true;     ///< every solver step converged
  bool checkpoint_reused = false;    ///< t=0+ field came from a checkpoint
  bool checkpoint_captured = false;  ///< this run filled the checkpoint
};

/// Cross-run checkpoint of the t = 0+ solver state: the temperature
/// field after the FIRST implicit-Euler step.  DTM parameter sweeps
/// (trigger, lookahead, Kalman tuning, ...) re-run the same heating
/// transient from ambient; the first step's power is
/// controller-independent whenever the controller does not throttle at
/// the initial ambient read, so its (cold, expensive) solve can be done
/// once and replayed.  run_dtm validates the checkpoint against the
/// current run -- grid shape, dt, TSV map, ambient, and the BITWISE
/// step-1 power maps the current controller actually produces -- and
/// silently falls back to a fresh solve on any mismatch, so reuse never
/// changes results (tests assert bitwise-equal DtmResult either way).
/// Reuse it only with the same floorplan + engine configuration.
struct DtmCheckpoint {
  bool valid = false;
  double dt_s = 0.0;
  double ambient_k = 0.0;
  std::size_t nx = 0, ny = 0;
  std::vector<double> tsv;                ///< density map of the run
  std::vector<GridD> first_power;         ///< step-1 per-die power maps
  thermal::FieldSnapshot field;           ///< field after step 1
  thermal::TransientSample first_sample;  ///< step-1 trace entry
  bool first_step_converged = true;
};

/// The controller's throttle set: per-module flags, true for the hottest
/// `throttled_fraction` of modules by nominal power density.  This is
/// the EXACT selection run_dtm's controller acts on, exposed so other
/// consumers (the campaign runner's statically throttled floorplans)
/// throttle the identical modules.
[[nodiscard]] std::vector<bool> throttleable_modules(
    const Floorplan3D& fp, const DtmOptions& options = {});

/// Simulate `duration_s` of the DTM loop on the floorplan's nominal
/// activity.  The controller reads the hottest die's peak through a noisy
/// sensor each control period and throttles the hottest modules.
/// The solver takes ceil(duration_s / dt_s) steps; time accounting is
/// clamped to `duration_s`, but when duration_s is not a multiple of
/// dt_s the last (partial) interval is assessed at the temperature the
/// full final step produced (slightly past duration_s) -- pick dt_s
/// dividing duration_s for exact-window metrics.
///
/// `checkpoint` (optional) warm-starts parameter sweeps: an invalid
/// checkpoint is filled from this run's first transient step, a valid
/// matching one replaces that step's solve (see DtmCheckpoint); the
/// result reports which happened and is bitwise-identical either way.
[[nodiscard]] DtmResult run_dtm(const Floorplan3D& fp,
                                thermal::ThermalEngine& engine,
                                double duration_s, double dt_s, Rng& rng,
                                const DtmOptions& options = {},
                                DtmCheckpoint* checkpoint = nullptr);

/// Compatibility overload for GridSolver holders; runs on the solver's
/// underlying engine.
[[nodiscard]] DtmResult run_dtm(const Floorplan3D& fp,
                                const thermal::GridSolver& solver,
                                double duration_s, double dt_s, Rng& rng,
                                const DtmOptions& options = {},
                                DtmCheckpoint* checkpoint = nullptr);

}  // namespace tsc3d::mitigation
