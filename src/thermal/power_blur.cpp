#include "thermal/power_blur.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsc3d::thermal {

namespace {

/// Reflect an out-of-range index back into [0, n): mimics the adiabatic
/// lateral boundaries of the detailed solver.
std::size_t reflect(long i, std::size_t n) {
  const long limit = static_cast<long>(n);
  while (i < 0 || i >= limit) {
    if (i < 0) i = -i - 1;
    if (i >= limit) i = 2 * limit - i - 1;
  }
  return static_cast<std::size_t>(i);
}

}  // namespace

PowerBlur::PowerBlur(const GridSolver& solver, std::size_t kernel_radius)
    : PowerBlur(solver.engine(), kernel_radius) {}

PowerBlur::PowerBlur(ThermalEngine& engine, std::size_t kernel_radius)
    : num_dies_(engine.stack().layer_of_die.size()),
      nx_(engine.nx()),
      ny_(engine.ny()),
      radius_(std::min({kernel_radius, nx_ / 2, ny_ / 2})) {
  const std::size_t cx = nx_ / 2;
  const std::size_t cy = ny_ / 2;
  constexpr double kImpulseW = 0.1;

  ambient_k_ = engine.config().ambient_k;
  kernels_.assign(2, std::vector<Kernel>(num_dies_ * num_dies_));
  GridD zero_power(nx_, ny_, 0.0);
  for (int tsv_case = 0; tsv_case < 2; ++tsv_case) {
    GridD density(nx_, ny_, tsv_case == 0 ? 0.0 : 1.0);
    for (std::size_t s = 0; s < num_dies_; ++s) {
      std::vector<GridD> power(num_dies_, zero_power);
      power[s].at(cx, cy) = kImpulseW;
      const ThermalResult res = engine.solve_steady(power, density);
      for (std::size_t d = 0; d < num_dies_; ++d) {
        Kernel& k = kernels_[tsv_case][s * num_dies_ + d];
        const GridD& t = res.die_temperature[d];
        // Far field: average response along the map boundary (far from the
        // impulse), expressed per watt.
        double far_sum = 0.0;
        std::size_t far_cnt = 0;
        for (std::size_t ix = 0; ix < nx_; ++ix) {
          far_sum += t.at(ix, 0) + t.at(ix, ny_ - 1);
          far_cnt += 2;
        }
        k.far = (far_sum / static_cast<double>(far_cnt) - ambient_k_) /
                kImpulseW;
        const std::size_t w = 2 * radius_ + 1;
        k.taps.assign(w * w, 0.0);
        for (std::size_t dy = 0; dy < w; ++dy) {
          for (std::size_t dx = 0; dx < w; ++dx) {
            const long sx = static_cast<long>(cx + dx) -
                            static_cast<long>(radius_);
            const long sy = static_cast<long>(cy + dy) -
                            static_cast<long>(radius_);
            const double v =
                t.at(reflect(sx, nx_), reflect(sy, ny_));
            // Store the deviation above the far field so the truncated
            // convolution plus the analytic far-field term is exact in the
            // homogeneous case.
            k.taps[dy * w + dx] = (v - ambient_k_) / kImpulseW - k.far;
          }
        }
      }
    }
  }
}

const PowerBlur::Kernel& PowerBlur::kernel(std::size_t source,
                                           std::size_t target,
                                           bool with_tsv) const {
  return kernels_[with_tsv ? 1 : 0][source * num_dies_ + target];
}

double PowerBlur::far_field(std::size_t source, std::size_t target,
                            bool with_tsv) const {
  return kernel(source, target, with_tsv).far;
}

std::vector<GridD> PowerBlur::estimate(const std::vector<GridD>& die_power_w,
                                       const GridD& tsv_density) const {
  if (die_power_w.size() != num_dies_)
    throw std::invalid_argument("PowerBlur: one power map per die required");
  for (const GridD& p : die_power_w)
    if (p.nx() != nx_ || p.ny() != ny_)
      throw std::invalid_argument("PowerBlur: power-map grid mismatch");
  if (tsv_density.nx() != nx_ || tsv_density.ny() != ny_)
    throw std::invalid_argument("PowerBlur: TSV-map grid mismatch");

  std::vector<GridD> out(num_dies_, GridD(nx_, ny_, ambient_k_));
  const std::size_t w = 2 * radius_ + 1;

  for (std::size_t s = 0; s < num_dies_; ++s) {
    const GridD& power = die_power_w[s];
    const double total_power = power.sum();
    for (std::size_t d = 0; d < num_dies_; ++d) {
      const Kernel& k0 = kernel(s, d, false);
      const Kernel& k1 = kernel(s, d, true);
      GridD& t = out[d];
      // Scatter each source bin's power through the TSV-blended kernel.
      for (std::size_t sy = 0; sy < ny_; ++sy) {
        for (std::size_t sx = 0; sx < nx_; ++sx) {
          const double p = power.at(sx, sy);
          if (p <= 0.0) continue;
          const double f = std::clamp(tsv_density.at(sx, sy), 0.0, 1.0);
          for (std::size_t dy = 0; dy < w; ++dy) {
            const std::size_t ty = reflect(
                static_cast<long>(sy + dy) - static_cast<long>(radius_), ny_);
            const std::size_t row = dy * w;
            for (std::size_t dx = 0; dx < w; ++dx) {
              const std::size_t tx = reflect(
                  static_cast<long>(sx + dx) - static_cast<long>(radius_),
                  nx_);
              const double tap =
                  (1.0 - f) * k0.taps[row + dx] + f * k1.taps[row + dx];
              t.at(tx, ty) += p * tap;
            }
          }
        }
      }
      // Far-field (uniform chip heating) term, blended by the mean density.
      const double f_mean = tsv_density.mean();
      const double far = (1.0 - f_mean) * k0.far + f_mean * k1.far;
      for (auto& v : t) v += total_power * far;
    }
  }
  return out;
}

double PowerBlur::peak(const std::vector<GridD>& die_power_w,
                       const GridD& tsv_density) const {
  double p = 0.0;
  for (const GridD& t : estimate(die_power_w, tsv_density))
    p = std::max(p, t.max());
  return p;
}

}  // namespace tsc3d::thermal
