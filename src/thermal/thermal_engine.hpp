// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// ThermalEngine: the stateful, reuse-aware core of the HotSpot-style
// finite-volume thermal solver.  Where the legacy GridSolver facade
// re-assembles the conductance network and restarts every SOR solve from
// ambient, the engine
//
//  * caches the assembled network and re-validates it with a cheap
//    fingerprint of the TSV-density map (the only solve input that
//    changes the matrix), so back-to-back solves over the same TSV
//    arrangement -- the common case in annealing, activity sampling,
//    noise injection, and DTM loops -- skip assembly entirely;
//  * keeps the temperature field of the previous solve and uses it to
//    warm-start the next one: successive power maps in those loops are
//    small perturbations of each other, so a warm start typically
//    converges in a handful of sweeps instead of hundreds;
//  * sweeps in red-black order over flattened per-node conductance
//    arrays.  Nodes of one color only read nodes of the other, so the
//    stride-2 inner loop carries no dependence, vectorizes, and shards
//    row ranges across a persistent worker pool (ParallelConfig);
//  * scores k candidate power maps against ONE shared assembly in a
//    single call (solve_steady_batch): a pool of per-candidate solve
//    contexts (temperature field + rhs scratch) is kept alive across
//    batches, every context warm-starts from the engine's current field,
//    and the k independent solves fan out across the same worker pool --
//    one candidate per worker instead of one row shard per worker, so
//    even grids too small for sweep sharding parallelize perfectly;
//  * reports solver effort (sweeps, convergence, residual, reuse) in
//    ThermalResult / TransientResult so callers and benches can see what
//    a solve actually cost.
//
// The engine is deliberately NOT thread-safe: it owns mutable scratch
// state.  Use one engine per thread; the engine's own sweep workers are
// internal and synchronized, so a threaded engine is still safe to use
// from exactly one caller thread at a time.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/grid.hpp"
#include "thermal/stack.hpp"

namespace tsc3d::thermal {

/// Sweep-sharding configuration.  `threads == 1` (the default) keeps the
/// fully serial sweep; `threads > 1` shards each red-black color's row
/// range across a persistent pool of threads - 1 workers plus the calling
/// thread.  Within a color every node only reads the other color, so the
/// shards are dependence-free and the threaded sweep is bitwise identical
/// to the serial one for any thread count.
struct ParallelConfig {
  std::size_t threads = 1;
  /// Auto-serialization floor: the engine caps its effective thread
  /// count at total_nodes / min_nodes_per_thread, so tiny grids (the
  /// 16x16-ish fast-loop resolutions, where the per-sweep barrier
  /// rendezvous would cost more than the sharded work saves) stay
  /// serial no matter what `threads` asks for.  Results are bitwise
  /// identical at every effective count, so the cap never changes
  /// numbers -- only speed.  0 disables the floor (used by tests to
  /// force sharding on deliberately small grids).
  std::size_t min_nodes_per_thread = 4096;
};

/// Output of a steady-state solve.
struct ThermalResult {
  /// Temperature map of each die's power layer [K], die 0 first.
  std::vector<GridD> die_temperature;
  /// Temperature maps of every stack layer, bottom to top [K].
  std::vector<GridD> layer_temperature;
  double peak_k = 0.0;            ///< hottest node anywhere in the stack
  std::size_t iterations = 0;     ///< SOR sweeps used
  bool converged = false;
  double heat_to_sink_w = 0.0;    ///< power leaving through the heatsink
  double heat_to_package_w = 0.0; ///< power leaving via the secondary path
  // --- solver diagnostics (filled by ThermalEngine) ---------------------
  double residual_k = 0.0;        ///< max node update of the last sweep
  bool warm_started = false;      ///< initial guess was a previous field
  bool assembly_reused = false;   ///< conductance network came from cache
};

/// One recorded snapshot of a transient solve.
struct TransientSample {
  double time_s = 0.0;
  std::vector<double> die_peak_k;  ///< per-die peak temperature
  std::vector<double> die_mean_k;  ///< per-die mean temperature
  std::vector<double> die_power_w; ///< per-die total power at this instant
};

/// Output of a transient solve.
struct TransientResult {
  std::vector<TransientSample> trace;
  /// Final snapshot.  `converged` is true only if EVERY implicit-Euler
  /// step's inner SOR loop converged; `iterations` is the total sweep
  /// count over all steps.
  ThermalResult final_state;
  std::size_t steps = 0;               ///< implicit-Euler steps taken
  std::size_t unconverged_steps = 0;   ///< steps that exhausted max_iterations
  std::size_t total_iterations = 0;    ///< SOR sweeps summed over all steps
};

class ThermalEngine {
 public:
  /// Initial guess policy for a steady-state solve.
  enum class Start {
    warm,  ///< reuse the previous temperature field when available
    cold,  ///< always restart from ambient (legacy GridSolver semantics)
  };

  /// Cumulative reuse counters, for benches and diagnostics.
  struct Stats {
    std::size_t steady_solves = 0;   ///< incl. every batched candidate
    std::size_t transient_steps = 0;
    std::size_t warm_starts = 0;
    std::size_t assembly_builds = 0;
    std::size_t assembly_reuses = 0;
    std::size_t total_sweeps = 0;
    std::size_t batch_calls = 0;       ///< solve_steady_batch invocations
    std::size_t batch_candidates = 0;  ///< candidates summed over batches
  };

  ThermalEngine(const TechnologyConfig& tech, const ThermalConfig& cfg,
                ParallelConfig parallel = {});
  ~ThermalEngine();
  ThermalEngine(ThermalEngine&&) noexcept;
  ThermalEngine& operator=(ThermalEngine&&) noexcept;

  [[nodiscard]] std::size_t nx() const { return cfg_.grid_nx; }
  [[nodiscard]] std::size_t ny() const { return cfg_.grid_ny; }
  /// Effective sweep thread count (1 = serial).
  [[nodiscard]] std::size_t threads() const;
  [[nodiscard]] const LayerStack& stack() const { return stack_; }
  [[nodiscard]] const ThermalConfig& config() const { return cfg_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Steady-state solve.  `die_power_w` holds one nx-by-ny map per die
  /// with power in watts per bin; `tsv_density` holds the fraction of
  /// each bin covered by TSV cells.  With Start::warm (the default) the
  /// previous field seeds the iteration; warm and cold solves converge
  /// to the same fixed point and carry the same order of residual error.
  /// Note the SOR stopping rule bounds the per-sweep update (tolerance_k),
  /// not the absolute solution error, so warm/cold fields agree to solver
  /// accuracy -- a small multiple of tolerance_k in practice (the tests
  /// assert 1e-3 K agreement at tolerance_k = 1e-6) -- not bitwise.
  [[nodiscard]] ThermalResult solve_steady(
      const std::vector<GridD>& die_power_w, const GridD& tsv_density,
      Start start = Start::warm);

  /// Batched steady-state solve: score every candidate power-map set
  /// against ONE conductance assembly (built from `tsv_density`, cached
  /// as usual).  Each candidate solves on its own context -- a private
  /// temperature field seeded from the engine's current field (with
  /// Start::warm; ambient otherwise) plus private rhs scratch -- so the
  /// k solves are independent and fan out across the worker pool, one
  /// candidate per thread.  Candidate solves sweep serially within a
  /// context, and a batch of one is bitwise-identical to solve_steady
  /// (threaded single-solve sweeps are bitwise-identical to serial).
  ///
  /// The engine's own field is NOT advanced: call adopt_candidate(i)
  /// with the index the caller selected (e.g. the move the annealer
  /// accepted) to make that candidate's solution the warm seed of
  /// subsequent solves.  Contexts persist across batches, so steady-state
  /// batch sizes allocate only on the first call.
  [[nodiscard]] std::vector<ThermalResult> solve_steady_batch(
      const std::vector<std::vector<GridD>>& candidate_power_w,
      const GridD& tsv_density, Start start = Start::warm);

  /// Make candidate `index` of the LAST solve_steady_batch call the
  /// engine's temperature field (the warm seed of the next solve).
  void adopt_candidate(std::size_t index);

  /// Candidates scored by the last solve_steady_batch call.
  [[nodiscard]] std::size_t last_batch_size() const { return batch_size_; }

  /// Transient solve with implicit Euler.  Always starts from ambient
  /// (the initial condition is part of the problem statement, not a
  /// guess); the final field is kept as the warm seed for later
  /// steady-state solves.  `t_end_s` is rounded UP to a whole number of
  /// dt_s steps, so the final state is at ceil(t_end/dt) * dt.
  [[nodiscard]] TransientResult solve_transient(
      const std::function<std::vector<GridD>(double time_s)>& power_at,
      const GridD& tsv_density, double t_end_s, double dt_s,
      std::size_t record_stride = 1);

  /// Closed-loop variant: the power callback additionally receives the
  /// previous step's per-die temperature maps.
  using FeedbackPower = std::function<std::vector<GridD>(
      double time_s, const std::vector<GridD>& die_temp_prev)>;
  [[nodiscard]] TransientResult solve_transient_feedback(
      const FeedbackPower& power_at, const GridD& tsv_density,
      double t_end_s, double dt_s, std::size_t record_stride = 1);

  /// Drop the cached assembly and the warm-start field (counters stay).
  void reset();

 private:
  /// Flattened conductance network.  Node index: (l * ny + iy) * nx + ix.
  /// Neighbor conductances are stored per node with zeros at the domain
  /// boundary, so the sweep needs no boundary branches.
  struct Assembly {
    std::size_t nx = 0, ny = 0, nl = 0;
    std::vector<double> g_xm, g_xp;   ///< to x-1 / x+1 neighbor
    std::vector<double> g_ym, g_yp;   ///< to y-1 / y+1 neighbor
    std::vector<double> g_zm, g_zp;   ///< to layer below / above
    std::vector<double> diag_static;  ///< sum of the above + boundary paths
    std::vector<double> bound_rhs;    ///< boundary conductance * T_ambient
    std::vector<double> cap;          ///< per-node thermal capacitance
    std::vector<double> g_sink;       ///< per-cell convection (top layer)
    std::vector<double> g_pkg;        ///< per-cell secondary path (layer 0)

    [[nodiscard]] std::size_t num_nodes() const { return nl * nx * ny; }
  };

  /// One candidate's private solve state: a padded temperature field
  /// plus rhs scratch.  Everything else a solve needs (the assembly, the
  /// static diagonal) is shared read-only, so contexts solve in parallel.
  struct FieldContext {
    std::vector<double> temp;
    std::vector<double> rhs;
  };

  void check_inputs(const std::vector<GridD>& die_power_w,
                    const GridD& tsv_density) const;
  /// Return the cached assembly, rebuilding it iff `tsv_density` differs
  /// from the map the cache was built from.
  const Assembly& assembly_for(const GridD& tsv_density);
  void build_assembly(const GridD& tsv_density);
  /// One red-black SOR sweep over the padded field `t`; returns the max
  /// absolute (pre-relaxation) node update.  Dispatches to the worker
  /// pool when sweep sharding is active, otherwise runs both colors
  /// inline.
  double sweep(double* t, const std::vector<double>& rhs,
               const std::vector<double>& diag);
  /// Sweep one color of the padded field `t` over the global row range
  /// [row_begin, row_end) (row index r maps to layer r / ny, row r % ny);
  /// returns the shard's max node update.  Rows of one color are
  /// mutually independent, so disjoint ranges may run concurrently.
  double sweep_rows(double* t, int color, std::size_t row_begin,
                    std::size_t row_end, const double* rhs,
                    const double* diag) const;
  /// Sweep `t` serially until tolerance or max_iterations, writing
  /// iterations/residual/converged into `result`.  Touches no engine
  /// state, so batched candidates run it concurrently.
  void solve_field_serial(double* t, const double* rhs, const double* diag,
                          ThermalResult& result) const;
  /// Build `rhs` for a steady solve (power injection + boundary terms).
  void fill_steady_rhs(const std::vector<GridD>& die_power_w,
                       std::vector<double>& rhs) const;
  /// Copy a padded field into a ThermalResult (maps, peak, heat flows).
  void extract_field(const double* t, ThermalResult& result) const;

  [[nodiscard]] double* field() { return temp_.data() + field_offset_; }
  [[nodiscard]] const double* field() const {
    return temp_.data() + field_offset_;
  }

  TechnologyConfig tech_;
  ThermalConfig cfg_;
  LayerStack stack_;

  /// Persistent workers, serving both row-sharded sweeps and batched
  /// per-candidate solves.  Created eagerly at the floored sweep width
  /// when sharding is active (sweep_threads_ > 1); the first batched
  /// solve widens it to the REQUESTED thread count -- a grid too small
  /// to shard profitably still fans batch candidates across all
  /// requested threads, because one task there is a whole solve, not
  /// one sweep phase, while engines that never batch never pay
  /// rendezvous for threads the sweep cannot use.  Absent when
  /// parallel_.threads <= 1.
  class SweepPool;
  ParallelConfig parallel_;
  std::unique_ptr<SweepPool> pool_;
  /// Effective sweep-sharding width after the min_nodes_per_thread
  /// floor; 1 keeps single-solve sweeps serial (see ParallelConfig).
  std::size_t sweep_threads_ = 1;

  Assembly asm_;
  bool asm_valid_ = false;
  /// The TSV-density data the cached assembly was built from.
  std::vector<double> asm_tsv_;

  /// Temperature field in a halo layout: each row carries one pad column
  /// (stride nx + 1), each layer one pad row (stride (nx+1) * (ny+1)),
  /// plus one pad layer on both ends.  Every boundary neighbor read of
  /// the sweep -- all multiplied by a structurally zero conductance --
  /// lands in a pad cell instead of wrapping into a real node, so the
  /// inner loop stays branch-free AND shards never read a cell another
  /// shard may be writing (pads are never written during sweeps).
  std::vector<double> temp_;
  std::size_t field_offset_ = 0;  ///< padded index of node (0, 0, 0)
  bool field_valid_ = false;

  // Persistent scratch, sized on first use.
  std::vector<double> rhs_;
  std::vector<double> diag_;

  /// Per-candidate solve contexts, kept alive across batches (the field
  /// pool).  Only the first batch of a given size allocates.
  std::vector<FieldContext> contexts_;
  std::size_t batch_size_ = 0;  ///< candidates in the last batch

  Stats stats_;
};

}  // namespace tsc3d::thermal
