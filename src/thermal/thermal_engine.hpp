// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// ThermalEngine: the stateful, reuse-aware core of the HotSpot-style
// finite-volume thermal solver.  Where the legacy GridSolver facade
// re-assembles the conductance network and restarts every SOR solve from
// ambient, the engine
//
//  * caches the assembled network and re-validates it with a cheap
//    fingerprint of the TSV-density map (the only solve input that
//    changes the matrix), so back-to-back solves over the same TSV
//    arrangement -- the common case in annealing, activity sampling,
//    noise injection, and DTM loops -- skip assembly entirely;
//  * keeps the temperature field of the previous solve and uses it to
//    warm-start the next one: successive power maps in those loops are
//    small perturbations of each other, so a warm start typically
//    converges in a handful of sweeps instead of hundreds;
//  * sweeps in red-black order over flattened per-node conductance
//    arrays.  Nodes of one color only read nodes of the other, so the
//    stride-2 inner loop carries no dependence, vectorizes, and shards
//    row ranges across a persistent worker pool (ParallelConfig);
//  * dispatches every steady-state solve through a SolverPolicy: the
//    red-black SOR backend, or a geometric multigrid V-cycle over a
//    per-assembly hierarchy of coarsened conductance networks (see
//    thermal/multigrid.hpp) that reuses the same red-black sweep as the
//    smoother on every level -- so sweep sharding and batched solves
//    work unchanged on the fine level.  A ToleranceSchedule lets hot
//    loops trade stopping accuracy for sweeps per solve;
//  * scores k candidate power maps against ONE shared assembly in a
//    single call (solve_steady_batch): a pool of per-candidate solve
//    contexts (temperature field + rhs scratch) is kept alive across
//    batches, every context warm-starts from the engine's current field,
//    and the k independent solves fan out across the same worker pool --
//    one candidate per worker instead of one row shard per worker, so
//    even grids too small for sweep sharding parallelize perfectly;
//  * reports solver effort (sweeps, convergence, residual, reuse) in
//    ThermalResult / TransientResult so callers and benches can see what
//    a solve actually cost.
//
// The engine is deliberately NOT thread-safe: it owns mutable scratch
// state.  Use one engine per thread; the engine's own sweep workers are
// internal and synchronized, so a threaded engine is still safe to use
// from exactly one caller thread at a time.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/grid.hpp"
#include "thermal/stack.hpp"

namespace tsc3d::thermal {

/// Sweep-sharding configuration.  `threads == 1` (the default) keeps the
/// fully serial sweep; `threads > 1` shards each red-black color's row
/// range across a persistent pool of threads - 1 workers plus the calling
/// thread.  Within a color every node only reads the other color, so the
/// shards are dependence-free and the threaded sweep is bitwise identical
/// to the serial one for any thread count.
struct ParallelConfig {
  std::size_t threads = 1;
  /// Auto-serialization floor: the engine caps its effective thread
  /// count at total_nodes / min_nodes_per_thread, so tiny grids (the
  /// 16x16-ish fast-loop resolutions, where the per-sweep barrier
  /// rendezvous would cost more than the sharded work saves) stay
  /// serial no matter what `threads` asks for.  Results are bitwise
  /// identical at every effective count, so the cap never changes
  /// numbers -- only speed.  0 disables the floor (used by tests to
  /// force sharding on deliberately small grids).
  std::size_t min_nodes_per_thread = 4096;
};

/// Per-solve stopping-rule relaxation.  The steady-state stopping rule
/// is `max per-node update of a sweep < tolerance_k * scale`: scale 1
/// (the default) keeps the configured accuracy; a caller that only
/// needs a coarse ranking of candidate fields (the annealing fast loop)
/// raises the scale and pays fewer sweeps per solve.  Verification
/// solves must leave the scale at 1.
struct ToleranceSchedule {
  double scale = 1.0;

  /// Effective stopping tolerance for a base accuracy of `base_k`.
  /// Scales below 1 are clamped: the schedule only ever loosens.
  [[nodiscard]] double tolerance_for(double base_k) const {
    return base_k * (scale > 1.0 ? scale : 1.0);
  }
};

/// What an engine instance is FOR -- the input `thermal.solver = auto`
/// uses to pick a backend per engine.  The annealing fast loop makes
/// thousands of warm solves over small perturbations, where a warm SOR
/// start converges in a handful of sweeps and a V-cycle's fixed coarse
/// traffic is pure overhead; sampling and verification engines see cold
/// or strongly perturbed fields (fresh layouts, activity draws, DTM
/// trajectories), exactly the smooth-error regime multigrid removes.
enum class EngineRole {
  fast_loop,  ///< annealing inner loop: warm, incremental solves
  sampling,   ///< activity sampling / noise injection: mixed reuse
  verify,     ///< verification, reporting, DTM: cold full-accuracy solves
};

/// Resolve a configured backend against the engine's role: explicit
/// `sor` / `multigrid` force that backend; `auto_select` maps the warm
/// fast-loop engine to SOR and everything else to multigrid.
[[nodiscard]] constexpr SolverBackend resolve_backend(SolverBackend requested,
                                                      EngineRole role) {
  if (requested != SolverBackend::auto_select) return requested;
  return role == EngineRole::fast_loop ? SolverBackend::sor
                                       : SolverBackend::multigrid;
}

/// How a steady-state solve is driven: the backend (red-black SOR sweeps
/// or geometric multigrid V-cycles smoothed by the same sweep) plus the
/// tolerance schedule.  Derived from ThermalConfig at construction --
/// `auto_select` is resolved against the engine's role there, so the
/// stored backend is always concrete.  The tolerance scale is the one
/// knob callers adjust per solve phase.
struct SolverPolicy {
  SolverBackend backend = SolverBackend::sor;
  /// Coarse levels below the solve grid; 0 = auto (full depth).
  std::size_t mg_levels = 0;
  /// Pre- and post-smoothing sweeps per V-cycle level.
  std::size_t mg_smooth_sweeps = 2;
  /// Full-multigrid cold starts: seed cold multigrid solves with a
  /// coarse-to-fine FMG sweep (see thermal/multigrid.hpp) instead of a
  /// flat ambient field.  No effect on the SOR backend or warm starts.
  bool mg_fmg = true;
  ToleranceSchedule tolerance;

  [[nodiscard]] static SolverPolicy from_config(
      const ThermalConfig& cfg, EngineRole role = EngineRole::verify) {
    SolverPolicy p;
    p.backend = resolve_backend(cfg.solver, role);
    p.mg_levels = cfg.mg_levels;
    p.mg_smooth_sweeps = cfg.mg_smooth_sweeps;
    p.mg_fmg = cfg.mg_fmg;
    return p;
  }
};

/// Flattened conductance network.  Node index: (l * ny + iy) * nx + ix.
/// Neighbor conductances are stored per node with zeros at the domain
/// boundary, so the sweep needs no boundary branches.  The multigrid
/// hierarchy coarsens instances of this struct (2x in x/y, layers kept),
/// which is why it lives at namespace scope rather than inside the
/// engine.
struct Assembly {
  std::size_t nx = 0, ny = 0, nl = 0;
  std::vector<double> g_xm, g_xp;   ///< to x-1 / x+1 neighbor
  std::vector<double> g_ym, g_yp;   ///< to y-1 / y+1 neighbor
  std::vector<double> g_zm, g_zp;   ///< to layer below / above
  std::vector<double> diag_static;  ///< sum of the above + boundary paths
  std::vector<double> bound_rhs;    ///< boundary conductance * T_ambient
  std::vector<double> cap;          ///< per-node thermal capacitance
  std::vector<double> g_sink;       ///< per-cell convection (top layer)
  std::vector<double> g_pkg;        ///< per-cell secondary path (layer 0)

  [[nodiscard]] std::size_t num_nodes() const { return nl * nx * ny; }
  // Halo field layout for this grid shape: one pad column per row, one
  // pad row per layer, one pad layer on both ends (see ThermalEngine).
  [[nodiscard]] std::size_t padded_layer() const {
    return (nx + 1) * (ny + 1);
  }
  [[nodiscard]] std::size_t padded_size() const {
    return (nl + 2) * padded_layer();
  }
  /// Padded index of node (0, 0, 0).
  [[nodiscard]] std::size_t field_offset() const { return padded_layer(); }
};

/// One red-black color sweep over rows [row_begin, row_end) of a
/// halo-layout field (row index r maps to layer r / ny, row r % ny);
/// returns the shard's max absolute pre-relaxation node update.  Rows of
/// one color are mutually independent, so disjoint ranges may run
/// concurrently.  Shared by the engine's (possibly sharded) fine-level
/// sweeps and the multigrid coarse-level smoothing.
double sweep_color_rows(const Assembly& a, double omega, double* t, int color,
                        std::size_t row_begin, std::size_t row_end,
                        const double* rhs, const double* diag);

/// True when this build+CPU can run the hand-vectorized (AVX2) color
/// sweep.  GCC 12 does not auto-vectorize the stride-2 inner loop (the
/// gather/scatter pattern defeats its cost model), so the kernel in
/// sweep.cpp widens it by hand; it is bitwise-identical to the scalar
/// sweep -- same operation order per node, no FMA contraction -- so
/// dispatch never changes results, only speed.
[[nodiscard]] bool sweep_simd_available();
/// Runtime toggle for the SIMD sweep (on by default where available);
/// tests and benches A/B the scalar kernel through this.  Affects every
/// engine in the process; not thread-safe against concurrent sweeps.
void set_sweep_simd(bool enabled);
[[nodiscard]] bool sweep_simd_enabled();

class MultigridHierarchy;
struct MgScratch;

/// Output of a steady-state solve.
struct ThermalResult {
  /// Temperature map of each die's power layer [K], die 0 first.
  std::vector<GridD> die_temperature;
  /// Temperature maps of every stack layer, bottom to top [K].
  std::vector<GridD> layer_temperature;
  double peak_k = 0.0;            ///< hottest node anywhere in the stack
  std::size_t iterations = 0;     ///< fine-level red-black sweeps used
  bool converged = false;
  double heat_to_sink_w = 0.0;    ///< power leaving through the heatsink
  double heat_to_package_w = 0.0; ///< power leaving via the secondary path
  // --- solver diagnostics (filled by ThermalEngine) ---------------------
  double residual_k = 0.0;        ///< max node update of the last sweep
  bool warm_started = false;      ///< initial guess was a previous field
  bool assembly_reused = false;   ///< conductance network came from cache
  std::size_t vcycles = 0;        ///< multigrid V-cycles (0 on the SOR path)
  bool fmg_started = false;       ///< cold start was seeded by an FMG sweep
  /// V-cycles stopped contracting (strong z-coupling, e.g. monolithic
  /// stacks) and the solve fell back to plain SOR sweeps mid-flight.
  bool mg_stalled = false;
};

/// One recorded snapshot of a transient solve.
struct TransientSample {
  double time_s = 0.0;
  std::vector<double> die_peak_k;  ///< per-die peak temperature
  std::vector<double> die_mean_k;  ///< per-die mean temperature
  std::vector<double> die_power_w; ///< per-die total power at this instant
};

/// Output of a transient solve.
struct TransientResult {
  std::vector<TransientSample> trace;
  /// Final snapshot.  `converged` is true only if EVERY implicit-Euler
  /// step's inner SOR loop converged; `iterations` is the total sweep
  /// count over all steps.
  ThermalResult final_state;
  std::size_t steps = 0;               ///< implicit-Euler steps taken
  std::size_t unconverged_steps = 0;   ///< steps that exhausted max_iterations
  std::size_t total_iterations = 0;    ///< SOR sweeps summed over all steps
};

/// Opaque copy of the engine's padded temperature field, taken with
/// ThermalEngine::save_field and reinstalled with restore_field.  Lets
/// callers checkpoint a solver state and replay continuations from it
/// (e.g. DTM parameter sweeps reusing the t = 0+ heating step).
struct FieldSnapshot {
  std::vector<double> temp;

  [[nodiscard]] bool empty() const { return temp.empty(); }
};

class ThermalEngine {
 public:
  /// Initial guess policy for a steady-state solve.  For a transient
  /// solve the same enum selects the initial CONDITION: cold starts the
  /// trajectory from ambient (the default physical problem statement),
  /// warm continues it from the engine's current field (a checkpointed
  /// earlier transient).
  enum class Start {
    warm,  ///< reuse the previous temperature field when available
    cold,  ///< always restart from ambient (legacy GridSolver semantics)
  };

  /// Cumulative reuse counters, for benches and diagnostics.
  struct Stats {
    std::size_t steady_solves = 0;   ///< incl. every batched candidate
    std::size_t transient_steps = 0;
    std::size_t warm_starts = 0;
    std::size_t assembly_builds = 0;
    std::size_t assembly_reuses = 0;
    std::size_t total_sweeps = 0;
    std::size_t batch_calls = 0;       ///< solve_steady_batch invocations
    std::size_t batch_candidates = 0;  ///< candidates summed over batches
    std::size_t vcycles = 0;           ///< multigrid V-cycles run
    std::size_t fmg_starts = 0;        ///< FMG-seeded cold solves
    std::size_t mg_stalls = 0;         ///< solves that fell back to SOR
  };

  /// `role` feeds backend auto-selection (`thermal.solver = auto`): a
  /// fast_loop engine resolves to SOR, sampling/verify to multigrid.
  /// Explicit `sor` / `multigrid` configs ignore the role.
  ThermalEngine(const TechnologyConfig& tech, const ThermalConfig& cfg,
                ParallelConfig parallel = {},
                EngineRole role = EngineRole::verify);
  ~ThermalEngine();
  ThermalEngine(ThermalEngine&&) noexcept;
  ThermalEngine& operator=(ThermalEngine&&) noexcept;

  [[nodiscard]] std::size_t nx() const { return cfg_.grid_nx; }
  [[nodiscard]] std::size_t ny() const { return cfg_.grid_ny; }
  /// Effective sweep thread count (1 = serial).
  [[nodiscard]] std::size_t threads() const;
  [[nodiscard]] const LayerStack& stack() const { return stack_; }
  [[nodiscard]] const ThermalConfig& config() const { return cfg_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// The solve dispatch policy (backend + tolerance schedule), derived
  /// from ThermalConfig at construction.  `policy().backend` is always
  /// concrete: auto_select was resolved against role() at construction.
  [[nodiscard]] const SolverPolicy& policy() const { return policy_; }
  /// The role this engine was constructed for (auto-selection input).
  [[nodiscard]] EngineRole role() const { return role_; }
  /// Replace the policy wholesale (the multigrid hierarchy is rebuilt
  /// lazily when its parameters changed).  An auto_select backend is
  /// resolved against the engine's role.
  void set_policy(const SolverPolicy& policy);
  /// Adjust only the tolerance schedule: subsequent steady solves stop
  /// at tolerance_k * max(1, scale).  The annealer loosens this for
  /// fast-loop solves (scaled by move size and temperature stage);
  /// verification engines never touch it.
  void set_tolerance_scale(double scale);

  /// Steady-state solve.  `die_power_w` holds one nx-by-ny map per die
  /// with power in watts per bin; `tsv_density` holds the fraction of
  /// each bin covered by TSV cells.  With Start::warm (the default) the
  /// previous field seeds the iteration; warm and cold solves converge
  /// to the same fixed point and carry the same order of residual error.
  /// Note the stopping rule bounds the per-sweep update (tolerance_k),
  /// not the absolute solution error, so warm/cold fields -- and SOR vs
  /// multigrid fields -- agree to solver accuracy, a small multiple of
  /// tolerance_k in practice (the tests assert 1e-3 K agreement at
  /// tolerance_k = 1e-6), not bitwise.
  [[nodiscard]] ThermalResult solve_steady(
      const std::vector<GridD>& die_power_w, const GridD& tsv_density,
      Start start = Start::warm);

  /// Batched steady-state solve: score every candidate power-map set
  /// against ONE conductance assembly (built from `tsv_density`, cached
  /// as usual).  Each candidate solves on its own context -- a private
  /// temperature field seeded from the engine's current field (with
  /// Start::warm; ambient otherwise) plus private rhs scratch -- so the
  /// k solves are independent and fan out across the worker pool, one
  /// candidate per thread.  Candidate solves sweep serially within a
  /// context, and a batch of one is bitwise-identical to solve_steady
  /// (threaded single-solve sweeps are bitwise-identical to serial);
  /// both hold for either solver backend.
  ///
  /// The engine's own field is NOT advanced: call adopt_candidate(i)
  /// with the index the caller selected (e.g. the move the annealer
  /// accepted) to make that candidate's solution the warm seed of
  /// subsequent solves.  Contexts persist across batches, so steady-state
  /// batch sizes allocate only on the first call.
  [[nodiscard]] std::vector<ThermalResult> solve_steady_batch(
      const std::vector<std::vector<GridD>>& candidate_power_w,
      const GridD& tsv_density, Start start = Start::warm);

  /// Make candidate `index` of the LAST solve_steady_batch call the
  /// engine's temperature field (the warm seed of the next solve).
  void adopt_candidate(std::size_t index);

  /// Candidates scored by the last solve_steady_batch call.
  [[nodiscard]] std::size_t last_batch_size() const { return batch_size_; }

  /// Copy of the engine's current temperature field (throws
  /// std::logic_error when no solve has produced one yet).
  [[nodiscard]] FieldSnapshot save_field() const;
  /// Install a snapshot as the engine's current field: the warm seed of
  /// the next steady solve, or the initial condition of a Start::warm
  /// transient.  The snapshot must come from an engine with the same
  /// grid shape (size-checked).
  void restore_field(const FieldSnapshot& snapshot);

  /// Transient solve with implicit Euler.  Starts from ambient (the
  /// initial condition is part of the problem statement, not a guess);
  /// the final field is kept as the warm seed for later steady-state
  /// solves.  `t_end_s` is rounded UP to a whole number of dt_s steps,
  /// so the final state is at ceil(t_end/dt) * dt.
  [[nodiscard]] TransientResult solve_transient(
      const std::function<std::vector<GridD>(double time_s)>& power_at,
      const GridD& tsv_density, double t_end_s, double dt_s,
      std::size_t record_stride = 1);

  /// Closed-loop variant: the power callback additionally receives the
  /// previous step's per-die temperature maps.  `start` selects the
  /// initial condition: Start::cold (the default) is the ambient initial
  /// condition; Start::warm continues the trajectory from the engine's
  /// current field (e.g. a restore_field checkpoint), with the first
  /// callback observing that field -- exactly as if the earlier steps
  /// had run in the same call.  Time stamps still begin at dt_s; the
  /// caller offsets them when stitching a continuation.
  using FeedbackPower = std::function<std::vector<GridD>(
      double time_s, const std::vector<GridD>& die_temp_prev)>;
  [[nodiscard]] TransientResult solve_transient_feedback(
      const FeedbackPower& power_at, const GridD& tsv_density,
      double t_end_s, double dt_s, std::size_t record_stride = 1,
      Start start = Start::cold);

  /// Drop the cached assembly and the warm-start field (counters stay).
  void reset();

 private:
  /// One candidate's private solve state: a padded temperature field
  /// plus rhs scratch and (for the multigrid backend) per-level
  /// correction scratch.  Everything else a solve needs (the assembly,
  /// the level hierarchy, the static diagonal) is shared read-only, so
  /// contexts solve in parallel.
  struct FieldContext {
    std::vector<double> temp;
    std::vector<double> rhs;
    std::unique_ptr<MgScratch> mg;
  };

  void check_inputs(const std::vector<GridD>& die_power_w,
                    const GridD& tsv_density) const;
  /// Return the cached assembly, rebuilding it iff `tsv_density` differs
  /// from the map the cache was built from.
  const Assembly& assembly_for(const GridD& tsv_density);
  void build_assembly(const GridD& tsv_density);
  /// Build the multigrid hierarchy for the current assembly if the
  /// policy asks for it and it is not valid yet.
  void ensure_hierarchy();
  /// One red-black sweep (both colors, over-relaxation `omega`) over the
  /// padded field `t`; returns the max absolute (pre-relaxation) node
  /// update.  Dispatches each color to the worker pool when sweep
  /// sharding is active, otherwise runs inline.
  double sweep(double* t, const double* rhs, const double* diag,
               double omega);
  /// Pool entry point: sweep one color over the global row range
  /// [row_begin, row_end) at the pool job's omega.
  double sweep_rows(double* t, int color, std::size_t row_begin,
                    std::size_t row_end, const double* rhs,
                    const double* diag, double omega) const;
  /// Whether a cold solve would be FMG-seeded right now (multigrid
  /// backend, usable hierarchy, policy flag on).  Decides the cold fill
  /// value: FMG builds the field from zero, SOR/V-cycle from ambient.
  [[nodiscard]] bool fmg_active() const;
  /// Steady-state solve of one field through the policy backend with
  /// strictly serial sweeps; writes iterations/residual/converged/
  /// vcycles into `result`.  Touches no engine state beyond the shared
  /// read-only assembly/hierarchy, so batched candidates run it
  /// concurrently (each with its own `mg` scratch).  `fmg_start` means
  /// the caller zero-filled `t` for an FMG cold start (fmg_active()).
  void solve_field_serial(double* t, const double* rhs, MgScratch* mg,
                          bool fmg_start, ThermalResult& result) const;
  /// The engine's own steady solve loop: policy dispatch with sharded
  /// fine-level sweeps.
  void solve_field(double* t, const double* rhs, bool fmg_start,
                   ThermalResult& result);
  /// One multigrid V-cycle on the fine field `t` against the fine-level
  /// diagonal `diag` (diag_static for steady solves, the implicit-Euler
  /// diagonal for transients -- the scratch's mg_set_dt state must
  /// match).  `fine_sweep` performs one full red-black sweep on the fine
  /// level (sharded or serial); coarse levels always smooth serially.
  /// Returns the last post-smoothing sweep's max node update (the
  /// convergence measure).
  double vcycle(double* t, const double* rhs, const double* diag,
                MgScratch& scratch,
                const std::function<double()>& fine_sweep) const;
  /// Build `rhs` for a steady solve (power injection + boundary terms).
  void fill_steady_rhs(const std::vector<GridD>& die_power_w,
                       std::vector<double>& rhs) const;
  /// Copy a padded field into a ThermalResult (maps, peak, heat flows).
  void extract_field(const double* t, ThermalResult& result) const;
  /// Extract the per-die temperature maps of a padded field.
  void extract_die_maps(const double* t, std::vector<GridD>& maps) const;

  [[nodiscard]] double* field() { return temp_.data() + field_offset_; }
  [[nodiscard]] const double* field() const {
    return temp_.data() + field_offset_;
  }

  TechnologyConfig tech_;
  ThermalConfig cfg_;
  LayerStack stack_;
  EngineRole role_ = EngineRole::verify;
  SolverPolicy policy_;

  /// Persistent workers, serving both row-sharded sweeps and batched
  /// per-candidate solves.  Created eagerly at the floored sweep width
  /// when sharding is active (sweep_threads_ > 1); the first batched
  /// solve widens it to the REQUESTED thread count -- a grid too small
  /// to shard profitably still fans batch candidates across all
  /// requested threads, because one task there is a whole solve, not
  /// one sweep phase, while engines that never batch never pay
  /// rendezvous for threads the sweep cannot use.  Absent when
  /// parallel_.threads <= 1.
  class SweepPool;
  ParallelConfig parallel_;
  std::unique_ptr<SweepPool> pool_;
  /// Effective sweep-sharding width after the min_nodes_per_thread
  /// floor; 1 keeps single-solve sweeps serial (see ParallelConfig).
  std::size_t sweep_threads_ = 1;

  Assembly asm_;
  bool asm_valid_ = false;
  /// The TSV-density data the cached assembly was built from.
  std::vector<double> asm_tsv_;

  /// Coarsened-conductance hierarchy for the multigrid backend, built
  /// lazily per assembly (invalidated whenever the assembly rebuilds)
  /// and shared read-only by batched candidate solves.
  std::unique_ptr<MultigridHierarchy> mg_;
  /// The engine's own per-level V-cycle scratch (batched candidates
  /// carry their own in their FieldContext).
  std::unique_ptr<MgScratch> mg_scratch_;

  /// Temperature field in a halo layout: each row carries one pad column
  /// (stride nx + 1), each layer one pad row (stride (nx+1) * (ny+1)),
  /// plus one pad layer on both ends.  Every boundary neighbor read of
  /// the sweep -- all multiplied by a structurally zero conductance --
  /// lands in a pad cell instead of wrapping into a real node, so the
  /// inner loop stays branch-free AND shards never read a cell another
  /// shard may be writing (pads are never written during sweeps).
  std::vector<double> temp_;
  std::size_t field_offset_ = 0;  ///< padded index of node (0, 0, 0)
  bool field_valid_ = false;

  // Persistent scratch, sized on first use.
  std::vector<double> rhs_;
  std::vector<double> diag_;

  /// Per-candidate solve contexts, kept alive across batches (the field
  /// pool).  Only the first batch of a given size allocates.
  std::vector<FieldContext> contexts_;
  std::size_t batch_size_ = 0;  ///< candidates in the last batch

  Stats stats_;
};

}  // namespace tsc3d::thermal
