// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Layer-stack construction for the thermal model of a two-die,
// face-to-back, TSV-based 3D IC (Sec. 3 of the paper):
//
//   ambient  <- r_convec
//   heatsink
//   heat spreader
//   TIM
//   die 1 bulk Si      (top die; its active layer faces the TIM)   [power]
//   bond / BEOL layer  (TSVs act as vertical "heat pipes")         [TSVs]
//   die 0 bulk Si      (bottom die; active layer faces the bond)   [power]
//   package  -> ambient via r_package (secondary heat path)
//
// TSVs traverse the bond layer and the top die's bulk; in both layers the
// local vertical conductivity is raised according to the copper fraction
// of each grid cell.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace tsc3d::thermal {

/// One laterally homogeneous layer of the stack (TSV cells excepted).
struct Layer {
  std::string name;
  double thickness_m = 0.0;
  double k_w_per_mk = 0.0;       ///< thermal conductivity
  double c_j_per_m3k = 0.0;      ///< volumetric heat capacity
  /// Die whose power map is injected into this layer, or kInvalidIndex.
  std::size_t power_die = static_cast<std::size_t>(-1);
  /// True if TSVs traverse this layer (vertical conductivity is locally
  /// blended toward copper by the cell's TSV area fraction).
  bool tsv_layer = false;
  [[nodiscard]] bool has_power() const {
    return power_die != static_cast<std::size_t>(-1);
  }
};

/// The full stack, bottom (package side) to top (heatsink side).
struct LayerStack {
  std::vector<Layer> layers;
  /// Index of the layer carrying each die's power (layer_of_die[d]).
  std::vector<std::size_t> layer_of_die;
  /// Chip footprint [m].
  double width_m = 0.0;
  double height_m = 0.0;
};

/// Build the default two-die face-to-back stack described above.  Supports
/// num_dies >= 2 by repeating the (bulk, bond) pair, covering the paper's
/// future-work direction of larger stacks.
[[nodiscard]] LayerStack build_stack(const TechnologyConfig& tech,
                                     const ThermalConfig& thermal);

}  // namespace tsc3d::thermal
