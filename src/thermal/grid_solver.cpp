#include "thermal/grid_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsc3d::thermal {

namespace {
constexpr std::size_t kNoDie = static_cast<std::size_t>(-1);
}

/// Precomputed conductance network.  Node index: (l * ny + iy) * nx + ix.
struct GridSolver::Assembly {
  std::size_t nx = 0, ny = 0, nl = 0;
  double cell_w = 0.0, cell_h = 0.0;       // lateral cell size [m]
  std::vector<double> g_lat_x;             // per layer: conductance to x+1
  std::vector<double> g_lat_y;             // per layer: conductance to y+1
  std::vector<std::vector<double>> g_up;   // per layer: per-cell cond. to l+1
  std::vector<double> g_sink;              // per-cell convection (top layer)
  std::vector<double> g_pkg;               // per-cell secondary path (layer 0)
  std::vector<std::vector<double>> cap;    // per layer: per-cell capacitance

  [[nodiscard]] std::size_t node(std::size_t l, std::size_t ix,
                                 std::size_t iy) const {
    return (l * ny + iy) * nx + ix;
  }
  [[nodiscard]] std::size_t num_nodes() const { return nl * nx * ny; }
};

GridSolver::GridSolver(const TechnologyConfig& tech, const ThermalConfig& cfg)
    : tech_(tech), cfg_(cfg), stack_(build_stack(tech, cfg)) {
  tech_.validate();
  cfg_.validate();
}

void GridSolver::check_inputs(const std::vector<GridD>& die_power_w,
                              const GridD& tsv_density) const {
  if (die_power_w.size() != tech_.num_dies)
    throw std::invalid_argument("GridSolver: one power map per die required");
  for (const GridD& p : die_power_w) {
    if (p.nx() != cfg_.grid_nx || p.ny() != cfg_.grid_ny)
      throw std::invalid_argument("GridSolver: power-map grid mismatch");
  }
  if (tsv_density.nx() != cfg_.grid_nx || tsv_density.ny() != cfg_.grid_ny)
    throw std::invalid_argument("GridSolver: TSV-map grid mismatch");
}

GridSolver::Assembly GridSolver::assemble(const GridD& tsv_density) const {
  Assembly a;
  a.nx = cfg_.grid_nx;
  a.ny = cfg_.grid_ny;
  a.nl = stack_.layers.size();
  a.cell_w = stack_.width_m / static_cast<double>(a.nx);
  a.cell_h = stack_.height_m / static_cast<double>(a.ny);
  const double cell_area = a.cell_w * a.cell_h;
  const auto ncells = static_cast<double>(a.nx * a.ny);

  // Per-cell vertical conductivity of each layer; only TSV layers vary.
  // TSVs blend the layer material toward copper by the cell's area
  // fraction f: k_v = (1 - f) * k_layer + f * k_copper.
  std::vector<std::vector<double>> k_vert(a.nl);
  for (std::size_t l = 0; l < a.nl; ++l) {
    const Layer& layer = stack_.layers[l];
    k_vert[l].assign(a.nx * a.ny, layer.k_w_per_mk);
    if (layer.tsv_layer) {
      for (std::size_t i = 0; i < a.nx * a.ny; ++i) {
        const double f = std::clamp(tsv_density[i], 0.0, 1.0);
        k_vert[l][i] = (1.0 - f) * layer.k_w_per_mk + f * cfg_.k_tsv_copper;
      }
    }
  }

  a.g_lat_x.resize(a.nl);
  a.g_lat_y.resize(a.nl);
  a.cap.resize(a.nl);
  for (std::size_t l = 0; l < a.nl; ++l) {
    const Layer& layer = stack_.layers[l];
    // Lateral conduction uses the base material: TSVs are discrete
    // vertical pillars and contribute no continuous lateral path.
    a.g_lat_x[l] = layer.k_w_per_mk * layer.thickness_m * a.cell_h / a.cell_w;
    a.g_lat_y[l] = layer.k_w_per_mk * layer.thickness_m * a.cell_w / a.cell_h;
    const double cell_volume = cell_area * layer.thickness_m;
    a.cap[l].assign(a.nx * a.ny, layer.c_j_per_m3k * cell_volume);
    if (layer.tsv_layer) {
      for (std::size_t i = 0; i < a.nx * a.ny; ++i) {
        const double f = std::clamp(tsv_density[i], 0.0, 1.0);
        a.cap[l][i] = ((1.0 - f) * layer.c_j_per_m3k + f * cfg_.c_tsv_copper) *
                      cell_volume;
      }
    }
  }

  // Vertical conductances: half-thickness resistances in series.
  a.g_up.assign(a.nl, {});
  for (std::size_t l = 0; l + 1 < a.nl; ++l) {
    a.g_up[l].assign(a.nx * a.ny, 0.0);
    const double t0 = stack_.layers[l].thickness_m;
    const double t1 = stack_.layers[l + 1].thickness_m;
    for (std::size_t i = 0; i < a.nx * a.ny; ++i) {
      const double r = 0.5 * t0 / k_vert[l][i] + 0.5 * t1 / k_vert[l + 1][i];
      a.g_up[l][i] = cell_area / r;
    }
  }

  // Boundary paths: convection atop the sink, lumped package resistance
  // below layer 0.  A lumped resistance R over N parallel cells gives
  // R_cell = R * N, i.e. g_cell = 1 / (R * N).
  a.g_sink.assign(a.nx * a.ny, 1.0 / (cfg_.r_convec_k_per_w * ncells));
  a.g_pkg.assign(a.nx * a.ny, 1.0 / (cfg_.r_package_k_per_w * ncells));
  return a;
}

namespace {

/// One SOR sweep of the steady-state (or implicit-Euler step) system.
/// Returns the maximum absolute temperature update.  (Template on the
/// assembly type: GridSolver::Assembly is private to the class.)
template <typename AssemblyT>
double sor_sweep(const AssemblyT& a, const std::vector<double>& rhs,
                 const std::vector<double>& extra_diag, double omega,
                 std::vector<double>& temp) {
  double max_delta = 0.0;
  const std::size_t nx = a.nx, ny = a.ny, nl = a.nl;
  for (std::size_t l = 0; l < nl; ++l) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t i = a.node(l, ix, iy);
        const std::size_t cell = iy * nx + ix;
        double g_sum = extra_diag[i];
        double flux = rhs[i];
        if (ix > 0) {
          const double g = a.g_lat_x[l];
          g_sum += g;
          flux += g * temp[i - 1];
        }
        if (ix + 1 < nx) {
          const double g = a.g_lat_x[l];
          g_sum += g;
          flux += g * temp[i + 1];
        }
        if (iy > 0) {
          const double g = a.g_lat_y[l];
          g_sum += g;
          flux += g * temp[i - nx];
        }
        if (iy + 1 < ny) {
          const double g = a.g_lat_y[l];
          g_sum += g;
          flux += g * temp[i + nx];
        }
        if (l > 0) {
          const double g = a.g_up[l - 1][cell];
          g_sum += g;
          flux += g * temp[i - nx * ny];
        }
        if (l + 1 < nl) {
          const double g = a.g_up[l][cell];
          g_sum += g;
          flux += g * temp[i + nx * ny];
        }
        const double t_new = flux / g_sum;
        const double delta = t_new - temp[i];
        temp[i] += omega * delta;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
  }
  return max_delta;
}

}  // namespace

ThermalResult GridSolver::solve_steady(const std::vector<GridD>& die_power_w,
                                       const GridD& tsv_density) const {
  check_inputs(die_power_w, tsv_density);
  const Assembly a = assemble(tsv_density);
  const std::size_t n = a.num_nodes();
  const std::size_t nx = a.nx, ny = a.ny, nl = a.nl;

  // rhs_i = P_i + g_boundary * T_amb; extra_diag_i = g_boundary.
  std::vector<double> rhs(n, 0.0);
  std::vector<double> extra_diag(n, 0.0);
  for (std::size_t l = 0; l < nl; ++l) {
    const Layer& layer = stack_.layers[l];
    if (layer.has_power()) {
      const GridD& p = die_power_w[layer.power_die];
      for (std::size_t c = 0; c < nx * ny; ++c)
        rhs[a.node(l, c % nx, c / nx)] += p[c];
    }
  }
  for (std::size_t c = 0; c < nx * ny; ++c) {
    const std::size_t top = a.node(nl - 1, c % nx, c / nx);
    extra_diag[top] += a.g_sink[c];
    rhs[top] += a.g_sink[c] * cfg_.ambient_k;
    const std::size_t bottom = a.node(0, c % nx, c / nx);
    extra_diag[bottom] += a.g_pkg[c];
    rhs[bottom] += a.g_pkg[c] * cfg_.ambient_k;
  }

  std::vector<double> temp(n, cfg_.ambient_k);
  ThermalResult result;
  for (std::size_t it = 0; it < cfg_.max_iterations; ++it) {
    const double delta = sor_sweep(a, rhs, extra_diag, cfg_.sor_omega, temp);
    result.iterations = it + 1;
    if (delta < cfg_.tolerance_k) {
      result.converged = true;
      break;
    }
  }

  result.layer_temperature.reserve(nl);
  result.peak_k = cfg_.ambient_k;
  for (std::size_t l = 0; l < nl; ++l) {
    GridD map(nx, ny, 0.0);
    for (std::size_t c = 0; c < nx * ny; ++c) {
      map[c] = temp[a.node(l, c % nx, c / nx)];
      result.peak_k = std::max(result.peak_k, map[c]);
    }
    result.layer_temperature.push_back(std::move(map));
  }
  result.die_temperature.reserve(tech_.num_dies);
  for (std::size_t d = 0; d < tech_.num_dies; ++d)
    result.die_temperature.push_back(
        result.layer_temperature[stack_.layer_of_die[d]]);

  for (std::size_t c = 0; c < nx * ny; ++c) {
    result.heat_to_sink_w +=
        a.g_sink[c] *
        (temp[a.node(nl - 1, c % nx, c / nx)] - cfg_.ambient_k);
    result.heat_to_package_w +=
        a.g_pkg[c] * (temp[a.node(0, c % nx, c / nx)] - cfg_.ambient_k);
  }
  return result;
}

TransientResult GridSolver::solve_transient(
    const std::function<std::vector<GridD>(double)>& power_at,
    const GridD& tsv_density, double t_end_s, double dt_s,
    std::size_t record_stride) const {
  return solve_transient_feedback(
      [&](double t, const std::vector<GridD>&) { return power_at(t); },
      tsv_density, t_end_s, dt_s, record_stride);
}

TransientResult GridSolver::solve_transient_feedback(
    const FeedbackPower& power_at, const GridD& tsv_density, double t_end_s,
    double dt_s, std::size_t record_stride) const {
  if (t_end_s <= 0.0 || dt_s <= 0.0)
    throw std::invalid_argument("solve_transient: non-positive time");
  if (record_stride == 0) record_stride = 1;
  const Assembly a = assemble(tsv_density);
  const std::size_t n = a.num_nodes();
  const std::size_t nx = a.nx, ny = a.ny, nl = a.nl;

  std::vector<double> temp(n, cfg_.ambient_k);
  std::vector<double> rhs(n, 0.0);
  std::vector<double> extra_diag(n, 0.0);

  // Constant boundary contribution to the diagonal; C/dt is added per node.
  std::vector<double> boundary_diag(n, 0.0);
  for (std::size_t c = 0; c < nx * ny; ++c) {
    boundary_diag[a.node(nl - 1, c % nx, c / nx)] += a.g_sink[c];
    boundary_diag[a.node(0, c % nx, c / nx)] += a.g_pkg[c];
  }
  std::vector<double> cap_over_dt(n, 0.0);
  for (std::size_t l = 0; l < nl; ++l)
    for (std::size_t c = 0; c < nx * ny; ++c)
      cap_over_dt[a.node(l, c % nx, c / nx)] = a.cap[l][c] / dt_s;

  TransientResult out;
  // Per-die temperature maps of the previous step, for the feedback
  // callback; starts at ambient.
  std::vector<GridD> die_temp_prev(tech_.num_dies,
                                   GridD(nx, ny, cfg_.ambient_k));
  const auto steps = static_cast<std::size_t>(std::ceil(t_end_s / dt_s));
  for (std::size_t step = 0; step < steps; ++step) {
    const double t_now = static_cast<double>(step + 1) * dt_s;
    const std::vector<GridD> power = power_at(t_now, die_temp_prev);
    check_inputs(power, tsv_density);

    // Implicit Euler: (G + C/dt) T_new = P + G_b T_amb + (C/dt) T_old.
    for (std::size_t i = 0; i < n; ++i) {
      extra_diag[i] = boundary_diag[i] + cap_over_dt[i];
      rhs[i] = cap_over_dt[i] * temp[i];
    }
    for (std::size_t c = 0; c < nx * ny; ++c) {
      const std::size_t top = a.node(nl - 1, c % nx, c / nx);
      rhs[top] += a.g_sink[c] * cfg_.ambient_k;
      const std::size_t bottom = a.node(0, c % nx, c / nx);
      rhs[bottom] += a.g_pkg[c] * cfg_.ambient_k;
    }
    for (std::size_t l = 0; l < nl; ++l) {
      const Layer& layer = stack_.layers[l];
      if (!layer.has_power()) continue;
      const GridD& p = power[layer.power_die];
      for (std::size_t c = 0; c < nx * ny; ++c)
        rhs[a.node(l, c % nx, c / nx)] += p[c];
    }
    for (std::size_t it = 0; it < cfg_.max_iterations; ++it) {
      if (sor_sweep(a, rhs, extra_diag, cfg_.sor_omega, temp) <
          cfg_.tolerance_k)
        break;
    }

    for (std::size_t d = 0; d < tech_.num_dies; ++d) {
      const std::size_t l = stack_.layer_of_die[d];
      for (std::size_t c = 0; c < nx * ny; ++c)
        die_temp_prev[d][c] = temp[a.node(l, c % nx, c / nx)];
    }

    if (step % record_stride == 0 || step + 1 == steps) {
      TransientSample s;
      s.time_s = t_now;
      for (std::size_t d = 0; d < tech_.num_dies; ++d) {
        const std::size_t l = stack_.layer_of_die[d];
        double peak = 0.0, sum = 0.0;
        for (std::size_t c = 0; c < nx * ny; ++c) {
          const double v = temp[a.node(l, c % nx, c / nx)];
          peak = std::max(peak, v);
          sum += v;
        }
        s.die_peak_k.push_back(peak);
        s.die_mean_k.push_back(sum / static_cast<double>(nx * ny));
        s.die_power_w.push_back(power[d].sum());
      }
      out.trace.push_back(std::move(s));
    }
  }

  // Final snapshot as a full ThermalResult (already-converged state).
  out.final_state.layer_temperature.reserve(nl);
  out.final_state.peak_k = cfg_.ambient_k;
  for (std::size_t l = 0; l < nl; ++l) {
    GridD map(nx, ny, 0.0);
    for (std::size_t c = 0; c < nx * ny; ++c) {
      map[c] = temp[a.node(l, c % nx, c / nx)];
      out.final_state.peak_k = std::max(out.final_state.peak_k, map[c]);
    }
    out.final_state.layer_temperature.push_back(std::move(map));
  }
  for (std::size_t d = 0; d < tech_.num_dies; ++d)
    out.final_state.die_temperature.push_back(
        out.final_state.layer_temperature[stack_.layer_of_die[d]]);
  out.final_state.converged = true;
  return out;
}

}  // namespace tsc3d::thermal
