#include "thermal/thermal_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "thermal/multigrid.hpp"

namespace tsc3d::thermal {

namespace {

/// Smoothing relaxation factor of the multigrid backend.  Over-relaxation
/// (sor_omega ~ 1.8) accelerates SOR as a SOLVER but ruins the smoothing
/// property multigrid relies on; plain red-black Gauss-Seidel (omega = 1)
/// damps oscillatory error per sweep near-optimally, and the coarse grids
/// take care of the smooth error SOR would have needed the large omega
/// for.
constexpr double kSmoothOmega = 1.0;

/// Multigrid stall detection.  Point-smoothed x/y semicoarsening loses
/// its mesh-independent convergence when vertical coupling dominates the
/// lateral paths: damping lateral-oscillatory error that rides on stiff
/// z-columns needs z-line relaxation, which the red-black point smoother
/// is not.  Monolithic stacks are the concrete case -- their ~0.5um ILD
/// couples adjacent layers orders of magnitude more strongly than any
/// in-plane path, and V-cycles contract WORSE than plain SOR there.
/// Rather than predicting this from the stack (the z/lateral ratio
/// shifts with grid resolution), the V-cycle loops watch their own
/// contraction: when a cycle fails to cut the per-sweep update below
/// kMgStallContraction of the previous cycle's, kMgStallCycles times in
/// a row, the solve is marked stalled and the loop hands the current
/// field to plain SOR sweeps.  Healthy cycles contract at ~0.1-0.3 per
/// cycle, stalled ones sit near 1.0, so the margin is wide on both
/// sides.  Every sweep is bitwise-deterministic across thread counts,
/// so the stall decision -- and therefore the fallback -- is too.
constexpr double kMgStallContraction = 0.7;
constexpr std::size_t kMgStallCycles = 3;

/// Cyclic rendezvous over mutex + condition_variable.  std::barrier would
/// do, but libstdc++'s futex-based implementation is not reliably modeled
/// by ThreadSanitizer (phantom races across the barrier), and a blocking
/// wait also behaves better than a spinning one when the pool is
/// oversubscribed.  Sweeps are ms-scale, so the condvar overhead is noise.
class PhaseBarrier {
 public:
  explicit PhaseBarrier(std::size_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    if (aborted_) return;
    const std::uint64_t phase = phase_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++phase_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return phase_ != phase || aborted_; });
    }
  }

  /// Permanently release every current and future waiter.  Shutdown
  /// only: lets the pool unwind even when fewer than `parties` threads
  /// exist (a worker failed to spawn), where a plain arrival could
  /// never complete the phase.
  void abort() {
    const std::lock_guard lock(mutex_);
    aborted_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t phase_ = 0;
  bool aborted_ = false;
};

}  // namespace

// sweep_color_rows lives in sweep.cpp: a scalar kernel plus a
// hand-vectorized AVX2 one (bitwise-identical) behind runtime dispatch.

/// Persistent sweep workers.  One pool serves one engine; a job is
/// either one color-phase of a red-black sweep (sharded by rows) or a
/// batch of independent per-candidate solves (sharded by candidate via
/// an atomic task counter).  The calling thread acts as shard 0 and
/// threads - 1 std::jthreads take the rest; two barriers bracket every
/// job, so no thread is spawned per sweep and the publication of the job
/// description (and of the other color's node updates) is sequenced by
/// the barrier synchronization.
class ThermalEngine::SweepPool {
 public:
  explicit SweepPool(std::size_t threads)
      : shard_delta_(threads), start_(threads), done_(threads) {
    workers_.reserve(threads - 1);
    try {
      for (std::size_t shard = 1; shard < threads; ++shard)
        workers_.emplace_back(
            [this, shard](const std::stop_token& st) { worker(st, shard); });
    } catch (...) {
      // A worker failed to spawn (thread-resource exhaustion).  The ones
      // already parked at the start barrier can never be released by a
      // normal arrival -- the full party count no longer exists -- so
      // shut down before the jthread destructors join them.
      shut_down();
      throw;
    }
  }

  ~SweepPool() { shut_down(); }

  SweepPool(const SweepPool&) = delete;
  SweepPool& operator=(const SweepPool&) = delete;

  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

  /// Sweep one color of the field `t`, sharded over `shards` row ranges
  /// (workers beyond `shards` rendezvous with empty ranges); returns the
  /// max node update.
  double sweep_color(const ThermalEngine& engine, double* t, int color,
                     std::size_t rows, std::size_t shards, const double* rhs,
                     const double* diag, double omega) {
    job_ = Job::color;
    engine_ = &engine;
    field_ = t;
    color_ = color;
    rows_ = rows;
    shards_ = std::max<std::size_t>(1, std::min(shards, threads()));
    rhs_ = rhs;
    diag_ = diag;
    omega_ = omega;
    start_.arrive_and_wait();
    run_shard(0);
    done_.arrive_and_wait();
    double max_delta = 0.0;
    for (const ShardDelta& d : shard_delta_)
      max_delta = std::max(max_delta, d.value);
    return max_delta;
  }

  /// Run fn(0) ... fn(count - 1) across the pool, the calling thread
  /// included; tasks are claimed from an atomic counter, so any mix of
  /// task durations load-balances.  The tasks must touch disjoint state.
  /// Rethrows the first task exception after every thread rejoined.
  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
    std::vector<std::exception_ptr> errors(count);
    job_ = Job::tasks;
    task_fn_ = &fn;
    task_count_ = count;
    task_errors_ = &errors;
    next_task_.store(0, std::memory_order_relaxed);
    start_.arrive_and_wait();
    run_task_loop();
    done_.arrive_and_wait();
    for (const std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
  }

 private:
  enum class Job { color, tasks };

  /// Padded to a cache line so shards never write-share.
  struct alignas(64) ShardDelta {
    double value = 0.0;
  };

  void run_shard(std::size_t shard) {
    // Clamp so shards beyond the job's width degenerate to empty ranges
    // (they still rendezvous at the barriers, they just do no work).
    const std::size_t n = shards_;
    const std::size_t begin = rows_ * std::min(shard, n) / n;
    const std::size_t end = rows_ * std::min(shard + 1, n) / n;
    shard_delta_[shard].value =
        engine_->sweep_rows(field_, color_, begin, end, rhs_, diag_, omega_);
  }

  void run_task_loop() {
    for (std::size_t i;
         (i = next_task_.fetch_add(1, std::memory_order_relaxed)) <
         task_count_;) {
      try {
        (*task_fn_)(i);
      } catch (...) {
        (*task_errors_)[i] = std::current_exception();
      }
    }
  }

  void worker(const std::stop_token& st, std::size_t shard) {
    for (;;) {
      start_.arrive_and_wait();
      if (st.stop_requested()) return;
      if (job_ == Job::tasks)
        run_task_loop();
      else
        run_shard(shard);
      done_.arrive_and_wait();
    }
  }

  /// Stop the workers and release them from wherever they are parked.
  /// Idle workers sit at the start barrier; abort() frees them to
  /// observe the stop request, and works even when some never spawned.
  void shut_down() {
    for (auto& w : workers_) w.request_stop();
    start_.abort();
    done_.abort();
  }

  // Job description, written by the caller before the start barrier.
  Job job_ = Job::color;
  const ThermalEngine* engine_ = nullptr;
  double* field_ = nullptr;
  int color_ = 0;
  std::size_t rows_ = 0;
  std::size_t shards_ = 1;
  const double* rhs_ = nullptr;
  const double* diag_ = nullptr;
  double omega_ = 1.0;
  const std::function<void(std::size_t)>* task_fn_ = nullptr;
  std::size_t task_count_ = 0;
  std::vector<std::exception_ptr>* task_errors_ = nullptr;
  std::atomic<std::size_t> next_task_{0};

  std::vector<ShardDelta> shard_delta_;
  PhaseBarrier start_;
  PhaseBarrier done_;
  std::vector<std::jthread> workers_;
};

ThermalEngine::ThermalEngine(const TechnologyConfig& tech,
                             const ThermalConfig& cfg, ParallelConfig parallel,
                             EngineRole role)
    : tech_(tech), cfg_(cfg), stack_(build_stack(tech, cfg)), role_(role),
      policy_(SolverPolicy::from_config(cfg, role)), parallel_(parallel) {
  tech_.validate();
  cfg_.validate();
  sweep_threads_ = parallel_.threads;
  if (parallel_.min_nodes_per_thread > 0) {
    // Cap the shard count so each thread has enough rows to amortize the
    // two barrier rendezvous per color; below the floor single-solve
    // sweeps simply run serial (same results either way).  Batched
    // solves are NOT floored -- their unit of work is a whole solve.
    const std::size_t nodes =
        stack_.layers.size() * cfg_.grid_nx * cfg_.grid_ny;
    sweep_threads_ = std::min(
        sweep_threads_,
        std::max<std::size_t>(1, nodes / parallel_.min_nodes_per_thread));
  }
  // The eager pool is sized at the floored sweep width, so single-solve
  // sweeps pay exactly the rendezvous they shard across.  The first
  // batched solve widens it to the REQUESTED thread count (workers
  // beyond sweep_threads_ then see empty sweep shards) -- see
  // solve_steady_batch.
  if (sweep_threads_ > 1) pool_ = std::make_unique<SweepPool>(sweep_threads_);
}

ThermalEngine::~ThermalEngine() = default;
ThermalEngine::ThermalEngine(ThermalEngine&&) noexcept = default;
ThermalEngine& ThermalEngine::operator=(ThermalEngine&&) noexcept = default;

std::size_t ThermalEngine::threads() const { return sweep_threads_; }

void ThermalEngine::reset() {
  asm_valid_ = false;
  field_valid_ = false;
  mg_.reset();
}

void ThermalEngine::set_policy(const SolverPolicy& policy) {
  policy_ = policy;
  policy_.backend = resolve_backend(policy.backend, role_);
  // The hierarchy depends on the policy's depth/backend; rebuild lazily.
  mg_.reset();
}

void ThermalEngine::set_tolerance_scale(double scale) {
  policy_.tolerance.scale = scale > 1.0 ? scale : 1.0;
}

void ThermalEngine::check_inputs(const std::vector<GridD>& die_power_w,
                                 const GridD& tsv_density) const {
  if (die_power_w.size() != tech_.num_dies)
    throw std::invalid_argument("ThermalEngine: one power map per die required");
  for (const GridD& p : die_power_w) {
    if (p.nx() != cfg_.grid_nx || p.ny() != cfg_.grid_ny)
      throw std::invalid_argument("ThermalEngine: power-map grid mismatch");
  }
  if (tsv_density.nx() != cfg_.grid_nx || tsv_density.ny() != cfg_.grid_ny)
    throw std::invalid_argument("ThermalEngine: TSV-map grid mismatch");
}

const Assembly& ThermalEngine::assembly_for(const GridD& tsv_density) {
  if (tsv_density.nx() != cfg_.grid_nx || tsv_density.ny() != cfg_.grid_ny)
    throw std::invalid_argument("ThermalEngine: TSV-map grid mismatch");
  // The density map is the only per-solve input that changes the
  // conductance matrix; an exact element-wise compare against the map
  // the cached assembly was built from decides reuse (same O(n) as any
  // fingerprint, with no collision risk).
  if (asm_valid_ && tsv_density.data() == asm_tsv_) {
    ++stats_.assembly_reuses;
    return asm_;
  }
  build_assembly(tsv_density);
  asm_tsv_ = tsv_density.data();
  asm_valid_ = true;
  ++stats_.assembly_builds;
  return asm_;
}

void ThermalEngine::build_assembly(const GridD& tsv_density) {
  Assembly& a = asm_;
  a.nx = cfg_.grid_nx;
  a.ny = cfg_.grid_ny;
  a.nl = stack_.layers.size();
  const std::size_t nx = a.nx, ny = a.ny, nl = a.nl;
  const std::size_t nxny = nx * ny;
  const std::size_t n = a.num_nodes();
  const double cell_w = stack_.width_m / static_cast<double>(nx);
  const double cell_h = stack_.height_m / static_cast<double>(ny);
  const double cell_area = cell_w * cell_h;
  const auto ncells = static_cast<double>(nxny);

  // The coarsened-conductance hierarchy derives from this assembly;
  // whatever was built for the previous one is stale now.
  mg_.reset();

  // Per-cell vertical conductivity of each layer; only TSV layers vary.
  // TSVs blend the layer material toward copper by the cell's area
  // fraction f: k_v = (1 - f) * k_layer + f * k_copper.
  std::vector<std::vector<double>> k_vert(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    const Layer& layer = stack_.layers[l];
    k_vert[l].assign(nxny, layer.k_w_per_mk);
    if (layer.tsv_layer) {
      for (std::size_t i = 0; i < nxny; ++i) {
        const double f = std::clamp(tsv_density[i], 0.0, 1.0);
        k_vert[l][i] = (1.0 - f) * layer.k_w_per_mk + f * cfg_.k_tsv_copper;
      }
    }
  }

  a.g_xm.assign(n, 0.0);
  a.g_xp.assign(n, 0.0);
  a.g_ym.assign(n, 0.0);
  a.g_yp.assign(n, 0.0);
  a.g_zm.assign(n, 0.0);
  a.g_zp.assign(n, 0.0);
  a.cap.assign(n, 0.0);

  for (std::size_t l = 0; l < nl; ++l) {
    const Layer& layer = stack_.layers[l];
    // Lateral conduction uses the base material: TSVs are discrete
    // vertical pillars and contribute no continuous lateral path.
    const double g_lat_x = layer.k_w_per_mk * layer.thickness_m * cell_h /
                           cell_w;
    const double g_lat_y = layer.k_w_per_mk * layer.thickness_m * cell_w /
                           cell_h;
    const double cell_volume = cell_area * layer.thickness_m;
    const std::size_t base = l * nxny;
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t i = base + iy * nx + ix;
        if (ix > 0) a.g_xm[i] = g_lat_x;
        if (ix + 1 < nx) a.g_xp[i] = g_lat_x;
        if (iy > 0) a.g_ym[i] = g_lat_y;
        if (iy + 1 < ny) a.g_yp[i] = g_lat_y;
        a.cap[i] = layer.c_j_per_m3k * cell_volume;
      }
    }
    if (layer.tsv_layer) {
      for (std::size_t c = 0; c < nxny; ++c) {
        const double f = std::clamp(tsv_density[c], 0.0, 1.0);
        a.cap[base + c] =
            ((1.0 - f) * layer.c_j_per_m3k + f * cfg_.c_tsv_copper) *
            cell_volume;
      }
    }
  }

  // Vertical conductances: half-thickness resistances in series.
  for (std::size_t l = 0; l + 1 < nl; ++l) {
    const double t0 = stack_.layers[l].thickness_m;
    const double t1 = stack_.layers[l + 1].thickness_m;
    for (std::size_t c = 0; c < nxny; ++c) {
      const double r = 0.5 * t0 / k_vert[l][c] + 0.5 * t1 / k_vert[l + 1][c];
      const double g = cell_area / r;
      a.g_zp[l * nxny + c] = g;
      a.g_zm[(l + 1) * nxny + c] = g;
    }
  }

  // Boundary paths: convection atop the sink, lumped package resistance
  // below layer 0.  A lumped resistance R over N parallel cells gives
  // R_cell = R * N, i.e. g_cell = 1 / (R * N).
  a.g_sink.assign(nxny, 1.0 / (cfg_.r_convec_k_per_w * ncells));
  a.g_pkg.assign(nxny, 1.0 / (cfg_.r_package_k_per_w * ncells));

  a.diag_static.assign(n, 0.0);
  a.bound_rhs.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    a.diag_static[i] = a.g_xm[i] + a.g_xp[i] + a.g_ym[i] + a.g_yp[i] +
                       a.g_zm[i] + a.g_zp[i];
  }
  for (std::size_t c = 0; c < nxny; ++c) {
    const std::size_t top = (nl - 1) * nxny + c;
    a.diag_static[top] += a.g_sink[c];
    a.bound_rhs[top] += a.g_sink[c] * cfg_.ambient_k;
    a.diag_static[c] += a.g_pkg[c];
    a.bound_rhs[c] += a.g_pkg[c] * cfg_.ambient_k;
  }

  // (Re)size the halo field and scratch.  One pad column per row, one
  // pad row per layer, one pad layer on both ends: every boundary
  // neighbor read of the sweep (all scaled by a structurally zero
  // conductance) lands in a pad cell, never in a real node -- which
  // keeps the inner loop branch-free and makes row shards of one color
  // fully disjoint from each other's writes.  Resizing invalidates any
  // warm field (only happens when the grid shape changes).
  const std::size_t padded_layer = (nx + 1) * (ny + 1);
  field_offset_ = padded_layer;
  if (temp_.size() != (nl + 2) * padded_layer) {
    temp_.assign((nl + 2) * padded_layer, cfg_.ambient_k);
    field_valid_ = false;
  }
  rhs_.resize(n);
  diag_.resize(n);
}

void ThermalEngine::ensure_hierarchy() {
  if (policy_.backend != SolverBackend::multigrid || !asm_valid_) return;
  if (mg_ == nullptr) {
    mg_ = std::make_unique<MultigridHierarchy>();
    mg_->build(asm_, policy_.mg_levels);
    // Any transient diagonals in the scratch aggregated the PREVIOUS
    // hierarchy's capacitances; force mg_set_dt to rebuild them.
    if (mg_scratch_ != nullptr) {
      for (MgScratch::Level& s : mg_scratch_->level) s.diag.clear();
      mg_scratch_->dt_s = 0.0;
    }
  }
  if (mg_scratch_ == nullptr) mg_scratch_ = std::make_unique<MgScratch>();
}

bool ThermalEngine::fmg_active() const {
  return policy_.backend == SolverBackend::multigrid && policy_.mg_fmg &&
         mg_ != nullptr && mg_->usable();
}

double ThermalEngine::sweep_rows(double* t, int color, std::size_t row_begin,
                                 std::size_t row_end, const double* rhs,
                                 const double* diag, double omega) const {
  return sweep_color_rows(asm_, omega, t, color, row_begin, row_end, rhs,
                          diag);
}

double ThermalEngine::sweep(double* t, const double* rhs, const double* diag,
                            double omega) {
  // Red-black ordering: nodes with even (ix+iy+l) first, then odd.  Each
  // color only reads the other, so the color phase is dependence-free and
  // may be sharded by rows; the barrier between colors preserves the
  // serial update order, so sharded and serial sweeps agree bitwise
  // (node updates are identical and the max reduction is order-free).
  const bool shard = pool_ != nullptr && sweep_threads_ > 1;
  const std::size_t rows = asm_.nl * asm_.ny;
  double max_delta = 0.0;
  for (int color = 0; color < 2; ++color) {
    const double color_delta =
        shard ? pool_->sweep_color(*this, t, color, rows, sweep_threads_,
                                   rhs, diag, omega)
              : sweep_color_rows(asm_, omega, t, color, 0, rows, rhs, diag);
    max_delta = std::max(max_delta, color_delta);
  }
  return max_delta;
}

void ThermalEngine::fill_steady_rhs(const std::vector<GridD>& die_power_w,
                                    std::vector<double>& rhs) const {
  const Assembly& a = asm_;
  const std::size_t nxny = a.nx * a.ny;
  std::copy(a.bound_rhs.begin(), a.bound_rhs.end(), rhs.begin());
  for (std::size_t l = 0; l < a.nl; ++l) {
    const Layer& layer = stack_.layers[l];
    if (!layer.has_power()) continue;
    const GridD& p = die_power_w[layer.power_die];
    double* dst = rhs.data() + l * nxny;
    for (std::size_t c = 0; c < nxny; ++c) dst[c] += p[c];
  }
}

void ThermalEngine::extract_die_maps(const double* t,
                                     std::vector<GridD>& maps) const {
  const Assembly& a = asm_;
  const std::size_t nx = a.nx, ny = a.ny;
  const std::size_t px = nx + 1;
  const std::size_t ps = px * (ny + 1);
  for (std::size_t d = 0; d < tech_.num_dies; ++d) {
    const std::size_t l = stack_.layer_of_die[d];
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const double* trow = t + l * ps + iy * px;
      for (std::size_t ix = 0; ix < nx; ++ix)
        maps[d][iy * nx + ix] = trow[ix];
    }
  }
}

void ThermalEngine::extract_field(const double* t,
                                  ThermalResult& result) const {
  const Assembly& a = asm_;
  const std::size_t nx = a.nx, ny = a.ny, nl = a.nl;
  const std::size_t px = nx + 1;
  const std::size_t ps = px * (ny + 1);

  result.layer_temperature.clear();
  result.layer_temperature.reserve(nl);
  result.peak_k = cfg_.ambient_k;
  for (std::size_t l = 0; l < nl; ++l) {
    GridD map(nx, ny, 0.0);
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const double* trow = t + l * ps + iy * px;
      for (std::size_t ix = 0; ix < nx; ++ix) {
        map[iy * nx + ix] = trow[ix];
        result.peak_k = std::max(result.peak_k, trow[ix]);
      }
    }
    result.layer_temperature.push_back(std::move(map));
  }
  result.die_temperature.clear();
  result.die_temperature.reserve(tech_.num_dies);
  for (std::size_t d = 0; d < tech_.num_dies; ++d)
    result.die_temperature.push_back(
        result.layer_temperature[stack_.layer_of_die[d]]);

  result.heat_to_sink_w = 0.0;
  result.heat_to_package_w = 0.0;
  const GridD& top = result.layer_temperature[nl - 1];
  const GridD& bottom = result.layer_temperature[0];
  for (std::size_t c = 0; c < nx * ny; ++c) {
    result.heat_to_sink_w += a.g_sink[c] * (top[c] - cfg_.ambient_k);
    result.heat_to_package_w += a.g_pkg[c] * (bottom[c] - cfg_.ambient_k);
  }
}

double ThermalEngine::vcycle(double* t, const double* rhs, const double* diag,
                             MgScratch& scratch,
                             const std::function<double()>& fine_sweep) const {
  const Assembly& fine = asm_;
  const std::size_t nu = policy_.mg_smooth_sweeps;
  for (std::size_t i = 0; i < nu; ++i) (void)fine_sweep();
  mg_residual(fine, t, rhs, diag, scratch.resid.data());
  const Assembly& c0 = mg_->levels()[0].a;
  mg_restrict(fine, scratch.resid.data(), c0, scratch.level[0].rhs.data());
  mg_coarse_solve(*mg_, scratch, 0, nu, kSmoothOmega);
  mg_prolong_add(c0, scratch.level[0].field.data() + c0.field_offset(), fine,
                 t);
  // The last post-smoothing sweep doubles as the convergence measure:
  // the same per-node-update stopping rule the SOR backend uses.
  double delta = 0.0;
  for (std::size_t i = 0; i < nu; ++i) delta = fine_sweep();
  return delta;
}

void ThermalEngine::solve_field(double* t, const double* rhs, bool fmg_start,
                                ThermalResult& result) {
  const double* diag = asm_.diag_static.data();
  const double tol = policy_.tolerance.tolerance_for(cfg_.tolerance_k);
  const bool mg_on = policy_.backend == SolverBackend::multigrid &&
                     mg_ != nullptr && mg_->usable();
  if (mg_on) {
    mg_scratch_->ensure(asm_, *mg_);
    mg_set_dt(*mg_, *mg_scratch_, 0.0);
    const std::size_t nu = policy_.mg_smooth_sweeps;
    if (fmg_start) {
      // The caller zero-filled the field; the FMG descent/ascent leaves
      // an initial guess at ~truncation error, so the V-cycle loop
      // below typically stops after one or two cycles.
      mg_fmg(asm_, *mg_, *mg_scratch_, rhs, t, nu, kSmoothOmega);
      result.fmg_started = true;
    }
    const auto fine_sweep = [&] { return sweep(t, rhs, diag, kSmoothOmega); };
    double prev_delta = std::numeric_limits<double>::infinity();
    std::size_t stalled_cycles = 0;
    while (result.iterations < cfg_.max_iterations) {
      const double delta = vcycle(t, rhs, diag, *mg_scratch_, fine_sweep);
      result.iterations += 2 * nu;  // fine-level sweeps of this cycle
      ++result.vcycles;
      result.residual_k = delta;
      if (delta < tol) {
        result.converged = true;
        break;
      }
      if (delta > kMgStallContraction * prev_delta) {
        if (++stalled_cycles >= kMgStallCycles) {
          result.mg_stalled = true;
          break;
        }
      } else {
        stalled_cycles = 0;
      }
      prev_delta = delta;
    }
    // Stalled: finish the solve with the plain SOR loop, warm from
    // whatever the cycles achieved.
    while (result.mg_stalled && result.iterations < cfg_.max_iterations) {
      const double delta = sweep(t, rhs, diag, cfg_.sor_omega);
      ++result.iterations;
      result.residual_k = delta;
      if (delta < tol) {
        result.converged = true;
        break;
      }
    }
  } else {
    for (std::size_t it = 0; it < cfg_.max_iterations; ++it) {
      const double delta = sweep(t, rhs, diag, cfg_.sor_omega);
      result.iterations = it + 1;
      result.residual_k = delta;
      if (delta < tol) {
        result.converged = true;
        break;
      }
    }
  }
}

void ThermalEngine::solve_field_serial(double* t, const double* rhs,
                                       MgScratch* mg, bool fmg_start,
                                       ThermalResult& result) const {
  const double* diag = asm_.diag_static.data();
  const double tol = policy_.tolerance.tolerance_for(cfg_.tolerance_k);
  const std::size_t rows = asm_.nl * asm_.ny;
  const bool mg_on = policy_.backend == SolverBackend::multigrid &&
                     mg_ != nullptr && mg_->usable() && mg != nullptr;
  if (mg_on) {
    mg_set_dt(*mg_, *mg, 0.0);
    const std::size_t nu = policy_.mg_smooth_sweeps;
    if (fmg_start) {
      mg_fmg(asm_, *mg_, *mg, rhs, t, nu, kSmoothOmega);
      result.fmg_started = true;
    }
    const auto fine_sweep = [&] {
      return mg_smooth(asm_, t, rhs, diag, kSmoothOmega, 1);
    };
    double prev_delta = std::numeric_limits<double>::infinity();
    std::size_t stalled_cycles = 0;
    while (result.iterations < cfg_.max_iterations) {
      const double delta = vcycle(t, rhs, diag, *mg, fine_sweep);
      result.iterations += 2 * nu;
      ++result.vcycles;
      result.residual_k = delta;
      if (delta < tol) {
        result.converged = true;
        break;
      }
      if (delta > kMgStallContraction * prev_delta) {
        if (++stalled_cycles >= kMgStallCycles) {
          result.mg_stalled = true;
          break;
        }
      } else {
        stalled_cycles = 0;
      }
      prev_delta = delta;
    }
    while (result.mg_stalled && result.iterations < cfg_.max_iterations) {
      double delta = 0.0;
      for (int color = 0; color < 2; ++color)
        delta = std::max(delta, sweep_color_rows(asm_, cfg_.sor_omega, t,
                                                 color, 0, rows, rhs, diag));
      ++result.iterations;
      result.residual_k = delta;
      if (delta < tol) {
        result.converged = true;
        break;
      }
    }
  } else {
    for (std::size_t it = 0; it < cfg_.max_iterations; ++it) {
      double delta = 0.0;
      for (int color = 0; color < 2; ++color)
        delta = std::max(delta, sweep_color_rows(asm_, cfg_.sor_omega, t,
                                                 color, 0, rows, rhs, diag));
      result.iterations = it + 1;
      result.residual_k = delta;
      if (delta < tol) {
        result.converged = true;
        break;
      }
    }
  }
}

ThermalResult ThermalEngine::solve_steady(const std::vector<GridD>& die_power_w,
                                          const GridD& tsv_density,
                                          Start start) {
  check_inputs(die_power_w, tsv_density);
  const std::size_t reuses_before = stats_.assembly_reuses;
  (void)assembly_for(tsv_density);
  ensure_hierarchy();
  fill_steady_rhs(die_power_w, rhs_);

  ThermalResult result;
  result.assembly_reused = stats_.assembly_reuses > reuses_before;

  const bool warm = start == Start::warm && field_valid_;
  // A cold multigrid solve starts from zero so the FMG descent can build
  // the solution itself (the boundary terms in the rhs carry the ambient
  // baseline); other cold solves start from a flat ambient field.
  const bool fmg = !warm && fmg_active();
  if (!warm)
    std::fill(temp_.begin(), temp_.end(), fmg ? 0.0 : cfg_.ambient_k);
  result.warm_started = warm;

  solve_field(field(), rhs_.data(), fmg, result);
  field_valid_ = true;

  ++stats_.steady_solves;
  if (warm) ++stats_.warm_starts;
  if (result.fmg_started) ++stats_.fmg_starts;
  if (result.mg_stalled) ++stats_.mg_stalls;
  stats_.total_sweeps += result.iterations;
  stats_.vcycles += result.vcycles;

  extract_field(field(), result);
  return result;
}

std::vector<ThermalResult> ThermalEngine::solve_steady_batch(
    const std::vector<std::vector<GridD>>& candidate_power_w,
    const GridD& tsv_density, Start start) {
  const std::size_t k = candidate_power_w.size();
  if (k == 0) return {};
  for (const std::vector<GridD>& power : candidate_power_w)
    check_inputs(power, tsv_density);

  const std::size_t reuses_before = stats_.assembly_reuses;
  const Assembly& a = assembly_for(tsv_density);
  ensure_hierarchy();
  const bool reused = stats_.assembly_reuses > reuses_before;
  const bool warm = start == Start::warm && field_valid_;
  const bool mg_on = policy_.backend == SolverBackend::multigrid &&
                     mg_ != nullptr && mg_->usable();
  const bool fmg = !warm && fmg_active();

  // Size the context pool and seed every candidate field from the
  // engine's current field (the accepted state's solution) -- all on the
  // calling thread, so the fanned-out tasks never allocate or touch
  // shared mutable state.
  if (contexts_.size() < k) contexts_.resize(k);
  batch_size_ = k;
  std::vector<ThermalResult> results(k);
  for (std::size_t i = 0; i < k; ++i) {
    FieldContext& ctx = contexts_[i];
    if (warm)
      ctx.temp = temp_;  // reuses capacity after the first batch
    else
      ctx.temp.assign(temp_.size(), fmg ? 0.0 : cfg_.ambient_k);
    ctx.rhs.resize(a.num_nodes());
    fill_steady_rhs(candidate_power_w[i], ctx.rhs);
    if (mg_on) {
      if (ctx.mg == nullptr) ctx.mg = std::make_unique<MgScratch>();
      ctx.mg->ensure(a, *mg_);
    }
    results[i].warm_started = warm;
    results[i].assembly_reused = reused;
  }

  // Solve the candidates: one task per candidate, each sweeping its own
  // context serially -- bitwise the same updates as an unbatched solve.
  // Batching is the one workload that profits from every requested
  // thread, so (re)create the pool at full width on first use; engines
  // that never batch keep the narrower (or absent) sweep pool.
  if (parallel_.threads > 1 && k > 1 &&
      (pool_ == nullptr || pool_->threads() < parallel_.threads))
    pool_ = std::make_unique<SweepPool>(parallel_.threads);
  const auto solve_one = [&](std::size_t i) {
    FieldContext& ctx = contexts_[i];
    solve_field_serial(ctx.temp.data() + field_offset_, ctx.rhs.data(),
                       ctx.mg.get(), fmg, results[i]);
    extract_field(ctx.temp.data() + field_offset_, results[i]);
  };
  if (pool_ != nullptr && k > 1) {
    pool_->run_tasks(k, solve_one);
  } else {
    for (std::size_t i = 0; i < k; ++i) solve_one(i);
  }

  ++stats_.batch_calls;
  stats_.batch_candidates += k;
  stats_.steady_solves += k;
  if (warm) stats_.warm_starts += k;
  for (const ThermalResult& r : results) {
    stats_.total_sweeps += r.iterations;
    stats_.vcycles += r.vcycles;
    if (r.fmg_started) ++stats_.fmg_starts;
    if (r.mg_stalled) ++stats_.mg_stalls;
  }
  return results;
}

void ThermalEngine::adopt_candidate(std::size_t index) {
  if (index >= batch_size_)
    throw std::out_of_range(
        "ThermalEngine::adopt_candidate: index beyond the last batch");
  temp_ = contexts_[index].temp;  // reuses capacity (sizes match)
  field_valid_ = true;
}

FieldSnapshot ThermalEngine::save_field() const {
  if (!field_valid_)
    throw std::logic_error(
        "ThermalEngine::save_field: no solve has produced a field yet");
  return FieldSnapshot{temp_};
}

void ThermalEngine::restore_field(const FieldSnapshot& snapshot) {
  if (snapshot.empty())
    throw std::invalid_argument(
        "ThermalEngine::restore_field: empty snapshot");
  // Before the first assembly the padded size is unknown; accept the
  // snapshot as-is (build_assembly keeps a field whose size matches the
  // grid shape it derives).
  if (!temp_.empty() && snapshot.temp.size() != temp_.size())
    throw std::invalid_argument(
        "ThermalEngine::restore_field: snapshot grid shape mismatch");
  temp_ = snapshot.temp;
  field_valid_ = true;
}

TransientResult ThermalEngine::solve_transient(
    const std::function<std::vector<GridD>(double)>& power_at,
    const GridD& tsv_density, double t_end_s, double dt_s,
    std::size_t record_stride) {
  return solve_transient_feedback(
      [&](double t, const std::vector<GridD>&) { return power_at(t); },
      tsv_density, t_end_s, dt_s, record_stride);
}

TransientResult ThermalEngine::solve_transient_feedback(
    const FeedbackPower& power_at, const GridD& tsv_density, double t_end_s,
    double dt_s, std::size_t record_stride, Start start) {
  if (t_end_s <= 0.0 || dt_s <= 0.0)
    throw std::invalid_argument("solve_transient: non-positive time");
  if (record_stride == 0) record_stride = 1;
  const Assembly& a = assembly_for(tsv_density);
  ensure_hierarchy();
  const std::size_t nx = a.nx, ny = a.ny;
  const std::size_t nxny = nx * ny;
  const std::size_t n = a.num_nodes();
  const std::size_t px = nx + 1;
  const std::size_t ps = px * (ny + 1);

  // Start::cold is the physical problem statement -- ambient everywhere.
  // Start::warm continues an earlier trajectory from the engine's
  // current field (a restore_field checkpoint or a previous transient's
  // final state); the arithmetic from that state on is identical to the
  // steps a single longer transient would have taken.
  const bool warm = start == Start::warm;
  if (warm && !field_valid_)
    throw std::logic_error(
        "solve_transient_feedback: Start::warm without a current field");
  if (!warm) std::fill(temp_.begin(), temp_.end(), cfg_.ambient_k);
  double* t = field();

  // Implicit Euler: (G + C/dt) T_new = P + G_b T_amb + (C/dt) T_old.
  // cap/dt is hoisted out of the step loop; it feeds both the diagonal
  // and every step's rhs.
  std::vector<double> cap_over_dt(n);
  for (std::size_t i = 0; i < n; ++i) {
    cap_over_dt[i] = a.cap[i] / dt_s;
    diag_[i] = a.diag_static[i] + cap_over_dt[i];
  }

  // Multigrid backend: V-cycle the (G + C/dt) operator.  Small-dt steps
  // are strongly diagonally dominant and converge in a sweep or two
  // from the previous step's field, but STIFF steps (dt large against
  // the thermal time constants, the regime DTM sweeps probe) leave the
  // operator close to the steady G, whose smooth error per-step SOR
  // grinds down over dozens of sweeps; mg_set_dt installs the
  // aggregated implicit-Euler diagonal on every coarse level so those
  // steps take 1-2 cycles instead.  A single plain smoothing sweep runs
  // first each step -- the non-stiff fast path, costing exactly what
  // warm SOR would -- and the V-cycle loop only engages when that sweep
  // misses the tolerance.
  const bool mg_on = policy_.backend == SolverBackend::multigrid &&
                     mg_ != nullptr && mg_->usable();
  if (mg_on) {
    mg_scratch_->ensure(a, *mg_);
    mg_set_dt(*mg_, *mg_scratch_, dt_s);
  }

  TransientResult out;
  std::vector<GridD> die_temp_prev(tech_.num_dies,
                                   GridD(nx, ny, cfg_.ambient_k));
  if (warm) extract_die_maps(t, die_temp_prev);
  const auto steps = static_cast<std::size_t>(std::ceil(t_end_s / dt_s));
  out.steps = steps;
  for (std::size_t step = 0; step < steps; ++step) {
    const double t_now = static_cast<double>(step + 1) * dt_s;
    const std::vector<GridD> power = power_at(t_now, die_temp_prev);
    check_inputs(power, tsv_density);

    for (std::size_t l = 0; l < a.nl; ++l)
      for (std::size_t iy = 0; iy < ny; ++iy) {
        const std::size_t i0 = (l * ny + iy) * nx;
        const double* trow = t + l * ps + iy * px;
        for (std::size_t ix = 0; ix < nx; ++ix)
          rhs_[i0 + ix] =
              a.bound_rhs[i0 + ix] + cap_over_dt[i0 + ix] * trow[ix];
      }
    for (std::size_t l = 0; l < a.nl; ++l) {
      const Layer& layer = stack_.layers[l];
      if (!layer.has_power()) continue;
      const GridD& p = power[layer.power_die];
      double* dst = rhs_.data() + l * nxny;
      for (std::size_t c = 0; c < nxny; ++c) dst[c] += p[c];
    }

    bool step_converged = false;
    std::size_t step_iters = 0;
    if (mg_on && !out.final_state.mg_stalled) {
      const std::size_t nu = policy_.mg_smooth_sweeps;
      double delta = sweep(t, rhs_.data(), diag_.data(), kSmoothOmega);
      step_iters = 1;
      out.final_state.residual_k = delta;
      step_converged = delta < cfg_.tolerance_k;
      double prev_delta = std::numeric_limits<double>::infinity();
      std::size_t stalled_cycles = 0;
      while (!step_converged && step_iters < cfg_.max_iterations) {
        const auto fine_sweep = [&] {
          return sweep(t, rhs_.data(), diag_.data(), kSmoothOmega);
        };
        delta = vcycle(t, rhs_.data(), diag_.data(), *mg_scratch_,
                       fine_sweep);
        step_iters += 2 * nu;
        ++out.final_state.vcycles;
        ++stats_.vcycles;
        out.final_state.residual_k = delta;
        step_converged = delta < cfg_.tolerance_k;
        if (step_converged) break;
        if (delta > kMgStallContraction * prev_delta) {
          if (++stalled_cycles >= kMgStallCycles) {
            // Sticky for the whole transient: the operator (and so the
            // convergence behavior) is the same every step, so later
            // steps go straight to SOR instead of re-stalling.
            out.final_state.mg_stalled = true;
            ++stats_.mg_stalls;
            break;
          }
        } else {
          stalled_cycles = 0;
        }
        prev_delta = delta;
      }
      while (out.final_state.mg_stalled && !step_converged &&
             step_iters < cfg_.max_iterations) {
        delta = sweep(t, rhs_.data(), diag_.data(), cfg_.sor_omega);
        ++step_iters;
        out.final_state.residual_k = delta;
        step_converged = delta < cfg_.tolerance_k;
      }
    } else {
      for (std::size_t it = 0; it < cfg_.max_iterations; ++it) {
        const double delta = sweep(t, rhs_.data(), diag_.data(),
                                   cfg_.sor_omega);
        step_iters = it + 1;
        out.final_state.residual_k = delta;
        if (delta < cfg_.tolerance_k) {
          step_converged = true;
          break;
        }
      }
    }
    out.total_iterations += step_iters;
    if (!step_converged) ++out.unconverged_steps;
    ++stats_.transient_steps;
    stats_.total_sweeps += step_iters;

    extract_die_maps(t, die_temp_prev);

    if (step % record_stride == 0 || step + 1 == steps) {
      TransientSample s;
      s.time_s = t_now;
      for (std::size_t d = 0; d < tech_.num_dies; ++d) {
        const GridD& map = die_temp_prev[d];
        s.die_peak_k.push_back(map.max());
        s.die_mean_k.push_back(map.mean());
        s.die_power_w.push_back(power[d].sum());
      }
      out.trace.push_back(std::move(s));
    }
  }
  field_valid_ = true;

  // Final snapshot as a full ThermalResult.  Converged only if every
  // step's inner loop converged; iterations totals all sweeps.
  extract_field(field(), out.final_state);
  out.final_state.converged = out.unconverged_steps == 0;
  out.final_state.iterations = out.total_iterations;
  return out;
}

}  // namespace tsc3d::thermal
