// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// GridSolver: a HotSpot-style finite-volume thermal solver on the layered
// 3D-IC stack.  This is our stand-in for HotSpot 6.0 [22]: same physics
// (heat equation discretized on a per-layer grid, conductances derived
// from material properties, convection atop the heatsink, a lumped
// secondary path into the package), same role (detailed/verification
// analysis, Sec. 6), and the same interface shape (power maps in, thermal
// maps out).
//
// GridSolver is a thin compatibility facade over ThermalEngine (see
// thermal/thermal_engine.hpp), which owns the cached conductance network
// and the solver state.  The facade keeps the legacy semantics: every
// steady-state solve cold-starts from ambient, so results are a pure
// function of the inputs regardless of call history.  Callers with
// solve-in-a-loop workloads should hold a ThermalEngine (or use
// `engine()`) to get assembly reuse plus warm-started solves.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/config.hpp"
#include "core/grid.hpp"
#include "thermal/stack.hpp"
#include "thermal/thermal_engine.hpp"

namespace tsc3d::thermal {

class GridSolver {
 public:
  /// The facade is the verification/reporting entry point, so its engine
  /// carries EngineRole::verify: `thermal.solver = auto` resolves it to
  /// the multigrid backend.
  GridSolver(const TechnologyConfig& tech, const ThermalConfig& cfg)
      : engine_(tech, cfg, {}, EngineRole::verify) {}

  [[nodiscard]] std::size_t nx() const { return engine_.nx(); }
  [[nodiscard]] std::size_t ny() const { return engine_.ny(); }
  [[nodiscard]] const LayerStack& stack() const { return engine_.stack(); }

  /// The underlying engine.  Mutable even through a const GridSolver:
  /// the facade's const methods already mutate engine scratch state; the
  /// GridSolver API just guarantees history-independent results.  Like
  /// the engine itself, this is not thread-safe.
  [[nodiscard]] ThermalEngine& engine() const { return engine_; }

  /// Steady-state solve.  `die_power_w` holds one nx-by-ny map per die with
  /// power in watts per bin; `tsv_density` holds the fraction of each bin
  /// covered by TSV cells (affects the bond and upper-bulk layers).
  [[nodiscard]] ThermalResult solve_steady(
      const std::vector<GridD>& die_power_w, const GridD& tsv_density) const {
    return engine_.solve_steady(die_power_w, tsv_density,
                                ThermalEngine::Start::cold);
  }

  /// Transient solve with implicit Euler.  `power_at` is sampled once per
  /// step; a snapshot is recorded every `record_stride` steps.  The initial
  /// condition is the ambient temperature everywhere.
  [[nodiscard]] TransientResult solve_transient(
      const std::function<std::vector<GridD>(double time_s)>& power_at,
      const GridD& tsv_density, double t_end_s, double dt_s,
      std::size_t record_stride = 1) const {
    return engine_.solve_transient(power_at, tsv_density, t_end_s, dt_s,
                                   record_stride);
  }

  /// Closed-loop variant: the power callback additionally receives the
  /// previous step's per-die temperature maps, so runtime controllers
  /// (DTM throttling, noise injectors, covert-channel receivers with
  /// feedback) can react to the thermal state they caused.
  using FeedbackPower = ThermalEngine::FeedbackPower;
  [[nodiscard]] TransientResult solve_transient_feedback(
      const FeedbackPower& power_at, const GridD& tsv_density,
      double t_end_s, double dt_s, std::size_t record_stride = 1) const {
    return engine_.solve_transient_feedback(power_at, tsv_density, t_end_s,
                                            dt_s, record_stride);
  }

 private:
  mutable ThermalEngine engine_;
};

}  // namespace tsc3d::thermal
