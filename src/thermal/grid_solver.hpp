// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// GridSolver: a HotSpot-style finite-volume thermal solver on the layered
// 3D-IC stack.  This is our stand-in for HotSpot 6.0 [22]: same physics
// (heat equation discretized on a per-layer grid, conductances derived
// from material properties, convection atop the heatsink, a lumped
// secondary path into the package), same role (detailed/verification
// analysis, Sec. 6), and the same interface shape (power maps in, thermal
// maps out).
//
// Steady-state solves use Gauss-Seidel with successive over-relaxation;
// transient solves use implicit Euler time stepping (unconditionally
// stable, so millisecond steps are fine for the slow thermal dynamics the
// paper's Fig. 1 illustrates).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/config.hpp"
#include "core/grid.hpp"
#include "thermal/stack.hpp"

namespace tsc3d::thermal {

/// Output of a steady-state solve.
struct ThermalResult {
  /// Temperature map of each die's power layer [K], die 0 first.
  std::vector<GridD> die_temperature;
  /// Temperature maps of every stack layer, bottom to top [K].
  std::vector<GridD> layer_temperature;
  double peak_k = 0.0;            ///< hottest node anywhere in the stack
  std::size_t iterations = 0;     ///< SOR sweeps used
  bool converged = false;
  double heat_to_sink_w = 0.0;    ///< power leaving through the heatsink
  double heat_to_package_w = 0.0; ///< power leaving via the secondary path
};

/// One recorded snapshot of a transient solve.
struct TransientSample {
  double time_s = 0.0;
  std::vector<double> die_peak_k;  ///< per-die peak temperature
  std::vector<double> die_mean_k;  ///< per-die mean temperature
  std::vector<double> die_power_w; ///< per-die total power at this instant
};

/// Output of a transient solve.
struct TransientResult {
  std::vector<TransientSample> trace;
  ThermalResult final_state;
};

class GridSolver {
 public:
  GridSolver(const TechnologyConfig& tech, const ThermalConfig& cfg);

  [[nodiscard]] std::size_t nx() const { return cfg_.grid_nx; }
  [[nodiscard]] std::size_t ny() const { return cfg_.grid_ny; }
  [[nodiscard]] const LayerStack& stack() const { return stack_; }

  /// Steady-state solve.  `die_power_w` holds one nx-by-ny map per die with
  /// power in watts per bin; `tsv_density` holds the fraction of each bin
  /// covered by TSV cells (affects the bond and upper-bulk layers).
  [[nodiscard]] ThermalResult solve_steady(
      const std::vector<GridD>& die_power_w, const GridD& tsv_density) const;

  /// Transient solve with implicit Euler.  `power_at` is sampled once per
  /// step; a snapshot is recorded every `record_stride` steps.  The initial
  /// condition is the ambient temperature everywhere.
  [[nodiscard]] TransientResult solve_transient(
      const std::function<std::vector<GridD>(double time_s)>& power_at,
      const GridD& tsv_density, double t_end_s, double dt_s,
      std::size_t record_stride = 1) const;

  /// Closed-loop variant: the power callback additionally receives the
  /// previous step's per-die temperature maps, so runtime controllers
  /// (DTM throttling, noise injectors, covert-channel receivers with
  /// feedback) can react to the thermal state they caused.
  using FeedbackPower = std::function<std::vector<GridD>(
      double time_s, const std::vector<GridD>& die_temp_prev)>;
  [[nodiscard]] TransientResult solve_transient_feedback(
      const FeedbackPower& power_at, const GridD& tsv_density,
      double t_end_s, double dt_s, std::size_t record_stride = 1) const;

 private:
  struct Assembly;  // conductance network for one TSV distribution

  void check_inputs(const std::vector<GridD>& die_power_w,
                    const GridD& tsv_density) const;
  [[nodiscard]] Assembly assemble(const GridD& tsv_density) const;

  TechnologyConfig tech_;
  ThermalConfig cfg_;
  LayerStack stack_;
};

}  // namespace tsc3d::thermal
