#include "thermal/stack.hpp"

#include <stdexcept>

namespace tsc3d::thermal {

namespace {
constexpr double kUmToM = 1e-6;
}

LayerStack build_stack(const TechnologyConfig& tech,
                       const ThermalConfig& thermal) {
  tech.validate();
  thermal.validate();
  if (tech.num_dies < 1)
    throw std::invalid_argument("build_stack: need at least one die");

  LayerStack stack;
  stack.width_m = tech.die_width_um * kUmToM;
  stack.height_m = tech.die_height_um * kUmToM;
  stack.layer_of_die.assign(tech.num_dies, 0);

  const bool monolithic = tech.flavor == IntegrationFlavor::monolithic;
  const double bulk_thickness_um =
      monolithic ? tech.monolithic_tier_thickness_um : tech.die_thickness_um;
  const double gap_thickness_um =
      monolithic ? thermal.ild_thickness_um : thermal.bond_thickness_um;
  const double k_gap = monolithic ? thermal.k_ild : thermal.k_bond;
  const double c_gap = monolithic ? thermal.c_ild : thermal.c_bond;

  // Bottom-up: die 0 sits closest to the package.
  for (std::size_t d = 0; d < tech.num_dies; ++d) {
    Layer bulk;
    bulk.name = "die" + std::to_string(d) + "_bulk";
    bulk.thickness_m = bulk_thickness_um * kUmToM;
    bulk.k_w_per_mk = thermal.k_silicon;
    bulk.c_j_per_m3k = thermal.c_silicon;
    bulk.power_die = d;
    // Vias from the gap below traverse every bulk except the bottom die's
    // (die 0 is the landing die; vias run gap -> upper bulk).
    bulk.tsv_layer = (d > 0);
    stack.layer_of_die[d] = stack.layers.size();
    stack.layers.push_back(bulk);

    if (d + 1 < tech.num_dies) {
      // TSV flavor: bond/BEOL layer crossed by copper TSVs.  Monolithic
      // flavor: thin inter-tier dielectric crossed by MIVs.
      Layer gap;
      gap.name = (monolithic ? "ild" : "bond") + std::to_string(d) +
                 std::to_string(d + 1);
      gap.thickness_m = gap_thickness_um * kUmToM;
      gap.k_w_per_mk = k_gap;
      gap.c_j_per_m3k = c_gap;
      gap.tsv_layer = true;
      stack.layers.push_back(gap);
    }
  }

  Layer tim;
  tim.name = "tim";
  tim.thickness_m = thermal.tim_thickness_um * kUmToM;
  tim.k_w_per_mk = thermal.k_tim;
  tim.c_j_per_m3k = thermal.c_tim;
  stack.layers.push_back(tim);

  Layer spreader;
  spreader.name = "spreader";
  spreader.thickness_m = thermal.spreader_thickness_um * kUmToM;
  spreader.k_w_per_mk = thermal.k_spreader;
  spreader.c_j_per_m3k = thermal.c_spreader;
  stack.layers.push_back(spreader);

  Layer sink;
  sink.name = "sink";
  sink.thickness_m = thermal.sink_thickness_um * kUmToM;
  sink.k_w_per_mk = thermal.k_sink;
  sink.c_j_per_m3k = thermal.c_sink;
  stack.layers.push_back(sink);

  return stack;
}

}  // namespace tsc3d::thermal
