#include "thermal/multigrid.hpp"

#include <algorithm>
#include <cmath>

namespace tsc3d::thermal {

namespace {

/// Aggregate one fine assembly into a half-resolution coarse one
/// (2x coarsening in x and y, layers preserved).
Assembly coarsen(const Assembly& f) {
  Assembly c;
  c.nx = f.nx / 2;
  c.ny = f.ny / 2;
  c.nl = f.nl;
  const std::size_t cn = c.num_nodes();
  const std::size_t c_nxny = c.nx * c.ny;
  c.g_xm.assign(cn, 0.0);
  c.g_xp.assign(cn, 0.0);
  c.g_ym.assign(cn, 0.0);
  c.g_yp.assign(cn, 0.0);
  c.g_zm.assign(cn, 0.0);
  c.g_zp.assign(cn, 0.0);
  c.diag_static.assign(cn, 0.0);
  c.bound_rhs.assign(cn, 0.0);
  c.cap.assign(cn, 0.0);
  c.g_sink.assign(c_nxny, 0.0);
  c.g_pkg.assign(c_nxny, 0.0);

  for (std::size_t l = 0; l < c.nl; ++l) {
    for (std::size_t cy = 0; cy < c.ny; ++cy) {
      for (std::size_t cx = 0; cx < c.nx; ++cx) {
        const std::size_t ci = (l * c.ny + cy) * c.nx + cx;
        const std::size_t fx = 2 * cx, fy = 2 * cy;
        const std::size_t f00 = (l * f.ny + fy) * f.nx + fx;
        const std::size_t f10 = f00 + 1;
        const std::size_t f01 = f00 + f.nx;
        const std::size_t f11 = f01 + 1;
        // Block-interior quantities: the four fine cells merge, so their
        // vertical paths and capacitances add in parallel.
        c.g_zm[ci] = f.g_zm[f00] + f.g_zm[f10] + f.g_zm[f01] + f.g_zm[f11];
        c.g_zp[ci] = f.g_zp[f00] + f.g_zp[f10] + f.g_zp[f01] + f.g_zp[f11];
        c.cap[ci] = f.cap[f00] + f.cap[f10] + f.cap[f01] + f.cap[f11];
        c.bound_rhs[ci] = f.bound_rhs[f00] + f.bound_rhs[f10] +
                          f.bound_rhs[f01] + f.bound_rhs[f11];
        // Interface quantities: two fine conductances cross each coarse
        // face in parallel, each halved because the coarse path between
        // cell centers is twice as long.  For uniform material this
        // equals the direct coarse discretization (k * t * H / W is
        // invariant under doubling both extents).
        c.g_xp[ci] = 0.5 * (f.g_xp[f10] + f.g_xp[f11]);
        c.g_yp[ci] = 0.5 * (f.g_yp[f01] + f.g_yp[f11]);
        if (l == 0)
          c.g_pkg[cy * c.nx + cx] = f.g_pkg[fy * f.nx + fx] +
                                    f.g_pkg[fy * f.nx + fx + 1] +
                                    f.g_pkg[(fy + 1) * f.nx + fx] +
                                    f.g_pkg[(fy + 1) * f.nx + fx + 1];
        if (l + 1 == c.nl)
          c.g_sink[cy * c.nx + cx] = f.g_sink[fy * f.nx + fx] +
                                     f.g_sink[fy * f.nx + fx + 1] +
                                     f.g_sink[(fy + 1) * f.nx + fx] +
                                     f.g_sink[(fy + 1) * f.nx + fx + 1];
      }
    }
  }

  // Mirror the one-sided interface conductances so the operator stays
  // symmetric, then rebuild the diagonal (neighbor sums + boundary
  // paths), exactly as the fine assembly does.
  for (std::size_t l = 0; l < c.nl; ++l)
    for (std::size_t cy = 0; cy < c.ny; ++cy)
      for (std::size_t cx = 0; cx < c.nx; ++cx) {
        const std::size_t ci = (l * c.ny + cy) * c.nx + cx;
        if (cx > 0) c.g_xm[ci] = c.g_xp[ci - 1];
        if (cy > 0) c.g_ym[ci] = c.g_yp[ci - c.nx];
      }
  for (std::size_t i = 0; i < cn; ++i)
    c.diag_static[i] = c.g_xm[i] + c.g_xp[i] + c.g_ym[i] + c.g_yp[i] +
                       c.g_zm[i] + c.g_zp[i];
  for (std::size_t cell = 0; cell < c_nxny; ++cell) {
    const std::size_t top = (c.nl - 1) * c_nxny + cell;
    c.diag_static[top] += c.g_sink[cell];
    c.diag_static[cell] += c.g_pkg[cell];
  }
  return c;
}

}  // namespace

void MultigridHierarchy::build(const Assembly& fine, std::size_t max_levels) {
  levels_.clear();
  const Assembly* prev = &fine;
  while ((max_levels == 0 || levels_.size() < max_levels) &&
         prev->nx % 2 == 0 && prev->ny % 2 == 0 &&
         prev->nx / 2 >= kMinExtent && prev->ny / 2 >= kMinExtent) {
    levels_.push_back(Level{coarsen(*prev)});
    prev = &levels_.back().a;
  }
}

void MgScratch::ensure(const Assembly& fine,
                       const MultigridHierarchy& hierarchy) {
  const std::vector<MultigridHierarchy::Level>& levels = hierarchy.levels();
  if (level.size() != levels.size()) {
    level.resize(levels.size());
    dt_s = 0.0;  // any transient diagonals belonged to another hierarchy
  }
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const Assembly& a = levels[l].a;
    if (level[l].field.size() != a.padded_size())
      level[l].field.assign(a.padded_size(), 0.0);
    if (level[l].rhs.size() != a.num_nodes())
      level[l].rhs.assign(a.num_nodes(), 0.0);
  }
  if (resid.size() != fine.num_nodes()) resid.assign(fine.num_nodes(), 0.0);
}

void mg_set_dt(const MultigridHierarchy& hierarchy, MgScratch& scratch,
               double dt_s) {
  if (dt_s <= 0.0) {
    if (scratch.dt_s == 0.0) return;
    for (MgScratch::Level& s : scratch.level) s.diag.clear();
    scratch.dt_s = 0.0;
    return;
  }
  if (scratch.dt_s == dt_s) return;
  const std::vector<MultigridHierarchy::Level>& levels = hierarchy.levels();
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const Assembly& a = levels[l].a;
    MgScratch::Level& s = scratch.level[l];
    s.diag.resize(a.num_nodes());
    for (std::size_t i = 0; i < a.num_nodes(); ++i)
      s.diag[i] = a.diag_static[i] + a.cap[i] / dt_s;
  }
  scratch.dt_s = dt_s;
}

void mg_residual(const Assembly& a, const double* t, const double* rhs,
                 const double* diag, double* resid) {
  const std::size_t nx = a.nx, ny = a.ny, nl = a.nl;
  const std::size_t px = nx + 1;
  const std::size_t ps = px * (ny + 1);
  for (std::size_t l = 0; l < nl; ++l)
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const std::size_t row = (l * ny + iy) * nx;
      const std::size_t prow = l * ps + iy * px;
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t i = row + ix;
        const std::size_t p = prow + ix;
        resid[i] = rhs[i] + a.g_xm[i] * t[p - 1] + a.g_xp[i] * t[p + 1] +
                   a.g_ym[i] * t[p - px] + a.g_yp[i] * t[p + px] +
                   a.g_zm[i] * t[p - ps] + a.g_zp[i] * t[p + ps] -
                   diag[i] * t[p];
      }
    }
}

void mg_restrict(const Assembly& fine, const double* resid_fine,
                 const Assembly& coarse, double* rhs_coarse) {
  const std::size_t cn = coarse.num_nodes();
  std::fill(rhs_coarse, rhs_coarse + cn, 0.0);
  // Adjoint of cell-centered bilinear interpolation: a fine cell at even
  // offset leans 3/4 on its containing coarse cell and 1/4 on the
  // lower neighbor; at odd offset, on the upper neighbor.  Clamping at
  // the boundary folds the outside weight back into the containing
  // cell, so every fine residual distributes exactly weight 1 and the
  // injected flux matches the parallel-aggregated coarse conductances.
  for (std::size_t l = 0; l < fine.nl; ++l)
    for (std::size_t fy = 0; fy < fine.ny; ++fy) {
      const std::size_t cy = fy / 2;
      // Neighbor coarse row toward the fine cell's sub-position side.
      const std::size_t cy2 =
          (fy % 2 == 0) ? (cy > 0 ? cy - 1 : cy)
                        : (cy + 1 < coarse.ny ? cy + 1 : cy);
      for (std::size_t fx = 0; fx < fine.nx; ++fx) {
        const std::size_t cx = fx / 2;
        const std::size_t cx2 =
            (fx % 2 == 0) ? (cx > 0 ? cx - 1 : cx)
                          : (cx + 1 < coarse.nx ? cx + 1 : cx);
        const double r = resid_fine[(l * fine.ny + fy) * fine.nx + fx];
        const std::size_t base = l * coarse.ny * coarse.nx;
        rhs_coarse[base + cy * coarse.nx + cx] += 0.5625 * r;   // 3/4 * 3/4
        rhs_coarse[base + cy * coarse.nx + cx2] += 0.1875 * r;  // 3/4 * 1/4
        rhs_coarse[base + cy2 * coarse.nx + cx] += 0.1875 * r;
        rhs_coarse[base + cy2 * coarse.nx + cx2] += 0.0625 * r; // 1/4 * 1/4
      }
    }
}

void mg_prolong_add(const Assembly& coarse, const double* e_coarse,
                    const Assembly& fine, double* t_fine) {
  const std::size_t cpx = coarse.nx + 1;
  const std::size_t cps = cpx * (coarse.ny + 1);
  const std::size_t fpx = fine.nx + 1;
  const std::size_t fps = fpx * (fine.ny + 1);
  for (std::size_t l = 0; l < fine.nl; ++l)
    for (std::size_t fy = 0; fy < fine.ny; ++fy) {
      const std::size_t cy = fy / 2;
      const std::size_t cy2 =
          (fy % 2 == 0) ? (cy > 0 ? cy - 1 : cy)
                        : (cy + 1 < coarse.ny ? cy + 1 : cy);
      const double* crow = e_coarse + l * cps + cy * cpx;
      const double* crow2 = e_coarse + l * cps + cy2 * cpx;
      double* frow = t_fine + l * fps + fy * fpx;
      for (std::size_t fx = 0; fx < fine.nx; ++fx) {
        const std::size_t cx = fx / 2;
        const std::size_t cx2 =
            (fx % 2 == 0) ? (cx > 0 ? cx - 1 : cx)
                          : (cx + 1 < coarse.nx ? cx + 1 : cx);
        frow[fx] += 0.5625 * crow[cx] + 0.1875 * crow[cx2] +
                    0.1875 * crow2[cx] + 0.0625 * crow2[cx2];
      }
    }
}

double mg_smooth(const Assembly& a, double* t, const double* rhs,
                 const double* diag, double omega, std::size_t nsweeps) {
  const std::size_t rows = a.nl * a.ny;
  double delta = 0.0;
  for (std::size_t s = 0; s < nsweeps; ++s) {
    delta = 0.0;
    for (int color = 0; color < 2; ++color)
      delta = std::max(
          delta, sweep_color_rows(a, omega, t, color, 0, rows, rhs, diag));
  }
  return delta;
}

void mg_coarse_solve(const MultigridHierarchy& hierarchy, MgScratch& scratch,
                     std::size_t l, std::size_t smooth_sweeps, double omega) {
  MgScratch::Level& s = scratch.level[l];
  // The correction starts at zero (pads included -- they are never
  // written, so the fill keeps them zero too).
  std::fill(s.field.begin(), s.field.end(), 0.0);
  mg_cycle_at(hierarchy, scratch, l, smooth_sweeps, omega);
}

void mg_cycle_at(const MultigridHierarchy& hierarchy, MgScratch& scratch,
                 std::size_t l, std::size_t smooth_sweeps, double omega) {
  const Assembly& a = hierarchy.levels()[l].a;
  MgScratch::Level& s = scratch.level[l];
  double* t = s.field.data() + a.field_offset();
  const double* rhs = s.rhs.data();
  const double* diag = mg_level_diag(a, s);

  if (l + 1 == hierarchy.levels().size()) {
    // Coarsest level: smooth to near-exactness.  The grid is tiny
    // (<= ~kMinExtent^2 cells per layer), so a generous fixed-order
    // sweep budget costs next to nothing and keeps the cycle's
    // convergence rate from being limited here.
    constexpr std::size_t kMaxSweeps = 100;
    constexpr double kRelDrop = 1e-3;
    double first = -1.0;
    for (std::size_t s_i = 0; s_i < kMaxSweeps; ++s_i) {
      const double delta = mg_smooth(a, t, rhs, diag, omega, 1);
      if (first < 0.0) first = delta;
      if (delta <= kRelDrop * first) break;
    }
    return;
  }

  mg_smooth(a, t, rhs, diag, omega, smooth_sweeps);
  mg_residual(a, t, rhs, diag, scratch.resid.data());
  const Assembly& next = hierarchy.levels()[l + 1].a;
  mg_restrict(a, scratch.resid.data(), next, scratch.level[l + 1].rhs.data());
  mg_coarse_solve(hierarchy, scratch, l + 1, smooth_sweeps, omega);
  mg_prolong_add(next,
                 scratch.level[l + 1].field.data() + next.field_offset(), a,
                 t);
  mg_smooth(a, t, rhs, diag, omega, smooth_sweeps);
}

void mg_fmg(const Assembly& fine, const MultigridHierarchy& hierarchy,
            MgScratch& scratch, const double* rhs_fine, double* t_fine,
            std::size_t smooth_sweeps, double omega) {
  const std::vector<MultigridHierarchy::Level>& levels = hierarchy.levels();
  const std::size_t nl = levels.size();
  // Descend: restrict the TRUE rhs down the whole hierarchy.  The same
  // full-weighting stencil used for residuals applies -- its weights
  // sum to 1 per fine cell, so the total injected power is conserved at
  // every level, matching the parallel-aggregated conductances.
  mg_restrict(fine, rhs_fine, levels[0].a, scratch.level[0].rhs.data());
  for (std::size_t l = 0; l + 1 < nl; ++l)
    mg_restrict(levels[l].a, scratch.level[l].rhs.data(), levels[l + 1].a,
                scratch.level[l + 1].rhs.data());

  // Solve the coarsest level near-exactly from zero.
  mg_coarse_solve(hierarchy, scratch, nl - 1, smooth_sweeps, omega);

  // Ascend: seed each level with the interpolated coarser solution and
  // improve it with kFmgAscentCycles V-cycles against its restricted
  // true rhs.  One cycle per level is the textbook F-cycle, but with
  // this hierarchy's ~0.4 cycle contraction it leaves the seed an order
  // of magnitude above truncation error (bilinear interpolation error
  // compounds up the levels); a second cycle costs ~1/3 of a fine
  // V-cycle in total yet lands the seed at ~truncation error, which
  // saves 2+ full-price fine cycles.  The cycles clobber the levels
  // below, whose FMG values were already consumed by the prolongation.
  constexpr std::size_t kFmgAscentCycles = 2;
  for (std::size_t l = nl - 1; l-- > 0;) {
    const Assembly& a = levels[l].a;
    MgScratch::Level& s = scratch.level[l];
    std::fill(s.field.begin(), s.field.end(), 0.0);
    const Assembly& below = levels[l + 1].a;
    mg_prolong_add(below,
                   scratch.level[l + 1].field.data() + below.field_offset(),
                   a, s.field.data() + a.field_offset());
    for (std::size_t cyc = 0; cyc < kFmgAscentCycles; ++cyc)
      mg_cycle_at(hierarchy, scratch, l, smooth_sweeps, omega);
  }

  mg_prolong_add(levels[0].a,
                 scratch.level[0].field.data() + levels[0].a.field_offset(),
                 fine, t_fine);
}

}  // namespace tsc3d::thermal
