// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Geometric multigrid for the steady-state thermal solve.  The engine's
// red-black SOR sweep is an excellent smoother -- it kills oscillatory
// error in a few sweeps -- but grinds down the smooth error modes of
// cold or large solves over hundreds of iterations.  A V-cycle moves
// exactly those modes to coarser grids where they become oscillatory
// (and cheap) again:
//
//  * MultigridHierarchy coarsens the engine's cached Assembly 2x in
//    x/y per level, Galerkin-style, by aggregating conductances: the
//    four vertical/boundary paths of a 2x2 block add in parallel, and
//    the two lateral paths crossing a coarse interface add in parallel
//    after their series length doubles -- for uniform material this
//    reproduces the direct coarse-grid discretization exactly.  Layers
//    are NEVER coarsened: the stack has O(10) physically distinct
//    layers, and the z coupling strengthens 4x relative to lateral per
//    level, so the coarse grids also repair the fine grid's lateral/
//    vertical anisotropy.
//  * Residuals restrict by full weighting (the adjoint of cell-centered
//    bilinear interpolation, per layer, boundary-clamped) and
//    corrections prolongate bilinearly -- both over the same halo field
//    layout the sweep uses, so every level smooths with the identical
//    branch-free red-black kernel (sweep_color_rows).
//  * The engine drives the cycle: fine-level smoothing goes through its
//    (possibly pool-sharded) sweep; everything below is serial and
//    reads only the immutable hierarchy plus per-solve MgScratch, so
//    batched candidates V-cycle concurrently.
//
// Determinism: coarsening, transfers, and smoothing are fixed-order
// serial loops; the sharded fine sweep is bitwise-identical to serial.
// Multigrid results therefore match across 1-N threads bitwise, and
// agree with the SOR backend to solver accuracy (same stopping rule).
#pragma once

#include <cstddef>
#include <vector>

#include "thermal/thermal_engine.hpp"

namespace tsc3d::thermal {

/// Immutable-after-build coarse hierarchy below one fine assembly.
/// levels()[0] is the FIRST coarse level (half the fine resolution);
/// the fine assembly itself stays with the engine.
class MultigridHierarchy {
 public:
  struct Level {
    Assembly a;
  };

  /// Coarsen `fine` while both extents are even and at least 2 * kMinExtent,
  /// up to `max_levels` coarse levels (0 = no cap).  A grid that admits no
  /// coarse level leaves the hierarchy empty (usable() == false) and the
  /// engine falls back to SOR.
  void build(const Assembly& fine, std::size_t max_levels);

  [[nodiscard]] const std::vector<Level>& levels() const { return levels_; }
  [[nodiscard]] bool usable() const { return !levels_.empty(); }

  /// Smallest x/y extent a coarse grid may have.
  static constexpr std::size_t kMinExtent = 4;

 private:
  std::vector<Level> levels_;
};

/// Per-solve V-cycle scratch: one halo-layout correction field and one
/// compact restricted-residual rhs per coarse level, plus a shared
/// compact residual buffer (sized for the fine level, the largest).
/// Owned per solve context so batched candidates never share mutable
/// state.
struct MgScratch {
  struct Level {
    std::vector<double> field;  ///< halo layout, pads stay zero
    std::vector<double> rhs;    ///< compact
  };
  std::vector<Level> level;
  std::vector<double> resid;  ///< compact residual of the level above

  /// Size the buffers for `fine` + `hierarchy` (idempotent).
  void ensure(const Assembly& fine, const MultigridHierarchy& hierarchy);
};

/// Compact steady-state residual r = rhs + sum(g * t_nb) - diag * t of a
/// halo-layout field.
void mg_residual(const Assembly& a, const double* t, const double* rhs,
                 const double* diag, double* resid);

/// Full-weighting restriction of a compact fine residual onto the coarse
/// grid's compact rhs (adjoint of bilinear prolongation, per layer,
/// boundary-clamped; each fine residual's weights sum to 1, so the total
/// injected flux is conserved -- matching the aggregated conductances).
void mg_restrict(const Assembly& fine, const double* resid_fine,
                 const Assembly& coarse, double* rhs_coarse);

/// Bilinearly interpolate the coarse correction (halo layout) and ADD it
/// into the fine field (halo layout), per layer.
void mg_prolong_add(const Assembly& coarse, const double* e_coarse,
                    const Assembly& fine, double* t_fine);

/// `nsweeps` serial red-black sweeps over one level; returns the last
/// sweep's max node update.
double mg_smooth(const Assembly& a, double* t, const double* rhs,
                 const double* diag, double omega, std::size_t nsweeps);

/// Recursive V-cycle below the fine level: solves A_l e = rhs for the
/// correction at coarse level `l` (scratch.level[l].rhs must hold the
/// restricted residual; the correction is left in scratch.level[l].field).
/// The coarsest level is smoothed to near-exactness (relative update
/// drop of 1e-3, capped); all sweeps are serial and fixed-order.
void mg_coarse_solve(const MultigridHierarchy& hierarchy, MgScratch& scratch,
                     std::size_t l, std::size_t smooth_sweeps, double omega);

}  // namespace tsc3d::thermal
