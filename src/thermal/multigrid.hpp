// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Geometric multigrid for the steady-state thermal solve.  The engine's
// red-black SOR sweep is an excellent smoother -- it kills oscillatory
// error in a few sweeps -- but grinds down the smooth error modes of
// cold or large solves over hundreds of iterations.  A V-cycle moves
// exactly those modes to coarser grids where they become oscillatory
// (and cheap) again:
//
//  * MultigridHierarchy coarsens the engine's cached Assembly 2x in
//    x/y per level, Galerkin-style, by aggregating conductances: the
//    four vertical/boundary paths of a 2x2 block add in parallel, and
//    the two lateral paths crossing a coarse interface add in parallel
//    after their series length doubles -- for uniform material this
//    reproduces the direct coarse-grid discretization exactly.  Layers
//    are NEVER coarsened: the stack has O(10) physically distinct
//    layers, and the z coupling strengthens 4x relative to lateral per
//    level.  CAVEAT: when vertical coupling already dominates at the
//    fine level (monolithic stacks, whose sub-um ILD bonds couple
//    adjacent layers orders of magnitude more strongly than any lateral
//    path), the point smoother cannot damp lateral-oscillatory error
//    riding on the stiff z-columns -- that would need z-line relaxation
//    -- and V-cycles contract worse than plain SOR.  The engine detects
//    that at runtime (stall detection in its V-cycle loops) and hands
//    the solve back to SOR; see kMgStallContraction in
//    thermal_engine.cpp.
//  * Residuals restrict by full weighting (the adjoint of cell-centered
//    bilinear interpolation, per layer, boundary-clamped) and
//    corrections prolongate bilinearly -- both over the same halo field
//    layout the sweep uses, so every level smooths with the identical
//    branch-free red-black kernel (sweep_color_rows).
//  * The engine drives the cycle: fine-level smoothing goes through its
//    (possibly pool-sharded) sweep; everything below is serial and
//    reads only the immutable hierarchy plus per-solve MgScratch, so
//    batched candidates V-cycle concurrently.
//
// Determinism: coarsening, transfers, and smoothing are fixed-order
// serial loops; the sharded fine sweep is bitwise-identical to serial.
// Multigrid results therefore match across 1-N threads bitwise, and
// agree with the SOR backend to solver accuracy (same stopping rule).
#pragma once

#include <cstddef>
#include <vector>

#include "thermal/thermal_engine.hpp"

namespace tsc3d::thermal {

/// Immutable-after-build coarse hierarchy below one fine assembly.
/// levels()[0] is the FIRST coarse level (half the fine resolution);
/// the fine assembly itself stays with the engine.
class MultigridHierarchy {
 public:
  struct Level {
    Assembly a;
  };

  /// Coarsen `fine` while both extents are even and at least 2 * kMinExtent,
  /// up to `max_levels` coarse levels (0 = no cap).  A grid that admits no
  /// coarse level leaves the hierarchy empty (usable() == false) and the
  /// engine falls back to SOR.
  void build(const Assembly& fine, std::size_t max_levels);

  [[nodiscard]] const std::vector<Level>& levels() const { return levels_; }
  [[nodiscard]] bool usable() const { return !levels_.empty(); }

  /// Smallest x/y extent a coarse grid may have.
  static constexpr std::size_t kMinExtent = 4;

 private:
  std::vector<Level> levels_;
};

/// Per-solve V-cycle scratch: one halo-layout correction field and one
/// compact restricted-residual rhs per coarse level, plus a shared
/// compact residual buffer (sized for the fine level, the largest).
/// Owned per solve context so batched candidates never share mutable
/// state.
struct MgScratch {
  struct Level {
    std::vector<double> field;  ///< halo layout, pads stay zero
    std::vector<double> rhs;    ///< compact
    /// Implicit-Euler diagonal diag_static + cap/dt of this level
    /// (compact).  Empty in steady mode: the level then relaxes against
    /// its assembly's diag_static directly.  Filled by mg_set_dt.
    std::vector<double> diag;
  };
  std::vector<Level> level;
  std::vector<double> resid;  ///< compact residual of the level above
  /// Timestep the per-level diag buffers were built for; 0 = steady.
  double dt_s = 0.0;

  /// Size the buffers for `fine` + `hierarchy` (idempotent).
  void ensure(const Assembly& fine, const MultigridHierarchy& hierarchy);
};

/// Switch the scratch between steady mode (`dt_s <= 0`: coarse levels
/// relax against diag_static) and transient mode (`dt_s > 0`: every
/// coarse level gets the implicit-Euler diagonal diag_static + cap/dt,
/// the aggregated capacitances making the coarse operators the Galerkin
/// counterparts of the fine (G + C/dt)).  Idempotent per dt_s; call
/// after ensure().
void mg_set_dt(const MultigridHierarchy& hierarchy, MgScratch& scratch,
               double dt_s);

/// The diagonal a coarse level relaxes against: the transient diag when
/// mg_set_dt installed one, diag_static otherwise.
[[nodiscard]] inline const double* mg_level_diag(const Assembly& a,
                                                 const MgScratch::Level& s) {
  return s.diag.empty() ? a.diag_static.data() : s.diag.data();
}

/// Compact steady-state residual r = rhs + sum(g * t_nb) - diag * t of a
/// halo-layout field.
void mg_residual(const Assembly& a, const double* t, const double* rhs,
                 const double* diag, double* resid);

/// Full-weighting restriction of a compact fine residual onto the coarse
/// grid's compact rhs (adjoint of bilinear prolongation, per layer,
/// boundary-clamped; each fine residual's weights sum to 1, so the total
/// injected flux is conserved -- matching the aggregated conductances).
void mg_restrict(const Assembly& fine, const double* resid_fine,
                 const Assembly& coarse, double* rhs_coarse);

/// Bilinearly interpolate the coarse correction (halo layout) and ADD it
/// into the fine field (halo layout), per layer.
void mg_prolong_add(const Assembly& coarse, const double* e_coarse,
                    const Assembly& fine, double* t_fine);

/// `nsweeps` serial red-black sweeps over one level; returns the last
/// sweep's max node update.
double mg_smooth(const Assembly& a, double* t, const double* rhs,
                 const double* diag, double omega, std::size_t nsweeps);

/// Recursive V-cycle below the fine level: solves A_l e = rhs for the
/// correction at coarse level `l` (scratch.level[l].rhs must hold the
/// restricted residual; the correction is left in scratch.level[l].field).
/// The coarsest level is smoothed to near-exactness (relative update
/// drop of 1e-3, capped); all sweeps are serial and fixed-order.
/// A_l is (G + C/dt) when mg_set_dt installed transient diagonals.
void mg_coarse_solve(const MultigridHierarchy& hierarchy, MgScratch& scratch,
                     std::size_t l, std::size_t smooth_sweeps, double omega);

/// One V-cycle at coarse level `l` on the CURRENT contents of
/// scratch.level[l]: smooth field against rhs, restrict the residual,
/// correct from the levels below, smooth again.  Unlike mg_coarse_solve
/// the field is NOT zeroed -- this is the ascent step of mg_fmg, where
/// level l's field holds the prolonged coarser solution.  Levels below
/// l are clobbered (their FMG values must already be consumed).
void mg_cycle_at(const MultigridHierarchy& hierarchy, MgScratch& scratch,
                 std::size_t l, std::size_t smooth_sweeps, double omega);

/// Full-multigrid cold start: restrict the TRUE fine rhs down the whole
/// hierarchy, solve the coarsest level to near-exactness, then ascend --
/// prolong each solution one level up and improve it with one V-cycle --
/// and finally ADD the first-coarse-level solution, bilinearly
/// interpolated, into `t_fine` (halo layout; its real nodes must be
/// zero on entry, pads stay untouched).  The result is an initial guess
/// already accurate to roughly truncation error, so the caller's
/// V-cycle loop converges in 1-2 cycles instead of ~9 from a flat
/// ambient start.  Serial and fixed-order throughout; requires
/// hierarchy.usable().
void mg_fmg(const Assembly& fine, const MultigridHierarchy& hierarchy,
            MgScratch& scratch, const double* rhs_fine, double* t_fine,
            std::size_t smooth_sweeps, double omega);

}  // namespace tsc3d::thermal
