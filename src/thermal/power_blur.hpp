// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// PowerBlur: Corblivar-style fast thermal analysis via "power blurring".
// The steady-state thermal map of each die is approximated as the
// convolution of the per-die power maps with impulse-response kernels,
// which are calibrated once against the detailed GridSolver (the same
// fast-vs-detailed split the paper uses, Sec. 6: the fast analysis drives
// the floorplanning loop; HotSpot-style verification runs afterwards).
//
// Kernels are calibrated per (source die, target die) pair for two TSV
// regimes (no TSVs / full TSV coverage) and linearly blended per source
// bin by the local TSV density -- this captures the paper's key physical
// effect: TSVs act as vertical heat pipes that locally reshape the
// response.  The paper notes the fast analysis is "inferior to the
// detailed analysis ... especially for diverse arrangements of TSVs";
// the same qualitative gap exists here by construction.
#pragma once

#include <cstddef>
#include <vector>

#include "core/grid.hpp"
#include "thermal/grid_solver.hpp"

namespace tsc3d::thermal {

class PowerBlur {
 public:
  /// Calibrate kernels against `engine`.  `kernel_radius` is the kernel
  /// half-width in grid bins of the engine's resolution.  Calibration
  /// runs one impulse-response solve per (TSV regime, source die); the
  /// engine reuses the assembled network within each regime and
  /// warm-starts successive solves.
  explicit PowerBlur(ThermalEngine& engine, std::size_t kernel_radius = 12);

  /// Compatibility overload: calibrate against a GridSolver facade.
  explicit PowerBlur(const GridSolver& solver, std::size_t kernel_radius = 12);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t kernel_radius() const { return radius_; }

  /// Fast steady-state estimate: one temperature map per die [K].
  /// Inputs use the solver's grid resolution.
  [[nodiscard]] std::vector<GridD> estimate(
      const std::vector<GridD>& die_power_w, const GridD& tsv_density) const;

  /// Convenience: peak temperature over all dies of estimate().
  [[nodiscard]] double peak(const std::vector<GridD>& die_power_w,
                            const GridD& tsv_density) const;

  /// Calibrated far-field response [K/W] from source die s to target die d
  /// (uniform chip-level heating per watt); exposed for tests.
  [[nodiscard]] double far_field(std::size_t source, std::size_t target,
                                 bool with_tsv) const;

 private:
  struct Kernel {
    std::vector<double> taps;  // (2r+1)^2 local deviations [K/W]
    double far = 0.0;          // uniform far-field response [K/W]
  };

  [[nodiscard]] const Kernel& kernel(std::size_t source, std::size_t target,
                                     bool with_tsv) const;

  std::size_t num_dies_ = 0;
  std::size_t nx_ = 0, ny_ = 0;
  std::size_t radius_ = 0;
  double ambient_k_ = 0.0;
  // Indexed [tsv_case][source * num_dies + target].
  std::vector<std::vector<Kernel>> kernels_;
};

}  // namespace tsc3d::thermal
